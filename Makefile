# Developer entry points. CI runs the same targets.

# bash + pipefail so a failing `go test -bench` fails the bench pipeline
# instead of being masked by the benchjson stage.
SHELL       := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO        ?= go
BENCHTIME ?= 10x
BENCHOUT  ?= BENCH_consensus.json
FUZZTIME  ?= 10s

.PHONY: test build vet bench fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench runs the T1–T10/F1–F3 experiment suite plus the hot-path
# micro-benchmarks with allocation stats and appends a labelled run to the
# benchmark trajectory file (see PERFORMANCE.md).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr \
		| $(GO) run ./tools/benchjson -label "$(or $(LABEL),local $(shell git rev-parse --short HEAD 2>/dev/null))" -out $(BENCHOUT)

# fuzz-smoke gives each native fuzz target a short budget; CI runs it on
# every push so codec and framing regressions surface before a long fuzz
# campaign would.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSetCodec$$' -fuzztime $(FUZZTIME) ./internal/values
	$(GO) test -run '^$$' -fuzz '^FuzzPairCodec$$' -fuzztime $(FUZZTIME) ./internal/values
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeEnvelope$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeDeltaEnvelope$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/wire
