# Developer entry points. CI runs the same targets.

# bash + pipefail so a failing `go test -bench` fails the bench pipeline
# instead of being masked by the benchjson stage.
SHELL       := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO        ?= go
BENCHTIME ?= 10x
BENCHOUT  ?= BENCH_consensus.json
FUZZTIME  ?= 10s
# bench-smoke measures with a time-based benchtime: microsecond-scale
# benchmarks then run thousands of iterations, which keeps their ns/op
# stable where a fixed 10x sample can swing several-fold on a loaded box.
SMOKE_BENCHTIME ?= 1s
# bench-smoke regression threshold in percent. Generous by default: the
# committed trajectory and the smoke run usually come from different
# machines, so the gate is for 2×-plus regressions, not noise. Tighten it
# (e.g. BENCH_THRESHOLD=30) when measuring on quiet, comparable hardware.
BENCH_THRESHOLD ?= 100

# Pinned external lint tools, installed on demand via `go run mod@version`
# (requires network/module-proxy access; the hermetic `make lint` does not).
STATICCHECK_MOD ?= honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK_MOD ?= golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: test race build vet lint lint-external bench bench-smoke fuzz-smoke scenarios-smoke explore-smoke chaos-smoke mux-smoke load-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is the hermetic static-analysis plane: go vet plus the detlint
# determinism & aliasing suite (tools/detlint, driven by cmd/detlint).
# It needs nothing beyond the standard library and must pass clean on
# every commit; see TESTING.md "Static-analysis plane" for the analyzer
# list and the //detlint:<keyword> <reason> escape hatch.
lint: vet
	$(GO) run ./cmd/detlint ./...

# lint-external runs the pinned third-party checkers. `go run mod@version`
# resolves them through the module proxy, so unlike `make lint` this
# target needs network access the first time; CI runs it on every push.
lint-external:
	$(GO) run $(STATICCHECK_MOD) ./...
	$(GO) run $(GOVULNCHECK_MOD) ./...

test:
	$(GO) test ./...

# race runs the short suite under the race detector; CI runs it on every
# push so the trial plane's concurrency stays race-checked.
race:
	$(GO) test -race -short ./...

# bench runs the T1–T10/F1–F3 experiment suite plus the hot-path
# micro-benchmarks with allocation stats and appends a labelled run to the
# benchmark trajectory file (see PERFORMANCE.md).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . \
		| tee /dev/stderr \
		| $(GO) run ./tools/benchjson -label "$(or $(LABEL),local $(shell git rev-parse --short HEAD 2>/dev/null))" -out $(BENCHOUT)

# bench-smoke measures the suite into a scratch trajectory and fails if
# any benchmark regressed more than BENCH_THRESHOLD% against the last run
# recorded in $(BENCHOUT). It never modifies $(BENCHOUT).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(SMOKE_BENCHTIME) . \
		| $(GO) run ./tools/benchjson -label "bench-smoke" -out $(BENCHOUT).smoke.json
	status=0; $(GO) run ./tools/benchjson -compare -threshold $(BENCH_THRESHOLD) $(BENCHOUT) $(BENCHOUT).smoke.json || status=$$?; \
		rm -f $(BENCHOUT).smoke.json; exit $$status

# fuzz-smoke gives each native fuzz target a short budget; CI runs it on
# every push so codec and framing regressions surface before a long fuzz
# campaign would.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSetCodec$$' -fuzztime $(FUZZTIME) ./internal/values
	$(GO) test -run '^$$' -fuzz '^FuzzPairCodec$$' -fuzztime $(FUZZTIME) ./internal/values
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeEnvelope$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeDeltaEnvelope$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzScenario$$' -fuzztime $(FUZZTIME) ./internal/env
	$(GO) test -run '^$$' -fuzz '^FuzzTrace$$' -fuzztime $(FUZZTIME) ./internal/explore
	$(GO) test -run '^$$' -fuzz '^FuzzWorkloadTrace$$' -fuzztime $(FUZZTIME) ./internal/workload

# scenarios-smoke renders the S1 scenario sweep on the shrunken grid: a
# fast end-to-end pass over the fault plane (loss, duplication, partitions,
# random adversary) that CI runs on every push.
scenarios-smoke:
	$(GO) run ./cmd/anonsim -exp S1 -quick

# chaos-smoke is the live plane's resilience pass, run by CI on every
# push: the netchaos package (seeded sever/stall/half-close/blackout
# schedules plus the chaos consensus property test), the tcpnet
# reconnect / session-resumption / heartbeat / hub kill+restart tests,
# and the root-level chaos tests that cut one node's link mid-run — all
# under the race detector, in short mode, well under a minute.
chaos-smoke:
	$(GO) test -race -short -count=1 ./internal/netchaos
	$(GO) test -race -short -count=1 -run 'Reconnect|HubRestart|NeverHeals|Heartbeat|Overwhelm' ./internal/tcpnet
	$(GO) test -race -short -count=1 -run 'TestTCPChaos' .

# mux-smoke is the multi-tenant service plane's quick pass, run by CI on
# every push, all under the race detector: the Propose/Wait/Forget/Close
# stress at several WithMaxInFlight widths, pooled-sim determinism
# (recycled engines byte-identical to fresh ones), admission control
# (token bucket + queue overflow shed as ErrOverloaded), the TCP
# multiplexing acceptance tests (many epochs over one hub and one
# connection per process, epoch-scoped retirement and replay, reconnect
# resumption), and the sustained-load scaling assertion — a k=8 pool must
# beat the sequential session at least 2× on the timer-bound live
# backend, which holds on any core count.
mux-smoke:
	$(GO) test -race -count=1 -run 'TestNodeStress|TestNodePool|TestNodeCloseMidFlight|TestSimPoolDeterminism|TestAdmission|TestEventDrop|TestTCPMux|TestServiceThroughputScales' .
	$(GO) test -race -short -count=1 -run 'TestMux|TestRetireEpoch|TestEpoch' ./internal/tcpnet ./internal/wire

# load-smoke is the open-loop workload plane's quick pass, run by CI on
# every push: the workload package (generator, virtual queue model, trace
# codec) and the public RunWorkload/stats-invariant tests under the race
# detector, then an end-to-end anonload determinism pin — the same flags
# at -parallel 1 and 4 must record byte-identical traces, and -replay
# must verify what was just recorded.
load-smoke:
	$(GO) test -race -count=1 ./internal/workload
	$(GO) test -race -count=1 -run 'TestSimulateWorkload|TestRunWorkload|TestWorkloadSpec|TestStatsInvariants|TestEnqueueAbort|TestNeverStarted|TestEventAccounting' .
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
		$(GO) run ./cmd/anonload -seed 7 -ops 300 -rate 400 -admit 350:16 -parallel 1 -trace $$tmp/a.trace > /dev/null; \
		$(GO) run ./cmd/anonload -seed 7 -ops 300 -rate 400 -admit 350:16 -parallel 4 -trace $$tmp/b.trace > /dev/null; \
		cmp $$tmp/a.trace $$tmp/b.trace; \
		$(GO) run ./cmd/anonload -replay $$tmp/a.trace > /dev/null

# explore-smoke is the exploration plane's quick pass, run by CI on every
# push: the exhaustive n=2 space (X1 quick), 10k randomized PCT-style
# trials with the random adversary on 60% of them, and the explore package
# under the race detector.
explore-smoke:
	$(GO) run ./cmd/anonsim -exp X1 -quick
	$(GO) run ./cmd/anonsim -explore -n 4 -trials 10000 -seed 1 -scenarios 60
	$(GO) test -race ./internal/explore
