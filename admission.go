package anonconsensus

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is returned (wrapped, with the instance ID) by Propose
// when the node's admission controller sheds the call: the token bucket
// is empty in fast-reject mode, or the instance queue is full under
// admission control. The instance was not accepted — no events were
// emitted, nothing was registered, and the ID remains free — so the
// caller can back off and retry. See WithAdmission.
var ErrOverloaded = errors.New("anonconsensus: node overloaded")

// tokenBucket is the Node's admission controller: a classic token bucket
// refilled continuously at rate tokens/second up to burst. It is
// intentionally wall-clock based — admission shapes real traffic on the
// serving plane and has no bearing on instance determinism, which is
// fixed per instance by its spec and seed.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// refill credits tokens accrued since the last call. Callers hold b.mu.
func (b *tokenBucket) refill() {
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// tryTake consumes one token if available, without blocking.
func (b *tokenBucket) tryTake() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// take blocks until it consumes a token, ctx is done, or stop closes.
// Concurrent takers race for tokens as they accrue (no FIFO fairness).
func (b *tokenBucket) take(ctx context.Context, stop <-chan struct{}) error {
	for {
		b.mu.Lock()
		b.refill()
		if b.tokens >= 1 {
			b.tokens--
			b.mu.Unlock()
			return nil
		}
		need := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		if need < time.Millisecond {
			need = time.Millisecond
		}
		t := time.NewTimer(need)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-stop:
			t.Stop()
			return ErrNodeClosed
		case <-t.C:
		}
	}
}

// NodeStats is a snapshot of a Node session's service counters: the
// admission plane (admitted/rejected), occupancy (in-flight, queued,
// peak), cumulative queue wait, and the Decisions() feed's dropped-event
// count. Counters are cumulative since NewNode except InFlight and
// Queued, which are instantaneous.
type NodeStats struct {
	// Admitted counts proposals accepted into the queue; Rejected counts
	// proposals the node turned away after their spec validated — shed
	// with ErrOverloaded (empty bucket or full queue), or aborted between
	// admission and a successful enqueue (caller cancellation, node
	// shutdown). Every Propose that passes validation and registration
	// lands in exactly one of the two.
	Admitted, Rejected int64
	// Completed counts instances a worker finished — decided, failed, or
	// cancelled. Admitted instances that Close's drain failed without a
	// worker ever picking them up are not completed, so at quiescence
	// Completed ≤ Admitted.
	Completed int64
	// InFlight is the number of instances running right now; Queued the
	// number waiting in the instance queue; PeakInFlight the maximum
	// InFlight observed.
	InFlight, Queued, PeakInFlight int
	// MaxInFlight and QueueDepth echo the session's configured pool size
	// and queue capacity.
	MaxInFlight, QueueDepth int
	// QueueWait is the total time admitted instances spent queued before
	// a worker picked them up. It accrues at pickup, while Completed is
	// counted at finish, so the mean wait of picked-up instances is
	// QueueWait / (Completed + InFlight), not QueueWait / Completed.
	QueueWait time.Duration
	// EventsDropped counts Decisions() feed events discarded because the
	// bounded backlog overflowed with no consumer draining it.
	EventsDropped int64
}

// Stats snapshots the session's service counters. It is cheap and safe
// to call from any goroutine, including a Decisions() consumer.
func (n *Node) Stats() NodeStats {
	n.statMu.Lock()
	s := NodeStats{
		Admitted:     n.admitted,
		Rejected:     n.rejected,
		Completed:    n.completed,
		InFlight:     n.inFlight,
		PeakInFlight: n.peakInFlight,
		QueueWait:    n.queueWait,
	}
	n.statMu.Unlock()
	s.Queued = len(n.queue)
	s.MaxInFlight = n.workers
	s.QueueDepth = cap(n.queue)
	n.evMu.Lock()
	s.EventsDropped = n.evDropped
	n.evMu.Unlock()
	return s
}
