package anonconsensus

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/env"
	"anonconsensus/internal/explore"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/obstruction"
	"anonconsensus/internal/register"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

// Value is a proposal value. Values are totally ordered by ordinary string
// comparison; consensus breaks ties toward the maximum. Use NumValue for
// numeric proposals whose string order matches their numeric order.
type Value string

// NumValue renders a non-negative integer as a Value whose string order
// equals numeric order.
func NumValue(i int64) Value { return Value(values.Num(i)) }

// valid reports whether v is a usable proposal.
func (v Value) valid() bool { return values.Value(v).Valid() }

// toValues converts public values to the internal representation.
func toValues(in []Value) []values.Value {
	out := make([]values.Value, len(in))
	for i, v := range in {
		out[i] = values.Value(v)
	}
	return out
}

// automatonFactory builds the per-process consensus automata for env: the
// single seam through which every transport reaches Algorithms 2 and 3.
func automatonFactory(env Environment, proposals []Value) func(i int) giraf.Automaton {
	props := toValues(proposals)
	if env == EnvESS {
		return func(i int) giraf.Automaton { return core.NewESS(props[i]) }
	}
	return func(i int) giraf.Automaton { return core.NewES(props[i]) }
}

// Environment selects the paper's synchrony assumption.
type Environment int

// Supported environments.
const (
	// EnvES is the eventually synchronous environment (Algorithm 2):
	// after stabilization every process's broadcasts are timely.
	EnvES Environment = iota + 1
	// EnvESS is the eventually-stable-source environment (Algorithm 3):
	// after stabilization only some single process is guaranteed timely;
	// the algorithm elects pseudo leaders from proposal histories.
	EnvESS
)

// String implements fmt.Stringer.
func (e Environment) String() string {
	switch e {
	case EnvES:
		return "ES"
	case EnvESS:
		return "ESS"
	default:
		return fmt.Sprintf("Environment(%d)", int(e))
	}
}

// ParseEnvironment is String's inverse (case-insensitively): "es" → EnvES,
// "ess" → EnvESS. CLIs and config loaders should use it rather than
// mapping names themselves.
func ParseEnvironment(name string) (Environment, error) {
	switch strings.ToLower(name) {
	case "es":
		return EnvES, nil
	case "ess":
		return EnvESS, nil
	default:
		return 0, fmt.Errorf("anonconsensus: unknown environment %q (want es or ess)", name)
	}
}

// Config describes a consensus run for the Solve and Simulate
// compatibility wrappers.
//
// Deprecated: new code should create a Node over an explicit Transport and
// configure it with functional options (WithEnv, WithGST, WithSeed,
// WithCrashes, WithStableSource, WithInterval, WithTimeout,
// WithMaxRounds). Config remains fully functional — Solve and Simulate are
// kept as thin wrappers over a single-instance Node — but new knobs are
// added to the options API only.
type Config struct {
	// Proposals holds one initial value per process (length = #processes).
	// Every value must be non-empty.
	Proposals []Value
	// Env is the synchrony assumption; defaults to EnvES.
	Env Environment
	// GST is the stabilization round (0 = stable from the start).
	GST int
	// StableSource is the process that is the eventual source (EnvESS
	// only). It must not be listed in Crashes.
	StableSource int
	// Seed drives the pre-stabilization adversary.
	Seed int64
	// Crashes maps process index to the round at which it crashes.
	Crashes map[int]int

	// Interval is the live round-timer period (Solve only); defaults to
	// 5ms.
	Interval time.Duration
	// Timeout bounds a live run (Solve only); defaults to 30s.
	Timeout time.Duration
	// MaxRounds bounds a simulated run (Simulate only); defaults to
	// 10·n+200.
	MaxRounds int
}

func (c *Config) validate() error {
	if len(c.Proposals) == 0 {
		return fmt.Errorf("anonconsensus: no proposals")
	}
	for i, p := range c.Proposals {
		if !values.Value(p).Valid() {
			return fmt.Errorf("anonconsensus: proposal %d is invalid (%q)", i, string(p))
		}
	}
	switch c.Env {
	case EnvES, EnvESS:
	case 0:
	default:
		return fmt.Errorf("anonconsensus: unknown environment %d", int(c.Env))
	}
	if c.Env == EnvESS {
		if c.StableSource < 0 || c.StableSource >= len(c.Proposals) {
			return fmt.Errorf("anonconsensus: stable source %d outside [0,%d)", c.StableSource, len(c.Proposals))
		}
		if _, crashed := c.Crashes[c.StableSource]; crashed {
			return fmt.Errorf("anonconsensus: the stable source must stay correct")
		}
	}
	return nil
}

func (c *Config) env() Environment {
	if c.Env == 0 {
		return EnvES
	}
	return c.Env
}

// session converts the legacy Config into the resolved option set used by
// Node sessions.
func (c *Config) session() options {
	return options{
		env:          c.env(),
		gst:          c.GST,
		stableSource: c.StableSource,
		seed:         c.Seed,
		scenario:     Scenario{Crashes: c.Crashes},
		interval:     c.Interval,
		timeout:      c.Timeout,
		maxRounds:    c.MaxRounds,
	}
}

// Decision is one process's outcome.
type Decision struct {
	// Proc is the process index (a runner-level handle; the processes
	// themselves are anonymous).
	Proc int
	// Decided reports whether the process decided (false for crashed or
	// timed-out processes).
	Decided bool
	// Value is the decided value (when Decided).
	Value Value
	// Round is the round at which the process decided.
	Round int
	// Crashed reports whether the crash schedule stopped the process.
	Crashed bool
}

// Robustness counts the network-failure events a run survived. Only the
// TCP transport populates it (the sim and live backends have no network
// to lose); a zero Robustness means an undisturbed run.
type Robustness struct {
	// Reconnects counts hub connections re-established after a loss,
	// summed over all nodes.
	Reconnects int
	// ReplayedFrames counts frames the hub re-sent from session logs on
	// resumption.
	ReplayedFrames int
	// FailedDials counts redial attempts that did not produce a session.
	FailedDials int
	// HeartbeatMisses counts hub probe intervals that elapsed
	// unacknowledged (slow consumers accumulate a few and recover).
	HeartbeatMisses int
	// DroppedConns counts connections the hub itself severed (heartbeat
	// dead or overwhelmed past the grace window).
	DroppedConns int
	// OverwhelmedDrops is the subset of DroppedConns due to an outbound
	// queue stuck over the high-water mark.
	OverwhelmedDrops int
}

// Result is the outcome of Solve or Simulate.
type Result struct {
	Decisions []Decision
	// Rounds is the number of rounds executed (Simulate) or 0 (Solve).
	Rounds int
	// Elapsed is the wall-clock duration (Solve) or 0 (Simulate).
	Elapsed time.Duration
	// Robustness reports the network-failure events the run survived (TCP
	// transport only).
	Robustness Robustness
}

// Agreed returns the single decided value when every non-crashed process
// decided it; ok is false if nobody decided or decisions diverge (the
// latter cannot happen unless the configured environment assumptions were
// violated).
func (r *Result) Agreed() (v Value, ok bool) {
	var found bool
	for _, d := range r.Decisions {
		if d.Crashed {
			continue
		}
		if !d.Decided {
			return "", false
		}
		if found && d.Value != v {
			return "", false
		}
		v, found = d.Value, true
	}
	return v, found
}

// Solve runs consensus over a live in-process network (one goroutine per
// process, channel broadcast, real-time rounds). It returns when every
// correct process decided or the timeout expired; individual Decisions
// report who decided what.
//
// Solve is a compatibility wrapper over a Node running a single instance
// on NewLiveTransport; long-lived callers should use Node directly.
func Solve(cfg Config) (*Result, error) {
	return runCompat(NewLiveTransport(), cfg)
}

// Simulate runs consensus on the deterministic lockstep simulator with a
// seeded adversarial schedule. Identical configs produce identical runs.
//
// Simulate is a compatibility wrapper over a Node running a single
// instance on NewSimTransport; long-lived callers should use Node
// directly.
func Simulate(cfg Config) (*Result, error) {
	return runCompat(NewSimTransport(), cfg)
}

// runCompat executes one legacy Config as a single-instance Node session.
func runCompat(t Transport, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		t.Close()
		return nil, err
	}
	node := newNode(t, cfg.session())
	defer node.Close()
	return node.Run(context.Background(), "config", cfg.Proposals)
}

// BatchItem describes one instance of a RunBatch fan-out: its proposals
// plus per-item option overrides (a different seed per item is the
// typical use).
type BatchItem struct {
	Proposals []Value
	Opts      []Option
}

// RunBatch runs independent consensus instances on the deterministic
// simulator, fanned across a bounded worker pool, and returns their
// results in submission order. results[i] is byte-identical to what
// Simulate would produce for the same proposals and options, at any
// parallelism — instances share nothing, and ordering is restored at
// collection. opts apply to every item (WithParallelism bounds the pool;
// the default is GOMAXPROCS); item Opts override per instance.
//
// Items are validated up front: a malformed item (invalid proposals or
// options) fails the batch before anything runs, naming the item's index.
// Once running, every instance is attempted even when a sibling fails;
// the first runtime error in submission order is returned alongside the
// partial results, with the failed slots nil. ctx cancels the whole
// batch. WithParallelism is batch-level: passing it inside an item's Opts
// is rejected at validation.
func RunBatch(ctx context.Context, items []BatchItem, opts ...Option) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var base options
	if err := base.apply(opts); err != nil {
		return nil, err
	}
	if err := base.validate(); err != nil {
		return nil, err
	}
	cfgs := make([]sim.Config, len(items))
	for i, item := range items {
		o := base.clone()
		if err := o.apply(item.Opts); err != nil {
			return nil, fmt.Errorf("anonconsensus: batch item %d: %w", i, err)
		}
		if o.parallelism != base.parallelism {
			return nil, fmt.Errorf("anonconsensus: batch item %d: WithParallelism is batch-level, not per-item", i)
		}
		spec, err := o.spec(fmt.Sprintf("batch-%d", i), item.Proposals)
		if err != nil {
			return nil, fmt.Errorf("anonconsensus: batch item %d: %w", i, err)
		}
		cfgs[i] = simConfig(spec)
	}
	simResults, err := sim.RunBatch(ctx, cfgs, sim.BatchOpts{Parallelism: base.parallelism})
	out := make([]*Result, len(simResults))
	for i, r := range simResults {
		if r != nil {
			out[i] = simResult(r)
		}
	}
	return out, err
}

// ExploreMode selects the exploration plane's search strategy.
type ExploreMode int

// Supported exploration modes.
const (
	// ExploreExhaustive enumerates every MS-valid {0,1}-delay schedule up
	// to the horizon — model checking for tiny systems (n ≤ 3).
	ExploreExhaustive ExploreMode = iota + 1
	// ExploreRandom samples schedules PCT-style (a priority order picks
	// each round's source; Depth change points reshuffle it) and optionally
	// overlays random fault scenarios — scales to n ≈ 8 and beyond.
	ExploreRandom
)

// ExploreConfig bounds an exploration of the schedule × scenario space.
// The zero value of every knob selects a sensible default; only Proposals
// is required.
type ExploreConfig struct {
	// Proposals holds one initial value per process; n = len(Proposals).
	// Exhaustive mode supports n ≤ 3, random mode n ≤ 16.
	Proposals []Value
	// Env selects the algorithm under test (EnvES or EnvESS); defaults to
	// EnvES.
	Env Environment
	// Mode selects the strategy; defaults to ExploreExhaustive.
	Mode ExploreMode
	// Horizon is the number of explicitly scheduled rounds (exhaustive
	// 1..8, required there; random 1..64, default 12).
	Horizon int
	// Tail is the number of steady-state rounds beyond the horizon;
	// defaults to 8 (exhaustive) or 12 (random).
	Tail int
	// CrashSweeps (exhaustive) sweeps every single-crash placement.
	CrashSweeps bool
	// SampleEvery (exhaustive) keeps every k-th schedule only.
	SampleEvery int
	// Trials (random) is the number of sampled schedules; default 1000.
	Trials int
	// Seed (random) reproduces the whole search.
	Seed int64
	// MaxDelay (random) bounds sampled link delays (1..9, default 3).
	MaxDelay int
	// Depth (random) is the number of PCT-style priority-change points
	// (default 3).
	Depth int
	// ScenarioPct (random) is the percentage of trials that overlay a
	// random fault scenario (RandomScenario); requires a zero Scenario.
	ScenarioPct int
	// Scenario overlays one fixed fault scenario on every run. A crash
	// schedule that stops every process is rejected with ErrAllCrashed.
	Scenario Scenario
	// Parallelism bounds the trial worker pool (0 = GOMAXPROCS); the
	// report is byte-identical at any setting.
	Parallelism int
	// DisableShrink skips counterexample minimization.
	DisableShrink bool
}

// Counterexample is one property violation minimized into a replayable
// artifact: Replay(c.Trace) deterministically reproduces ReplayViolation.
type Counterexample struct {
	// Violation is the check failure observed on the originally sampled
	// run.
	Violation string
	// Trace is the shrunk, locally-minimal run.
	Trace Trace
	// ReplayViolation is the violation the shrunk trace reproduces.
	ReplayViolation string
}

// ExploreReport summarizes an exploration.
type ExploreReport struct {
	// Schedules and Runs count the executed search space (runs = schedules
	// × crash placements in exhaustive mode).
	Schedules, Runs int
	// Faulted counts runs that carried a non-empty fault scenario.
	Faulted int
	// Decided counts runs in which every correct process decided.
	Decided int
	// Violations lists every property violation found (empty = verified).
	Violations []string
	// Counterexamples holds shrunk replayable artifacts for the first
	// violations found.
	Counterexamples []Counterexample

	inner *explore.Report
}

// Verified reports whether no run violated a checked property.
func (r *ExploreReport) Verified() bool { return len(r.Violations) == 0 }

// Render writes the report's canonical text form: a pure function of the
// report, byte-identical at any parallelism for a fixed seed.
func (r *ExploreReport) Render(w io.Writer) error { return r.inner.Render(w) }

// Trace is one fully-determined exploration run — algorithm, proposals,
// per-round delay schedule, steady state and fault scenario. Its String
// form is the canonical text encoding (ParseTrace is the inverse), and
// Replay re-executes it deterministically. Traces come out of exploration
// counterexamples or are parsed from text; the zero Trace is not runnable.
type Trace struct {
	inner explore.Trace
}

// String returns the canonical text encoding of the trace.
func (t Trace) String() string { return t.inner.Encode() }

// ParseTrace parses the canonical trace text form produced by
// Trace.String / the exploration reports.
func ParseTrace(text string) (Trace, error) {
	inner, err := explore.ParseTrace(text)
	if err != nil {
		return Trace{}, fmt.Errorf("anonconsensus: %w", err)
	}
	return Trace{inner: *inner}, nil
}

// Explore searches the schedule × fault-scenario space of the selected
// algorithm and verifies Agreement, Validity, irrevocability of decisions,
// and — wherever the environment still guarantees it — Termination, on
// every run. Violations are minimized by a delta-debugging shrinker into
// replayable counterexamples. For a fixed configuration the report is
// byte-identical at any parallelism.
func Explore(cfg ExploreConfig) (*ExploreReport, error) {
	inner := explore.Config{
		Proposals:     toValues(cfg.Proposals),
		Horizon:       cfg.Horizon,
		Tail:          cfg.Tail,
		CrashSweeps:   cfg.CrashSweeps,
		SampleEvery:   cfg.SampleEvery,
		Trials:        cfg.Trials,
		Seed:          cfg.Seed,
		MaxDelay:      cfg.MaxDelay,
		Depth:         cfg.Depth,
		ScenarioPct:   cfg.ScenarioPct,
		Parallelism:   cfg.Parallelism,
		DisableShrink: cfg.DisableShrink,
	}
	switch cfg.Env {
	case EnvESS:
		inner.Algorithm = explore.AlgESS
	case EnvES, 0:
		inner.Algorithm = explore.AlgES
	default:
		return nil, fmt.Errorf("anonconsensus: unknown environment %d", int(cfg.Env))
	}
	switch cfg.Mode {
	case ExploreExhaustive, 0:
		inner.Mode = explore.ModeExhaustive
	case ExploreRandom:
		inner.Mode = explore.ModeRandom
	default:
		return nil, fmt.Errorf("anonconsensus: unknown exploration mode %d", int(cfg.Mode))
	}
	if sc := cfg.Scenario.toEnv(cfg.Seed); !sc.Empty() {
		inner.Scenario = sc
	}
	rep, err := explore.Run(inner)
	if err != nil {
		if errors.Is(err, env.ErrAllCrashed) {
			// Translate to the public sentinel, as the transports do.
			return nil, fmt.Errorf("anonconsensus: exploration scenario makes every run vacuous: %w", ErrAllCrashed)
		}
		return nil, fmt.Errorf("anonconsensus: %w", err)
	}
	return exploreReport(rep), nil
}

// Replay re-executes one trace and reports the violations (if any) it
// reproduces. Replay is deterministic: the same trace always yields the
// same report.
func Replay(t Trace) (*ExploreReport, error) {
	rep, err := explore.Run(explore.Config{Mode: explore.ModeReplay, Trace: &t.inner})
	if err != nil {
		return nil, fmt.Errorf("anonconsensus: %w", err)
	}
	return exploreReport(rep), nil
}

// exploreReport converts the internal report to the public form.
func exploreReport(rep *explore.Report) *ExploreReport {
	out := &ExploreReport{
		Schedules:  rep.Schedules,
		Runs:       rep.Runs,
		Faulted:    rep.Faulted,
		Decided:    rep.Decided,
		Violations: append([]string(nil), rep.Violations...),
		inner:      rep,
	}
	for _, cx := range rep.Counterexamples {
		out.Counterexamples = append(out.Counterexamples, Counterexample{
			Violation:       cx.Violation,
			Trace:           Trace{inner: cx.Trace},
			ReplayViolation: cx.ReplayViolation,
		})
	}
	return out
}

// WeakSet is the anonymous shared-set data structure of §5: adds are
// visible to every get that starts after the add returned; no identities,
// no lost updates. Safe for concurrent use.
type WeakSet struct {
	inner weakset.Memory
}

// NewWeakSet returns an empty weak-set.
func NewWeakSet() *WeakSet { return &WeakSet{} }

// Add inserts v. It returns an error only for invalid values.
func (s *WeakSet) Add(v Value) error {
	if !values.Value(v).Valid() {
		return fmt.Errorf("anonconsensus: invalid value %q", string(v))
	}
	return s.inner.Add(values.Value(v))
}

// Get returns a snapshot of the set's contents, sorted ascending.
func (s *WeakSet) Get() ([]Value, error) {
	set, err := s.inner.Get()
	if err != nil {
		return nil, err
	}
	out := make([]Value, 0, set.Len())
	for _, v := range set.Sorted() {
		out = append(out, Value(v))
	}
	return out, nil
}

// OFConsensus is anonymous obstruction-free consensus from shared memory
// (the construction the paper cites as Guerraoui & Ruppert [9], built here
// from adopt-commit objects over linearizable weak-sets). Safety —
// Agreement and Validity — is unconditional; a Propose call terminates
// when it finds an uncontended round, so callers under contention should
// retry with backoff. Safe for concurrent use.
type OFConsensus struct {
	inner *obstruction.Consensus
}

// NewOFConsensus returns a fresh instance.
func NewOFConsensus() *OFConsensus {
	return &OFConsensus{inner: obstruction.NewConsensus()}
}

// Propose offers v and runs up to maxRounds adopt-commit rounds. ok is
// false when every round stayed contended — retry (possibly after a
// backoff); the instance remains usable and safe.
func (c *OFConsensus) Propose(v Value, maxRounds int) (decided Value, ok bool, err error) {
	got, ok, err := c.inner.Propose(values.Value(v), maxRounds)
	return Value(got), ok, err
}

// Decided reports whether some proposer already decided, and the value.
func (c *OFConsensus) Decided() (Value, bool) {
	v, ok := c.inner.Decided()
	return Value(v), ok
}

// Register is a regular multi-writer multi-reader register built from a
// weak-set (Proposition 1). Safe for concurrent use; reads concurrent with
// writes may disagree, quiescent reads agree.
type Register struct {
	inner *register.FromWeakSet
}

// NewRegister returns an unwritten register backed by a fresh weak-set.
func NewRegister() *Register {
	var ws weakset.Memory
	return &Register{inner: register.NewFromWeakSet(&ws)}
}

// Write stores v.
func (r *Register) Write(v Value) error {
	if !values.Value(v).Valid() {
		return fmt.Errorf("anonconsensus: invalid value %q", string(v))
	}
	return r.inner.Write(values.Value(v))
}

// Read returns the register's value; ok is false if never written.
func (r *Register) Read() (v Value, ok bool, err error) {
	raw, err := r.inner.Read()
	if err != nil {
		return "", false, err
	}
	return Value(raw), raw != "", nil
}
