package anonconsensus

import (
	"testing"
	"time"
)

func TestSimulateES(t *testing.T) {
	res, err := Simulate(Config{
		Proposals: []Value{NumValue(1), NumValue(2), NumValue(3)},
		Env:       EnvES,
		GST:       6,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreed()
	if !ok {
		t.Fatalf("no agreement: %+v", res.Decisions)
	}
	if v != NumValue(1) && v != NumValue(2) && v != NumValue(3) {
		t.Errorf("decided non-proposal %q", v)
	}
}

func TestSimulateESS(t *testing.T) {
	res, err := Simulate(Config{
		Proposals:    []Value{NumValue(5), NumValue(6), NumValue(7), NumValue(8)},
		Env:          EnvESS,
		GST:          8,
		StableSource: 2,
		Seed:         3,
		MaxRounds:    600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Agreed(); !ok {
		t.Fatalf("no agreement: %+v", res.Decisions)
	}
}

func TestSimulateWithCrashes(t *testing.T) {
	res, err := Simulate(Config{
		Proposals: []Value{NumValue(1), NumValue(2), NumValue(3), NumValue(4)},
		Env:       EnvES,
		GST:       8,
		Crashes:   map[int]int{0: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decisions[0].Crashed {
		t.Error("process 0 should be crashed")
	}
	if _, ok := res.Agreed(); !ok {
		t.Fatal("survivors must agree")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{
		Proposals: []Value{NumValue(1), NumValue(2), NumValue(3)},
		Env:       EnvES,
		GST:       10,
		Seed:      42,
	}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Fatalf("nondeterministic: %+v vs %+v", a.Decisions[i], b.Decisions[i])
		}
	}
}

func TestSolveLiveES(t *testing.T) {
	res, err := Solve(Config{
		Proposals: []Value{NumValue(10), NumValue(20), NumValue(30)},
		Env:       EnvES,
		GST:       4,
		Interval:  5 * time.Millisecond,
		Timeout:   15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Agreed(); !ok {
		t.Fatalf("live run did not agree: %+v", res.Decisions)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no proposals", Config{}},
		{"empty proposal", Config{Proposals: []Value{""}}},
		{"bad env", Config{Proposals: []Value{"a"}, Env: Environment(9)}},
		{"bad source", Config{Proposals: []Value{"a"}, Env: EnvESS, StableSource: 5}},
		{"crashed source", Config{
			Proposals: []Value{"a", "b"}, Env: EnvESS, StableSource: 0,
			Crashes: map[int]int{0: 1},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Simulate(tt.cfg); err == nil {
				t.Error("invalid config accepted by Simulate")
			}
			if _, err := Solve(tt.cfg); err == nil {
				t.Error("invalid config accepted by Solve")
			}
		})
	}
}

func TestEnvironmentString(t *testing.T) {
	if EnvES.String() != "ES" || EnvESS.String() != "ESS" {
		t.Error("environment names wrong")
	}
	if Environment(9).String() == "" {
		t.Error("unknown environment must still render")
	}
}

func TestWeakSetAPI(t *testing.T) {
	s := NewWeakSet()
	if err := s.Add("banana"); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("apple"); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(""); err == nil {
		t.Error("empty value accepted")
	}
	got, err := s.Get()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "apple" || got[1] != "banana" {
		t.Errorf("Get = %v", got)
	}
}

func TestRegisterAPI(t *testing.T) {
	r := NewRegister()
	if _, ok, _ := r.Read(); ok {
		t.Error("unwritten register reports ok")
	}
	if err := r.Write("v1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(""); err == nil {
		t.Error("empty write accepted")
	}
	v, ok, err := r.Read()
	if err != nil || !ok || v != "v1" {
		t.Errorf("Read = %q,%v,%v", v, ok, err)
	}
}

func TestAgreedEdgeCases(t *testing.T) {
	r := &Result{Decisions: []Decision{{Proc: 0, Decided: false}}}
	if _, ok := r.Agreed(); ok {
		t.Error("undecided process must block agreement")
	}
	r = &Result{Decisions: []Decision{
		{Proc: 0, Decided: true, Value: "a"},
		{Proc: 1, Decided: true, Value: "b"},
	}}
	if _, ok := r.Agreed(); ok {
		t.Error("divergent decisions must not agree")
	}
	r = &Result{Decisions: []Decision{
		{Proc: 0, Crashed: true},
		{Proc: 1, Decided: true, Value: "a"},
	}}
	if v, ok := r.Agreed(); !ok || v != "a" {
		t.Error("crashed processes must not block agreement")
	}
}

func TestOFConsensusAPI(t *testing.T) {
	c := NewOFConsensus()
	if _, ok := c.Decided(); ok {
		t.Error("fresh instance reports decided")
	}
	v, ok, err := c.Propose("alpha", 10)
	if err != nil || !ok || v != "alpha" {
		t.Fatalf("solo propose = %q,%v,%v", v, ok, err)
	}
	// A later conflicting proposer must land on the decided value.
	w, ok, err := c.Propose("beta", 10)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if w != "alpha" {
		t.Errorf("second proposer decided %q, want alpha", w)
	}
	if got, ok := c.Decided(); !ok || got != "alpha" {
		t.Errorf("Decided = %q,%v", got, ok)
	}
	if _, _, err := c.Propose("", 10); err == nil {
		t.Error("empty proposal accepted")
	}
	if _, _, err := c.Propose("x", 0); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestSolveLiveESS(t *testing.T) {
	res, err := Solve(Config{
		Proposals:    []Value{NumValue(1), NumValue(2), NumValue(3)},
		Env:          EnvESS,
		GST:          4,
		StableSource: 1,
		Interval:     5 * time.Millisecond,
		Timeout:      30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Agreed(); !ok {
		t.Fatalf("live ESS run did not agree: %+v", res.Decisions)
	}
}
