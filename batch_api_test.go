package anonconsensus_test

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"anonconsensus"
)

func batchItems() []anonconsensus.BatchItem {
	var items []anonconsensus.BatchItem
	for seed := int64(0); seed < 8; seed++ {
		items = append(items, anonconsensus.BatchItem{
			Proposals: []anonconsensus.Value{
				anonconsensus.NumValue(seed), anonconsensus.NumValue(seed + 1), anonconsensus.NumValue(seed + 2),
			},
			Opts: []anonconsensus.Option{anonconsensus.WithSeed(seed)},
		})
	}
	return items
}

func TestRunBatchMatchesSimulate(t *testing.T) {
	items := batchItems()
	want := make([]*anonconsensus.Result, len(items))
	for i, item := range items {
		res, err := anonconsensus.Simulate(anonconsensus.Config{
			Proposals: item.Proposals, Env: anonconsensus.EnvES, GST: 6, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		got, err := anonconsensus.RunBatch(context.Background(), items,
			anonconsensus.WithEnv(anonconsensus.EnvES),
			anonconsensus.WithGST(6),
			anonconsensus.WithParallelism(par),
		)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d results, want %d", par, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i].Decisions, want[i].Decisions) || got[i].Rounds != want[i].Rounds {
				t.Errorf("parallelism %d item %d: batch result diverged from Simulate:\n got %+v\nwant %+v",
					par, i, got[i], want[i])
			}
		}
	}
}

func TestRunBatchItemErrors(t *testing.T) {
	items := batchItems()
	items[2].Proposals = nil // invalid: no proposals
	_, err := anonconsensus.RunBatch(context.Background(), items)
	if err == nil || !strings.Contains(err.Error(), "batch item 2") {
		t.Errorf("err = %v, want a batch item 2 validation error", err)
	}

	items = batchItems()
	items[5].Opts = append(items[5].Opts, anonconsensus.WithGST(-1))
	_, err = anonconsensus.RunBatch(context.Background(), items)
	if err == nil || !strings.Contains(err.Error(), "batch item 5") {
		t.Errorf("err = %v, want a batch item 5 option error", err)
	}

	// WithParallelism is batch-level; inside an item it must be rejected,
	// not silently ignored.
	items = batchItems()
	items[1].Opts = append(items[1].Opts, anonconsensus.WithParallelism(1))
	_, err = anonconsensus.RunBatch(context.Background(), items)
	if err == nil || !strings.Contains(err.Error(), "batch item 1") || !strings.Contains(err.Error(), "batch-level") {
		t.Errorf("err = %v, want a batch item 1 per-item-parallelism error", err)
	}
}

func TestRunBatchEmptyAndCancelled(t *testing.T) {
	results, err := anonconsensus.RunBatch(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: results=%d err=%v", len(results), err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = anonconsensus.RunBatch(ctx, batchItems())
	if err == nil {
		t.Fatal("cancelled batch must report an error")
	}
}

func TestWithParallelismValidation(t *testing.T) {
	if _, err := anonconsensus.RunBatch(context.Background(), batchItems(), anonconsensus.WithParallelism(-1)); err == nil {
		t.Error("negative parallelism accepted")
	}
	if _, err := anonconsensus.RunBatch(context.Background(), batchItems()[:1], anonconsensus.WithParallelism(0)); err != nil {
		t.Errorf("parallelism 0 (default) rejected: %v", err)
	}
}
