package anonconsensus_test

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"anonconsensus"
	"anonconsensus/internal/core"
	"anonconsensus/internal/env"
	"anonconsensus/internal/expt"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/msemu"
	"anonconsensus/internal/register"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

// ---------------------------------------------------------------------------
// One benchmark per experiment table/figure (T1–T10, F1–F3). Each runs the
// exact harness entry point cmd/anonsim uses, in quick mode, so `go test
// -bench .` regenerates every result end to end.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := expt.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1ESDecision(b *testing.B)          { benchExperiment(b, "T1") }
func BenchmarkT2ESLateGST(b *testing.B)           { benchExperiment(b, "T2") }
func BenchmarkT3ESSDecision(b *testing.B)         { benchExperiment(b, "T3") }
func BenchmarkT4LeaderConvergence(b *testing.B)   { benchExperiment(b, "T4") }
func BenchmarkT5Crashes(b *testing.B)             { benchExperiment(b, "T5") }
func BenchmarkT6MessageComplexity(b *testing.B)   { benchExperiment(b, "T6") }
func BenchmarkT7WeakSetMS(b *testing.B)           { benchExperiment(b, "T7") }
func BenchmarkT8Registers(b *testing.B)           { benchExperiment(b, "T8") }
func BenchmarkT9MSEmulation(b *testing.B)         { benchExperiment(b, "T9") }
func BenchmarkT10Sigma(b *testing.B)              { benchExperiment(b, "T10") }
func BenchmarkF1LatencyDistribution(b *testing.B) { benchExperiment(b, "F1") }
func BenchmarkF2LeaderTimeline(b *testing.B)      { benchExperiment(b, "F2") }
func BenchmarkF3MSNoConsensus(b *testing.B)       { benchExperiment(b, "F3") }
func BenchmarkS1ScenarioSweep(b *testing.B)       { benchExperiment(b, "S1") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: the primitives the tables are built from.

func BenchmarkESConsensusRound(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			props := core.DistinctProposals(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.RunES(props, core.RunOpts{Policy: sim.Synchronous{}})
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllCorrectDecided() {
					b.Fatal("undecided")
				}
			}
		})
	}
}

// BenchmarkESConsensus measures one big-n ES consensus run end to end on a
// reused engine: the flat-state engine's headline numbers (PERFORMANCE.md
// "Flat-state engine and dominance-aware merging"). At these sizes the
// per-round delivery fan-out is n² envelopes, so the benchmark is dominated
// by exactly the paths the dominance check and the flat state target.
// n=1024 is skipped in short mode; `make bench-smoke` runs both.
func BenchmarkESConsensus(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			if n > 256 && testing.Short() {
				b.Skip("n=1024 single runs are slow; run without -short")
			}
			props := core.DistinctProposals(n)
			mk := func() sim.Config {
				return core.ConfigES(props, core.RunOpts{Policy: sim.Synchronous{}})
			}
			eng, err := sim.New(mk())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := eng.Run()
				if !res.AllCorrectDecided() {
					b.Fatal("undecided")
				}
				if err := eng.Reset(mk()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkESConsensusLossy is the BenchmarkESConsensusRound workload with
// the scenario plane's link faults dialed in (10% loss, 10% duplication):
// it measures what the per-delivery fault draws and the extra duplicate
// deliveries cost on the hot path. Termination is not asserted — loss
// deliberately voids the guarantee; the run bound caps the work instead.
func BenchmarkESConsensusLossy(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			props := core.DistinctProposals(n)
			b.ReportAllocs()
			rounds := 0
			for i := 0; i < b.N; i++ {
				res, err := core.RunES(props, core.RunOpts{
					Policy:   &sim.ES{GST: 6, Pre: sim.MS{Seed: int64(i)}},
					Scenario: &env.Scenario{Seed: int64(i), LossPct: 10, DupPct: 10},
				})
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
			}
			if rounds == 0 {
				b.Fatal("no rounds executed")
			}
		})
	}
}

func BenchmarkESSConsensusRound(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			props := core.DistinctProposals(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.RunESS(props, core.RunOpts{
					Policy:    &sim.ESS{GST: 6, StableSource: 0, Pre: sim.MS{Seed: int64(i)}},
					MaxRounds: 400,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllCorrectDecided() {
					b.Fatal("undecided")
				}
			}
		})
	}
}

func BenchmarkWeakSetAddLatency(b *testing.B) {
	ops := []weakset.ScheduledOp{{Proc: 0, Round: 1, Kind: weakset.OpAdd, Value: values.Num(1)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := weakset.RunMS(5, ops, &sim.MS{Seed: int64(i), MaxDelay: 3}, 60, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CompletedAdds()) != 1 {
			b.Fatal("add incomplete")
		}
	}
}

func BenchmarkABDWrite(b *testing.B) {
	for _, n := range []int{3, 5, 9} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			cluster := register.NewABD(n)
			defer cluster.Close()
			w := cluster.Writer(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Write(values.Num(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkABDRead(b *testing.B) {
	cluster := register.NewABD(5)
	defer cluster.Close()
	if err := cluster.Write(values.Num(1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegisterFromWeakSet measures a whole register session — 64
// write+read pairs against a fresh weak set — as one op. Bounding the
// session matters: the paper's construction adds a (rank, value) pair on
// every write, so a set shared across iterations grows without bound and
// the reported ns/op would be an artifact of the iteration count.
func BenchmarkRegisterFromWeakSet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var ws weakset.Memory
		reg := register.NewFromWeakSet(&ws)
		for j := 0; j < 64; j++ {
			if err := reg.Write(values.Num(int64(j))); err != nil {
				b.Fatal(err)
			}
			if _, err := reg.Read(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMSEmulationRound(b *testing.B) {
	props := core.DistinctProposals(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := msemu.Run(msemu.Config{
			N:         4,
			Automaton: func(j int) giraf.Automaton { return core.NewES(props[j]) },
			Codec:     msemu.SetCodec{},
			Set:       &weakset.Memory{},
			MaxRounds: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Errs) > 0 {
			b.Fatal(res.Errs)
		}
	}
}

func BenchmarkLiveSolve(b *testing.B) {
	// Real-time rounds: the interval must leave generous headroom for
	// scheduler noise under benchmark load, or "timely" sleeps overshoot
	// and the ES guarantee silently degrades.
	props := []anonconsensus.Value{
		anonconsensus.NumValue(1), anonconsensus.NumValue(2), anonconsensus.NumValue(3),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := anonconsensus.Solve(anonconsensus.Config{
			Proposals: props,
			Env:       anonconsensus.EnvES,
			GST:       2,
			Interval:  10 * time.Millisecond,
			Timeout:   60 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := res.Agreed(); !ok {
			b.Fatal("no agreement")
		}
	}
}

func BenchmarkHistoryCounters(b *testing.B) {
	// The pseudo-leader data structure on a deep history (the ESS hot path).
	h := values.NewHistory(values.Num(1))
	for i := 0; i < 64; i++ {
		h = h.Append(values.Num(int64(i % 3)))
	}
	c := values.NewCounters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Bump(h)
		if !c.IsMaximal(h) {
			b.Fatal("bumped history must be maximal")
		}
	}
}

// ---------------------------------------------------------------------------
// Trial-plane benchmarks: engine reuse and the batch runner.

// esBatchConfigs builds one ES trial grid (fresh policies every call).
func esBatchConfigs(runs, n int) []sim.Config {
	cfgs := make([]sim.Config, runs)
	props := core.DistinctProposals(n)
	for i := range cfgs {
		cfgs[i] = core.ConfigES(props, core.RunOpts{
			Policy: &sim.ES{GST: 8, Pre: sim.MS{Seed: int64(i), MaxDelay: 3}},
		})
	}
	return cfgs
}

// BenchmarkESEngineReuse runs the same workload as
// BenchmarkESConsensusRound but on one engine rearmed with Engine.Reset,
// isolating what the pooled procs + ring buffer save per run.
func BenchmarkESEngineReuse(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			props := core.DistinctProposals(n)
			mk := func() sim.Config {
				return core.ConfigES(props, core.RunOpts{Policy: sim.Synchronous{}})
			}
			eng, err := sim.New(mk())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := eng.Run()
				if !res.AllCorrectDecided() {
					b.Fatal("undecided")
				}
				if err := eng.Reset(mk()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchES measures a 64-run ES trial grid through RunBatch,
// sequentially and at full parallelism; the gap is the multicore speedup
// of the trial plane (identical bytes out either way).
func BenchmarkBatchES(b *testing.B) {
	for _, par := range []int{1, 0} {
		name := fmt.Sprintf("parallel=%d", par)
		if par == 0 {
			name = "parallel=max"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := sim.RunBatch(context.Background(), esBatchConfigs(64, 8), sim.BatchOpts{Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					if !res.AllCorrectDecided() {
						b.Fatal("undecided")
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Multi-tenant service benchmarks: sustained throughput through a Node
// session (Propose/Wait over a worker pool), reported as decisions/sec
// (instances decided per second) and queue-ms (mean per-instance queue
// wait). The decisions/sec figure rides into BENCH_consensus.json as a
// custom metric via tools/benchjson.

// benchServiceThroughput pushes `instances` consensus instances through
// one Node from `producers` concurrent proposers, each Proposing
// (blocking on queue backpressure) and Waiting its own instances.
func benchServiceThroughput(b *testing.B, mk func() anonconsensus.Transport, instances int, opts ...anonconsensus.Option) {
	b.Helper()
	b.ReportAllocs()
	const producers = 16
	var totalSec, totalQueueMs float64
	for i := 0; i < b.N; i++ {
		node, err := anonconsensus.NewNode(mk(), opts...)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := p; j < instances; j += producers {
					id := fmt.Sprintf("b%d-i%d", i, j)
					if err := node.Propose(context.Background(), id,
						[]anonconsensus.Value{
							anonconsensus.NumValue(int64(j)),
							anonconsensus.NumValue(int64(j + 1)),
							anonconsensus.NumValue(int64(j + 2)),
						},
						anonconsensus.WithSeed(int64(j))); err != nil {
						b.Error(err)
						return
					}
					if _, err := node.Wait(context.Background(), id); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		stats := node.Stats()
		if err := node.Close(); err != nil {
			b.Fatal(err)
		}
		if stats.Completed != int64(instances) {
			b.Fatalf("completed %d of %d instances", stats.Completed, instances)
		}
		totalSec += elapsed.Seconds()
		totalQueueMs += stats.QueueWait.Seconds() * 1e3 / float64(instances)
	}
	b.ReportMetric(float64(instances)*float64(b.N)/totalSec, "decisions/sec")
	b.ReportMetric(totalQueueMs/float64(b.N), "queue-ms")
}

// BenchmarkServiceSimBaseline1k is the pre-PR baseline: sequential
// session (k=1) over the unpooled sim transport (fresh engine per Run).
func BenchmarkServiceSimBaseline1k(b *testing.B) {
	benchServiceThroughput(b, anonconsensus.NewSimTransportUnpooledForTest, 1000,
		anonconsensus.WithEnv(anonconsensus.EnvES), anonconsensus.WithGST(2))
}

// BenchmarkServiceSimSequential1k isolates the engine pool: still k=1,
// but Run reuses pooled engines via Reset instead of allocating.
func BenchmarkServiceSimSequential1k(b *testing.B) {
	benchServiceThroughput(b, anonconsensus.NewSimTransport, 1000,
		anonconsensus.WithEnv(anonconsensus.EnvES), anonconsensus.WithGST(2))
}

// BenchmarkServiceSimPooled1k adds the worker pool (k=8) on top of the
// engine pool. The sim backend is CPU-bound, so the speedup over
// Sequential1k tracks the core count — on a single-core host the win is
// confined to the allocation savings, and the ≥4× multiplexing headline
// shows on the timer-bound live/TCP backends instead (PERFORMANCE.md).
func BenchmarkServiceSimPooled1k(b *testing.B) {
	benchServiceThroughput(b, anonconsensus.NewSimTransport, 1000,
		anonconsensus.WithEnv(anonconsensus.EnvES), anonconsensus.WithGST(2),
		anonconsensus.WithMaxInFlight(8), anonconsensus.WithQueueDepth(256))
}

// BenchmarkServiceSim10k is the sustained-load shape: 10k instances
// through one session.
func BenchmarkServiceSim10k(b *testing.B) {
	if testing.Short() {
		b.Skip("10k-instance sustained run; run without -short")
	}
	benchServiceThroughput(b, anonconsensus.NewSimTransport, 10000,
		anonconsensus.WithEnv(anonconsensus.EnvES), anonconsensus.WithGST(2),
		anonconsensus.WithMaxInFlight(8), anonconsensus.WithQueueDepth(256))
}

// BenchmarkServiceLiveSequential / Pool16: the live backend's rounds are
// real timers, so overlapping instances overlap their timer waits — the
// pool multiplies throughput even on one core.
func BenchmarkServiceLiveSequential(b *testing.B) {
	benchServiceThroughput(b, anonconsensus.NewLiveTransport, 48,
		anonconsensus.WithEnv(anonconsensus.EnvES), anonconsensus.WithGST(0),
		anonconsensus.WithInterval(2*time.Millisecond), anonconsensus.WithTimeout(30*time.Second))
}

func BenchmarkServiceLivePool16(b *testing.B) {
	benchServiceThroughput(b, anonconsensus.NewLiveTransport, 48,
		anonconsensus.WithEnv(anonconsensus.EnvES), anonconsensus.WithGST(0),
		anonconsensus.WithInterval(2*time.Millisecond), anonconsensus.WithTimeout(30*time.Second),
		anonconsensus.WithMaxInFlight(16), anonconsensus.WithQueueDepth(64))
}

// BenchmarkServiceTCPMux runs the multiplexed TCP plane: every instance
// is an epoch on ONE shared hub and three persistent connections.
func BenchmarkServiceTCPMux(b *testing.B) {
	benchServiceThroughput(b, anonconsensus.NewTCPMuxTransport, 32,
		anonconsensus.WithEnv(anonconsensus.EnvES), anonconsensus.WithGST(0),
		anonconsensus.WithInterval(4*time.Millisecond), anonconsensus.WithTimeout(30*time.Second),
		anonconsensus.WithMaxInFlight(8), anonconsensus.WithQueueDepth(64))
}

// benchWorkloadSpec is the shared two-class mix the workload benchmarks
// drive: a bulk ES class and an interactive ESS class, Poisson arrivals.
func benchWorkloadSpec(ops int, rate float64) anonconsensus.WorkloadSpec {
	return anonconsensus.WorkloadSpec{
		Seed: 42, Ops: ops, Rate: rate,
		Classes: []anonconsensus.WorkloadClass{
			{Name: "bulk", Weight: 3, Env: anonconsensus.EnvES, N: 4, GST: 2},
			{Name: "interactive", Weight: 1, Env: anonconsensus.EnvESS, N: 3, GST: 2, StableSource: 0},
		},
	}
}

// reportWorkloadPercentiles turns per-iteration summaries into the
// p50_ms/p95_ms/p99_ms custom metrics the benchmark trajectory tracks
// (benchjson parses any `<value> <unit>` pair; compare mode reports these
// without gating on them).
func reportWorkloadPercentiles(b *testing.B, sums []anonconsensus.WorkloadSummary) {
	b.Helper()
	var p50, p95, p99, shed float64
	for _, s := range sums {
		p50 += s.P50.Seconds() * 1e3
		p95 += s.P95.Seconds() * 1e3
		p99 += s.P99.Seconds() * 1e3
		shed += s.ShedPct
	}
	n := float64(len(sums))
	b.ReportMetric(p50/n, "p50_ms")
	b.ReportMetric(p95/n, "p95_ms")
	b.ReportMetric(p99/n, "p99_ms")
	b.ReportMetric(shed/n, "shed_pct")
}

// BenchmarkWorkloadSimVirtual runs the deterministic virtual plane: the
// cost is the per-proposal simulator runs plus the queueing model, and
// the percentiles it reports are the W1 experiment's raw material.
func BenchmarkWorkloadSimVirtual(b *testing.B) {
	spec := benchWorkloadSpec(400, 300)
	spec.Servers = 8
	spec.QueueDepth = 16
	spec.AdmitRate = 500
	spec.AdmitBurst = 32
	b.ReportAllocs()
	sums := make([]anonconsensus.WorkloadSummary, 0, b.N)
	for i := 0; i < b.N; i++ {
		res, err := anonconsensus.SimulateWorkload(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		sums = append(sums, res.Summary())
	}
	reportWorkloadPercentiles(b, sums)
}

// BenchmarkWorkloadLiveNode drives the open-loop generator against a real
// Node over the live in-process transport: wall-clock arrivals, the
// node's own worker pool and admission, measured decision latencies.
func BenchmarkWorkloadLiveNode(b *testing.B) {
	spec := benchWorkloadSpec(64, 2000)
	b.ReportAllocs()
	sums := make([]anonconsensus.WorkloadSummary, 0, b.N)
	for i := 0; i < b.N; i++ {
		node, err := anonconsensus.NewNode(anonconsensus.NewLiveTransport(),
			anonconsensus.WithInterval(2*time.Millisecond),
			anonconsensus.WithTimeout(30*time.Second),
			anonconsensus.WithMaxInFlight(16), anonconsensus.WithQueueDepth(64))
		if err != nil {
			b.Fatal(err)
		}
		res, err := anonconsensus.RunWorkload(context.Background(), node, spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := node.Close(); err != nil {
			b.Fatal(err)
		}
		s := res.Summary()
		if s.Done == 0 {
			b.Fatal("no proposal served")
		}
		sums = append(sums, s)
	}
	reportWorkloadPercentiles(b, sums)
}

// BenchmarkPublicRunBatch exercises the public fan-out entry point.
func BenchmarkPublicRunBatch(b *testing.B) {
	items := make([]anonconsensus.BatchItem, 32)
	for i := range items {
		items[i] = anonconsensus.BatchItem{
			Proposals: []anonconsensus.Value{
				anonconsensus.NumValue(1), anonconsensus.NumValue(2), anonconsensus.NumValue(3),
			},
			Opts: []anonconsensus.Option{anonconsensus.WithSeed(int64(i))},
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := anonconsensus.RunBatch(context.Background(), items,
			anonconsensus.WithEnv(anonconsensus.EnvES), anonconsensus.WithGST(6))
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if _, ok := res.Agreed(); !ok {
				b.Fatal("no agreement")
			}
		}
	}
}
