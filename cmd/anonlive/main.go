// Command anonlive runs anonymous consensus over a live in-process network
// (one goroutine per process, channel broadcast with per-link latencies)
// and narrates the outcome.
//
// Usage:
//
//	anonlive -n 5 -env ess -gst 6 -source 2 -interval 5ms
//	anonlive -n 8 -env es -crash 0:2 -crash 3:5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"anonconsensus"
)

// crashFlags collects repeated -crash pid:round flags.
type crashFlags map[int]int

func (c crashFlags) String() string { return fmt.Sprint(map[int]int(c)) }

func (c crashFlags) Set(s string) error {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want pid:round, got %q", s)
	}
	pid, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad pid in %q: %w", s, err)
	}
	round, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("bad round in %q: %w", s, err)
	}
	c[pid] = round
	return nil
}

func main() {
	var (
		n        = flag.Int("n", 5, "number of anonymous processes")
		env      = flag.String("env", "es", "environment: es or ess")
		gst      = flag.Int("gst", 6, "stabilization round")
		source   = flag.Int("source", 0, "eventual stable source (ess only)")
		seed     = flag.Int64("seed", 1, "adversary seed")
		interval = flag.Duration("interval", 5*time.Millisecond, "round timer period")
		timeout  = flag.Duration("timeout", 30*time.Second, "run timeout")
		crashes  = crashFlags{}
	)
	flag.Var(crashes, "crash", "crash schedule pid:round (repeatable)")
	flag.Parse()

	if err := run(*n, *env, *gst, *source, *seed, *interval, *timeout, crashes); err != nil {
		fmt.Fprintln(os.Stderr, "anonlive:", err)
		os.Exit(1)
	}
}

func run(n int, envName string, gst, source int, seed int64, interval, timeout time.Duration, crashes crashFlags) error {
	var env anonconsensus.Environment
	switch strings.ToLower(envName) {
	case "es":
		env = anonconsensus.EnvES
	case "ess":
		env = anonconsensus.EnvESS
	default:
		return fmt.Errorf("unknown environment %q (want es or ess)", envName)
	}

	proposals := make([]anonconsensus.Value, n)
	for i := range proposals {
		proposals[i] = anonconsensus.NumValue(int64(100 + i))
	}
	fmt.Printf("starting %d anonymous processes in %s (GST=%d, seed=%d, interval=%s)\n",
		n, env, gst, seed, interval)
	for pid, r := range crashes {
		fmt.Printf("  process %d will crash after round %d\n", pid, r)
	}

	res, err := anonconsensus.Solve(anonconsensus.Config{
		Proposals:    proposals,
		Env:          env,
		GST:          gst,
		StableSource: source,
		Seed:         seed,
		Crashes:      crashes,
		Interval:     interval,
		Timeout:      timeout,
	})
	if err != nil {
		return err
	}

	for _, d := range res.Decisions {
		switch {
		case d.Crashed:
			fmt.Printf("  p%-2d crashed\n", d.Proc)
		case d.Decided:
			fmt.Printf("  p%-2d decided %s in round %d\n", d.Proc, d.Value, d.Round)
		default:
			fmt.Printf("  p%-2d undecided at timeout\n", d.Proc)
		}
	}
	if v, ok := res.Agreed(); ok {
		fmt.Printf("consensus on %s in %s\n", v, res.Elapsed.Round(time.Millisecond))
		return nil
	}
	return fmt.Errorf("no consensus within %s", timeout)
}
