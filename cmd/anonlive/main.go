// Command anonlive runs anonymous consensus over a live in-process network
// (one goroutine per process, channel broadcast with per-link latencies)
// and narrates each instance's outcome as it completes.
//
// Usage:
//
//	anonlive -n 5 -env ess -gst 6 -source 2 -interval 5ms
//	anonlive -n 8 -env es -crash 0:2 -crash 3:5
//	anonlive -n 5 -instances 3        # several instances over one session
//	anonlive -instances 20 -inflight 8 -admit 50:10   # service mode
//
// -inflight widens the session's worker pool so several instances run
// concurrently; -admit rate:burst puts a token bucket in front of
// Propose — shed instances are reported, not fatal — and the session's
// occupancy and admission counters are printed on shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"anonconsensus"
)

// crashFlags collects repeated -crash pid:round flags.
type crashFlags map[int]int

func (c crashFlags) String() string { return fmt.Sprint(map[int]int(c)) }

func (c crashFlags) Set(s string) error {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want pid:round, got %q", s)
	}
	pid, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad pid in %q: %w", s, err)
	}
	round, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("bad round in %q: %w", s, err)
	}
	c[pid] = round
	return nil
}

// parseAdmit parses an -admit rate:burst flag value ("" = disabled).
func parseAdmit(s string) (rate float64, burst int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want rate:burst, got %q", s)
	}
	rate, err = strconv.ParseFloat(parts[0], 64)
	if err != nil || rate <= 0 {
		return 0, 0, fmt.Errorf("bad rate in %q (want a positive number)", s)
	}
	burst, err = strconv.Atoi(parts[1])
	if err != nil || burst < 1 {
		return 0, 0, fmt.Errorf("bad burst in %q (want a positive integer)", s)
	}
	return rate, burst, nil
}

func main() {
	var (
		n         = flag.Int("n", 5, "number of anonymous processes")
		env       = flag.String("env", "es", "environment: es or ess")
		gst       = flag.Int("gst", 6, "stabilization round")
		source    = flag.Int("source", 0, "eventual stable source (ess only)")
		seed      = flag.Int64("seed", 1, "adversary seed")
		interval  = flag.Duration("interval", 5*time.Millisecond, "round timer period")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-instance timeout")
		instances = flag.Int("instances", 1, "number of consensus instances to run over the session")
		inflight  = flag.Int("inflight", 1, "max concurrently running instances (worker pool width)")
		admit     = flag.String("admit", "", "admission token bucket as rate:burst (e.g. 50:10; empty = no admission control)")
		crashes   = crashFlags{}
	)
	flag.Var(crashes, "crash", "crash schedule pid:round (repeatable)")
	flag.Parse()

	if err := run(*n, *env, *gst, *source, *seed, *interval, *timeout, *instances, *inflight, *admit, crashes); err != nil {
		fmt.Fprintln(os.Stderr, "anonlive:", err)
		os.Exit(1)
	}
}

func run(n int, envName string, gst, source int, seed int64, interval, timeout time.Duration, instances, inflight int, admit string, crashes crashFlags) error {
	env, err := anonconsensus.ParseEnvironment(envName)
	if err != nil {
		return err
	}
	if instances < 1 {
		return fmt.Errorf("need at least 1 instance, got %d", instances)
	}
	opts := []anonconsensus.Option{
		anonconsensus.WithEnv(env),
		anonconsensus.WithGST(gst),
		anonconsensus.WithStableSource(source),
		anonconsensus.WithSeed(seed),
		anonconsensus.WithCrashes(crashes),
		anonconsensus.WithInterval(interval),
		anonconsensus.WithTimeout(timeout),
	}
	if inflight > 1 {
		opts = append(opts, anonconsensus.WithMaxInFlight(inflight))
	}
	rate, burst, err := parseAdmit(admit)
	if err != nil {
		return fmt.Errorf("-admit: %w", err)
	}
	if rate > 0 {
		opts = append(opts, anonconsensus.WithAdmission(rate, burst))
	}

	node, err := anonconsensus.NewNode(anonconsensus.NewLiveTransport(), opts...)
	if err != nil {
		return err
	}
	defer node.Close()

	fmt.Printf("session: %d anonymous processes in %s over the %s transport (GST=%d, seed=%d, interval=%s)\n",
		n, env, node.Transport().Name(), gst, seed, interval)
	for pid, r := range crashes {
		fmt.Printf("  process %d will crash after round %d\n", pid, r)
	}

	// Enqueue every instance up front; the node runs them in Propose order
	// (up to -inflight at a time). Under -admit, a shed instance is an
	// expected operator-visible outcome, not a failure. The Decisions feed
	// narrates (best-effort by design), while Wait is the authoritative
	// per-instance outcome the exit status hangs on.
	ctx := context.Background()
	var ids []string
	for k := 0; k < instances; k++ {
		proposals := make([]anonconsensus.Value, n)
		for i := range proposals {
			proposals[i] = anonconsensus.NumValue(int64(100*(k+1) + i))
		}
		id := fmt.Sprintf("instance-%d", k+1)
		if err := node.Propose(ctx, id, proposals); err != nil {
			if errors.Is(err, anonconsensus.ErrOverloaded) {
				fmt.Printf("== %s shed: %v ==\n", id, err)
				continue
			}
			return err
		}
		ids = append(ids, id)
	}

	printerDone := make(chan struct{})
	go func() {
		defer close(printerDone)
		for ev := range node.Decisions() {
			switch ev.Kind {
			case anonconsensus.EventInstanceStarted:
				fmt.Printf("== %s started ==\n", ev.Instance)
			case anonconsensus.EventDecision:
				fmt.Printf("  p%-2d decided %s in round %d\n", ev.Decision.Proc, ev.Decision.Value, ev.Decision.Round)
			}
		}
	}()

	for _, id := range ids {
		res, err := node.Wait(ctx, id)
		if err != nil {
			return err
		}
		for _, d := range res.Decisions {
			switch {
			case d.Crashed:
				fmt.Printf("  p%-2d crashed\n", d.Proc)
			case !d.Decided:
				fmt.Printf("  p%-2d undecided at timeout\n", d.Proc)
			}
		}
		v, ok := res.Agreed()
		if !ok {
			return fmt.Errorf("%s: no consensus within %s", id, timeout)
		}
		fmt.Printf("== %s: consensus on %s in %s ==\n", id, v, res.Elapsed.Round(time.Millisecond))
	}
	// Close terminates the feed; joining the printer keeps the last
	// instance's narration from being lost at process exit.
	node.Close()
	<-printerDone
	s := node.Stats()
	fmt.Printf("session stats: admitted=%d rejected=%d completed=%d peak-in-flight=%d/%d queue-wait=%s events-dropped=%d\n",
		s.Admitted, s.Rejected, s.Completed, s.PeakInFlight, s.MaxInFlight,
		s.QueueWait.Round(time.Millisecond), s.EventsDropped)
	return nil
}
