package main

import (
	"testing"
	"time"
)

func TestCrashFlagsParsing(t *testing.T) {
	c := crashFlags{}
	if err := c.Set("3:7"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("0:2"); err != nil {
		t.Fatal(err)
	}
	if c[3] != 7 || c[0] != 2 {
		t.Errorf("parsed = %v", c)
	}
	for _, bad := range []string{"", "3", "x:1", "1:y", ":"} {
		if err := c.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	if c.String() == "" {
		t.Error("String must render")
	}
}

func TestRunRejectsUnknownEnv(t *testing.T) {
	if err := run(3, "banana", 2, 0, 1, time.Millisecond, time.Second, 1, crashFlags{}); err == nil {
		t.Error("unknown environment accepted")
	}
}

func TestRunRejectsZeroInstances(t *testing.T) {
	if err := run(3, "es", 2, 0, 1, time.Millisecond, time.Second, 0, crashFlags{}); err == nil {
		t.Error("zero instances accepted")
	}
}

func TestRunLiveEndToEnd(t *testing.T) {
	if err := run(3, "es", 2, 0, 1, 4*time.Millisecond, 20*time.Second, 1, crashFlags{}); err != nil {
		t.Errorf("es run failed: %v", err)
	}
}

func TestRunLiveESSWithCrash(t *testing.T) {
	if err := run(4, "ess", 3, 2, 1, 4*time.Millisecond, 30*time.Second, 1, crashFlags{0: 2}); err != nil {
		t.Errorf("ess run failed: %v", err)
	}
}

func TestRunLiveMultiInstanceSession(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple live instances in -short mode")
	}
	if err := run(3, "es", 2, 0, 1, 4*time.Millisecond, 20*time.Second, 3, crashFlags{}); err != nil {
		t.Errorf("multi-instance session failed: %v", err)
	}
}
