package main

import (
	"testing"
	"time"
)

func TestCrashFlagsParsing(t *testing.T) {
	c := crashFlags{}
	if err := c.Set("3:7"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("0:2"); err != nil {
		t.Fatal(err)
	}
	if c[3] != 7 || c[0] != 2 {
		t.Errorf("parsed = %v", c)
	}
	for _, bad := range []string{"", "3", "x:1", "1:y", ":"} {
		if err := c.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	if c.String() == "" {
		t.Error("String must render")
	}
}

func TestAdmitFlagParsing(t *testing.T) {
	rate, burst, err := parseAdmit("50:10")
	if err != nil || rate != 50 || burst != 10 {
		t.Errorf("parseAdmit(50:10) = %v, %v, %v", rate, burst, err)
	}
	rate, burst, err = parseAdmit("0.5:1")
	if err != nil || rate != 0.5 || burst != 1 {
		t.Errorf("parseAdmit(0.5:1) = %v, %v, %v", rate, burst, err)
	}
	if rate, burst, err = parseAdmit(""); err != nil || rate != 0 || burst != 0 {
		t.Errorf("empty -admit must mean disabled, got %v, %v, %v", rate, burst, err)
	}
	for _, bad := range []string{"50", "x:1", "1:y", ":", "-1:5", "5:0"} {
		if _, _, err := parseAdmit(bad); err == nil {
			t.Errorf("parseAdmit(%q) accepted", bad)
		}
	}
}

func TestRunRejectsUnknownEnv(t *testing.T) {
	if err := run(3, "banana", 2, 0, 1, time.Millisecond, time.Second, 1, 1, "", crashFlags{}); err == nil {
		t.Error("unknown environment accepted")
	}
}

func TestRunRejectsZeroInstances(t *testing.T) {
	if err := run(3, "es", 2, 0, 1, time.Millisecond, time.Second, 0, 1, "", crashFlags{}); err == nil {
		t.Error("zero instances accepted")
	}
}

func TestRunRejectsBadAdmit(t *testing.T) {
	if err := run(3, "es", 2, 0, 1, time.Millisecond, time.Second, 1, 1, "nope", crashFlags{}); err == nil {
		t.Error("malformed -admit accepted")
	}
}

func TestRunLiveEndToEnd(t *testing.T) {
	if err := run(3, "es", 2, 0, 1, 4*time.Millisecond, 20*time.Second, 1, 1, "", crashFlags{}); err != nil {
		t.Errorf("es run failed: %v", err)
	}
}

func TestRunLiveESSWithCrash(t *testing.T) {
	if err := run(4, "ess", 3, 2, 1, 4*time.Millisecond, 30*time.Second, 1, 1, "", crashFlags{0: 2}); err != nil {
		t.Errorf("ess run failed: %v", err)
	}
}

func TestRunLiveMultiInstanceSession(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple live instances in -short mode")
	}
	if err := run(3, "es", 2, 0, 1, 4*time.Millisecond, 20*time.Second, 3, 1, "", crashFlags{}); err != nil {
		t.Errorf("multi-instance session failed: %v", err)
	}
}

// TestRunLiveServiceMode drives the service shape end to end: a worker
// pool runs instances concurrently while the token bucket sheds the
// overflow — shed instances must not fail the run.
func TestRunLiveServiceMode(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple live instances in -short mode")
	}
	// Burst 2 at a negligible refill rate: of 4 instances, 2 are admitted
	// and 2 shed, and the run still exits cleanly.
	if err := run(3, "es", 2, 0, 1, 4*time.Millisecond, 20*time.Second, 4, 4, "0.001:2", crashFlags{}); err != nil {
		t.Errorf("service-mode run failed: %v", err)
	}
}
