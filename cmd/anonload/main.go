// Command anonload drives the open-loop workload plane: it generates
// seeded traffic (Poisson, Gamma or Weibull arrivals, multi-class mixes)
// against a consensus backend and prints the SLO report — p50/p95/p99
// decision latency, throughput, shed rate and per-class fairness.
//
// Usage:
//
//	anonload -ops 200 -rate 400                     # virtual plane (deterministic)
//	anonload -backend sim -servers 4 -admit 300:16  # drive a real Node (sim backend)
//	anonload -backend live -interval 2ms            # drive a real Node (live network)
//	anonload -ops 200 -trace run.trace              # record the canonical trace
//	anonload -replay run.trace                      # re-execute and verify a trace
//
// The default virtual backend is fully deterministic: the same flags
// produce a byte-identical trace and report on every machine at any
// -parallel setting, and `-replay` re-executes a recorded trace and
// rejects one whose records contradict its own schedule.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"anonconsensus"
)

func main() {
	var (
		backend  = flag.String("backend", "virtual", "virtual (deterministic model), sim or live (drive a real Node)")
		seed     = flag.Int64("seed", 1, "workload seed (fixes arrivals, class mix and adversary seeds)")
		ops      = flag.Int("ops", 200, "number of proposals")
		rate     = flag.Float64("rate", 400, "mean arrival rate, proposals/sec")
		arrival  = flag.String("arrival", "poisson", "arrival process: poisson, gamma or weibull")
		shape    = flag.Float64("shape", 2, "gamma/weibull shape parameter")
		classes  = flag.String("classes", "es:4:3,ess:3:1", "client mix: comma-separated alg:n:weight")
		gst      = flag.Int("gst", 2, "stabilization round for every class")
		servers  = flag.Int("servers", 4, "virtual servers / node worker pool size")
		queue    = flag.Int("queue", 64, "queue depth")
		admit    = flag.String("admit", "", "admission token bucket, rate:burst (empty = off)")
		roundDur = flag.Duration("round", 5*time.Millisecond, "virtual cost of one consensus round")
		interval = flag.Duration("interval", 2*time.Millisecond, "live backend round interval")
		parallel = flag.Int("parallel", 0, "virtual-plane sim parallelism (0 = GOMAXPROCS)")
		traceOut = flag.String("trace", "", "write the canonical trace to this file")
		replayIn = flag.String("replay", "", "replay a recorded trace instead of running")
	)
	flag.Parse()
	if err := run(os.Stdout, options{
		backend: *backend, seed: *seed, ops: *ops, rate: *rate,
		arrival: *arrival, shape: *shape, classes: *classes, gst: *gst,
		servers: *servers, queue: *queue, admit: *admit,
		round: *roundDur, interval: *interval, parallel: *parallel,
		traceOut: *traceOut, replayIn: *replayIn,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "anonload:", err)
		os.Exit(1)
	}
}

// options carries the parsed flags (kept as one bag so tests can call run
// directly).
type options struct {
	backend  string
	seed     int64
	ops      int
	rate     float64
	arrival  string
	shape    float64
	classes  string
	gst      int
	servers  int
	queue    int
	admit    string
	round    time.Duration
	interval time.Duration
	parallel int
	traceOut string
	replayIn string
}

// parseArrival maps the flag token to the public enum.
func parseArrival(s string) (anonconsensus.ArrivalProcess, error) {
	switch s {
	case "poisson":
		return anonconsensus.PoissonArrivals, nil
	case "gamma":
		return anonconsensus.GammaArrivals, nil
	case "weibull":
		return anonconsensus.WeibullArrivals, nil
	default:
		return 0, fmt.Errorf("unknown arrival process %q (want poisson, gamma or weibull)", s)
	}
}

// parseClasses parses the -classes mix: comma-separated alg:n:weight
// entries, e.g. "es:4:3,ess:3:1". Class names are derived ("c0-es"); the
// ESS stable source defaults to process 0.
func parseClasses(s string, gst int) ([]anonconsensus.WorkloadClass, error) {
	if s == "" {
		return nil, fmt.Errorf("empty -classes")
	}
	var out []anonconsensus.WorkloadClass
	for i, entry := range strings.Split(s, ",") {
		parts := strings.Split(entry, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("class %q: want alg:n:weight", entry)
		}
		c := anonconsensus.WorkloadClass{GST: gst}
		switch parts[0] {
		case "es":
			c.Env = anonconsensus.EnvES
		case "ess":
			c.Env = anonconsensus.EnvESS
		default:
			return nil, fmt.Errorf("class %q: unknown algorithm %q (want es or ess)", entry, parts[0])
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("class %q: bad ensemble size %q", entry, parts[1])
		}
		w, err := strconv.Atoi(parts[2])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("class %q: bad weight %q", entry, parts[2])
		}
		c.N, c.Weight = n, w
		c.Name = fmt.Sprintf("c%d-%s", i, parts[0])
		out = append(out, c)
	}
	return out, nil
}

// parseAdmit parses rate:burst ("" = disabled).
func parseAdmit(s string) (rate float64, burst int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want rate:burst, got %q", s)
	}
	rate, err = strconv.ParseFloat(parts[0], 64)
	if err != nil || rate <= 0 {
		return 0, 0, fmt.Errorf("bad admission rate %q", parts[0])
	}
	burst, err = strconv.Atoi(parts[1])
	if err != nil || burst < 1 {
		return 0, 0, fmt.Errorf("bad admission burst %q", parts[1])
	}
	return rate, burst, nil
}

func run(w io.Writer, o options) error {
	if o.replayIn != "" {
		data, err := os.ReadFile(o.replayIn)
		if err != nil {
			return err
		}
		res, err := anonconsensus.ReplayWorkload(string(data))
		if err != nil {
			return fmt.Errorf("replay %s: %w", o.replayIn, err)
		}
		fmt.Fprintf(w, "replayed %s: trace verifies\n", o.replayIn)
		return finish(w, res, o.traceOut)
	}

	arrival, err := parseArrival(o.arrival)
	if err != nil {
		return err
	}
	classList, err := parseClasses(o.classes, o.gst)
	if err != nil {
		return err
	}
	admitRate, admitBurst, err := parseAdmit(o.admit)
	if err != nil {
		return err
	}
	spec := anonconsensus.WorkloadSpec{
		Seed: o.seed, Ops: o.ops, Rate: o.rate,
		Arrival: arrival, Shape: o.shape, Classes: classList,
		Servers: o.servers, QueueDepth: o.queue,
		AdmitRate: admitRate, AdmitBurst: admitBurst,
		RoundMicros: o.round.Microseconds(), Parallelism: o.parallel,
	}

	var res *anonconsensus.WorkloadResult
	switch o.backend {
	case "virtual":
		res, err = anonconsensus.SimulateWorkload(context.Background(), spec)
	case "sim", "live":
		var transport anonconsensus.Transport
		if o.backend == "sim" {
			transport = anonconsensus.NewSimTransport()
		} else {
			transport = anonconsensus.NewLiveTransport()
		}
		nodeOpts := []anonconsensus.Option{
			anonconsensus.WithMaxInFlight(o.servers),
			anonconsensus.WithQueueDepth(o.queue),
			anonconsensus.WithInterval(o.interval),
		}
		if admitRate > 0 {
			nodeOpts = append(nodeOpts, anonconsensus.WithAdmission(admitRate, admitBurst))
		}
		var node *anonconsensus.Node
		node, err = anonconsensus.NewNode(transport, nodeOpts...)
		if err != nil {
			return err
		}
		res, err = anonconsensus.RunWorkload(context.Background(), node, spec)
		if cerr := node.Close(); err == nil {
			err = cerr
		}
	default:
		return fmt.Errorf("unknown backend %q (want virtual, sim or live)", o.backend)
	}
	if err != nil {
		return err
	}
	return finish(w, res, o.traceOut)
}

// finish renders the report and optionally records the trace.
func finish(w io.Writer, res *anonconsensus.WorkloadResult, traceOut string) error {
	if err := res.WriteReport(w); err != nil {
		return err
	}
	if traceOut != "" {
		if err := os.WriteFile(traceOut, []byte(res.EncodeTrace()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s\n", traceOut)
	}
	return nil
}
