package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func baseOptions() options {
	return options{
		backend: "virtual", seed: 1, ops: 60, rate: 400,
		arrival: "poisson", shape: 2, classes: "es:4:3,ess:3:1", gst: 2,
		servers: 4, queue: 8, admit: "300:16",
		round: 5 * time.Millisecond, interval: time.Millisecond,
	}
}

func TestParseClasses(t *testing.T) {
	cs, err := parseClasses("es:4:3,ess:3:1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].N != 4 || cs[0].Weight != 3 || cs[1].Weight != 1 {
		t.Fatalf("parsed %+v", cs)
	}
	if cs[0].Name == cs[1].Name {
		t.Fatal("derived class names collide")
	}
	for _, bad := range []string{"", "es", "es:4", "es:4:3:9", "maybe:4:3", "es:x:3", "es:0:3", "es:4:0"} {
		if _, err := parseClasses(bad, 2); err == nil {
			t.Errorf("parseClasses(%q) accepted", bad)
		}
	}
}

func TestParseAdmitAndArrival(t *testing.T) {
	if rate, burst, err := parseAdmit("300:16"); err != nil || rate != 300 || burst != 16 {
		t.Errorf("parseAdmit(300:16) = %v, %v, %v", rate, burst, err)
	}
	if _, _, err := parseAdmit(""); err != nil {
		t.Errorf("empty -admit must mean disabled: %v", err)
	}
	for _, bad := range []string{"300", "x:1", "1:y", "-1:5", "5:0"} {
		if _, _, err := parseAdmit(bad); err == nil {
			t.Errorf("parseAdmit(%q) accepted", bad)
		}
	}
	for _, bad := range []string{"", "normal", "pois"} {
		if _, err := parseArrival(bad); err == nil {
			t.Errorf("parseArrival(%q) accepted", bad)
		}
	}
}

// TestVirtualRunDeterministicAndReplayable is the CLI's load-smoke in
// miniature: two identical virtual runs print identical reports and write
// identical traces, and -replay verifies the recorded trace.
func TestVirtualRunDeterministicAndReplayable(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(trace string, parallel int) string {
		o := baseOptions()
		o.traceOut = trace
		o.parallel = parallel
		var buf bytes.Buffer
		if err := run(&buf, o); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	t1, t2 := filepath.Join(dir, "a.trace"), filepath.Join(dir, "b.trace")
	out1 := runOnce(t1, 1)
	out2 := runOnce(t2, 4)
	if strings.ReplaceAll(out1, t1, "X") != strings.ReplaceAll(out2, t2, "X") {
		t.Fatalf("identical specs printed different reports:\n%s\nvs\n%s", out1, out2)
	}
	var buf bytes.Buffer
	if err := run(&buf, options{replayIn: t1}); err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if !strings.Contains(buf.String(), "trace verifies") {
		t.Fatalf("replay output: %s", buf.String())
	}
}

func TestNodeBackendRun(t *testing.T) {
	o := baseOptions()
	o.backend = "sim"
	o.ops = 30
	o.rate = 3000
	o.admit = ""
	var buf bytes.Buffer
	if err := run(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mode=live") {
		t.Fatalf("node-backed run must report live mode:\n%s", buf.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	o := baseOptions()
	o.backend = "warp"
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("unknown backend accepted")
	}
	o = baseOptions()
	o.arrival = "uniform"
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("unknown arrival accepted")
	}
	o = baseOptions()
	o.ops = 0
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("zero ops accepted")
	}
	if err := run(&bytes.Buffer{}, options{replayIn: "/nonexistent/trace"}); err == nil {
		t.Error("missing replay file accepted")
	}
}
