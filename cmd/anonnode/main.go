// Command anonnode runs anonymous consensus over real TCP: one invocation
// serves as the broadcast hub, the others as anonymous nodes. Nodes never
// exchange identities — frames carry no sender information — and the hub
// relays without annotating origin.
//
// Terminal 1 (hub):
//
//	anonnode -hub -listen 127.0.0.1:7777
//
// Terminals 2..n (one per process):
//
//	anonnode -connect 127.0.0.1:7777 -propose 41 -env es
//	anonnode -connect 127.0.0.1:7777 -propose 17 -env es
//
// Every node prints the agreed value and exits. Nodes survive transient
// network failure: a lost hub connection is redialed with backoff and the
// hub session resumed (-reconnect bounds the attempts; -reconnect=-1
// restores fail-fast). The hub prints its robustness counters — sessions,
// resumptions, heartbeat misses, dropped connections — when it stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"anonconsensus"
)

func main() {
	var (
		hub       = flag.Bool("hub", false, "run the broadcast hub")
		listen    = flag.String("listen", "127.0.0.1:7777", "hub listen address")
		connect   = flag.String("connect", "", "hub address to join as a node")
		propose   = flag.Int64("propose", -1, "value to propose (node mode)")
		env       = flag.String("env", "es", "algorithm: es (Algorithm 2) or ess (Algorithm 3)")
		interval  = flag.Duration("interval", 50*time.Millisecond, "round timer period")
		timeout   = flag.Duration("timeout", 60*time.Second, "node run timeout")
		reconnect = flag.Int("reconnect", 0, "max redials per connection outage (0 = default, -1 = fail fast)")
	)
	flag.Parse()

	if err := run(*hub, *listen, *connect, *propose, *env, *interval, *timeout, *reconnect); err != nil {
		fmt.Fprintln(os.Stderr, "anonnode:", err)
		os.Exit(1)
	}
}

func run(hub bool, listen, connect string, propose int64, env string, interval, timeout time.Duration, reconnect int) error {
	switch {
	case hub:
		return runHub(listen)
	case connect != "":
		return runNode(connect, propose, env, interval, timeout, reconnect)
	default:
		flag.Usage()
		return fmt.Errorf("pass -hub to relay or -connect to join")
	}
}

func runHub(listen string) error {
	h, err := anonconsensus.NewTCPHub(listen)
	if err != nil {
		return err
	}
	defer h.Close()
	fmt.Printf("hub relaying anonymous broadcasts on %s (ctrl-c to stop)\n", h.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	s := h.Stats()
	fmt.Printf("hub stopping: %d sessions, %d resumed (%d frames replayed), %d heartbeat misses, %d conns dropped (%d overwhelmed)\n",
		s.Sessions, s.Reconnects, s.ReplayedFrames, s.HeartbeatMisses, s.DroppedConns, s.OverwhelmedDrops)
	return nil
}

func runNode(addr string, propose int64, envName string, interval, timeout time.Duration, reconnect int) error {
	if propose < 0 {
		return fmt.Errorf("node mode needs -propose <non-negative value>")
	}
	env, err := anonconsensus.ParseEnvironment(envName)
	if err != nil {
		return err
	}
	v := anonconsensus.NumValue(propose)
	fmt.Printf("joining %s anonymously, proposing %s (%s, round interval %s)\n",
		addr, v, env, interval)
	d, err := anonconsensus.JoinTCP(context.Background(), addr, v,
		anonconsensus.WithEnv(env),
		anonconsensus.WithInterval(interval),
		anonconsensus.WithTimeout(timeout),
		anonconsensus.WithReconnect(anonconsensus.ReconnectPolicy{MaxAttempts: reconnect}),
	)
	if err != nil {
		return err
	}
	if !d.Decided {
		return fmt.Errorf("undecided at timeout %s — are enough peers connected?", timeout)
	}
	fmt.Printf("decided %s in round %d\n", d.Value, d.Round)
	return nil
}
