// Command anonnode runs anonymous consensus over real TCP: one invocation
// serves as the broadcast hub, the others as anonymous nodes. Nodes never
// exchange identities — frames carry no sender information — and the hub
// relays without annotating origin.
//
// Terminal 1 (hub):
//
//	anonnode -hub -listen 127.0.0.1:7777
//
// Terminals 2..n (one per process):
//
//	anonnode -connect 127.0.0.1:7777 -propose 41 -env es
//	anonnode -connect 127.0.0.1:7777 -propose 17 -env es
//
// Every node prints the agreed value and exits. Nodes survive transient
// network failure: a lost hub connection is redialed with backoff and the
// hub session resumed (-reconnect bounds the attempts; -reconnect=-1
// restores fail-fast). The hub prints its robustness counters — sessions,
// resumptions, heartbeat misses, dropped connections — when it stops.
//
// A third, self-contained mode exercises the multiplexed service plane:
//
//	anonnode -drive -n 3 -instances 20 -inflight 8 -admit 50:10
//
// -drive starts its own hub and runs -instances consensus instances over
// it as concurrent epochs on persistent connections (one per process,
// shared across all instances), with a worker pool of -inflight and an
// optional -admit rate:burst token bucket; occupancy and admission
// counters are printed on shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"anonconsensus"
)

func main() {
	var (
		hub       = flag.Bool("hub", false, "run the broadcast hub")
		listen    = flag.String("listen", "127.0.0.1:7777", "hub listen address")
		connect   = flag.String("connect", "", "hub address to join as a node")
		propose   = flag.Int64("propose", -1, "value to propose (node mode)")
		env       = flag.String("env", "es", "algorithm: es (Algorithm 2) or ess (Algorithm 3)")
		interval  = flag.Duration("interval", 50*time.Millisecond, "round timer period")
		timeout   = flag.Duration("timeout", 60*time.Second, "node run timeout")
		reconnect = flag.Int("reconnect", 0, "max redials per connection outage (0 = default, -1 = fail fast)")
		drive     = flag.Bool("drive", false, "run a self-contained multiplexed service: own hub, -instances epochs over shared connections")
		n         = flag.Int("n", 3, "number of anonymous processes per instance (drive mode)")
		instances = flag.Int("instances", 10, "number of consensus instances (drive mode)")
		inflight  = flag.Int("inflight", 1, "max concurrently running instances (drive mode worker pool width)")
		admit     = flag.String("admit", "", "admission token bucket as rate:burst (drive mode; empty = no admission control)")
	)
	flag.Parse()

	if err := run(*hub, *listen, *connect, *propose, *env, *interval, *timeout, *reconnect,
		*drive, *n, *instances, *inflight, *admit); err != nil {
		fmt.Fprintln(os.Stderr, "anonnode:", err)
		os.Exit(1)
	}
}

func run(hub bool, listen, connect string, propose int64, env string, interval, timeout time.Duration, reconnect int,
	drive bool, n, instances, inflight int, admit string) error {
	switch {
	case hub:
		return runHub(listen)
	case drive:
		return runDrive(env, interval, timeout, n, instances, inflight, admit)
	case connect != "":
		return runNode(connect, propose, env, interval, timeout, reconnect)
	default:
		flag.Usage()
		return fmt.Errorf("pass -hub to relay, -connect to join, or -drive for a self-contained multiplexed service")
	}
}

// parseAdmit parses an -admit rate:burst flag value ("" = disabled).
func parseAdmit(s string) (rate float64, burst int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want rate:burst, got %q", s)
	}
	rate, err = strconv.ParseFloat(parts[0], 64)
	if err != nil || rate <= 0 {
		return 0, 0, fmt.Errorf("bad rate in %q (want a positive number)", s)
	}
	burst, err = strconv.Atoi(parts[1])
	if err != nil || burst < 1 {
		return 0, 0, fmt.Errorf("bad burst in %q (want a positive integer)", s)
	}
	return rate, burst, nil
}

// runDrive exercises the multiplexed TCP plane end to end in one
// process: a Node session over NewTCPMuxTransport runs every instance as
// its own epoch on one shared hub and n persistent connections.
func runDrive(envName string, interval, timeout time.Duration, n, instances, inflight int, admit string) error {
	env, err := anonconsensus.ParseEnvironment(envName)
	if err != nil {
		return err
	}
	if n < 1 || instances < 1 {
		return fmt.Errorf("drive mode needs -n >= 1 and -instances >= 1")
	}
	opts := []anonconsensus.Option{
		anonconsensus.WithEnv(env),
		anonconsensus.WithInterval(interval),
		anonconsensus.WithTimeout(timeout),
	}
	if inflight > 1 {
		opts = append(opts, anonconsensus.WithMaxInFlight(inflight))
	}
	rate, burst, err := parseAdmit(admit)
	if err != nil {
		return fmt.Errorf("-admit: %w", err)
	}
	if rate > 0 {
		opts = append(opts, anonconsensus.WithAdmission(rate, burst))
	}
	node, err := anonconsensus.NewNode(anonconsensus.NewTCPMuxTransport(), opts...)
	if err != nil {
		return err
	}
	defer node.Close()

	fmt.Printf("driving %d instances of %d anonymous processes over the %s transport (inflight=%d, interval=%s)\n",
		instances, n, node.Transport().Name(), inflight, interval)
	ctx := context.Background()
	start := time.Now()
	var ids []string
	for k := 0; k < instances; k++ {
		proposals := make([]anonconsensus.Value, n)
		for i := range proposals {
			proposals[i] = anonconsensus.NumValue(int64(100*(k+1) + i))
		}
		id := fmt.Sprintf("epoch-%d", k+1)
		if err := node.Propose(ctx, id, proposals); err != nil {
			if errors.Is(err, anonconsensus.ErrOverloaded) {
				fmt.Printf("== %s shed: %v ==\n", id, err)
				continue
			}
			return err
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		res, err := node.Wait(ctx, id)
		if err != nil {
			return err
		}
		v, ok := res.Agreed()
		if !ok {
			return fmt.Errorf("%s: no consensus within %s", id, timeout)
		}
		fmt.Printf("== %s: consensus on %s in %s ==\n", id, v, res.Elapsed.Round(time.Millisecond))
	}
	elapsed := time.Since(start)
	s := node.Stats()
	fmt.Printf("session stats: admitted=%d rejected=%d completed=%d peak-in-flight=%d/%d queue-wait=%s events-dropped=%d (%.1f decisions/sec)\n",
		s.Admitted, s.Rejected, s.Completed, s.PeakInFlight, s.MaxInFlight,
		s.QueueWait.Round(time.Millisecond), s.EventsDropped,
		float64(len(ids))/elapsed.Seconds())
	return nil
}

func runHub(listen string) error {
	h, err := anonconsensus.NewTCPHub(listen)
	if err != nil {
		return err
	}
	defer h.Close()
	fmt.Printf("hub relaying anonymous broadcasts on %s (ctrl-c to stop)\n", h.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	s := h.Stats()
	fmt.Printf("hub stopping: %d sessions, %d resumed (%d frames replayed), %d heartbeat misses, %d conns dropped (%d overwhelmed)\n",
		s.Sessions, s.Reconnects, s.ReplayedFrames, s.HeartbeatMisses, s.DroppedConns, s.OverwhelmedDrops)
	return nil
}

func runNode(addr string, propose int64, envName string, interval, timeout time.Duration, reconnect int) error {
	if propose < 0 {
		return fmt.Errorf("node mode needs -propose <non-negative value>")
	}
	env, err := anonconsensus.ParseEnvironment(envName)
	if err != nil {
		return err
	}
	v := anonconsensus.NumValue(propose)
	fmt.Printf("joining %s anonymously, proposing %s (%s, round interval %s)\n",
		addr, v, env, interval)
	d, err := anonconsensus.JoinTCP(context.Background(), addr, v,
		anonconsensus.WithEnv(env),
		anonconsensus.WithInterval(interval),
		anonconsensus.WithTimeout(timeout),
		anonconsensus.WithReconnect(anonconsensus.ReconnectPolicy{MaxAttempts: reconnect}),
	)
	if err != nil {
		return err
	}
	if !d.Decided {
		return fmt.Errorf("undecided at timeout %s — are enough peers connected?", timeout)
	}
	fmt.Printf("decided %s in round %d\n", d.Value, d.Round)
	return nil
}
