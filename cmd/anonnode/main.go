// Command anonnode runs anonymous consensus over real TCP: one invocation
// serves as the broadcast hub, the others as anonymous nodes. Nodes never
// exchange identities — frames carry no sender information — and the hub
// relays without annotating origin.
//
// Terminal 1 (hub):
//
//	anonnode -hub -listen 127.0.0.1:7777
//
// Terminals 2..n (one per process):
//
//	anonnode -connect 127.0.0.1:7777 -propose 41 -env es
//	anonnode -connect 127.0.0.1:7777 -propose 17 -env es
//
// Every node prints the agreed value and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/tcpnet"
	"anonconsensus/internal/values"
)

func main() {
	var (
		hub      = flag.Bool("hub", false, "run the broadcast hub")
		listen   = flag.String("listen", "127.0.0.1:7777", "hub listen address")
		connect  = flag.String("connect", "", "hub address to join as a node")
		propose  = flag.Int64("propose", -1, "value to propose (node mode)")
		env      = flag.String("env", "es", "algorithm: es (Algorithm 2) or ess (Algorithm 3)")
		interval = flag.Duration("interval", 50*time.Millisecond, "round timer period")
		timeout  = flag.Duration("timeout", 60*time.Second, "node run timeout")
	)
	flag.Parse()

	if err := run(*hub, *listen, *connect, *propose, *env, *interval, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "anonnode:", err)
		os.Exit(1)
	}
}

func run(hub bool, listen, connect string, propose int64, env string, interval, timeout time.Duration) error {
	switch {
	case hub:
		return runHub(listen)
	case connect != "":
		return runNode(connect, propose, env, interval, timeout)
	default:
		flag.Usage()
		return fmt.Errorf("pass -hub to relay or -connect to join")
	}
}

func runHub(listen string) error {
	h, err := tcpnet.NewHub(listen)
	if err != nil {
		return err
	}
	defer h.Close()
	fmt.Printf("hub relaying anonymous broadcasts on %s (ctrl-c to stop)\n", h.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Println("hub stopping")
	return nil
}

func runNode(addr string, propose int64, env string, interval, timeout time.Duration) error {
	if propose < 0 {
		return fmt.Errorf("node mode needs -propose <non-negative value>")
	}
	v := values.Num(propose)
	var aut giraf.Automaton
	switch strings.ToLower(env) {
	case "es":
		aut = core.NewES(v)
	case "ess":
		aut = core.NewESS(v)
	default:
		return fmt.Errorf("unknown algorithm %q (want es or ess)", env)
	}
	fmt.Printf("joining %s anonymously, proposing %s (%s, round interval %s)\n",
		addr, v, strings.ToUpper(env), interval)
	res, err := tcpnet.RunNode(context.Background(), tcpnet.NodeConfig{
		HubAddr:   addr,
		Automaton: aut,
		Interval:  interval,
		Timeout:   timeout,
	})
	if err != nil {
		return err
	}
	if !res.Decided {
		return fmt.Errorf("undecided after %d rounds (timeout %s) — are enough peers connected?", res.Rounds, timeout)
	}
	fmt.Printf("decided %s in round %d\n", res.Decision, res.Round)
	return nil
}
