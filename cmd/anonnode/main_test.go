package main

import (
	"sync"
	"testing"
	"time"

	"anonconsensus"
)

func TestRunRequiresMode(t *testing.T) {
	if err := run(false, "", "", -1, "es", time.Millisecond, time.Second, 0, false, 3, 10, 1, ""); err == nil {
		t.Error("no mode accepted")
	}
}

func TestDriveAdmitFlagParsing(t *testing.T) {
	rate, burst, err := parseAdmit("50:10")
	if err != nil || rate != 50 || burst != 10 {
		t.Errorf("parseAdmit(50:10) = %v, %v, %v", rate, burst, err)
	}
	if rate, burst, err = parseAdmit(""); err != nil || rate != 0 || burst != 0 {
		t.Errorf("empty -admit must mean disabled, got %v, %v, %v", rate, burst, err)
	}
	for _, bad := range []string{"50", "x:1", "1:y", ":", "-1:5", "5:0"} {
		if _, _, err := parseAdmit(bad); err == nil {
			t.Errorf("parseAdmit(%q) accepted", bad)
		}
	}
}

func TestRunDriveValidation(t *testing.T) {
	if err := runDrive("banana", time.Millisecond, time.Second, 3, 2, 1, ""); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := runDrive("es", time.Millisecond, time.Second, 0, 2, 1, ""); err == nil {
		t.Error("n=0 accepted")
	}
	if err := runDrive("es", time.Millisecond, time.Second, 3, 0, 1, ""); err == nil {
		t.Error("zero instances accepted")
	}
	if err := runDrive("es", time.Millisecond, time.Second, 3, 2, 1, "nope"); err == nil {
		t.Error("malformed -admit accepted")
	}
}

// TestRunDriveServiceMode runs the self-contained multiplexed service: a
// pool of workers drives concurrent epochs over one hub while the token
// bucket sheds the overflow; shed instances must not fail the run.
func TestRunDriveServiceMode(t *testing.T) {
	if testing.Short() {
		t.Skip("multiplexed TCP service in -short mode")
	}
	// Burst 3 at a negligible refill rate: of 5 instances, 3 are admitted
	// and 2 shed, and the run still exits cleanly.
	if err := runDrive("es", 4*time.Millisecond, 30*time.Second, 3, 5, 4, "0.001:3"); err != nil {
		t.Errorf("drive run failed: %v", err)
	}
}

func TestRunNodeValidation(t *testing.T) {
	if err := runNode("127.0.0.1:1", -1, "es", time.Millisecond, time.Second, 0); err == nil {
		t.Error("negative proposal accepted")
	}
	if err := runNode("127.0.0.1:1", 3, "banana", time.Millisecond, time.Second, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Fail fast (-reconnect=-1) against a dead address must error, not hang.
	if err := runNode("127.0.0.1:1", 3, "es", time.Millisecond, time.Second, -1); err == nil {
		t.Error("dead hub address accepted")
	}
}

func TestNodesAgreeOverLocalTCP(t *testing.T) {
	hub, err := anonconsensus.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, v := range []int64{41, 17, 99} {
		i, v := i, v
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = runNode(hub.Addr(), v, "es", 8*time.Millisecond, 30*time.Second, 0)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
}
