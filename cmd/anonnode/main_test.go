package main

import (
	"sync"
	"testing"
	"time"

	"anonconsensus"
)

func TestRunRequiresMode(t *testing.T) {
	if err := run(false, "", "", -1, "es", time.Millisecond, time.Second, 0); err == nil {
		t.Error("no mode accepted")
	}
}

func TestRunNodeValidation(t *testing.T) {
	if err := runNode("127.0.0.1:1", -1, "es", time.Millisecond, time.Second, 0); err == nil {
		t.Error("negative proposal accepted")
	}
	if err := runNode("127.0.0.1:1", 3, "banana", time.Millisecond, time.Second, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Fail fast (-reconnect=-1) against a dead address must error, not hang.
	if err := runNode("127.0.0.1:1", 3, "es", time.Millisecond, time.Second, -1); err == nil {
		t.Error("dead hub address accepted")
	}
}

func TestNodesAgreeOverLocalTCP(t *testing.T) {
	hub, err := anonconsensus.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, v := range []int64{41, 17, 99} {
		i, v := i, v
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = runNode(hub.Addr(), v, "es", 8*time.Millisecond, 30*time.Second, 0)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
}
