// Command anonsim regenerates the reproduction experiments (EXPERIMENTS.md
// tables T1–T10 and figures F1–F3) from scratch.
//
// Usage:
//
//	anonsim -list            list experiments
//	anonsim -exp T3          run one experiment
//	anonsim -all             run the whole suite
//	anonsim -all -quick      shrunken grids (seconds instead of minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"anonconsensus/internal/expt"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		expID = flag.String("exp", "", "run a single experiment (T1..T10, F1..F3)")
		all   = flag.Bool("all", false, "run the whole suite")
		quick = flag.Bool("quick", false, "shrink parameter grids for a fast pass")
	)
	flag.Parse()

	if err := run(*list, *expID, *all, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "anonsim:", err)
		os.Exit(1)
	}
}

func run(list bool, expID string, all, quick bool) error {
	switch {
	case list:
		for _, e := range expt.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	case expID != "":
		e, ok := expt.ByID(expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", expID)
		}
		return runOne(e, quick)
	case all:
		for _, e := range expt.All() {
			if err := runOne(e, quick); err != nil {
				return err
			}
		}
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -list, -exp or -all")
	}
}

func runOne(e expt.Experiment, quick bool) error {
	fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
	start := time.Now()
	if err := e.Run(os.Stdout, quick); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}
