// Command anonsim regenerates the reproduction experiments (EXPERIMENTS.md
// tables T1–T10, figures F1–F3, and the S1 scenario sweep) from scratch,
// and demos the public Node API on the deterministic backend.
//
// Usage:
//
//	anonsim -list            list experiments
//	anonsim -exp T3          run one experiment
//	anonsim -exp S1          scenario sweep: loss/duplication/partition grid
//	anonsim -all             run the whole suite
//	anonsim -all -quick      shrunken grids (seconds instead of minutes)
//	anonsim -all -parallel 4 fan trials across 4 workers (same bytes out)
//	anonsim -session 3       run N consensus instances over one Node session
//
// Experiment trials are independent, so -parallel only changes wall-clock
// time: tables are byte-identical at any worker count (0, the default,
// uses every core; 1 forces the sequential path).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"anonconsensus"
	"anonconsensus/internal/expt"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		expID    = flag.String("exp", "", "run a single experiment (T1..T10, F1..F3)")
		all      = flag.Bool("all", false, "run the whole suite")
		quick    = flag.Bool("quick", false, "shrink parameter grids for a fast pass")
		session  = flag.Int("session", 0, "run this many consensus instances over one Node session (sim transport)")
		parallel = flag.Int("parallel", 0, "workers for experiment trials (0 = all cores, 1 = sequential); output is byte-identical at any setting")
	)
	flag.Parse()

	if err := run(*list, *expID, *all, *quick, *session, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "anonsim:", err)
		os.Exit(1)
	}
}

func run(list bool, expID string, all, quick bool, session, parallel int) error {
	expt.SetParallelism(parallel)
	switch {
	case list:
		for _, e := range expt.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	case session > 0:
		return runSession(session)
	case expID != "":
		e, ok := expt.ByID(expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", expID)
		}
		return runOne(e, quick)
	case all:
		for _, e := range expt.All() {
			if err := runOne(e, quick); err != nil {
				return err
			}
		}
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -list, -exp, -all or -session")
	}
}

// runSession demos the public API: one long-lived Node over the
// deterministic sim transport, running a sequence of instances whose
// decisions stream in as they happen.
func runSession(instances int) error {
	node, err := anonconsensus.NewNode(anonconsensus.NewSimTransport(),
		anonconsensus.WithEnv(anonconsensus.EnvES),
		anonconsensus.WithGST(6),
		anonconsensus.WithSeed(1),
	)
	if err != nil {
		return err
	}
	defer node.Close()

	// The feed narrates; Wait is the authoritative outcome per instance.
	ctx := context.Background()
	ids := make([]string, instances)
	for k := 0; k < instances; k++ {
		proposals := []anonconsensus.Value{
			anonconsensus.NumValue(int64(10*k + 1)),
			anonconsensus.NumValue(int64(10*k + 2)),
			anonconsensus.NumValue(int64(10*k + 3)),
		}
		ids[k] = fmt.Sprintf("instance-%d", k+1)
		if err := node.Propose(ctx, ids[k], proposals,
			anonconsensus.WithSeed(int64(k+1))); err != nil {
			return err
		}
	}
	printerDone := make(chan struct{})
	go func() {
		defer close(printerDone)
		for ev := range node.Decisions() {
			if ev.Kind == anonconsensus.EventDecision {
				fmt.Printf("  %s: p%d decided %s (round %d)\n", ev.Instance, ev.Decision.Proc, ev.Decision.Value, ev.Decision.Round)
			}
		}
	}()
	for _, id := range ids {
		res, err := node.Wait(ctx, id)
		if err != nil {
			return err
		}
		v, ok := res.Agreed()
		if !ok {
			return fmt.Errorf("%s: no agreement", id)
		}
		fmt.Printf("%s: consensus on %s in %d rounds\n", id, v, res.Rounds)
	}
	// Close terminates the feed; joining the printer keeps the last
	// instance's narration from being lost at process exit.
	node.Close()
	<-printerDone
	return nil
}

func runOne(e expt.Experiment, quick bool) error {
	fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
	start := time.Now()
	if err := e.Run(os.Stdout, quick); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}
