// Command anonsim regenerates the reproduction experiments (EXPERIMENTS.md
// tables T1–T10, figures F1–F3, the S1 scenario sweep and the X1/X2
// exploration tables) from scratch, demos the public Node API on the
// deterministic backend, and fronts the exploration plane (randomized
// schedule search and counterexample replay).
//
// Usage:
//
//	anonsim -list            list experiments
//	anonsim -exp T3          run one experiment
//	anonsim -exp S1          scenario sweep: loss/duplication/partition grid
//	anonsim -all             run the whole suite
//	anonsim -all -quick      shrunken grids (seconds instead of minutes)
//	anonsim -all -parallel 4 fan trials across 4 workers (same bytes out)
//	anonsim -session 3       run N consensus instances over one Node session
//
//	anonsim -explore                        randomized schedule search
//	anonsim -explore -n 8 -trials 10000     ... at chosen size and budget
//	anonsim -explore -scenarios 60 -env ess ... with 60% adversary trials
//	anonsim -replay 'alg=ES;props=…;sched=…' replay a counterexample trace
//
// Experiment trials and exploration trials are independent, so -parallel
// only changes wall-clock time: tables and exploration reports are
// byte-identical at any worker count (0, the default, uses every core; 1
// forces the sequential path).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"anonconsensus"
	"anonconsensus/internal/core"
	"anonconsensus/internal/expt"
	"anonconsensus/internal/sim"
)

// cliOpts carries the parsed command line.
type cliOpts struct {
	list     bool
	expID    string
	all      bool
	quick    bool
	session  int
	parallel int

	explore     bool
	exploreN    int
	trials      int
	seed        int64
	envName     string
	scenarioPct int
	replay      string

	singleES   int
	workers    int
	cpuprofile string
	memprofile string
}

func main() {
	var o cliOpts
	flag.BoolVar(&o.list, "list", false, "list experiments and exit")
	flag.StringVar(&o.expID, "exp", "", "run a single experiment (T1..T11, F1..F3, X1, X2, S1)")
	flag.BoolVar(&o.all, "all", false, "run the whole suite")
	flag.BoolVar(&o.quick, "quick", false, "shrink parameter grids for a fast pass")
	flag.IntVar(&o.session, "session", 0, "run this many consensus instances over one Node session (sim transport)")
	flag.IntVar(&o.parallel, "parallel", 0, "workers for experiment/exploration trials (0 = all cores, 1 = sequential); output is byte-identical at any setting")
	flag.BoolVar(&o.explore, "explore", false, "run the randomized exploration plane (PCT-style schedule search; see -n, -trials, -seed, -env, -scenarios)")
	flag.IntVar(&o.exploreN, "n", 4, "exploration: number of processes (1..16)")
	flag.IntVar(&o.trials, "trials", 5000, "exploration: number of randomized trials")
	flag.Int64Var(&o.seed, "seed", 1, "exploration: search seed (identical seeds reproduce the whole search)")
	flag.StringVar(&o.envName, "env", "es", "exploration: algorithm under test (es or ess)")
	flag.IntVar(&o.scenarioPct, "scenarios", 50, "exploration: percentage of trials that overlay a random fault scenario")
	flag.StringVar(&o.replay, "replay", "", "replay a canonical exploration trace and report its violations")
	flag.IntVar(&o.singleES, "es", 0, "run one synchronous ES consensus at this size and print metrics (the big-n profiling workload; see -cpuprofile, -workers)")
	flag.IntVar(&o.workers, "workers", 0, "intra-run delivery workers for -es (0/1 = sequential; results are byte-identical at any setting)")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	flag.Parse()

	if err := withProfiles(o, run); err != nil {
		fmt.Fprintln(os.Stderr, "anonsim:", err)
		os.Exit(1)
	}
}

// withProfiles wraps fn with the -cpuprofile/-memprofile collection so any
// anonsim workload — an experiment, the explorer, a -es big-n run — can be
// profiled without a test harness (see PERFORMANCE.md "Profiling a run").
func withProfiles(o cliOpts, fn func(cliOpts) error) error {
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.memprofile != "" {
		defer func() {
			f, err := os.Create(o.memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "anonsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "anonsim: memprofile:", err)
			}
		}()
	}
	return fn(o)
}

func run(o cliOpts) error {
	expt.SetParallelism(o.parallel)
	switch {
	case o.list:
		for _, e := range expt.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	case o.replay != "":
		return runReplay(o.replay)
	case o.singleES > 0:
		return runSingleES(o.singleES, o.workers)
	case o.explore:
		return runExplore(o)
	case o.session > 0:
		return runSession(o.session)
	case o.expID != "":
		e, ok := expt.ByID(o.expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", o.expID)
		}
		return runOne(e, o.quick)
	case o.all:
		for _, e := range expt.All() {
			if err := runOne(e, o.quick); err != nil {
				return err
			}
		}
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -list, -exp, -all, -session, -explore or -replay")
	}
}

// runExplore drives the public exploration API: a randomized PCT-style
// schedule search whose report (violations, shrunk counterexamples) is a
// pure function of the flags.
func runExplore(o cliOpts) error {
	env, err := anonconsensus.ParseEnvironment(o.envName)
	if err != nil {
		return err
	}
	proposals := make([]anonconsensus.Value, o.exploreN)
	for i := range proposals {
		proposals[i] = anonconsensus.NumValue(int64(i))
	}
	fmt.Printf("== explore: randomized search, %s n=%d trials=%d seed=%d scenarios=%d%% ==\n",
		env, o.exploreN, o.trials, o.seed, o.scenarioPct)
	start := time.Now()
	rep, err := anonconsensus.Explore(anonconsensus.ExploreConfig{
		Proposals:   proposals,
		Env:         env,
		Mode:        anonconsensus.ExploreRandom,
		Trials:      o.trials,
		Seed:        o.seed,
		ScenarioPct: o.scenarioPct,
		Parallelism: o.parallel,
	})
	if err != nil {
		return err
	}
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("(explored in %s)\n", time.Since(start).Round(time.Millisecond))
	if !rep.Verified() {
		return fmt.Errorf("exploration found %d violations", len(rep.Violations))
	}
	return nil
}

// runSingleES executes one synchronous ES consensus with n distinct
// proposals and prints the run's metrics: the canonical big-n workload for
// -cpuprofile/-memprofile sessions (it is also what BenchmarkESConsensus
// measures, so profiles line up with the benchmark trajectory).
func runSingleES(n, workers int) error {
	props := core.DistinctProposals(n)
	start := time.Now()
	res, err := core.RunES(props, core.RunOpts{
		Policy:         sim.Synchronous{},
		DeliverWorkers: workers,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if !res.AllCorrectDecided() {
		return fmt.Errorf("-es %d: run did not decide within the round bound", n)
	}
	m := res.Metrics
	fmt.Printf("ES n=%d synchronous: decided in %d rounds (%s wall, %d workers)\n",
		n, res.Rounds, elapsed.Round(time.Microsecond), workers)
	fmt.Printf("  broadcasts=%d deliveries=%d merges-skipped=%d dropped=%d\n",
		m.Broadcasts, m.Deliveries, m.MergesSkipped, m.Dropped)
	fmt.Printf("  payload-bytes=%d max-envelope=%d\n", m.PayloadBytes, m.MaxEnvelopeBytes)
	return nil
}

// runReplay re-executes one canonical trace — typically a shrunk
// counterexample pasted from an exploration report.
func runReplay(text string) error {
	tr, err := anonconsensus.ParseTrace(text)
	if err != nil {
		return err
	}
	rep, err := anonconsensus.Replay(tr)
	if err != nil {
		return err
	}
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	if !rep.Verified() {
		return fmt.Errorf("replay reproduced %d violations", len(rep.Violations))
	}
	return nil
}

// runSession demos the public API: one long-lived Node over the
// deterministic sim transport, running a sequence of instances whose
// decisions stream in as they happen.
func runSession(instances int) error {
	node, err := anonconsensus.NewNode(anonconsensus.NewSimTransport(),
		anonconsensus.WithEnv(anonconsensus.EnvES),
		anonconsensus.WithGST(6),
		anonconsensus.WithSeed(1),
	)
	if err != nil {
		return err
	}
	defer node.Close()

	// The feed narrates; Wait is the authoritative outcome per instance.
	ctx := context.Background()
	ids := make([]string, instances)
	for k := 0; k < instances; k++ {
		proposals := []anonconsensus.Value{
			anonconsensus.NumValue(int64(10*k + 1)),
			anonconsensus.NumValue(int64(10*k + 2)),
			anonconsensus.NumValue(int64(10*k + 3)),
		}
		ids[k] = fmt.Sprintf("instance-%d", k+1)
		if err := node.Propose(ctx, ids[k], proposals,
			anonconsensus.WithSeed(int64(k+1))); err != nil {
			return err
		}
	}
	printerDone := make(chan struct{})
	go func() {
		defer close(printerDone)
		for ev := range node.Decisions() {
			if ev.Kind == anonconsensus.EventDecision {
				fmt.Printf("  %s: p%d decided %s (round %d)\n", ev.Instance, ev.Decision.Proc, ev.Decision.Value, ev.Decision.Round)
			}
		}
	}()
	for _, id := range ids {
		res, err := node.Wait(ctx, id)
		if err != nil {
			return err
		}
		v, ok := res.Agreed()
		if !ok {
			return fmt.Errorf("%s: no agreement", id)
		}
		fmt.Printf("%s: consensus on %s in %d rounds\n", id, v, res.Rounds)
	}
	// Close terminates the feed; joining the printer keeps the last
	// instance's narration from being lost at process exit.
	node.Close()
	<-printerDone
	return nil
}

func runOne(e expt.Experiment, quick bool) error {
	fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
	start := time.Now()
	if err := e.Run(os.Stdout, quick); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}
