package main

import (
	"testing"

	"anonconsensus/internal/expt"
)

func TestRunList(t *testing.T) {
	if err := run(cliOpts{list: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleQuick(t *testing.T) {
	if err := run(cliOpts{expID: "T10", quick: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(cliOpts{expID: "T99", quick: true}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(cliOpts{}); err == nil {
		t.Error("empty invocation must error")
	}
}

func TestRunSession(t *testing.T) {
	if err := run(cliOpts{session: 3}); err != nil {
		t.Fatalf("session demo failed: %v", err)
	}
}

func TestRunSingleQuickParallel(t *testing.T) {
	defer expt.SetParallelism(0)
	if err := run(cliOpts{expID: "T5", quick: true, parallel: 2}); err != nil {
		t.Fatalf("-parallel run failed: %v", err)
	}
}

func TestRunExplore(t *testing.T) {
	defer expt.SetParallelism(0)
	err := run(cliOpts{
		explore:     true,
		exploreN:    4,
		trials:      100,
		seed:        1,
		envName:     "es",
		scenarioPct: 50,
	})
	if err != nil {
		t.Fatalf("-explore run failed: %v", err)
	}
}

func TestRunExploreBadEnv(t *testing.T) {
	if err := run(cliOpts{explore: true, envName: "nope", exploreN: 2, trials: 1}); err == nil {
		t.Error("bad -env accepted")
	}
}

func TestRunReplay(t *testing.T) {
	if err := run(cliOpts{replay: "alg=ES;props=1|2;sched=00.00"}); err != nil {
		t.Fatalf("clean -replay failed: %v", err)
	}
}

func TestRunReplayRejectsJunk(t *testing.T) {
	if err := run(cliOpts{replay: "alg=??"}); err == nil {
		t.Error("junk trace accepted")
	}
}
