package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run(true, "", false, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleQuick(t *testing.T) {
	if err := run(false, "T10", false, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(false, "T99", false, true, 0); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(false, "", false, false, 0); err == nil {
		t.Error("empty invocation must error")
	}
}

func TestRunSession(t *testing.T) {
	if err := run(false, "", false, false, 3); err != nil {
		t.Fatalf("session demo failed: %v", err)
	}
}
