package main

import (
	"testing"

	"anonconsensus/internal/expt"
)

func TestRunList(t *testing.T) {
	if err := run(true, "", false, false, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleQuick(t *testing.T) {
	if err := run(false, "T10", false, true, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(false, "T99", false, true, 0, 0); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(false, "", false, false, 0, 0); err == nil {
		t.Error("empty invocation must error")
	}
}

func TestRunSession(t *testing.T) {
	if err := run(false, "", false, false, 3, 0); err != nil {
		t.Fatalf("session demo failed: %v", err)
	}
}

func TestRunSingleQuickParallel(t *testing.T) {
	defer expt.SetParallelism(0)
	if err := run(false, "T5", false, true, 0, 2); err != nil {
		t.Fatalf("-parallel run failed: %v", err)
	}
}
