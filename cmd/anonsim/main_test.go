package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run(true, "", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleQuick(t *testing.T) {
	if err := run(false, "T10", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(false, "T99", false, true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(false, "", false, false); err == nil {
		t.Error("empty invocation must error")
	}
}
