// Command detlint is the multichecker driver for the determinism &
// aliasing analyzer suite under tools/detlint. It loads the packages
// matched by its arguments (default ./...), runs every analyzer, prints
// findings vet-style as file:line:col: message [analyzer], and exits
// non-zero if anything was found.
//
// Usage:
//
//	go run ./cmd/detlint [-list] [-run name,name] [patterns...]
//
// The suite and the exemption policy are documented in
// tools/detlint/detcfg and TESTING.md ("Static-analysis plane").
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"anonconsensus/tools/detlint/analysis"
	"anonconsensus/tools/detlint/load"
	"anonconsensus/tools/detlint/suite"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}
	if *run != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*run, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "detlint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Lint(analyzers, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// Lint loads patterns, runs the analyzers over every loaded package and
// returns the rendered findings sorted by position. Type-check errors in
// a target package are returned as an error: analysis over a broken tree
// would under-report.
func Lint(analyzers []*analysis.Analyzer, patterns []string) ([]string, error) {
	pkgs, err := load.Packages(patterns...)
	if err != nil {
		return nil, err
	}
	type finding struct {
		file      string
		line, col int
		text      string
	}
	var found []finding
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s does not type-check: %v", pkg.PkgPath, pkg.TypeErrors[0])
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				found = append(found, finding{
					file: pos.Filename,
					line: pos.Line,
					col:  pos.Column,
					text: fmt.Sprintf("%s: %s [%s]", pos, d.Message, a.Name),
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(found, func(i, j int) bool {
		a, b := found[i], found[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.text < b.text
	})
	findings := make([]string, len(found))
	for i, f := range found {
		findings[i] = f.text
	}
	return findings, nil
}
