package main

import (
	"testing"

	"anonconsensus/tools/detlint/suite"
)

// TestRepoLintClean runs the whole determinism suite over the module —
// the same pass `make lint` runs — so `go test ./...` alone catches a
// new violation even before CI's lint step does. The module-path pattern
// makes the test independent of the working directory.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	findings, err := Lint(suite.Analyzers(), []string{"anonconsensus/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

// TestSuiteNames pins the analyzer roster: TESTING.md documents these
// five by name.
func TestSuiteNames(t *testing.T) {
	want := []string{"maporder", "wallclock", "globalrand", "retalias", "goescape"}
	got := suite.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run", a.Name)
		}
	}
}
