// Package anonconsensus is a Go implementation of "Fault-Tolerant
// Consensus in Unknown and Anonymous Networks" (Delporte-Gallet,
// Fauconnier, Tielmann; ICDCS 2009): crash-tolerant consensus, shared
// weak-sets and register emulations for networks where processes have no
// identities and do not know how many peers exist.
//
// The package offers three entry points:
//
//   - Solve runs consensus over a live in-process network: one goroutine
//     per anonymous process, channel broadcast with configurable link
//     latencies realizing the paper's ES (eventually synchronous) and ESS
//     (eventually stable source) environments.
//
//   - Simulate runs the same algorithms on the deterministic lockstep
//     simulator with seeded adversarial schedules, crash injection and
//     machine-checked environment properties — the engine behind the
//     reproduction experiments (see EXPERIMENTS.md).
//
//   - NewWeakSet / NewRegister expose the paper's shared-memory side: the
//     weak-set data structure (§5) and the regular register built from it
//     (Proposition 1).
//
// The algorithm internals live under internal/: see internal/core for
// Algorithms 2 and 3 (including the pseudo leader election), internal/sim
// for the environment model, internal/weakset, internal/register,
// internal/msemu and internal/fd for the substrate results, and DESIGN.md
// for the full inventory.
package anonconsensus
