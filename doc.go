// Package anonconsensus is a Go implementation of "Fault-Tolerant
// Consensus in Unknown and Anonymous Networks" (Delporte-Gallet,
// Fauconnier, Tielmann; ICDCS 2009): crash-tolerant consensus, shared
// weak-sets and register emulations for networks where processes have no
// identities and do not know how many peers exist.
//
// # Sessions: Node over a Transport
//
// The primary API is a long-lived Node running a sequence of consensus
// instances over one Transport:
//
//	node, err := anonconsensus.NewNode(anonconsensus.NewLiveTransport(),
//		anonconsensus.WithEnv(anonconsensus.EnvES),
//		anonconsensus.WithGST(5))
//	defer node.Close()
//	res, err := node.Run(ctx, "epoch-1", proposals)
//
// Propose enqueues instances without blocking on their runs, Decisions
// streams outcomes instance by instance as each run completes (one event
// per deciding process), Wait collects a single instance's Result, and
// every run is cancellable through its context.Context. Options (WithEnv, WithGST, WithSeed, WithCrashes,
// WithStableSource, WithInterval, WithTimeout, WithMaxRounds, and the
// scenario plane below) set session defaults and can be overridden per
// instance.
//
// # Fault scenarios
//
// Beyond the synchrony environment, every run can carry a composable fault
// Scenario: a validated crash schedule, per-link message loss and
// duplication rates, and round-ranged partitions that split the ring until
// they heal. WithScenario sets the whole overlay; WithLoss,
// WithDuplication, WithPartition and WithCrashes dial individual
// dimensions; RandomScenario derives a reproducible seeded adversary.
// Fault draws are deterministic hash functions of the run seed: on the
// deterministic simulator a scenario'd spec replays exactly and RunBatch
// sweeps stay byte-identical at any parallelism; the live in-process
// backend makes the same per-(round, link) decisions in real time; the
// TCP hub — which never learns rounds or process indexes — realizes the
// scenario physically (wall-clock rounds, accept-order connection
// indexes, per-forward draws), so TCP fault patterns are reproducible in
// distribution, not byte-for-byte. Loss and partitions deliberately
// break the model's reliable-broadcast assumption — exploring how the
// algorithms degrade (split-brain blocks under a never-healing partition,
// falling agreement rates under loss) is what the plane is for; see the
// README scenario cookbook and experiment S1.
//
// Three transports realize the paper's environments on different
// substrates behind the one interface:
//
//   - NewLiveTransport: a live in-process network — one goroutine per
//     anonymous process, channel broadcast with configurable link
//     latencies realizing ES (eventually synchronous) and ESS (eventually
//     stable source) physically, with drifting local round timers.
//
//   - NewSimTransport: the deterministic lockstep simulator with seeded
//     adversarial schedules, crash injection and machine-checked
//     environment properties — the engine behind the reproduction
//     experiments (see EXPERIMENTS.md). Identical specs give identical
//     Results.
//
//   - NewTCPTransport: real TCP through an anonymous broadcast hub;
//     frames carry no sender identity and the hub relays without
//     annotating origin. NewTCPHub and JoinTCP expose the same substrate
//     for genuinely distributed deployments (see cmd/anonnode).
//
// # Compatibility policy
//
// The original one-shot entry points are kept as thin wrappers over a
// single-instance Node: Solve (live network) and Simulate (deterministic
// simulator), both driven by the legacy Config struct. Config is
// deprecated but remains fully functional and behavior-preserving —
// Simulate produces results identical to earlier releases on fixed seeds.
// One deliberate exception: a Config.Crashes entry naming a process
// outside the ensemble is now rejected by Solve as well (Simulate always
// rejected it); earlier releases' Solve silently ignored such entries.
// New knobs are added to the functional options only; new code should use
// NewNode with an explicit Transport.
//
// # Shared memory side
//
// NewWeakSet / NewRegister expose the paper's shared-memory results: the
// weak-set data structure (§5), the regular register built from it
// (Proposition 1), and NewOFConsensus the cited obstruction-free
// consensus.
//
// The algorithm internals live under internal/: see internal/core for
// Algorithms 2 and 3 (including the pseudo leader election), internal/env
// for the unified environment/adversary model (round-delay policies,
// wall-clock latency profiles and fault scenarios — one model shared by
// all backends), internal/weakset, internal/register, internal/msemu and
// internal/fd for the substrate results, and DESIGN.md for the full
// inventory. Constructing environments through the internal/sim and
// internal/anonnet names (sim.Policy implementations, anonnet latency
// profiles) is deprecated: those are compatibility aliases over
// internal/env, which is where new environments and fault dimensions are
// added.
//
// # Verification
//
// TESTING.md maps the five test planes — unit, property, golden-parity,
// exploration, and static analysis — to make targets and CI jobs. The
// static-analysis plane (make lint) runs the tools/detlint determinism &
// aliasing suite: deterministic packages are machine-checked against map
// iteration order, wall clocks, global randomness, aliased slice/map
// returns and untracked goroutines, with //detlint:<keyword> <reason>
// comments as the audited escape hatch.
package anonconsensus
