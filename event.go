package anonconsensus

// EventKind discriminates the entries of a Node's Decisions() feed.
type EventKind int

// Event kinds, in the order they occur for one instance.
const (
	// EventInstanceStarted marks the moment the node's worker picked the
	// instance up and handed it to the transport.
	EventInstanceStarted EventKind = iota + 1
	// EventDecision carries one process's decision for the instance; one
	// event per process that decided.
	EventDecision
	// EventInstanceDone closes an instance: Result (or Err) is final. An
	// instance that failed before its run started (enqueue aborted, node
	// closed while it was queued, cancelled before pickup) emits only this
	// event — there is no preceding EventInstanceStarted for work that
	// never reached the transport.
	EventInstanceDone
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventInstanceStarted:
		return "started"
	case EventDecision:
		return "decision"
	case EventInstanceDone:
		return "done"
	default:
		return "unknown"
	}
}

// Event is one entry of a Node's Decisions() feed.
type Event struct {
	// Instance is the instance ID passed to Propose.
	Instance string
	// Kind says what happened.
	Kind EventKind
	// Decision is set for EventDecision events.
	Decision Decision
	// Result is the instance's final outcome (EventInstanceDone, nil on
	// error).
	Result *Result
	// Err is the instance's terminal error (EventInstanceDone only). A
	// cancelled instance's Err wraps its context's error.
	Err error
}
