package anonconsensus_test

import (
	"fmt"
	"log"

	"anonconsensus"
)

// ExampleSimulate runs a deterministic seeded simulation: same config,
// same run, every time.
func ExampleSimulate() {
	res, err := anonconsensus.Simulate(anonconsensus.Config{
		Proposals: []anonconsensus.Value{
			anonconsensus.NumValue(3),
			anonconsensus.NumValue(1),
			anonconsensus.NumValue(2),
		},
		Env:  anonconsensus.EnvES,
		GST:  0, // synchronous from the start
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	v, ok := res.Agreed()
	fmt.Println(ok, v)
	// Output: true 000000000003
}

// ExampleNewWeakSet shows the anonymous shared set: adds never overwrite.
func ExampleNewWeakSet() {
	ws := anonconsensus.NewWeakSet()
	_ = ws.Add("blue")
	_ = ws.Add("green")
	_ = ws.Add("blue") // duplicate: sets collapse it
	got, _ := ws.Get()
	fmt.Println(got)
	// Output: [blue green]
}

// ExampleNewRegister shows Proposition 1's register: last completed write
// wins.
func ExampleNewRegister() {
	r := anonconsensus.NewRegister()
	_ = r.Write("v1")
	_ = r.Write("v2")
	v, ok, _ := r.Read()
	fmt.Println(ok, v)
	// Output: true v2
}

// ExampleNewOFConsensus decides without any synchrony assumption when a
// proposer runs uncontended.
func ExampleNewOFConsensus() {
	c := anonconsensus.NewOFConsensus()
	v, ok, _ := c.Propose("leader-token", 8)
	fmt.Println(ok, v)
	// Output: true leader-token
}
