// Config agreement: a deterministic what-if analysis. A fleet of anonymous
// workers must converge on a configuration epoch; before rolling it out,
// an operator wants to know how long convergence takes as the network
// stabilizes later and more workers crash — reproducibly.
//
// This example runs the whole 4×4 what-if matrix as ONE Node session over
// the deterministic sim transport: sixteen consensus instances in
// sequence, each overriding the session's GST and crash schedule. The
// simulator makes identical inputs give identical runs, so the printed
// matrix is stable across machines and suitable for CI assertions.
package main

import (
	"context"
	"fmt"
	"log"

	"anonconsensus"
)

func main() {
	epochs := []anonconsensus.Value{
		anonconsensus.NumValue(300),
		anonconsensus.NumValue(301),
		anonconsensus.NumValue(302),
		anonconsensus.NumValue(303),
		anonconsensus.NumValue(304),
		anonconsensus.NumValue(305),
	}

	node, err := anonconsensus.NewNode(anonconsensus.NewSimTransport(),
		anonconsensus.WithEnv(anonconsensus.EnvES),
		anonconsensus.WithSeed(99),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	ctx := context.Background()

	fmt.Println("rounds until every surviving worker adopts the same epoch")
	fmt.Println()
	fmt.Printf("%-8s", "GST\\f")
	for _, crashes := range []int{0, 1, 2, 3} {
		fmt.Printf("%8d", crashes)
	}
	fmt.Println()

	for _, gst := range []int{0, 5, 10, 20} {
		fmt.Printf("%-8d", gst)
		for _, crashes := range []int{0, 1, 2, 3} {
			crashMap := make(map[int]int)
			for i := 0; i < crashes; i++ {
				crashMap[i] = 2 + 3*i // staggered failures
			}
			id := fmt.Sprintf("gst%d-f%d", gst, crashes)
			res, err := node.Run(ctx, id, epochs,
				anonconsensus.WithGST(gst),
				anonconsensus.WithCrashes(crashMap),
			)
			if err != nil {
				log.Fatal(err)
			}
			if _, ok := res.Agreed(); !ok {
				log.Fatalf("no agreement at gst=%d crashes=%d", gst, crashes)
			}
			last := 0
			for _, d := range res.Decisions {
				if d.Decided && d.Round > last {
					last = d.Round
				}
			}
			fmt.Printf("%8d", last)
		}
		fmt.Println()
	}

	fmt.Println()
	v := mustAgree(node, epochs)
	fmt.Printf("every cell used the same decision rule; e.g. the gst=0,f=0 fleet adopted epoch %s\n", v)
}

func mustAgree(node *anonconsensus.Node, epochs []anonconsensus.Value) anonconsensus.Value {
	// Seventeenth instance over the same session: the zero-knob baseline.
	res, err := node.Run(context.Background(), "baseline", epochs,
		anonconsensus.WithGST(0), anonconsensus.WithSeed(0))
	if err != nil {
		log.Fatal(err)
	}
	v, ok := res.Agreed()
	if !ok {
		log.Fatal("baseline run did not agree")
	}
	return v
}
