// Config agreement: a deterministic what-if analysis. A fleet of anonymous
// workers must converge on a configuration epoch; before rolling it out,
// an operator wants to know how long convergence takes as the network
// stabilizes later and more workers crash — reproducibly.
//
// This example uses Simulate (the deterministic lockstep simulator) rather
// than the live runtime: identical inputs give identical runs, so the
// printed matrix is stable across machines and suitable for CI assertions.
package main

import (
	"fmt"
	"log"

	"anonconsensus"
)

func main() {
	epochs := []anonconsensus.Value{
		anonconsensus.NumValue(300),
		anonconsensus.NumValue(301),
		anonconsensus.NumValue(302),
		anonconsensus.NumValue(303),
		anonconsensus.NumValue(304),
		anonconsensus.NumValue(305),
	}

	fmt.Println("rounds until every surviving worker adopts the same epoch")
	fmt.Println()
	fmt.Printf("%-8s", "GST\\f")
	for _, crashes := range []int{0, 1, 2, 3} {
		fmt.Printf("%8d", crashes)
	}
	fmt.Println()

	for _, gst := range []int{0, 5, 10, 20} {
		fmt.Printf("%-8d", gst)
		for _, crashes := range []int{0, 1, 2, 3} {
			crashMap := make(map[int]int)
			for i := 0; i < crashes; i++ {
				crashMap[i] = 2 + 3*i // staggered failures
			}
			res, err := anonconsensus.Simulate(anonconsensus.Config{
				Proposals: epochs,
				Env:       anonconsensus.EnvES,
				GST:       gst,
				Seed:      99,
				Crashes:   crashMap,
			})
			if err != nil {
				log.Fatal(err)
			}
			if _, ok := res.Agreed(); !ok {
				log.Fatalf("no agreement at gst=%d crashes=%d", gst, crashes)
			}
			last := 0
			for _, d := range res.Decisions {
				if d.Decided && d.Round > last {
					last = d.Round
				}
			}
			fmt.Printf("%8d", last)
		}
		fmt.Println()
	}

	fmt.Println()
	v := mustAgree(epochs)
	fmt.Printf("every cell used the same decision rule; e.g. the gst=0,f=0 fleet adopted epoch %s\n", v)
}

func mustAgree(epochs []anonconsensus.Value) anonconsensus.Value {
	res, err := anonconsensus.Simulate(anonconsensus.Config{
		Proposals: epochs,
		Env:       anonconsensus.EnvES,
	})
	if err != nil {
		log.Fatal(err)
	}
	v, ok := res.Agreed()
	if !ok {
		log.Fatal("baseline run did not agree")
	}
	return v
}
