// Leaderless lock owner election: obstruction-free consensus from shared
// memory, no synchrony assumptions at all. A set of identical worker
// goroutines races to elect the epoch's lock owner token; under contention
// proposals may need retries (obstruction-freedom), but whatever is decided
// is decided once and forever — Agreement and Validity are unconditional.
//
// This is the related-work construction the paper cites as [9] (anonymous
// fault-tolerant shared-memory consensus), assembled from the library's
// adopt-commit-over-weak-set objects.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"anonconsensus"
)

func main() {
	c := anonconsensus.NewOFConsensus()

	const workers = 6
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results = make(map[int]anonconsensus.Value)
	)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			token := anonconsensus.Value(fmt.Sprintf("worker-token-%02d", w))
			rng := rand.New(rand.NewSource(int64(w)))
			for attempt := 1; ; attempt++ {
				// Fast path: somebody already won.
				if v, ok := c.Decided(); ok {
					mu.Lock()
					results[w] = v
					mu.Unlock()
					return
				}
				v, ok, err := c.Propose(token, 8)
				if err != nil {
					log.Fatal(err)
				}
				if ok {
					mu.Lock()
					results[w] = v
					mu.Unlock()
					return
				}
				// Contended: randomized backoff opens a solo window for
				// somebody (the obstruction-freedom bargain).
				time.Sleep(time.Duration(rng.Intn(1<<uint(min(attempt, 10)))) * time.Microsecond)
			}
		}()
	}
	wg.Wait()

	var winner anonconsensus.Value
	for w := 0; w < workers; w++ {
		v := results[w]
		if winner == "" {
			winner = v
		}
		if v != winner {
			log.Fatalf("agreement violated: worker %d has %s, expected %s", w, v, winner)
		}
	}
	fmt.Printf("all %d workers agree: lock owner token = %s\n", workers, winner)
	fmt.Println("(no leader, no IDs exchanged, no timing assumptions — just registers)")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
