// Quickstart: five anonymous processes — no IDs, unknown network size —
// agree on one of their proposed values over a live goroutine network that
// becomes synchronous after a chaotic start (the ES environment,
// Algorithm 2 of the paper).
package main

import (
	"fmt"
	"log"
	"time"

	"anonconsensus"
)

func main() {
	res, err := anonconsensus.Solve(anonconsensus.Config{
		// One proposal per process. The processes never learn which index
		// they are — indexes exist only so the runner can report outcomes.
		Proposals: []anonconsensus.Value{
			anonconsensus.NumValue(11),
			anonconsensus.NumValue(47),
			anonconsensus.NumValue(23),
			anonconsensus.NumValue(8),
			anonconsensus.NumValue(35),
		},
		Env:      anonconsensus.EnvES,
		GST:      5, // network stabilizes after round 5
		Seed:     7, // pre-stabilization chaos
		Interval: 5 * time.Millisecond,
		Timeout:  30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, d := range res.Decisions {
		fmt.Printf("process %d decided %s in round %d\n", d.Proc, d.Value, d.Round)
	}
	v, ok := res.Agreed()
	if !ok {
		log.Fatal("no agreement — the ES assumptions were not met")
	}
	fmt.Printf("\nconsensus: %s (in %s)\n", v, res.Elapsed.Round(time.Millisecond))
}
