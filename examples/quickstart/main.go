// Quickstart: five anonymous processes — no IDs, unknown network size —
// agree on one of their proposed values over a live goroutine network that
// becomes synchronous after a chaotic start (the ES environment,
// Algorithm 2 of the paper).
//
// The session API: create a Node over a Transport, run instances over it,
// and read outcomes. The same driver code works against the deterministic
// simulator or real TCP — swap NewLiveTransport for NewSimTransport or
// NewTCPTransport.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"anonconsensus"
)

func main() {
	node, err := anonconsensus.NewNode(anonconsensus.NewLiveTransport(),
		anonconsensus.WithEnv(anonconsensus.EnvES),
		anonconsensus.WithGST(5),  // network stabilizes after round 5
		anonconsensus.WithSeed(7), // pre-stabilization chaos
		anonconsensus.WithInterval(5*time.Millisecond),
		anonconsensus.WithTimeout(30*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	// One proposal per process. The processes never learn which index they
	// are — indexes exist only so the runner can report outcomes.
	proposals := []anonconsensus.Value{
		anonconsensus.NumValue(11),
		anonconsensus.NumValue(47),
		anonconsensus.NumValue(23),
		anonconsensus.NumValue(8),
		anonconsensus.NumValue(35),
	}
	res, err := node.Run(context.Background(), "quickstart", proposals)
	if err != nil {
		log.Fatal(err)
	}

	for _, d := range res.Decisions {
		fmt.Printf("process %d decided %s in round %d\n", d.Proc, d.Value, d.Round)
	}
	v, ok := res.Agreed()
	if !ok {
		log.Fatal("no agreement — the ES assumptions were not met")
	}
	fmt.Printf("\nconsensus: %s (in %s)\n", v, res.Elapsed.Round(time.Millisecond))
}
