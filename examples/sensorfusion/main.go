// Sensor fusion: the paper's motivating scenario. A field of identical,
// ID-less wireless sensors measures a temperature; some die mid-run; the
// survivors must agree on a single reading to report upstream.
//
// Radio conditions give only the weakest usable guarantee: most links are
// lossy-slow, but one sensor — whichever currently has the best channel —
// reaches everyone; eventually the mast-mounted sensor (index 3 here, but
// no sensor knows that) stays the best forever. That is exactly the ESS
// environment, so Algorithm 3's pseudo leader election applies: sensors
// elect leaders by comparing proposal histories, never learning names.
//
// The field reports every few minutes, so the session is long-lived: one
// Node over the live transport, one consensus instance per reporting
// period, decisions streaming on Decisions().
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"anonconsensus"
)

func main() {
	node, err := anonconsensus.NewNode(anonconsensus.NewLiveTransport(),
		anonconsensus.WithEnv(anonconsensus.EnvESS),
		anonconsensus.WithGST(8),          // radio settles after round 8
		anonconsensus.WithStableSource(3), // the mast sensor: best channel forever after
		anonconsensus.WithSeed(42),
		anonconsensus.WithCrashes(map[int]int{
			1: 2, // battery death almost immediately
			6: 3, // another one a round later
		}),
		anonconsensus.WithInterval(5*time.Millisecond),
		anonconsensus.WithTimeout(60*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	// Nine sensors, readings in deci-degrees. Duplicates are realistic:
	// anonymous processes with equal state are literally indistinguishable
	// and the algorithm must (and does) cope.
	readings := []int64{217, 221, 219, 222, 217, 220, 221, 219, 218}
	proposals := make([]anonconsensus.Value, len(readings))
	for i, r := range readings {
		proposals[i] = anonconsensus.NumValue(r)
	}

	res, err := node.Run(context.Background(), "report-1", proposals)
	if err != nil {
		log.Fatal(err)
	}

	alive := 0
	for _, d := range res.Decisions {
		switch {
		case d.Crashed:
			fmt.Printf("sensor %d: died\n", d.Proc)
		case d.Decided:
			alive++
			fmt.Printf("sensor %d: agreed on %s (round %d)\n", d.Proc, d.Value, d.Round)
		default:
			fmt.Printf("sensor %d: undecided\n", d.Proc)
		}
	}
	v, ok := res.Agreed()
	if !ok {
		log.Fatal("the field did not converge")
	}
	fmt.Printf("\nfield report: %s deci-degrees, agreed by %d surviving sensors in %s\n",
		v, alive, res.Elapsed.Round(time.Millisecond))
}
