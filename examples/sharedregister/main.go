// Shared register: the paper's §5 pipeline in miniature. Anonymous
// writers cannot use a classical register directly — concurrent writes by
// indistinguishable processes would silently overwrite each other — so the
// paper introduces the weak-set (adds never clobber) and then rebuilds a
// register on top of it (Proposition 1: store (value, |content|) pairs;
// read the highest value of maximal rank).
package main

import (
	"fmt"
	"log"
	"sync"

	"anonconsensus"
)

func main() {
	// 1. The weak-set itself: concurrent anonymous adders, nothing lost.
	ws := anonconsensus.NewWeakSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ws.Add(anonconsensus.NumValue(int64(i))); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	vals, err := ws.Get()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weak-set after 8 concurrent anonymous adds: %d values (none lost)\n", len(vals))

	// 2. The register built from a weak-set (Proposition 1): last write
	// wins once writes have settled, even though writers have no names.
	reg := anonconsensus.NewRegister()
	if _, ok, _ := reg.Read(); ok {
		log.Fatal("fresh register should be unwritten")
	}
	deployments := []anonconsensus.Value{"v1.0.3", "v1.1.0", "v1.1.1"}
	for _, d := range deployments {
		if err := reg.Write(d); err != nil {
			log.Fatal(err)
		}
	}
	v, ok, err := reg.Read()
	if err != nil || !ok {
		log.Fatalf("read failed: %v %v", ok, err)
	}
	fmt.Printf("register after sequential writes %v: %s\n", deployments, v)

	// 3. Concurrent anonymous writers: reads during the melee may differ,
	// but after quiescence everyone sees the same value — regularity, the
	// exact guarantee Proposition 1 proves.
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := reg.Write(anonconsensus.Value(fmt.Sprintf("candidate-%d", w))); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	a, _, err := reg.Read()
	if err != nil {
		log.Fatal(err)
	}
	b, _, err := reg.Read()
	if err != nil {
		log.Fatal(err)
	}
	if a != b {
		log.Fatalf("quiescent reads disagree: %s vs %s", a, b)
	}
	fmt.Printf("after 4 concurrent anonymous writers, all quiescent readers see: %s\n", a)
}
