package anonconsensus

import (
	"errors"
	"strings"
	"testing"
)

func TestExploreExhaustiveTinySpace(t *testing.T) {
	rep, err := Explore(ExploreConfig{
		Proposals: []Value{NumValue(1), NumValue(2)},
		Horizon:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified() {
		t.Fatalf("violations on the exhaustive n=2 space: %v", rep.Violations[0])
	}
	if rep.Schedules != 27 { // 3 MS-valid matrices ^ horizon 3
		t.Errorf("schedules = %d, want 27", rep.Schedules)
	}
	if rep.Decided == 0 {
		t.Error("nothing decided on the exhaustive space")
	}
}

func TestExploreRandomizedPublic(t *testing.T) {
	rep, err := Explore(ExploreConfig{
		Proposals:   []Value{NumValue(1), NumValue(2), NumValue(3), NumValue(4), NumValue(5)},
		Env:         EnvESS,
		Mode:        ExploreRandom,
		Trials:      150,
		Seed:        9,
		ScenarioPct: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified() {
		t.Fatalf("violations on correct ESS: %v", rep.Violations[0])
	}
	if rep.Runs != 150 || rep.Faulted == 0 {
		t.Errorf("runs=%d faulted=%d, want 150 runs with some faulted", rep.Runs, rep.Faulted)
	}
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "violations: 0 (verified)") {
		t.Errorf("render missing verified line:\n%s", b.String())
	}
}

func TestExploreRejectsBadConfig(t *testing.T) {
	for name, cfg := range map[string]ExploreConfig{
		"no proposals": {Horizon: 2},
		"bad env":      {Proposals: []Value{NumValue(1)}, Env: Environment(9), Horizon: 2},
		"bad mode":     {Proposals: []Value{NumValue(1)}, Mode: ExploreMode(9), Horizon: 2},
		"no horizon":   {Proposals: []Value{NumValue(1)}},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Explore(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestExploreRejectsVacuousScenarioPublic(t *testing.T) {
	_, err := Explore(ExploreConfig{
		Proposals: []Value{NumValue(1), NumValue(2)},
		Horizon:   2,
		Scenario:  Scenario{Crashes: map[int]int{0: 1, 1: 1}},
	})
	if err == nil {
		t.Fatal("all-crash scenario accepted")
	}
	if !errors.Is(err, ErrAllCrashed) {
		t.Errorf("error %v does not wrap the public ErrAllCrashed", err)
	}
}

func TestTraceRoundTripAndReplayPublic(t *testing.T) {
	const text = "alg=ES;props=000000000001|000000000002;tail=8;steady=sync;sched=01.00/00.00"
	tr, err := ParseTrace(text)
	if err != nil {
		t.Fatal(err)
	}
	if tr.String() != text {
		t.Errorf("canonical form changed: %q → %q", text, tr.String())
	}
	rep, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified() {
		t.Fatalf("clean trace replayed violations: %v", rep.Violations)
	}
	if rep.Decided != 1 {
		t.Errorf("decided = %d, want 1", rep.Decided)
	}
	if _, err := ParseTrace("alg=??"); err == nil {
		t.Error("junk trace accepted")
	}
}
