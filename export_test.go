package anonconsensus

// Test-only exports for the external bench/test package
// (anonconsensus_test), which cannot reach unexported identifiers.

// NewSimTransportUnpooledForTest exposes the pre-pooling sim transport —
// a fresh engine allocation per Run — as the baseline the engine-pool
// benchmarks measure against.
func NewSimTransportUnpooledForTest() Transport { return newSimTransportUnpooled() }
