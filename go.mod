module anonconsensus

go 1.24
