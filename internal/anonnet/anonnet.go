// Package anonnet is the real-time runtime: anonymous processes as
// goroutines, broadcast as channel fan-out with per-link latencies, and
// GIRAF rounds driven by local timers instead of a lockstep scheduler.
// Rounds therefore drift apart across processes — the part of the model the
// deterministic simulator (package sim) does not exercise.
//
// A link is timely in round k when the envelope arrives before the
// receiver's round-k timer fires; latency profiles realize the paper's
// environments by keeping the source's links fast (a fraction of the round
// interval) and everyone else's slow or jittery.
package anonnet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// LatencyModel assigns each (round, sender, receiver) link a delay.
// Implementations must be safe for concurrent use; the provided profiles
// are stateless hash-based so they need no locks. It is an alias for
// env.LatencyModel — the model is shared with the other backends.
type LatencyModel = env.LatencyModel

// Config describes a live run.
type Config struct {
	// N is the number of processes.
	N int
	// Automaton builds process i's automaton.
	Automaton func(i int) giraf.Automaton
	// Interval is the local round-timer period. Keep it ≥ 2ms so timely
	// links are reliably timely under scheduler noise.
	Interval time.Duration
	// Latency is the link latency profile.
	Latency LatencyModel
	// Timeout bounds the whole run.
	Timeout time.Duration
	// CrashAfterRounds stops process i after it executed that many
	// end-of-rounds (simulated crash). Zero/absent means never.
	CrashAfterRounds map[int]int
	// Scenario, when non-nil, overlays link faults on the broadcast fan-out:
	// envelopes whose (round, sender, receiver) the scenario drops — loss
	// draw or active partition — are never queued, and duplicated ones are
	// queued twice (the copy half an interval later), exercising inbox
	// deduplication. The scenario's crash schedule is honored in addition
	// to CrashAfterRounds. Fault decisions are deterministic in the
	// scenario seed, the same decisions the lockstep simulator makes.
	Scenario *env.Scenario
	// OnRound, if non-nil, runs in process i's own goroutine immediately
	// before each end-of-round, with the automaton it is about to step.
	// Drivers use it to inject operations (e.g. weak-set adds) or sample
	// state without racing the automaton.
	OnRound func(proc, round int, aut giraf.Automaton)
}

func (c *Config) validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("anonnet: N = %d", c.N)
	case c.Automaton == nil:
		return fmt.Errorf("anonnet: Automaton factory is nil")
	case c.Interval <= 0:
		return fmt.Errorf("anonnet: Interval = %v", c.Interval)
	case c.Latency == nil:
		return fmt.Errorf("anonnet: Latency model is nil")
	case c.Timeout <= 0:
		return fmt.Errorf("anonnet: Timeout = %v", c.Timeout)
	}
	if err := c.Scenario.Validate(c.N); err != nil {
		return fmt.Errorf("anonnet: %w", err)
	}
	return nil
}

// ProcResult is one process's outcome.
type ProcResult struct {
	Decided  bool
	Decision values.Value
	// DecidedRound is the round the process computed when deciding.
	DecidedRound int
	// Rounds is the number of end-of-rounds the process executed.
	Rounds int
	// Crashed reports whether the crash schedule stopped it.
	Crashed bool
}

// Result is the outcome of a live run.
type Result struct {
	Procs   []ProcResult
	Elapsed time.Duration
	// Dropped counts deliveries lost to the scenario's loss rate or an
	// active partition; Duplicated counts the extra deliveries its
	// duplication rate injected. Both are 0 without a scenario.
	Dropped    int
	Duplicated int
}

// AllCorrectDecided reports whether every non-crashed process decided.
func (r *Result) AllCorrectDecided() bool {
	for _, p := range r.Procs {
		if !p.Crashed && !p.Decided {
			return false
		}
	}
	return true
}

// Decisions returns the set of decided values.
func (r *Result) Decisions() values.Set {
	out := values.NewSet()
	for _, p := range r.Procs {
		if p.Decided {
			out.Add(p.Decision)
		}
	}
	return out
}

// network carries the shared state of one run.
type network struct {
	cfg  Config
	in   []chan giraf.Envelope
	ctx  context.Context
	wg   sync.WaitGroup // delivery goroutines
	done chan int       // process indexes that finished (decided/crashed/cancelled)

	// links[from*N+to] is the lazily started delivery queue of one
	// directed link; one goroutine per link drains it in deadline order,
	// bounding the run at O(n²) delivery goroutines total (previously one
	// goroutine per envelope per link: O(rounds·n²)).
	links []*linkQueue

	dropped    atomic.Int64
	duplicated atomic.Int64
}

// Run executes the live network until every process decided, crashed, the
// timeout expired, or the caller's context was cancelled. Cancellation of
// the parent context aborts the run and returns an error wrapping
// ctx.Err(); the run's own timeout is not an error — it simply yields
// undecided processes.
func Run(parent context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithTimeout(parent, cfg.Timeout)
	defer cancel()

	nw := &network{
		cfg:   cfg,
		in:    make([]chan giraf.Envelope, cfg.N),
		ctx:   ctx,
		done:  make(chan int, cfg.N),
		links: make([]*linkQueue, cfg.N*cfg.N),
	}
	for i := range nw.in {
		// Generous buffering: a halted process stops reading and late
		// deliveries must not block senders.
		nw.in[i] = make(chan giraf.Envelope, 4096)
	}

	start := time.Now()
	results := make([]ProcResult, cfg.N)
	var procWG sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		i := i
		procWG.Add(1)
		go func() {
			defer procWG.Done()
			results[i] = nw.runProcess(i)
			nw.done <- i
		}()
	}

	// Cancel as soon as every process reported (decided or crashed); the
	// context timeout is the fallback for undecided runs.
	finished := 0
	for finished < cfg.N {
		select {
		case <-nw.done:
			finished++
		case <-ctx.Done():
			finished = cfg.N
		}
	}
	cancel()
	procWG.Wait()
	nw.wg.Wait()
	if err := parent.Err(); err != nil {
		return nil, fmt.Errorf("anonnet: run cancelled: %w", err)
	}
	return &Result{
		Procs:      results,
		Elapsed:    time.Since(start),
		Dropped:    int(nw.dropped.Load()),
		Duplicated: int(nw.duplicated.Load()),
	}, nil
}

// maxQuietBeats bounds the round-pacing gate in runProcess: after this
// many consecutive timer beats below the inbound-envelope threshold, a
// round runs anyway. It trades sole-survivor latency (each round then
// takes this many beats) for a much wider starvation window before a
// loaded box could let ES decide against a stale or solo view — see the
// pacing comment in runProcess.
const maxQuietBeats = 8

// runProcess is one process's event loop.
func (nw *network) runProcess(id int) ProcResult {
	aut := nw.cfg.Automaton(id)
	proc := giraf.NewProc(aut)
	crashAfter := nw.cfg.CrashAfterRounds[id]
	if sc, ok := nw.cfg.Scenario.CrashRound(id); ok && (crashAfter == 0 || sc < crashAfter) {
		crashAfter = sc
	}
	ticker := time.NewTicker(nw.cfg.Interval)
	defer ticker.Stop()

	// Round pacing: on a loaded box the round timer can outpace delivery —
	// a process that runs two beats while its peers' envelopes sit in the
	// link queues sees only its own value and can satisfy the ES decide
	// guard against that starved view, breaking agreement. broadcast never
	// fans out to the sender, so inbound envelopes are a true peer-traffic
	// signal: a beat only executes a round once roughly one envelope per
	// peer arrived since the previous round (each peer broadcasts once per
	// round), with a bounded silent-beat escape (maxQuietBeats) so crashed
	// or halted peers cannot stall a survivor forever. Round 1 is exempt
	// (inbound starts satisfied): nobody has broadcast yet, and the decide
	// guards cannot fire against an empty WRITTENOLD. Same discipline as
	// the multiplexed TCP plane (tcpnet.RunInstance).
	need := nw.cfg.N - 1
	if need < 1 {
		need = 1
	}
	inbound := need // satisfied: round 1 fires on the first beat
	quiet := 0

	var res ProcResult
	for {
		select {
		case <-nw.ctx.Done():
			res.Rounds = proc.CurrentRound()
			return res
		case env := <-nw.in[id]:
			proc.Receive(env)
			inbound++
		case <-ticker.C:
			if inbound < need {
				if quiet++; quiet < maxQuietBeats {
					continue // pace rounds to peer traffic (see above)
				}
			}
			inbound = 0
			quiet = 0
			if crashAfter > 0 && proc.CurrentRound() >= crashAfter {
				res.Crashed = true
				res.Rounds = proc.CurrentRound()
				return res
			}
			computing := proc.CurrentRound()
			if nw.cfg.OnRound != nil {
				nw.cfg.OnRound(id, computing, aut)
			}
			env, ok := proc.EndOfRound()
			if proc.Halted() {
				d := proc.Decision()
				res.Decided = true
				res.Decision = d.Value
				res.DecidedRound = computing
				res.Rounds = proc.CurrentRound()
				return res
			}
			if ok {
				nw.broadcast(id, env)
			}
		}
	}
}

// broadcast fans the envelope out to every peer with per-link delays.
// Envelopes share one payload snapshot (giraf caches the round view), so
// fan-out costs one queue entry per link, not a payload copy. Scenario
// faults act here, at the fan-out: a dropped delivery is never queued and
// a duplicated one is queued twice.
func (nw *network) broadcast(from int, envl giraf.Envelope) {
	now := time.Now()
	sc := nw.cfg.Scenario
	for to := 0; to < nw.cfg.N; to++ {
		if to == from {
			continue
		}
		if sc != nil && sc.Drops(envl.Round, from, to) {
			nw.dropped.Add(1)
			continue
		}
		delay := nw.cfg.Latency.Delay(envl.Round, from, to)
		nw.link(from, to).push(now.Add(delay), envl)
		if sc != nil && sc.Duplicates(envl.Round, from, to) {
			nw.duplicated.Add(1)
			nw.link(from, to).push(now.Add(delay+nw.cfg.Interval/2), envl)
		}
	}
}

// link returns (starting if needed) the delivery queue of the from→to
// link. Only the sender's goroutine touches a given from-row, so lazy
// initialization needs no lock.
func (nw *network) link(from, to int) *linkQueue {
	idx := from*nw.cfg.N + to
	lq := nw.links[idx]
	if lq == nil {
		lq = newLinkQueue()
		nw.links[idx] = lq
		nw.wg.Add(1)
		go func() {
			defer nw.wg.Done()
			lq.run(nw.ctx, nw.in[to])
		}()
	}
	return lq
}
