package anonnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// Live tests use generous intervals and timeouts so they stay robust under
// race-detector slowdowns and noisy CI schedulers. Liveness assertions are
// kept to environments where the algorithm guarantees them.

const liveInterval = 5 * time.Millisecond

func esFactory(props []values.Value) func(int) giraf.Automaton {
	return func(i int) giraf.Automaton { return core.NewES(props[i]) }
}

func essFactory(props []values.Value) func(int) giraf.Automaton {
	return func(i int) giraf.Automaton { return core.NewESS(props[i]) }
}

func requireLiveConsensus(t *testing.T, res *Result, props []values.Value) {
	t.Helper()
	if !res.AllCorrectDecided() {
		t.Fatalf("not all correct processes decided: %+v", res.Procs)
	}
	d := res.Decisions()
	if d.Len() > 1 {
		t.Fatalf("agreement violated: %v", d)
	}
	if v, ok := d.Max(); ok && !core.ProposalSet(props).Contains(v) {
		t.Fatalf("validity violated: decided %v", v)
	}
}

func TestLiveESSynchronous(t *testing.T) {
	props := core.DistinctProposals(4)
	res, err := Run(context.Background(), Config{
		N:         4,
		Automaton: esFactory(props),
		Interval:  liveInterval,
		Latency:   Sync{Interval: liveInterval},
		Timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireLiveConsensus(t, res, props)
}

func TestLiveESEventualSynchrony(t *testing.T) {
	props := core.DistinctProposals(3)
	res, err := Run(context.Background(), Config{
		N:         3,
		Automaton: esFactory(props),
		Interval:  liveInterval,
		Latency:   ESProfile{N: 3, Interval: liveInterval, Seed: 1, GST: 6},
		Timeout:   20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireLiveConsensus(t, res, props)
}

func TestLiveESSStableSource(t *testing.T) {
	props := core.DistinctProposals(3)
	res, err := Run(context.Background(), Config{
		N:         3,
		Automaton: essFactory(props),
		Interval:  liveInterval,
		Latency:   ESSProfile{N: 3, Interval: liveInterval, Seed: 2, GST: 4, Source: 1},
		Timeout:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireLiveConsensus(t, res, props)
}

func TestLiveESWithCrash(t *testing.T) {
	props := core.DistinctProposals(4)
	res, err := Run(context.Background(), Config{
		N:                4,
		Automaton:        esFactory(props),
		Interval:         liveInterval,
		Latency:          Sync{Interval: liveInterval},
		Timeout:          15 * time.Second,
		CrashAfterRounds: map[int]int{0: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Procs[0].Crashed {
		t.Error("process 0 should have crashed")
	}
	requireLiveConsensus(t, res, props)
}

func TestLiveMSSafetyOnly(t *testing.T) {
	// Under a pure moving-source profile liveness is not guaranteed (FLP
	// corollary); run briefly and assert safety of whatever happened.
	props := core.SplitProposals(3, 2)
	res, err := Run(context.Background(), Config{
		N:         3,
		Automaton: esFactory(props),
		Interval:  2 * time.Millisecond,
		Latency:   MSProfile{N: 3, Interval: 2 * time.Millisecond, Seed: 3},
		Timeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Decisions(); d.Len() > 1 {
		t.Fatalf("agreement violated: %v", d)
	}
}

func TestLiveRoundsDrift(t *testing.T) {
	// Processes run unsynchronized rounds; with per-link noise their round
	// counters need not match, but all must have advanced.
	props := core.DistinctProposals(3)
	res, err := Run(context.Background(), Config{
		N:         3,
		Automaton: esFactory(props),
		Interval:  2 * time.Millisecond,
		Latency:   MSProfile{N: 3, Interval: 2 * time.Millisecond, Seed: 5},
		Timeout:   300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Procs {
		if p.Rounds == 0 {
			t.Errorf("process %d never advanced", i)
		}
	}
}

func TestLiveConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{
			N:         2,
			Automaton: esFactory(core.DistinctProposals(2)),
			Interval:  time.Millisecond,
			Latency:   Sync{Interval: time.Millisecond},
			Timeout:   time.Second,
		}
	}
	for name, mutate := range map[string]func(*Config){
		"zero N":        func(c *Config) { c.N = 0 },
		"nil automaton": func(c *Config) { c.Automaton = nil },
		"zero interval": func(c *Config) { c.Interval = 0 },
		"nil latency":   func(c *Config) { c.Latency = nil },
		"zero timeout":  func(c *Config) { c.Timeout = 0 },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := base()
			mutate(&cfg)
			if _, err := Run(context.Background(), cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestProfilesDeterministic(t *testing.T) {
	p := MSProfile{N: 4, Interval: time.Millisecond, Seed: 9}
	src := 3 % p.N // round-robin source of round 3 (Period defaults to 1)
	if p.Delay(3, 1, 2) != p.Delay(3, 1, 2) {
		t.Error("profile must be deterministic")
	}
	if p.Delay(3, src, 2) >= p.Interval {
		t.Error("source link must be fast")
	}
	if p.Delay(3, (src+1)%4, 2) < p.Interval {
		t.Error("non-source link must be slow")
	}
}

func TestLiveAsyncProfileCanBreakAgreement(t *testing.T) {
	// The live edition of TestESAgreementNeedsMS (internal/core): with no
	// link ever timely the MS property fails and Algorithm 2's agreement
	// genuinely can break — the paper's environment assumption is
	// load-bearing, not decorative. Validity must survive regardless.
	props := core.SplitProposals(3, 2)
	res, err := Run(context.Background(), Config{
		N:         3,
		Automaton: esFactory(props),
		Interval:  2 * time.Millisecond,
		Latency:   AsyncProfile{Interval: 2 * time.Millisecond, Seed: 8},
		Timeout:   400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	proposals := core.ProposalSet(props)
	for _, p := range res.Procs {
		if p.Decided && !proposals.Contains(p.Decision) {
			t.Errorf("validity violated: decided %v", p.Decision)
		}
	}
	if d := res.Decisions(); d.Len() > 1 {
		t.Logf("agreement broke under async, as the theory predicts: %v", d)
	}
}

func TestOnRoundHookRunsInProcessGoroutine(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	props := core.DistinctProposals(3)
	_, err := Run(context.Background(), Config{
		N:         3,
		Automaton: esFactory(props),
		Interval:  2 * time.Millisecond,
		Latency:   Sync{Interval: 2 * time.Millisecond},
		Timeout:   5 * time.Second,
		OnRound: func(proc, round int, aut giraf.Automaton) {
			if _, ok := aut.(*core.ES); !ok {
				t.Errorf("hook got %T", aut)
			}
			mu.Lock()
			if round > seen[proc] {
				seen[proc] = round
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 3; i++ {
		if seen[i] == 0 {
			t.Errorf("hook never ran for process %d", i)
		}
	}
}

func TestRunParentContextCancellation(t *testing.T) {
	// With a half-second round timer nothing can decide before the cancel
	// fires; Run must return promptly with a wrapped context error.
	props := core.DistinctProposals(3)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, Config{
		N:         3,
		Automaton: esFactory(props),
		Interval:  500 * time.Millisecond,
		Latency:   Sync{Interval: 500 * time.Millisecond},
		Timeout:   5 * time.Minute,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
}
