package anonnet

import (
	"context"
	"sync"
	"time"

	"anonconsensus/internal/giraf"
)

// linkQueue is the delivery queue of one directed link: envelopes wait in
// a deadline-ordered min-heap and a single goroutine (run) delivers each
// when its deadline passes. Latency profiles vary per round, so a later
// envelope may legitimately overtake an earlier one — exactly the
// reordering the old goroutine-per-envelope scheme produced, minus the
// goroutine explosion.
type linkQueue struct {
	mu   sync.Mutex
	heap []queuedEnvelope
	seq  uint64
	// wake nudges the runner when a new head-of-queue deadline appears.
	wake chan struct{}
}

// queuedEnvelope is one scheduled delivery; seq breaks deadline ties in
// FIFO order so equal-latency envelopes keep their send order.
type queuedEnvelope struct {
	at  time.Time
	seq uint64
	env giraf.Envelope
}

func newLinkQueue() *linkQueue {
	return &linkQueue{wake: make(chan struct{}, 1)}
}

// push schedules env for delivery at deadline at.
func (lq *linkQueue) push(at time.Time, env giraf.Envelope) {
	lq.mu.Lock()
	lq.seq++
	lq.heap = append(lq.heap, queuedEnvelope{at: at, seq: lq.seq, env: env})
	lq.siftUp(len(lq.heap) - 1)
	lq.mu.Unlock()
	select {
	case lq.wake <- struct{}{}:
	default:
	}
}

// head returns the earliest deadline, or ok=false for an empty queue.
func (lq *linkQueue) head() (time.Time, bool) {
	lq.mu.Lock()
	defer lq.mu.Unlock()
	if len(lq.heap) == 0 {
		return time.Time{}, false
	}
	return lq.heap[0].at, true
}

// pop removes and returns the earliest entry; ok=false when empty.
func (lq *linkQueue) pop() (queuedEnvelope, bool) {
	lq.mu.Lock()
	defer lq.mu.Unlock()
	if len(lq.heap) == 0 {
		return queuedEnvelope{}, false
	}
	top := lq.heap[0]
	last := len(lq.heap) - 1
	lq.heap[0] = lq.heap[last]
	lq.heap[last] = queuedEnvelope{} // release the payload reference
	lq.heap = lq.heap[:last]
	lq.siftDown(0)
	return top, true
}

func (lq *linkQueue) less(i, j int) bool {
	if !lq.heap[i].at.Equal(lq.heap[j].at) {
		return lq.heap[i].at.Before(lq.heap[j].at)
	}
	return lq.heap[i].seq < lq.heap[j].seq
}

func (lq *linkQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !lq.less(i, parent) {
			return
		}
		lq.heap[i], lq.heap[parent] = lq.heap[parent], lq.heap[i]
		i = parent
	}
}

func (lq *linkQueue) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(lq.heap) && lq.less(l, small) {
			small = l
		}
		if r < len(lq.heap) && lq.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		lq.heap[i], lq.heap[small] = lq.heap[small], lq.heap[i]
		i = small
	}
}

// run is the link's delivery loop: sleep until the head deadline (or a
// push installs an earlier one), then hand the envelope to the receiver's
// inbox channel. A receiver that stopped reading only stalls this one
// link; the sender never blocks on push.
func (lq *linkQueue) run(ctx context.Context, out chan<- giraf.Envelope) {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		at, ok := lq.head()
		if !ok {
			select {
			case <-ctx.Done():
				return
			case <-lq.wake:
				continue
			}
		}
		if wait := time.Until(at); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				if !timer.Stop() {
					<-timer.C
				}
				return
			case <-lq.wake:
				// A new envelope may have an earlier deadline; re-evaluate.
				if !timer.Stop() {
					<-timer.C
				}
				continue
			case <-timer.C:
			}
		}
		qe, ok := lq.pop()
		if !ok {
			continue
		}
		select {
		case out <- qe.env:
		case <-ctx.Done():
			return
		}
	}
}
