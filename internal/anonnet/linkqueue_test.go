package anonnet

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
)

// TestLinkQueueDeadlineOrder: deliveries come out in deadline order, with
// a later-pushed but earlier-due envelope overtaking (per-round latency
// profiles legitimately reorder links), and FIFO among equal deadlines.
func TestLinkQueueDeadlineOrder(t *testing.T) {
	lq := newLinkQueue()
	out := make(chan giraf.Envelope, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go lq.run(ctx, out)

	now := time.Now()
	lq.push(now.Add(60*time.Millisecond), giraf.Envelope{Round: 3})
	lq.push(now.Add(20*time.Millisecond), giraf.Envelope{Round: 1})
	lq.push(now.Add(40*time.Millisecond), giraf.Envelope{Round: 2})

	for want := 1; want <= 3; want++ {
		select {
		case env := <-out:
			if env.Round != want {
				t.Fatalf("delivery %d: got round %d", want, env.Round)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("delivery %d never arrived", want)
		}
	}
}

// TestLinkQueueEarlierDeadlinePreempts: a push with an earlier deadline
// while the runner is asleep on a later one must win.
func TestLinkQueueEarlierDeadlinePreempts(t *testing.T) {
	lq := newLinkQueue()
	out := make(chan giraf.Envelope, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go lq.run(ctx, out)

	lq.push(time.Now().Add(300*time.Millisecond), giraf.Envelope{Round: 2})
	time.Sleep(10 * time.Millisecond) // let the runner arm its timer
	lq.push(time.Now().Add(10*time.Millisecond), giraf.Envelope{Round: 1})

	select {
	case env := <-out:
		if env.Round != 1 {
			t.Fatalf("first delivery was round %d, want the preempting 1", env.Round)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("preempting delivery never arrived")
	}
}

// TestBroadcastGoroutinesBounded pins the satellite fix: delivery
// goroutines are one per active link (O(n²) per run), not one per
// envelope per link (O(rounds·n²)). With 6 processes ticking every 2ms
// under a high-latency profile, the old scheme held hundreds of timer
// goroutines in flight; the new bound is n·(n−1) link runners + n
// processes + harness overhead.
func TestBroadcastGoroutinesBounded(t *testing.T) {
	const n = 6
	base := runtime.NumGoroutine()
	props := core.DistinctProposals(n)

	var peak atomic.Int64
	res, err := Run(context.Background(), Config{
		N:         n,
		Automaton: func(i int) giraf.Automaton { return core.NewESS(props[i]) },
		Interval:  2 * time.Millisecond,
		Latency:   fixedLatency{d: 250 * time.Millisecond}, // >100 rounds in flight per link
		Timeout:   1500 * time.Millisecond,
		OnRound: func(proc, round int, aut giraf.Automaton) {
			g := int64(runtime.NumGoroutine())
			for {
				cur := peak.Load()
				if g <= cur || peak.CompareAndSwap(cur, g) {
					break
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Budget: base + n processes + n(n-1) links + generous harness slack.
	budget := int64(base + n + n*(n-1) + 25)
	if p := peak.Load(); p > budget {
		t.Errorf("peak goroutines %d exceeds O(n²) budget %d (base %d)", p, budget, base)
	} else if p == 0 {
		t.Error("no samples taken")
	}
}

// fixedLatency delays every link by a constant, far beyond the round
// interval, to maximize envelopes in flight.
type fixedLatency struct{ d time.Duration }

func (f fixedLatency) Delay(round, from, to int) time.Duration { return f.d }
