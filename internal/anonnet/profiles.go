package anonnet

import "anonconsensus/internal/env"

// The latency profiles live in internal/env (one environment model shared
// with the lockstep simulator); the names below are kept as aliases so
// existing construction sites — and the hash-based per-link schedules they
// pin — keep working unchanged. The equivalence test in internal/env pins
// the delays these profiles produce for fixed seeds.
//
// Deprecated: new code should construct latency models from internal/env
// directly.
type (
	// Sync delivers everything in a fifth of the round interval.
	Sync = env.Sync
	// MSProfile realizes the moving-source environment in real time.
	MSProfile = env.MSProfile
	// AsyncProfile provides no timeliness at all.
	AsyncProfile = env.AsyncProfile
	// ESProfile is eventually synchronous: MS chaos before GST, fast after.
	ESProfile = env.ESProfile
	// ESSProfile has an eventually stable source.
	ESSProfile = env.ESSProfile
)
