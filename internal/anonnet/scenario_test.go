package anonnet

import (
	"context"
	"testing"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/env"
)

// The scenario plane on the real-time backend: the same env.Scenario the
// lockstep simulator consumes, realized at the broadcast fan-out.

func TestLiveScenarioDuplicationHarmless(t *testing.T) {
	// 100% duplication: every delivery queued twice; set-semantics dedup
	// keeps the algorithm oblivious and consensus intact.
	props := core.DistinctProposals(4)
	res, err := Run(context.Background(), Config{
		N:         4,
		Automaton: esFactory(props),
		Interval:  liveInterval,
		Latency:   Sync{Interval: liveInterval},
		Timeout:   10 * time.Second,
		Scenario:  &env.Scenario{Seed: 1, DupPct: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireLiveConsensus(t, res, props)
	if res.Duplicated == 0 {
		t.Error("Duplicated = 0 at DupPct 100")
	}
}

func TestLiveScenarioTotalLossIsolatesProcesses(t *testing.T) {
	// 100% loss: no foreign payload ever arrives, so each process is
	// effectively alone and decides its own value — divergent decisions
	// and a nonzero drop count prove the loss plane really bit.
	props := core.DistinctProposals(2)
	res, err := Run(context.Background(), Config{
		N:         2,
		Automaton: esFactory(props),
		Interval:  liveInterval,
		Latency:   Sync{Interval: liveInterval},
		Timeout:   10 * time.Second,
		Scenario:  &env.Scenario{Seed: 2, LossPct: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCorrectDecided() {
		t.Fatalf("isolated processes must still decide (their own value): %+v", res.Procs)
	}
	if d := res.Decisions(); d.Len() != 2 {
		t.Errorf("decisions = %v, want both proposals (split ensemble)", d)
	}
	if res.Dropped == 0 {
		t.Error("Dropped = 0 at LossPct 100")
	}
}

func TestLiveScenarioPartitionSplitsBrain(t *testing.T) {
	// A never-healing partition separates {0,1} from {2,3}; each block is
	// an anonymous network of its own and decides its block value.
	props := core.SplitProposals(4, 1)
	props[2], props[3] = "zz", "zz" // block values: {0,1}→"0", {2,3}→"zz"
	res, err := Run(context.Background(), Config{
		N:         4,
		Automaton: esFactory(props),
		Interval:  liveInterval,
		Latency:   Sync{Interval: liveInterval},
		Timeout:   10 * time.Second,
		Scenario:  &env.Scenario{Partitions: []env.Partition{{From: 1, Until: 0, Cut: 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCorrectDecided() {
		t.Fatalf("both blocks must decide internally: %+v", res.Procs)
	}
	if d := res.Decisions(); d.Len() != 2 {
		t.Errorf("decisions = %v, want the two block values (split-brain)", d)
	}
}

func TestLiveScenarioCrashSchedule(t *testing.T) {
	// A scenario crash schedule behaves like CrashAfterRounds.
	props := core.DistinctProposals(3)
	res, err := Run(context.Background(), Config{
		N:         3,
		Automaton: esFactory(props),
		Interval:  liveInterval,
		Latency:   Sync{Interval: liveInterval},
		Timeout:   10 * time.Second,
		Scenario:  &env.Scenario{Crashes: map[int]int{2: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Procs[2].Crashed {
		t.Errorf("proc 2 must crash via the scenario schedule: %+v", res.Procs[2])
	}
	requireLiveConsensus(t, res, props)
}

func TestLiveScenarioValidation(t *testing.T) {
	cfg := Config{
		N:         2,
		Automaton: esFactory(core.DistinctProposals(2)),
		Interval:  liveInterval,
		Latency:   Sync{Interval: liveInterval},
		Timeout:   time.Second,
		Scenario:  &env.Scenario{Partitions: []env.Partition{{From: 1, Until: 0, Cut: 2}}}, // cut ≥ n
	}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("invalid scenario accepted")
	}
	cfg.Scenario = &env.Scenario{Crashes: map[int]int{0: 1, 1: 1}}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("all-crash scenario accepted")
	}
}
