package core

import (
	"testing"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

// These tests document that the proof-derived pseudo-code nesting is
// load-bearing (DESIGN.md §3 note 3): the flat literal reading of the HAL
// preprint demonstrably breaks Agreement (stale WRITTENOLD) and Termination
// (the all-⊥ deadlock).

func runLiteralESS(t *testing.T, props []values.Value, pol sim.Policy, maxRounds int) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		N:         len(props),
		Automaton: func(i int) giraf.Automaton { return NewESSLiteral(props[i]) },
		Policy:    pol,
		MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestESSLiteralViolatesAgreement(t *testing.T) {
	// Pinned MS schedule (found by seed search) on which the literal
	// variant's WRITTENOLD^k = WRITTEN^(k−2) lets one process decide on
	// two-round-old evidence while the rest move on to another value.
	props := SplitProposals(5, 2)
	res := runLiteralESS(t, props, &sim.MS{Seed: 93, MaxDelay: 3, ExtraTimelyPct: 93 % 40}, 80)
	if res.Decisions().Len() <= 1 {
		t.Skip("pinned schedule no longer violates agreement (engine change?); re-pin a seed")
	}
	// The corrected automaton must handle the same schedule safely.
	fixed, err := RunESS(props, RunOpts{
		Policy:    &sim.MS{Seed: 93, MaxDelay: 3, ExtraTimelyPct: 93 % 40},
		MaxRounds: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fixed.CheckAgreement(); err != nil {
		t.Errorf("corrected ESS violates agreement on the pinned schedule: %v", err)
	}
}

func TestESSLiteralDeadlocksAllBot(t *testing.T) {
	// Stable source from round 1 with all other links slow: the source
	// decides alone and halts; under the literal nesting the survivors are
	// stuck proposing ⊥ forever because the leader-proposal lines never run
	// when WRITTEN \ {⊥} = ∅.
	props := DistinctProposals(5)
	pol := &sim.ESS{GST: 1, StableSource: 4, Pre: sim.MS{Seed: 4}}
	res := runLiteralESS(t, props, pol, 300)
	if res.AllCorrectDecided() {
		t.Skip("pinned schedule no longer deadlocks (engine change?); re-pin")
	}
	// The corrected automaton terminates on the identical schedule.
	fixed, err := RunESS(props, RunOpts{
		Policy:    &sim.ESS{GST: 1, StableSource: 4, Pre: sim.MS{Seed: 4}},
		MaxRounds: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.AllCorrectDecided() {
		t.Error("corrected ESS fails to terminate on the pinned schedule")
	}
	requireSafety(t, fixed, props)
}

func TestESLiteralStaleWrittenOld(t *testing.T) {
	// The ES literal variant decides against WRITTEN^(k−2); search a modest
	// seed space for an MS schedule where that breaks agreement, then check
	// the corrected automaton on the same schedule. The search is
	// deterministic, so this test is stable.
	for seed := int64(0); seed < 400; seed++ {
		props := SplitProposals(5, 2)
		pol := &sim.MS{Seed: seed, MaxDelay: 3, ExtraTimelyPct: int(seed % 40)}
		res, err := sim.Run(sim.Config{
			N:         len(props),
			Automaton: func(i int) giraf.Automaton { return NewESLiteral(props[i]) },
			Policy:    pol,
			MaxRounds: 80,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Decisions().Len() > 1 {
			fixed, err := RunES(props, RunOpts{
				Policy:    &sim.MS{Seed: seed, MaxDelay: 3, ExtraTimelyPct: int(seed % 40)},
				MaxRounds: 80,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := fixed.CheckAgreement(); err != nil {
				t.Errorf("corrected ES violates agreement on seed %d: %v", seed, err)
			}
			return
		}
	}
	// Not finding a violation is not a failure of the corrected algorithm —
	// ES's stricter decide guard (PROPOSED must equal {VAL} exactly) makes
	// the literal variant much harder to trip than ESS's.
	t.Log("no ES-literal agreement violation within the searched seed space")
}
