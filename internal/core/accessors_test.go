package core

import (
	"strings"
	"testing"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

func TestESAccessors(t *testing.T) {
	a := NewES(values.Num(4))
	if a.Val() != values.Num(4) {
		t.Errorf("Val = %v", a.Val())
	}
	if !a.Proposed().IsEmpty() || !a.Written().IsEmpty() {
		t.Error("fresh automaton must have empty sets")
	}
	p := a.Initialize().(SetPayload)
	if got := p.String(); !strings.Contains(got, "000000000004") {
		t.Errorf("payload String = %q", got)
	}
}

func TestESSAccessors(t *testing.T) {
	a := NewESS(values.Num(2))
	if a.Val() != values.Num(2) {
		t.Errorf("Val = %v", a.Val())
	}
	if !a.IsLeader() {
		t.Error("fresh automaton must consider itself leader")
	}
	if a.Counters().Len() != 0 {
		t.Error("fresh counters must be empty")
	}
	if !a.Proposed().IsEmpty() || !a.Written().IsEmpty() || !a.WrittenOld().IsEmpty() {
		t.Error("fresh automaton must have empty sets")
	}
	if a.History().Len() != 1 {
		t.Errorf("initial history len = %d", a.History().Len())
	}
	p := a.Initialize().(ESSPayload)
	if got := p.String(); !strings.Contains(got, "⟨") {
		t.Errorf("payload String = %q", got)
	}
}

func TestESSStableSourceCrashesAfterGST(t *testing.T) {
	// The designated stable source decides-or-crashes after GST: the ESS
	// policy falls back to another sender (re-stabilizing on it). The
	// algorithm must still terminate and agree — robustness beyond the
	// letter of the environment definition.
	props := DistinctProposals(5)
	res, err := RunESS(props, RunOpts{
		Policy:    &sim.ESS{GST: 6, StableSource: 2, Pre: sim.MS{Seed: 31, Alternate: true}},
		Crashes:   map[int]int{2: 9}, // source dies three rounds after GST
		MaxRounds: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
}

func TestESDecisionsRecordedInTrace(t *testing.T) {
	props := DistinctProposals(3)
	res, err := RunES(props, RunOpts{
		Policy:      sim.Synchronous{},
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
	if err := res.Trace.CheckMS(); err != nil {
		t.Errorf("synchronous deciding run must satisfy MS: %v", err)
	}
}

func TestESLateMessagesAfterDecisionHarmless(t *testing.T) {
	// A decided (halted) process keeps receiving late envelopes from the
	// engine queue; Receive must ignore them without disturbing anything.
	props := DistinctProposals(3)
	var decidedProc *giraf.Proc
	res, err := RunES(props, RunOpts{
		Policy:    &sim.ES{GST: 4, Pre: sim.MS{Seed: 1, MaxDelay: 6}},
		MaxRounds: 100,
		OnRound: func(r int, e *sim.Engine) {
			if decidedProc == nil {
				for i := 0; i < e.N(); i++ {
					if e.Proc(i).Halted() {
						decidedProc = e.Proc(i)
					}
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
	if decidedProc == nil {
		t.Fatal("nobody decided mid-run")
	}
	if d := decidedProc.Decision(); !d.Decided {
		t.Error("halted process lost its decision")
	}
}
