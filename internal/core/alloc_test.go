package core

import (
	"testing"

	"anonconsensus/internal/sim"
)

// TestSimStepAllocBudget pins the allocation cost of one full simulated
// consensus run (every global step: compute, clone, broadcast, deliver,
// dedup) so the canonical-form refactor can't silently regress. The
// ceiling carries ~35% headroom over the measured value at the time of
// writing (~370 allocs for this config, down from ~660 before the
// flat-state engine and ~2400 pre-canonical-form); alloc counts for a
// fixed deterministic run are stable across machines.
func TestSimStepAllocBudget(t *testing.T) {
	props := DistinctProposals(4)
	run := func() {
		res, err := RunES(props, RunOpts{Policy: sim.Synchronous{}})
		if err != nil || !res.AllCorrectDecided() {
			t.Fatalf("run failed: %v", err)
		}
	}
	run() // settle any process-global lazy state (intern shards etc.)
	const ceiling = 500
	if n := testing.AllocsPerRun(10, run); n > ceiling {
		t.Errorf("full ES n=4 synchronous run: %v allocs, budget %d", n, ceiling)
	}
}
