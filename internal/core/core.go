package core
