// Package core implements the paper's primary contribution: fault-tolerant
// consensus for unknown and anonymous networks.
//
//   - ES (Algorithm 2): consensus in the eventually synchronous environment.
//     Safety comes from the written-value mechanism (a value counts as
//     written only when it appears in *every* payload received in a round,
//     which forces it through the round's source); liveness comes from
//     eventual synchrony making everyone pick the same maximum.
//
//   - ESS (Algorithm 3): consensus in the eventually-stable-source
//     environment. Liveness cannot rely on all links becoming timely, so the
//     algorithm performs the paper's novel *pseudo leader election*: each
//     process tracks a counter per proposal history it has heard of
//     (Counters); histories of eventual sources are bumped every round while
//     histories of non-sources stall, so eventually exactly the processes
//     whose history carries a maximal counter — all of which provably
//     converge to the same proposals — consider themselves leaders.
//     Non-leaders propose ⊥ so that the source's value still reaches
//     everybody every round.
//
//   - OmegaConsensus: the classical leader-based baseline (refs [3], [4]):
//     the same skeleton as Algorithm 3 but with the history mechanism
//     replaced by an external Ω oracle bit. It quantifies exactly what the
//     pseudo leader election buys (no oracle, no IDs) and costs (history
//     and counter baggage in every message), experiment T6.
package core
