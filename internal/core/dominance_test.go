package core

import (
	"fmt"
	"strings"
	"testing"

	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

// roundViewLog captures, after every global step, the structural content
// of every process's current-round inbox: the canonical payload keys in
// iteration order. Two runs with equal logs agreed on every round view
// every process ever computed from.
func roundViewLog() (*[]string, func(round int, e *sim.Engine)) {
	log := &[]string{}
	return log, func(round int, e *sim.Engine) {
		var b strings.Builder
		fmt.Fprintf(&b, "r%d", round)
		for i := 0; i < e.N(); i++ {
			b.WriteString("|")
			for _, p := range e.Proc(i).Round(round) {
				b.WriteString(p.PayloadKey())
				b.WriteByte(',')
			}
		}
		*log = append(*log, b.String())
	}
}

// TestDominanceSkipStructurallyIdentical is the property test for the
// dominance-aware merge skipping: for every policy/scenario combination,
// a run with skipping enabled must produce round views structurally
// identical — payload key for payload key, process for process, round for
// round — to the same run with skipping disabled (every envelope merged
// element-wise), and identical Results up to the MergesSkipped counter
// itself. Soundness argument in PERFORMANCE.md: merges are idempotent and
// monotone, and fingerprint equality is structural equality, so a
// dominated envelope cannot change any round view.
func TestDominanceSkipStructurallyIdentical(t *testing.T) {
	n := 12
	props := DistinctProposals(n)
	lossy := &env.Scenario{Seed: 5, LossPct: 20}
	duppy := &env.Scenario{Seed: 9, DupPct: 35}
	// policy is a factory: seeded policies are stateful (their RNG stream
	// advances across Schedule calls), so each run needs a fresh one.
	cases := []struct {
		name     string
		config   func(opts RunOpts) sim.Config
		policy   func() sim.Policy
		scenario *env.Scenario
	}{
		{"ES synchronous", func(o RunOpts) sim.Config { return ConfigES(props, o) },
			func() sim.Policy { return sim.Synchronous{} }, nil},
		{"ES under MS", func(o RunOpts) sim.Config { return ConfigES(props, o) },
			func() sim.Policy { return &sim.MS{Seed: 21, MaxDelay: 3} }, nil},
		{"ES under ES policy lossy", func(o RunOpts) sim.Config { return ConfigES(props, o) },
			func() sim.Policy { return &sim.ES{GST: 10, Pre: sim.MS{Seed: 4, MaxDelay: 2}} }, lossy},
		{"ES duplicating", func(o RunOpts) sim.Config { return ConfigES(props, o) },
			func() sim.Policy { return sim.Synchronous{} }, duppy},
		{"ESS under MS", func(o RunOpts) sim.Config { return ConfigESS(props, o) },
			func() sim.Policy { return &sim.ESS{GST: 8, StableSource: n - 1, Pre: sim.MS{Seed: 13, Alternate: true}} }, nil},
		{"ESS lossy duplicating", func(o RunOpts) sim.Config { return ConfigESS(props, o) },
			func() sim.Policy { return &sim.ESS{GST: 8, StableSource: 0, Pre: sim.MS{Seed: 2, MaxDelay: 2}} },
			&env.Scenario{Seed: 1, LossPct: 10, DupPct: 25}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(forceFull bool) (*sim.Result, []string) {
				prev := giraf.ForceFullMergeForTest(forceFull)
				defer giraf.ForceFullMergeForTest(prev)
				log, onRound := roundViewLog()
				res, err := sim.Run(tc.config(RunOpts{
					Policy:    tc.policy(),
					Scenario:  tc.scenario,
					MaxRounds: 60,
					OnRound:   onRound,
				}))
				if err != nil {
					t.Fatal(err)
				}
				return res, *log
			}
			skipped, skippedLog := run(false)
			full, fullLog := run(true)

			if len(skippedLog) != len(fullLog) {
				t.Fatalf("round counts differ: %d vs %d", len(skippedLog), len(fullLog))
			}
			for i := range skippedLog {
				if skippedLog[i] != fullLog[i] {
					t.Fatalf("round view diverged at step %d:\n skip: %s\n full: %s",
						i+1, skippedLog[i], fullLog[i])
				}
			}
			if full.Metrics.MergesSkipped != 0 {
				t.Errorf("forced-full run still skipped %d merges", full.Metrics.MergesSkipped)
			}
			// Results must agree on everything except the skip counter.
			fm, sm := full.Metrics, skipped.Metrics
			sm.MergesSkipped, fm.MergesSkipped = 0, 0
			if fm != sm {
				t.Errorf("metrics diverged:\n skip: %+v\n full: %+v", sm, fm)
			}
			if full.Rounds != skipped.Rounds {
				t.Errorf("rounds diverged: %d vs %d", skipped.Rounds, full.Rounds)
			}
			for i := range full.Statuses {
				if full.Statuses[i] != skipped.Statuses[i] {
					t.Errorf("process %d status diverged:\n skip: %+v\n full: %+v",
						i, skipped.Statuses[i], full.Statuses[i])
				}
			}
		})
	}
}

// TestDominanceSkipEngages pins that the fast path actually fires where it
// should: a fault-free synchronous ES run converges, and from then on
// every rebroadcast is fingerprint-identical, so a healthy fraction of
// deliveries must skip their merges.
func TestDominanceSkipEngages(t *testing.T) {
	props := SplitProposals(16, 2)
	res, err := RunES(props, RunOpts{Policy: sim.Synchronous{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCorrectDecided() {
		t.Fatal("run did not decide")
	}
	if res.Metrics.MergesSkipped == 0 {
		t.Error("no merge was ever skipped in a converging synchronous run")
	}
	if res.Metrics.MergesSkipped >= res.Metrics.Deliveries {
		t.Errorf("skips %d must stay below deliveries %d (skipped deliveries still count)",
			res.Metrics.MergesSkipped, res.Metrics.Deliveries)
	}
}

// TestPayloadEncodedSizeContract pins PayloadEncodedSize() ==
// len(PayloadKey()) for every payload type the simulator accounts, so the
// envelopeBytes fast path cannot drift from the canonical encoding.
func TestPayloadEncodedSizeContract(t *testing.T) {
	set := values.NewSet("a", "bb", "⊥")
	payloads := []giraf.Payload{
		SetPayload{Proposed: set},
		SetPayload{Proposed: values.NewSet()},
		MakeESSPayload(set, values.History{}, values.Counters{}),
	}
	for _, p := range payloads {
		s, ok := p.(giraf.PayloadSizer)
		if !ok {
			t.Fatalf("%T does not implement PayloadSizer", p)
		}
		if got, want := s.PayloadEncodedSize(), len(p.PayloadKey()); got != want {
			t.Errorf("%T: PayloadEncodedSize() = %d, len(PayloadKey()) = %d", p, got, want)
		}
	}
}
