package core

import (
	"fmt"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// SetPayload is the wire payload of Algorithm 2 (and Algorithm 4): the
// broadcast PROPOSED set. Its canonical key and fingerprint are cached
// inside the set itself, so framework-side identity checks are O(1).
type SetPayload struct {
	Proposed values.Set
}

var (
	_ giraf.Payload       = SetPayload{}
	_ giraf.Fingerprinted = SetPayload{}
	_ giraf.PayloadSizer  = SetPayload{}
)

// PayloadKey implements giraf.Payload.
func (p SetPayload) PayloadKey() string { return p.Proposed.Key() }

// PayloadFingerprint implements giraf.Fingerprinted.
func (p SetPayload) PayloadFingerprint() values.Fingerprint { return p.Proposed.Fingerprint() }

// PayloadEncodedSize implements giraf.PayloadSizer via the set's cached
// encoded size — the key string is never built just to be measured.
func (p SetPayload) PayloadEncodedSize() int { return p.Proposed.EncodedSize() }

// String implements fmt.Stringer.
func (p SetPayload) String() string { return p.Proposed.String() }

// ES is Algorithm 2: consensus in the eventually synchronous environment.
// One instance per process; not safe for concurrent use (the framework
// serializes calls).
type ES struct {
	val        values.Value
	written    values.Set
	writtenOld values.Set
	proposed   values.Set

	// sets is Compute's scratch buffer of round-k message sets, reused
	// across rounds.
	sets []values.Set

	// memo, when non-nil, is shared by every ES automaton of one run (see
	// ConfigES) and caches the round-aggregate sets by inbox fingerprint.
	memo *esMemo

	// literalNesting reproduces the broken literal reading of the
	// preprint's flat indentation (line 14 nested in the even-round
	// else-if); see NewESLiteral.
	literalNesting bool
}

var _ giraf.Automaton = (*ES)(nil)

// NewES returns a process automaton proposing v. It panics if v is not a
// valid proposal (empty or the reserved ⊥).
func NewES(v values.Value) *ES {
	if !v.Valid() {
		panic(fmt.Sprintf("core.NewES: invalid initial value %q", string(v)))
	}
	return &ES{
		val:        v,
		written:    values.NewSet(),
		writtenOld: values.NewSet(),
		proposed:   values.NewSet(),
	}
}

// NewESLiteral builds the *broken* variant that updates WRITTENOLD only in
// even rounds (the literal flat reading of Algorithm 2's line 14). It
// violates Agreement on some moving-source schedules and exists only as an
// ablation; see NewESSLiteral for the full story.
func NewESLiteral(v values.Value) *ES {
	a := NewES(v)
	a.literalNesting = true
	return a
}

// Initialize implements giraf.Automaton (Algorithm 2 lines 1–4). The
// returned payload carries {VAL}: the paper's text returns the empty
// PROPOSED, under which no initial value could ever enter the system — see
// DESIGN.md §3 note 1.
func (a *ES) Initialize() giraf.Payload {
	return SetPayload{Proposed: values.NewSet(a.val)}
}

// Compute implements giraf.Automaton (Algorithm 2 lines 5–15).
//
// The state sets (WRITTEN, WRITTENOLD, PROPOSED) are only ever reassigned,
// never mutated in place, and inbox payload sets are immutable by the
// framework contract — so the steady-state fast path below may alias them
// freely instead of cloning. The aliasing is behavior-identical to the
// clone-everything version; it only removes copies of sets nobody will
// write to.
func (a *ES) Compute(k int, inbox giraf.Inbox) (giraf.Payload, giraf.Decision) {
	msgs := inbox.Round(k)
	sets := a.sets[:0]
	for _, m := range msgs {
		// Payloads of a foreign algorithm family (possible when a shared
		// hub replays another run's frames) are ignored, not fatal:
		// crash-fault model, a peer speaking another protocol is garbage.
		if p, ok := m.(SetPayload); ok {
			sets = append(sets, p.Proposed)
		}
	}
	a.sets = sets
	if len(sets) > 0 && allSetsEqual(sets) {
		// Steady-state fast path: every round-k message carries the same
		// set S (one fingerprint comparison each), so WRITTEN = ∩ = S and
		// ∪ = S; PROPOSED grows to S ∪ PROPOSED, which is S itself once
		// PROPOSED ⊆ S (the converged case — no set is built at all).
		s0 := sets[0]
		a.written = s0
		if a.proposed.SubsetOf(s0) {
			a.proposed = s0
		} else {
			a.proposed = s0.Union(a.proposed)
		}
	} else {
		// Lines 6–7: WRITTEN := ∩_{m ∈ M_i[k]} m and the inbox union for
		// PROPOSED. Both are pure functions of the round's payload set, so
		// across the processes of one run — which see identical inboxes
		// whenever delivery is uniform, e.g. every synchronous round — the
		// first process computes them and its peers alias the memoized
		// result (sound: fingerprint equality ⇔ structural equality, and
		// state sets are only ever reassigned, never mutated).
		w, u, ok := a.memoLookup(k, inbox)
		if !ok {
			w = values.IntersectAll(sets)
			u = values.UnionAll(sets)
			a.memoStore(k, inbox, w, u)
		}
		a.written = w
		// The union is owned (or immutably shared), so when PROPOSED adds
		// nothing to it — always the case in round 1, where our own inbox
		// payload carries VAL — it is aliased rather than cloned again.
		if a.proposed.SubsetOf(u) {
			a.proposed = u
		} else {
			a.proposed = u.Union(a.proposed)
		}
	}

	if k%2 == 0 {
		// Line 9: if PROPOSED = WRITTENOLD = {VAL} then decide.
		if a.proposed.IsExactly(a.val) && a.writtenOld.IsExactly(a.val) {
			return nil, giraf.Decision{Decided: true, Value: a.val}
		}
		// Lines 11–13.
		if !a.written.IsEmpty() {
			max, _ := a.written.Max()
			a.val = max
			a.proposed = values.NewSet(a.val)
			if a.literalNesting {
				a.writtenOld = a.written // broken literal reading (ablation)
			}
		}
	}
	// Line 14 executes every round: WRITTENOLD^k must equal WRITTEN^(k−1),
	// which is exactly what Lemma 2's proof uses; the even-round-only
	// placement (a flat reading of the preprint's lost indentation) yields
	// WRITTEN^(k−2) and violates Agreement on some MS schedules
	// (DESIGN.md §3 note 3).
	if !a.literalNesting {
		a.writtenOld = a.written
	}
	// Line 15: return PROPOSED.
	return SetPayload{Proposed: a.proposed}, giraf.Decision{}
}

// esMemo caches one round-inbox's aggregate sets (intersection and union)
// keyed by the inbox's set fingerprint, shared by every ES automaton of a
// single run. A single slot suffices: the engine invokes end-of-round
// compute sequentially across processes, so when inboxes coincide the
// hits arrive back to back. The cached sets are immutable by convention —
// ES state sets are reassigned, never mutated in place.
type esMemo struct {
	fp      values.Fingerprint
	written values.Set
	union   values.Set
}

// roundFingerprinter is the optional Inbox capability the memo keys on
// (implemented by giraf.Proc).
type roundFingerprinter interface {
	RoundSetFingerprint(k int) values.Fingerprint
}

// memoLookup returns the cached aggregates when the run-shared memo holds
// this round's exact payload set.
func (a *ES) memoLookup(k int, inbox giraf.Inbox) (written, union values.Set, ok bool) {
	if a.memo == nil || a.memo.fp.IsZero() {
		return values.Set{}, values.Set{}, false
	}
	rf, can := inbox.(roundFingerprinter)
	if !can {
		return values.Set{}, values.Set{}, false
	}
	if fp := rf.RoundSetFingerprint(k); !fp.IsZero() && fp == a.memo.fp {
		return a.memo.written, a.memo.union, true
	}
	return values.Set{}, values.Set{}, false
}

// memoStore records this round's aggregates for the peers that will see
// the same inbox.
func (a *ES) memoStore(k int, inbox giraf.Inbox, written, union values.Set) {
	if a.memo == nil {
		return
	}
	rf, can := inbox.(roundFingerprinter)
	if !can {
		return
	}
	if fp := rf.RoundSetFingerprint(k); !fp.IsZero() {
		a.memo.fp, a.memo.written, a.memo.union = fp, written, union
	}
}

// allSetsEqual reports whether every set equals the first — a fingerprint
// comparison per element for settled (payload) sets.
func allSetsEqual(sets []values.Set) bool {
	for _, t := range sets[1:] {
		if !sets[0].Equal(t) {
			return false
		}
	}
	return true
}

// Val returns the current estimate (for metrics and tests).
func (a *ES) Val() values.Value { return a.val }

// Proposed returns a copy of the current PROPOSED set (for tests).
func (a *ES) Proposed() values.Set { return a.proposed.Clone() }

// Written returns a copy of the last computed WRITTEN set (for tests).
func (a *ES) Written() values.Set { return a.written.Clone() }
