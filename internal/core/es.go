package core

import (
	"fmt"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// SetPayload is the wire payload of Algorithm 2 (and Algorithm 4): the
// broadcast PROPOSED set. Its canonical key and fingerprint are cached
// inside the set itself, so framework-side identity checks are O(1).
type SetPayload struct {
	Proposed values.Set
}

var (
	_ giraf.Payload       = SetPayload{}
	_ giraf.Fingerprinted = SetPayload{}
)

// PayloadKey implements giraf.Payload.
func (p SetPayload) PayloadKey() string { return p.Proposed.Key() }

// PayloadFingerprint implements giraf.Fingerprinted.
func (p SetPayload) PayloadFingerprint() values.Fingerprint { return p.Proposed.Fingerprint() }

// String implements fmt.Stringer.
func (p SetPayload) String() string { return p.Proposed.String() }

// ES is Algorithm 2: consensus in the eventually synchronous environment.
// One instance per process; not safe for concurrent use (the framework
// serializes calls).
type ES struct {
	val        values.Value
	written    values.Set
	writtenOld values.Set
	proposed   values.Set

	// literalNesting reproduces the broken literal reading of the
	// preprint's flat indentation (line 14 nested in the even-round
	// else-if); see NewESLiteral.
	literalNesting bool
}

var _ giraf.Automaton = (*ES)(nil)

// NewES returns a process automaton proposing v. It panics if v is not a
// valid proposal (empty or the reserved ⊥).
func NewES(v values.Value) *ES {
	if !v.Valid() {
		panic(fmt.Sprintf("core.NewES: invalid initial value %q", string(v)))
	}
	return &ES{
		val:        v,
		written:    values.NewSet(),
		writtenOld: values.NewSet(),
		proposed:   values.NewSet(),
	}
}

// NewESLiteral builds the *broken* variant that updates WRITTENOLD only in
// even rounds (the literal flat reading of Algorithm 2's line 14). It
// violates Agreement on some moving-source schedules and exists only as an
// ablation; see NewESSLiteral for the full story.
func NewESLiteral(v values.Value) *ES {
	a := NewES(v)
	a.literalNesting = true
	return a
}

// Initialize implements giraf.Automaton (Algorithm 2 lines 1–4). The
// returned payload carries {VAL}: the paper's text returns the empty
// PROPOSED, under which no initial value could ever enter the system — see
// DESIGN.md §3 note 1.
func (a *ES) Initialize() giraf.Payload {
	return SetPayload{Proposed: values.NewSet(a.val)}
}

// Compute implements giraf.Automaton (Algorithm 2 lines 5–15).
func (a *ES) Compute(k int, inbox giraf.Inbox) (giraf.Payload, giraf.Decision) {
	msgs := inbox.Round(k)
	sets := make([]values.Set, 0, len(msgs))
	for _, m := range msgs {
		// Payloads of a foreign algorithm family (possible when a shared
		// hub replays another run's frames) are ignored, not fatal:
		// crash-fault model, a peer speaking another protocol is garbage.
		if p, ok := m.(SetPayload); ok {
			sets = append(sets, p.Proposed)
		}
	}
	// Line 6: WRITTEN := ∩_{m ∈ M_i[k]} m.
	a.written = values.IntersectAll(sets)
	// Line 7: PROPOSED := (∪_{m ∈ M_i[k]} m) ∪ PROPOSED.
	a.proposed = values.UnionAll(sets).Union(a.proposed)

	if k%2 == 0 {
		// Line 9: if PROPOSED = WRITTENOLD = {VAL} then decide.
		if a.proposed.IsExactly(a.val) && a.writtenOld.IsExactly(a.val) {
			return nil, giraf.Decision{Decided: true, Value: a.val}
		}
		// Lines 11–13.
		if !a.written.IsEmpty() {
			max, _ := a.written.Max()
			a.val = max
			a.proposed = values.NewSet(a.val)
			if a.literalNesting {
				a.writtenOld = a.written.Clone() // broken literal reading (ablation)
			}
		}
	}
	// Line 14 executes every round: WRITTENOLD^k must equal WRITTEN^(k−1),
	// which is exactly what Lemma 2's proof uses; the even-round-only
	// placement (a flat reading of the preprint's lost indentation) yields
	// WRITTEN^(k−2) and violates Agreement on some MS schedules
	// (DESIGN.md §3 note 3).
	if !a.literalNesting {
		a.writtenOld = a.written.Clone()
	}
	// Line 15: return PROPOSED.
	return SetPayload{Proposed: a.proposed.Clone()}, giraf.Decision{}
}

// Val returns the current estimate (for metrics and tests).
func (a *ES) Val() values.Value { return a.val }

// Proposed returns a copy of the current PROPOSED set (for tests).
func (a *ES) Proposed() values.Set { return a.proposed.Clone() }

// Written returns a copy of the last computed WRITTEN set (for tests).
func (a *ES) Written() values.Set { return a.written.Clone() }
