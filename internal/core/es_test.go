package core

import (
	"testing"

	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

// requireConsensus asserts the three consensus properties on a finished run
// (Termination, Agreement, Validity).
func requireConsensus(t *testing.T, res *sim.Result, proposals []values.Value) {
	t.Helper()
	if !res.AllCorrectDecided() {
		t.Fatalf("termination violated: not all correct processes decided within %d rounds", res.Rounds)
	}
	if err := res.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
	if err := res.CheckValidity(ProposalSet(proposals)); err != nil {
		t.Fatal(err)
	}
}

// requireSafety asserts Agreement and Validity only (for runs that are not
// guaranteed to terminate).
func requireSafety(t *testing.T, res *sim.Result, proposals []values.Value) {
	t.Helper()
	if err := res.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
	if err := res.CheckValidity(ProposalSet(proposals)); err != nil {
		t.Fatal(err)
	}
}

func TestESSynchronousFromStart(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		props := DistinctProposals(n)
		res, err := RunES(props, RunOpts{Policy: sim.Synchronous{}})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, props)
		// Theorem 1's termination argument: round 2 aligns everyone on the
		// same maximum, round 4 writes it as the sole proposal, round 6
		// satisfies PROPOSED = WRITTENOLD = {VAL}.
		if last := res.LastDecisionRound(); last > 6 {
			t.Errorf("n=%d: decision at round %d, want ≤ 6 under full synchrony", n, last)
		}
	}
}

func TestESIdenticalProposals(t *testing.T) {
	props := []values.Value{values.Num(7), values.Num(7), values.Num(7)}
	res, err := RunES(props, RunOpts{Policy: sim.Synchronous{}})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
	if d, _ := res.Decisions().Max(); d != values.Num(7) {
		t.Errorf("decided %v, want 7", d)
	}
}

func TestESLateGST(t *testing.T) {
	for _, gst := range []int{4, 10, 25} {
		props := DistinctProposals(5)
		res, err := RunES(props, RunOpts{
			Policy: &sim.ES{GST: gst, Pre: sim.MS{Seed: int64(gst), MaxDelay: 3}},
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, props)
		if first := res.FirstDecisionRound(); first > gst+6 {
			t.Errorf("gst=%d: first decision at %d, want ≤ gst+6", gst, first)
		}
	}
}

func TestESWithCrashes(t *testing.T) {
	// 3 of 7 processes crash at different times; the rest must decide.
	props := DistinctProposals(7)
	res, err := RunES(props, RunOpts{
		Policy:  &sim.ES{GST: 8, Pre: sim.MS{Seed: 1}},
		Crashes: map[int]int{0: 2, 3: 6, 6: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
}

func TestESAllButOneCrash(t *testing.T) {
	// The paper tolerates any number of crashes: n-1 of n may fail.
	n := 6
	props := DistinctProposals(n)
	crashes := make(map[int]int)
	for i := 0; i < n-1; i++ {
		crashes[i] = i + 1 // staggered crashes from step 1
	}
	res, err := RunES(props, RunOpts{
		Policy:  &sim.ES{GST: 10, Pre: sim.MS{Seed: 3}},
		Crashes: crashes,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
	if !res.Statuses[n-1].Decided {
		t.Error("sole survivor must decide")
	}
}

func TestESSafetyUnderRandomMS(t *testing.T) {
	// Algorithm 2's safety is conditional on the MS property: Lemma 1's
	// proof needs the round's source to relay every written value. Under
	// any MS schedule — however the source moves and however late the other
	// links are — Agreement and Validity must hold even though liveness may
	// fail. 200 random moving-source schedules.
	for seed := int64(0); seed < 200; seed++ {
		props := SplitProposals(5, 3)
		res, err := RunES(props, RunOpts{
			Policy:    &sim.MS{Seed: seed, MaxDelay: 4, Shuffle: seed%2 == 0, ExtraTimelyPct: int(seed % 50)},
			MaxRounds: 80,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSafety(t, res, props)
	}
}

func TestESAgreementNeedsMS(t *testing.T) {
	// Dual of the safety test: drop the source guarantee entirely and
	// Algorithm 2's agreement actually breaks. This pins a deterministic
	// asynchronous schedule (found by seed search) on which two processes
	// decide differently — empirical confirmation that WRITTEN's
	// through-the-source guarantee is what buys safety, and that the MS
	// assumption is not decorative.
	props := SplitProposals(5, 3)
	res, err := RunES(props, RunOpts{
		Policy:    &sim.Async{Seed: 0, MaxDelay: 4},
		MaxRounds: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions().Len() <= 1 {
		t.Skip("schedule no longer violates agreement (engine change?); re-pin a seed")
	}
	if err := res.CheckValidity(ProposalSet(props)); err != nil {
		t.Error(err) // validity still holds: decided values are proposals
	}
}

func TestESSafetyUnderRandomCrashes(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		props := DistinctProposals(6)
		crashes := map[int]int{
			int(seed % 6):       int(seed%7) + 1,
			int((seed + 2) % 6): int(seed%11) + 1,
		}
		res, err := RunES(props, RunOpts{
			Policy:    &sim.ES{GST: int(seed%15) + 1, Pre: sim.MS{Seed: seed}},
			Crashes:   crashes,
			MaxRounds: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSafety(t, res, props)
		// With ES holding among survivors, they must in fact decide.
		if !res.AllCorrectDecided() {
			t.Fatalf("seed %d: correct processes failed to decide", seed)
		}
	}
}

func TestESUndecidedForeverInMS(t *testing.T) {
	// The FLP corollary (§5.3): MS alone does not admit consensus. The
	// alternating-source schedule keeps Algorithm 2 undecided for as long
	// as we care to run it, while the trace provably satisfies MS.
	props := []values.Value{values.Num(1), values.Num(2)}
	res, err := RunES(props, RunOpts{
		Policy:      &sim.AlternatingMS{},
		MaxRounds:   500,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckMS(); err != nil {
		t.Fatalf("schedule must satisfy MS: %v", err)
	}
	if d := res.Decisions(); d.Len() != 0 {
		t.Fatalf("adversarial MS schedule let someone decide: %v", d)
	}
}

func TestESUndecidedForeverInMSLargerN(t *testing.T) {
	props := SplitProposals(6, 2) // two camps of identical values
	res, err := RunES(props, RunOpts{
		Policy:      &sim.AlternatingMS{A: 0, B: 5},
		MaxRounds:   300,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckMS(); err != nil {
		t.Fatalf("schedule must satisfy MS: %v", err)
	}
	if d := res.Decisions(); d.Len() != 0 {
		t.Fatalf("adversarial MS schedule let someone decide: %v", d)
	}
}

func TestESDecisionValueIsMaxUnderSynchrony(t *testing.T) {
	// Under synchrony from round 1, everybody sees all values and adopts
	// the maximum.
	props := []values.Value{values.Num(3), values.Num(9), values.Num(5)}
	res, err := RunES(props, RunOpts{Policy: sim.Synchronous{}})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
	if d, _ := res.Decisions().Max(); d != values.Num(9) {
		t.Errorf("decided %v, want the maximum 9", d)
	}
}

func TestNewESRejectsInvalidValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewES(Bot) must panic")
		}
	}()
	NewES(values.Bot)
}

func TestESPayloadKeyDistinguishesSets(t *testing.T) {
	a := SetPayload{values.NewSet(values.Num(1))}
	b := SetPayload{values.NewSet(values.Num(2))}
	if a.PayloadKey() == b.PayloadKey() {
		t.Error("different proposals must have different payload keys")
	}
	c := SetPayload{values.NewSet(values.Num(1))}
	if a.PayloadKey() != c.PayloadKey() {
		t.Error("equal payloads must collapse (anonymity)")
	}
}
