package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// ESSPayload is the wire payload of Algorithm 3: ⟨PROPOSED, HISTORY, C⟩.
//
// Build instances with MakeESSPayload where possible: it attaches a cache
// cell so the canonical key and fingerprint are computed once per payload
// instead of once per identity check. A zero/literal ESSPayload still
// works — it just recomputes on every call.
type ESSPayload struct {
	Proposed values.Set
	History  values.History
	Counters values.Counters

	canon *essCanon
}

// essCanon caches the canonical form of one (immutable) payload. The
// atomic pointer makes concurrent lazy fills race-free; all fills compute
// the same value.
type essCanon struct {
	form atomic.Pointer[essForm]
}

type essForm struct {
	key string
	fp  values.Fingerprint
}

var (
	_ giraf.Payload       = ESSPayload{}
	_ giraf.Fingerprinted = ESSPayload{}
	_ giraf.PayloadSizer  = ESSPayload{}
)

// MakeESSPayload builds a payload with a canonical-form cache attached.
func MakeESSPayload(proposed values.Set, history values.History, counters values.Counters) ESSPayload {
	return ESSPayload{Proposed: proposed, History: history, Counters: counters, canon: &essCanon{}}
}

// form returns the cached canonical form, computing it on a miss.
func (p ESSPayload) form() *essForm {
	if p.canon != nil {
		if f := p.canon.form.Load(); f != nil {
			return f
		}
	}
	var b strings.Builder
	b.WriteString(p.Proposed.Key())
	b.WriteByte('|')
	b.WriteString(p.History.Key())
	b.WriteByte('|')
	b.WriteString(p.Counters.Key())
	f := &essForm{key: b.String()}
	f.fp = values.FingerprintString(f.key)
	if p.canon != nil {
		p.canon.form.Store(f)
	}
	return f
}

// PayloadKey implements giraf.Payload: the canonical encoding of all three
// components. Two anonymous processes in identical states broadcast
// identical payloads and collapse to one inbox element.
func (p ESSPayload) PayloadKey() string { return p.form().key }

// PayloadFingerprint implements giraf.Fingerprinted.
func (p ESSPayload) PayloadFingerprint() values.Fingerprint { return p.form().fp }

// PayloadEncodedSize implements giraf.PayloadSizer: the cached canonical
// key's length (the form is computed at most once per payload).
func (p ESSPayload) PayloadEncodedSize() int { return len(p.form().key) }

// String implements fmt.Stringer.
func (p ESSPayload) String() string {
	return fmt.Sprintf("⟨%s, %s, %s⟩", p.Proposed, p.History, p.Counters)
}

// ESS is Algorithm 3: consensus in the eventually-stable-source
// environment, built on the pseudo leader election over proposal histories.
// One instance per process; not safe for concurrent use.
type ESS struct {
	val        values.Value
	counters   values.Counters
	history    values.History
	written    values.Set
	writtenOld values.Set
	proposed   values.Set

	// wasLeader records the outcome of the last leader check (line 15),
	// for the convergence experiments (T4, F2).
	wasLeader bool

	// literalNesting reproduces the broken literal reading of the HAL
	// preprint's flat indentation (lines 15–20 nested inside the even-round
	// else-if). See NewESSLiteral.
	literalNesting bool
}

var _ giraf.Automaton = (*ESS)(nil)

// NewESS returns a process automaton proposing v. It panics if v is not a
// valid proposal.
func NewESS(v values.Value) *ESS {
	if !v.Valid() {
		panic(fmt.Sprintf("core.NewESS: invalid initial value %q", string(v)))
	}
	return &ESS{
		val:        v,
		counters:   values.NewCounters(),
		history:    values.NewHistory(v),
		written:    values.NewSet(),
		writtenOld: values.NewSet(),
		proposed:   values.NewSet(),
		wasLeader:  true, // everybody starts considering itself a leader
	}
}

// NewESSLiteral builds the *broken* variant in which lines 15–20 are all
// nested inside the even-round else-if, as a flat reading of the preprint's
// pseudo-code indentation suggests. That reading makes WRITTENOLD^k =
// WRITTEN^(k−2) (Lemma 2's proof requires WRITTEN^(k−1)), and stops leaders
// from proposing when nothing non-⊥ was written (Lemma 7's proof requires
// "leaders propose their values always"). It violates Agreement on some MS
// schedules and deadlocks in an all-⊥ state on some ESS schedules. It
// exists only as an ablation documenting that the proof-derived nesting is
// load-bearing (DESIGN.md §3 note 3).
func NewESSLiteral(v values.Value) *ESS {
	a := NewESS(v)
	a.literalNesting = true
	return a
}

// stepLeaderProposal runs lines 15–18: leaders (or processes whose PROPOSED
// already collapsed to {VAL, ⊥}) propose their value; everybody else
// proposes ⊥ so the current source's value still reaches everyone.
func (a *ESS) stepLeaderProposal() {
	a.wasLeader = a.counters.IsMaximal(a.history)
	if a.wasLeader || a.proposed.SubsetOf(values.NewSet(a.val, values.Bot)) {
		a.proposed = values.NewSet(a.val) // line 16
	} else {
		a.proposed = values.NewSet(values.Bot) // line 18
	}
}

// Initialize implements giraf.Automaton (Algorithm 3 lines 1–4). As in
// Algorithm 2 the initial payload carries {VAL} (DESIGN.md §3 note 1).
func (a *ESS) Initialize() giraf.Payload {
	return MakeESSPayload(values.NewSet(a.val), a.history, a.counters.Clone())
}

// Compute implements giraf.Automaton (Algorithm 3 lines 5–22).
func (a *ESS) Compute(k int, inbox giraf.Inbox) (giraf.Payload, giraf.Decision) {
	msgs := inbox.Round(k)
	pays := make([]ESSPayload, 0, len(msgs))
	sets := make([]values.Set, 0, len(msgs))
	ctrs := make([]values.Counters, 0, len(msgs))
	for _, m := range msgs {
		// Foreign-family payloads (a shared hub replaying another run) are
		// ignored, not fatal: crash-fault model.
		if p, ok := m.(ESSPayload); ok {
			pays = append(pays, p)
			sets = append(sets, p.Proposed)
			ctrs = append(ctrs, p.Counters)
		}
	}
	// Line 6: WRITTEN := ∩ m.PROPOSED.
	a.written = values.IntersectAll(sets)
	// Line 7: PROPOSED := (∪ m.PROPOSED) ∪ PROPOSED.
	a.proposed = values.UnionAll(sets).Union(a.proposed)
	// Line 8: ∀H, C[H] := min_m m.C[H].
	a.counters = values.MinMerge(ctrs)
	// Line 9: ∀m, C[m.HISTORY] := 1 + max{C[H] | H prefix of m.HISTORY}.
	// Inbox order is canonical, so this is deterministic.
	for _, p := range pays {
		a.counters.Bump(p.History)
	}

	if k%2 == 0 {
		// Line 11: if WRITTENOLD = {VAL} ∧ PROPOSED ⊆ {VAL, ⊥} then decide.
		if a.writtenOld.IsExactly(a.val) && a.proposed.SubsetOf(values.NewSet(a.val, values.Bot)) {
			return nil, giraf.Decision{Decided: true, Value: a.val}
		}
		// Lines 13–14: adopt the maximum written value, if any.
		if nonBot := a.written.Without(values.Bot); !nonBot.IsEmpty() {
			max, _ := nonBot.Max()
			a.val = max
			if a.literalNesting {
				// Broken flat reading: lines 15–19 nested under the else-if.
				a.stepLeaderProposal()
				a.writtenOld = a.written.Clone()
			}
		}
		if !a.literalNesting {
			// Lines 15–18 execute every even round, NOT only when something
			// non-⊥ was written: Lemma 7's proof needs "leaders propose
			// their values always". Gating them under line 13 deadlocks the
			// system in an all-⊥ state once every process proposed ⊥ in the
			// same even round (DESIGN.md §3 note 3).
			a.stepLeaderProposal()
		}
	}
	// Lines 19–20 execute every round: WRITTENOLD must always hold the
	// previous round's WRITTEN — Lemma 2's proof ("it has had v in WRITTEN
	// in the same odd round k−1") depends on it, and the even-round-only
	// placement demonstrably violates Agreement (DESIGN.md §3 note 3).
	if !a.literalNesting {
		a.writtenOld = a.written.Clone() // line 19
		a.written = a.proposed.Clone()   // line 20 (no observable effect; kept faithful)
	}
	// Line 21: append VAL to HISTORY (every round).
	a.history = a.history.Append(a.val)
	// Line 22.
	return MakeESSPayload(a.proposed.Clone(), a.history, a.counters.Clone()), giraf.Decision{}
}

// Val returns the current estimate.
func (a *ESS) Val() values.Value { return a.val }

// History returns the process's proposal history (shared slice; treat as
// read-only).
//
//detlint:aliased History is append-only and read-only by contract; sharing keeps the per-round leader check alloc-free
func (a *ESS) History() values.History { return a.history }

// IsLeader reports whether the process considered itself a leader at its
// last even-round check (line 15); true initially.
func (a *ESS) IsLeader() bool { return a.wasLeader }

// LeaderNow evaluates the leader predicate of Definition leader(k) against
// the current counter table: C[HISTORY] ≥ C[H] for all H. Experiments use
// it to sample the leader set per round (T4, F2).
func (a *ESS) LeaderNow() bool { return a.counters.IsMaximal(a.history) }

// Counters returns a copy of the counter table (for tests and metrics).
func (a *ESS) Counters() values.Counters { return a.counters.Clone() }

// Proposed returns a copy of the current PROPOSED set (for tests).
func (a *ESS) Proposed() values.Set { return a.proposed.Clone() }

// Written returns a copy of the last line-6 WRITTEN set (for tests).
func (a *ESS) Written() values.Set { return a.written.Clone() }

// WrittenOld returns a copy of WRITTENOLD (for tests).
func (a *ESS) WrittenOld() values.Set { return a.writtenOld.Clone() }
