package core

import (
	"testing"

	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

func TestESSSynchronousFromStart(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		props := DistinctProposals(n)
		res, err := RunESS(props, RunOpts{Policy: sim.Synchronous{}})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, props)
		if last := res.LastDecisionRound(); last > 6 {
			t.Errorf("n=%d: decision at round %d, want ≤ 6 under full synchrony", n, last)
		}
	}
}

func TestESSIdenticalProposals(t *testing.T) {
	props := []values.Value{values.Num(4), values.Num(4), values.Num(4), values.Num(4)}
	res, err := RunESS(props, RunOpts{Policy: sim.Synchronous{}})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
	if d, _ := res.Decisions().Max(); d != values.Num(4) {
		t.Errorf("decided %v, want 4", d)
	}
}

func TestESSStableSourceOnly(t *testing.T) {
	// The headline ESS scenario: after GST exactly one process is timely;
	// every other link stays slow forever. Consensus must still terminate.
	for _, tc := range []struct {
		n, gst, src int
		seed        int64
	}{
		{3, 6, 0, 1},
		{5, 10, 2, 2},
		{8, 12, 7, 3},
		{5, 1, 4, 4}, // stable source from the start
	} {
		props := DistinctProposals(tc.n)
		res, err := RunESS(props, RunOpts{
			Policy:    &sim.ESS{GST: tc.gst, StableSource: tc.src, Pre: sim.MS{Seed: tc.seed}},
			MaxRounds: 400,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, props)
	}
}

func TestESSWithPartialPostTimeliness(t *testing.T) {
	// Some non-source links are timely after GST; still ESS, still decides.
	props := DistinctProposals(6)
	res, err := RunESS(props, RunOpts{
		Policy: &sim.ESS{
			GST: 8, StableSource: 3,
			Pre:           sim.MS{Seed: 9},
			PostTimelyPct: 40,
		},
		MaxRounds: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
}

func TestESSWithCrashes(t *testing.T) {
	// Crashing processes (not the stable source) must not block decisions.
	props := DistinctProposals(6)
	res, err := RunESS(props, RunOpts{
		Policy:    &sim.ESS{GST: 10, StableSource: 4, Pre: sim.MS{Seed: 11}},
		Crashes:   map[int]int{0: 3, 1: 7, 2: 14},
		MaxRounds: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
}

func TestESSSourceCrashPreGST(t *testing.T) {
	// A process that was the source before GST crashes; the eventual stable
	// source takes over at GST.
	props := DistinctProposals(5)
	res, err := RunESS(props, RunOpts{
		Policy:    &sim.ESS{GST: 12, StableSource: 4, Pre: sim.MS{Seed: 13}},
		Crashes:   map[int]int{0: 6, 1: 9},
		MaxRounds: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
}

func TestESSSafetyUnderRandomMS(t *testing.T) {
	// Agreement/Validity on arbitrary moving-source schedules (no stable
	// source, so termination is not guaranteed — safety must hold anyway).
	for seed := int64(0); seed < 150; seed++ {
		props := SplitProposals(5, 2)
		res, err := RunESS(props, RunOpts{
			Policy:    &sim.MS{Seed: seed, MaxDelay: 3, Shuffle: seed%3 == 0, ExtraTimelyPct: int(seed % 40)},
			MaxRounds: 80,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSafety(t, res, props)
	}
}

func TestESSSafetyUnderRandomESSSchedules(t *testing.T) {
	// Random GST/source/crash combinations: full consensus must hold.
	for seed := int64(0); seed < 60; seed++ {
		n := 4 + int(seed%4)
		src := int(seed) % n
		props := SplitProposals(n, 3)
		crashes := map[int]int{}
		if victim := int(seed+1) % n; victim != src {
			crashes[victim] = int(seed%9) + 1
		}
		res, err := RunESS(props, RunOpts{
			Policy:    &sim.ESS{GST: int(seed%16) + 1, StableSource: src, Pre: sim.MS{Seed: seed}},
			Crashes:   crashes,
			MaxRounds: 500,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, props)
	}
}

func TestESSLeaderSetConverges(t *testing.T) {
	// Lemma 6: eventually there is a leader and every leader is a
	// ⋄-proposer. In the single-stable-source schedule the only
	// ⋄-proposer is the source, so eventually the self-considered leader
	// set among running processes must contain the source and stay stable.
	n, gst, src := 5, 8, 2
	props := DistinctProposals(n)
	leadersPerRound := make(map[int][]int)
	res, err := RunESS(props, RunOpts{
		Policy:    &sim.ESS{GST: gst, StableSource: src, Pre: sim.MS{Seed: 21}},
		MaxRounds: 400,
		OnRound: func(r int, e *sim.Engine) {
			var leaders []int
			for i := 0; i < e.N(); i++ {
				p := e.Proc(i)
				if p.Halted() {
					continue
				}
				if a, ok := e.Automaton(i).(*ESS); ok && a.LeaderNow() {
					leaders = append(leaders, i)
				}
			}
			leadersPerRound[r] = leaders
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
	// In the last pre-decision rounds, the source must consider itself a
	// leader (it is the only ⋄-proposer).
	first := res.FirstDecisionRound()
	sawSourceLeading := false
	for r := gst; r < first; r++ {
		for _, pid := range leadersPerRound[r] {
			if pid == src {
				sawSourceLeading = true
			}
		}
	}
	if first > gst+2 && !sawSourceLeading {
		t.Error("stable source never considered itself a leader after GST")
	}
}

func TestESSUndecidedOnAlternatingMS(t *testing.T) {
	if testing.Short() {
		t.Skip("slow suite in -short mode")
	}
	// ESS liveness genuinely needs the stable source: the alternating
	// schedule (which satisfies MS but not ESS) can keep Algorithm 3
	// undecided, while safety holds throughout.
	props := []values.Value{values.Num(1), values.Num(2)}
	res, err := RunESS(props, RunOpts{
		Policy:      &sim.AlternatingMS{},
		MaxRounds:   300,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckMS(); err != nil {
		t.Fatalf("schedule must satisfy MS: %v", err)
	}
	requireSafety(t, res, props)
}

func TestESSHistoryGrowsOnePerRound(t *testing.T) {
	props := DistinctProposals(3)
	var h values.History
	_, err := RunESS(props, RunOpts{
		Policy:    sim.Synchronous{},
		MaxRounds: 10,
		OnRound: func(r int, e *sim.Engine) {
			if a, ok := e.Automaton(0).(*ESS); ok && !e.Proc(0).Halted() {
				h = a.History()
				// After computing round r the history has 1 (initial) + r
				// appended values.
				if h.Len() != r+1 {
					panic("history length mismatch")
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewESSRejectsInvalidValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewESS(Bot) must panic")
		}
	}()
	NewESS(values.Bot)
}

func TestESSPayloadKeyComponents(t *testing.T) {
	h := values.NewHistory(values.Num(1))
	base := ESSPayload{Proposed: values.NewSet(values.Num(1)), History: h, Counters: values.NewCounters()}
	// Differ in history only.
	other := base
	other.History = values.NewHistory(values.Num(2))
	if base.PayloadKey() == other.PayloadKey() {
		t.Error("payload key must cover the history")
	}
	// Differ in counters only.
	c := values.NewCounters()
	c.Bump(h)
	withC := base
	withC.Counters = c
	if base.PayloadKey() == withC.PayloadKey() {
		t.Error("payload key must cover the counters")
	}
	// Identical content → identical key.
	same := ESSPayload{Proposed: values.NewSet(values.Num(1)), History: values.NewHistory(values.Num(1)), Counters: values.NewCounters()}
	if base.PayloadKey() != same.PayloadKey() {
		t.Error("structurally equal payloads must collapse")
	}
}
