package core

import (
	"fmt"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// LeaderOracle is an Ω failure-detector query: it reports whether this
// process currently considers itself the leader. An eventually-accurate
// oracle converges to exactly one correct leader forever (refs [3], [4]).
// The oracle may be queried once per round and must be non-blocking.
type LeaderOracle func(round int) bool

// OmegaConsensus is the classical leader-based baseline: Algorithm 3 with
// the pseudo leader election (HISTORY + C) replaced by an Ω oracle. Its
// payloads carry only the PROPOSED set, so comparing its message sizes with
// ESS isolates the cost of anonymity (experiment T6). Its liveness needs
// the oracle's leader to be an eventual source (run it under an ESS policy
// whose stable source is the oracle's leader).
type OmegaConsensus struct {
	oracle     LeaderOracle
	val        values.Value
	written    values.Set
	writtenOld values.Set
	proposed   values.Set
}

var _ giraf.Automaton = (*OmegaConsensus)(nil)

// NewOmegaConsensus returns a process automaton proposing v with the given
// Ω oracle. It panics on an invalid initial value or nil oracle.
func NewOmegaConsensus(v values.Value, oracle LeaderOracle) *OmegaConsensus {
	if !v.Valid() {
		panic(fmt.Sprintf("core.NewOmegaConsensus: invalid initial value %q", string(v)))
	}
	if oracle == nil {
		panic("core.NewOmegaConsensus: nil oracle")
	}
	return &OmegaConsensus{
		oracle:     oracle,
		val:        v,
		written:    values.NewSet(),
		writtenOld: values.NewSet(),
		proposed:   values.NewSet(),
	}
}

// Initialize implements giraf.Automaton.
func (a *OmegaConsensus) Initialize() giraf.Payload {
	return SetPayload{Proposed: values.NewSet(a.val)}
}

// Compute implements giraf.Automaton: Algorithm 3's control flow with the
// line-15 leader check answered by the oracle.
func (a *OmegaConsensus) Compute(k int, inbox giraf.Inbox) (giraf.Payload, giraf.Decision) {
	msgs := inbox.Round(k)
	sets := make([]values.Set, 0, len(msgs))
	for _, m := range msgs {
		if p, ok := m.(SetPayload); ok { // foreign payloads ignored, as in ES
			sets = append(sets, p.Proposed)
		}
	}
	a.written = values.IntersectAll(sets)
	a.proposed = values.UnionAll(sets).Union(a.proposed)

	if k%2 == 0 {
		if a.writtenOld.IsExactly(a.val) && a.proposed.SubsetOf(values.NewSet(a.val, values.Bot)) {
			return nil, giraf.Decision{Decided: true, Value: a.val}
		}
		if nonBot := a.written.Without(values.Bot); !nonBot.IsEmpty() {
			max, _ := nonBot.Max()
			a.val = max
		}
		// As in ESS, the leader proposes in every even round — an Ω leader
		// that only spoke when something non-⊥ was written would deadlock
		// the all-⊥ state exactly like the ESS literal variant.
		if a.oracle(k) || a.proposed.SubsetOf(values.NewSet(a.val, values.Bot)) {
			a.proposed = values.NewSet(a.val)
		} else {
			a.proposed = values.NewSet(values.Bot)
		}
	}
	// Every round, as in ES/ESS: WRITTENOLD^k = WRITTEN^(k−1).
	a.writtenOld = a.written.Clone()
	return SetPayload{Proposed: a.proposed.Clone()}, giraf.Decision{}
}

// Val returns the current estimate.
func (a *OmegaConsensus) Val() values.Value { return a.val }
