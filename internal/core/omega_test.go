package core

import (
	"testing"

	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

func TestOmegaConsensusWithAccurateOracle(t *testing.T) {
	// Ω stabilized from the start, leader is the stable source.
	for _, n := range []int{2, 4, 7} {
		props := DistinctProposals(n)
		res, err := RunOmega(props, EventualOracle(0, 0), RunOpts{
			Policy:    &sim.ESS{GST: 1, StableSource: 0, Pre: sim.MS{Seed: int64(n)}},
			MaxRounds: 300,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireConsensus(t, res, props)
	}
}

func TestOmegaConsensusLateOracle(t *testing.T) {
	// Everybody thinks it is the leader until round 12; then Ω converges to
	// process 2 which is also the eventual source.
	props := DistinctProposals(5)
	res, err := RunOmega(props, EventualOracle(2, 12), RunOpts{
		Policy:    &sim.ESS{GST: 12, StableSource: 2, Pre: sim.MS{Seed: 5}},
		MaxRounds: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
}

func TestOmegaConsensusSafetyWithWrongOracle(t *testing.T) {
	// A never-converging oracle (everyone always a leader) may cost
	// liveness but must never cost safety.
	always := func(i int) LeaderOracle { return func(int) bool { return true } }
	for seed := int64(0); seed < 60; seed++ {
		props := SplitProposals(4, 2)
		res, err := RunOmega(props, always, RunOpts{
			Policy:    &sim.MS{Seed: seed, MaxDelay: 3},
			MaxRounds: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireSafety(t, res, props)
	}
}

func TestOmegaConsensusSynchronous(t *testing.T) {
	props := DistinctProposals(4)
	res, err := RunOmega(props, EventualOracle(1, 0), RunOpts{Policy: sim.Synchronous{}})
	if err != nil {
		t.Fatal(err)
	}
	requireConsensus(t, res, props)
}

func TestOmegaPayloadsAreLean(t *testing.T) {
	// The whole point of the baseline: its payloads carry no history or
	// counter baggage. Compare max envelope sizes on the same workload.
	props := DistinctProposals(6)
	pol := func() sim.Policy {
		return &sim.ESS{GST: 10, StableSource: 0, Pre: sim.MS{Seed: 77}}
	}
	omega, err := RunOmega(props, EventualOracle(0, 10), RunOpts{Policy: pol(), MaxRounds: 300})
	if err != nil {
		t.Fatal(err)
	}
	ess, err := RunESS(props, RunOpts{Policy: pol(), MaxRounds: 300})
	if err != nil {
		t.Fatal(err)
	}
	if omega.Metrics.MaxEnvelopeBytes >= ess.Metrics.MaxEnvelopeBytes {
		t.Errorf("Ω payloads (%d B max) should be smaller than ESS payloads (%d B max)",
			omega.Metrics.MaxEnvelopeBytes, ess.Metrics.MaxEnvelopeBytes)
	}
}

func TestNewOmegaConsensusValidation(t *testing.T) {
	t.Run("invalid value", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("must panic on Bot")
			}
		}()
		NewOmegaConsensus(values.Bot, func(int) bool { return true })
	})
	t.Run("nil oracle", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("must panic on nil oracle")
			}
		}()
		NewOmegaConsensus(values.Num(1), nil)
	})
}
