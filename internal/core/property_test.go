package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

// Property-based safety tests: Validity and Agreement must hold for *every*
// schedule in the algorithm's environment, so they are checked over
// machine-generated configurations rather than hand-picked ones.

// safetyInput is a randomly generated run configuration.
type safetyInput struct {
	seed     int64
	n        int
	distinct int
	gst      int
	crashPid int
	crashAt  int
}

func newSafetyInput(seed uint32, nRaw, distinctRaw, gstRaw, crashPidRaw, crashAtRaw uint8) safetyInput {
	n := 2 + int(nRaw%6)
	return safetyInput{
		seed:     int64(seed),
		n:        n,
		distinct: 1 + int(distinctRaw)%n,
		gst:      int(gstRaw % 24),
		crashPid: int(crashPidRaw) % n,
		crashAt:  1 + int(crashAtRaw%12),
	}
}

func TestQuickESFullConsensusUnderES(t *testing.T) {
	f := func(seed uint32, nRaw, distinctRaw, gstRaw, crashPidRaw, crashAtRaw uint8) bool {
		in := newSafetyInput(seed, nRaw, distinctRaw, gstRaw, crashPidRaw, crashAtRaw)
		props := SplitProposals(in.n, in.distinct)
		crashes := map[int]int{}
		if in.n > 1 {
			crashes[in.crashPid] = in.crashAt
		}
		res, err := RunES(props, RunOpts{
			Policy:    &sim.ES{GST: in.gst, Pre: sim.MS{Seed: in.seed, Alternate: in.seed%2 == 0}},
			Crashes:   crashes,
			MaxRounds: 400,
		})
		if err != nil {
			return false
		}
		return res.AllCorrectDecided() &&
			res.CheckAgreement() == nil &&
			res.CheckValidity(ProposalSet(props)) == nil
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickESSFullConsensusUnderESS(t *testing.T) {
	f := func(seed uint32, nRaw, distinctRaw, gstRaw, crashPidRaw, crashAtRaw uint8) bool {
		in := newSafetyInput(seed, nRaw, distinctRaw, gstRaw, crashPidRaw, crashAtRaw)
		props := SplitProposals(in.n, in.distinct)
		src := int(seed) % in.n
		crashes := map[int]int{}
		if in.crashPid != src {
			crashes[in.crashPid] = in.crashAt
		}
		res, err := RunESS(props, RunOpts{
			Policy:    &sim.ESS{GST: in.gst, StableSource: src, Pre: sim.MS{Seed: in.seed, Alternate: in.seed%2 == 0}},
			Crashes:   crashes,
			MaxRounds: 700,
		})
		if err != nil {
			return false
		}
		return res.AllCorrectDecided() &&
			res.CheckAgreement() == nil &&
			res.CheckValidity(ProposalSet(props)) == nil
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickESSafetyUnderArbitraryMS(t *testing.T) {
	if testing.Short() {
		t.Skip("slow suite in -short mode")
	}
	// Liveness may fail (plain MS), safety must not.
	f := func(seed uint32, nRaw, distinctRaw, periodRaw, timelyRaw uint8) bool {
		n := 2 + int(nRaw%5)
		props := SplitProposals(n, 1+int(distinctRaw)%n)
		res, err := RunES(props, RunOpts{
			Policy: &sim.MS{
				Seed:           int64(seed),
				MaxDelay:       1 + int(periodRaw%5),
				RotationPeriod: 1 + int(periodRaw%3),
				Shuffle:        seed%3 == 0,
				Alternate:      seed%5 == 0,
				ExtraTimelyPct: int(timelyRaw % 60),
			},
			MaxRounds: 60,
		})
		if err != nil {
			return false
		}
		return res.CheckAgreement() == nil && res.CheckValidity(ProposalSet(props)) == nil
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickESSSafetyUnderArbitraryMS(t *testing.T) {
	if testing.Short() {
		t.Skip("slow suite in -short mode")
	}
	f := func(seed uint32, nRaw, distinctRaw, periodRaw, timelyRaw uint8) bool {
		n := 2 + int(nRaw%5)
		props := SplitProposals(n, 1+int(distinctRaw)%n)
		res, err := RunESS(props, RunOpts{
			Policy: &sim.MS{
				Seed:           int64(seed),
				MaxDelay:       1 + int(periodRaw%5),
				RotationPeriod: 1 + int(periodRaw%3),
				Shuffle:        seed%3 == 0,
				Alternate:      seed%5 == 0,
				ExtraTimelyPct: int(timelyRaw % 60),
			},
			MaxRounds: 60,
		})
		if err != nil {
			return false
		}
		return res.CheckAgreement() == nil && res.CheckValidity(ProposalSet(props)) == nil
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDecisionIsStableMaximum(t *testing.T) {
	// Under synchrony from round 1 the decided value is exactly the
	// maximum proposal, for any proposal multiset.
	f := func(raws []uint8) bool {
		if len(raws) == 0 {
			return true
		}
		if len(raws) > 12 {
			raws = raws[:12]
		}
		props := make([]values.Value, len(raws))
		max := values.Value("")
		for i, r := range raws {
			props[i] = values.Num(int64(r))
			if max == "" || max.Less(props[i]) {
				max = props[i]
			}
		}
		res, err := RunES(props, RunOpts{Policy: sim.Synchronous{}})
		if err != nil || !res.AllCorrectDecided() {
			return false
		}
		d, ok := res.Decisions().Max()
		return ok && d == max && res.Decisions().Len() == 1
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(15))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
