package core

import (
	"context"

	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

// RunOpts configures a convenience simulation run of one of the consensus
// automata.
type RunOpts struct {
	// Policy is the environment; required.
	Policy sim.Policy
	// Ctx, when non-nil, cancels the run between global steps (the public
	// Node API threads its per-instance context through here). Nil means
	// run to completion.
	Ctx context.Context
	// Crashes is the sim crash schedule (may be nil).
	Crashes map[int]int
	// Scenario overlays composable faults (loss, duplication, partitions,
	// extra crashes) on the run; nil means fault-free.
	Scenario *env.Scenario
	// MaxRounds bounds the run; 0 defaults to 10·n + 200.
	MaxRounds int
	// RecordTrace forwards sim.Config.RecordTrace.
	RecordTrace bool
	// OnRound forwards sim.Config.OnRound.
	OnRound func(round int, e *sim.Engine)
	// DeliverWorkers forwards sim.Config.DeliverWorkers: intra-run sharding
	// of each step's delivery fan-out (byte-identical at any setting).
	DeliverWorkers int
}

func (o RunOpts) maxRounds(n int) int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 10*n + 200
}

func (o RunOpts) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// config assembles the sim.Config shared by every consensus runner.
func (o RunOpts) config(n int, aut func(i int) giraf.Automaton) sim.Config {
	return sim.Config{
		N:              n,
		Automaton:      aut,
		Policy:         o.Policy,
		Crashes:        o.Crashes,
		Scenario:       o.Scenario,
		MaxRounds:      o.maxRounds(n),
		RecordTrace:    o.RecordTrace,
		OnRound:        o.OnRound,
		DeliverWorkers: o.DeliverWorkers,
	}
}

// ConfigES returns the sim.Config that RunES would execute, for callers
// that fan grid points over sim.RunBatch instead of running inline. The
// config's Policy (and OnRound closure, if any) belong to this one run.
// RunOpts.Ctx is NOT carried into the config — cancellation of a batched
// run is the batch runner's ctx argument's concern.
func ConfigES(proposals []values.Value, opts RunOpts) sim.Config {
	// One memo per config = per run (configs are single-run, like their
	// Policy): processes with identical round inboxes — every process, in
	// a uniform-delivery round — share one aggregate computation instead
	// of each re-deriving the same intersection and union.
	memo := &esMemo{}
	return opts.config(len(proposals), func(i int) giraf.Automaton {
		a := NewES(proposals[i])
		a.memo = memo
		return a
	})
}

// ConfigESS is ConfigES for Algorithm 3.
func ConfigESS(proposals []values.Value, opts RunOpts) sim.Config {
	return opts.config(len(proposals), func(i int) giraf.Automaton { return NewESS(proposals[i]) })
}

// ConfigOmega is ConfigES for the Ω baseline. The oracle factory receives
// the process index so tests can build eventually-accurate oracles.
func ConfigOmega(proposals []values.Value, oracle func(i int) LeaderOracle, opts RunOpts) sim.Config {
	return opts.config(len(proposals), func(i int) giraf.Automaton {
		return NewOmegaConsensus(proposals[i], oracle(i))
	})
}

// RunES simulates Algorithm 2 with one process per proposal value.
func RunES(proposals []values.Value, opts RunOpts) (*sim.Result, error) {
	return sim.RunContext(opts.ctx(), ConfigES(proposals, opts))
}

// RunESS simulates Algorithm 3 with one process per proposal value.
func RunESS(proposals []values.Value, opts RunOpts) (*sim.Result, error) {
	return sim.RunContext(opts.ctx(), ConfigESS(proposals, opts))
}

// RunOmega simulates the Ω baseline.
func RunOmega(proposals []values.Value, oracle func(i int) LeaderOracle, opts RunOpts) (*sim.Result, error) {
	return sim.RunContext(opts.ctx(), ConfigOmega(proposals, oracle, opts))
}

// EventualOracle builds an Ω oracle family that stabilizes at round gst to
// the single leader `leader`: before gst every process considers itself a
// leader (maximally wrong), afterwards only `leader` does.
func EventualOracle(leader, gst int) func(i int) LeaderOracle {
	return func(i int) LeaderOracle {
		return func(round int) bool {
			if round < gst {
				return true
			}
			return i == leader
		}
	}
}

// ProposalSet collects a proposal slice into a value set (for validity
// checks).
func ProposalSet(proposals []values.Value) values.Set {
	return values.NewSet(proposals...)
}

// DistinctProposals returns n distinct numeric proposals 0..n-1.
func DistinctProposals(n int) []values.Value {
	out := make([]values.Value, n)
	for i := range out {
		out[i] = values.Num(int64(i))
	}
	return out
}

// SplitProposals returns n proposals drawn from k distinct values
// round-robin (value i%k for process i), the workload used by the
// convergence experiments.
func SplitProposals(n, k int) []values.Value {
	out := make([]values.Value, n)
	for i := range out {
		out[i] = values.Num(int64(i % k))
	}
	return out
}
