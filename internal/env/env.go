// Package env is the unified environment/adversary model: one description
// of "what the network does to the algorithm" shared by every backend.
//
// The paper's algorithms are parameterized by an environment — which links
// are timely in which round (MS, ES, ESS of §2.3), when stabilization
// happens, who crashes. Historically the repository encoded that model
// twice: internal/sim carried the round-delay policies for the lockstep
// simulator and internal/anonnet carried wall-clock latency profiles with
// the same MS/ES/ESS logic re-derived. This package owns both realizations:
//
//   - Policy (with DelayFn and SourceReporter) is the round-granularity
//     contract the deterministic simulator schedules deliveries with;
//     Synchronous, MS, ES, ESS, Async, AlternatingMS and Scripted implement
//     the paper's environments plus the adversarial and hand-scripted ones.
//
//   - LatencyModel is the wall-clock contract of the real-time runtimes
//     (anonnet, and by analogy tcpnet); Sync, MSProfile, ESProfile,
//     ESSProfile and AsyncProfile realize the same environments as link
//     latencies relative to a round interval.
//
//   - Scenario composes the fault dimensions the environments alone do not
//     model: a validated crash schedule, per-link message loss and
//     duplication rates, and round-ranged partitions. A Scenario is pure
//     data plus deterministic hash-based predicates, so every backend —
//     lockstep simulator, goroutine runtime, TCP hub — injects identical
//     fault decisions for identical seeds, and batched runs stay
//     byte-identical at any parallelism.
//
// internal/sim and internal/anonnet re-export these types under their
// historical names as thin aliases; new code should construct environments
// and scenarios from this package directly.
package env

import "math/rand"

// rngFor derives a deterministic rand.Rand for a given policy seed and
// stream label, so distinct policies never share streams. The stream labels
// are part of the repository's determinism contract: fixed-seed goldens pin
// the schedules they produce.
func rngFor(seed int64, stream string) *rand.Rand {
	h := int64(1469598103934665603)
	for _, b := range []byte(stream) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h))
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func pickAny(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}
