package env

import (
	"testing"
	"time"
)

// The latency profiles moved here from internal/anonnet (which now aliases
// them) and the policies from internal/sim. These tests pin the moved
// implementations against independent re-implementations of the original
// formulas, so the refactor provably did not change any schedule: for
// identical seeds every link of every round gets the identical delay.

// refHash64 is a byte-for-byte copy of the pre-refactor anonnet hash64.
func refHash64(seed int64, round, from, to int) uint64 {
	h := uint64(1469598103934665603) ^ uint64(seed)
	for _, x := range [3]int{round, from, to} {
		h ^= uint64(uint32(x))
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func refFrac(d time.Duration, num, den int64) time.Duration {
	return time.Duration(int64(d) * num / den)
}

// refMSDelay reproduces the original anonnet MSProfile.Delay.
func refMSDelay(n int, interval time.Duration, seed int64, period, round, from, to int) time.Duration {
	if period <= 0 {
		period = 1
	}
	if from == (round/period)%n {
		return refFrac(interval, 1, 5)
	}
	jitter := refHash64(seed, round, from, to) % 2000
	return refFrac(interval, 3, 2) + refFrac(interval, int64(jitter), 1000)
}

func TestProfileEquivalenceWithPreRefactorFormulas(t *testing.T) {
	const n = 5
	const interval = 10 * time.Millisecond
	for _, seed := range []int64{0, 1, 42, -7} {
		ms := MSProfile{N: n, Interval: interval, Seed: seed}
		es := ESProfile{N: n, Interval: interval, Seed: seed, GST: 6}
		ess := ESSProfile{N: n, Interval: interval, Seed: seed, GST: 6, Source: 2}
		async := AsyncProfile{Interval: interval, Seed: seed}
		sync := Sync{Interval: interval}
		for round := 0; round < 20; round++ {
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					if got, want := ms.Delay(round, from, to), refMSDelay(n, interval, seed, 1, round, from, to); got != want {
						t.Fatalf("MSProfile seed=%d (%d,%d,%d): %v != %v", seed, round, from, to, got, want)
					}
					// ESProfile: MS chaos before GST, interval/5 after.
					want := refMSDelay(n, interval, seed, 1, round, from, to)
					if round >= 6 {
						want = refFrac(interval, 1, 5)
					}
					if got := es.Delay(round, from, to); got != want {
						t.Fatalf("ESProfile seed=%d (%d,%d,%d): %v != %v", seed, round, from, to, got, want)
					}
					// ESSProfile: MS chaos before GST; after, source fast,
					// everyone else slow on the seed+1 jitter stream.
					if round < 6 {
						want = refMSDelay(n, interval, seed, 1, round, from, to)
					} else if from == 2 {
						want = refFrac(interval, 1, 5)
					} else {
						j := refHash64(seed+1, round, from, to) % 2000
						want = refFrac(interval, 3, 2) + refFrac(interval, int64(j), 1000)
					}
					if got := ess.Delay(round, from, to); got != want {
						t.Fatalf("ESSProfile seed=%d (%d,%d,%d)", seed, round, from, to)
					}
					// AsyncProfile: interval + jitter, never fast.
					j := refHash64(seed, round, from, to) % 2000
					if got, want := async.Delay(round, from, to), interval+refFrac(interval, int64(j), 1000); got != want {
						t.Fatalf("AsyncProfile seed=%d (%d,%d,%d)", seed, round, from, to)
					}
					if got := sync.Delay(round, from, to); got != refFrac(interval, 1, 5) {
						t.Fatalf("Sync (%d,%d,%d): %v", round, from, to, got)
					}
				}
			}
		}
	}
}

func TestProfileRotationPeriod(t *testing.T) {
	p := MSProfile{N: 3, Interval: time.Millisecond, Seed: 4, Period: 2}
	for round := 0; round < 12; round++ {
		src := (round / 2) % 3
		if got := p.Delay(round, src, (src+1)%3); got != refFrac(p.Interval, 1, 5) {
			t.Errorf("round %d: source %d not fast (%v)", round, src, got)
		}
	}
}

// TestPolicyScheduleEquivalence pins the moved MS policy against the
// original's documented behavior: the round-robin source is timely to
// everyone, every other delay falls in [1, MaxDelay], and two policies
// with the same seed draw identical delay matrices.
func TestPolicyScheduleEquivalence(t *testing.T) {
	const n = 6
	senders := []int{0, 1, 2, 3, 4, 5}
	a := &MS{Seed: 9, MaxDelay: 4}
	b := &MS{Seed: 9, MaxDelay: 4}
	for round := 1; round <= 40; round++ {
		da := a.Schedule(round, senders, n)
		db := b.Schedule(round, senders, n)
		srcA, ok := a.Source(round)
		if !ok {
			t.Fatalf("round %d: no source noted", round)
		}
		if want := senders[round%len(senders)]; srcA != want {
			t.Fatalf("round %d: source %d, want round-robin %d", round, srcA, want)
		}
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				x, y := da(from, to), db(from, to)
				if x != y {
					t.Fatalf("round %d (%d,%d): same seed diverged (%d vs %d)", round, from, to, x, y)
				}
				if from == srcA && x != 0 {
					t.Fatalf("round %d: source %d delayed %d to %d", round, from, x, to)
				}
				if from != srcA && (x < 1 || x > 4) {
					t.Fatalf("round %d (%d,%d): delay %d outside [1,4]", round, from, to, x)
				}
			}
		}
	}
}
