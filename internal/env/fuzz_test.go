package env

import (
	"reflect"
	"testing"
)

// FuzzScenario fuzzes the scenario text form: any input that parses must
// survive an encode/parse round trip unchanged (canonical form is a fixed
// point), stay structurally valid, and keep its fault predicates callable.
func FuzzScenario(f *testing.F) {
	f.Add("")
	f.Add("seed=42")
	f.Add("loss=10,dup=5")
	f.Add("seed=-3,loss=100,part=1:0:2,crash=0@1")
	f.Add("part=2:9:1,part=3:0:4,crash=7@15,crash=2@3")
	f.Add("loss=0,dup=0")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseScenario(text)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if verr := s.Validate(0); verr != nil {
			t.Fatalf("ParseScenario(%q) returned a structurally invalid scenario: %v", text, verr)
		}
		enc := s.Encode()
		back, err := ParseScenario(enc)
		if err != nil {
			t.Fatalf("re-parse of canonical form %q (from %q): %v", enc, text, err)
		}
		if got := back.Encode(); got != enc {
			t.Fatalf("canonical form is not a fixed point: %q → %q (input %q)", enc, got, text)
		}
		if !reflect.DeepEqual(normalize(s), normalize(back)) {
			t.Fatalf("round trip of %q changed the scenario: %+v vs %+v", text, s, back)
		}
		// Predicates must be total on whatever parsed.
		_ = s.Drops(1, 0, 1)
		_ = s.Duplicates(1, 0, 1)
		_ = s.Partitioned(1, 0, 1)
	})
}
