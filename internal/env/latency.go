package env

import (
	"time"
)

// LatencyModel assigns each (round, sender, receiver) link a wall-clock
// delay: the real-time realization of an environment, used by the runtimes
// whose rounds are driven by local timers (anonnet, tcpnet) instead of a
// lockstep scheduler. Implementations must be safe for concurrent use; the
// provided profiles are stateless hash-based so they need no locks.
type LatencyModel interface {
	Delay(round, from, to int) time.Duration
}

// hash64 is a small deterministic mixer so profiles can draw per-link
// jitter without shared state (FNV-1a over the tuple).
func hash64(seed int64, round, from, to int) uint64 {
	h := uint64(1469598103934665603) ^ uint64(seed)
	for _, x := range [3]int{round, from, to} {
		h ^= uint64(uint32(x))
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// frac scales d by num/den.
func frac(d time.Duration, num, den int64) time.Duration {
	return time.Duration(int64(d) * num / den)
}

// Sync delivers everything in a fifth of the round interval: every link is
// timely, every process a source.
type Sync struct {
	Interval time.Duration
}

var _ LatencyModel = Sync{}

// Delay implements LatencyModel.
func (p Sync) Delay(round, from, to int) time.Duration {
	return frac(p.Interval, 1, 5)
}

// MSProfile realizes the moving-source environment in real time: the
// round-robin source's links run at Interval/5 while every other link
// takes 1.5–3.5 round intervals (reliable but late).
type MSProfile struct {
	N        int
	Interval time.Duration
	Seed     int64
	// Period keeps the source for this many rounds; 0 defaults to 1.
	Period int
}

var _ LatencyModel = MSProfile{}

func (p MSProfile) source(round int) int {
	period := p.Period
	if period <= 0 {
		period = 1
	}
	return (round / period) % p.N
}

// Delay implements LatencyModel.
func (p MSProfile) Delay(round, from, to int) time.Duration {
	if from == p.source(round) {
		return frac(p.Interval, 1, 5)
	}
	jitter := hash64(p.Seed, round, from, to) % 2000
	return frac(p.Interval, 3, 2) + frac(p.Interval, int64(jitter), 1000)
}

// AsyncProfile provides no timeliness at all: every link of every round
// takes 1–3 round intervals. No process is ever a source, so not even MS
// holds — use it for safety-only demonstrations.
type AsyncProfile struct {
	Interval time.Duration
	Seed     int64
}

var _ LatencyModel = AsyncProfile{}

// Delay implements LatencyModel.
func (p AsyncProfile) Delay(round, from, to int) time.Duration {
	jitter := hash64(p.Seed, round, from, to) % 2000
	return p.Interval + frac(p.Interval, int64(jitter), 1000)
}

// ESProfile is eventually synchronous: MS chaos before round GST, all-fast
// afterwards.
type ESProfile struct {
	N        int
	Interval time.Duration
	Seed     int64
	GST      int
}

var _ LatencyModel = ESProfile{}

// Delay implements LatencyModel.
func (p ESProfile) Delay(round, from, to int) time.Duration {
	if round >= p.GST {
		return frac(p.Interval, 1, 5)
	}
	return MSProfile{N: p.N, Interval: p.Interval, Seed: p.Seed}.Delay(round, from, to)
}

// ESSProfile has an eventually stable source: MS chaos before round GST;
// afterwards Source's links are fast and everyone else's stay slow forever.
type ESSProfile struct {
	N        int
	Interval time.Duration
	Seed     int64
	GST      int
	Source   int
}

var _ LatencyModel = ESSProfile{}

// Delay implements LatencyModel.
func (p ESSProfile) Delay(round, from, to int) time.Duration {
	if round < p.GST {
		return MSProfile{N: p.N, Interval: p.Interval, Seed: p.Seed}.Delay(round, from, to)
	}
	if from == p.Source {
		return frac(p.Interval, 1, 5)
	}
	jitter := hash64(p.Seed+1, round, from, to) % 2000
	return frac(p.Interval, 3, 2) + frac(p.Interval, int64(jitter), 1000)
}
