package env

import (
	"fmt"
	"math/rand"
)

// DelayFn maps a (sender, receiver) pair to a delivery delay in rounds for
// one specific round's envelopes. Delay 0 is a timely delivery.
type DelayFn func(sender, receiver int) int

// Policy is an environment: it decides, per round, how late each envelope
// arrives. Schedule is called once per global round with the processes that
// actually broadcast a round-`round` envelope (alive and not halted).
//
// Policies are stateful and single-run; build a fresh policy per run.
type Policy interface {
	Schedule(round int, senders []int, n int) DelayFn
}

// SourceReporter is implemented by policies that designate a per-round
// source; the engine records the claim in the trace so tests can
// cross-check it against the environment checkers.
type SourceReporter interface {
	Source(round int) (pid int, ok bool)
}

// sourceLog is embedded by policies to implement SourceReporter.
type sourceLog struct {
	src map[int]int
}

func (s *sourceLog) note(round, pid int) {
	if s.src == nil {
		s.src = make(map[int]int)
	}
	s.src[round] = pid
}

// Source implements SourceReporter.
func (s *sourceLog) Source(round int) (int, bool) {
	pid, ok := s.src[round]
	return pid, ok
}

// ---------------------------------------------------------------------------
// Synchronous

// Synchronous delivers everything timely: every process is a source in
// every round. It trivially satisfies MS, ES and ESS.
type Synchronous struct{}

// Schedule implements Policy.
func (Synchronous) Schedule(round int, senders []int, n int) DelayFn {
	return func(sender, receiver int) int { return 0 }
}

// ---------------------------------------------------------------------------
// Moving source (MS)

// MS implements the moving-source environment (§2.3): in every round at
// least one broadcaster (the source) has a timely link to everybody; all
// other envelopes are delayed randomly in [1, MaxDelay]. The source moves:
// it is drawn round-robin (or, with Shuffle, pseudo-randomly) over the
// current senders.
type MS struct {
	// Seed drives the pseudo-random delays (and source choice with Shuffle).
	Seed int64
	// MaxDelay bounds non-source delays; 0 defaults to 3.
	MaxDelay int
	// RotationPeriod keeps the same source for this many consecutive rounds
	// before moving on; 0 defaults to 1 (moves every round).
	RotationPeriod int
	// Shuffle draws the source pseudo-randomly instead of round-robin.
	Shuffle bool
	// Alternate flips the source between the first and last current sender
	// each round with all other envelopes exactly one round late — the
	// adversarial pattern that stalls Algorithm 2 indefinitely (the F3
	// construction). It takes precedence over Shuffle and RotationPeriod.
	// Use it as the pre-GST phase when stabilization time should matter.
	Alternate bool
	// ExtraTimely lets each non-source envelope independently be timely with
	// probability ExtraTimelyPct/100, making runs less pathological. Zero
	// means non-source envelopes are always late.
	ExtraTimelyPct int

	sourceLog
	rng *rand.Rand
}

func (m *MS) ensureRNG() {
	if m.rng == nil {
		m.rng = rngFor(m.Seed, "ms-policy")
	}
}

func (m *MS) maxDelay() int {
	if m.MaxDelay <= 0 {
		return 3
	}
	return m.MaxDelay
}

func (m *MS) period() int {
	if m.RotationPeriod <= 0 {
		return 1
	}
	return m.RotationPeriod
}

// Schedule implements Policy.
func (m *MS) Schedule(round int, senders []int, n int) DelayFn {
	m.ensureRNG()
	if len(senders) == 0 {
		return func(int, int) int { return 0 }
	}
	if m.Alternate {
		src := senders[0]
		if round%2 == 0 {
			src = senders[len(senders)-1]
		}
		m.note(round, src)
		return func(sender, receiver int) int {
			if sender == src {
				return 0
			}
			return 1
		}
	}
	var src int
	if m.Shuffle {
		src = senders[m.rng.Intn(len(senders))]
	} else {
		src = senders[(round/m.period())%len(senders)]
	}
	m.note(round, src)
	md := m.maxDelay()
	// Pre-draw a delay matrix so DelayFn is pure.
	delays := make(map[[2]int]int, len(senders)*n)
	for _, s := range senders {
		for r := 0; r < n; r++ {
			if s == src {
				delays[[2]int{s, r}] = 0
				continue
			}
			if m.ExtraTimelyPct > 0 && m.rng.Intn(100) < m.ExtraTimelyPct {
				delays[[2]int{s, r}] = 0
				continue
			}
			delays[[2]int{s, r}] = 1 + m.rng.Intn(md)
		}
	}
	return func(sender, receiver int) int { return delays[[2]int{sender, receiver}] }
}

// ---------------------------------------------------------------------------
// Eventually synchronous (ES)

// ES implements the eventually-synchronous environment (§2.3): it behaves
// like MS before round GST and delivers everything timely from round GST
// on. GST = 0 (or 1) makes the run synchronous from the start.
type ES struct {
	// GST is the stabilization round: all rounds ≥ GST are fully timely.
	GST int
	// Pre configures the pre-GST chaos (uses MS defaults when zero).
	Pre MS
}

// Schedule implements Policy.
func (e *ES) Schedule(round int, senders []int, n int) DelayFn {
	if round >= e.GST {
		e.Pre.note(round, pickAny(senders))
		return func(int, int) int { return 0 }
	}
	return e.Pre.Schedule(round, senders, n)
}

// Source implements SourceReporter.
func (e *ES) Source(round int) (int, bool) { return e.Pre.Source(round) }

// ---------------------------------------------------------------------------
// Eventually stable source (ESS)

// ESS implements the eventual-stable-source environment (§2.3): like MS
// before round GST; from round GST on the designated StableSource is the
// source in every round, while all other links may stay slow forever.
type ESS struct {
	// GST is the round from which the source stops moving.
	GST int
	// StableSource is the process that is the source from GST on. It must
	// stay correct and undecided long enough, or Schedule falls back to
	// another sender (tests detect this through the checker).
	StableSource int
	// Pre configures the pre-GST chaos.
	Pre MS
	// PostTimelyPct is the probability (in percent) that a non-source
	// envelope is timely after GST; 0 keeps all non-source links slow, 100
	// makes the run eventually synchronous.
	PostTimelyPct int

	post *rand.Rand
}

// Schedule implements Policy.
func (e *ESS) Schedule(round int, senders []int, n int) DelayFn {
	if round < e.GST {
		return e.Pre.Schedule(round, senders, n)
	}
	if e.post == nil {
		e.post = rngFor(e.Pre.Seed, "ess-post")
	}
	src := e.StableSource
	if !contains(senders, src) {
		// The designated source stopped broadcasting (crashed or decided);
		// keep the run alive with some source so remaining processes can
		// finish. The checker flags this round if it matters.
		src = pickAny(senders)
	}
	e.Pre.note(round, src)
	md := e.Pre.maxDelay()
	delays := make(map[[2]int]int, len(senders)*n)
	for _, s := range senders {
		for r := 0; r < n; r++ {
			switch {
			case s == src:
				delays[[2]int{s, r}] = 0
			case e.PostTimelyPct > 0 && e.post.Intn(100) < e.PostTimelyPct:
				delays[[2]int{s, r}] = 0
			default:
				delays[[2]int{s, r}] = 1 + e.post.Intn(md)
			}
		}
	}
	return func(sender, receiver int) int { return delays[[2]int{sender, receiver}] }
}

// Source implements SourceReporter.
func (e *ESS) Source(round int) (int, bool) { return e.Pre.Source(round) }

// ---------------------------------------------------------------------------
// Asynchronous

// Async provides no timeliness guarantee at all: every envelope of every
// process is delayed randomly in [MinDelay, MaxDelay]. With MinDelay ≥ 1 no
// round has a source, so even MS does not hold. Deliveries remain reliable.
type Async struct {
	Seed     int64
	MinDelay int // defaults to 0
	MaxDelay int // defaults to 3

	rng *rand.Rand
}

// Schedule implements Policy.
func (a *Async) Schedule(round int, senders []int, n int) DelayFn {
	if a.rng == nil {
		a.rng = rngFor(a.Seed, "async-policy")
	}
	lo := a.MinDelay
	hi := a.MaxDelay
	if hi <= 0 {
		hi = 3
	}
	if lo > hi {
		panic(fmt.Sprintf("env: Async MinDelay %d > MaxDelay %d", lo, hi))
	}
	delays := make(map[[2]int]int, len(senders)*n)
	for _, s := range senders {
		for r := 0; r < n; r++ {
			delays[[2]int{s, r}] = lo + a.rng.Intn(hi-lo+1)
		}
	}
	return func(sender, receiver int) int { return delays[[2]int{sender, receiver}] }
}

// ---------------------------------------------------------------------------
// Adversarial MS (the FLP-style schedule, experiment F3)

// AlternatingMS is the adversarial moving-source schedule used to witness
// that MS alone does not admit consensus (the paper's §5.3 corollary of
// FLP): the source alternates between two fixed processes every round and
// every other envelope is exactly one round late. Against Algorithm 2 with
// two distinct initial values this keeps the system undecided forever while
// the MS property holds in every round.
type AlternatingMS struct {
	// A and B are the two alternating sources (defaults: 0 and n-1).
	A, B int
	sourceLog
	defaulted bool
}

// Schedule implements Policy.
func (p *AlternatingMS) Schedule(round int, senders []int, n int) DelayFn {
	if !p.defaulted {
		if p.A == 0 && p.B == 0 {
			p.B = n - 1
		}
		p.defaulted = true
	}
	src := p.A
	if round%2 == 0 {
		src = p.B
	}
	if !contains(senders, src) {
		src = pickAny(senders)
	}
	p.note(round, src)
	return func(sender, receiver int) int {
		if sender == src {
			return 0
		}
		return 1
	}
}

// ---------------------------------------------------------------------------
// Fixed-matrix policy (for hand-built schedules in tests)

// Scripted replays an explicit delay schedule: Delays[round][sender][receiver].
// Missing entries default to Default (which defaults to 0).
type Scripted struct {
	Delays  map[int]map[int]map[int]int
	Default int
}

// Schedule implements Policy.
func (s *Scripted) Schedule(round int, senders []int, n int) DelayFn {
	perRound := s.Delays[round]
	return func(sender, receiver int) int {
		if row, ok := perRound[sender]; ok {
			if d, ok := row[receiver]; ok {
				return d
			}
		}
		return s.Default
	}
}
