package env

import (
	"errors"
	"fmt"
	"maps"
	"strconv"
	"strings"

	"anonconsensus/internal/ordered"
)

// ErrAllCrashed is returned by Scenario.Validate when the crash schedule
// eventually stops every process: with no correct process, Termination —
// which quantifies over correct processes — promises nothing (a process
// with a late crash round might decide before stopping, but no decision is
// guaranteed), so such a configuration is a caller bug, not a run that
// should be attempted — the real-time backends would otherwise just burn
// their whole timeout. Any schedule that leaves at least one process alive
// is legal: the paper's algorithms tolerate any number of crashes f ≤ n−1.
var ErrAllCrashed = errors.New("env: crash schedule stops every process, decisions are impossible")

// Partition is one round-ranged network partition: for every round r with
// From ≤ r < Until, messages whose round is r do not cross the cut. The
// ring of processes is split into the blocks [0, Cut) and [Cut, n);
// processes inside a block communicate normally (subject to the policy's
// delays), processes in different blocks cannot hear each other until the
// partition heals. Until = 0 means the partition never heals.
//
// Partitioned messages are lost, not queued: a partition is a violation of
// the model's reliable-broadcast assumption, and healing restores
// connectivity, not history. (The algorithms rebroadcast their whole state
// every round, so information flow resumes on its own after a heal.)
type Partition struct {
	// From is the first affected round (≥ 1).
	From int
	// Until is the first round no longer affected; 0 means never heals.
	Until int
	// Cut splits the ring into [0, Cut) and [Cut, n); it must satisfy
	// 1 ≤ Cut ≤ n−1 for the partition to separate anybody.
	Cut int
}

// active reports whether the partition is in force for messages of round r.
func (p Partition) active(round int) bool {
	if round < p.From {
		return false
	}
	return p.Until <= 0 || round < p.Until
}

// separates reports whether from and to lie on opposite sides of the cut.
func (p Partition) separates(from, to int) bool {
	return (from < p.Cut) != (to < p.Cut)
}

// Scenario composes the fault dimensions of one run on top of an
// environment policy: who crashes when, how lossy and duplicative links
// are, and which partitions come and go. A Scenario is pure data; the
// link-fault predicates (Drops, Duplicates) are deterministic hash
// functions of (Seed, round, sender, receiver), so every backend injects
// the same faults for the same seed and batched runs are reproducible at
// any parallelism.
//
// The zero Scenario is the fault-free environment; backends treat a nil
// *Scenario and a zero Scenario identically.
type Scenario struct {
	// Seed drives the loss and duplication draws. Independent from the
	// policy seed so the same chaos schedule can be replayed with different
	// fault patterns (the public API defaults it to the run seed).
	Seed int64
	// Crashes maps process index to the round (≥ 1) at which it stops.
	Crashes map[int]int
	// LossPct is the percentage (0–100) of link deliveries that are lost.
	// A process's own payload is never lost (it is merged locally, never
	// sent). Loss breaks the reliable-broadcast assumption, so algorithm
	// guarantees degrade by design — that is what the knob explores.
	LossPct int
	// DupPct is the percentage (0–100) of link deliveries that are
	// delivered twice (the duplicate arrives one round later in the
	// simulator, half a round interval later on the live runtime, and
	// immediately at the TCP hub), exercising the framework's
	// set-semantics deduplication.
	DupPct int
	// Partitions are the round-ranged cuts; they compose (a message is lost
	// if any active partition separates its endpoints).
	Partitions []Partition
}

// Fault-kind salts keep the loss and duplication hash streams disjoint.
const (
	lossSalt = int64(0x6c6f7373) // "loss"
	dupSalt  = int64(0x64757063) // "dupc"
)

// Empty reports whether the scenario injects no faults at all (the nil and
// zero scenarios). Callers that want the scenario-free fast path — the
// backends key it off a nil *Scenario — can use it to normalize a zero
// scenario to nil before configuring a run.
func (s *Scenario) Empty() bool {
	return s == nil || (len(s.Crashes) == 0 && s.LossPct == 0 && s.DupPct == 0 && len(s.Partitions) == 0)
}

// LinkFaultFree reports whether the scenario never suppresses a delivery:
// no loss rate and no partitions. Crashes and duplication do not remove
// messages between correct processes, so a link-fault-free run keeps the
// model's reliable-broadcast assumption and the algorithms' Termination
// guarantee stays assertable; the exploration plane keys its termination
// check off this predicate.
func (s *Scenario) LinkFaultFree() bool {
	return s == nil || (s.LossPct == 0 && len(s.Partitions) == 0)
}

// CrashRound returns the scheduled crash round for pid, or ok=false.
func (s *Scenario) CrashRound(pid int) (int, bool) {
	if s == nil {
		return 0, false
	}
	r, ok := s.Crashes[pid]
	return r, ok
}

// Partitioned reports whether an active partition separates from and to for
// messages of the given round.
func (s *Scenario) Partitioned(round, from, to int) bool {
	if s == nil {
		return false
	}
	for _, p := range s.Partitions {
		if p.active(round) && p.separates(from, to) {
			return true
		}
	}
	return false
}

// Drops reports whether the from→to delivery of a round-`round` message is
// lost: either an active partition separates the endpoints, or the
// per-link loss draw fires. Deterministic in (Seed, round, from, to).
func (s *Scenario) Drops(round, from, to int) bool {
	if s == nil {
		return false
	}
	if s.Partitioned(round, from, to) {
		return true
	}
	return s.LossPct > 0 && int(hash64(s.Seed^lossSalt, round, from, to)%100) < s.LossPct
}

// Duplicates reports whether the from→to delivery of a round-`round`
// message is delivered twice. Deterministic in (Seed, round, from, to).
// A duplicate that would also be dropped stays dropped (Drops wins).
func (s *Scenario) Duplicates(round, from, to int) bool {
	if s == nil {
		return false
	}
	return s.DupPct > 0 && int(hash64(s.Seed^dupSalt, round, from, to)%100) < s.DupPct
}

// Validate checks the scenario against an ensemble of n processes. Pass
// n ≤ 0 to check only the n-independent structure (percentages, round
// ranges) — the form parsers and option constructors use before the
// ensemble size is known.
func (s *Scenario) Validate(n int) error {
	if s == nil {
		return nil
	}
	if s.LossPct < 0 || s.LossPct > 100 {
		return fmt.Errorf("env: loss percentage %d outside [0,100]", s.LossPct)
	}
	if s.DupPct < 0 || s.DupPct > 100 {
		return fmt.Errorf("env: duplication percentage %d outside [0,100]", s.DupPct)
	}
	for i, p := range s.Partitions {
		if p.From < 1 {
			return fmt.Errorf("env: partition %d starts at round %d (must be ≥ 1)", i, p.From)
		}
		if p.Until != 0 && p.Until <= p.From {
			return fmt.Errorf("env: partition %d heals at round %d, before it starts (round %d)", i, p.Until, p.From)
		}
		if p.Cut < 1 {
			return fmt.Errorf("env: partition %d cut %d separates nobody (must be ≥ 1)", i, p.Cut)
		}
		if n > 0 && p.Cut >= n {
			return fmt.Errorf("env: partition %d cut %d outside [1,%d)", i, p.Cut, n)
		}
	}
	// Sorted view so the reported entry is deterministic when several are
	// invalid.
	for _, pid := range ordered.Keys(s.Crashes) {
		if pid < 0 {
			return fmt.Errorf("env: crash schedule names negative process %d", pid)
		}
		if n > 0 && pid >= n {
			return fmt.Errorf("env: crash schedule names process %d outside [0,%d)", pid, n)
		}
		if round := s.Crashes[pid]; round < 1 {
			return fmt.Errorf("env: crash round %d for process %d (must be ≥ 1)", round, pid)
		}
	}
	if n > 0 && len(s.Crashes) >= n {
		// Crashes are keyed by pid and every pid was range-checked above, so
		// len ≥ n means every process is scheduled to stop.
		all := true
		for pid := 0; pid < n; pid++ {
			if _, ok := s.Crashes[pid]; !ok {
				all = false
				break
			}
		}
		if all {
			return ErrAllCrashed
		}
	}
	return nil
}

// Clone deep-copies the scenario (nil stays nil).
func (s *Scenario) Clone() *Scenario {
	if s == nil {
		return nil
	}
	out := &Scenario{Seed: s.Seed, LossPct: s.LossPct, DupPct: s.DupPct}
	if s.Crashes != nil {
		out.Crashes = maps.Clone(s.Crashes)
	}
	if s.Partitions != nil {
		out.Partitions = append([]Partition(nil), s.Partitions...)
	}
	return out
}

// Encode renders the scenario in its canonical textual form, the inverse of
// ParseScenario: `seed=S,loss=L,dup=D,part=FROM:UNTIL:CUT,crash=PID@ROUND`
// with zero-valued fields omitted, partitions in declaration order and
// crashes sorted by pid. The empty scenario encodes as "".
func (s *Scenario) Encode() string {
	if s == nil {
		return ""
	}
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	if s.LossPct != 0 {
		parts = append(parts, "loss="+strconv.Itoa(s.LossPct))
	}
	if s.DupPct != 0 {
		parts = append(parts, "dup="+strconv.Itoa(s.DupPct))
	}
	for _, p := range s.Partitions {
		parts = append(parts, fmt.Sprintf("part=%d:%d:%d", p.From, p.Until, p.Cut))
	}
	for _, pid := range ordered.Keys(s.Crashes) {
		parts = append(parts, fmt.Sprintf("crash=%d@%d", pid, s.Crashes[pid]))
	}
	return strings.Join(parts, ",")
}

// ParseScenario parses the textual scenario form produced by Encode (field
// order is free on input; see Encode for the grammar). The result is
// structurally validated (Validate with n ≤ 0); ensemble-dependent checks
// still require Validate(n) once the process count is known.
func ParseScenario(text string) (*Scenario, error) {
	s := &Scenario{}
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, field := range strings.Split(text, ",") {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("env: scenario field %q is not key=value", field)
		}
		switch key {
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("env: scenario seed %q: %w", val, err)
			}
			s.Seed = v
		case "loss", "dup":
			v, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("env: scenario %s %q: %w", key, val, err)
			}
			if key == "loss" {
				s.LossPct = v
			} else {
				s.DupPct = v
			}
		case "part":
			nums, err := splitInts(val, ":", 3)
			if err != nil {
				return nil, fmt.Errorf("env: scenario partition %q (want FROM:UNTIL:CUT): %w", val, err)
			}
			s.Partitions = append(s.Partitions, Partition{From: nums[0], Until: nums[1], Cut: nums[2]})
		case "crash":
			nums, err := splitInts(val, "@", 2)
			if err != nil {
				return nil, fmt.Errorf("env: scenario crash %q (want PID@ROUND): %w", val, err)
			}
			if s.Crashes == nil {
				s.Crashes = make(map[int]int)
			}
			if _, dup := s.Crashes[nums[0]]; dup {
				return nil, fmt.Errorf("env: scenario crashes process %d twice", nums[0])
			}
			s.Crashes[nums[0]] = nums[1]
		default:
			return nil, fmt.Errorf("env: unknown scenario field %q", key)
		}
	}
	if err := s.Validate(0); err != nil {
		return nil, err
	}
	return s, nil
}

// splitInts parses exactly want integers separated by sep.
func splitInts(val, sep string, want int) ([]int, error) {
	fields := strings.Split(val, sep)
	if len(fields) != want {
		return nil, fmt.Errorf("want %d fields, got %d", want, len(fields))
	}
	out := make([]int, want)
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// RandomAdversary derives a reproducible worst-case-ish scenario for an
// ensemble of n processes: moderate loss and duplication, one mid-run
// partition, and a staggered crash schedule that spares process 0 (so an
// ESS run can keep its designated stable source) and always leaves a
// correct majority-of-one. Identical (seed, n) yield identical scenarios.
func RandomAdversary(seed int64, n int) *Scenario {
	rng := rngFor(seed, "random-adversary")
	s := &Scenario{
		Seed:    seed,
		LossPct: rng.Intn(21), // 0–20%: lossy but usually survivable
		DupPct:  rng.Intn(31), // 0–30%: dedup pressure
	}
	if n >= 2 {
		from := 1 + rng.Intn(6)
		s.Partitions = []Partition{{
			From:  from,
			Until: from + 2 + rng.Intn(9), // heals after 2–10 rounds
			Cut:   1 + rng.Intn(n-1),
		}}
	}
	if maxCrash := n / 3; maxCrash > 0 {
		s.Crashes = make(map[int]int)
		for i := 0; i < maxCrash; i++ {
			pid := 1 + rng.Intn(n-1) // never crash process 0
			if _, dup := s.Crashes[pid]; dup {
				continue
			}
			s.Crashes[pid] = 1 + rng.Intn(15)
		}
	}
	return s
}
