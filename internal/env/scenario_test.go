package env

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		s    *Scenario
		n    int
		want string // substring of the error, "" = valid
	}{
		{"nil", nil, 4, ""},
		{"zero", &Scenario{}, 4, ""},
		{"loss+dup ok", &Scenario{LossPct: 100, DupPct: 1}, 4, ""},
		{"loss negative", &Scenario{LossPct: -1}, 4, "loss percentage"},
		{"loss over 100", &Scenario{LossPct: 101}, 4, "loss percentage"},
		{"dup over 100", &Scenario{DupPct: 200}, 4, "duplication percentage"},
		{"partition ok", &Scenario{Partitions: []Partition{{From: 1, Until: 0, Cut: 2}}}, 4, ""},
		{"partition from 0", &Scenario{Partitions: []Partition{{From: 0, Until: 5, Cut: 1}}}, 4, "starts at round 0"},
		{"partition heals before start", &Scenario{Partitions: []Partition{{From: 5, Until: 5, Cut: 1}}}, 4, "heals at round 5"},
		{"partition cut 0", &Scenario{Partitions: []Partition{{From: 1, Until: 0, Cut: 0}}}, 4, "separates nobody"},
		{"partition cut = n", &Scenario{Partitions: []Partition{{From: 1, Until: 0, Cut: 4}}}, 4, "outside [1,4)"},
		{"partition cut unchecked without n", &Scenario{Partitions: []Partition{{From: 1, Until: 0, Cut: 4}}}, 0, ""},
		{"crash pid negative", &Scenario{Crashes: map[int]int{-1: 3}}, 4, "negative process"},
		{"crash pid out of range", &Scenario{Crashes: map[int]int{4: 3}}, 4, "outside [0,4)"},
		{"crash round 0", &Scenario{Crashes: map[int]int{1: 0}}, 4, "must be ≥ 1"},
		{"some crashes fine", &Scenario{Crashes: map[int]int{0: 1, 1: 2, 2: 3}}, 4, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate(tc.n)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestScenarioValidateAllCrashed(t *testing.T) {
	s := &Scenario{Crashes: map[int]int{0: 1, 1: 5, 2: 3}}
	if err := s.Validate(3); !errors.Is(err, ErrAllCrashed) {
		t.Fatalf("err = %v, want ErrAllCrashed", err)
	}
	// One survivor makes the schedule legal (f = n−1 is tolerated).
	if err := s.Validate(4); err != nil {
		t.Fatalf("n=4 with 3 crashes must be valid, got %v", err)
	}
}

func TestScenarioDropsDeterministicAndSeedSensitive(t *testing.T) {
	a := &Scenario{Seed: 7, LossPct: 30}
	b := &Scenario{Seed: 7, LossPct: 30}
	c := &Scenario{Seed: 8, LossPct: 30}
	same, diff := 0, 0
	for round := 1; round <= 50; round++ {
		for from := 0; from < 4; from++ {
			for to := 0; to < 4; to++ {
				if a.Drops(round, from, to) != b.Drops(round, from, to) {
					t.Fatalf("same seed diverged at (%d,%d,%d)", round, from, to)
				}
				if a.Drops(round, from, to) == c.Drops(round, from, to) {
					same++
				} else {
					diff++
				}
			}
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical loss schedules")
	}
	_ = same
}

func TestScenarioLossRateRoughlyHonored(t *testing.T) {
	s := &Scenario{Seed: 3, LossPct: 25}
	hits, total := 0, 0
	for round := 1; round <= 200; round++ {
		for from := 0; from < 5; from++ {
			for to := 0; to < 5; to++ {
				total++
				if s.Drops(round, from, to) {
					hits++
				}
			}
		}
	}
	got := 100 * hits / total
	if got < 20 || got > 30 {
		t.Errorf("empirical loss rate %d%%, want ≈25%%", got)
	}
}

func TestScenarioLossAndDupStreamsDisjoint(t *testing.T) {
	s := &Scenario{Seed: 11, LossPct: 50, DupPct: 50}
	agree := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		if s.Drops(i, 0, 1) == s.Duplicates(i, 0, 1) {
			agree++
		}
	}
	// Identical streams would agree always; independent ones about half
	// the time.
	if agree > trials*3/4 {
		t.Errorf("loss and dup draws agree %d/%d times — streams look shared", agree, trials)
	}
}

func TestPartitionSemantics(t *testing.T) {
	s := &Scenario{Partitions: []Partition{{From: 3, Until: 6, Cut: 2}}}
	type q struct {
		round, from, to int
		want            bool
	}
	for _, tc := range []q{
		{2, 0, 3, false}, // before From
		{3, 0, 3, true},  // active, across the cut
		{5, 3, 0, true},  // active, other direction
		{5, 0, 1, false}, // same block
		{5, 2, 3, false}, // same block (right side)
		{6, 0, 3, false}, // healed
	} {
		if got := s.Partitioned(tc.round, tc.from, tc.to); got != tc.want {
			t.Errorf("Partitioned(%d,%d,%d) = %v, want %v", tc.round, tc.from, tc.to, got, tc.want)
		}
		if tc.want && !s.Drops(tc.round, tc.from, tc.to) {
			t.Errorf("Drops(%d,%d,%d) must be true while partitioned", tc.round, tc.from, tc.to)
		}
	}
	never := &Scenario{Partitions: []Partition{{From: 1, Until: 0, Cut: 1}}}
	if !never.Partitioned(1_000_000, 0, 1) {
		t.Error("Until=0 must never heal")
	}
}

func TestScenarioEmpty(t *testing.T) {
	var nilSc *Scenario
	if !nilSc.Empty() || !(&Scenario{Seed: 5}).Empty() {
		t.Error("nil and seed-only scenarios must be Empty")
	}
	for _, s := range []*Scenario{
		{LossPct: 1}, {DupPct: 1},
		{Partitions: []Partition{{From: 1, Cut: 1}}},
		{Crashes: map[int]int{0: 1}},
	} {
		if s.Empty() {
			t.Errorf("%+v must not be Empty", s)
		}
	}
}

func TestScenarioEncodeParseRoundTrip(t *testing.T) {
	cases := []*Scenario{
		nil,
		{},
		{Seed: 42},
		{Seed: -3, LossPct: 10, DupPct: 5},
		{LossPct: 100},
		{Partitions: []Partition{{From: 1, Until: 0, Cut: 2}, {From: 4, Until: 9, Cut: 1}}},
		{Seed: 9, Crashes: map[int]int{3: 7, 0: 1}, LossPct: 15, DupPct: 20,
			Partitions: []Partition{{From: 2, Until: 10, Cut: 3}}},
	}
	for _, s := range cases {
		enc := s.Encode()
		back, err := ParseScenario(enc)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", enc, err)
		}
		if got := back.Encode(); got != enc {
			t.Errorf("round trip %q → %q", enc, got)
		}
		if s != nil && !reflect.DeepEqual(normalize(s), normalize(back)) {
			t.Errorf("round trip of %+v yielded %+v", s, back)
		}
	}
}

// normalize maps nil and empty containers to a comparable form.
func normalize(s *Scenario) Scenario {
	out := *s
	if len(out.Crashes) == 0 {
		out.Crashes = nil
	}
	if len(out.Partitions) == 0 {
		out.Partitions = nil
	}
	return out
}

func TestParseScenarioRejectsGarbage(t *testing.T) {
	for _, text := range []string{
		"nonsense",
		"loss=abc",
		"loss=-1",
		"dup=101",
		"part=1:2",            // missing cut
		"part=0:5:1",          // from < 1
		"part=5:5:1",          // heals before start
		"crash=1",             // missing round
		"crash=1@0",           // round < 1
		"crash=-1@4",          // negative pid
		"crash=1@2,crash=1@3", // duplicate pid
		"wat=1",
	} {
		if _, err := ParseScenario(text); err == nil {
			t.Errorf("ParseScenario(%q) accepted garbage", text)
		}
	}
}

func TestScenarioClone(t *testing.T) {
	orig := &Scenario{Seed: 1, Crashes: map[int]int{2: 5}, LossPct: 10,
		Partitions: []Partition{{From: 1, Until: 4, Cut: 1}}}
	cp := orig.Clone()
	cp.Crashes[3] = 9
	cp.Partitions[0].Cut = 2
	cp.LossPct = 99
	if len(orig.Crashes) != 1 || orig.Partitions[0].Cut != 1 || orig.LossPct != 10 {
		t.Errorf("Clone shares storage with the original: %+v", orig)
	}
	var nilSc *Scenario
	if nilSc.Clone() != nil {
		t.Error("Clone(nil) must be nil")
	}
}

func TestRandomAdversaryReproducibleAndValid(t *testing.T) {
	for _, n := range []int{1, 2, 4, 9, 32} {
		for seed := int64(0); seed < 20; seed++ {
			a := RandomAdversary(seed, n)
			b := RandomAdversary(seed, n)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d n=%d not reproducible", seed, n)
			}
			if err := a.Validate(n); err != nil {
				t.Fatalf("seed %d n=%d invalid: %v", seed, n, err)
			}
			if _, crashed := a.Crashes[0]; crashed {
				t.Fatalf("seed %d n=%d crashes process 0 (reserved for the stable source)", seed, n)
			}
		}
	}
	if reflect.DeepEqual(RandomAdversary(1, 8), RandomAdversary(2, 8)) {
		t.Error("different seeds produced identical adversaries")
	}
}

func TestScenarioLinkFaultFree(t *testing.T) {
	var nilSc *Scenario
	for name, tt := range map[string]struct {
		sc   *Scenario
		want bool
	}{
		"nil":            {nilSc, true},
		"zero":           {&Scenario{}, true},
		"crashes + dup":  {&Scenario{DupPct: 70, Crashes: map[int]int{0: 1}}, true},
		"loss":           {&Scenario{LossPct: 1}, false},
		"partition":      {&Scenario{Partitions: []Partition{{From: 1, Cut: 1}}}, false},
		"loss via chaos": {RandomAdversary(3, 6), false},
	} {
		if got := tt.sc.LinkFaultFree(); got != tt.want {
			t.Errorf("%s: LinkFaultFree() = %v, want %v", name, got, tt.want)
		}
	}
}
