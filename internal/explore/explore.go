// Package explore is a bounded exhaustive checker: for small systems it
// enumerates *every* MS-valid delay schedule (and optionally every crash
// placement) up to a horizon and verifies the consensus safety properties
// on each run. Where the random-schedule tests sample the adversary space,
// this package covers it exhaustively — a model-checking-style complement
// for the sizes where that is tractable:
//
//	n = 2, delays ∈ {0,1}, horizon 6  →     729 schedules
//	n = 3, delays ∈ {0,1}, horizon 4  → ~2.8 M schedules (use SampleEvery)
//
// A schedule is a sequence of per-round delay matrices; MS-validity means
// every round has a source (a sender whose envelopes are all timely).
package explore

import (
	"fmt"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

// Algorithm selects the automaton under test.
type Algorithm int

// Supported algorithms.
const (
	AlgES Algorithm = iota + 1
	AlgESS
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgES:
		return "ES"
	case AlgESS:
		return "ESS"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config bounds the exploration.
type Config struct {
	// Proposals holds one initial value per process; n = len(Proposals).
	// Keep n ≤ 3: the schedule space is V^H with V ≈ 2^(n(n−1)) matrices.
	Proposals []values.Value
	// Algorithm is the automaton under test.
	Algorithm Algorithm
	// Horizon is the number of rounds whose matrices are enumerated;
	// rounds beyond the horizon repeat the last matrix (the adversary
	// commits to a steady state), and the run executes Horizon+Tail
	// rounds in total.
	Horizon int
	// Tail is the number of extra steady-state rounds; defaults to 8.
	Tail int
	// CrashSweeps additionally enumerates every (process, round ≤ Horizon)
	// crash placement for every schedule.
	CrashSweeps bool
	// SampleEvery keeps only every k-th schedule (1 = all); use it to keep
	// n = 3 explorations tractable.
	SampleEvery int
	// Automaton, if non-nil, overrides the Algorithm selection with a
	// custom factory (used to explore broken ablation variants and to test
	// the explorer's own violation detection).
	Automaton func(i int) giraf.Automaton
}

func (c *Config) validate() error {
	n := len(c.Proposals)
	switch {
	case n < 1 || n > 3:
		return fmt.Errorf("explore: n = %d, exhaustive search supports 1..3", n)
	case c.Horizon < 1 || c.Horizon > 8:
		return fmt.Errorf("explore: horizon = %d, want 1..8", c.Horizon)
	}
	switch c.Algorithm {
	case AlgES, AlgESS:
	default:
		return fmt.Errorf("explore: unknown algorithm %d", int(c.Algorithm))
	}
	for i, p := range c.Proposals {
		if !p.Valid() {
			return fmt.Errorf("explore: proposal %d invalid (%q)", i, string(p))
		}
	}
	return nil
}

// Report summarizes an exploration.
type Report struct {
	// Schedules is the number of schedules executed.
	Schedules int
	// Runs is the number of simulation runs (schedules × crash placements).
	Runs int
	// Decided counts runs in which every correct process decided.
	Decided int
	// Violations lists every safety violation found (empty = verified).
	Violations []string
}

// Verified reports whether no run violated safety.
func (r *Report) Verified() bool { return len(r.Violations) == 0 }

// matrix is one round's delay assignment: delay[i][j] ∈ {0,1} for i ≠ j.
type matrix [][]int

// enumerateMatrices returns every n×n delay matrix over {0,1} that has a
// source (some i with delay[i][j] = 0 for all j).
func enumerateMatrices(n int) []matrix {
	pairs := make([][2]int, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	var out []matrix
	total := 1 << uint(len(pairs))
	for mask := 0; mask < total; mask++ {
		m := make(matrix, n)
		for i := range m {
			m[i] = make([]int, n)
		}
		for b, p := range pairs {
			if mask&(1<<uint(b)) != 0 {
				m[p[0]][p[1]] = 1
			}
		}
		hasSource := false
		for i := 0; i < n && !hasSource; i++ {
			ok := true
			for j := 0; j < n; j++ {
				if i != j && m[i][j] != 0 {
					ok = false
					break
				}
			}
			hasSource = ok
		}
		if hasSource {
			out = append(out, m)
		}
	}
	return out
}

// schedulePolicy replays an explicit matrix sequence, repeating the last
// matrix beyond the horizon.
type schedulePolicy struct {
	matrices []matrix
}

var _ sim.Policy = (*schedulePolicy)(nil)

func (p *schedulePolicy) Schedule(round int, senders []int, n int) sim.DelayFn {
	idx := round - 1
	if idx >= len(p.matrices) {
		idx = len(p.matrices) - 1
	}
	m := p.matrices[idx]
	return func(sender, receiver int) int { return m[sender][receiver] }
}

// Run executes the exploration.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(cfg.Proposals)
	tail := cfg.Tail
	if tail <= 0 {
		tail = 8
	}
	sample := cfg.SampleEvery
	if sample <= 0 {
		sample = 1
	}
	base := enumerateMatrices(n)
	report := &Report{}
	proposals := core.ProposalSet(cfg.Proposals)

	// Iterate schedules as base-|base| numbers of Horizon digits.
	digits := make([]int, cfg.Horizon)
	scheduleIdx := 0
	for {
		if scheduleIdx%sample == 0 {
			mats := make([]matrix, cfg.Horizon)
			for i, d := range digits {
				mats[i] = base[d]
			}
			report.Schedules++
			if err := runSchedules(cfg, mats, cfg.Horizon+tail, proposals, report); err != nil {
				return nil, err
			}
		}
		scheduleIdx++
		// Increment the digit vector.
		pos := 0
		for pos < len(digits) {
			digits[pos]++
			if digits[pos] < len(base) {
				break
			}
			digits[pos] = 0
			pos++
		}
		if pos == len(digits) {
			break
		}
	}
	return report, nil
}

// runSchedules runs one schedule, optionally sweeping crash placements.
func runSchedules(cfg Config, mats []matrix, maxRounds int, proposals values.Set, report *Report) error {
	type crash struct{ pid, at int }
	crashPlans := []crash{{-1, 0}} // no crash
	if cfg.CrashSweeps {
		for pid := 0; pid < len(cfg.Proposals); pid++ {
			for at := 1; at <= cfg.Horizon; at++ {
				crashPlans = append(crashPlans, crash{pid, at})
			}
		}
	}
	for _, cp := range crashPlans {
		var crashes map[int]int
		if cp.pid >= 0 {
			crashes = map[int]int{cp.pid: cp.at}
		}
		automaton := cfg.Automaton
		if automaton == nil {
			automaton = func(i int) giraf.Automaton {
				if cfg.Algorithm == AlgESS {
					return core.NewESS(cfg.Proposals[i])
				}
				return core.NewES(cfg.Proposals[i])
			}
		}
		res, err := sim.Run(sim.Config{
			N:         len(cfg.Proposals),
			Automaton: automaton,
			Policy:    &schedulePolicy{matrices: mats},
			Crashes:   crashes,
			MaxRounds: maxRounds,
		})
		if err != nil {
			return err
		}
		report.Runs++
		if err := res.CheckAgreement(); err != nil {
			report.Violations = append(report.Violations,
				fmt.Sprintf("schedule %v crash %+v: %v", mats, cp, err))
		}
		if err := res.CheckValidity(proposals); err != nil {
			report.Violations = append(report.Violations,
				fmt.Sprintf("schedule %v crash %+v: %v", mats, cp, err))
		}
		if res.AllCorrectDecided() {
			report.Decided++
		}
	}
	return nil
}
