// Package explore is the exploration plane: it searches the combined
// schedule × fault-scenario space of the consensus algorithms and verifies
// the paper's properties — Agreement, Validity, Termination where the
// environment guarantees it, and irrevocability of decisions — on every
// run. It operates in three modes:
//
//   - ModeExhaustive enumerates *every* MS-valid delay schedule (and
//     optionally every crash placement) over {0,1} delays up to a horizon —
//     a model-checking-style sweep for the sizes where that is tractable:
//
//     n = 2, delays ∈ {0,1}, horizon 6  →     729 schedules
//     n = 3, delays ∈ {0,1}, horizon 4  → ~2.8 M schedules (use SampleEvery)
//
//   - ModeRandom samples schedules PCT-style at sizes the exhaustive space
//     cannot reach (n ≈ 8): a random priority order picks each round's
//     source, Depth priority-change points reshuffle the order mid-run, and
//     non-source links draw uniform delays; a configurable fraction of
//     trials additionally overlays a fault scenario (loss, duplication,
//     partitions, crashes) drawn from env.RandomAdversary. Trials fan over
//     the sim.RunBatch worker pool and the report is byte-identical at any
//     parallelism.
//
//   - ModeReplay re-executes one canonical Trace (schedule + scenario +
//     tail, see Trace.Encode) and reports its violations — the consumption
//     side of the counterexamples the other two modes emit.
//
// Every violation is minimized by a delta-debugging shrinker (shrink.go)
// into a locally-minimal, replayable Counterexample before reporting.
package explore

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"anonconsensus/internal/core"
	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

// Algorithm selects the automaton under test.
type Algorithm int

// Supported algorithms.
const (
	AlgES Algorithm = iota + 1
	AlgESS
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgES:
		return "ES"
	case AlgESS:
		return "ESS"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Mode selects the search strategy.
type Mode int

// Supported modes. The zero value is ModeExhaustive so pre-existing
// exhaustive configurations keep working unchanged.
const (
	ModeExhaustive Mode = iota
	ModeRandom
	ModeReplay
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeExhaustive:
		return "exhaustive"
	case ModeRandom:
		return "random"
	case ModeReplay:
		return "replay"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Limits of the randomized search space; the trace text form encodes one
// digit per delay, which is where the delay cap comes from.
const (
	maxRandomProcs   = 16
	maxRandomHorizon = 64
	maxTraceDelay    = 9
	maxTraceTail     = 1024
	maxTraceHorizon  = 256
)

// Config bounds the exploration.
type Config struct {
	// Proposals holds one initial value per process; n = len(Proposals).
	// Exhaustive mode supports n ≤ 3 (the schedule space is V^H with
	// V ≈ 2^(n(n−1)) matrices); random mode supports n ≤ 16.
	Proposals []values.Value
	// Algorithm is the automaton under test.
	Algorithm Algorithm
	// Mode selects exhaustive enumeration (default), randomized search, or
	// trace replay.
	Mode Mode
	// Horizon is the number of rounds whose matrices are enumerated
	// (exhaustive, 1..8) or sampled (random, 1..64, default 12). Rounds
	// beyond the horizon run the steady state: exhaustive mode repeats the
	// last matrix (the adversary commits), random mode turns fully timely
	// (so ES holds eventually and Termination becomes checkable).
	Horizon int
	// Tail is the number of steady-state rounds; defaults to 8 (exhaustive)
	// or 12 (random).
	Tail int
	// CrashSweeps (exhaustive) additionally enumerates every
	// (process, round ≤ Horizon) crash placement for every schedule.
	CrashSweeps bool
	// SampleEvery (exhaustive) keeps only every k-th schedule (1 = all);
	// use it to keep n = 3 explorations tractable.
	SampleEvery int
	// Trials (random) is the number of sampled schedules; defaults to 1000.
	Trials int
	// Seed (random) drives schedule and scenario sampling. Identical seeds
	// reproduce the whole search.
	Seed int64
	// MaxDelay (random) bounds sampled non-source delays, 1..9; default 3.
	MaxDelay int
	// Depth (random) is the number of PCT-style priority-change points per
	// trial: rounds at which the sampler reshuffles the priority order that
	// picks the source. Depth d gives the sampler a chance against bugs
	// that need d source changes. Defaults to 3; 0 keeps one source order
	// for the whole horizon.
	Depth int
	// ScenarioPct (random) is the percentage of trials that overlay a fault
	// scenario drawn from env.RandomAdversary (loss, duplication, one
	// partition, staggered crashes). Requires Scenario == nil.
	ScenarioPct int
	// Scenario, when non-nil, overlays this fixed fault scenario on every
	// run of the exploration (all modes). Scenarios whose crash schedule
	// stops every process are rejected at validation with a typed error
	// wrapping env.ErrAllCrashed: such a configuration makes every run
	// vacuous, which is a caller bug, not a search result.
	Scenario *env.Scenario
	// Parallelism bounds the worker pool the randomized trials fan across;
	// 0 (or negative) means GOMAXPROCS. The report is byte-identical at any
	// setting.
	Parallelism int
	// DisableShrink skips counterexample minimization (violations are still
	// reported; Counterexamples then carry the unshrunk traces).
	DisableShrink bool
	// MaxCounterexamples caps how many violations are turned into shrunk
	// replayable counterexamples (the Violations list is never truncated);
	// 0 defaults to 8, negative means unlimited.
	MaxCounterexamples int
	// Trace is the run to re-execute in ModeReplay; other search knobs are
	// ignored there (the trace is self-contained).
	Trace *Trace
	// Automaton, if non-nil, overrides the Algorithm selection with a
	// custom factory (used to explore broken ablation variants and to test
	// the explorer's own violation detection). Replay honors it too, so a
	// counterexample found against an injected bug replays against the same
	// bug.
	Automaton func(i int) giraf.Automaton
}

func (c *Config) validate() error {
	switch c.Mode {
	case ModeExhaustive, ModeRandom:
	case ModeReplay:
		if c.Trace == nil {
			return fmt.Errorf("explore: replay mode needs a Trace")
		}
		return c.Trace.validate()
	default:
		return fmt.Errorf("explore: unknown mode %d", int(c.Mode))
	}
	n := len(c.Proposals)
	switch c.Mode {
	case ModeExhaustive:
		switch {
		case n < 1 || n > 3:
			return fmt.Errorf("explore: n = %d, exhaustive search supports 1..3", n)
		case c.Horizon < 1 || c.Horizon > 8:
			return fmt.Errorf("explore: horizon = %d, want 1..8", c.Horizon)
		}
	case ModeRandom:
		switch {
		case n < 1 || n > maxRandomProcs:
			return fmt.Errorf("explore: n = %d, randomized search supports 1..%d", n, maxRandomProcs)
		case c.Horizon < 0 || c.Horizon > maxRandomHorizon:
			return fmt.Errorf("explore: horizon = %d, want 1..%d (0 = default)", c.Horizon, maxRandomHorizon)
		case c.Trials < 0:
			return fmt.Errorf("explore: trials = %d, must be ≥ 0 (0 = default)", c.Trials)
		case c.MaxDelay < 0 || c.MaxDelay > maxTraceDelay:
			return fmt.Errorf("explore: max delay = %d, want 0..%d (the trace form encodes one digit per delay)", c.MaxDelay, maxTraceDelay)
		case c.Depth < 0:
			return fmt.Errorf("explore: depth = %d, must be ≥ 0", c.Depth)
		case c.ScenarioPct < 0 || c.ScenarioPct > 100:
			return fmt.Errorf("explore: scenario percentage %d outside [0,100]", c.ScenarioPct)
		case c.ScenarioPct > 0 && c.Scenario != nil:
			return fmt.Errorf("explore: ScenarioPct and a fixed Scenario are mutually exclusive")
		}
		for _, p := range c.Proposals {
			if err := validateTraceValue(p); err != nil {
				return err
			}
		}
	}
	switch c.Algorithm {
	case AlgES, AlgESS:
	default:
		return fmt.Errorf("explore: unknown algorithm %d", int(c.Algorithm))
	}
	for i, p := range c.Proposals {
		if !p.Valid() {
			return fmt.Errorf("explore: proposal %d invalid (%q)", i, string(p))
		}
	}
	// Scenarios that trivially make every run vacuous — a crash schedule
	// that stops every process — are configuration bugs: reject them up
	// front with the typed env.ErrAllCrashed instead of reporting a
	// trivially-undecided space.
	if err := c.Scenario.Validate(n); err != nil {
		if errors.Is(err, env.ErrAllCrashed) {
			return fmt.Errorf("explore: scenario makes every run vacuous: %w", err)
		}
		return fmt.Errorf("explore: %w", err)
	}
	return nil
}

// Resolved-default accessors.

func (c *Config) tail() int {
	if c.Tail > 0 {
		return c.Tail
	}
	if c.Mode == ModeRandom {
		return 12
	}
	return 8
}

func (c *Config) horizon() int {
	if c.Horizon > 0 {
		return c.Horizon
	}
	return 12 // random-mode default; exhaustive validation requires ≥ 1
}

func (c *Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	return 1000
}

func (c *Config) maxDelay() int {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 3
}

func (c *Config) depth() int {
	if c.Depth > 0 {
		return c.Depth
	}
	return 3
}

func (c *Config) maxCounterexamples() int {
	switch {
	case c.MaxCounterexamples > 0:
		return c.MaxCounterexamples
	case c.MaxCounterexamples < 0:
		return int(^uint(0) >> 1)
	default:
		return 8
	}
}

// automaton resolves the automaton factory: the override, or the algorithm
// under test.
func (c *Config) automaton() func(i int) giraf.Automaton {
	if c.Automaton != nil {
		return c.Automaton
	}
	return algFactory(c.Algorithm, c.Proposals)
}

// algFactory builds the per-process consensus automata for alg.
func algFactory(alg Algorithm, proposals []values.Value) func(i int) giraf.Automaton {
	if alg == AlgESS {
		return func(i int) giraf.Automaton { return core.NewESS(proposals[i]) }
	}
	return func(i int) giraf.Automaton { return core.NewES(proposals[i]) }
}

// Counterexample is one violation turned into a replayable artifact.
type Counterexample struct {
	// Trial is the randomized trial index that found it (-1 in exhaustive
	// mode, where schedules are enumerated, not sampled).
	Trial int
	// Violation is the check failure observed on the original run.
	Violation string
	// Trace is the minimized run; Trace.Encode() is the replayable text
	// form and Replay reproduces ReplayViolation deterministically.
	Trace Trace
	// ReplayViolation is the violation the minimized trace reproduces (the
	// same property as Violation; the concrete message may differ after
	// shrinking).
	ReplayViolation string
	// Probes is the number of shrink probe runs executed (0 when shrinking
	// was disabled).
	Probes int
}

// Report summarizes an exploration.
type Report struct {
	// Mode is the search strategy that produced the report.
	Mode Mode
	// Schedules is the number of schedules executed (== Trials in random
	// mode).
	Schedules int
	// Runs is the number of simulation runs (schedules × crash placements);
	// shrink probes are not counted.
	Runs int
	// Faulted counts runs that carried a non-empty fault scenario.
	Faulted int
	// Decided counts runs in which every correct process decided.
	Decided int
	// Violations lists every property violation found (empty = verified).
	Violations []string
	// Counterexamples holds the shrunk replayable artifacts for the first
	// MaxCounterexamples violations.
	Counterexamples []Counterexample
}

// Verified reports whether no run violated a checked property.
func (r *Report) Verified() bool { return len(r.Violations) == 0 }

// Render writes the report in its canonical text form. The rendering is a
// pure function of the report — for a fixed seed it is byte-identical at
// any parallelism, which is what the determinism tests pin.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "mode: %s\nschedules: %d  runs: %d  decided: %d  faulted: %d\n",
		r.Mode, r.Schedules, r.Runs, r.Decided, r.Faulted); err != nil {
		return err
	}
	if r.Verified() {
		_, err := fmt.Fprintln(w, "violations: 0 (verified)")
		return err
	}
	if _, err := fmt.Fprintf(w, "violations: %d\n", len(r.Violations)); err != nil {
		return err
	}
	for i, cx := range r.Counterexamples {
		if _, err := fmt.Fprintf(w, "[%d] %s\n    shrunk (%d probes): %s\n    replay: %s\n",
			i, cx.Violation, cx.Probes, cx.Trace.Encode(), cx.ReplayViolation); err != nil {
			return err
		}
	}
	if extra := len(r.Violations) - len(r.Counterexamples); extra > 0 {
		if _, err := fmt.Fprintf(w, "(+%d further violations without shrunk counterexamples)\n", extra); err != nil {
			return err
		}
	}
	return nil
}

// matrix is one round's delay assignment: delay[i][j] ∈ 0..9 for i ≠ j.
type matrix [][]int

func newMatrix(n int) matrix {
	m := make(matrix, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	return m
}

func (m matrix) clone() matrix {
	out := make(matrix, len(m))
	for i, row := range m {
		out[i] = append([]int(nil), row...)
	}
	return out
}

// enumerateMatrices returns every n×n delay matrix over {0,1} that has a
// source (some i with delay[i][j] = 0 for all j).
func enumerateMatrices(n int) []matrix {
	pairs := make([][2]int, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	var out []matrix
	total := 1 << uint(len(pairs))
	for mask := 0; mask < total; mask++ {
		m := newMatrix(n)
		for b, p := range pairs {
			if mask&(1<<uint(b)) != 0 {
				m[p[0]][p[1]] = 1
			}
		}
		hasSource := false
		for i := 0; i < n && !hasSource; i++ {
			ok := true
			for j := 0; j < n; j++ {
				if i != j && m[i][j] != 0 {
					ok = false
					break
				}
			}
			hasSource = ok
		}
		if hasSource {
			out = append(out, m)
		}
	}
	return out
}

// schedulePolicy replays an explicit matrix sequence. Beyond the horizon it
// repeats the last matrix (the exhaustive adversary commits to a steady
// state) or, with syncSteady, turns fully timely (the randomized sampler's
// synchronous tail, under which ES holds and Termination is checkable).
type schedulePolicy struct {
	matrices   []matrix
	syncSteady bool
}

var _ sim.Policy = (*schedulePolicy)(nil)

func (p *schedulePolicy) Schedule(round int, senders []int, n int) sim.DelayFn {
	idx := round - 1
	if idx >= len(p.matrices) {
		if p.syncSteady {
			return func(sender, receiver int) int { return 0 }
		}
		idx = len(p.matrices) - 1
	}
	m := p.matrices[idx]
	return func(sender, receiver int) int { return m[sender][receiver] }
}

// checkViolations runs every property check on one finished run, asserting
// each property exactly where the model guarantees it. Validity and
// irrevocability are unconditional — faults can only remove or repeat
// messages, never forge proposals or un-halt a process. Agreement is
// asserted when the run stayed inside the model while its decisions were
// cast: the scenario must keep the reliable-broadcast assumption
// (sc.LinkFaultFree — loss and partitions genuinely admit split-brain, as
// the S1 sweep demonstrates) and the *executed* run must satisfy the MS
// property through the final decision (checked from the recorded trace —
// a static schedule can designate a source that crashed or already
// decided, and a sourceless round is outside every environment of §2.3;
// the paper's crash-tolerance claim quantifies only over executions where
// the environment properties hold). Termination is asserted only when the
// caller established that the environment guarantees it (link-fault-free
// scenario plus a synchronous steady state, under which MS also holds from
// the steady state on).
func checkViolations(res *sim.Result, proposals values.Set, sc *env.Scenario, requireTermination bool) []string {
	var out []string
	if sc.LinkFaultFree() && res.Trace != nil {
		if res.Trace.CheckMSThrough(res.LastDecisionRound()) == nil {
			if err := res.CheckAgreement(); err != nil {
				out = append(out, err.Error())
			}
		}
	}
	if err := res.CheckValidity(proposals); err != nil {
		out = append(out, err.Error())
	}
	if res.Trace != nil {
		if err := res.Trace.CheckIrrevocability(res.Statuses); err != nil {
			out = append(out, err.Error())
		}
	}
	if requireTermination && !res.AllCorrectDecided() {
		undecided := 0
		correct := 0
		for _, st := range res.Statuses {
			if st.Crashed {
				continue
			}
			correct++
			if !st.Decided {
				undecided++
			}
		}
		out = append(out, fmt.Sprintf("termination violated: %d of %d correct processes undecided after %d rounds under a synchronous steady state", undecided, correct, res.Rounds))
	}
	return out
}

// violationKind extracts the property name from a violation message
// ("agreement violated: …" → "agreement"); the shrinker uses it to keep a
// candidate only when it reproduces the *same* property breach.
func violationKind(v string) string {
	if i := strings.Index(v, " violated"); i >= 0 {
		return v[:i]
	}
	return v
}

// firstOfKind returns the first violation of the given kind, or ok=false.
func firstOfKind(vs []string, kind string) (string, bool) {
	for _, v := range vs {
		if violationKind(v) == kind {
			return v, true
		}
	}
	return "", false
}

// Run executes the exploration in the configured mode.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch cfg.Mode {
	case ModeRandom:
		return runRandom(cfg)
	case ModeReplay:
		return runReplay(cfg)
	default:
		return runExhaustive(cfg)
	}
}

// runExhaustive enumerates the bounded schedule space.
func runExhaustive(cfg Config) (*Report, error) {
	n := len(cfg.Proposals)
	tail := cfg.tail()
	sample := cfg.SampleEvery
	if sample <= 0 {
		sample = 1
	}
	base := enumerateMatrices(n)
	report := &Report{Mode: ModeExhaustive}
	proposals := core.ProposalSet(cfg.Proposals)

	// Iterate schedules as base-|base| numbers of Horizon digits.
	digits := make([]int, cfg.Horizon)
	scheduleIdx := 0
	for {
		if scheduleIdx%sample == 0 {
			mats := make([]matrix, cfg.Horizon)
			for i, d := range digits {
				mats[i] = base[d]
			}
			report.Schedules++
			if err := runSchedules(cfg, mats, cfg.Horizon+tail, tail, proposals, report); err != nil {
				return nil, err
			}
		}
		scheduleIdx++
		// Increment the digit vector.
		pos := 0
		for pos < len(digits) {
			digits[pos]++
			if digits[pos] < len(base) {
				break
			}
			digits[pos] = 0
			pos++
		}
		if pos == len(digits) {
			break
		}
	}
	return report, nil
}

// runSchedules runs one schedule, optionally sweeping crash placements.
func runSchedules(cfg Config, mats []matrix, maxRounds, tail int, proposals values.Set, report *Report) error {
	type crash struct{ pid, at int }
	crashPlans := []crash{{-1, 0}} // no crash
	if cfg.CrashSweeps {
		for pid := 0; pid < len(cfg.Proposals); pid++ {
			for at := 1; at <= cfg.Horizon; at++ {
				crashPlans = append(crashPlans, crash{pid, at})
			}
		}
	}
	for _, cp := range crashPlans {
		var crashes map[int]int
		if cp.pid >= 0 {
			crashes = map[int]int{cp.pid: cp.at}
		}
		res, err := sim.Run(sim.Config{
			N:           len(cfg.Proposals),
			Automaton:   cfg.automaton(),
			Policy:      &schedulePolicy{matrices: mats},
			Crashes:     crashes,
			Scenario:    cfg.Scenario,
			MaxRounds:   maxRounds,
			RecordTrace: true,
		})
		if err != nil {
			return err
		}
		report.Runs++
		if !cfg.Scenario.Empty() {
			report.Faulted++
		}
		if res.AllCorrectDecided() {
			report.Decided++
		}
		vs := checkViolations(res, proposals, cfg.Scenario, false)
		if len(vs) == 0 {
			continue
		}
		for _, v := range vs {
			report.Violations = append(report.Violations,
				fmt.Sprintf("schedule %v crash %+v: %v", mats, cp, v))
		}
		if len(report.Counterexamples) < cfg.maxCounterexamples() {
			tr := Trace{
				Algorithm: cfg.Algorithm,
				Proposals: cfg.Proposals,
				Tail:      tail,
				Schedule:  cloneSchedule(mats),
				Scenario:  mergeCrash(cfg.Scenario, cp.pid, cp.at),
			}
			if tr.validate() == nil { // e.g. a merged all-crash plan is not replayable
				report.Counterexamples = append(report.Counterexamples,
					buildCounterexample(&cfg, tr, -1, vs[0]))
			}
		}
	}
	return nil
}

// mergeCrash folds one swept crash placement into a copy of the scenario so
// the resulting trace is self-contained.
func mergeCrash(sc *env.Scenario, pid, at int) *env.Scenario {
	if pid < 0 {
		return sc
	}
	out := sc.Clone()
	if out == nil {
		out = &env.Scenario{}
	}
	if out.Crashes == nil {
		out.Crashes = make(map[int]int, 1)
	}
	if prev, ok := out.Crashes[pid]; !ok || at < prev {
		out.Crashes[pid] = at
	}
	return out
}

func cloneSchedule(mats []matrix) []matrix {
	out := make([]matrix, len(mats))
	for i, m := range mats {
		out[i] = m.clone()
	}
	return out
}

// runReplay re-executes one trace and reports its violations.
func runReplay(cfg Config) (*Report, error) {
	tr := *cfg.Trace
	report := &Report{Mode: ModeReplay, Schedules: 1, Runs: 1}
	if !tr.Scenario.Empty() {
		report.Faulted = 1
	}
	res, err := sim.Run(tr.simConfig(cfg.Automaton))
	if err != nil {
		return nil, err
	}
	if res.AllCorrectDecided() {
		report.Decided = 1
	}
	report.Violations = checkViolations(res, core.ProposalSet(tr.Proposals), tr.Scenario, tr.terminationExpected())
	return report, nil
}

// buildCounterexample shrinks one violating trace (unless disabled) and
// packages it with the violation its replay reproduces.
func buildCounterexample(cfg *Config, tr Trace, trial int, violation string) Counterexample {
	cx := Counterexample{Trial: trial, Violation: violation, Trace: tr, ReplayViolation: violation}
	kind := violationKind(violation)
	if !cfg.DisableShrink {
		cx.Trace, cx.ReplayViolation, cx.Probes = shrinkTrace(cfg, tr, kind, violation)
	}
	return cx
}
