package explore

import (
	"testing"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

func TestEnumerateMatricesN2(t *testing.T) {
	ms := enumerateMatrices(2)
	// 4 matrices over {0,1}^2, minus the one with no source (both delayed).
	if len(ms) != 3 {
		t.Fatalf("n=2 MS-valid matrices = %d, want 3", len(ms))
	}
	for _, m := range ms {
		if m[0][1] != 0 && m[1][0] != 0 {
			t.Errorf("matrix %v has no source", m)
		}
	}
}

func TestEnumerateMatricesN3(t *testing.T) {
	ms := enumerateMatrices(3)
	// 2^6 = 64 matrices; count those with ≥1 all-zero row (inclusion-
	// exclusion: 3·16 − 3·4 + 1 = 37).
	if len(ms) != 37 {
		t.Fatalf("n=3 MS-valid matrices = %d, want 37", len(ms))
	}
}

func TestExhaustiveESTwoProcs(t *testing.T) {
	// Every MS-valid schedule over {0,1} delays, horizon 6, with every
	// single-crash placement: 729 schedules × 13 crash plans. Algorithm 2
	// must never violate Agreement or Validity.
	rep, err := Run(Config{
		Proposals:   []values.Value{values.Num(1), values.Num(2)},
		Algorithm:   AlgES,
		Horizon:     6,
		CrashSweeps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules != 729 {
		t.Errorf("schedules = %d, want 3^6 = 729", rep.Schedules)
	}
	if wantRuns := 729 * 13; rep.Runs != wantRuns {
		t.Errorf("runs = %d, want %d", rep.Runs, wantRuns)
	}
	if !rep.Verified() {
		t.Fatalf("safety violations found:\n%v", rep.Violations[:minInt(3, len(rep.Violations))])
	}
	if rep.Decided == 0 {
		t.Error("no schedule decided — steady-state tails should let many decide")
	}
}

func TestExhaustiveESSTwoProcs(t *testing.T) {
	rep, err := Run(Config{
		Proposals: []values.Value{values.Num(1), values.Num(2)},
		Algorithm: AlgESS,
		Horizon:   5,
		Tail:      10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules != 243 {
		t.Errorf("schedules = %d, want 3^5", rep.Schedules)
	}
	if !rep.Verified() {
		t.Fatalf("safety violations found:\n%v", rep.Violations[:minInt(3, len(rep.Violations))])
	}
}

func TestExhaustiveESThreeProcsSampled(t *testing.T) {
	// n=3 full space is 37^4 ≈ 1.9M; sample every 97th schedule to keep
	// the test fast while still sweeping ~19k full runs.
	rep, err := Run(Config{
		Proposals:   []values.Value{values.Num(1), values.Num(2), values.Num(3)},
		Algorithm:   AlgES,
		Horizon:     4,
		SampleEvery: 97,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules < 10000 {
		t.Errorf("schedules = %d, expected ≥ 10k sampled", rep.Schedules)
	}
	if !rep.Verified() {
		t.Fatalf("safety violations found:\n%v", rep.Violations[:minInt(3, len(rep.Violations))])
	}
}

// stubbornAutomaton decides its own value in round 2 — a deliberately
// broken consensus that must trip the explorer's agreement detector.
type stubbornAutomaton struct{ v values.Value }

func (a stubbornAutomaton) Initialize() giraf.Payload {
	return core.SetPayload{Proposed: values.NewSet(a.v)}
}

func (a stubbornAutomaton) Compute(k int, in giraf.Inbox) (giraf.Payload, giraf.Decision) {
	if k >= 2 {
		return nil, giraf.Decision{Decided: true, Value: a.v}
	}
	return core.SetPayload{Proposed: values.NewSet(a.v)}, giraf.Decision{}
}

func TestExplorerDetectsViolations(t *testing.T) {
	props := []values.Value{values.Num(1), values.Num(2)}
	rep, err := Run(Config{
		Proposals: props,
		Algorithm: AlgES,
		Horizon:   2,
		Automaton: func(i int) giraf.Automaton { return stubbornAutomaton{v: props[i]} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified() {
		t.Fatal("broken automaton passed exploration — the detector is blind")
	}
}

func TestExploreLiteralESSVariant(t *testing.T) {
	// Explore the broken literal-nesting ablation exhaustively in the
	// small space. Its known failures (stale WRITTENOLD, all-⊥ deadlock)
	// need specific shapes; whatever the verdict, the corrected variant
	// must be strictly no worse on the identical space.
	props := []values.Value{values.Num(1), values.Num(2)}
	lit, err := Run(Config{
		Proposals: props,
		Algorithm: AlgESS,
		Horizon:   5,
		Tail:      10,
		Automaton: func(i int) giraf.Automaton { return core.NewESSLiteral(props[i]) },
	})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Run(Config{
		Proposals: props,
		Algorithm: AlgESS,
		Horizon:   5,
		Tail:      10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.Verified() {
		t.Fatalf("corrected ESS violated safety in exhaustive space: %v", fixed.Violations[0])
	}
	if fixed.Decided < lit.Decided {
		t.Errorf("corrected ESS decided in %d runs, literal in %d — correction lost liveness",
			fixed.Decided, lit.Decided)
	}
	t.Logf("literal: %d/%d decided, %d violations; corrected: %d/%d decided, 0 violations",
		lit.Decided, lit.Runs, len(lit.Violations), fixed.Decided, fixed.Runs)
}

func TestConfigValidation(t *testing.T) {
	valid := Config{
		Proposals: []values.Value{values.Num(1)},
		Algorithm: AlgES,
		Horizon:   2,
	}
	if _, err := Run(valid); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"too many procs": func(c *Config) { c.Proposals = core.DistinctProposals(4) },
		"no procs":       func(c *Config) { c.Proposals = nil },
		"bad horizon":    func(c *Config) { c.Horizon = 0 },
		"huge horizon":   func(c *Config) { c.Horizon = 99 },
		"bad algorithm":  func(c *Config) { c.Algorithm = Algorithm(9) },
		"bad proposal":   func(c *Config) { c.Proposals = []values.Value{values.Bot} },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := valid
			mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgES.String() != "ES" || AlgESS.String() != "ESS" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm must render")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
