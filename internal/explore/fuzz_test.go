package explore

import "testing"

// FuzzTrace fuzzes the trace text form: any input that parses must survive
// an encode/parse round trip unchanged (the canonical form is a fixed
// point), re-validate, and be executable end to end without panicking. It
// is the explore-plane sibling of env's FuzzScenario.
func FuzzTrace(f *testing.F) {
	f.Add("alg=ES;props=a|b;sched=00.00")
	f.Add("alg=ESS;props=000000000001|000000000002;tail=10;steady=repeat;sched=01.10/00.00")
	f.Add("alg=ES;props=x;tail=0;steady=sync;sched=0/0/0")
	f.Add("alg=ES;props=a|b|c;sched=000.000.000;scenario=loss=10,dup=5,part=1:3:1,crash=2@4")
	f.Add("alg=ESS;props=a|b;tail=99;sched=09.90")
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := ParseTrace(text)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if verr := tr.validate(); verr != nil {
			t.Fatalf("ParseTrace(%q) returned an invalid trace: %v", text, verr)
		}
		enc := tr.Encode()
		back, err := ParseTrace(enc)
		if err != nil {
			t.Fatalf("re-parse of canonical form %q (from %q): %v", enc, text, err)
		}
		if got := back.Encode(); got != enc {
			t.Fatalf("canonical form is not a fixed point: %q → %q (input %q)", enc, got, text)
		}
		// Parsed traces must be executable: cap the run so pathological
		// tails stay cheap.
		if back.Tail > 32 {
			back.Tail = 32
		}
		rep, err := Run(Config{Mode: ModeReplay, Trace: back})
		if err != nil {
			t.Fatalf("replay of %q: %v", enc, err)
		}
		if rep.Runs != 1 {
			t.Fatalf("replay executed %d runs", rep.Runs)
		}
	})
}
