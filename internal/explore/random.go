package explore

import (
	"context"
	"fmt"
	"math/rand"

	"anonconsensus/internal/core"
	"anonconsensus/internal/env"
	"anonconsensus/internal/sim"
)

// trialSeed derives the deterministic RNG seed of one trial with a
// splitmix64-style mix, so nearby (seed, trial) pairs never share streams.
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(trial+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0x94D049BB133111EB
	z ^= z >> 27
	return int64(z)
}

// sampleSchedule draws one PCT-style schedule: a random priority order over
// the processes picks each round's source (its envelopes are all timely, so
// every matrix is MS-valid by construction), the order is reshuffled at
// `depth` randomly placed change points, and every non-source link draws a
// uniform delay in [0, maxDelay]. Source duty skips processes the
// scenario's crash schedule stops before they could broadcast the round —
// a crashed source would leave the round without one, i.e. outside the MS
// model, and the agreement check would rightly refuse to judge such a run;
// skipping keeps the sampled executions inside the model (decisions can
// still break MS later by halting a designated source, which the
// trace-based gate in checkViolations handles).
func sampleSchedule(rng *rand.Rand, n, horizon, maxDelay, depth int, sc *env.Scenario) []matrix {
	prio := rng.Perm(n)
	if depth > horizon {
		depth = horizon
	}
	change := make(map[int]bool, depth)
	if depth > 0 {
		for _, r := range rng.Perm(horizon)[:depth] {
			change[r] = true
		}
	}
	// sendsRound reports whether p is still broadcasting round r envelopes
	// under the crash schedule (it crashes strictly before step r-1 ⇒ no).
	sendsRound := func(p, r int) bool {
		cr, crashes := sc.CrashRound(p)
		return !crashes || cr >= r
	}
	mats := make([]matrix, horizon)
	for r := 0; r < horizon; r++ {
		if change[r] {
			prio = rng.Perm(n)
		}
		src := prio[0]
		for _, p := range prio {
			if sendsRound(p, r+1) {
				src = p
				break
			}
		}
		m := newMatrix(n)
		for i := 0; i < n; i++ {
			if i == src {
				continue
			}
			for j := 0; j < n; j++ {
				if i != j {
					m[i][j] = rng.Intn(maxDelay + 1)
				}
			}
		}
		mats[r] = m
	}
	return mats
}

// sampleTrial draws the complete trace of one randomized trial.
func sampleTrial(cfg *Config, trial int) Trace {
	rng := rand.New(rand.NewSource(trialSeed(cfg.Seed, trial)))
	n := len(cfg.Proposals)
	// Scenario draw first so the schedule stream is independent of whether
	// the trial is faulted.
	sc := cfg.Scenario
	if sc == nil && cfg.ScenarioPct > 0 && rng.Intn(100) < cfg.ScenarioPct {
		sc = env.RandomAdversary(trialSeed(cfg.Seed, trial), n)
	}
	return Trace{
		Algorithm:  cfg.Algorithm,
		Proposals:  cfg.Proposals,
		Tail:       cfg.tail(),
		SyncSteady: true,
		Schedule:   sampleSchedule(rng, n, cfg.horizon(), cfg.maxDelay(), cfg.depth(), sc),
		Scenario:   sc,
	}
}

// randomWave bounds how many trial configurations are materialized at once:
// trials are sampled, fanned over the RunBatch pool and checked wave by
// wave, so memory stays flat at any trial count while results — collected
// in submission order — are independent of both the wave size and the
// parallelism.
const randomWave = 512

// runRandom executes the randomized search.
func runRandom(cfg Config) (*Report, error) {
	report := &Report{Mode: ModeRandom}
	proposals := core.ProposalSet(cfg.Proposals)
	trials := cfg.trials()
	for lo := 0; lo < trials; lo += randomWave {
		hi := lo + randomWave
		if hi > trials {
			hi = trials
		}
		traces := make([]Trace, hi-lo)
		cfgs := make([]sim.Config, hi-lo)
		for i := range traces {
			traces[i] = sampleTrial(&cfg, lo+i)
			cfgs[i] = traces[i].simConfig(cfg.Automaton)
		}
		results, err := sim.RunBatch(context.Background(), cfgs, sim.BatchOpts{Parallelism: cfg.Parallelism})
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			trial := lo + i
			report.Schedules++
			report.Runs++
			if !traces[i].Scenario.Empty() {
				report.Faulted++
			}
			if res.AllCorrectDecided() {
				report.Decided++
			}
			vs := checkViolations(res, proposals, traces[i].Scenario, traces[i].terminationExpected())
			if len(vs) == 0 {
				continue
			}
			for _, v := range vs {
				report.Violations = append(report.Violations, fmt.Sprintf("trial %d: %s", trial, v))
			}
			if len(report.Counterexamples) < cfg.maxCounterexamples() {
				report.Counterexamples = append(report.Counterexamples,
					buildCounterexample(&cfg, traces[i].clone(), trial, vs[0]))
			}
		}
	}
	return report, nil
}
