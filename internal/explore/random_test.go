package explore

import (
	"runtime"
	"strings"
	"testing"

	"anonconsensus/internal/core"
	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

func TestRandomizedESCleanAtN8(t *testing.T) {
	// PCT-style schedule sampling at a size the exhaustive space cannot
	// reach, with the random adversary overlaid on most trials: Algorithm 2
	// must hold every property the environment guarantees.
	rep, err := Run(Config{
		Proposals:   core.DistinctProposals(8),
		Algorithm:   AlgES,
		Mode:        ModeRandom,
		Trials:      400,
		Seed:        1,
		ScenarioPct: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified() {
		t.Fatalf("violations on correct ES:\n%s", strings.Join(rep.Violations[:minInt(3, len(rep.Violations))], "\n"))
	}
	if rep.Schedules != 400 || rep.Runs != 400 {
		t.Errorf("counters: schedules=%d runs=%d, want 400/400", rep.Schedules, rep.Runs)
	}
	if rep.Faulted == 0 || rep.Faulted == rep.Runs {
		t.Errorf("faulted = %d of %d — the 60%% scenario draw should hit some but not all trials", rep.Faulted, rep.Runs)
	}
	if rep.Decided == 0 {
		t.Error("no trial decided — the synchronous tail should let fault-free trials decide")
	}
}

func TestRandomizedESSClean(t *testing.T) {
	rep, err := Run(Config{
		Proposals:   core.DistinctProposals(6),
		Algorithm:   AlgESS,
		Mode:        ModeRandom,
		Trials:      200,
		Seed:        2,
		ScenarioPct: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified() {
		t.Fatalf("violations on correct ESS:\n%s", strings.Join(rep.Violations[:minInt(3, len(rep.Violations))], "\n"))
	}
	if rep.Decided == 0 {
		t.Error("no ESS trial decided")
	}
}

func TestRandomizedReportByteIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the randomized search three times")
	}
	render := func(par int) string {
		rep, err := Run(Config{
			Proposals:   core.DistinctProposals(5),
			Algorithm:   AlgES,
			Mode:        ModeRandom,
			Trials:      300,
			Seed:        3,
			ScenarioPct: 70,
			Parallelism: par,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		var b strings.Builder
		if err := rep.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	want := render(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		if got := render(par); got != want {
			t.Errorf("report diverged between parallelism 1 and %d:\n want: %q\n  got: %q", par, want, got)
		}
	}
}

// brokenValidity wraps ES but decides a non-proposal value once its round
// counter passes a threshold — the injected bug the randomized search must
// find, shrink and replay.
type brokenValidity struct {
	inner giraf.Automaton
}

func (a brokenValidity) Initialize() giraf.Payload { return a.inner.Initialize() }

func (a brokenValidity) Compute(k int, in giraf.Inbox) (giraf.Payload, giraf.Decision) {
	if k >= 3 {
		return nil, giraf.Decision{Decided: true, Value: values.Num(999999)}
	}
	return a.inner.Compute(k, in)
}

func TestRandomizedFindsInjectedBugAndShrinks(t *testing.T) {
	props := core.DistinctProposals(4)
	cfg := Config{
		Proposals:   props,
		Algorithm:   AlgES,
		Mode:        ModeRandom,
		Trials:      20,
		Seed:        4,
		ScenarioPct: 40,
		Automaton: func(i int) giraf.Automaton {
			return brokenValidity{inner: core.NewES(props[i])}
		},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified() {
		t.Fatal("injected validity bug survived the randomized search")
	}
	if len(rep.Counterexamples) == 0 {
		t.Fatal("violations without counterexamples")
	}
	cx := rep.Counterexamples[0]
	if violationKind(cx.Violation) != "validity" {
		t.Fatalf("violation kind = %q, want validity (%s)", violationKind(cx.Violation), cx.Violation)
	}
	if cx.Probes == 0 {
		t.Error("shrinker ran no probes")
	}
	// The shrunk counterexample must be locally minimal in the dimensions
	// the shrinker controls: this bug needs no adversarial delays and no
	// scenario at all, so everything should have been stripped.
	if !cx.Trace.Scenario.Empty() {
		t.Errorf("shrunk trace kept a scenario: %s", cx.Trace.Scenario.Encode())
	}
	if len(cx.Trace.Schedule) != 1 {
		t.Errorf("shrunk schedule has %d rounds, want 1", len(cx.Trace.Schedule))
	}
	for _, row := range cx.Trace.Schedule[0] {
		for _, d := range row {
			if d != 0 {
				t.Errorf("shrunk schedule kept a nonzero delay: %v", cx.Trace.Schedule[0])
			}
		}
	}

	// The trace must survive its text form and replay to the identical
	// violation, deterministically, against the same injected bug.
	enc := cx.Trace.Encode()
	parsed, err := ParseTrace(enc)
	if err != nil {
		t.Fatalf("shrunk trace does not re-parse (%q): %v", enc, err)
	}
	for i := 0; i < 2; i++ {
		replay, err := Run(Config{Mode: ModeReplay, Trace: parsed, Automaton: cfg.Automaton})
		if err != nil {
			t.Fatal(err)
		}
		if len(replay.Violations) == 0 {
			t.Fatalf("replay of %q reproduced nothing", enc)
		}
		if got, ok := firstOfKind(replay.Violations, "validity"); !ok || got != cx.ReplayViolation {
			t.Errorf("replay %d: violation %q, want %q", i, got, cx.ReplayViolation)
		}
	}
}

// neverDecides drops every decision an inner automaton makes: the injected
// liveness bug the termination check must flag on fault-free trials.
type neverDecides struct {
	inner giraf.Automaton
	last  giraf.Payload
}

func (a *neverDecides) Initialize() giraf.Payload {
	a.last = a.inner.Initialize()
	return a.last
}

func (a *neverDecides) Compute(k int, in giraf.Inbox) (giraf.Payload, giraf.Decision) {
	pay, dec := a.inner.Compute(k, in)
	if dec.Decided {
		// The inner automaton would halt; keep rebroadcasting its last
		// payload instead so the run visibly never terminates.
		return a.last, giraf.Decision{}
	}
	if pay != nil {
		a.last = pay
	}
	return a.last, giraf.Decision{}
}

func TestRandomizedFlagsTerminationViolation(t *testing.T) {
	props := core.DistinctProposals(3)
	rep, err := Run(Config{
		Proposals: props,
		Algorithm: AlgES,
		Mode:      ModeRandom,
		Trials:    5,
		Seed:      5,
		Automaton: func(i int) giraf.Automaton {
			return &neverDecides{inner: core.NewES(props[i])}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified() {
		t.Fatal("a never-deciding automaton passed the termination check")
	}
	// The trial prefix hides the kind in Violations; the counterexamples
	// carry the raw message.
	found := false
	for _, cx := range rep.Counterexamples {
		if violationKind(cx.Violation) == "termination" {
			found = true
		}
	}
	if !found {
		t.Errorf("no termination violation among: %v", rep.Violations[:minInt(2, len(rep.Violations))])
	}
}

func TestRandomizedConfigValidation(t *testing.T) {
	valid := Config{
		Proposals: core.DistinctProposals(4),
		Algorithm: AlgES,
		Mode:      ModeRandom,
		Trials:    1,
	}
	if _, err := Run(valid); err != nil {
		t.Fatalf("valid random config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"too many procs": func(c *Config) { c.Proposals = core.DistinctProposals(17) },
		"no procs":       func(c *Config) { c.Proposals = nil },
		"huge horizon":   func(c *Config) { c.Horizon = 65 },
		"negative depth": func(c *Config) { c.Depth = -1 },
		"delay too big":  func(c *Config) { c.MaxDelay = 10 },
		"bad pct":        func(c *Config) { c.ScenarioPct = 101 },
		"pct + scenario": func(c *Config) { c.ScenarioPct = 10; c.Scenario = &env.Scenario{LossPct: 1} },
		"bad separator":  func(c *Config) { c.Proposals = []values.Value{"a|b", "c", "d", "e"} },
		"bad mode":       func(c *Config) { c.Mode = Mode(9) },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := valid
			mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid random config accepted")
			}
		})
	}
}

func TestModeAndAlgorithmStrings(t *testing.T) {
	for want, got := range map[string]string{
		"exhaustive": ModeExhaustive.String(),
		"random":     ModeRandom.String(),
		"replay":     ModeReplay.String(),
	} {
		if got != want {
			t.Errorf("mode string %q, want %q", got, want)
		}
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode must render")
	}
}
