package explore

import (
	"anonconsensus/internal/core"
	"anonconsensus/internal/env"
	"anonconsensus/internal/ordered"
	"anonconsensus/internal/sim"
)

// shrinkTrace minimizes a violating trace by delta debugging: it repeatedly
// probes structurally smaller variants — truncating the schedule horizon,
// zeroing delay-matrix entries, and stripping scenario faults — and keeps a
// variant only when its deterministic replay still violates the *same*
// property (matching on kind, not message: a minimal counterexample usually
// fails with different concrete values). The loop runs to a fixed point, so
// the result is locally minimal: removing any single remaining element
// makes the violation disappear. It returns the minimized trace, the
// violation its replay reproduces, and the number of probe runs executed.
//
// Probes run sequentially on the calling goroutine in a fixed order, so
// shrinking is deterministic and the surrounding report stays byte-identical
// at any parallelism.
func shrinkTrace(cfg *Config, tr Trace, kind, violation string) (Trace, string, int) {
	probes := 0
	// fails replays a candidate and reports whether the original property
	// still breaks, remembering the concrete message.
	fails := func(cand Trace) (string, bool) {
		probes++
		res, err := sim.Run(cand.simConfig(cfg.Automaton))
		if err != nil {
			return "", false // an unrunnable mutation is never an improvement
		}
		vs := checkViolations(res, core.ProposalSet(cand.Proposals), cand.Scenario, cand.terminationExpected())
		return firstOfKind(vs, kind)
	}

	cur := tr.clone()
	for changed := true; changed; {
		changed = false
		// 1. Truncate the schedule from the end: fewer explicitly-scheduled
		// rounds means a shorter counterexample horizon.
		for len(cur.Schedule) > 1 {
			cand := cur.clone()
			cand.Schedule = cand.Schedule[:len(cand.Schedule)-1]
			v, bad := fails(cand)
			if !bad {
				break
			}
			cur, violation, changed = cand, v, true
		}
		// 2. Zero individual delay entries: a zeroed link is a timely link,
		// the least adversarial choice.
		for r := range cur.Schedule {
			for i := range cur.Schedule[r] {
				for j, d := range cur.Schedule[r][i] {
					if d == 0 {
						continue
					}
					cand := cur.clone()
					cand.Schedule[r][i][j] = 0
					if v, bad := fails(cand); bad {
						cur, violation, changed = cand, v, true
					}
				}
			}
		}
		// 3. Strip scenario faults, coarsest first: the whole scenario, then
		// each dimension, then individual partitions and crashes.
		if !cur.Scenario.Empty() {
			cand := cur.clone()
			cand.Scenario = nil
			if v, bad := fails(cand); bad {
				cur, violation, changed = cand, v, true
			}
		}
		if sc := cur.Scenario; sc != nil {
			if sc.LossPct > 0 {
				cand := cur.clone()
				cand.Scenario.LossPct = 0
				if v, bad := fails(cand); bad {
					cur, violation, changed = cand, v, true
				}
			}
			if sc := cur.Scenario; sc != nil && sc.DupPct > 0 {
				cand := cur.clone()
				cand.Scenario.DupPct = 0
				if v, bad := fails(cand); bad {
					cur, violation, changed = cand, v, true
				}
			}
			for idx := 0; cur.Scenario != nil && idx < len(cur.Scenario.Partitions); {
				cand := cur.clone()
				cand.Scenario.Partitions = append(cand.Scenario.Partitions[:idx],
					cand.Scenario.Partitions[idx+1:]...)
				if v, bad := fails(cand); bad {
					cur, violation, changed = cand, v, true
				} else {
					idx++
				}
			}
			for _, pid := range crashPids(cur.Scenario) {
				cand := cur.clone()
				delete(cand.Scenario.Crashes, pid)
				if v, bad := fails(cand); bad {
					cur, violation, changed = cand, v, true
				}
			}
		}
	}
	return cur, violation, probes
}

// crashPids returns the crash-schedule pids in ascending order so shrink
// probing is deterministic.
func crashPids(sc *env.Scenario) []int {
	if sc == nil {
		return nil
	}
	return ordered.Keys(sc.Crashes)
}
