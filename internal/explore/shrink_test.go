package explore

import (
	"errors"
	"testing"

	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

func TestShrinkStripsIrrelevantStructure(t *testing.T) {
	// Hand the shrinker a deliberately bloated trace around the stubborn
	// agreement bug (decides its own value at round 2, regardless of the
	// environment): every delay, every scheduled round beyond the first and
	// the whole scenario are irrelevant and must go.
	props := []values.Value{values.Num(1), values.Num(2)}
	cfg := &Config{
		Proposals: props,
		Algorithm: AlgES,
		Automaton: func(i int) giraf.Automaton { return stubbornAutomaton{v: props[i]} },
	}
	// The trace must exhibit the violation under the checker's gates
	// (agreement is only asserted inside the MS model on link-fault-free
	// runs), so every sampled round keeps a live source and the scenario
	// carries only crash/duplication faults.
	tr := Trace{
		Algorithm:  AlgES,
		Proposals:  props,
		Tail:       10,
		SyncSteady: true,
		Schedule: []matrix{
			{{0, 0}, {2, 0}},
			{{0, 1}, {0, 0}},
			{{0, 0}, {9, 0}},
		},
		Scenario: &env.Scenario{
			Seed:    3,
			DupPct:  20,
			Crashes: map[int]int{1: 9},
		},
	}
	shrunk, violation, probes := shrinkTrace(cfg, tr, "agreement", "agreement violated: seed")
	if probes == 0 {
		t.Fatal("shrinker ran no probes")
	}
	if len(shrunk.Schedule) != 1 {
		t.Errorf("schedule has %d rounds after shrinking, want 1", len(shrunk.Schedule))
	}
	for i, row := range shrunk.Schedule[0] {
		for j, d := range row {
			if d != 0 {
				t.Errorf("entry [%d][%d] = %d survived shrinking", i, j, d)
			}
		}
	}
	if !shrunk.Scenario.Empty() {
		t.Errorf("scenario survived shrinking: %s", shrunk.Scenario.Encode())
	}
	if violationKind(violation) != "agreement" {
		t.Errorf("final violation %q is not an agreement breach", violation)
	}

	// Local minimality: the reported violation must reproduce on replay.
	rep, err := Run(Config{Mode: ModeReplay, Trace: &shrunk, Automaton: cfg.Automaton})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := firstOfKind(rep.Violations, "agreement"); !ok || got != violation {
		t.Errorf("replay violation %q, want %q", got, violation)
	}
}

func TestViolationKind(t *testing.T) {
	for msg, want := range map[string]string{
		"agreement violated: decisions {a b}":   "agreement",
		"validity violated: process 1 decided":  "validity",
		"termination violated: 2 of 3":          "termination",
		"irrevocability violated: process 0":    "irrevocability",
		"something else entirely":               "something else entirely",
		"MS violated in round 3: no sender ...": "MS",
	} {
		if got := violationKind(msg); got != want {
			t.Errorf("violationKind(%q) = %q, want %q", msg, got, want)
		}
	}
}

func TestConfigRejectsVacuousScenario(t *testing.T) {
	// A scenario whose crash schedule stops every process makes every run
	// vacuous; validation must reject it with the typed env.ErrAllCrashed.
	cfg := Config{
		Proposals: []values.Value{values.Num(1), values.Num(2)},
		Algorithm: AlgES,
		Horizon:   2,
		Scenario:  &env.Scenario{Crashes: map[int]int{0: 1, 1: 1}},
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("all-crash scenario accepted")
	}
	if !errors.Is(err, env.ErrAllCrashed) {
		t.Errorf("error %v does not wrap env.ErrAllCrashed", err)
	}

	// The same schedule in random mode is rejected identically.
	cfg.Mode = ModeRandom
	cfg.Horizon = 0
	if _, err := Run(cfg); !errors.Is(err, env.ErrAllCrashed) {
		t.Errorf("random mode: error %v does not wrap env.ErrAllCrashed", err)
	}

	// Leaving one process alive is legal (f ≤ n−1).
	cfg.Mode = ModeExhaustive
	cfg.Horizon = 2
	cfg.Scenario = &env.Scenario{Crashes: map[int]int{1: 1}}
	if _, err := Run(cfg); err != nil {
		t.Errorf("n−1 crashes rejected: %v", err)
	}
}

func TestExhaustiveWithScenarioOverlay(t *testing.T) {
	// A duplication-heavy overlay must not shake Agreement/Validity on the
	// exhaustive space (set semantics absorb duplicates), and the report
	// must count the faulted runs.
	rep, err := Run(Config{
		Proposals: []values.Value{values.Num(1), values.Num(2)},
		Algorithm: AlgES,
		Horizon:   3,
		Scenario:  &env.Scenario{Seed: 11, DupPct: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified() {
		t.Fatalf("duplication broke the exhaustive space: %v", rep.Violations[0])
	}
	if rep.Faulted != rep.Runs {
		t.Errorf("faulted = %d, want every run (%d)", rep.Faulted, rep.Runs)
	}
}
