package explore

import (
	"fmt"
	"strconv"
	"strings"

	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

// Trace is one fully-determined exploration run: the automaton family, the
// proposals, the explicit per-round delay schedule, the steady state beyond
// it, and the fault scenario. A Trace is pure data — Encode renders the
// canonical text form, ParseTrace is its inverse, and replaying the same
// trace always reproduces the same run byte for byte.
//
// The grammar (fields ';'-separated, order canonical on output and free on
// input):
//
//	alg=ES;props=P0|P1|…;tail=T;steady=sync|repeat;sched=M1/M2/…;scenario=…
//
// where each matrix Mk is its rows joined by '.', each row one digit per
// receiver (delay 0–9, diagonal 0), and scenario is env.Scenario.Encode's
// form (omitted when empty). tail is the number of steady-state rounds
// executed after the explicit schedule: all-timely rounds under steady=sync
// (the randomized sampler's tail), repetitions of the last matrix under
// steady=repeat (the exhaustive adversary).
type Trace struct {
	Algorithm Algorithm
	Proposals []values.Value
	Tail      int
	// SyncSteady selects the steady state beyond the schedule: fully timely
	// rounds (true, "steady=sync") or repetition of the last matrix (false,
	// "steady=repeat").
	SyncSteady bool
	Schedule   []matrix
	Scenario   *env.Scenario
}

// clone deep-copies the trace so shrink mutations never alias.
func (t Trace) clone() Trace {
	out := t
	out.Proposals = append([]values.Value(nil), t.Proposals...)
	out.Schedule = cloneSchedule(t.Schedule)
	out.Scenario = t.Scenario.Clone()
	return out
}

// validateTraceValue rejects proposal values the trace text form cannot
// carry unambiguously.
func validateTraceValue(p values.Value) error {
	if !p.Valid() {
		return fmt.Errorf("explore: trace proposal %q invalid", string(p))
	}
	if strings.ContainsAny(string(p), ";|") {
		return fmt.Errorf("explore: trace proposal %q contains a reserved separator (';' or '|')", string(p))
	}
	return nil
}

// validate checks the trace is executable and encodable.
func (t *Trace) validate() error {
	switch t.Algorithm {
	case AlgES, AlgESS:
	default:
		return fmt.Errorf("explore: trace has unknown algorithm %d", int(t.Algorithm))
	}
	n := len(t.Proposals)
	if n < 1 || n > maxRandomProcs {
		return fmt.Errorf("explore: trace has %d proposals, want 1..%d", n, maxRandomProcs)
	}
	for _, p := range t.Proposals {
		if err := validateTraceValue(p); err != nil {
			return err
		}
	}
	if t.Tail < 0 || t.Tail > maxTraceTail {
		return fmt.Errorf("explore: trace tail %d outside [0,%d]", t.Tail, maxTraceTail)
	}
	if len(t.Schedule) < 1 || len(t.Schedule) > maxTraceHorizon {
		return fmt.Errorf("explore: trace schedule has %d rounds, want 1..%d", len(t.Schedule), maxTraceHorizon)
	}
	for r, m := range t.Schedule {
		if len(m) != n {
			return fmt.Errorf("explore: trace round %d matrix is %d×?, want %d×%d", r+1, len(m), n, n)
		}
		for i, row := range m {
			if len(row) != n {
				return fmt.Errorf("explore: trace round %d row %d has %d entries, want %d", r+1, i, len(row), n)
			}
			for j, d := range row {
				if d < 0 || d > maxTraceDelay {
					return fmt.Errorf("explore: trace round %d delay [%d][%d] = %d outside 0..%d", r+1, i, j, d, maxTraceDelay)
				}
				if i == j && d != 0 {
					return fmt.Errorf("explore: trace round %d has nonzero self-delay for process %d", r+1, i)
				}
			}
		}
	}
	if err := t.Scenario.Validate(n); err != nil {
		return fmt.Errorf("explore: trace scenario: %w", err)
	}
	return nil
}

// terminationExpected reports whether the run's environment guarantees
// Termination, making non-decision a violation: the steady state must be
// synchronous (so ES eventually holds for the survivors), long enough to
// let the algorithms converge, and the scenario must never suppress a
// delivery (crashes and duplication are fine; loss and partitions void the
// reliable-broadcast assumption the guarantee rests on).
func (t *Trace) terminationExpected() bool {
	return t.SyncSteady && t.Tail >= 8 && t.Scenario.LinkFaultFree()
}

// simConfig assembles the simulator configuration that executes the trace.
// A nil automaton override selects the trace's own algorithm.
func (t *Trace) simConfig(automaton func(i int) giraf.Automaton) sim.Config {
	if automaton == nil {
		automaton = algFactory(t.Algorithm, t.Proposals)
	}
	return sim.Config{
		N:           len(t.Proposals),
		Automaton:   automaton,
		Policy:      &schedulePolicy{matrices: t.Schedule, syncSteady: t.SyncSteady},
		Scenario:    t.Scenario,
		MaxRounds:   len(t.Schedule) + t.Tail,
		RecordTrace: true,
	}
}

// Encode renders the canonical text form (see the type comment for the
// grammar); ParseTrace is its inverse and the canonical form is a fixed
// point of the round trip.
func (t *Trace) Encode() string {
	props := make([]string, len(t.Proposals))
	for i, p := range t.Proposals {
		props[i] = string(p)
	}
	steady := "repeat"
	if t.SyncSteady {
		steady = "sync"
	}
	var sched strings.Builder
	for r, m := range t.Schedule {
		if r > 0 {
			sched.WriteByte('/')
		}
		for i, row := range m {
			if i > 0 {
				sched.WriteByte('.')
			}
			for _, d := range row {
				sched.WriteByte(byte('0' + d))
			}
		}
	}
	parts := []string{
		"alg=" + t.Algorithm.String(),
		"props=" + strings.Join(props, "|"),
		"tail=" + strconv.Itoa(t.Tail),
		"steady=" + steady,
		"sched=" + sched.String(),
	}
	if enc := t.Scenario.Encode(); enc != "" {
		parts = append(parts, "scenario="+enc)
	}
	return strings.Join(parts, ";")
}

// ParseTrace parses the canonical trace text form produced by Encode. The
// tail and steady fields are optional on input (defaults: tail=8,
// steady=sync); the result is fully validated.
func ParseTrace(text string) (*Trace, error) {
	tr := &Trace{Tail: 8, SyncSteady: true}
	var haveAlg, haveProps, haveSched bool
	for _, field := range strings.Split(strings.TrimSpace(text), ";") {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("explore: trace field %q is not key=value", field)
		}
		switch key {
		case "alg":
			switch val {
			case "ES":
				tr.Algorithm = AlgES
			case "ESS":
				tr.Algorithm = AlgESS
			default:
				return nil, fmt.Errorf("explore: trace algorithm %q (want ES or ESS)", val)
			}
			haveAlg = true
		case "props":
			for _, p := range strings.Split(val, "|") {
				tr.Proposals = append(tr.Proposals, values.Value(p))
			}
			haveProps = true
		case "tail":
			v, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("explore: trace tail %q: %w", val, err)
			}
			tr.Tail = v
		case "steady":
			switch val {
			case "sync":
				tr.SyncSteady = true
			case "repeat":
				tr.SyncSteady = false
			default:
				return nil, fmt.Errorf("explore: trace steady state %q (want sync or repeat)", val)
			}
		case "sched":
			for _, mtext := range strings.Split(val, "/") {
				rows := strings.Split(mtext, ".")
				m := make(matrix, len(rows))
				for i, rtext := range rows {
					m[i] = make([]int, len(rtext))
					for j := 0; j < len(rtext); j++ {
						d := rtext[j]
						if d < '0' || d > '9' {
							return nil, fmt.Errorf("explore: trace delay %q is not a digit", string(d))
						}
						m[i][j] = int(d - '0')
					}
				}
				tr.Schedule = append(tr.Schedule, m)
			}
			haveSched = true
		case "scenario":
			sc, err := env.ParseScenario(val)
			if err != nil {
				return nil, fmt.Errorf("explore: trace scenario: %w", err)
			}
			tr.Scenario = sc
		default:
			return nil, fmt.Errorf("explore: unknown trace field %q", key)
		}
	}
	if !haveAlg || !haveProps || !haveSched {
		return nil, fmt.Errorf("explore: trace needs at least alg, props and sched fields")
	}
	if err := tr.validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
