package explore

import (
	"strings"
	"testing"

	"anonconsensus/internal/core"
	"anonconsensus/internal/env"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

func TestTraceEncodeParseRoundTrip(t *testing.T) {
	tr := Trace{
		Algorithm:  AlgESS,
		Proposals:  []values.Value{values.Num(1), values.Num(2), values.Num(3)},
		Tail:       10,
		SyncSteady: true,
		Schedule: []matrix{
			{{0, 1, 2}, {0, 0, 3}, {1, 0, 0}},
			{{0, 0, 0}, {2, 0, 2}, {0, 1, 0}},
		},
		Scenario: &env.Scenario{
			Seed:       7,
			LossPct:    10,
			DupPct:     5,
			Crashes:    map[int]int{2: 4},
			Partitions: []env.Partition{{From: 2, Until: 5, Cut: 1}},
		},
	}
	enc := tr.Encode()
	back, err := ParseTrace(enc)
	if err != nil {
		t.Fatalf("ParseTrace(%q): %v", enc, err)
	}
	if got := back.Encode(); got != enc {
		t.Fatalf("round trip changed the encoding:\n was: %s\n got: %s", enc, got)
	}
	if back.Algorithm != AlgESS || len(back.Proposals) != 3 || back.Tail != 10 || !back.SyncSteady {
		t.Errorf("round trip lost fields: %+v", back)
	}
	if len(back.Schedule) != 2 || back.Schedule[0][0][2] != 2 || back.Schedule[1][1][0] != 2 {
		t.Errorf("round trip lost schedule entries: %v", back.Schedule)
	}
	if back.Scenario == nil || back.Scenario.LossPct != 10 || back.Scenario.Crashes[2] != 4 {
		t.Errorf("round trip lost scenario: %+v", back.Scenario)
	}
}

func TestTraceParseDefaults(t *testing.T) {
	tr, err := ParseTrace("alg=ES;props=a|b;sched=00.00")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tail != 8 || !tr.SyncSteady {
		t.Errorf("defaults wrong: tail=%d sync=%v, want 8/true", tr.Tail, tr.SyncSteady)
	}
	if tr.Scenario != nil {
		t.Errorf("scenario should default to nil, got %+v", tr.Scenario)
	}
}

func TestTraceParseRejectsJunk(t *testing.T) {
	for name, text := range map[string]string{
		"empty":              "",
		"not key=value":      "alg",
		"bad alg":            "alg=XX;props=a;sched=0",
		"no sched":           "alg=ES;props=a",
		"no props":           "alg=ES;sched=0",
		"bad delay char":     "alg=ES;props=a|b;sched=0x.00",
		"ragged matrix":      "alg=ES;props=a|b;sched=00.0",
		"wrong matrix size":  "alg=ES;props=a|b;sched=000.000.000",
		"self delay":         "alg=ES;props=a|b;sched=10.01",
		"bad tail":           "alg=ES;props=a|b;sched=00.00;tail=x",
		"negative tail":      "alg=ES;props=a|b;sched=00.00;tail=-1",
		"bad steady":         "alg=ES;props=a|b;sched=00.00;steady=maybe",
		"unknown field":      "alg=ES;props=a|b;sched=00.00;zap=1",
		"invalid proposal":   "alg=ES;props=|b;sched=00.00",
		"bad scenario":       "alg=ES;props=a|b;sched=00.00;scenario=loss=200",
		"scenario crash oob": "alg=ES;props=a|b;sched=00.00;scenario=crash=7@1",
		"all crash":          "alg=ES;props=a|b;sched=00.00;scenario=crash=0@1,crash=1@1",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseTrace(text); err == nil {
				t.Errorf("ParseTrace(%q) accepted junk", text)
			}
		})
	}
}

func TestTraceValidateRejectsReservedSeparators(t *testing.T) {
	tr := Trace{
		Algorithm: AlgES,
		Proposals: []values.Value{"a;b"},
		Schedule:  []matrix{{{0}}},
	}
	if err := tr.validate(); err == nil || !strings.Contains(err.Error(), "separator") {
		t.Errorf("proposal with ';' accepted: %v", err)
	}
}

func TestTraceTerminationExpected(t *testing.T) {
	base := Trace{SyncSteady: true, Tail: 8}
	if !base.terminationExpected() {
		t.Error("fault-free sync trace must expect termination")
	}
	repeat := base
	repeat.SyncSteady = false
	if repeat.terminationExpected() {
		t.Error("repeat-steady trace must not expect termination")
	}
	short := base
	short.Tail = 3
	if short.terminationExpected() {
		t.Error("short-tail trace must not expect termination")
	}
	lossy := base
	lossy.Scenario = &env.Scenario{LossPct: 1}
	if lossy.terminationExpected() {
		t.Error("lossy trace must not expect termination")
	}
	dup := base
	dup.Scenario = &env.Scenario{DupPct: 50, Crashes: map[int]int{1: 3}}
	if !dup.terminationExpected() {
		t.Error("duplication and crashes alone must not suppress the termination check")
	}
}

func TestReplayMode(t *testing.T) {
	// A hand-written synchronous two-process trace must verify cleanly and
	// decide.
	tr, err := ParseTrace("alg=ES;props=000000000001|000000000002;tail=8;steady=sync;sched=00.00/00.00")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Mode: ModeReplay, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified() {
		t.Fatalf("clean replay reported violations: %v", rep.Violations)
	}
	if rep.Runs != 1 || rep.Schedules != 1 || rep.Decided != 1 {
		t.Errorf("replay counters off: %+v", rep)
	}
	if rep.Mode != ModeReplay {
		t.Errorf("mode = %v", rep.Mode)
	}
}

func TestReplayModeNeedsTrace(t *testing.T) {
	if _, err := Run(Config{Mode: ModeReplay}); err == nil {
		t.Error("replay without a trace accepted")
	}
}

func TestAgreementGatedOutsideMS(t *testing.T) {
	// A static schedule can designate a source that the crash schedule has
	// already stopped; the executed round then has no live timely source,
	// the run leaves the MS model, and diverging decisions are permitted —
	// the paper's Agreement claim quantifies only over executions where the
	// environment properties hold. This exact trace (found by the
	// randomized search before the MS gate existed) makes ESS split 3 vs 1:
	// round 3's source is process 3, crashed at step 2. The checker must
	// NOT flag it.
	tr, err := ParseTrace("alg=ESS;props=000000000001|000000000002|000000000003|000000000004;tail=12;steady=sync;sched=0000.0001.0100.0020/0000.3000.0000.0000/0200.3000.3000.0000;scenario=seed=42,crash=3@2")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Mode: ModeReplay, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified() {
		t.Fatalf("out-of-model run flagged: %v", rep.Violations)
	}
	// The run really does split-brain — the gate, not the run, is what
	// keeps the report clean.
	res, err := sim.Run(tr.simConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions().Len() < 2 {
		t.Fatal("expected the out-of-model run to produce diverging decisions; the regression trace has gone stale")
	}
	if err := res.Trace.CheckMSThrough(res.LastDecisionRound()); err == nil {
		t.Fatal("expected the executed run to violate MS before its last decision")
	}
}

func TestRandomizedSamplerSkipsCrashedSources(t *testing.T) {
	// With a crash-only scenario (link-fault-free ⇒ agreement asserted),
	// sampled schedules must keep a live source in every round: a correct
	// ES search stays verified because the sampler never hands source duty
	// to a process the scenario already stopped.
	rep, err := Run(Config{
		Proposals: core.DistinctProposals(4),
		Algorithm: AlgES,
		Mode:      ModeRandom,
		Trials:    300,
		Seed:      6,
		Scenario:  &env.Scenario{Crashes: map[int]int{1: 2, 3: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified() {
		t.Fatalf("crash-only ES search flagged violations:\n%s", rep.Violations[0])
	}
	if rep.Decided == 0 {
		t.Error("no trial decided")
	}

	// Same shape for ESS, whose agreement is the property the MS gate
	// exists for.
	rep, err = Run(Config{
		Proposals: core.DistinctProposals(4),
		Algorithm: AlgESS,
		Mode:      ModeRandom,
		Trials:    300,
		Seed:      7,
		Scenario:  &env.Scenario{Crashes: map[int]int{3: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified() {
		t.Fatalf("crash-only ESS search flagged violations:\n%s", rep.Violations[0])
	}
}
