package expt

import (
	"context"
	"runtime"
	"sync"

	"anonconsensus/internal/sim"
)

// trialParallelism is the configured worker bound for the trial plane;
// 0 means GOMAXPROCS.
var trialParallelism int

// SetParallelism sets how many workers the experiment harness fans
// independent trials across (cmd/anonsim exposes it as -parallel); n ≤ 0
// restores the default, GOMAXPROCS. Rendered tables are byte-identical at
// any setting — trials share nothing and results are collected in
// submission order — so the knob trades wall-clock for cores, never
// output. Call it before running experiments, not concurrently with them.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	trialParallelism = n
}

func parallelism() int {
	if trialParallelism > 0 {
		return trialParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runConfigs fans independent simulation configs across the shared batch
// runner; results come back in submission order.
func runConfigs(cfgs []sim.Config) ([]*sim.Result, error) {
	return sim.RunBatch(context.Background(), cfgs, sim.BatchOpts{Parallelism: parallelism()})
}

// forTrials runs fn(0), …, fn(n-1) across the worker pool for trial loops
// whose runner is not a bare sim.Config (weak-set drivers, Σ autopsies).
// Each fn writes its result into a caller-owned slot i, so collection
// order — and therefore rendered output — matches the sequential loop.
// Every trial runs even when one fails; the first error in index order is
// returned.
func forTrials(n int, fn func(i int) error) error {
	errs := make([]error, n)
	workers := parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			//detlint:goroutine forTrials is the expt arm of the RunBatch pool discipline: workers write caller-owned slots, collection order is the sequential loop's
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
