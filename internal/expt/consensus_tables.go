package expt

import (
	"fmt"
	"io"

	"anonconsensus/internal/core"
	"anonconsensus/internal/fd"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
)

// seedsFor returns the averaging seeds for a grid point.
func seedsFor(quick bool) []int64 {
	if quick {
		return []int64{1, 2}
	}
	return []int64{1, 2, 3, 4, 5, 6, 7, 8}
}

// The tables below fan their grids over the batch runner: configs are
// built in loop order, run across the worker pool, and post-processed in
// the same loop order, so rendered output (and the first error reported)
// is byte-identical to the sequential loops they replaced.

// runT1: ES decision round vs n, synchronous-from-start and GST=10.
func runT1(w io.Writer, quick bool) error {
	ns := []int{2, 4, 8, 16, 32, 64}
	if quick {
		ns = []int{2, 4, 8}
	}
	seeds := seedsFor(quick)
	var cfgs []sim.Config
	for _, n := range ns {
		props := core.DistinctProposals(n)
		cfgs = append(cfgs, core.ConfigES(props, core.RunOpts{Policy: sim.Synchronous{}}))
		for _, seed := range seeds {
			cfgs = append(cfgs, core.ConfigES(props, core.RunOpts{
				Policy: &sim.ES{GST: 10, Pre: sim.MS{Seed: seed, MaxDelay: 3}},
			}))
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return err
	}
	t := newTable("n", "rounds (GST=0)", "rounds (GST=10, mean)", "broadcasts (GST=10, mean)")
	k := 0
	for _, n := range ns {
		syncRes := results[k]
		k++
		if !syncRes.AllCorrectDecided() {
			return fmt.Errorf("T1: undecided synchronous run at n=%d", n)
		}
		var rounds, bcasts []int
		for _, seed := range seeds {
			res := results[k]
			k++
			if err := res.CheckAgreement(); err != nil {
				return fmt.Errorf("T1 n=%d seed=%d: %w", n, seed, err)
			}
			if !res.AllCorrectDecided() {
				return fmt.Errorf("T1: undecided run at n=%d seed=%d", n, seed)
			}
			rounds = append(rounds, res.LastDecisionRound())
			bcasts = append(bcasts, res.Metrics.Broadcasts)
		}
		t.add(n, syncRes.LastDecisionRound(), fmt.Sprintf("%.1f", mean(rounds)), fmt.Sprintf("%.0f", mean(bcasts)))
	}
	return t.write(w)
}

// runT2: ES decision round vs GST at fixed n.
func runT2(w io.Writer, quick bool) error {
	gsts := []int{0, 4, 8, 16, 32, 64}
	if quick {
		gsts = []int{0, 4, 8}
	}
	const n = 8
	seeds := seedsFor(quick)
	var cfgs []sim.Config
	for _, gst := range gsts {
		for _, seed := range seeds {
			cfgs = append(cfgs, core.ConfigES(core.DistinctProposals(n), core.RunOpts{
				// Alternating pre-GST sources keep the system undecided
				// until stabilization, so GST is actually load-bearing.
				Policy: &sim.ES{GST: gst, Pre: sim.MS{Seed: seed, Alternate: true}},
			}))
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return err
	}
	t := newTable("GST", "first decision (mean)", "last decision (mean)", "last − GST")
	k := 0
	for _, gst := range gsts {
		var firsts, lasts []int
		for _, seed := range seeds {
			res := results[k]
			k++
			if !res.AllCorrectDecided() {
				return fmt.Errorf("T2: undecided run at gst=%d seed=%d", gst, seed)
			}
			firsts = append(firsts, res.FirstDecisionRound())
			lasts = append(lasts, res.LastDecisionRound())
		}
		t.add(gst, fmt.Sprintf("%.1f", mean(firsts)), fmt.Sprintf("%.1f", mean(lasts)),
			fmt.Sprintf("%.1f", mean(lasts)-float64(gst)))
	}
	return t.write(w)
}

// runT3: ESS decision round vs n under a single stable source.
func runT3(w io.Writer, quick bool) error {
	ns := []int{2, 4, 8, 16}
	if quick {
		ns = []int{2, 4}
	}
	const gst = 8
	seeds := seedsFor(quick)
	var cfgs []sim.Config
	hists := make([]int, len(ns)*len(seeds))
	for ni, n := range ns {
		for si, seed := range seeds {
			props := core.DistinctProposals(n)
			hist := &hists[ni*len(seeds)+si]
			cfgs = append(cfgs, core.ConfigESS(props, core.RunOpts{
				Policy:    &sim.ESS{GST: gst, StableSource: int(seed) % n, Pre: sim.MS{Seed: seed, Alternate: true}},
				MaxRounds: 600,
				// Runs on the worker executing this one config; *hist is
				// owned by this run until the batch returns.
				OnRound: func(r int, e *sim.Engine) {
					for i := 0; i < e.N(); i++ {
						if a, ok := e.Automaton(i).(*core.ESS); ok && !e.Proc(i).Halted() {
							if l := a.History().Len(); l > *hist {
								*hist = l
							}
						}
					}
				},
			}))
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return err
	}
	t := newTable("n", "last decision (mean)", "last decision (max)", "max history len")
	k := 0
	for _, n := range ns {
		var lasts []int
		maxLast, maxHist := 0, 0
		for _, seed := range seeds {
			res, hist := results[k], hists[k]
			k++
			if err := res.CheckAgreement(); err != nil {
				return fmt.Errorf("T3 n=%d seed=%d: %w", n, seed, err)
			}
			if !res.AllCorrectDecided() {
				return fmt.Errorf("T3: undecided run at n=%d seed=%d", n, seed)
			}
			lasts = append(lasts, res.LastDecisionRound())
			if l := res.LastDecisionRound(); l > maxLast {
				maxLast = l
			}
			if hist > maxHist {
				maxHist = hist
			}
		}
		t.add(n, fmt.Sprintf("%.1f", mean(lasts)), maxLast, maxHist)
	}
	return t.write(w)
}

// runT4: pseudo leader election convergence vs the ID-based Ω baseline.
func runT4(w io.Writer, quick bool) error {
	type point struct{ n, distinct int }
	grid := []point{{3, 2}, {5, 2}, {5, 5}, {9, 3}}
	if quick {
		grid = []point{{3, 2}, {5, 2}}
	}
	const gst = 8
	seeds := seedsFor(quick)
	var cfgs []sim.Config
	var finish []func(*sim.Result) (int, error)
	for _, pt := range grid {
		for _, seed := range seeds {
			src := int(seed) % pt.n
			cfg, fin := leaderStableTrial(pt.n, pt.distinct, gst, src, seed)
			cfgs, finish = append(cfgs, cfg), append(finish, fin)
			cfg, fin = omegaStableTrial(pt.n, gst, src, seed)
			cfgs, finish = append(cfgs, cfg), append(finish, fin)
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return err
	}
	t := newTable("n", "#values", "anon leader stable at (mean)", "Ω(IDs) stable at (mean)")
	k := 0
	for _, pt := range grid {
		var anonRounds, omegaRounds []int
		for range seeds {
			anon, err := finish[k](results[k])
			if err != nil {
				return err
			}
			k++
			omega, err := finish[k](results[k])
			if err != nil {
				return err
			}
			k++
			anonRounds = append(anonRounds, anon)
			omegaRounds = append(omegaRounds, omega)
		}
		t.add(pt.n, pt.distinct, fmt.Sprintf("%.1f", mean(anonRounds)), fmt.Sprintf("%.1f", mean(omegaRounds)))
	}
	return t.write(w)
}

// leaderStableTrial builds the ESS run whose finisher returns the first
// round from which the self-considered leader set stayed stable until the
// first decision.
func leaderStableTrial(n, distinct, gst, src int, seed int64) (sim.Config, func(*sim.Result) (int, error)) {
	props := core.SplitProposals(n, distinct)
	type sample struct {
		round   int
		leaders string
	}
	var samples []sample
	cfg := core.ConfigESS(props, core.RunOpts{
		Policy:    &sim.ESS{GST: gst, StableSource: src, Pre: sim.MS{Seed: seed, Alternate: true}},
		MaxRounds: 600,
		OnRound: func(r int, e *sim.Engine) {
			key := ""
			for i := 0; i < e.N(); i++ {
				if a, ok := e.Automaton(i).(*core.ESS); ok && !e.Proc(i).Halted() && a.IsLeader() {
					key += fmt.Sprintf("%d,", i)
				}
			}
			samples = append(samples, sample{round: r, leaders: key})
		},
	})
	finish := func(res *sim.Result) (int, error) {
		if !res.AllCorrectDecided() {
			return 0, fmt.Errorf("T4: undecided ESS run (n=%d seed=%d)", n, seed)
		}
		end := res.FirstDecisionRound()
		stable := end
		for i := len(samples) - 1; i > 0; i-- {
			if samples[i].round >= end {
				continue
			}
			if samples[i].leaders != samples[i-1].leaders {
				break
			}
			stable = samples[i].round
		}
		return stable, nil
	}
	return cfg, finish
}

// omegaStableTrial builds the ID-based Ω tracker run on the same schedule
// shape; its finisher returns the first round from which all leader
// estimates equal the source and never change again.
func omegaStableTrial(n, gst, src int, seed int64) (sim.Config, func(*sim.Result) (int, error)) {
	trackers := make([]*fd.OmegaTracker, n)
	lastUnstable := 0
	const rounds = 300
	cfg := sim.Config{
		N: n,
		Automaton: func(i int) giraf.Automaton {
			trackers[i] = fd.NewOmegaTracker(i)
			return trackers[i]
		},
		Policy:    &sim.ESS{GST: gst, StableSource: src, Pre: sim.MS{Seed: seed, Alternate: true}},
		MaxRounds: rounds,
		OnRound: func(r int, e *sim.Engine) {
			for _, tr := range trackers {
				if tr.Leader() != src {
					lastUnstable = r
					return
				}
			}
		},
	}
	finish := func(*sim.Result) (int, error) {
		if lastUnstable >= rounds {
			return 0, fmt.Errorf("T4: Ω never stabilized (n=%d seed=%d)", n, seed)
		}
		return lastUnstable + 1, nil
	}
	return cfg, finish
}

// runT5: decision rounds under crash sweeps, ES and ESS.
func runT5(w io.Writer, quick bool) error {
	const n = 8
	crashCounts := []int{0, 2, 4, 7}
	if quick {
		crashCounts = []int{0, 4}
	}
	seeds := seedsFor(quick)
	var cfgs []sim.Config
	for _, f := range crashCounts {
		for _, seed := range seeds {
			crashes := make(map[int]int)
			for i := 0; i < f; i++ {
				crashes[i] = 2*i + 1 // staggered crashes
			}
			props := core.DistinctProposals(n)
			cfgs = append(cfgs, core.ConfigES(props, core.RunOpts{
				Policy:  &sim.ES{GST: 10, Pre: sim.MS{Seed: seed}},
				Crashes: crashes,
			}))
			// The stable source must survive: use the highest index (never
			// crashed in the staggered schedule).
			cfgs = append(cfgs, core.ConfigESS(props, core.RunOpts{
				Policy:    &sim.ESS{GST: 10, StableSource: n - 1, Pre: sim.MS{Seed: seed}},
				Crashes:   crashes,
				MaxRounds: 600,
			}))
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return err
	}
	t := newTable("crashes", "ES last decision (mean)", "ESS last decision (mean)")
	k := 0
	for _, f := range crashCounts {
		var esRounds, essRounds []int
		for _, seed := range seeds {
			esRes, essRes := results[k], results[k+1]
			k += 2
			if !esRes.AllCorrectDecided() {
				return fmt.Errorf("T5: undecided ES run (f=%d seed=%d)", f, seed)
			}
			if !essRes.AllCorrectDecided() {
				return fmt.Errorf("T5: undecided ESS run (f=%d seed=%d)", f, seed)
			}
			esRounds = append(esRounds, esRes.LastDecisionRound())
			essRounds = append(essRounds, essRes.LastDecisionRound())
		}
		t.add(f, fmt.Sprintf("%.1f", mean(esRounds)), fmt.Sprintf("%.1f", mean(essRounds)))
	}
	return t.write(w)
}
