package expt

import (
	"fmt"
	"io"

	"anonconsensus/internal/explore"
	"anonconsensus/internal/values"
)

// runX1: bounded exhaustive verification — every MS-valid {0,1}-delay
// schedule (and crash placement) for tiny systems, model-checking style.
func runX1(w io.Writer, quick bool) error {
	type job struct {
		label   string
		cfg     explore.Config
		skipOnQ bool
	}
	two := []values.Value{values.Num(1), values.Num(2)}
	three := []values.Value{values.Num(1), values.Num(2), values.Num(3)}
	jobs := []job{
		{
			label: "ES n=2 horizon=6 + crash sweep",
			cfg:   explore.Config{Proposals: two, Algorithm: explore.AlgES, Horizon: 6, CrashSweeps: true},
		},
		{
			label: "ESS n=2 horizon=5 + crash sweep",
			cfg:   explore.Config{Proposals: two, Algorithm: explore.AlgESS, Horizon: 5, Tail: 12, CrashSweeps: true},
		},
		{
			label:   "ES n=3 horizon=4 (sampled 1/53)",
			cfg:     explore.Config{Proposals: three, Algorithm: explore.AlgES, Horizon: 4, SampleEvery: 53},
			skipOnQ: true,
		},
	}
	t := newTable("space", "schedules", "runs", "decided", "violations")
	for _, j := range jobs {
		if quick && j.skipOnQ {
			continue
		}
		if quick {
			j.cfg.Horizon = minHorizon(j.cfg.Horizon, 4)
		}
		rep, err := explore.Run(j.cfg)
		if err != nil {
			return fmt.Errorf("X1 %s: %w", j.label, err)
		}
		verdict := "none (verified)"
		if !rep.Verified() {
			verdict = fmt.Sprintf("%d (FIRST: %s)", len(rep.Violations), rep.Violations[0])
		}
		t.add(j.label, rep.Schedules, rep.Runs, rep.Decided, verdict)
	}
	return t.write(w)
}

func minHorizon(h, cap int) int {
	if h > cap {
		return cap
	}
	return h
}
