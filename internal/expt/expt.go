// Package expt is the experiment harness: one entry per table (T1–T10) and
// figure (F1–F3) of EXPERIMENTS.md, each regenerating its numbers from
// scratch. The paper itself is a theory paper with no empirical section, so
// these experiments quantify its theorems; the mapping from claims to
// experiment ids lives in DESIGN.md §4.
//
// cmd/anonsim renders the tables; the repository-root benchmarks call the
// same entry points so the harness is exercised both ways.
package expt

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Experiment is one runnable table/figure generator.
type Experiment struct {
	// ID is the experiment id (T1..T10, F1..F3).
	ID string
	// Title is the one-line description shown in listings.
	Title string
	// Run executes the experiment and writes its table to w. Quick shrinks
	// the parameter grid for smoke tests and benchmarks.
	Run func(w io.Writer, quick bool) error
}

// All returns every experiment in display order.
func All() []Experiment {
	return []Experiment{
		{ID: "T1", Title: "ES consensus: decision round vs n (Theorem 1)", Run: runT1},
		{ID: "T2", Title: "ES consensus: decision round vs GST (Theorem 1)", Run: runT2},
		{ID: "T3", Title: "ESS consensus: decision round vs n (Theorem 2)", Run: runT3},
		{ID: "T4", Title: "Pseudo leader election vs ID-based Ω: convergence round (§4, Lemmas 4–6)", Run: runT4},
		{ID: "T5", Title: "Crash tolerance: decision round vs crash fraction (any #crashes)", Run: runT5},
		{ID: "T6", Title: "Cost of anonymity: message sizes, ES vs ESS vs Ω baseline", Run: runT6},
		{ID: "T7", Title: "Weak-set in MS: add latency vs delay bound (Theorem 3)", Run: runT7},
		{ID: "T8", Title: "Registers ⇄ weak-sets: Props 1–3 operation costs", Run: runT8},
		{ID: "T9", Title: "MS emulation from a weak-set (Theorem 4)", Run: runT9},
		{ID: "T10", Title: "Σ is not emulatable in MS: candidate autopsies (Prop. 4)", Run: runT10},
		{ID: "F1", Title: "Decision-round distribution over random schedules (robustness)", Run: runF1},
		{ID: "F2", Title: "Self-considered leaders per round in ESS (convergence dynamics)", Run: runF2},
		{ID: "F3", Title: "Adversarial MS schedule: no consensus without ES/ESS (FLP corollary)", Run: runF3},
		{ID: "X1", Title: "Bounded exhaustive schedule verification (model-checking style)", Run: runX1},
		{ID: "X2", Title: "Randomized schedule search: PCT-style sampling under fault scenarios", Run: runX2},
		{ID: "T11", Title: "Obstruction-free anonymous consensus under contention (related work [9])", Run: runT11},
		{ID: "S1", Title: "Scenario sweep: termination/agreement vs loss, duplication, partitions", Run: runS1},
		{ID: "W1", Title: "Open-loop workload: SLO percentiles, throughput, shed and fairness vs arrival process and rate", Run: runW1},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// table is a minimal fixed-width text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

func (t *table) write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// percentile returns the p-th percentile (0–100) of xs (nearest-rank).
func percentile(xs []int, p int) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// mean returns the arithmetic mean of xs rounded to one decimal.
func mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}
