package expt

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "\n") || len(out) < 20 {
				t.Errorf("%s produced implausibly small output:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("T1"); !ok {
		t.Error("T1 missing")
	}
	if _, ok := ByID("t10"); !ok {
		t.Error("lookup must be case-insensitive")
	}
	if _, ok := ByID("T99"); ok {
		t.Error("unknown id found")
	}
}

func TestAllIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("a", "long-header")
	tb.add(1, "x")
	tb.add(22, "yy")
	var buf bytes.Buffer
	if err := tb.write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "long-header") {
		t.Errorf("header malformed: %q", lines[0])
	}
}

func TestPercentile(t *testing.T) {
	xs := []int{5, 1, 9, 3, 7}
	tests := []struct{ p, want int }{
		{50, 5}, {100, 9}, {1, 1}, {90, 9},
	}
	for _, tt := range tests {
		if got := percentile(xs, tt.p); got != tt.want {
			t.Errorf("percentile(%d) = %d, want %d", tt.p, got, tt.want)
		}
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestMean(t *testing.T) {
	if m := mean([]int{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestTableWriteErrorPropagates(t *testing.T) {
	tb := newTable("x")
	tb.add(1)
	if err := tb.write(failWriter{}); err == nil {
		t.Error("write error must propagate")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
