package expt

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "\n") || len(out) < 20 {
				t.Errorf("%s produced implausibly small output:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("T1"); !ok {
		t.Error("T1 missing")
	}
	if _, ok := ByID("t10"); !ok {
		t.Error("lookup must be case-insensitive")
	}
	if _, ok := ByID("T99"); ok {
		t.Error("unknown id found")
	}
}

func TestAllIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("a", "long-header")
	tb.add(1, "x")
	tb.add(22, "yy")
	var buf bytes.Buffer
	if err := tb.write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "long-header") {
		t.Errorf("header malformed: %q", lines[0])
	}
}

func TestPercentile(t *testing.T) {
	xs := []int{5, 1, 9, 3, 7}
	tests := []struct{ p, want int }{
		{50, 5}, {100, 9}, {1, 1}, {90, 9},
	}
	for _, tt := range tests {
		if got := percentile(xs, tt.p); got != tt.want {
			t.Errorf("percentile(%d) = %d, want %d", tt.p, got, tt.want)
		}
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestMean(t *testing.T) {
	if m := mean([]int{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestTableWriteErrorPropagates(t *testing.T) {
	tb := newTable("x")
	tb.add(1)
	if err := tb.write(failWriter{}); err == nil {
		t.Error("write error must propagate")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// deterministicIDs are the experiments whose rendered output is a pure
// function of their seeds — no wall-clock columns (T8, T9) and no real
// goroutine contention (T11).
var deterministicIDs = []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T10", "F1", "F2", "F3", "X1", "X2", "S1", "W1"}

func TestTablesByteIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the deterministic suite three times")
	}
	render := func(par int) string {
		SetParallelism(par)
		var buf bytes.Buffer
		for _, id := range deterministicIDs {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			fmt.Fprintf(&buf, "== %s ==\n", id)
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s at parallelism %d: %v", id, par, err)
			}
		}
		return buf.String()
	}
	defer SetParallelism(0)
	want := render(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		if got := render(par); got != want {
			t.Errorf("tables diverged between parallelism 1 and %d:\n%s", par, firstDiff(want, got))
		}
	}
}

// firstDiff locates the first diverging line pair for readable failures.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n want: %s\n  got: %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(wl), len(gl))
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := parallelism(); got != 3 {
		t.Errorf("parallelism() = %d, want 3", got)
	}
	SetParallelism(-5)
	if got := parallelism(); got < 1 {
		t.Errorf("parallelism() = %d, want ≥ 1 (GOMAXPROCS default)", got)
	}
}

func TestForTrialsOrderAndErrors(t *testing.T) {
	defer SetParallelism(0)
	for _, par := range []int{1, 4} {
		SetParallelism(par)
		out := make([]int, 50)
		if err := forTrials(len(out), func(i int) error { out[i] = i * i; return nil }); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("parallelism %d: slot %d = %d, want %d", par, i, v, i*i)
			}
		}
		err := forTrials(10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("trial %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "trial 3 failed" {
			t.Errorf("parallelism %d: err = %v, want the index-3 error", par, err)
		}
	}
	if err := forTrials(0, func(int) error { return nil }); err != nil {
		t.Errorf("empty trial set: %v", err)
	}
}

func TestOFTrialSeedsDistinct(t *testing.T) {
	// The per-proposer RNG streams must stay distinct across trials and
	// proposer indices (the old seed*97+i offsets could coincide).
	seen := map[int64][2]int64{}
	for trial := int64(0); trial < 200; trial++ {
		for proposer := 0; proposer < 16; proposer++ {
			s := ofTrialSeed(trial, proposer)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: trial=%d proposer=%d vs trial=%d proposer=%d",
					trial, proposer, prev[0], prev[1])
			}
			seen[s] = [2]int64{trial, int64(proposer)}
		}
	}
}

func TestRunOFTrialAgreesUnderContention(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		attempts, agreed := runOFTrial(4, trial)
		if !agreed {
			t.Fatalf("trial %d: agreement violated", trial)
		}
		if attempts < 1 {
			t.Errorf("trial %d: attempts = %d, want ≥ 1 (someone must have proposed)", trial, attempts)
		}
	}
}
