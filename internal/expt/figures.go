package expt

import (
	"fmt"
	"io"
	"strings"

	"anonconsensus/internal/core"
	"anonconsensus/internal/fd"
	"anonconsensus/internal/sim"
)

// runT10: every candidate Σ emulator is destroyed by the Prop. 4 two-run
// construction.
func runT10(w io.Writer, quick bool) error {
	horizon := 1000
	if quick {
		horizon = 200
	}
	t := newTable("candidate", "violated property", "p0 outputs {p0} at", "p1 outputs {p1} at")
	candidates := []struct {
		name string
		mk   func() fd.SigmaCandidate
	}{
		{"timeout quorum (W=3)", func() fd.SigmaCandidate { return &fd.TimeoutQuorum{Window: 3} }},
		{"timeout quorum (W=10)", func() fd.SigmaCandidate { return &fd.TimeoutQuorum{Window: 10} }},
		{"majority stick (S=5)", func() fd.SigmaCandidate { return &fd.MajorityStick{Silence: 5} }},
		{"eager self", func() fd.SigmaCandidate { return &fd.EagerSelf{} }},
	}
	violations := make([]*fd.Violation, len(candidates))
	err := forTrials(len(candidates), func(i int) error {
		h := &fd.Prop4Harness{New: candidates[i].mk, Horizon: horizon}
		v, err := h.Disprove()
		if err != nil {
			return fmt.Errorf("T10 %s: %w", candidates[i].name, err)
		}
		violations[i] = v
		return nil
	})
	if err != nil {
		return err
	}
	for i, c := range candidates {
		v := violations[i]
		r1, r2 := "-", "-"
		if v.RunOneRound > 0 {
			r1 = fmt.Sprint(v.RunOneRound)
		}
		if v.RunTwoRound > 0 {
			r2 = fmt.Sprint(v.RunTwoRound)
		}
		t.add(c.name, v.Kind, r1, r2)
	}
	return t.write(w)
}

// runF1: decision-round percentiles over many random schedules.
func runF1(w io.Writer, quick bool) error {
	seeds := 500
	if quick {
		seeds = 40
	}
	const n, gst = 8, 10
	t := newTable("algorithm", "runs", "p50", "p90", "p99", "max")
	// One batch for both algorithms: ES configs first, then ESS, each seed
	// an independent run.
	cfgs := make([]sim.Config, 0, 2*seeds)
	for seed := int64(0); seed < int64(seeds); seed++ {
		cfgs = append(cfgs, core.ConfigES(core.DistinctProposals(n), core.RunOpts{
			Policy: &sim.ES{GST: gst, Pre: sim.MS{Seed: seed, MaxDelay: 4, Alternate: seed%2 == 0}},
		}))
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		cfgs = append(cfgs, core.ConfigESS(core.DistinctProposals(n), core.RunOpts{
			Policy:    &sim.ESS{GST: gst, StableSource: int(seed) % n, Pre: sim.MS{Seed: seed, Alternate: seed%2 == 0}},
			MaxRounds: 800,
		}))
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return err
	}
	collect := func(alg string, results []*sim.Result) ([]int, error) {
		var out []int
		for seed, res := range results {
			if !res.AllCorrectDecided() {
				return nil, fmt.Errorf("F1 %s: undecided seed %d", alg, seed)
			}
			if err := res.CheckAgreement(); err != nil {
				return nil, fmt.Errorf("F1 %s seed %d: %w", alg, seed, err)
			}
			out = append(out, res.LastDecisionRound())
		}
		return out, nil
	}
	esRounds, err := collect("ES", results[:seeds])
	if err != nil {
		return err
	}
	essRounds, err := collect("ESS", results[seeds:])
	if err != nil {
		return err
	}
	t.add("ES (Alg 2)", len(esRounds), percentile(esRounds, 50), percentile(esRounds, 90), percentile(esRounds, 99), percentile(esRounds, 100))
	t.add("ESS (Alg 3)", len(essRounds), percentile(essRounds, 50), percentile(essRounds, 90), percentile(essRounds, 99), percentile(essRounds, 100))
	return t.write(w)
}

// runF2: time series of self-considered leaders per round in one ESS run.
func runF2(w io.Writer, quick bool) error {
	const n, gst, src = 5, 8, 2
	maxShown := 40
	if quick {
		maxShown = 20
	}
	counts := make(map[int]int)
	res, err := core.RunESS(core.DistinctProposals(n), core.RunOpts{
		Policy:    &sim.ESS{GST: gst, StableSource: src, Pre: sim.MS{Seed: 3}},
		MaxRounds: 600,
		OnRound: func(r int, e *sim.Engine) {
			c := 0
			for i := 0; i < e.N(); i++ {
				if a, ok := e.Automaton(i).(*core.ESS); ok && !e.Proc(i).Halted() && a.IsLeader() {
					c++
				}
			}
			counts[r] = c
		},
	})
	if err != nil {
		return err
	}
	if !res.AllCorrectDecided() {
		return fmt.Errorf("F2: run undecided")
	}
	t := newTable("round", "self-considered leaders", "")
	last := res.LastDecisionRound()
	if last > maxShown {
		last = maxShown
	}
	for r := 1; r <= last; r++ {
		bar := strings.Repeat("█", counts[r])
		t.add(r, counts[r], bar)
	}
	if err := t.write(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "(GST=%d, stable source=p%d; decisions complete at round %d)\n",
		gst, src, res.LastDecisionRound())
	return err
}

// runF3: the adversarial alternating-source schedule keeps Algorithm 2
// undecided for arbitrarily long, with the MS property machine-checked.
func runF3(w io.Writer, quick bool) error {
	horizons := []int{100, 500, 1000}
	if quick {
		horizons = []int{50, 100}
	}
	t := newTable("rounds run", "MS property", "decisions", "conclusion")
	cfgs := make([]sim.Config, len(horizons))
	for i, h := range horizons {
		cfgs[i] = core.ConfigES(core.SplitProposals(4, 2), core.RunOpts{
			Policy:      &sim.AlternatingMS{A: 0, B: 3},
			MaxRounds:   h,
			RecordTrace: true,
		})
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return err
	}
	for i, h := range horizons {
		res := results[i]
		msOK := "holds every round"
		if err := res.Trace.CheckMS(); err != nil {
			msOK = err.Error()
		}
		concl := "no decision: MS alone insufficient"
		if d := res.Decisions(); d.Len() > 0 {
			concl = fmt.Sprintf("DECIDED %v (unexpected)", d)
		}
		t.add(h, msOK, res.Decisions().Len(), concl)
	}
	return t.write(w)
}
