package expt

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"anonconsensus/internal/obstruction"
	"anonconsensus/internal/values"
)

// runT11: obstruction-free consensus under contention — the related-work
// [9] extension. Sweeps the number of concurrent anonymous proposers and
// reports rounds/attempts until the first decision.
func runT11(w io.Writer, quick bool) error {
	workers := []int{1, 2, 4, 8}
	trials := 30
	if quick {
		workers = []int{1, 4}
		trials = 8
	}
	t := newTable("proposers", "trials", "attempts to decide (mean)", "agreement")
	for _, p := range workers {
		var attemptsTotal int
		agree := true
		for trial := 0; trial < trials; trial++ {
			attempts, ok := runOFTrial(p, int64(trial))
			if !ok {
				agree = false
				continue
			}
			attemptsTotal += attempts
		}
		verdict := "always"
		if !agree {
			verdict = "VIOLATED"
		}
		t.add(p, trials, fmt.Sprintf("%.1f", float64(attemptsTotal)/float64(trials)), verdict)
	}
	return t.write(w)
}

// ofTrialSeed derives the RNG seed for one proposer of one trial. A
// splitmix64-style mix keeps the streams distinct: the previous
// `seed*97+i` offset scheme let (trial, proposer) pairs from nearby
// trials land on the same seed and march through identical backoff
// sequences in lockstep.
func ofTrialSeed(trial int64, proposer int) int64 {
	z := uint64(trial)*0x9E3779B97F4A7C15 + uint64(proposer+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0x94D049BB133111EB
	z ^= z >> 27
	return int64(z)
}

// runOFTrial races p proposers with randomized backoff until everyone
// holds a decision; it returns the total Propose attempts and whether all
// decisions agreed.
func runOFTrial(p int, seed int64) (attempts int, agreed bool) {
	c := obstruction.NewConsensus()
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		decided    = values.NewSet()
		attempts64 int
	)
	for i := 0; i < p; i++ {
		i := i
		wg.Add(1)
		//detlint:goroutine T11 measures real contention between racing proposers; its columns are excluded from the byte-identity pins
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(ofTrialSeed(seed, i)))
			for attempt := 1; ; attempt++ {
				if v, ok := c.Decided(); ok {
					mu.Lock()
					decided.Add(v)
					attempts64 += attempt - 1
					mu.Unlock()
					return
				}
				v, ok, err := c.Propose(values.Num(int64(100+i)), 6)
				if err != nil {
					mu.Lock()
					attempts64 += attempt
					mu.Unlock()
					return
				}
				if ok {
					mu.Lock()
					decided.Add(v)
					attempts64 += attempt
					mu.Unlock()
					return
				}
				// Back off before re-contending. The draw can be 0µs on
				// early attempts, which used to degenerate into a hot spin
				// re-polling Decided with a core pegged per proposer; always
				// give the scheduler a chance, and sleep at least 1µs once
				// contention persists.
				backoff := rng.Intn(1 << uint(minHorizon(attempt, 9)))
				if attempt > 1 && backoff == 0 {
					backoff = 1
				}
				if backoff == 0 {
					runtime.Gosched()
				} else {
					//detlint:wallclock randomized real-time backoff is the obstruction-freedom protocol under test (T11, excluded from byte-identity pins)
					time.Sleep(time.Duration(backoff) * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	return attempts64, decided.Len() == 1
}
