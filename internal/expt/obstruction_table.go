package expt

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"anonconsensus/internal/obstruction"
	"anonconsensus/internal/values"
)

// runT11: obstruction-free consensus under contention — the related-work
// [9] extension. Sweeps the number of concurrent anonymous proposers and
// reports rounds/attempts until the first decision.
func runT11(w io.Writer, quick bool) error {
	workers := []int{1, 2, 4, 8}
	trials := 30
	if quick {
		workers = []int{1, 4}
		trials = 8
	}
	t := newTable("proposers", "trials", "attempts to decide (mean)", "agreement")
	for _, p := range workers {
		var attemptsTotal int
		agree := true
		for trial := 0; trial < trials; trial++ {
			attempts, ok := runOFTrial(p, int64(trial))
			if !ok {
				agree = false
				continue
			}
			attemptsTotal += attempts
		}
		verdict := "always"
		if !agree {
			verdict = "VIOLATED"
		}
		t.add(p, trials, fmt.Sprintf("%.1f", float64(attemptsTotal)/float64(trials)), verdict)
	}
	return t.write(w)
}

// runOFTrial races p proposers with randomized backoff until everyone
// holds a decision; it returns the total Propose attempts and whether all
// decisions agreed.
func runOFTrial(p int, seed int64) (attempts int, agreed bool) {
	c := obstruction.NewConsensus()
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		decided    = values.NewSet()
		attempts64 int
	)
	for i := 0; i < p; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*97 + int64(i)))
			for attempt := 1; ; attempt++ {
				if v, ok := c.Decided(); ok {
					mu.Lock()
					decided.Add(v)
					attempts64 += attempt - 1
					mu.Unlock()
					return
				}
				v, ok, err := c.Propose(values.Num(int64(100+i)), 6)
				if err != nil {
					mu.Lock()
					attempts64 += attempt
					mu.Unlock()
					return
				}
				if ok {
					mu.Lock()
					decided.Add(v)
					attempts64 += attempt
					mu.Unlock()
					return
				}
				time.Sleep(time.Duration(rng.Intn(1<<uint(minHorizon(attempt, 9)))) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	return attempts64, decided.Len() == 1
}
