package expt

import (
	"fmt"
	"io"

	"anonconsensus/internal/core"
	"anonconsensus/internal/explore"
)

// runX2: randomized schedule search — the exploration plane's PCT-style
// sampler at sizes the X1 exhaustive space cannot reach, with the random
// adversary overlaid on a fraction of trials. Each row is one search; a
// correct algorithm must come out verified (0 violations) on every row,
// and the table records how much of the space actually terminated (faulted
// trials legitimately may not: loss and partitions void the Termination
// guarantee, which is the point of sweeping them).
//
// Like every table, the search fans over the shared batch runner and is
// byte-identical at any parallelism.
func runX2(w io.Writer, quick bool) error {
	type job struct {
		label       string
		alg         explore.Algorithm
		n           int
		scenarioPct int
	}
	n := 8
	trials := 2000
	if quick {
		n = 5
		trials = 300
	}
	jobs := []job{
		{"ES fault-free", explore.AlgES, n, 0},
		{"ES + random adversary 60%", explore.AlgES, n, 60},
		{"ESS fault-free", explore.AlgESS, n - 2, 0},
		{"ESS + random adversary 60%", explore.AlgESS, n - 2, 60},
	}
	t := newTable("search", "n", "trials", "faulted", "decided", "violations")
	for i, j := range jobs {
		rep, err := explore.Run(explore.Config{
			Proposals:   core.DistinctProposals(j.n),
			Algorithm:   j.alg,
			Mode:        explore.ModeRandom,
			Trials:      trials,
			Seed:        int64(100 + i),
			ScenarioPct: j.scenarioPct,
			Parallelism: parallelism(),
		})
		if err != nil {
			return fmt.Errorf("X2 %s: %w", j.label, err)
		}
		verdict := "none (verified)"
		if !rep.Verified() {
			verdict = fmt.Sprintf("%d (FIRST: %s)", len(rep.Violations), rep.Violations[0])
		}
		t.add(j.label, j.n, rep.Runs, rep.Faulted, rep.Decided, verdict)
	}
	if err := t.write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "(PCT-style sampling, depth 3; faulted trials overlay a seeded random adversary — loss/dup/partition/crashes — under which Termination is legitimately not guaranteed)")
	return err
}
