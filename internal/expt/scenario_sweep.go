package expt

import (
	"fmt"
	"io"

	"anonconsensus/internal/core"
	"anonconsensus/internal/env"
	"anonconsensus/internal/sim"
)

// runS1: the scenario sweep — how the ES algorithm degrades as composable
// faults are dialed in. Each grid point overlays one fault scenario (loss
// rate, duplication rate, partition shape, or the seeded random adversary)
// on an otherwise-favorable ES environment and reports, over the averaging
// seeds: the fraction of runs in which every correct process decided
// (termination under broken assumptions is best-effort, so this is a rate,
// not an invariant), the fraction in which all deciders agreed (loss and
// partitions break reliable broadcast, so Agreement genuinely can fail —
// split-brain blocks are the expected outcome of a long partition in an
// anonymous network), the mean last decision round among fully-decided
// runs, and the mean dropped/duplicated delivery counts.
//
// Like every table, the grid fans over the shared batch runner and is
// byte-identical at any parallelism.
func runS1(w io.Writer, quick bool) error {
	n := 8
	gst := 6
	if quick {
		n = 4
	}
	type point struct {
		name     string
		scenario func(seed int64) *env.Scenario
	}
	grid := []point{
		{"fault-free", func(seed int64) *env.Scenario { return nil }},
		{"loss 5%", func(seed int64) *env.Scenario { return &env.Scenario{Seed: seed, LossPct: 5} }},
		{"loss 20%", func(seed int64) *env.Scenario { return &env.Scenario{Seed: seed, LossPct: 20} }},
		{"loss 40%", func(seed int64) *env.Scenario { return &env.Scenario{Seed: seed, LossPct: 40} }},
		{"dup 30%", func(seed int64) *env.Scenario { return &env.Scenario{Seed: seed, DupPct: 30} }},
		{"loss 20% + dup 30%", func(seed int64) *env.Scenario {
			return &env.Scenario{Seed: seed, LossPct: 20, DupPct: 30}
		}},
		{"partition healed @2", func(seed int64) *env.Scenario {
			return &env.Scenario{Seed: seed, Partitions: []env.Partition{{From: 1, Until: 2, Cut: n / 2}}}
		}},
		{"partition never heals", func(seed int64) *env.Scenario {
			return &env.Scenario{Seed: seed, Partitions: []env.Partition{{From: 1, Until: 0, Cut: n / 2}}}
		}},
		{"random adversary", func(seed int64) *env.Scenario { return env.RandomAdversary(seed, n) }},
	}
	if quick {
		grid = []point{grid[0], grid[2], grid[4], grid[6], grid[7], grid[8]}
	}
	seeds := seedsFor(quick)

	var cfgs []sim.Config
	for _, pt := range grid {
		for _, seed := range seeds {
			// The scenario's crash schedule rides Scenario itself — the
			// engine merges it with Config.Crashes on its own.
			cfgs = append(cfgs, core.ConfigES(core.DistinctProposals(n), core.RunOpts{
				Policy:   &sim.ES{GST: gst, Pre: sim.MS{Seed: seed}},
				Scenario: pt.scenario(seed),
			}))
		}
	}
	results, err := runConfigs(cfgs)
	if err != nil {
		return err
	}
	t := newTable("scenario", "n", "runs", "term rate", "agree rate", "last decision (mean)", "dropped (mean)", "dup'd (mean)")
	k := 0
	for _, pt := range grid {
		var decided, agreed int
		var lasts, drops, dups []int
		for range seeds {
			res := results[k]
			k++
			term := res.AllCorrectDecided()
			if term {
				decided++
				lasts = append(lasts, res.LastDecisionRound())
			}
			if res.CheckAgreement() == nil {
				agreed++
			}
			drops = append(drops, res.Metrics.Dropped)
			dups = append(dups, res.Metrics.Duplicated)
		}
		last := "-"
		if len(lasts) > 0 {
			last = fmt.Sprintf("%.1f", mean(lasts))
		}
		t.add(pt.name, n, len(seeds),
			rate(decided, len(seeds)), rate(agreed, len(seeds)),
			last, fmt.Sprintf("%.1f", mean(drops)), fmt.Sprintf("%.1f", mean(dups)))
	}
	if err := t.write(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "(ES, GST=%d; agree rate counts runs whose deciders all agreed — loss and partitions break the reliable-broadcast assumption, so < 100%% is the demonstration, not a bug)\n", gst)
	return err
}

// rate renders hits/total as a percentage.
func rate(hits, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%d%%", 100*hits/total)
}
