package expt

import (
	"fmt"
	"io"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/msemu"
	"anonconsensus/internal/register"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

// runT6: message complexity — what the anonymous pseudo leader election
// costs on the wire compared to Algorithm 2 and the Ω oracle baseline.
func runT6(w io.Writer, quick bool) error {
	const n = 6
	gst := 24 // long pre-decision phase so history/counter growth shows
	if quick {
		gst = 8
	}
	pol := func(seed int64) *sim.ESS {
		return &sim.ESS{GST: gst, StableSource: 0, Pre: sim.MS{Seed: seed}}
	}
	t := newTable("algorithm", "rounds", "total payload bytes", "max envelope bytes", "bytes/broadcast")

	props := core.DistinctProposals(n)
	results, err := runConfigs([]sim.Config{
		core.ConfigES(props, core.RunOpts{Policy: &sim.ES{GST: gst, Pre: sim.MS{Seed: 1}}}),
		core.ConfigESS(props, core.RunOpts{Policy: pol(1), MaxRounds: 600}),
		core.ConfigOmega(props, core.EventualOracle(0, gst), core.RunOpts{Policy: pol(1), MaxRounds: 600}),
	})
	if err != nil {
		return err
	}
	for _, row := range []struct {
		name string
		res  *sim.Result
	}{
		{"ES (Alg 2)", results[0]},
		{"ESS (Alg 3, anon pseudo-leader)", results[1]},
		{"Ω baseline (oracle IDs)", results[2]},
	} {
		if !row.res.AllCorrectDecided() {
			return fmt.Errorf("T6: %s run undecided", row.name)
		}
		m := row.res.Metrics
		perB := 0
		if m.Broadcasts > 0 {
			perB = m.PayloadBytes / m.Broadcasts
		}
		t.add(row.name, row.res.Rounds, m.PayloadBytes, m.MaxEnvelopeBytes, perB)
	}
	return t.write(w)
}

// runT7: weak-set add latency in MS as the adversary's delay bound grows.
func runT7(w io.Writer, quick bool) error {
	delays := []int{1, 2, 4, 8}
	if quick {
		delays = []int{1, 4}
	}
	t := newTable("max delay", "rotation", "add latency rounds (mean)", "add latency rounds (max)")
	// The weak-set driver owns its own engine, so the grid fans out over
	// forTrials rather than the sim batch runner; collection stays in grid
	// order.
	seeds := seedsFor(quick)
	rots := []int{1, 4}
	type trial struct {
		d, rot int
		seed   int64
		res    *weakset.SimResult
	}
	var trials []trial
	for _, d := range delays {
		for _, rot := range rots {
			for _, seed := range seeds {
				trials = append(trials, trial{d: d, rot: rot, seed: seed})
			}
		}
	}
	err := forTrials(len(trials), func(i int) error {
		tr := &trials[i]
		ops := []weakset.ScheduledOp{
			{Proc: 0, Round: 1, Kind: weakset.OpAdd, Value: values.Num(1)},
			{Proc: 2, Round: 2, Kind: weakset.OpAdd, Value: values.Num(2)},
		}
		res, err := weakset.RunMS(5, ops, &sim.MS{Seed: tr.seed, MaxDelay: tr.d, RotationPeriod: tr.rot}, 60+20*tr.d, nil)
		if err != nil {
			return err
		}
		tr.res = res
		return nil
	})
	if err != nil {
		return err
	}
	k := 0
	for _, d := range delays {
		for _, rot := range rots {
			var lats []int
			maxLat := 0
			for _, seed := range seeds {
				res := trials[k].res
				k++
				if err := res.Checker.Check(); err != nil {
					return fmt.Errorf("T7 d=%d seed=%d: %w", d, seed, err)
				}
				recs := res.CompletedAdds()
				if len(recs) != 2 {
					return fmt.Errorf("T7 d=%d seed=%d: %d/2 adds completed", d, seed, len(recs))
				}
				for _, rec := range recs {
					lat := rec.Completed - rec.Started
					lats = append(lats, lat)
					if lat > maxLat {
						maxLat = lat
					}
				}
			}
			t.add(d, rot, fmt.Sprintf("%.1f", mean(lats)), maxLat)
		}
	}
	return t.write(w)
}

// runT8: the register ⇄ weak-set constructions (Props 1–3) measured end to
// end, including over the ABD message-passing cluster.
func runT8(w io.Writer, quick bool) error {
	opsN := 2000
	if quick {
		opsN = 200
	}
	t := newTable("construction", "ops", "wall time", "ns/op")

	// Prop 1: register from in-memory weak-set.
	var ws weakset.Memory
	reg := register.NewFromWeakSet(&ws)
	el, err := walltime(func() error {
		for i := 0; i < opsN; i++ {
			if err := reg.Write(values.Num(int64(i))); err != nil {
				return err
			}
			if _, err := reg.Read(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	t.add("Prop1 reg←weakset (memory)", 2*opsN, el.Round(time.Microsecond), el.Nanoseconds()/int64(2*opsN))

	// Prop 2: weak-set from SWMR registers over an ABD quorum cluster.
	abdOps := opsN / 10
	cluster := register.NewABD(3)
	defer cluster.Close()
	swmr := weakset.NewFromSWMR([]weakset.Slot{cluster.Writer(1)})
	h := swmr.Handle(0)
	el, err = walltime(func() error {
		for i := 0; i < abdOps; i++ {
			if err := h.Add(values.Num(int64(i))); err != nil {
				return err
			}
			if _, err := h.Get(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	t.add("Prop2 weakset←SWMR (over ABD n=3)", 2*abdOps, el.Round(time.Microsecond), el.Nanoseconds()/int64(2*abdOps))

	// Prop 3: weak-set from per-value MWMR flags.
	domain := make([]values.Value, 64)
	for i := range domain {
		domain[i] = values.Num(int64(i))
	}
	fin := weakset.NewFromFinite(domain, func(values.Value) weakset.Slot { return &register.Memory{} })
	el, err = walltime(func() error {
		for i := 0; i < opsN; i++ {
			if err := fin.Add(domain[i%len(domain)]); err != nil {
				return err
			}
			if _, err := fin.Get(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	t.add("Prop3 weakset←MWMR flags (|V|=64)", 2*opsN, el.Round(time.Microsecond), el.Nanoseconds()/int64(2*opsN))
	return t.write(w)
}

// runT9: Algorithm 5 — emulate MS rounds from a weak-set, validate the
// source property, report throughput.
func runT9(w io.Writer, quick bool) error {
	ns := []int{2, 4, 8}
	rounds := 200
	if quick {
		ns = []int{2, 4}
		rounds = 40
	}
	t := newTable("n", "emulated rounds", "wall time", "MS property", "decisions agree")
	for _, n := range ns {
		props := core.SplitProposals(n, 2)
		var res *msemu.Result
		el, err := walltime(func() error {
			var err error
			res, err = msemu.Run(msemu.Config{
				N:         n,
				Automaton: func(i int) giraf.Automaton { return core.NewES(props[i]) },
				Codec:     msemu.SetCodec{},
				Set:       &weakset.Memory{},
				MaxRounds: rounds,
			})
			return err
		})
		if err != nil {
			return err
		}
		if len(res.Errs) > 0 {
			return fmt.Errorf("T9 n=%d: %v", n, res.Errs)
		}
		msOK := "ok"
		if err := res.CheckMS(); err != nil {
			msOK = err.Error()
		}
		seen := values.NewSet()
		//detlint:ordered set insertion is commutative and the set renders canonically
		for _, v := range res.Decisions {
			seen.Add(v)
		}
		agree := "yes"
		if seen.Len() > 1 {
			agree = fmt.Sprintf("NO: %v", seen)
		} else if seen.Len() == 0 {
			agree = "n/a (none decided)"
		}
		t.add(n, rounds, el.Round(time.Millisecond), msOK, agree)
	}
	return t.write(w)
}
