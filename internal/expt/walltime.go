package expt

import "time"

// walltime measures f's real elapsed time. The substrate tables (T8, T9)
// and the obstruction-freedom table (T11) report what operations cost on
// actual hardware, so their wall-time columns are inherently
// non-reproducible and are excluded from the byte-identity pins (see the
// deterministic-table list in expt_test.go). Funneling every measurement
// through this helper keeps the experiment plane's wall-clock reads in
// one audited place instead of scattered over the table renderers.
func walltime(f func() error) (time.Duration, error) {
	//detlint:wallclock audited measurement helper; wall-time columns are excluded from the byte-identity pins
	start := time.Now()
	err := f()
	//detlint:wallclock paired read for the measurement above
	return time.Since(start), err
}
