package expt

import (
	"context"
	"fmt"
	"io"

	"anonconsensus/internal/workload"
)

// runW1: the open-loop workload table — what sustained seeded traffic
// feels like at the service plane, the axis the closed per-instance grids
// (T1–T11) never touch. Each row is one full workload run on the
// deterministic virtual plane: a two-class mix (a weight-3 ES bulk class
// and a weight-1 ESS interactive class) pushed through 8 virtual servers
// with a bounded backlog, at an arrival rate below, near and above the
// plane's capacity, for each arrival process. Reported per row: served
// and shed fractions, throughput over the makespan, p50/p95/p99 decision
// latency, and Jain's fairness index over weight-normalized completions.
//
// The whole table is a pure function of the seeds: every workload run
// fans its instances over the shared batch runner, so the table is
// byte-identical at any parallelism — pinned, like the other tables, by
// the parallelism test.
func runW1(w io.Writer, quick bool) error {
	ops := 400
	if quick {
		ops = 80
	}
	classes := []workload.Class{
		{Name: "es-bulk", Weight: 3, Alg: workload.ES, N: 4, GST: 2},
		{Name: "ess-interactive", Weight: 1, Alg: workload.ESS, N: 3, GST: 2, StableSource: 0},
	}
	// 8 servers at ~5 rounds × 5ms per instance serve roughly 300
	// proposals/sec; the rate grid brackets that capacity.
	rates := []float64{150, 300, 600}
	kinds := []workload.ArrivalKind{workload.Poisson, workload.Gamma, workload.Weibull}
	if quick {
		rates = []float64{150, 600}
		kinds = []workload.ArrivalKind{workload.Poisson, workload.Weibull}
	}

	tbl := newTable("arrival", "rate/s", "ops", "ok", "shed%", "thr/s", "p50ms", "p95ms", "p99ms", "fairness")
	for _, kind := range kinds {
		for _, rate := range rates {
			spec := workload.Spec{
				Seed:    1,
				Ops:     ops,
				Rate:    rate,
				Arrival: kind,
				Shape:   0.7, // bursty: tails differ visibly across processes
				Classes: classes,
				Servers: 8, QueueDepth: 16,
				AdmitRate: 500, AdmitBurst: 32,
				Parallelism: parallelism(),
			}
			res, err := workload.Run(context.Background(), spec)
			if err != nil {
				return fmt.Errorf("W1 %s @%v: %w", kind, rate, err)
			}
			rep := res.Report()
			tot := rep.Total
			shedPct := 100 * float64(tot.ShedAdmission+tot.ShedQueue) / float64(tot.Ops)
			tbl.add(kind.String(), fmt.Sprintf("%.0f", rate), tot.Ops, tot.Done,
				fmt.Sprintf("%.1f", shedPct), fmt.Sprintf("%.1f", tot.Throughput),
				fmt.Sprintf("%.2f", float64(tot.P50US)/1000),
				fmt.Sprintf("%.2f", float64(tot.P95US)/1000),
				fmt.Sprintf("%.2f", float64(tot.P99US)/1000),
				fmt.Sprintf("%.3f", rep.Fairness))
		}
	}
	return tbl.write(w)
}
