package fd

import (
	"sort"

	"anonconsensus/internal/ordered"
)

// The candidate Σ emulators below are the natural attempts one would make
// in a known network: all of them are disproved by the Prop. 4 harness,
// which is the point — the construction works against *any* deterministic
// candidate, these just make the demonstration concrete and runnable.

// TimeoutQuorum trusts every process heard from within the last Window
// rounds (always including itself).
type TimeoutQuorum struct {
	// Window is the silence tolerance in rounds; 0 defaults to 3.
	Window int

	id, n    int
	lastSeen map[int]int
}

var _ SigmaCandidate = (*TimeoutQuorum)(nil)

// Init implements SigmaCandidate.
func (c *TimeoutQuorum) Init(id, n int) {
	c.id, c.n = id, n
	c.lastSeen = make(map[int]int, n)
	if c.Window <= 0 {
		c.Window = 3
	}
}

// Round implements SigmaCandidate.
func (c *TimeoutQuorum) Round(k int, heard []int) []int {
	for _, j := range heard {
		c.lastSeen[j] = k
	}
	c.lastSeen[c.id] = k
	var out []int
	for _, j := range ordered.Keys(c.lastSeen) {
		if k-c.lastSeen[j] < c.Window {
			out = append(out, j)
		}
	}
	return out
}

// MajorityStick starts trusting everyone and drops a process only after
// Silence consecutive unheard rounds, refusing to shrink below a majority
// until forced (it then keeps the most recently heard majority — the
// "quorums must intersect" instinct).
type MajorityStick struct {
	// Silence is the drop threshold in rounds; 0 defaults to 5.
	Silence int

	id, n    int
	lastSeen map[int]int
}

var _ SigmaCandidate = (*MajorityStick)(nil)

// Init implements SigmaCandidate.
func (c *MajorityStick) Init(id, n int) {
	c.id, c.n = id, n
	c.lastSeen = make(map[int]int, n)
	for j := 0; j < n; j++ {
		c.lastSeen[j] = 0
	}
	if c.Silence <= 0 {
		c.Silence = 5
	}
}

// Round implements SigmaCandidate.
func (c *MajorityStick) Round(k int, heard []int) []int {
	for _, j := range heard {
		c.lastSeen[j] = k
	}
	c.lastSeen[c.id] = k
	type cand struct{ id, last int }
	cands := make([]cand, 0, c.n)
	for _, j := range ordered.Keys(c.lastSeen) {
		cands = append(cands, cand{id: j, last: c.lastSeen[j]})
	}
	// Most recently heard first; self wins ties, then the smaller ID. The
	// tiebreaks make this a strict total order: which equal-recency
	// processes survive the majority cut below must not depend on sort
	// input order (it used to follow map iteration order — a latent
	// nondeterminism detlint surfaced).
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].last != cands[b].last {
			return cands[a].last > cands[b].last
		}
		if (cands[a].id == c.id) != (cands[b].id == c.id) {
			return cands[a].id == c.id
		}
		return cands[a].id < cands[b].id
	})
	majority := c.n/2 + 1
	var out []int
	for _, cd := range cands {
		if len(out) < majority || k-cd.last < c.Silence {
			out = append(out, cd.id)
		}
	}
	// Trim to those not silent too long once we are past the majority
	// floor; keep at least self.
	kept := out[:0]
	for _, j := range out {
		if j == c.id || k-c.lastSeen[j] < c.Silence || len(kept) < majority {
			kept = append(kept, j)
		}
	}
	sort.Ints(kept)
	return kept
}

// EagerSelf trusts only the processes heard this very round (plus itself):
// the most aggressive candidate, converging fastest and dying fastest.
type EagerSelf struct {
	id, n int
}

var _ SigmaCandidate = (*EagerSelf)(nil)

// Init implements SigmaCandidate.
func (c *EagerSelf) Init(id, n int) { c.id, c.n = id, n }

// Round implements SigmaCandidate.
func (c *EagerSelf) Round(k int, heard []int) []int {
	set := map[int]bool{c.id: true}
	for _, j := range heard {
		set[j] = true
	}
	return ordered.Keys(set)
}
