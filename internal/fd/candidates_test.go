package fd

import (
	"reflect"
	"testing"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
)

// driveRounds feeds a scripted heard-set sequence to a fresh candidate and
// returns the trusted-set outputs round by round.
func driveRounds(c SigmaCandidate, id, n int, script [][]int) [][]int {
	c.Init(id, n)
	out := make([][]int, len(script))
	for k, heard := range script {
		out[k] = c.Round(k+1, heard)
	}
	return out
}

func TestTimeoutQuorumConvergenceTable(t *testing.T) {
	// Table-driven convergence over silence patterns: the trusted set must
	// track the window exactly — a peer stays trusted for Window-1 silent
	// rounds and drops on the Window-th.
	tests := []struct {
		name   string
		window int
		script [][]int
		want   [][]int
	}{
		{
			name:   "peer goes silent",
			window: 2,
			script: [][]int{{0, 1}, {0}, {0}, {0}},
			want:   [][]int{{0, 1}, {0, 1}, {0}, {0}},
		},
		{
			name:   "window one drops immediately",
			window: 1,
			script: [][]int{{0, 1}, {0}, {0, 1}},
			want:   [][]int{{0, 1}, {0}, {0, 1}},
		},
		{
			name:   "silence then recovery",
			window: 3,
			script: [][]int{{0, 1}, {0}, {0}, {0}, {0, 1}},
			want:   [][]int{{0, 1}, {0, 1}, {0, 1}, {0}, {0, 1}},
		},
		{
			name:   "self only, never heard anyone",
			window: 2,
			script: [][]int{{0}, {0}},
			want:   [][]int{{0}, {0}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := driveRounds(&TimeoutQuorum{Window: tt.window}, 0, 2, tt.script)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("outputs %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTimeoutQuorumDefaultWindow(t *testing.T) {
	c := &TimeoutQuorum{}
	c.Init(0, 2)
	if c.Window != 3 {
		t.Errorf("default window = %d, want 3", c.Window)
	}
}

func TestMajorityStickConvergenceTable(t *testing.T) {
	// n=3, majority 2: the candidate refuses to shrink below a majority —
	// even a process silent far beyond the threshold survives while it is
	// needed to fill the quorum, which is exactly the instinct Prop. 4
	// kills (the kept set need not intersect another process's).
	script := [][]int{
		{0, 1, 2}, // everyone alive
		{0},       // 1 and 2 go silent
		{0}, {0}, {0}, {0}, {0},
	}
	got := driveRounds(&MajorityStick{Silence: 3}, 0, 3, script)
	for k, trusted := range got {
		if len(trusted) < 2 {
			t.Errorf("round %d: trusted %v shrank below the majority floor", k+1, trusted)
		}
		if !containsID(trusted, 0) {
			t.Errorf("round %d: self missing from %v", k+1, trusted)
		}
	}
	// The round-1 output must trust everyone it heard.
	if !reflect.DeepEqual(got[0], []int{0, 1, 2}) {
		t.Errorf("round 1 trusted %v, want [0 1 2]", got[0])
	}
}

func TestEagerSelfConvergenceTable(t *testing.T) {
	script := [][]int{{0, 1, 2}, {1}, {}, {2}}
	want := [][]int{{0, 1, 2}, {0, 1}, {0}, {0, 2}}
	got := driveRounds(&EagerSelf{}, 0, 3, script)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("outputs %v, want %v", got, want)
	}
}

func containsID(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// runOmegaTrackers runs n trackers under pol with the given crash schedule
// and returns them.
func runOmegaTrackers(t *testing.T, n, rounds int, pol sim.Policy, crashes map[int]int) []*OmegaTracker {
	t.Helper()
	trackers := make([]*OmegaTracker, n)
	_, err := sim.Run(sim.Config{
		N: n,
		Automaton: func(i int) giraf.Automaton {
			trackers[i] = NewOmegaTracker(i)
			return trackers[i]
		},
		Policy:    pol,
		Crashes:   crashes,
		MaxRounds: rounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trackers
}

func TestOmegaTrackerCrashPatternTable(t *testing.T) {
	// Table-driven crash patterns: survivors must converge on a common
	// leader that is not a crashed process.
	tests := []struct {
		name    string
		n       int
		crashes map[int]int
		gst     int
		src     int
	}{
		{"leader crashes early", 4, map[int]int{0: 5}, 8, 2},
		{"two crashes", 5, map[int]int{1: 3, 4: 12}, 10, 2},
		{"crash after convergence", 4, map[int]int{3: 60}, 8, 0},
		{"all but one crash", 3, map[int]int{0: 4, 2: 9}, 6, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			trackers := runOmegaTrackers(t, tt.n, 150,
				&sim.ESS{GST: tt.gst, StableSource: tt.src, Pre: sim.MS{Seed: 13}}, tt.crashes)
			leader := -1
			for i, tr := range trackers {
				if _, crashed := tt.crashes[i]; crashed {
					continue // a crashed tracker's last estimate is stale by design
				}
				got := tr.Leader()
				if _, crashedLeader := tt.crashes[got]; crashedLeader && got != i {
					// Trusting a crashed peer forever would be a completeness
					// failure; the min-merge must have erased its counters.
					t.Errorf("survivor %d still elects crashed process %d", i, got)
				}
				if leader < 0 {
					leader = got
				} else if got != leader {
					t.Errorf("survivors disagree: %d elects %d, others %d", i, got, leader)
				}
			}
		})
	}
}

// stubInbox fabricates an inbox for direct Compute calls.
type stubInbox struct {
	round int
	msgs  []giraf.Payload
}

func (s stubInbox) Round(k int) []giraf.Payload {
	if k == s.round {
		return s.msgs
	}
	return nil
}
func (s stubInbox) Fresh() []giraf.Payload { return nil }
func (s stubInbox) CurrentRound() int      { return s.round }

// junkPayload is a payload of a foreign algorithm family.
type junkPayload struct{}

func (junkPayload) PayloadKey() string { return "junk!" }

func TestOmegaTrackerMinMergeTable(t *testing.T) {
	// Direct Compute calls pin the min-merge semantics: a counter survives
	// only as high as the least informed sender reports it, an ID absent
	// from any table is deleted, and foreign payloads are skipped.
	o := NewOmegaTracker(0)
	o.Initialize()
	_, dec := o.Compute(1, stubInbox{round: 1, msgs: []giraf.Payload{
		junkPayload{},
		HeartbeatPayload{ID: 0, Counts: map[int]int{0: 4, 1: 9, 2: 2}},
		HeartbeatPayload{ID: 1, Counts: map[int]int{0: 6, 1: 3}}, // no entry for 2 → delete
	}})
	if dec.Decided {
		t.Fatal("Ω tracker must never decide")
	}
	// Min-merge: 0→4, 1→3, 2 deleted; then bump both heartbeat senders.
	if got := o.Count(0); got != 5 {
		t.Errorf("count(0) = %d, want min(4,6)+1 = 5", got)
	}
	if got := o.Count(1); got != 4 {
		t.Errorf("count(1) = %d, want min(9,3)+1 = 4", got)
	}
	if got := o.Count(2); got != 0 {
		t.Errorf("count(2) = %d, want 0 (erased by min-merge)", got)
	}
	// Leader: maximal count (0 with 5), not self-bias.
	if got := o.Leader(); got != 0 {
		t.Errorf("leader = %d, want 0", got)
	}
}

func TestHeartbeatPayloadKeyCanonical(t *testing.T) {
	a := HeartbeatPayload{ID: 3, Counts: map[int]int{2: 1, 0: 7, 9: 4}}
	b := HeartbeatPayload{ID: 3, Counts: map[int]int{9: 4, 0: 7, 2: 1}}
	if a.PayloadKey() != b.PayloadKey() {
		t.Error("identical payloads with different map orders must share a key")
	}
	if a.PayloadKey() != "hb!3!0=7;2=1;9=4;" {
		t.Errorf("key %q is not the canonical sorted form", a.PayloadKey())
	}
	if (HeartbeatPayload{ID: 1}).PayloadKey() == (HeartbeatPayload{ID: 2}).PayloadKey() {
		t.Error("distinct IDs must yield distinct keys")
	}
}
