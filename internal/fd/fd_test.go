package fd

import (
	"strings"
	"testing"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
)

func TestProp4DisprovesTimeoutQuorum(t *testing.T) {
	for _, window := range []int{1, 3, 10} {
		h := &Prop4Harness{New: func() SigmaCandidate { return &TimeoutQuorum{Window: window} }}
		v, err := h.Disprove()
		if err != nil {
			t.Fatal(err)
		}
		if v.Kind != "intersection" {
			t.Errorf("window %d: violation kind %q, want intersection (%s)", window, v.Kind, v.Detail)
		}
		if v.RunOneRound <= 0 || v.RunTwoRound <= v.RunOneRound {
			t.Errorf("window %d: implausible rounds in %+v", window, v)
		}
	}
}

func TestProp4DisprovesMajorityStick(t *testing.T) {
	h := &Prop4Harness{New: func() SigmaCandidate { return &MajorityStick{Silence: 4} }}
	v, err := h.Disprove()
	if err != nil {
		t.Fatal(err)
	}
	// Either it eventually drops the silent process (intersection violated
	// via the two-run construction) or it never does (completeness
	// violated). Both disprove Σ-ness.
	if v.Kind != "intersection" && v.Kind != "completeness" {
		t.Errorf("unexpected kind %q", v.Kind)
	}
}

func TestProp4DisprovesEagerSelf(t *testing.T) {
	h := &Prop4Harness{New: func() SigmaCandidate { return &EagerSelf{} }}
	v, err := h.Disprove()
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != "intersection" {
		t.Errorf("kind = %q (%s)", v.Kind, v.Detail)
	}
	if !strings.Contains(v.Detail, "indistinguishable") {
		t.Errorf("detail should explain the construction: %s", v.Detail)
	}
}

// foreverAll never satisfies completeness: it trusts everybody forever.
type foreverAll struct{ n int }

func (c *foreverAll) Init(id, n int) { c.n = n }
func (c *foreverAll) Round(k int, heard []int) []int {
	out := make([]int, c.n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestProp4ReportsCompletenessFailure(t *testing.T) {
	h := &Prop4Harness{New: func() SigmaCandidate { return &foreverAll{} }, Horizon: 50}
	v, err := h.Disprove()
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != "completeness" {
		t.Errorf("kind = %q, want completeness", v.Kind)
	}
}

func TestProp4RejectsNilFactory(t *testing.T) {
	if _, err := (&Prop4Harness{}).Disprove(); err == nil {
		t.Error("nil factory must error")
	}
}

func TestOmegaTrackerStabilizesOnSource(t *testing.T) {
	// Known-network Ω under an eventually-stable-source schedule: after
	// enough rounds past GST every process's leader estimate is the source.
	n, gst, src := 5, 10, 3
	trackers := make([]*OmegaTracker, n)
	res, err := sim.Run(sim.Config{
		N: n,
		Automaton: func(i int) giraf.Automaton {
			trackers[i] = NewOmegaTracker(i)
			return trackers[i]
		},
		Policy:    &sim.ESS{GST: gst, StableSource: src, Pre: sim.MS{Seed: 7}},
		MaxRounds: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 150 {
		t.Fatalf("run ended early at %d", res.Rounds)
	}
	for i, tr := range trackers {
		if got := tr.Leader(); got != src {
			t.Errorf("process %d elects %d, want source %d", i, got, src)
		}
	}
}

func TestOmegaTrackerAgreesUnderSynchrony(t *testing.T) {
	// Fully synchronous: everyone hears everyone every round; ties break to
	// the smallest ID, so all agree on process 0.
	n := 4
	trackers := make([]*OmegaTracker, n)
	_, err := sim.Run(sim.Config{
		N: n,
		Automaton: func(i int) giraf.Automaton {
			trackers[i] = NewOmegaTracker(i)
			return trackers[i]
		},
		Policy:    sim.Synchronous{},
		MaxRounds: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trackers {
		if got := tr.Leader(); got != 0 {
			t.Errorf("process %d elects %d, want 0", i, got)
		}
	}
	if !trackers[0].IsLeader() || trackers[1].IsLeader() {
		t.Error("IsLeader inconsistent with Leader")
	}
}

func TestOmegaConvergenceRound(t *testing.T) {
	// Measure when the leader estimate stabilizes (T4's ID-based baseline):
	// it must be within a few rounds of GST.
	n, gst, src := 4, 8, 2
	trackers := make([]*OmegaTracker, n)
	converged := -1
	_, err := sim.Run(sim.Config{
		N: n,
		Automaton: func(i int) giraf.Automaton {
			trackers[i] = NewOmegaTracker(i)
			return trackers[i]
		},
		Policy:    &sim.ESS{GST: gst, StableSource: src, Pre: sim.MS{Seed: 11}},
		MaxRounds: 200,
		OnRound: func(r int, e *sim.Engine) {
			all := true
			for _, tr := range trackers {
				if tr.Leader() != src {
					all = false
					break
				}
			}
			if all && converged < 0 {
				converged = r
			} else if !all {
				converged = -1 // must stay converged to count
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if converged < 0 {
		t.Fatal("leader estimates never stabilized on the source")
	}
}

func TestOmegaTrackerCount(t *testing.T) {
	trackers := make([]*OmegaTracker, 2)
	_, err := sim.Run(sim.Config{
		N: 2,
		Automaton: func(i int) giraf.Automaton {
			trackers[i] = NewOmegaTracker(i)
			return trackers[i]
		},
		Policy:    sim.Synchronous{},
		MaxRounds: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trackers[0].Count(1) == 0 {
		t.Error("counts of a timely peer must grow")
	}
	if trackers[0].Count(99) != 0 {
		t.Error("unknown id must count 0")
	}
}
