package fd

import (
	"fmt"
	"maps"
	"strings"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/ordered"
)

// HeartbeatPayload is the wire payload of the ID-based Ω tracker: the
// sender's identity plus its gossiped per-ID timeliness counters. The ID
// field is the thing anonymous processes do not have — Algorithm 3's
// proposal histories stand in for it, and its counter table C is exactly
// this Counts map keyed by history instead of by ID.
type HeartbeatPayload struct {
	ID     int
	Counts map[int]int
}

var _ giraf.Payload = HeartbeatPayload{}

// PayloadKey implements giraf.Payload with a canonical counts encoding.
func (p HeartbeatPayload) PayloadKey() string {
	ids := ordered.Keys(p.Counts)
	var b strings.Builder
	fmt.Fprintf(&b, "hb!%d!", p.ID)
	for _, id := range ids {
		fmt.Fprintf(&b, "%d=%d;", id, p.Counts[id])
	}
	return b.String()
}

// OmegaTracker implements Ω by gossiped heartbeat counting in a *known*
// network, mirroring Algorithm 3's pseudo leader election with IDs in
// place of histories: every round a process (1) min-merges the counter
// tables it received — so a counter only survives as high as the *least*
// informed sender reports it — and (2) bumps the counter of every ID whose
// message arrived timely this round. An eventual stable source's counter
// grows by one per round everywhere while every other counter is capped by
// its victim's slowest link, so the argmax (ties to the smaller ID)
// stabilizes on the source. Compare values.Counters.{MinMerge,Bump}.
type OmegaTracker struct {
	id     int
	counts map[int]int
}

var _ giraf.Automaton = (*OmegaTracker)(nil)

// NewOmegaTracker returns the tracker for process id.
func NewOmegaTracker(id int) *OmegaTracker {
	return &OmegaTracker{id: id, counts: make(map[int]int)}
}

// Initialize implements giraf.Automaton.
func (o *OmegaTracker) Initialize() giraf.Payload {
	return HeartbeatPayload{ID: o.id, Counts: map[int]int{}}
}

// Compute implements giraf.Automaton. It never decides.
func (o *OmegaTracker) Compute(k int, inbox giraf.Inbox) (giraf.Payload, giraf.Decision) {
	msgs := inbox.Round(k)
	// Min-merge the gossiped tables (absent = 0), as Algorithm 3 line 8.
	// The first *heartbeat* seeds the table: payloads of a foreign
	// algorithm family are skipped entirely, wherever they sort.
	merged := make(map[int]int)
	seeded := false
	for _, m := range msgs {
		hb, ok := m.(HeartbeatPayload)
		if !ok {
			continue
		}
		if !seeded {
			seeded = true
			maps.Copy(merged, hb.Counts)
			continue
		}
		//detlint:ordered per-key min-merge: each entry is kept, lowered or deleted independently
		for id, c := range merged {
			hc, present := hb.Counts[id]
			if !present {
				delete(merged, id)
			} else if hc < c {
				merged[id] = hc
			}
		}
	}
	// Bump every timely sender, as Algorithm 3 line 9.
	for _, m := range msgs {
		if hb, ok := m.(HeartbeatPayload); ok {
			merged[hb.ID]++
		}
	}
	o.counts = merged
	return HeartbeatPayload{ID: o.id, Counts: maps.Clone(merged)}, giraf.Decision{}
}

// Leader returns the current leader estimate: maximal count, ties to the
// smaller ID. Before any heartbeat it returns the process itself.
func (o *OmegaTracker) Leader() int {
	best, bestCount, found := o.id, -1, false
	//detlint:ordered argmax under the strict total order (count desc, id asc) is visit-order-independent
	for id, c := range o.counts {
		if c > bestCount || (c == bestCount && id < best) {
			best, bestCount, found = id, c, true
		}
	}
	if !found {
		return o.id
	}
	return best
}

// IsLeader reports whether this process currently considers itself leader.
func (o *OmegaTracker) IsLeader() bool { return o.Leader() == o.id }

// Count returns the current counter for id (0 if unknown), for tests.
func (o *OmegaTracker) Count(id int) int { return o.counts[id] }
