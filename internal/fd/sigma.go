// Package fd contains the failure-detector side of the paper:
//
//   - the Σ (quorum) failure-detector specification and the Proposition 4
//     harness, which shows *empirically* that no algorithm emulates Σ in
//     the MS environment even with known IDs and n: for any deterministic
//     candidate emulator the harness constructs the paper's two-run
//     indistinguishability scenario and extracts a concrete violation of
//     Intersection (or of Completeness, if the candidate never converges);
//
//   - an ID-based Ω implementation (heartbeat counting in the style of
//     Aguilera et al. [1]) used as the known-network comparison baseline
//     for the paper's anonymous pseudo leader election (experiment T4).
package fd

import (
	"fmt"
	"sort"
)

// SigmaCandidate is a deterministic algorithm that tries to emulate the Σ
// failure detector in a known network (IDs 0..n−1) running in the MS
// environment. The harness drives one instance per process: each round the
// instance learns which processes' round-k messages it received timely
// (always including itself) and must output its currently trusted set.
//
// Candidates must be deterministic: the Prop. 4 argument replays a prefix
// and relies on identical outputs.
type SigmaCandidate interface {
	// Init tells the instance its own ID and the system size.
	Init(id, n int)
	// Round delivers the round's timely senders and returns the trusted
	// set output after this round.
	Round(k int, heard []int) []int
}

// Violation is the certificate the harness extracts.
type Violation struct {
	// Kind is "intersection" or "completeness".
	Kind string
	// Detail narrates the two-run construction with the concrete rounds.
	Detail string
	// RunOneRound is the round t at which p0 output {p0} in run r1.
	RunOneRound int
	// RunTwoRound is the round at which p1 output {p1} in run r2.
	RunTwoRound int
}

// Prop4Harness executes the two-run construction of Proposition 4 against
// a candidate factory (fresh instances per run).
type Prop4Harness struct {
	// New builds a fresh candidate instance.
	New func() SigmaCandidate
	// Horizon bounds each run; completeness must show up within it.
	Horizon int
}

// Disprove runs the construction with n = 2 and returns the violation. A
// nil violation (with non-nil error) means the harness could not drive the
// candidate to a decision within the horizon — which is itself a
// completeness failure, reported as such.
func (h *Prop4Harness) Disprove() (*Violation, error) {
	if h.New == nil {
		return nil, fmt.Errorf("fd: Prop4Harness needs a candidate factory")
	}
	horizon := h.Horizon
	if horizon <= 0 {
		horizon = 1000
	}

	// Run r1: p0 is the only correct process, always the source, and
	// receives nothing from p1 (its messages are delayed forever, which
	// reliability permits since p1 is faulty-silent here). By Completeness
	// p0 must eventually output exactly {0}.
	p0 := h.New()
	p0.Init(0, 2)
	t := -1
	for k := 1; k <= horizon; k++ {
		out := p0.Round(k, []int{0})
		if equalIDs(out, []int{0}) {
			t = k
			break
		}
	}
	if t < 0 {
		return &Violation{
			Kind: "completeness",
			Detail: fmt.Sprintf("in run r1 (p0 sole correct process, hears only itself) the candidate "+
				"never output {p0} within %d rounds: it cannot satisfy Completeness in the MS environment", horizon),
		}, nil
	}

	// Run r2: identical to r1 at p0 up to round t (p0 is the source until t
	// and still receives nothing), so by determinism p0 outputs {0} at
	// round t. Then p0 crashes. p1 is correct: up to t it heard p0 (the
	// source) and itself; afterwards only itself. By Completeness p1 must
	// eventually output {1}.
	p1 := h.New()
	p1.Init(1, 2)
	var p1Round int
	for k := 1; k <= horizon; k++ {
		heard := []int{1}
		if k <= t {
			heard = []int{0, 1} // p0 was the source until it crashed
		}
		out := p1.Round(k, heard)
		if k > t && equalIDs(out, []int{1}) {
			p1Round = k
			break
		}
	}
	if p1Round == 0 {
		return &Violation{
			Kind: "completeness",
			Detail: fmt.Sprintf("in run r2 (p0 crashes after round %d) the candidate at p1 kept trusting "+
				"the crashed p0 beyond round %d: it cannot satisfy Completeness", t, horizon),
			RunOneRound: t,
		}, nil
	}

	// Replay r1's prefix at p0 inside r2 to make the indistinguishability
	// concrete (determinism makes this re-derivation exact).
	p0r2 := h.New()
	p0r2.Init(0, 2)
	var p0Out []int
	for k := 1; k <= t; k++ {
		p0Out = p0r2.Round(k, []int{0})
	}
	if !equalIDs(p0Out, []int{0}) {
		return nil, fmt.Errorf("fd: candidate is not deterministic: replayed prefix diverged")
	}
	return &Violation{
		Kind: "intersection",
		Detail: fmt.Sprintf("run r2: p0 outputs {0} at round %d (indistinguishable from r1), then crashes; "+
			"p1 outputs {1} at round %d; the two trusted sets do not intersect", t, p1Round),
		RunOneRound: t,
		RunTwoRound: p1Round,
	}, nil
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
