package giraf

import (
	"testing"

	"anonconsensus/internal/values"
)

// TestInboxRoundAllocsWarm pins the refactor's core property: reading a
// round view re-sorts nothing and, once the snapshot is built, allocates
// nothing.
func TestInboxRoundAllocsWarm(t *testing.T) {
	p := NewProc(&staticAut{pay: sp(values.Num(0))})
	for i := 1; i <= 8; i++ {
		p.Receive(Envelope{Round: 1, Payloads: []Payload{sp(values.Num(int64(i)))}})
	}
	_ = p.Round(1) // build the snapshot
	if n := testing.AllocsPerRun(100, func() { _ = p.Round(1) }); n != 0 {
		t.Errorf("Inbox.Round on settled round: %v allocs/op, want 0", n)
	}
}

// TestMergeDedupAllocsWarm: merging an already-known payload set must not
// allocate (fingerprint lookups only). With a set-fingerprint on the
// envelope, the repeat deliveries take the dominance-skip path (the first
// full merge recorded the fingerprint in the round's seen list).
func TestMergeDedupAllocsWarm(t *testing.T) {
	p := NewProc(&staticAut{pay: sp(values.Num(0))})
	env := Envelope{
		Round:          1,
		Payloads:       []Payload{sp(values.Num(1)), sp(values.Num(2))},
		SetFingerprint: values.FingerprintString("warm-env"),
	}
	p.Receive(env)
	if n := testing.AllocsPerRun(100, func() { p.Receive(env) }); n != 0 {
		t.Errorf("duplicate envelope merge: %v allocs/op, want 0", n)
	}
	if p.MergeSkips() == 0 {
		t.Error("repeat deliveries of a fingerprinted envelope never took the skip path")
	}
}

// TestMergeDedupNoFingerprintAllocsWarm keeps the pre-dominance pin alive:
// even without a set fingerprint (skip path unavailable), a duplicate
// envelope's element-wise merge must not allocate.
func TestMergeDedupNoFingerprintAllocsWarm(t *testing.T) {
	p := NewProc(&staticAut{pay: sp(values.Num(0))})
	env := Envelope{
		Round:    1,
		Payloads: []Payload{sp(values.Num(1)), sp(values.Num(2))},
	}
	p.Receive(env)
	if n := testing.AllocsPerRun(100, func() { p.Receive(env) }); n != 0 {
		t.Errorf("duplicate envelope merge: %v allocs/op, want 0", n)
	}
	if p.MergeSkips() != 0 {
		t.Error("fingerprint-less envelope must never take the skip path")
	}
}

// TestDominanceSkipViaBroadcastCache pins the steady-state fast path: once
// a process has broadcast a round (caching the round's set fingerprint),
// an inbound envelope with the same fingerprint is skipped in O(1) with no
// allocation and no payload access.
func TestDominanceSkipViaBroadcastCache(t *testing.T) {
	p := NewProc(&staticAut{pay: sp(values.Num(0))})
	env, ok := p.EndOfRound() // broadcast round 1, caching its set fingerprint
	if !ok || env.SetFingerprint.IsZero() {
		t.Fatalf("broadcast envelope missing set fingerprint: %+v, ok=%v", env, ok)
	}
	before := p.Delivered()
	if n := testing.AllocsPerRun(100, func() { p.Receive(env) }); n != 0 {
		t.Errorf("dominated envelope delivery: %v allocs/op, want 0", n)
	}
	if p.MergeSkips() == 0 {
		t.Error("fingerprint-identical echo of own broadcast was not skipped")
	}
	if p.Delivered() != before {
		t.Error("skipped deliveries must not change the Delivered count")
	}
}
