package giraf

import (
	"testing"

	"anonconsensus/internal/values"
)

// TestInboxRoundAllocsWarm pins the refactor's core property: reading a
// round view re-sorts nothing and, once the snapshot is built, allocates
// nothing.
func TestInboxRoundAllocsWarm(t *testing.T) {
	p := NewProc(&staticAut{pay: sp(values.Num(0))})
	for i := 1; i <= 8; i++ {
		p.Receive(Envelope{Round: 1, Payloads: []Payload{sp(values.Num(int64(i)))}})
	}
	_ = p.Round(1) // build the snapshot
	if n := testing.AllocsPerRun(100, func() { _ = p.Round(1) }); n != 0 {
		t.Errorf("Inbox.Round on settled round: %v allocs/op, want 0", n)
	}
}

// TestMergeDedupAllocsWarm: merging an already-known payload set must not
// allocate (fingerprint lookups only).
func TestMergeDedupAllocsWarm(t *testing.T) {
	p := NewProc(&staticAut{pay: sp(values.Num(0))})
	env := Envelope{
		Round:          1,
		Payloads:       []Payload{sp(values.Num(1)), sp(values.Num(2))},
		SetFingerprint: values.FingerprintString("warm-env"),
	}
	p.Receive(env)
	if n := testing.AllocsPerRun(100, func() { p.Receive(env) }); n != 0 {
		t.Errorf("duplicate envelope merge: %v allocs/op, want 0", n)
	}
}
