package giraf

import (
	"fmt"
	"sort"

	"anonconsensus/internal/values"
)

// DeltaTracker turns full envelopes into delta envelopes on the sender
// side of a reliable FIFO transport. A payload travels in full whenever it
// was not part of the sender's previous envelope; payloads repeated from
// the previous envelope (GIRAF rebroadcasts the whole inbox each round, so
// in steady state that is almost all of them) travel as fingerprint
// references. This removes the O(n²)-payloads-per-round rebroadcast cost
// Algorithm 1 inherits from GIRAF while keeping the reliable-link
// assumption intact — every receiver can reconstruct every envelope from
// the stream itself — and bounds sender-side state to one envelope's worth
// of fingerprints (references never reach further back than the
// immediately preceding send).
//
// A DeltaTracker is per-stream state and is not safe for concurrent use.
type DeltaTracker struct {
	prev map[values.Fingerprint]struct{}
	next map[values.Fingerprint]struct{}
}

// NewDeltaTracker returns an empty tracker (everything will be sent full).
func NewDeltaTracker() *DeltaTracker {
	return &DeltaTracker{
		prev: make(map[values.Fingerprint]struct{}),
		next: make(map[values.Fingerprint]struct{}),
	}
}

// Shrink rewrites env into delta form: payloads that were part of the
// previous Shrink call's envelope move to Refs (fingerprints only); new or
// reappearing payloads stay in Payloads. The set fingerprint is preserved.
// The first envelope of a stream is the full-set fallback: Refs stays
// empty and the envelope is equivalent to its full form.
func (t *DeltaTracker) Shrink(env Envelope) Envelope {
	out := Envelope{Round: env.Round, SetFingerprint: env.SetFingerprint}
	next := t.next
	clear(next)
	for _, pay := range env.Payloads {
		_, fp := payloadCanon(pay)
		next[fp] = struct{}{}
		if _, ok := t.prev[fp]; ok {
			out.Refs = append(out.Refs, fp)
			continue
		}
		out.Payloads = append(out.Payloads, pay)
	}
	t.prev, t.next = next, t.prev
	return out
}

// resolveWindow is how many stream frames a ResolveTable retains payloads
// for. Senders only ever reference their immediately preceding envelope,
// and one sender's consecutive frames are interleaved with at most the
// other peers' traffic on a hub downlink, so a window of thousands of
// frames is orders of magnitude more than resolution needs while keeping
// receiver memory proportional to the window, not the stream length.
const resolveWindow = 4096

// ResolveTable is the receiver-side counterpart of DeltaTracker: it
// remembers recently observed payloads by fingerprint and resolves delta
// envelopes back to full form. Payloads age out once they have not been
// observed (sent full or referenced) for resolveWindow frames, so a
// long-lived node's memory is bounded by the window instead of growing
// with the run. On a reliable FIFO stream every reference points at a
// payload observed in the referencing sender's previous frame — well
// inside the window — so resolution never fails for a well-formed peer; a
// failing resolution means a corrupt, hostile, or impossibly delayed
// frame.
//
// A ResolveTable is per-stream state and is not safe for concurrent use.
type ResolveTable struct {
	byFP  map[values.Fingerprint]resolveEntry
	aging []agingRecord
	frame int
}

type resolveEntry struct {
	pay      Payload
	lastSeen int
}

type agingRecord struct {
	fp    values.Fingerprint
	frame int
}

// NewResolveTable returns an empty table.
func NewResolveTable() *ResolveTable {
	return &ResolveTable{byFP: make(map[values.Fingerprint]resolveEntry)}
}

// Observe records a payload so later references to it resolve (and
// refreshes its retention window).
func (rt *ResolveTable) Observe(pay Payload) {
	_, fp := payloadCanon(pay)
	rt.observe(fp, pay)
}

func (rt *ResolveTable) observe(fp values.Fingerprint, pay Payload) {
	rt.byFP[fp] = resolveEntry{pay: pay, lastSeen: rt.frame}
	rt.aging = append(rt.aging, agingRecord{fp: fp, frame: rt.frame})
}

// Len returns the number of distinct payloads currently retained.
func (rt *ResolveTable) Len() int { return len(rt.byFP) }

// Resolve returns the full form of env: new payloads are observed, refs
// are looked up (refreshing their retention), and the payload list is
// restored to canonical key order (the order EndOfRound broadcasts), so
// the resolved envelope is structurally identical to the sender's full
// envelope. It returns an error naming the first unresolvable reference.
func (rt *ResolveTable) Resolve(env Envelope) (Envelope, error) {
	for _, pay := range env.Payloads {
		rt.Observe(pay)
	}
	out := Envelope{Round: env.Round, SetFingerprint: env.SetFingerprint}
	if len(env.Refs) == 0 && isSorted(env.Payloads) {
		out.Payloads = env.Payloads
		rt.endFrame()
		return out, nil
	}
	full := make([]Payload, 0, len(env.Payloads)+len(env.Refs))
	full = append(full, env.Payloads...)
	for _, fp := range env.Refs {
		e, ok := rt.byFP[fp]
		if !ok {
			rt.endFrame()
			return Envelope{}, fmt.Errorf("giraf: unresolvable delta reference %v in round-%d envelope", fp, env.Round)
		}
		rt.observe(fp, e.pay) // referenced payloads stay retained
		full = append(full, e.pay)
	}
	sort.Slice(full, func(i, j int) bool { return full[i].PayloadKey() < full[j].PayloadKey() })
	out.Payloads = full
	rt.endFrame()
	return out, nil
}

// endFrame advances the frame clock and evicts payloads whose last
// observation has aged out of the window.
func (rt *ResolveTable) endFrame() {
	rt.frame++
	cutoff := rt.frame - resolveWindow
	i := 0
	for ; i < len(rt.aging) && rt.aging[i].frame < cutoff; i++ {
		rec := rt.aging[i]
		if e, ok := rt.byFP[rec.fp]; ok && e.lastSeen == rec.frame {
			delete(rt.byFP, rec.fp)
		}
	}
	if i > 0 {
		rt.aging = append(rt.aging[:0], rt.aging[i:]...)
	}
}

// isSorted reports whether payloads are already in canonical key order.
func isSorted(pays []Payload) bool {
	for i := 1; i < len(pays); i++ {
		if pays[i-1].PayloadKey() > pays[i].PayloadKey() {
			return false
		}
	}
	return true
}
