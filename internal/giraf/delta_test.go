package giraf

import (
	"testing"

	"anonconsensus/internal/values"
)

func sp(vs ...values.Value) Payload {
	return setPayload{values.NewSet(vs...)}
}

func keysOf(pays []Payload) []string {
	out := make([]string, len(pays))
	for i, p := range pays {
		out[i] = p.PayloadKey()
	}
	return out
}

func TestDeltaShrinkAndResolve(t *testing.T) {
	a, b, c := sp(values.Num(1)), sp(values.Num(2)), sp(values.Num(1), values.Num(2))
	tracker := NewDeltaTracker()
	table := NewResolveTable()

	// First envelope: full-set fallback — nothing elided.
	env1 := Envelope{Round: 1, Payloads: []Payload{a, b}}
	d1 := tracker.Shrink(env1)
	if len(d1.Refs) != 0 || len(d1.Payloads) != 2 {
		t.Fatalf("first shrink must be full: %d refs, %d payloads", len(d1.Refs), len(d1.Payloads))
	}
	r1, err := table.Resolve(d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Payloads) != 2 {
		t.Fatalf("resolved first envelope has %d payloads", len(r1.Payloads))
	}

	// Second envelope repeats a and b and adds c: only c travels in full.
	env2 := Envelope{Round: 2, Payloads: []Payload{a, b, c}}
	d2 := tracker.Shrink(env2)
	if len(d2.Refs) != 2 || len(d2.Payloads) != 1 {
		t.Fatalf("second shrink: %d refs, %d payloads (want 2, 1)", len(d2.Refs), len(d2.Payloads))
	}
	r2, err := table.Resolve(d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Payloads) != 3 {
		t.Fatalf("resolved second envelope has %d payloads, want 3", len(r2.Payloads))
	}
	// Resolution restores canonical key order — identical to the full form.
	got := keysOf(r2.Payloads)
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("resolved payloads not in canonical order: %q", got)
		}
	}
}

func TestResolveUnresolvableRef(t *testing.T) {
	table := NewResolveTable()
	_, err := table.Resolve(Envelope{Round: 1, Refs: []values.Fingerprint{{Hi: 1, Lo: 2}}})
	if err == nil {
		t.Fatal("resolving an unknown reference must fail")
	}
}

// TestDeltaWindowResendsAfterAbsence: references only reach back one
// envelope — a payload that skips an envelope travels in full again, the
// property that keeps sender state bounded to one envelope's fingerprints.
func TestDeltaWindowResendsAfterAbsence(t *testing.T) {
	a, b := sp(values.Num(1)), sp(values.Num(2))
	tr := NewDeltaTracker()
	_ = tr.Shrink(Envelope{Round: 1, Payloads: []Payload{a}})
	_ = tr.Shrink(Envelope{Round: 2, Payloads: []Payload{b}}) // a absent
	d := tr.Shrink(Envelope{Round: 3, Payloads: []Payload{a}})
	if len(d.Refs) != 0 || len(d.Payloads) != 1 {
		t.Fatalf("reappearing payload must travel full: %d refs, %d payloads", len(d.Refs), len(d.Payloads))
	}
}

// TestResolveTableEvictsOutsideWindow: retention is bounded — a payload
// not observed for resolveWindow frames ages out, while continuously
// referenced payloads stay resolvable indefinitely.
func TestResolveTableEvictsOutsideWindow(t *testing.T) {
	hot, cold := sp(values.Num(1)), sp(values.Num(2))
	_, hotFP := payloadCanon(hot)
	_, coldFP := payloadCanon(cold)
	rt := NewResolveTable()
	if _, err := rt.Resolve(Envelope{Round: 1, Payloads: []Payload{hot, cold}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < resolveWindow+8; i++ {
		// hot is referenced every frame; cold never again.
		if _, err := rt.Resolve(Envelope{Round: 2 + i, Refs: []values.Fingerprint{hotFP}}); err != nil {
			t.Fatalf("continuously referenced payload aged out at frame %d: %v", i, err)
		}
	}
	if _, err := rt.Resolve(Envelope{Round: 9999, Refs: []values.Fingerprint{coldFP}}); err == nil {
		t.Fatal("payload unobserved for a full window must be evicted")
	}
	if rt.Len() > 4 {
		t.Errorf("table retains %d entries after eviction, want a handful", rt.Len())
	}
}

func TestDeltaTrackerPerStreamIndependence(t *testing.T) {
	a := sp(values.Num(1))
	t1, t2 := NewDeltaTracker(), NewDeltaTracker()
	_ = t1.Shrink(Envelope{Round: 1, Payloads: []Payload{a}})
	d := t2.Shrink(Envelope{Round: 1, Payloads: []Payload{a}})
	if len(d.Payloads) != 1 || len(d.Refs) != 0 {
		t.Fatal("trackers must not share sent state across streams")
	}
}

// TestDuplicateEnvelopeIdempotent: re-merging a structurally identical
// envelope changes nothing — fingerprint-level dedup makes delivery
// idempotent, which is what reliable-but-duplicating transports rely on.
func TestDuplicateEnvelopeIdempotent(t *testing.T) {
	p := NewProc(&staticAut{pay: sp(values.Num(9))})
	env := Envelope{
		Round:          1,
		Payloads:       []Payload{sp(values.Num(1)), sp(values.Num(2))},
		SetFingerprint: values.FingerprintString("test-env"),
	}
	p.Receive(env)
	if p.Delivered() != 2 || p.InboxSize(1) != 2 {
		t.Fatalf("first merge: delivered=%d size=%d", p.Delivered(), p.InboxSize(1))
	}
	p.Receive(env) // identical envelope: every payload dedups in O(1)
	if p.Delivered() != 2 || p.InboxSize(1) != 2 {
		t.Fatalf("duplicate merge changed state: delivered=%d size=%d", p.Delivered(), p.InboxSize(1))
	}
	// A different envelope for the same round still merges.
	p.Receive(Envelope{
		Round:          1,
		Payloads:       []Payload{sp(values.Num(3))},
		SetFingerprint: values.FingerprintString("test-env-2"),
	})
	if p.Delivered() != 3 || p.InboxSize(1) != 3 {
		t.Fatalf("distinct envelope not merged: delivered=%d size=%d", p.Delivered(), p.InboxSize(1))
	}
}

// TestRoundViewIncrementalOrder: insertions in arbitrary order always read
// back in canonical key order, and the cached view is refreshed on growth.
func TestRoundViewIncrementalOrder(t *testing.T) {
	p := NewProc(&staticAut{pay: sp(values.Num(0))})
	p.Receive(Envelope{Round: 1, Payloads: []Payload{sp(values.Num(5))}})
	p.Receive(Envelope{Round: 1, Payloads: []Payload{sp(values.Num(1))}})
	first := p.Round(1)
	if len(first) != 2 {
		t.Fatalf("round view has %d payloads", len(first))
	}
	p.Receive(Envelope{Round: 1, Payloads: []Payload{sp(values.Num(3))}})
	second := p.Round(1)
	if len(second) != 3 {
		t.Fatalf("round view did not grow: %d", len(second))
	}
	if len(first) != 2 {
		t.Fatal("previously returned snapshot mutated by later insertion")
	}
	got := keysOf(second)
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("round view out of canonical order: %q", got)
		}
	}
}

// staticAut is a trivial automaton for inbox-level tests.
type staticAut struct{ pay Payload }

func (a *staticAut) Initialize() Payload { return a.pay }
func (a *staticAut) Compute(k int, inbox Inbox) (Payload, Decision) {
	return a.pay, Decision{}
}
