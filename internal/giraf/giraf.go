// Package giraf implements the paper's extension of the Generic Round-based
// Algorithm Framework (GIRAF, Keidar & Shraer) for unknown and anonymous
// networks — Algorithm 1 of the paper.
//
// A process is an I/O automaton instantiated with two non-blocking
// functions, Initialize and Compute. The environment drives each process
// through rounds by invoking end-of-round; at the k-th invocation the
// process computes its round-k payload, adds it to its own round-(k+1)
// inbox, advances to round k+1, and broadcasts its whole round-(k+1) inbox.
// Receiving a broadcast merges the carried payload set into the local inbox
// of the corresponding round.
//
// The anonymity extension: inboxes are *sets* of payloads, not arrays
// indexed by sender. Two processes that broadcast structurally identical
// payloads contribute a single element — processes are indistinguishable by
// construction.
//
// Identity is canonical-form based (see PERFORMANCE.md): every payload has
// a canonical key and a 128-bit fingerprint of that key, fingerprint
// equality is structural equality, and payloads are immutable once returned
// by an automaton. Inboxes deduplicate on fingerprints and keep an
// incrementally sorted round view, so neither membership tests nor
// Round(k) ever re-sort or re-encode. Envelopes additionally carry a
// fingerprint of their whole payload set — the set-level identity the
// delta wire format is built on (see DeltaTracker and package wire).
package giraf

import (
	"fmt"
	"sort"

	"anonconsensus/internal/values"
)

// Payload is one automaton-produced message. Implementations must provide a
// canonical key: two payloads are the same set element iff their keys are
// equal. Payloads must be treated as immutable once returned by an
// automaton.
type Payload interface {
	// PayloadKey returns the canonical structural encoding of the payload.
	PayloadKey() string
}

// Fingerprinted is an optional Payload extension for types that can
// produce their canonical fingerprint without the framework hashing the
// key string — typically because they cache it (values.Set does). The
// contract: PayloadFingerprint() == values.FingerprintString(PayloadKey()).
type Fingerprinted interface {
	PayloadFingerprint() values.Fingerprint
}

// payloadCanon returns the canonical key and fingerprint of p, using the
// payload's cache when it has one.
func payloadCanon(p Payload) (string, values.Fingerprint) {
	if f, ok := p.(Fingerprinted); ok {
		return p.PayloadKey(), f.PayloadFingerprint()
	}
	k := p.PayloadKey()
	return k, values.FingerprintString(k)
}

// Decision is the outcome of a Compute step.
type Decision struct {
	// Decided is true when the automaton executed "decide v; halt".
	Decided bool
	// Value is the decided value; meaningful only when Decided.
	Value values.Value
}

// Inbox is the read view of a process's received messages that Compute
// receives (the M_i array of Algorithm 1).
type Inbox interface {
	// Round returns the deduplicated payload set received for round k, in
	// canonical (key) order so automata iterate deterministically. The
	// returned slice is shared and must not be mutated or retained across
	// framework calls.
	Round(k int) []Payload
	// Fresh returns payloads delivered since the previous end-of-round, for
	// any round, in arrival order (duplicates across calls never repeat).
	// Algorithm 4 (weak-set) uses it to accumulate the union over all
	// rounds' messages without rescanning.
	Fresh() []Payload
	// CurrentRound returns the round the process is currently in.
	CurrentRound() int
}

// Automaton is the algorithm plugged into the framework: the initialize()
// and compute() functions of Algorithm 1. Implementations are per-process
// and need not be safe for concurrent use; the framework serializes calls.
type Automaton interface {
	// Initialize returns the process's round-1 payload (invoked at the first
	// end-of-round, when k_i = 0).
	Initialize() Payload
	// Compute consumes the inbox for round k and returns the payload for
	// round k+1 plus a possible decision. When the decision has Decided set,
	// the process halts: the returned payload is discarded and nothing
	// further is broadcast (Algorithm 2 line 10: "decide VAL; halt").
	Compute(k int, inbox Inbox) (Payload, Decision)
}

// Envelope is a broadcast message ⟨M, k⟩: the sender's round-k payload set
// at send time.
//
// An envelope can be in one of two forms:
//
//   - full: Payloads carries the entire set, Refs is nil. This is what
//     EndOfRound produces and what Proc.Receive consumes.
//   - delta: Payloads carries only payloads the sender has not broadcast
//     before, and Refs carries the fingerprints of the remaining payloads
//     of the set, each of which the sender broadcast in full in an earlier
//     envelope. Delta envelopes are a transport concern (see DeltaTracker
//     and ResolveTable, used by package wire): they must be resolved back
//     to full form before reaching Proc.Receive.
//
// SetFingerprint, when non-zero, fingerprints the entire payload set (in
// canonical order), identical across the full and delta forms of the same
// envelope: the set-level identity used on the wire.
type Envelope struct {
	Round    int
	Payloads []Payload
	// Refs holds fingerprints of payloads omitted from Payloads because the
	// sender already broadcast them (delta form); nil for full envelopes.
	Refs []values.Fingerprint
	// SetFingerprint is the fingerprint of the complete payload set, or the
	// zero Fingerprint when not computed.
	SetFingerprint values.Fingerprint
}

// roundInbox is the per-round storage: fingerprint-keyed membership plus an
// incrementally maintained canonical-key-sorted view.
type roundInbox struct {
	byFP map[values.Fingerprint]struct{}
	keys []string             // ascending canonical keys, parallel to pays
	pays []Payload            // payloads in key order
	fps  []values.Fingerprint // payload fingerprints, parallel to pays
	// view is the cached Round(k) snapshot; nil after an insertion.
	view []Payload
	// envFP is the cached fingerprint of the full payload set in key order;
	// zero after an insertion.
	envFP values.Fingerprint
}

// roundInboxHint pre-sizes the per-round storage: typical rounds hold at
// most one payload per anonymous equivalence class, so a small starting
// capacity absorbs the append-growth churn without bloating big-n runs.
const roundInboxHint = 8

func newRoundInbox() *roundInbox {
	return &roundInbox{
		byFP: make(map[values.Fingerprint]struct{}, roundInboxHint),
		keys: make([]string, 0, roundInboxHint),
		pays: make([]Payload, 0, roundInboxHint),
		fps:  make([]values.Fingerprint, 0, roundInboxHint),
	}
}

// recycle clears the storage for reuse by a later round (or run), keeping
// the map buckets and slice capacity warm.
func (ri *roundInbox) recycle() {
	clear(ri.byFP)
	clear(ri.keys[:cap(ri.keys)])
	clear(ri.pays[:cap(ri.pays)]) // drop payload refs so reuse doesn't pin them
	clear(ri.fps[:cap(ri.fps)])
	ri.keys = ri.keys[:0]
	ri.pays = ri.pays[:0]
	ri.fps = ri.fps[:0]
	ri.view = nil
	ri.envFP = values.Fingerprint{}
}

// insert adds a payload with the given canonical key and fingerprint,
// keeping the key order; it reports whether the payload was new.
func (ri *roundInbox) insert(key string, fp values.Fingerprint, pay Payload) bool {
	if _, ok := ri.byFP[fp]; ok {
		return false
	}
	ri.byFP[fp] = struct{}{}
	i := sort.SearchStrings(ri.keys, key)
	ri.keys = append(ri.keys, "")
	copy(ri.keys[i+1:], ri.keys[i:])
	ri.keys[i] = key
	ri.pays = append(ri.pays, nil)
	copy(ri.pays[i+1:], ri.pays[i:])
	ri.pays[i] = pay
	ri.fps = append(ri.fps, values.Fingerprint{})
	copy(ri.fps[i+1:], ri.fps[i:])
	ri.fps[i] = fp
	ri.view = nil
	ri.envFP = values.Fingerprint{}
	return true
}

// snapshot returns (building and caching if needed) the payloads in key
// order as a slice that stays valid across later insertions.
func (ri *roundInbox) snapshot() []Payload {
	if ri.view == nil {
		ri.view = make([]Payload, len(ri.pays))
		copy(ri.view, ri.pays)
	}
	return ri.view
}

// setFingerprint returns (computing and caching if needed) the fingerprint
// of the full payload set in key order.
func (ri *roundInbox) setFingerprint() values.Fingerprint {
	if ri.envFP.IsZero() {
		var h values.Hasher
		h.WriteString("E")
		for _, fp := range ri.fps {
			h.WriteFingerprint(fp)
		}
		ri.envFP = h.Sum()
	}
	return ri.envFP
}

// Proc is the framework state of one process: its round number, inbox
// array, and halted flag. Proc is not safe for concurrent use.
type Proc struct {
	aut      Automaton
	round    int // k_i: number of end-of-round invocations so far
	inbox    map[int]*roundInbox
	fresh    []Payload
	halted   bool
	decision Decision
	lastOwn  Payload

	// spare holds recycled round inboxes (from Reset and CompactBefore)
	// that future merges reuse instead of allocating.
	spare []*roundInbox

	// delivered counts payload-set merges that actually added something;
	// exposed for metrics.
	delivered int
}

var _ Inbox = (*Proc)(nil)

// NewProc wraps an automaton in framework state.
func NewProc(aut Automaton) *Proc {
	return &Proc{
		aut:   aut,
		inbox: make(map[int]*roundInbox),
	}
}

// Round implements Inbox. The slice is a cached snapshot in canonical key
// order; callers must not mutate it.
func (p *Proc) Round(k int) []Payload {
	ri := p.inbox[k]
	if ri == nil || len(ri.pays) == 0 {
		return nil
	}
	return ri.snapshot()
}

// Fresh implements Inbox: payloads added to any round's set since the last
// end-of-round. The returned slice aliases framework state: it is valid
// until the next Deliver/EndOfRound and must be treated as read-only —
// automata consume it within the round, so no copy is taken on this hot
// path.
//
//detlint:aliased read-only view consumed within the round; copying would cost an alloc per delivery on the hot path
func (p *Proc) Fresh() []Payload { return p.fresh }

// CurrentRound implements Inbox: the round the process is in (k_i).
func (p *Proc) CurrentRound() int { return p.round }

// Halted reports whether the process has decided and halted.
func (p *Proc) Halted() bool { return p.halted }

// Decision returns the process's decision (zero Decision if none yet).
func (p *Proc) Decision() Decision { return p.decision }

// Delivered returns the number of payload merges that added a new element,
// for metrics.
func (p *Proc) Delivered() int { return p.delivered }

// Receive merges a broadcast envelope into the inbox (Algorithm 1 lines
// 13–14: M_i[k] := M_i[k] ∪ M). Envelopes arriving after the process halted
// are ignored. The envelope must be in full form (Refs resolved by the
// transport); unresolved Refs are ignored — harmless under reliable
// broadcast, where every referenced payload also arrives in full in the
// sender's earlier envelope.
func (p *Proc) Receive(env Envelope) {
	if p.halted {
		return
	}
	p.merge(env.Round, env.Payloads)
}

// takeRoundInbox returns a cleared round inbox, reusing recycled storage
// when available.
func (p *Proc) takeRoundInbox() *roundInbox {
	if n := len(p.spare); n > 0 {
		ri := p.spare[n-1]
		p.spare[n-1] = nil
		p.spare = p.spare[:n-1]
		return ri
	}
	return newRoundInbox()
}

func (p *Proc) merge(round int, payloads []Payload) {
	ri := p.inbox[round]
	if ri == nil {
		ri = p.takeRoundInbox()
		p.inbox[round] = ri
	}
	for _, pay := range payloads {
		key, fp := payloadCanon(pay)
		if ri.insert(key, fp, pay) {
			p.fresh = append(p.fresh, pay)
			p.delivered++
		}
	}
}

// EndOfRound performs one end-of-round input action (Algorithm 1 lines
// 5–12): run initialize/compute, add the produced payload to the next
// round's inbox, advance the round, and return the broadcast envelope
// ⟨M_i[k_i], k_i⟩. The second result is false when nothing is broadcast
// (the process was already halted, or it decided during this step).
func (p *Proc) EndOfRound() (Envelope, bool) {
	if p.halted {
		return Envelope{}, false
	}
	var pay Payload
	if p.round == 0 {
		pay = p.aut.Initialize()
	} else {
		var dec Decision
		pay, dec = p.aut.Compute(p.round, p)
		if dec.Decided {
			p.halted = true
			p.decision = dec
			return Envelope{}, false
		}
	}
	if pay == nil {
		panic(fmt.Sprintf("giraf: automaton %T returned nil payload in round %d", p.aut, p.round))
	}
	p.fresh = nil // consumed by the Compute call that just ran
	p.lastOwn = pay
	p.merge(p.round+1, []Payload{pay})
	p.round++
	ri := p.inbox[p.round]
	return Envelope{
		Round:          p.round,
		Payloads:       ri.snapshot(),
		SetFingerprint: ri.setFingerprint(),
	}, true
}

// LastOwnPayload returns the payload the automaton produced at the most
// recent end-of-round (the process's own round-CurrentRound message), or
// nil before initialization. Environment checkers use it to test the
// payload-containment form of timeliness (footnote 2 of the paper).
func (p *Proc) LastOwnPayload() Payload { return p.lastOwn }

// InboxSize returns the number of distinct payloads stored for round k,
// for tests and metrics.
func (p *Proc) InboxSize(k int) int {
	ri := p.inbox[k]
	if ri == nil {
		return 0
	}
	return len(ri.pays)
}

// InboxRounds returns the number of rounds with stored payloads.
func (p *Proc) InboxRounds() int { return len(p.inbox) }

// CompactBefore drops all inbox rounds < k. Algorithms 2 and 3 only ever
// read the current round, so drivers
// of long runs can compact to keep memory flat. Late duplicate deliveries
// for a compacted round are then indistinguishable from first deliveries
// (they reappear in Fresh), which is harmless for union-style consumers
// like Algorithm 4 but means compaction must not be combined with
// exactly-once delivery accounting.
func (p *Proc) CompactBefore(k int) {
	//detlint:ordered per-entry recycle+delete; spares are interchangeable (cleared before reuse, only warm capacity differs)
	for round, ri := range p.inbox {
		if round < k {
			ri.recycle()
			p.spare = append(p.spare, ri)
			delete(p.inbox, round)
		}
	}
}

// Reset rearms the framework state around a fresh automaton so repeated
// trial loops can reuse one Proc per slot instead of cold-allocating: the
// inbox map keeps its buckets and every round inbox is recycled into the
// spare list consumed by future merges. After Reset the Proc is
// indistinguishable from NewProc(aut) except for warm storage.
func (p *Proc) Reset(aut Automaton) {
	p.aut = aut
	p.round = 0
	p.fresh = nil
	p.halted = false
	p.decision = Decision{}
	p.lastOwn = nil
	p.delivered = 0
	//detlint:ordered per-entry recycle+delete; spares are interchangeable (cleared before reuse, only warm capacity differs)
	for round, ri := range p.inbox {
		ri.recycle()
		p.spare = append(p.spare, ri)
		delete(p.inbox, round)
	}
}
