// Package giraf implements the paper's extension of the Generic Round-based
// Algorithm Framework (GIRAF, Keidar & Shraer) for unknown and anonymous
// networks — Algorithm 1 of the paper.
//
// A process is an I/O automaton instantiated with two non-blocking
// functions, Initialize and Compute. The environment drives each process
// through rounds by invoking end-of-round; at the k-th invocation the
// process computes its round-k payload, adds it to its own round-(k+1)
// inbox, advances to round k+1, and broadcasts its whole round-(k+1) inbox.
// Receiving a broadcast merges the carried payload set into the local inbox
// of the corresponding round.
//
// The anonymity extension: inboxes are *sets* of payloads, not arrays
// indexed by sender. Two processes that broadcast structurally identical
// payloads contribute a single element — processes are indistinguishable by
// construction.
package giraf

import (
	"fmt"
	"sort"

	"anonconsensus/internal/values"
)

// Payload is one automaton-produced message. Implementations must provide a
// canonical key: two payloads are the same set element iff their keys are
// equal. Payloads must be treated as immutable once returned by an
// automaton.
type Payload interface {
	// PayloadKey returns the canonical structural encoding of the payload.
	PayloadKey() string
}

// Decision is the outcome of a Compute step.
type Decision struct {
	// Decided is true when the automaton executed "decide v; halt".
	Decided bool
	// Value is the decided value; meaningful only when Decided.
	Value values.Value
}

// Inbox is the read view of a process's received messages that Compute
// receives (the M_i array of Algorithm 1).
type Inbox interface {
	// Round returns the deduplicated payload set received for round k, in
	// canonical (key) order so automata iterate deterministically.
	Round(k int) []Payload
	// Fresh returns payloads delivered since the previous end-of-round, for
	// any round, in arrival order (duplicates across calls never repeat).
	// Algorithm 4 (weak-set) uses it to accumulate the union over all
	// rounds' messages without rescanning.
	Fresh() []Payload
	// CurrentRound returns the round the process is currently in.
	CurrentRound() int
}

// Automaton is the algorithm plugged into the framework: the initialize()
// and compute() functions of Algorithm 1. Implementations are per-process
// and need not be safe for concurrent use; the framework serializes calls.
type Automaton interface {
	// Initialize returns the process's round-1 payload (invoked at the first
	// end-of-round, when k_i = 0).
	Initialize() Payload
	// Compute consumes the inbox for round k and returns the payload for
	// round k+1 plus a possible decision. When the decision has Decided set,
	// the process halts: the returned payload is discarded and nothing
	// further is broadcast (Algorithm 2 line 10: "decide VAL; halt").
	Compute(k int, inbox Inbox) (Payload, Decision)
}

// Envelope is a broadcast message ⟨M, k⟩: the sender's complete round-k
// payload set at send time.
type Envelope struct {
	Round    int
	Payloads []Payload
}

// Proc is the framework state of one process: its round number, inbox
// array, and halted flag. Proc is not safe for concurrent use.
type Proc struct {
	aut      Automaton
	round    int // k_i: number of end-of-round invocations so far
	inbox    map[int]map[string]Payload
	fresh    []Payload
	halted   bool
	decision Decision
	lastOwn  Payload

	// delivered counts payload-set merges that actually added something;
	// exposed for metrics.
	delivered int
}

var _ Inbox = (*Proc)(nil)

// NewProc wraps an automaton in framework state.
func NewProc(aut Automaton) *Proc {
	return &Proc{
		aut:   aut,
		inbox: make(map[int]map[string]Payload),
	}
}

// Round implements Inbox.
func (p *Proc) Round(k int) []Payload {
	set := p.inbox[k]
	if len(set) == 0 {
		return nil
	}
	keys := make([]string, 0, len(set))
	for key := range set {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	out := make([]Payload, len(keys))
	for i, key := range keys {
		out[i] = set[key]
	}
	return out
}

// Fresh implements Inbox: payloads added to any round's set since the last
// end-of-round.
func (p *Proc) Fresh() []Payload { return p.fresh }

// CurrentRound implements Inbox: the round the process is in (k_i).
func (p *Proc) CurrentRound() int { return p.round }

// Halted reports whether the process has decided and halted.
func (p *Proc) Halted() bool { return p.halted }

// Decision returns the process's decision (zero Decision if none yet).
func (p *Proc) Decision() Decision { return p.decision }

// Delivered returns the number of payload merges that added a new element,
// for metrics.
func (p *Proc) Delivered() int { return p.delivered }

// Receive merges a broadcast envelope into the inbox (Algorithm 1 lines
// 13–14: M_i[k] := M_i[k] ∪ M). Envelopes arriving after the process halted
// are ignored.
func (p *Proc) Receive(env Envelope) {
	if p.halted {
		return
	}
	p.merge(env.Round, env.Payloads)
}

func (p *Proc) merge(round int, payloads []Payload) {
	set := p.inbox[round]
	if set == nil {
		set = make(map[string]Payload)
		p.inbox[round] = set
	}
	for _, pay := range payloads {
		key := pay.PayloadKey()
		if _, ok := set[key]; ok {
			continue
		}
		set[key] = pay
		p.fresh = append(p.fresh, pay)
		p.delivered++
	}
}

// EndOfRound performs one end-of-round input action (Algorithm 1 lines
// 5–12): run initialize/compute, add the produced payload to the next
// round's inbox, advance the round, and return the broadcast envelope
// ⟨M_i[k_i], k_i⟩. The second result is false when nothing is broadcast
// (the process was already halted, or it decided during this step).
func (p *Proc) EndOfRound() (Envelope, bool) {
	if p.halted {
		return Envelope{}, false
	}
	var pay Payload
	if p.round == 0 {
		pay = p.aut.Initialize()
	} else {
		var dec Decision
		pay, dec = p.aut.Compute(p.round, p)
		if dec.Decided {
			p.halted = true
			p.decision = dec
			return Envelope{}, false
		}
	}
	if pay == nil {
		panic(fmt.Sprintf("giraf: automaton %T returned nil payload in round %d", p.aut, p.round))
	}
	p.fresh = nil // consumed by the Compute call that just ran
	p.lastOwn = pay
	p.merge(p.round+1, []Payload{pay})
	p.round++
	return Envelope{Round: p.round, Payloads: p.Round(p.round)}, true
}

// LastOwnPayload returns the payload the automaton produced at the most
// recent end-of-round (the process's own round-CurrentRound message), or
// nil before initialization. Environment checkers use it to test the
// payload-containment form of timeliness (footnote 2 of the paper).
func (p *Proc) LastOwnPayload() Payload { return p.lastOwn }

// InboxSize returns the number of distinct payloads stored for round k,
// for tests and metrics.
func (p *Proc) InboxSize(k int) int { return len(p.inbox[k]) }

// InboxRounds returns the number of rounds with stored payloads.
func (p *Proc) InboxRounds() int { return len(p.inbox) }

// CompactBefore drops all inbox rounds < k. Algorithms 2 and 3 only ever
// read the current round, so drivers of long runs can compact to keep
// memory flat. Late duplicate deliveries for a compacted round are then
// indistinguishable from first deliveries (they reappear in Fresh), which
// is harmless for union-style consumers like Algorithm 4 but means
// compaction must not be combined with exactly-once delivery accounting.
func (p *Proc) CompactBefore(k int) {
	for round := range p.inbox {
		if round < k {
			delete(p.inbox, round)
		}
	}
}
