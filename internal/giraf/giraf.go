// Package giraf implements the paper's extension of the Generic Round-based
// Algorithm Framework (GIRAF, Keidar & Shraer) for unknown and anonymous
// networks — Algorithm 1 of the paper.
//
// A process is an I/O automaton instantiated with two non-blocking
// functions, Initialize and Compute. The environment drives each process
// through rounds by invoking end-of-round; at the k-th invocation the
// process computes its round-k payload, adds it to its own round-(k+1)
// inbox, advances to round k+1, and broadcasts its whole round-(k+1) inbox.
// Receiving a broadcast merges the carried payload set into the local inbox
// of the corresponding round.
//
// The anonymity extension: inboxes are *sets* of payloads, not arrays
// indexed by sender. Two processes that broadcast structurally identical
// payloads contribute a single element — processes are indistinguishable by
// construction.
//
// Identity is canonical-form based (see PERFORMANCE.md): every payload has
// a canonical key and a 128-bit fingerprint of that key, fingerprint
// equality is structural equality, and payloads are immutable once returned
// by an automaton. Inboxes deduplicate on fingerprints and keep an
// incrementally sorted round view, so neither membership tests nor
// Round(k) ever re-sort or re-encode. Envelopes additionally carry a
// fingerprint of their whole payload set — the set-level identity the
// delta wire format is built on (see DeltaTracker and package wire).
package giraf

import (
	"fmt"
	"sort"

	"anonconsensus/internal/values"
)

// Payload is one automaton-produced message. Implementations must provide a
// canonical key: two payloads are the same set element iff their keys are
// equal. Payloads must be treated as immutable once returned by an
// automaton.
type Payload interface {
	// PayloadKey returns the canonical structural encoding of the payload.
	PayloadKey() string
}

// Fingerprinted is an optional Payload extension for types that can
// produce their canonical fingerprint without the framework hashing the
// key string — typically because they cache it (values.Set does). The
// contract: PayloadFingerprint() == values.FingerprintString(PayloadKey()).
type Fingerprinted interface {
	PayloadFingerprint() values.Fingerprint
}

// PayloadSizer is an optional Payload extension for types that can report
// the canonical encoding's length without materializing the key string —
// typically by reusing a cached encoded size (values.Set caches one). The
// contract: PayloadEncodedSize() == len(PayloadKey()).
type PayloadSizer interface {
	PayloadEncodedSize() int
}

// payloadCanon returns the canonical key and fingerprint of p, using the
// payload's cache when it has one.
func payloadCanon(p Payload) (string, values.Fingerprint) {
	if f, ok := p.(Fingerprinted); ok {
		return p.PayloadKey(), f.PayloadFingerprint()
	}
	k := p.PayloadKey()
	return k, values.FingerprintString(k)
}

// Decision is the outcome of a Compute step.
type Decision struct {
	// Decided is true when the automaton executed "decide v; halt".
	Decided bool
	// Value is the decided value; meaningful only when Decided.
	Value values.Value
}

// Inbox is the read view of a process's received messages that Compute
// receives (the M_i array of Algorithm 1).
type Inbox interface {
	// Round returns the deduplicated payload set received for round k, in
	// canonical (key) order so automata iterate deterministically. The
	// returned slice is shared and must not be mutated or retained across
	// framework calls.
	Round(k int) []Payload
	// Fresh returns payloads delivered since the previous end-of-round, for
	// any round, in arrival order (duplicates across calls never repeat).
	// Algorithm 4 (weak-set) uses it to accumulate the union over all
	// rounds' messages without rescanning.
	Fresh() []Payload
	// CurrentRound returns the round the process is currently in.
	CurrentRound() int
}

// Automaton is the algorithm plugged into the framework: the initialize()
// and compute() functions of Algorithm 1. Implementations are per-process
// and need not be safe for concurrent use; the framework serializes calls.
type Automaton interface {
	// Initialize returns the process's round-1 payload (invoked at the first
	// end-of-round, when k_i = 0).
	Initialize() Payload
	// Compute consumes the inbox for round k and returns the payload for
	// round k+1 plus a possible decision. When the decision has Decided set,
	// the process halts: the returned payload is discarded and nothing
	// further is broadcast (Algorithm 2 line 10: "decide VAL; halt").
	Compute(k int, inbox Inbox) (Payload, Decision)
}

// Envelope is a broadcast message ⟨M, k⟩: the sender's round-k payload set
// at send time.
//
// An envelope can be in one of two forms:
//
//   - full: Payloads carries the entire set, Refs is nil. This is what
//     EndOfRound produces and what Proc.Receive consumes.
//   - delta: Payloads carries only payloads the sender has not broadcast
//     before, and Refs carries the fingerprints of the remaining payloads
//     of the set, each of which the sender broadcast in full in an earlier
//     envelope. Delta envelopes are a transport concern (see DeltaTracker
//     and ResolveTable, used by package wire): they must be resolved back
//     to full form before reaching Proc.Receive.
//
// SetFingerprint, when non-zero, fingerprints the entire payload set (in
// canonical order), identical across the full and delta forms of the same
// envelope: the set-level identity used on the wire.
type Envelope struct {
	Round    int
	Payloads []Payload
	// Refs holds fingerprints of payloads omitted from Payloads because the
	// sender already broadcast them (delta form); nil for full envelopes.
	Refs []values.Fingerprint
	// SetFingerprint is the fingerprint of the complete payload set, or the
	// zero Fingerprint when not computed.
	SetFingerprint values.Fingerprint
}

// roundInbox is the per-round storage: fingerprint-keyed membership plus an
// incrementally maintained canonical-key-sorted view. Membership is a
// linear scan over the flat fingerprint slice while the round is small
// (the overwhelmingly common case: anonymous rounds hold one payload per
// equivalence class); a map index is built only once the round outgrows
// the scan threshold, so typical rounds never allocate map buckets.
type roundInbox struct {
	byFP map[values.Fingerprint]struct{} // nil until len(pays) > inboxScanMax
	keys []string             // canonical keys, parallel to pays; ascending once settled
	pays []Payload            // payloads, parallel to keys
	fps  []values.Fingerprint // payload fingerprints, parallel to pays
	// dirty marks that an append broke ascending key order; the order
	// consumers (snapshot, setFingerprint) re-establish it lazily, so a
	// burst of insertions costs one sort instead of a memmove each.
	dirty bool
	// seen holds the set-fingerprints of envelopes already fully merged
	// into this round (bounded; see dominates). Slots beyond seenCap are
	// simply not recorded — the dominance check is an optimization, merges
	// stay idempotent without it.
	seen []values.Fingerprint
	// view is the cached Round(k) snapshot; nil after an insertion.
	view []Payload
	// envFP is the cached fingerprint of the full payload set in key order;
	// zero after an insertion.
	envFP values.Fingerprint
}

// roundInboxHint pre-sizes the per-round storage: typical rounds hold at
// most one payload per anonymous equivalence class, so a small starting
// capacity absorbs the append-growth churn without bloating big-n runs.
const roundInboxHint = 8

// inboxScanMax is the round size up to which membership is a linear
// fingerprint scan; beyond it the byFP map takes over. 16 entries × 16
// bytes is two cache lines — cheaper to scan than to hash into a map.
const inboxScanMax = 16

// seenCap bounds the per-round list of merged envelope fingerprints. At
// steady state a round sees one or two distinct envelope sets; 8 slots
// absorb convergence churn without growing per-round state.
const seenCap = 8

func newRoundInbox() *roundInbox {
	return &roundInbox{
		keys: make([]string, 0, roundInboxHint),
		pays: make([]Payload, 0, roundInboxHint),
		fps:  make([]values.Fingerprint, 0, roundInboxHint),
	}
}

// recycle clears the storage for reuse by a later round (or run), keeping
// the map buckets and slice capacity warm. Only the occupied prefix needs
// clearing: entries past len were zeroed by the previous recycle and are
// never written without growing len first.
func (ri *roundInbox) recycle() {
	clear(ri.byFP)
	clear(ri.keys)
	clear(ri.pays) // drop payload refs so reuse doesn't pin them
	clear(ri.fps)
	clear(ri.seen)
	ri.keys = ri.keys[:0]
	ri.pays = ri.pays[:0]
	ri.fps = ri.fps[:0]
	ri.dirty = false
	ri.seen = ri.seen[:0]
	ri.view = nil
	ri.envFP = values.Fingerprint{}
}

// contains reports whether a payload with fingerprint fp is already
// stored: a flat scan while the round is small, the map index afterwards.
func (ri *roundInbox) contains(fp values.Fingerprint) bool {
	if ri.byFP != nil {
		_, ok := ri.byFP[fp]
		return ok
	}
	for _, f := range ri.fps {
		if f == fp {
			return true
		}
	}
	return false
}

// dominates reports whether an inbound envelope with the given non-zero
// set-fingerprint cannot add anything to this round: either its payload
// set is structurally identical to the stored set (fingerprint equality ⇔
// structural equality, the canonical-form invariant), or an envelope with
// the same set-fingerprint — hence the same payload set — was already
// merged in full. Only the *cached* set fingerprint is consulted (it is
// valid whenever the round was broadcast and nothing was inserted since —
// the steady state): recomputing it here would cost a hash over the whole
// round per delivery, turning convergence into O(n³) hashing. A stale
// cache just means one redundant merge, which insert dedups anyway.
func (ri *roundInbox) dominates(setFP values.Fingerprint) bool {
	if !ri.envFP.IsZero() && ri.envFP == setFP {
		return true
	}
	for _, f := range ri.seen {
		if f == setFP {
			return true
		}
	}
	return false
}

// recordMerged notes that an envelope with the given set-fingerprint has
// been merged in full, so later identical envelopes can be skipped.
func (ri *roundInbox) recordMerged(setFP values.Fingerprint) {
	if setFP.IsZero() || len(ri.seen) >= seenCap {
		return
	}
	ri.seen = append(ri.seen, setFP)
}

// insert adds a payload with the given canonical key and fingerprint,
// keeping the key order; it reports whether the payload was new.
func (ri *roundInbox) insert(key string, fp values.Fingerprint, pay Payload) bool {
	if ri.contains(fp) {
		return false
	}
	if ri.byFP != nil {
		ri.byFP[fp] = struct{}{}
	} else if len(ri.fps) >= inboxScanMax {
		ri.byFP = make(map[values.Fingerprint]struct{}, 2*inboxScanMax)
		for _, f := range ri.fps {
			ri.byFP[f] = struct{}{}
		}
		ri.byFP[fp] = struct{}{}
	}
	if n := len(ri.keys); n > 0 && key < ri.keys[n-1] {
		ri.dirty = true
	}
	ri.keys = append(ri.keys, key)
	ri.pays = append(ri.pays, pay)
	ri.fps = append(ri.fps, fp)
	ri.view = nil
	ri.envFP = values.Fingerprint{}
	return true
}

// inboxByKey sorts the three parallel payload slices by canonical key.
// Keys are pairwise distinct (key equality ⇔ fingerprint equality, and
// equal fingerprints are deduplicated on insert), so the order — hence
// every snapshot and set fingerprint — is unique regardless of arrival
// order.
type inboxByKey struct{ ri *roundInbox }

func (s inboxByKey) Len() int           { return len(s.ri.keys) }
func (s inboxByKey) Less(i, j int) bool { return s.ri.keys[i] < s.ri.keys[j] }
func (s inboxByKey) Swap(i, j int) {
	ri := s.ri
	ri.keys[i], ri.keys[j] = ri.keys[j], ri.keys[i]
	ri.pays[i], ri.pays[j] = ri.pays[j], ri.pays[i]
	ri.fps[i], ri.fps[j] = ri.fps[j], ri.fps[i]
}

// ensureSorted re-establishes ascending key order after appends.
func (ri *roundInbox) ensureSorted() {
	if ri.dirty {
		sort.Sort(inboxByKey{ri})
		ri.dirty = false
	}
}

// snapshot returns (building and caching if needed) the payloads in key
// order as a slice that stays valid across later insertions.
func (ri *roundInbox) snapshot() []Payload {
	ri.ensureSorted()
	if ri.view == nil {
		ri.view = make([]Payload, len(ri.pays))
		copy(ri.view, ri.pays)
	}
	return ri.view
}

// setFingerprint returns (computing and caching if needed) the fingerprint
// of the full payload set in key order.
func (ri *roundInbox) setFingerprint() values.Fingerprint {
	ri.ensureSorted()
	if ri.envFP.IsZero() {
		var h values.Hasher
		h.WriteString("E")
		for _, fp := range ri.fps {
			h.WriteFingerprint(fp)
		}
		ri.envFP = h.Sum()
	}
	return ri.envFP
}

// Proc is the framework state of one process: its round number, inbox
// array, and halted flag. Proc is not safe for concurrent use.
//
// Round storage is flat: inbox is indexed by round number (the M_i array
// of Algorithm 1, literally), so the hot paths — current-round merge,
// Round(k) reads — are a bounds check and a slice load instead of a map
// probe. Slots are nil until the round first stores a payload; recycled
// storage is drawn from the spare list.
type Proc struct {
	aut      Automaton
	round    int // k_i: number of end-of-round invocations so far
	inbox    []*roundInbox // indexed by round; nil slot = empty round
	// far holds rounds too distant from the dense window to index flat —
	// only reachable via a transport delivering an absurd round number
	// (see farRoundSlack); nil until first needed.
	far      map[int]*roundInbox
	fresh    []Payload
	halted   bool
	decision Decision
	lastOwn  Payload

	// spare holds recycled round inboxes (from Reset and CompactBefore)
	// that future merges reuse instead of allocating.
	spare []*roundInbox

	// delivered counts payload-set merges that actually added something;
	// exposed for metrics.
	delivered int
	// mergeSkips counts envelopes whose element-wise merge was skipped by
	// the dominance check (Receive); exposed for metrics.
	mergeSkips int
}

var _ Inbox = (*Proc)(nil)

// NewProc wraps an automaton in framework state.
func NewProc(aut Automaton) *Proc {
	return &Proc{aut: aut}
}

// farRoundSlack bounds how far past the dense window a round may grow the
// flat inbox array. Legitimate rounds are dense (every executed round
// stores at least the process's own payload), so only a transport
// delivering a corrupt-but-parseable frame can name a round this far
// ahead; those fall back to the sparse far map instead of growing the
// array to an attacker-chosen length.
const farRoundSlack = 1 << 16

// roundAt returns the storage for round k, or nil.
func (p *Proc) roundAt(k int) *roundInbox {
	if k < 0 {
		return nil
	}
	if k < len(p.inbox) {
		return p.inbox[k]
	}
	if p.far != nil {
		return p.far[k]
	}
	return nil
}

// Round implements Inbox. The slice is a cached snapshot in canonical key
// order; callers must not mutate it.
func (p *Proc) Round(k int) []Payload {
	ri := p.roundAt(k)
	if ri == nil || len(ri.pays) == 0 {
		return nil
	}
	return ri.snapshot()
}

// RoundSetFingerprint returns the fingerprint of round k's deduplicated
// payload set in canonical order, or the zero fingerprint when the round
// is empty. Two rounds share a fingerprint iff they hold structurally
// identical payload sets (the canonical-form invariant), which lets
// automata memoize pure functions of a round's contents across processes.
func (p *Proc) RoundSetFingerprint(k int) values.Fingerprint {
	ri := p.roundAt(k)
	if ri == nil || len(ri.pays) == 0 {
		return values.Fingerprint{}
	}
	return ri.setFingerprint()
}

// Fresh implements Inbox: payloads added to any round's set since the last
// end-of-round. The returned slice aliases framework state: it is valid
// until the next Deliver/EndOfRound and must be treated as read-only —
// automata consume it within the round, so no copy is taken on this hot
// path.
//
//detlint:aliased read-only view consumed within the round; copying would cost an alloc per delivery on the hot path
func (p *Proc) Fresh() []Payload { return p.fresh }

// CurrentRound implements Inbox: the round the process is in (k_i).
func (p *Proc) CurrentRound() int { return p.round }

// Halted reports whether the process has decided and halted.
func (p *Proc) Halted() bool { return p.halted }

// Decision returns the process's decision (zero Decision if none yet).
func (p *Proc) Decision() Decision { return p.decision }

// Delivered returns the number of payload merges that added a new element,
// for metrics.
func (p *Proc) Delivered() int { return p.delivered }

// MergeSkips returns the number of envelopes whose element-wise merge the
// dominance check skipped, for metrics.
func (p *Proc) MergeSkips() int { return p.mergeSkips }

// testForceFullMerge disables the dominance-check fast path so tests can
// compare skipped and always-merged runs element for element; see
// ForceFullMergeForTest.
var testForceFullMerge bool

// ForceFullMergeForTest disables (on=true) or re-enables (on=false) the
// dominance-check merge skipping globally. It exists solely for the
// dominance property tests, which assert that skipped and unskipped runs
// produce structurally identical round views; production code must never
// call it. It returns the previous setting.
func ForceFullMergeForTest(on bool) (prev bool) {
	prev, testForceFullMerge = testForceFullMerge, on
	return prev
}

// Receive merges a broadcast envelope into the inbox (Algorithm 1 lines
// 13–14: M_i[k] := M_i[k] ∪ M). Envelopes arriving after the process halted
// are ignored. The envelope must be in full form (Refs resolved by the
// transport); unresolved Refs are ignored — harmless under reliable
// broadcast, where every referenced payload also arrives in full in the
// sender's earlier envelope.
//
// Dominance-aware skipping: when the envelope carries a non-zero
// SetFingerprint and the round's stored set already dominates it — the
// stored set is structurally identical (equal set-fingerprint), or an
// envelope with the same set-fingerprint was already merged in full — the
// element-wise merge is skipped entirely. The skip is sound because set
// merging is idempotent and monotone and fingerprint equality is
// structural equality, so a dominated envelope cannot add an element,
// cannot extend Fresh, and cannot change Delivered. At steady state
// (every process broadcasting the same converged set) this turns the
// common-case delivery into one fingerprint comparison.
func (p *Proc) Receive(env Envelope) {
	if p.halted {
		return
	}
	if !env.SetFingerprint.IsZero() && !testForceFullMerge {
		if ri := p.roundAt(env.Round); ri != nil && ri.dominates(env.SetFingerprint) {
			p.mergeSkips++
			return
		}
	}
	ri := p.merge(env.Round, env.Payloads)
	ri.recordMerged(env.SetFingerprint)
}

// takeRoundInbox returns a cleared round inbox, reusing recycled storage
// when available.
func (p *Proc) takeRoundInbox() *roundInbox {
	if n := len(p.spare); n > 0 {
		ri := p.spare[n-1]
		p.spare[n-1] = nil
		p.spare = p.spare[:n-1]
		return ri
	}
	return newRoundInbox()
}

// ensureRound returns (allocating if needed) the storage for round k.
// Negative rounds (possible only from a garbage envelope) share one inbox
// with round 0 rather than growing state; they are never read back.
func (p *Proc) ensureRound(k int) *roundInbox {
	if k < 0 {
		k = 0
	}
	if k >= len(p.inbox)+farRoundSlack {
		if p.far == nil {
			p.far = make(map[int]*roundInbox)
		}
		ri := p.far[k]
		if ri == nil {
			ri = p.takeRoundInbox()
			p.far[k] = ri
		}
		return ri
	}
	for k >= len(p.inbox) {
		// Grow by appending nil slots; append's amortized doubling keeps
		// this O(1) per round over a run.
		p.inbox = append(p.inbox, nil)
	}
	ri := p.inbox[k]
	if ri == nil {
		ri = p.takeRoundInbox()
		p.inbox[k] = ri
	}
	return ri
}

func (p *Proc) merge(round int, payloads []Payload) *roundInbox {
	ri := p.ensureRound(round)
	for _, pay := range payloads {
		key, fp := payloadCanon(pay)
		if ri.insert(key, fp, pay) {
			p.fresh = append(p.fresh, pay)
			p.delivered++
		}
	}
	return ri
}

// EndOfRound performs one end-of-round input action (Algorithm 1 lines
// 5–12): run initialize/compute, add the produced payload to the next
// round's inbox, advance the round, and return the broadcast envelope
// ⟨M_i[k_i], k_i⟩. The second result is false when nothing is broadcast
// (the process was already halted, or it decided during this step).
func (p *Proc) EndOfRound() (Envelope, bool) {
	if p.halted {
		return Envelope{}, false
	}
	var pay Payload
	if p.round == 0 {
		pay = p.aut.Initialize()
	} else {
		var dec Decision
		pay, dec = p.aut.Compute(p.round, p)
		if dec.Decided {
			p.halted = true
			p.decision = dec
			return Envelope{}, false
		}
	}
	if pay == nil {
		panic(fmt.Sprintf("giraf: automaton %T returned nil payload in round %d", p.aut, p.round))
	}
	p.fresh = nil // consumed by the Compute call that just ran
	p.lastOwn = pay
	ri := p.merge(p.round+1, []Payload{pay})
	p.round++
	return Envelope{
		Round:          p.round,
		Payloads:       ri.snapshot(),
		SetFingerprint: ri.setFingerprint(),
	}, true
}

// LastOwnPayload returns the payload the automaton produced at the most
// recent end-of-round (the process's own round-CurrentRound message), or
// nil before initialization. Environment checkers use it to test the
// payload-containment form of timeliness (footnote 2 of the paper).
func (p *Proc) LastOwnPayload() Payload { return p.lastOwn }

// InboxSize returns the number of distinct payloads stored for round k,
// for tests and metrics.
func (p *Proc) InboxSize(k int) int {
	ri := p.roundAt(k)
	if ri == nil {
		return 0
	}
	return len(ri.pays)
}

// InboxRounds returns the number of rounds with stored payloads.
func (p *Proc) InboxRounds() int {
	n := len(p.far)
	for _, ri := range p.inbox {
		if ri != nil {
			n++
		}
	}
	return n
}

// CompactBefore drops all inbox rounds < k. Algorithms 2 and 3 only ever
// read the current round, so drivers
// of long runs can compact to keep memory flat. Late duplicate deliveries
// for a compacted round are then indistinguishable from first deliveries
// (they reappear in Fresh), which is harmless for union-style consumers
// like Algorithm 4 but means compaction must not be combined with
// exactly-once delivery accounting.
func (p *Proc) CompactBefore(k int) {
	if k > len(p.inbox) {
		k = len(p.inbox)
	}
	for round := 0; round < k; round++ {
		if ri := p.inbox[round]; ri != nil {
			ri.recycle()
			p.spare = append(p.spare, ri)
			p.inbox[round] = nil
		}
	}
	//detlint:ordered per-entry recycle+delete; spares are interchangeable (cleared before reuse, only warm capacity differs)
	for round, ri := range p.far {
		if round < k {
			ri.recycle()
			p.spare = append(p.spare, ri)
			delete(p.far, round)
		}
	}
}

// Reset rearms the framework state around a fresh automaton so repeated
// trial loops can reuse one Proc per slot instead of cold-allocating: the
// flat inbox array keeps its capacity and every round inbox is recycled
// into the spare list consumed by future merges. After Reset the Proc is
// indistinguishable from NewProc(aut) except for warm storage.
func (p *Proc) Reset(aut Automaton) {
	p.aut = aut
	p.round = 0
	p.fresh = nil
	p.halted = false
	p.decision = Decision{}
	p.lastOwn = nil
	p.delivered = 0
	p.mergeSkips = 0
	for round, ri := range p.inbox {
		if ri != nil {
			ri.recycle()
			p.spare = append(p.spare, ri)
			p.inbox[round] = nil
		}
	}
	p.inbox = p.inbox[:0]
	//detlint:ordered per-entry recycle+delete; spares are interchangeable (cleared before reuse, only warm capacity differs)
	for round, ri := range p.far {
		ri.recycle()
		p.spare = append(p.spare, ri)
		delete(p.far, round)
	}
}
