package giraf

import (
	"fmt"
	"testing"

	"anonconsensus/internal/values"
)

// setPayload is a minimal payload for framework tests: a plain value set.
type setPayload struct{ s values.Set }

func (p setPayload) PayloadKey() string { return p.s.Key() }

// echoAutomaton broadcasts its value every round and decides at a fixed
// round, recording what it saw.
type echoAutomaton struct {
	v        values.Value
	decideAt int
	seen     []int // distinct payload count per computed round
}

func (a *echoAutomaton) Initialize() Payload {
	return setPayload{values.NewSet(a.v)}
}

func (a *echoAutomaton) Compute(k int, in Inbox) (Payload, Decision) {
	a.seen = append(a.seen, len(in.Round(k)))
	if a.decideAt > 0 && k >= a.decideAt {
		return nil, Decision{Decided: true, Value: a.v}
	}
	return setPayload{values.NewSet(a.v)}, Decision{}
}

func TestProcFirstEndOfRoundInitializes(t *testing.T) {
	p := NewProc(&echoAutomaton{v: values.Num(1)})
	env, ok := p.EndOfRound()
	if !ok {
		t.Fatal("first EndOfRound must broadcast")
	}
	if env.Round != 1 {
		t.Errorf("round = %d, want 1", env.Round)
	}
	if len(env.Payloads) != 1 {
		t.Fatalf("payloads = %d, want 1 (own initialize payload)", len(env.Payloads))
	}
	if p.CurrentRound() != 1 {
		t.Errorf("CurrentRound = %d, want 1", p.CurrentRound())
	}
}

func TestOwnPayloadInOwnInbox(t *testing.T) {
	// Algorithm 1 line 10: the process's own payload lands in its own inbox.
	p := NewProc(&echoAutomaton{v: values.Num(1)})
	p.EndOfRound()
	if p.InboxSize(1) != 1 {
		t.Errorf("own round-1 inbox size = %d, want 1", p.InboxSize(1))
	}
}

func TestAnonymityDedup(t *testing.T) {
	// Identical payloads from different senders collapse to one element.
	p := NewProc(&echoAutomaton{v: values.Num(1)})
	p.EndOfRound()
	same := setPayload{values.NewSet(values.Num(1))} // equals own payload
	other := setPayload{values.NewSet(values.Num(2))}
	p.Receive(Envelope{Round: 1, Payloads: []Payload{same}})
	p.Receive(Envelope{Round: 1, Payloads: []Payload{same, other}})
	if got := p.InboxSize(1); got != 2 {
		t.Errorf("inbox size = %d, want 2 (dedup by payload key)", got)
	}
}

func TestEnvelopeCarriesWholeInbox(t *testing.T) {
	// Relaying: payloads received for round k+1 before the k-th end-of-round
	// ride along in the process's own round-(k+1) broadcast.
	p := NewProc(&echoAutomaton{v: values.Num(1)})
	p.EndOfRound() // now in round 1
	early := setPayload{values.NewSet(values.Num(9))}
	p.Receive(Envelope{Round: 2, Payloads: []Payload{early}}) // future round
	env, ok := p.EndOfRound()                                 // enter round 2
	if !ok {
		t.Fatal("EndOfRound must broadcast")
	}
	if env.Round != 2 || len(env.Payloads) != 2 {
		t.Errorf("round-2 envelope = (%d, %d payloads), want (2, 2): own + relayed", env.Round, len(env.Payloads))
	}
}

func TestHaltStopsBroadcasting(t *testing.T) {
	p := NewProc(&echoAutomaton{v: values.Num(3), decideAt: 1})
	p.EndOfRound() // init
	if _, ok := p.EndOfRound(); ok {
		t.Error("deciding step must not broadcast")
	}
	if !p.Halted() {
		t.Fatal("process must be halted after decide")
	}
	d := p.Decision()
	if !d.Decided || d.Value != values.Num(3) {
		t.Errorf("decision = %+v", d)
	}
	if _, ok := p.EndOfRound(); ok {
		t.Error("halted process must not broadcast")
	}
	// Receives after halt are ignored.
	p.Receive(Envelope{Round: 1, Payloads: []Payload{setPayload{values.NewSet(values.Num(8))}}})
	if p.InboxSize(1) != 1 { // still just its own round-1 payload
		t.Error("halted process must ignore receives")
	}
}

func TestFreshResetPerRound(t *testing.T) {
	a := &echoAutomaton{v: values.Num(1)}
	p := NewProc(a)
	p.EndOfRound() // init; own payload merged → fresh contains it
	if len(p.Fresh()) != 1 {
		t.Fatalf("fresh after init = %d, want 1 (own payload)", len(p.Fresh()))
	}
	x := setPayload{values.NewSet(values.Num(7))}
	p.Receive(Envelope{Round: 1, Payloads: []Payload{x}})
	if len(p.Fresh()) != 2 {
		t.Fatalf("fresh = %d, want 2", len(p.Fresh()))
	}
	p.EndOfRound() // consumes fresh, merges own round-2 payload
	if len(p.Fresh()) != 1 {
		t.Errorf("fresh after end-of-round = %d, want 1 (only new own payload)", len(p.Fresh()))
	}
}

func TestRoundPayloadsDeterministicOrder(t *testing.T) {
	p := NewProc(&echoAutomaton{v: values.Num(5)})
	p.EndOfRound()
	a := setPayload{values.NewSet(values.Num(1))}
	b := setPayload{values.NewSet(values.Num(2))}
	p.Receive(Envelope{Round: 1, Payloads: []Payload{b, a}})
	got := p.Round(1)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].PayloadKey() >= got[i].PayloadKey() {
			t.Fatal("Round must return payloads in canonical key order")
		}
	}
}

func TestNilPayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil payload from automaton must panic")
		}
	}()
	p := NewProc(nilAutomaton{})
	p.EndOfRound()
}

type nilAutomaton struct{}

func (nilAutomaton) Initialize() Payload                    { return nil }
func (nilAutomaton) Compute(int, Inbox) (Payload, Decision) { return nil, Decision{} }

func TestDeliveredAndLastOwnPayload(t *testing.T) {
	p := NewProc(&echoAutomaton{v: values.Num(1)})
	if p.LastOwnPayload() != nil {
		t.Error("LastOwnPayload before init must be nil")
	}
	p.EndOfRound()
	if p.Delivered() != 1 {
		t.Errorf("Delivered = %d, want 1 (own payload)", p.Delivered())
	}
	own := p.LastOwnPayload()
	if own == nil || own.PayloadKey() != (setPayload{values.NewSet(values.Num(1))}).PayloadKey() {
		t.Errorf("LastOwnPayload = %v", own)
	}
	p.Receive(Envelope{Round: 1, Payloads: []Payload{setPayload{values.NewSet(values.Num(7))}}})
	if p.Delivered() != 2 {
		t.Errorf("Delivered = %d, want 2", p.Delivered())
	}
}

// driveProc runs a proc for a few rounds with a peer payload mixed in and
// returns a behavior transcript (round, inbox sizes, envelope payloads).
func driveProc(t *testing.T, p *Proc) string {
	t.Helper()
	out := ""
	for r := 0; r < 4; r++ {
		env, ok := p.EndOfRound()
		out += fmt.Sprintf("r=%d ok=%v n=%d size=%d;", p.CurrentRound(), ok, len(env.Payloads), p.InboxSize(p.CurrentRound()))
		peer := setPayload{values.NewSet(values.Num(int64(90 + r)))}
		p.Receive(Envelope{Round: p.CurrentRound(), Payloads: []Payload{peer}})
		out += fmt.Sprintf("fresh=%d;", len(p.Fresh()))
	}
	return out
}

func TestProcResetMatchesFresh(t *testing.T) {
	// A Reset proc must behave byte-identically to a newly built one, with
	// inbox storage recycled rather than reallocated.
	fresh := NewProc(&echoAutomaton{v: values.Num(1)})
	want := driveProc(t, fresh)

	reused := NewProc(&echoAutomaton{v: values.Num(7)})
	driveProc(t, reused) // dirty it with a different automaton's run
	reused.Reset(&echoAutomaton{v: values.Num(1)})
	if reused.CurrentRound() != 0 || reused.Halted() || reused.Decision().Decided ||
		reused.Delivered() != 0 || reused.LastOwnPayload() != nil || reused.InboxRounds() != 0 {
		t.Fatal("Reset left framework state behind")
	}
	if got := driveProc(t, reused); got != want {
		t.Errorf("reused proc diverged:\n got %s\nwant %s", got, want)
	}
}

func TestProcResetRecyclesInboxStorage(t *testing.T) {
	p := NewProc(&echoAutomaton{v: values.Num(1)})
	driveProc(t, p)
	rounds := p.InboxRounds()
	if rounds == 0 {
		t.Fatal("run left no inbox rounds to recycle")
	}
	p.Reset(&echoAutomaton{v: values.Num(2)})
	if len(p.spare) != rounds {
		t.Errorf("spare inboxes = %d, want %d (all rounds recycled)", len(p.spare), rounds)
	}
	p.EndOfRound()
	if len(p.spare) != rounds-1 {
		t.Errorf("spare inboxes after a merge = %d, want %d (storage reused)", len(p.spare), rounds-1)
	}
}

func TestCompactBeforeRecycles(t *testing.T) {
	p := NewProc(&echoAutomaton{v: values.Num(1)})
	p.EndOfRound()
	p.EndOfRound()
	p.EndOfRound() // rounds 1..3 populated
	p.CompactBefore(3)
	if p.InboxRounds() != 1 {
		t.Fatalf("rounds after compact = %d, want 1", p.InboxRounds())
	}
	if len(p.spare) != 2 {
		t.Errorf("spare inboxes = %d, want 2", len(p.spare))
	}
}
