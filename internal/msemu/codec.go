package msemu

import (
	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// SetCodec serializes core.SetPayload (the wire payload of Algorithms 2 and
// 4) for weak-set transport.
type SetCodec struct{}

var _ PayloadCodec = SetCodec{}

// Encode implements PayloadCodec.
func (SetCodec) Encode(p giraf.Payload) values.Value {
	return values.EncodeSet(p.(core.SetPayload).Proposed)
}

// Decode implements PayloadCodec.
func (SetCodec) Decode(v values.Value) (giraf.Payload, error) {
	s, err := values.DecodeSet(v)
	if err != nil {
		return nil, err
	}
	return core.SetPayload{Proposed: s}, nil
}
