package msemu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

func TestQuickEnvelopeCodecRoundTrips(t *testing.T) {
	f := func(round uint16, payloadSeeds [][]byte) bool {
		env := giraf.Envelope{Round: int(round)}
		if len(payloadSeeds) > 6 {
			payloadSeeds = payloadSeeds[:6]
		}
		for _, seed := range payloadSeeds {
			s := values.NewSet()
			for _, b := range seed {
				s.Add(values.Num(int64(b % 32)))
			}
			env.Payloads = append(env.Payloads, core.SetPayload{Proposed: s})
		}
		got, err := decodeEnvelope(SetCodec{}, encodeEnvelope(SetCodec{}, env))
		if err != nil || got.Round != env.Round || len(got.Payloads) != len(env.Payloads) {
			return false
		}
		for i := range env.Payloads {
			if got.Payloads[i].PayloadKey() != env.Payloads[i].PayloadKey() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeEnvelopeNeverPanicsOnJunk(t *testing.T) {
	f := func(junk []byte) bool {
		// Must return an error or a valid envelope, never panic.
		_, _ = decodeEnvelope(SetCodec{}, values.Value(junk))
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(32))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeEnvelopePrefixedJunk(t *testing.T) {
	// Junk that passes the magic-prefix check must still be handled.
	f := func(junk []byte) bool {
		_, _ = decodeEnvelope(SetCodec{}, values.Value("envl!"+string(junk)))
		_, _ = decodeEnvelope(SetCodec{}, values.Value("envl!3!"+string(junk)))
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(33))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
