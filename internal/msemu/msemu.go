// Package msemu implements Algorithm 5: emulating the MS (moving-source)
// environment on top of a weak-set.
//
// Each process loops: end-of-round → add the produced envelope ⟨M, k⟩ to
// the shared weak-set → get the weak-set → deliver every not-yet-delivered
// envelope → next end-of-round. Theorem 4: in every round, the first
// process to complete its add is a source — everybody else starts its get
// only after finishing its own add, so the get returns the first adder's
// envelope.
//
// Together with Proposition 2 (weak-sets from registers) this imports the
// FLP impossibility into the MS environment: if consensus were solvable in
// MS, it would be solvable from registers alone.
//
// The emulator runs real goroutines against any weakset.WeakSet (the
// linearizable in-memory one, or the register-based constructions — in
// particular over an ABD cluster, making the whole stack message-passing).
package msemu

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

// PayloadCodec serializes automaton payloads into weak-set values and back.
// The emulation is generic over any automaton whose payloads round-trip.
type PayloadCodec interface {
	Encode(p giraf.Payload) values.Value
	Decode(v values.Value) (giraf.Payload, error)
}

// encodeEnvelope packs ⟨M, k⟩ into one weak-set value. Identical envelopes
// from anonymous processes collapse into one weak-set element, which is
// exactly the broadcast semantics of the model.
func encodeEnvelope(c PayloadCodec, env giraf.Envelope) values.Value {
	var b strings.Builder
	fmt.Fprintf(&b, "envl!%d!", env.Round)
	for _, p := range env.Payloads {
		enc := string(c.Encode(p))
		fmt.Fprintf(&b, "%d:%s", len(enc), enc)
	}
	return values.Value(b.String())
}

// decodeEnvelope unpacks a value produced by encodeEnvelope.
func decodeEnvelope(c PayloadCodec, v values.Value) (giraf.Envelope, error) {
	s := string(v)
	if !strings.HasPrefix(s, "envl!") {
		return giraf.Envelope{}, fmt.Errorf("msemu: %q is not an envelope", s)
	}
	rest := s[len("envl!"):]
	bang := strings.IndexByte(rest, '!')
	if bang < 0 {
		return giraf.Envelope{}, fmt.Errorf("msemu: truncated envelope %q", s)
	}
	round, err := strconv.Atoi(rest[:bang])
	if err != nil {
		return giraf.Envelope{}, fmt.Errorf("msemu: bad round in %q: %w", s, err)
	}
	rest = rest[bang+1:]
	env := giraf.Envelope{Round: round}
	for len(rest) > 0 {
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return giraf.Envelope{}, fmt.Errorf("msemu: truncated payload list in %q", s)
		}
		n, err := strconv.Atoi(rest[:colon])
		if err != nil || n < 0 || colon+1+n > len(rest) {
			return giraf.Envelope{}, fmt.Errorf("msemu: corrupt payload length in %q", s)
		}
		p, err := c.Decode(values.Value(rest[colon+1 : colon+1+n]))
		if err != nil {
			return giraf.Envelope{}, fmt.Errorf("msemu: decoding payload: %w", err)
		}
		env.Payloads = append(env.Payloads, p)
		rest = rest[colon+1+n:]
	}
	return env, nil
}

// RoundView is what one process had in its round-k inbox when it executed
// compute(k), keyed by payload key — the raw material for checking the MS
// property on the emulated environment.
type RoundView struct {
	Proc  int
	Round int
	// Inbox holds the payload keys present at compute time.
	Inbox map[string]bool
	// OwnPayload is the payload key this process produced for round k.
	OwnPayload string
}

// Config describes an emulation run.
type Config struct {
	// N is the number of processes (goroutines).
	N int
	// Automaton builds process i's automaton.
	Automaton func(i int) giraf.Automaton
	// Codec serializes the automaton's payloads.
	Codec PayloadCodec
	// Set is the shared weak-set substrate.
	Set weakset.WeakSet
	// SetFor, if non-nil, overrides Set with a per-process front-end to the
	// same logical weak-set — required by single-writer constructions like
	// Proposition 2, where each process must add through its own handle.
	SetFor func(i int) weakset.WeakSet
	// MaxRounds stops each process after this many rounds.
	MaxRounds int
}

// setFor resolves the weak-set front-end for process i.
func (c *Config) setFor(i int) weakset.WeakSet {
	if c.SetFor != nil {
		return c.SetFor(i)
	}
	return c.Set
}

// Result is the outcome of an emulation run.
type Result struct {
	// Views holds one RoundView per (process, computed round).
	Views []RoundView
	// Decisions maps process index to its decision, if it decided.
	Decisions map[int]values.Value
	// Errs holds per-process failures (weak-set errors, codec errors).
	Errs []error
}

// Run executes Algorithm 5: N goroutines drive their GIRAF processes
// through MaxRounds rounds over the shared weak-set.
func Run(cfg Config) (*Result, error) {
	switch {
	case cfg.N <= 0:
		return nil, fmt.Errorf("msemu: N = %d", cfg.N)
	case cfg.Automaton == nil, cfg.Codec == nil, cfg.Set == nil && cfg.SetFor == nil:
		return nil, fmt.Errorf("msemu: Automaton, Codec and Set (or SetFor) are all required")
	case cfg.MaxRounds <= 0:
		return nil, fmt.Errorf("msemu: MaxRounds = %d", cfg.MaxRounds)
	}
	res := &Result{Decisions: make(map[int]values.Value)}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for i := 0; i < cfg.N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			views, dec, err := runProcess(cfg, i)
			mu.Lock()
			defer mu.Unlock()
			res.Views = append(res.Views, views...)
			if dec.Decided {
				res.Decisions[i] = dec.Value
			}
			if err != nil {
				res.Errs = append(res.Errs, fmt.Errorf("process %d: %w", i, err))
			}
		}()
	}
	wg.Wait()
	return res, nil
}

// runProcess is Algorithm 5's per-process loop.
func runProcess(cfg Config, id int) ([]RoundView, giraf.Decision, error) {
	proc := giraf.NewProc(cfg.Automaton(id))
	set := cfg.setFor(id)
	delivered := make(map[values.Value]bool)
	var views []RoundView

	for round := 0; round <= cfg.MaxRounds; round++ {
		// Snapshot the inbox of the round about to be computed.
		if k := proc.CurrentRound(); k > 0 {
			view := RoundView{Proc: id, Round: k, Inbox: make(map[string]bool)}
			for _, p := range proc.Round(k) {
				view.Inbox[p.PayloadKey()] = true
			}
			if own := proc.LastOwnPayload(); own != nil {
				view.OwnPayload = own.PayloadKey()
			}
			views = append(views, view)
		}
		env, ok := proc.EndOfRound()
		if !ok {
			return views, proc.Decision(), nil // decided and halted
		}
		// Algorithm 5 line 5: addS(⟨m, k⟩).
		if err := set.Add(encodeEnvelope(cfg.Codec, env)); err != nil {
			return views, giraf.Decision{}, fmt.Errorf("weak-set add: %w", err)
		}
		// Lines 6–8: deliver every new envelope from getS.
		snapshot, err := set.Get()
		if err != nil {
			return views, giraf.Decision{}, fmt.Errorf("weak-set get: %w", err)
		}
		for _, raw := range snapshot.Sorted() {
			if delivered[raw] {
				continue
			}
			delivered[raw] = true
			recv, err := decodeEnvelope(cfg.Codec, raw)
			if err != nil {
				return views, giraf.Decision{}, err
			}
			proc.Receive(recv)
		}
	}
	return views, proc.Decision(), nil
}

// CheckMS verifies the moving-source property on the emulated run: for
// every round in which at least one process computed, some process's own
// round payload was present in every computing process's inbox (the
// payload-containment form of a timely link — footnote 2 of the paper).
func (r *Result) CheckMS() error {
	type roundInfo struct {
		inboxes []map[string]bool
		owns    map[string]bool
	}
	rounds := make(map[int]*roundInfo)
	for _, v := range r.Views {
		ri := rounds[v.Round]
		if ri == nil {
			ri = &roundInfo{owns: make(map[string]bool)}
			rounds[v.Round] = ri
		}
		ri.inboxes = append(ri.inboxes, v.Inbox)
		if v.OwnPayload != "" {
			ri.owns[v.OwnPayload] = true
		}
	}
	for round, ri := range rounds {
		found := false
		for own := range ri.owns {
			inAll := true
			for _, inbox := range ri.inboxes {
				if !inbox[own] {
					inAll = false
					break
				}
			}
			if inAll {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("msemu: emulated MS violated in round %d: no payload reached every inbox", round)
		}
	}
	return nil
}
