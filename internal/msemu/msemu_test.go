package msemu

import (
	"testing"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/register"
	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

func esFactory(props []values.Value) func(i int) giraf.Automaton {
	return func(i int) giraf.Automaton { return core.NewES(props[i]) }
}

func TestEnvelopeCodecRoundTrip(t *testing.T) {
	env := giraf.Envelope{
		Round: 7,
		Payloads: []giraf.Payload{
			core.SetPayload{Proposed: values.NewSet(values.Num(1), values.Num(2))},
			core.SetPayload{Proposed: values.NewSet(values.Bot)},
		},
	}
	enc := encodeEnvelope(SetCodec{}, env)
	got, err := decodeEnvelope(SetCodec{}, enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 7 || len(got.Payloads) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	for i := range env.Payloads {
		if got.Payloads[i].PayloadKey() != env.Payloads[i].PayloadKey() {
			t.Errorf("payload %d key mismatch", i)
		}
	}
}

func TestEnvelopeCodecRejectsJunk(t *testing.T) {
	for _, raw := range []values.Value{"", "envl!", "envl!x!", "nope!3!", "envl!3!9:short"} {
		if _, err := decodeEnvelope(SetCodec{}, raw); err == nil {
			t.Errorf("decodeEnvelope(%q) succeeded", string(raw))
		}
	}
}

func TestEmulatedEnvironmentSatisfiesMS(t *testing.T) {
	// Theorem 4: GIRAF over a weak-set yields an MS environment.
	props := core.DistinctProposals(4)
	res, err := Run(Config{
		N:         4,
		Automaton: esFactory(props),
		Codec:     SetCodec{},
		Set:       &weakset.Memory{},
		MaxRounds: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs) > 0 {
		t.Fatalf("process errors: %v", res.Errs)
	}
	if err := res.CheckMS(); err != nil {
		t.Fatal(err)
	}
	if len(res.Views) == 0 {
		t.Fatal("no round views recorded")
	}
}

func TestEmulatedRunPreservesConsensusSafety(t *testing.T) {
	// Whatever the emulated schedule does, decisions must satisfy
	// Agreement and Validity (liveness is NOT guaranteed in MS — that is
	// the FLP corollary).
	props := core.SplitProposals(5, 3)
	res, err := Run(Config{
		N:         5,
		Automaton: esFactory(props),
		Codec:     SetCodec{},
		Set:       &weakset.Memory{},
		MaxRounds: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs) > 0 {
		t.Fatalf("process errors: %v", res.Errs)
	}
	seen := values.NewSet()
	proposals := core.ProposalSet(props)
	for pid, v := range res.Decisions {
		seen.Add(v)
		if !proposals.Contains(v) {
			t.Errorf("process %d decided non-proposal %v", pid, v)
		}
	}
	if seen.Len() > 1 {
		t.Errorf("agreement violated on emulated run: %v", seen)
	}
	if err := res.CheckMS(); err != nil {
		t.Fatal(err)
	}
}

func TestEmulationOverRegisterStack(t *testing.T) {
	// The full reduction: ABD quorum registers (known network) → Prop. 2
	// weak-set → Algorithm 5 MS emulation → anonymous GIRAF processes.
	// This is the constructive content of "registers emulate MS", which
	// imports FLP into the MS environment.
	const n = 3
	cluster := register.NewABD(5)
	defer cluster.Close()
	slots := make([]weakset.Slot, n)
	for i := range slots {
		slots[i] = cluster.Writer(i + 1)
	}
	// Each emulated process must add through its own SWMR handle.
	swmr := weakset.NewFromSWMR(slots)
	handles := make([]weakset.WeakSet, n)
	for i := range handles {
		handles[i] = swmr.Handle(i)
	}
	props := core.DistinctProposals(n)
	res, err := Run(Config{
		N:         n,
		Automaton: esFactory(props),
		Codec:     SetCodec{},
		SetFor:    func(i int) weakset.WeakSet { return handles[i] },
		MaxRounds: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs) > 0 {
		t.Fatalf("process errors: %v", res.Errs)
	}
	if err := res.CheckMS(); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	base := Config{
		N:         2,
		Automaton: esFactory(core.DistinctProposals(2)),
		Codec:     SetCodec{},
		Set:       &weakset.Memory{},
		MaxRounds: 5,
	}
	for name, mutate := range map[string]func(*Config){
		"zero N":        func(c *Config) { c.N = 0 },
		"nil automaton": func(c *Config) { c.Automaton = nil },
		"nil codec":     func(c *Config) { c.Codec = nil },
		"nil set":       func(c *Config) { c.Set = nil },
		"zero rounds":   func(c *Config) { c.MaxRounds = 0 },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestCheckMSDetectsViolation(t *testing.T) {
	// Hand-built views where no payload reached every inbox.
	res := &Result{Views: []RoundView{
		{Proc: 0, Round: 1, Inbox: map[string]bool{"a": true}, OwnPayload: "a"},
		{Proc: 1, Round: 1, Inbox: map[string]bool{"b": true}, OwnPayload: "b"},
	}}
	if err := res.CheckMS(); err == nil {
		t.Error("violation not detected")
	}
}
