package msemu

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"anonconsensus/internal/core"
	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

// scenarioSet wraps the shared weak-set with env.Scenario-driven faults for
// one process, mirroring the register/weakset property suites on the
// emulation plane: a duplication draw re-executes the operation (idempotent
// for set semantics), a loss draw fails it with a transient error before it
// takes effect — which makes the affected process abort its Algorithm 5
// loop, i.e. crash mid-round, the fault the emulation must tolerate. Draws
// are deterministic in (scenario seed, per-process op counter).
type scenarioSet struct {
	inner weakset.WeakSet
	sc    *env.Scenario
	proc  int

	mu  sync.Mutex
	ops int
}

func (s *scenarioSet) nextOp() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	return s.ops
}

func (s *scenarioSet) Add(v values.Value) error {
	op := s.nextOp()
	if s.sc.Drops(op, s.proc, 0) {
		return fmt.Errorf("scenario set: add lost (op %d, proc %d)", op, s.proc)
	}
	if err := s.inner.Add(v); err != nil {
		return err
	}
	if s.sc.Duplicates(op, s.proc, 0) {
		return s.inner.Add(v)
	}
	return nil
}

func (s *scenarioSet) Get() (values.Set, error) {
	op := s.nextOp()
	if s.sc.Drops(op, s.proc, 1) {
		return values.Set{}, fmt.Errorf("scenario set: get lost (op %d, proc %d)", op, s.proc)
	}
	if s.sc.Duplicates(op, s.proc, 1) {
		if _, err := s.inner.Get(); err != nil {
			return values.Set{}, err
		}
	}
	return s.inner.Get()
}

func esFactoryProp(props []values.Value) func(i int) giraf.Automaton {
	return func(i int) giraf.Automaton { return core.NewES(props[i]) }
}

// TestQuickEmulationSafeUnderDuplication: with duplicated (but never lost)
// weak-set operations the emulation must stay fully intact — the MS
// property holds on every recorded round, decisions satisfy Agreement and
// Validity, and no process errors.
func TestQuickEmulationSafeUnderDuplication(t *testing.T) {
	f := func(seed int64, dupRaw, nRaw uint8) bool {
		n := 2 + int(nRaw%4)
		sc := &env.Scenario{Seed: seed, DupPct: 20 + int(dupRaw%81)}
		props := core.SplitProposals(n, 2)
		shared := &weakset.Memory{}
		res, err := Run(Config{
			N:         n,
			Automaton: esFactoryProp(props),
			Codec:     SetCodec{},
			SetFor: func(i int) weakset.WeakSet {
				return &scenarioSet{inner: shared, sc: sc, proc: i}
			},
			MaxRounds: 30,
		})
		if err != nil || len(res.Errs) > 0 {
			return false
		}
		if res.CheckMS() != nil {
			return false
		}
		return decisionsSafe(res, props)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickEmulationSafeUnderLoss: lost weak-set operations abort the
// affected processes mid-round — crash faults. The survivors' decisions
// must still satisfy Agreement and Validity (reliable broadcast holds for
// everything that *was* delivered; an aborted process is just a crash), and
// every error must be a loss, never a corruption.
func TestQuickEmulationSafeUnderLoss(t *testing.T) {
	f := func(seed int64, lossRaw, dupRaw uint8) bool {
		n := 4
		sc := &env.Scenario{
			Seed:    seed,
			LossPct: 1 + int(lossRaw%30), // 1–30%
			DupPct:  int(dupRaw % 41),    // 0–40%
		}
		props := core.SplitProposals(n, 3)
		shared := &weakset.Memory{}
		res, err := Run(Config{
			N:         n,
			Automaton: esFactoryProp(props),
			Codec:     SetCodec{},
			SetFor: func(i int) weakset.WeakSet {
				return &scenarioSet{inner: shared, sc: sc, proc: i}
			},
			MaxRounds: 30,
		})
		if err != nil {
			return false
		}
		return decisionsSafe(res, props)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(72))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// decisionsSafe checks Agreement and Validity over whatever decisions the
// run produced.
func decisionsSafe(res *Result, props []values.Value) bool {
	proposals := core.ProposalSet(props)
	seen := values.NewSet()
	for _, v := range res.Decisions {
		if !proposals.Contains(v) {
			return false
		}
		seen.Add(v)
	}
	return seen.Len() <= 1
}
