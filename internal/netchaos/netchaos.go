// Package netchaos injects network failure into the live TCP plane: a
// proxy interposed between consensus nodes and their hub that severs,
// stalls, half-closes, and blacks out connections on a schedule.
//
// Schedules are data (a list of timed events per proxied connection), and
// RandomSchedule derives one deterministically from a seed — the same
// seed always produces the same event list, so a failing chaos run is
// rerun by naming its seed. The proxy applies events relative to each
// connection's accept time using wall-clock timers, so the *realization*
// is only as deterministic as the scheduler and the network stack — like
// everything in the live plane, chaos runs assert properties (Agreement,
// Validity, Termination-when-healed), not byte-exact traces; the sim
// plane owns those.
//
// The proxy is failure-injection only: it never reorders, corrupts, or
// drops individual bytes of a healthy connection. Loss and duplication of
// whole frames belong to the hub's own fault plane
// (tcpnet.WithForwardFault); netchaos breaks the *transport* underneath
// the session layer, which is exactly what the reconnect/resume machinery
// must survive.
package netchaos

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// EventKind is one way a connection can suffer.
type EventKind int

const (
	// Sever closes both legs of a proxied connection mid-flight. The
	// endpoints see a reset/EOF; a resilient node reconnects.
	Sever EventKind = iota
	// Stall pauses relaying in both directions for the event's Dur: bytes
	// queue but do not flow — a stuck link that heals, distinguishable
	// from a dead one only by waiting.
	Stall
	// HalfClose shuts down the write side toward the target while leaving
	// the reverse leg open — the classic half-open TCP failure where one
	// direction works and the other silently doesn't.
	HalfClose
	// Blackout severs every live proxied connection and refuses new dials
	// until the event's Dur elapses (Dur 0: forever). Conn is ignored.
	Blackout
)

func (k EventKind) String() string {
	switch k {
	case Sever:
		return "sever"
	case Stall:
		return "stall"
	case HalfClose:
		return "half-close"
	case Blackout:
		return "blackout"
	}
	return "unknown"
}

// Event is one scheduled injection. Conn selects the proxied connection
// by accept order (0-based); At is the delay after that connection is
// accepted (for Blackout: after the proxy starts). Dur parameterizes
// Stall and Blackout.
type Event struct {
	Conn int
	At   time.Duration
	Kind EventKind
	Dur  time.Duration
}

// Schedule is a chaos plan. Events for the same connection fire in their
// own goroutine timers; ordering between connections is not guaranteed
// beyond the At offsets.
type Schedule []Event

// RandomSchedule derives a schedule from a seed: nEvents events spread
// over conns connections within horizon, with kinds weighted toward
// severs (the recoverable failure the resilience machinery exists for).
// Stalls stay short relative to the horizon so they read as "slow", not
// "dead". The same (seed, conns, nEvents, horizon) always yields the
// same schedule.
func RandomSchedule(seed int64, conns, nEvents int, horizon time.Duration) Schedule {
	rng := rand.New(rand.NewSource(seed))
	sched := make(Schedule, 0, nEvents)
	for i := 0; i < nEvents; i++ {
		ev := Event{
			Conn: rng.Intn(conns),
			// Land strictly inside the horizon, past the very start so the
			// handshake usually completes before chaos hits it.
			At: horizon/10 + time.Duration(rng.Int63n(int64(horizon*8/10))),
		}
		switch draw := rng.Intn(10); {
		case draw < 6:
			ev.Kind = Sever
		case draw < 9:
			ev.Kind = Stall
			ev.Dur = time.Duration(rng.Int63n(int64(horizon / 5)))
		default:
			ev.Kind = HalfClose
		}
		sched = append(sched, ev)
	}
	return sched
}

// Stats counts what the proxy actually injected and carried.
type Stats struct {
	// Conns is the number of connections accepted.
	Conns int
	// Severed, Stalled, HalfClosed count applied events (a Blackout counts
	// one Severed per live connection it kills).
	Severed    int
	Stalled    int
	HalfClosed int
	// Refused counts dials rejected during a blackout.
	Refused int
}

// Proxy relays TCP connections to a target address while applying a
// chaos schedule. Create with NewProxy, point nodes at Addr(), Close
// when done.
type Proxy struct {
	ln     net.Listener
	target string
	sched  Schedule

	mu    sync.Mutex
	stats Stats
	down  bool
	conns map[int]*proxiedConn
	next  int
	wg    sync.WaitGroup
	done  chan struct{}
}

// proxiedConn is one relayed connection: both legs plus its stall gate.
type proxiedConn struct {
	client net.Conn
	server net.Conn

	gmu     sync.Mutex
	stalled chan struct{} // non-nil while a stall is in effect; closed to release
}

// NewProxy starts a chaos proxy in front of target (a hub address),
// listening on 127.0.0.1:0.
func NewProxy(target string, sched Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		sched:  sched,
		conns:  make(map[int]*proxiedConn),
		done:   make(chan struct{}),
	}
	for _, ev := range sched {
		if ev.Kind == Blackout {
			ev := ev
			p.wg.Add(1)
			go p.runBlackout(ev)
		}
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — dial this instead of the
// target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the injection counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops the proxy and severs everything still relayed.
func (p *Proxy) Close() error {
	p.mu.Lock()
	select {
	case <-p.done:
		p.mu.Unlock()
		return nil
	default:
	}
	close(p.done)
	conns := make([]*proxiedConn, 0, len(p.conns))
	for _, pc := range p.conns {
		conns = append(conns, pc)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, pc := range conns {
		pc.close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		refused := p.down
		if refused {
			p.stats.Refused++
		}
		idx := p.next
		if !refused {
			p.next++
			p.stats.Conns++
		}
		p.mu.Unlock()
		if refused {
			_ = client.Close()
			continue
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = client.Close()
			continue
		}
		pc := &proxiedConn{client: client, server: server}
		p.mu.Lock()
		p.conns[idx] = pc
		p.mu.Unlock()

		p.wg.Add(2)
		go p.pump(pc, client, server, true)
		go p.pump(pc, server, client, false)
		for _, ev := range p.sched {
			if ev.Conn == idx && ev.Kind != Blackout {
				ev := ev
				p.wg.Add(1)
				go p.runEvent(pc, idx, ev)
			}
		}
	}
}

// pump relays one direction through the stall gate, 32KB at a time.
func (p *Proxy) pump(pc *proxiedConn, src, dst net.Conn, toServer bool) {
	defer p.wg.Done()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			pc.gmu.Lock()
			gate := pc.stalled
			pc.gmu.Unlock()
			if gate != nil {
				select {
				case <-gate:
				case <-p.done:
					return
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	// One dead direction kills the relay (except the surviving leg of a
	// half-close, which holds its own reader).
	if tc, ok := dst.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	_ = toServer // direction only matters for debugging
}

func (p *Proxy) runEvent(pc *proxiedConn, idx int, ev Event) {
	defer p.wg.Done()
	t := time.NewTimer(ev.At)
	defer t.Stop()
	select {
	case <-p.done:
		return
	case <-t.C:
	}
	p.mu.Lock()
	live := p.conns[idx] == pc
	p.mu.Unlock()
	if !live {
		return
	}
	switch ev.Kind {
	case Sever:
		p.mu.Lock()
		delete(p.conns, idx)
		p.stats.Severed++
		p.mu.Unlock()
		pc.close()
	case Stall:
		pc.gmu.Lock()
		if pc.stalled == nil {
			pc.stalled = make(chan struct{})
		}
		gate := pc.stalled
		pc.gmu.Unlock()
		p.mu.Lock()
		p.stats.Stalled++
		p.mu.Unlock()
		heal := time.NewTimer(ev.Dur)
		defer heal.Stop()
		select {
		case <-p.done:
		case <-heal.C:
		}
		pc.gmu.Lock()
		if pc.stalled == gate {
			pc.stalled = nil
			close(gate)
		}
		pc.gmu.Unlock()
	case HalfClose:
		if tc, ok := pc.server.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		p.mu.Lock()
		p.stats.HalfClosed++
		p.mu.Unlock()
	}
}

func (p *Proxy) runBlackout(ev Event) {
	defer p.wg.Done()
	t := time.NewTimer(ev.At)
	defer t.Stop()
	select {
	case <-p.done:
		return
	case <-t.C:
	}
	p.mu.Lock()
	p.down = true
	conns := make([]*proxiedConn, 0, len(p.conns))
	for idx, pc := range p.conns {
		conns = append(conns, pc)
		delete(p.conns, idx)
		p.stats.Severed++
	}
	p.mu.Unlock()
	for _, pc := range conns {
		pc.close()
	}
	if ev.Dur <= 0 {
		return // never heals
	}
	heal := time.NewTimer(ev.Dur)
	defer heal.Stop()
	select {
	case <-p.done:
		return
	case <-heal.C:
	}
	p.mu.Lock()
	p.down = false
	p.mu.Unlock()
}

func (pc *proxiedConn) close() {
	// Release any stall so the pumps can observe the close.
	pc.gmu.Lock()
	if pc.stalled != nil {
		close(pc.stalled)
		pc.stalled = nil
	}
	pc.gmu.Unlock()
	_ = pc.client.Close()
	_ = pc.server.Close()
}
