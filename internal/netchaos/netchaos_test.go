package netchaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/tcpnet"
	"anonconsensus/internal/values"
)

// echoTarget is a TCP server that echoes whatever it receives.
func echoTarget(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(conn, conn); _ = conn.Close() }()
		}
	}()
	return ln.Addr().String()
}

func TestProxyTransparent(t *testing.T) {
	// An empty schedule relays byte-for-byte in both directions.
	p, err := NewProxy(echoTarget(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("through the proxy and back")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo through proxy: got %q", got)
	}
	if s := p.Stats(); s.Conns != 1 || s.Severed != 0 {
		t.Errorf("stats = %+v, want 1 conn, 0 severed", s)
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(99, 4, 16, time.Second)
	b := RandomSchedule(99, 4, 16, time.Second)
	if len(a) != 16 {
		t.Fatalf("schedule has %d events, want 16", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].At <= 0 || a[i].At >= time.Second {
			t.Errorf("event %d lands at %v, outside the horizon", i, a[i].At)
		}
		if a[i].Conn < 0 || a[i].Conn >= 4 {
			t.Errorf("event %d targets conn %d of 4", i, a[i].Conn)
		}
	}
	c := RandomSchedule(100, 4, 16, time.Second)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 99 and 100 produced identical 16-event schedules")
	}
}

func TestProxySever(t *testing.T) {
	p, err := NewProxy(echoTarget(t), Schedule{{Conn: 0, At: 30 * time.Millisecond, Kind: Sever}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The scheduled sever must surface as EOF/reset on a blocked read.
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read survived a scheduled sever")
	}
	if s := p.Stats(); s.Severed != 1 {
		t.Errorf("Severed = %d, want 1", s.Severed)
	}
}

func TestProxyStallDelaysButDelivers(t *testing.T) {
	// A stall is "slow", not "dead": bytes written during the stall arrive
	// after it heals.
	p, err := NewProxy(echoTarget(t), Schedule{{Conn: 0, At: 10 * time.Millisecond, Kind: Stall, Dur: 300 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(100 * time.Millisecond) // well inside the stall
	start := time.Now()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, make([]byte, 1)); err != nil {
		t.Fatalf("stalled byte never delivered: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("byte crossed a stalled link in %v", elapsed)
	}
	if s := p.Stats(); s.Stalled != 1 {
		t.Errorf("Stalled = %d, want 1", s.Stalled)
	}
}

func TestProxyBlackout(t *testing.T) {
	p, err := NewProxy(echoTarget(t), Schedule{{At: 20 * time.Millisecond, Kind: Blackout}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("existing conn survived the blackout")
	}
	// New dials are refused (accepted then immediately closed) while down.
	late, err := net.Dial("tcp", p.Addr())
	if err == nil {
		defer late.Close()
		_ = late.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := late.Read(make([]byte, 1)); err == nil {
			t.Fatal("dial during a permanent blackout carried data")
		}
	}
	s := p.Stats()
	if s.Severed < 1 {
		t.Errorf("Severed = %d, want ≥ 1", s.Severed)
	}
	if s.Refused < 1 {
		t.Errorf("Refused = %d, want ≥ 1", s.Refused)
	}
}

// TestChaosConsensusProperty is the seeded property run: a consensus
// cluster dialing its hub through a chaos proxy with a seed-derived
// schedule of severs, stalls and half-closes. Whatever the schedule does,
// Agreement and Validity must hold; and because every injected failure
// here heals (severs are survivable via reconnect, stalls end, half-opens
// are detected by hub heartbeats and recovered via reconnect), Termination
// must hold too: every node decides.
func TestChaosConsensusProperty(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n = 3
			hub, err := tcpnet.NewHub("127.0.0.1:0",
				// Aggressive probing so half-open links are detected well
				// inside the run, forcing the reconnect path.
				tcpnet.WithHeartbeat(50*time.Millisecond, 3))
			if err != nil {
				t.Fatal(err)
			}
			defer hub.Close()
			sched := RandomSchedule(seed, n, 4, 400*time.Millisecond)
			proxy, err := NewProxy(hub.Addr(), sched)
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()

			props := core.DistinctProposals(n)
			results := make([]*tcpnet.NodeResult, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					results[i], errs[i] = tcpnet.RunNode(t.Context(), tcpnet.NodeConfig{
						HubAddr:   proxy.Addr(),
						Automaton: core.NewES(props[i]),
						Interval:  12 * time.Millisecond,
						Timeout:   30 * time.Second,
						Reconnect: tcpnet.ReconnectPolicy{
							MaxAttempts: 20,
							BaseDelay:   5 * time.Millisecond,
							MaxDelay:    100 * time.Millisecond,
							Seed:        seed ^ int64(i),
						},
					})
				}()
			}
			wg.Wait()

			for i, err := range errs {
				if err != nil {
					t.Fatalf("node %d: %v (schedule %+v)", i, err, sched)
				}
			}
			decided := values.NewSet()
			for i, r := range results {
				if !r.Decided {
					t.Fatalf("termination violated: node %d undecided after %d rounds (reconnects=%d, schedule %+v)",
						i, r.Rounds, r.Reconnects, sched)
				}
				decided.Add(r.Decision)
			}
			if decided.Len() != 1 {
				t.Fatalf("agreement violated under chaos seed %d: %v (schedule %+v)", seed, decided, sched)
			}
			if v, _ := decided.Max(); !core.ProposalSet(props).Contains(v) {
				t.Fatalf("validity violated under chaos seed %d: %v", seed, v)
			}
		})
	}
}
