// Package obstruction reproduces the related-work claim the paper cites as
// [9] (Guerraoui & Ruppert): in anonymous shared-memory systems,
// fault-tolerant *obstruction-free* consensus is solvable from registers
// alone — no failure detector, no eventual source. Termination is
// guaranteed only for a process that eventually runs long enough without
// interference; safety (Validity + Agreement) is unconditional.
//
// The construction is the classical round-based one, assembled from this
// repository's own substrate:
//
//   - an *adopt-commit* object per round, built from two linearizable
//     weak-sets (package weakset; in a known network those come from
//     registers via Propositions 2–3, closing the loop to "registers
//     alone");
//   - a consensus loop: propose the current estimate to round r's
//     adopt-commit; on commit decide, on adopt carry the value to round
//     r+1. A solo run finds an uncontended round and commits.
//
// Anonymity is inherited from the weak-set: processes never exchange
// identities, and identical operations by identical processes collapse.
package obstruction

import (
	"fmt"
	"sync"

	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

// Outcome is the result of one adopt-commit invocation.
type Outcome struct {
	// Commit is true when the value may be decided immediately.
	Commit bool
	// Value is the adopted or committed value.
	Value values.Value
}

// AdoptCommit is a single-use anonymous agreement-adapter object with the
// classical specification:
//
//	validity     — outputs were somebody's input;
//	convergence  — if all inputs equal v, every output is (commit, v);
//	coherence    — if any output is (commit, v), every output's value is v.
//
// It requires *linearizable* weak-sets (weakset.Memory, or register-backed
// ones whose registers are atomic): with merely "weak" weak-sets two
// concurrent proposers could both see themselves alone. Safe for
// concurrent use.
type AdoptCommit struct {
	proposals weakset.WeakSet // phase 1: raw values
	flagged   weakset.WeakSet // phase 2: (clean?, value) pairs
}

// NewAdoptCommit builds the object over two fresh in-memory weak-sets.
func NewAdoptCommit() *AdoptCommit {
	return &AdoptCommit{proposals: &weakset.Memory{}, flagged: &weakset.Memory{}}
}

// NewAdoptCommitOver builds the object over caller-provided weak-sets
// (which must be linearizable and dedicated to this object).
func NewAdoptCommitOver(proposals, flagged weakset.WeakSet) *AdoptCommit {
	if proposals == nil || flagged == nil {
		panic("obstruction.NewAdoptCommitOver: nil weak-set")
	}
	return &AdoptCommit{proposals: proposals, flagged: flagged}
}

// pair encoding for the phase-2 weak-set: rank 1 = clean, 0 = dirty.
const (
	dirtyRank = 0
	cleanRank = 1
)

// Propose runs the two phases and returns the outcome.
func (ac *AdoptCommit) Propose(v values.Value) (Outcome, error) {
	if !v.Valid() {
		return Outcome{}, fmt.Errorf("obstruction: invalid proposal %q", string(v))
	}
	// Phase 1: announce, then check for contention. Linearizability of the
	// weak-set guarantees at most one proposer can see itself alone among
	// distinct values (see the coherence argument in the package tests).
	if err := ac.proposals.Add(v); err != nil {
		return Outcome{}, fmt.Errorf("obstruction: phase-1 add: %w", err)
	}
	seen, err := ac.proposals.Get()
	if err != nil {
		return Outcome{}, fmt.Errorf("obstruction: phase-1 get: %w", err)
	}
	rank := dirtyRank
	if seen.IsExactly(v) {
		rank = cleanRank
	}
	// Phase 2: publish the flagged value, then resolve.
	if err := ac.flagged.Add(values.EncodePair(rank, v)); err != nil {
		return Outcome{}, fmt.Errorf("obstruction: phase-2 add: %w", err)
	}
	flags, err := ac.flagged.Get()
	if err != nil {
		return Outcome{}, fmt.Errorf("obstruction: phase-2 get: %w", err)
	}
	var (
		cleanVal   values.Value
		cleanFound bool
		allCleanV  = true
	)
	for _, raw := range flags.Sorted() {
		r, val, err := values.DecodePair(raw)
		if err != nil {
			return Outcome{}, fmt.Errorf("obstruction: corrupt phase-2 element: %w", err)
		}
		if r == cleanRank {
			if cleanFound && cleanVal != val {
				return Outcome{}, fmt.Errorf("obstruction: two distinct clean values %v and %v — the weak-sets are not linearizable", cleanVal, val)
			}
			cleanVal, cleanFound = val, true
		}
		if val != v || r != cleanRank {
			allCleanV = false
		}
	}
	switch {
	case allCleanV:
		// Everything visible is (clean, v): commit.
		return Outcome{Commit: true, Value: v}, nil
	case cleanFound:
		// Coherence: a committer's value is the unique clean one; adopt it.
		return Outcome{Commit: false, Value: cleanVal}, nil
	default:
		return Outcome{Commit: false, Value: v}, nil
	}
}

// Consensus is anonymous obstruction-free consensus: a sequence of
// adopt-commit rounds over a shared lazily-allocated round table. Safe for
// concurrent use by any number of anonymous proposers.
type Consensus struct {
	mu      sync.Mutex
	rounds  map[int]*AdoptCommit
	decided bool
	value   values.Value
}

// NewConsensus returns a fresh instance.
func NewConsensus() *Consensus {
	return &Consensus{rounds: make(map[int]*AdoptCommit)}
}

// round returns (allocating if needed) the adopt-commit object of round r.
func (c *Consensus) round(r int) *AdoptCommit {
	c.mu.Lock()
	defer c.mu.Unlock()
	ac, ok := c.rounds[r]
	if !ok {
		ac = NewAdoptCommit()
		c.rounds[r] = ac
	}
	return ac
}

// markDecided records a decision (idempotent; coherence guarantees all
// recorded decisions carry the same value).
func (c *Consensus) markDecided(v values.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decided = true
	c.value = v
}

// Decided reports whether some proposer has decided, and the value.
func (c *Consensus) Decided() (values.Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value, c.decided
}

// Propose drives one proposer. It returns the decision, or ok=false when
// maxRounds adopt-commit rounds all stayed contended (the obstruction-free
// non-guarantee: under perpetual contention the loop may not terminate).
// Calling Propose again resumes at later rounds and remains safe.
func (c *Consensus) Propose(v values.Value, maxRounds int) (values.Value, bool, error) {
	if !v.Valid() {
		return "", false, fmt.Errorf("obstruction: invalid proposal %q", string(v))
	}
	if maxRounds <= 0 {
		return "", false, fmt.Errorf("obstruction: maxRounds = %d", maxRounds)
	}
	est := v
	for r := 1; r <= maxRounds; r++ {
		out, err := c.round(r).Propose(est)
		if err != nil {
			return "", false, err
		}
		est = out.Value
		if out.Commit {
			c.markDecided(est)
			return est, true, nil
		}
	}
	return "", false, nil
}
