package obstruction

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"anonconsensus/internal/values"
)

func TestAdoptCommitSolo(t *testing.T) {
	ac := NewAdoptCommit()
	out, err := ac.Propose(values.Num(7))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Commit || out.Value != values.Num(7) {
		t.Errorf("solo propose = %+v, want commit 7", out)
	}
}

func TestAdoptCommitConvergence(t *testing.T) {
	// All inputs equal ⇒ everyone commits, even concurrently (identical
	// anonymous operations collapse in the weak-set).
	ac := NewAdoptCommit()
	var wg sync.WaitGroup
	outs := make([]Outcome, 8)
	for i := range outs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := ac.Propose(values.Num(3))
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = out
		}()
	}
	wg.Wait()
	for i, out := range outs {
		if !out.Commit || out.Value != values.Num(3) {
			t.Errorf("proposer %d: %+v, want commit 3", i, out)
		}
	}
}

func TestAdoptCommitCoherence(t *testing.T) {
	// Sequential contention: the second proposer must adopt the first's
	// committed value.
	ac := NewAdoptCommit()
	first, err := ac.Propose(values.Num(1))
	if err != nil {
		t.Fatal(err)
	}
	if !first.Commit {
		t.Fatal("solo first proposer must commit")
	}
	second, err := ac.Propose(values.Num(2))
	if err != nil {
		t.Fatal(err)
	}
	if second.Commit && second.Value != values.Num(1) {
		t.Errorf("second proposer committed %v against committed 1", second.Value)
	}
	if second.Value != values.Num(1) {
		t.Errorf("second proposer output %v, must carry the committed 1", second.Value)
	}
}

func TestAdoptCommitCoherenceConcurrent(t *testing.T) {
	// Stress the coherence property: whenever someone commits v, every
	// output value is v. Repeat across many racy trials.
	for trial := 0; trial < 200; trial++ {
		ac := NewAdoptCommit()
		const p = 4
		outs := make([]Outcome, p)
		var wg sync.WaitGroup
		for i := 0; i < p; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, err := ac.Propose(values.Num(int64(i % 2)))
				if err != nil {
					t.Error(err)
					return
				}
				outs[i] = out
			}()
		}
		wg.Wait()
		var committed values.Value
		hasCommit := false
		for _, out := range outs {
			if out.Commit {
				if hasCommit && committed != out.Value {
					t.Fatalf("trial %d: two commits %v and %v", trial, committed, out.Value)
				}
				committed, hasCommit = out.Value, true
			}
		}
		if hasCommit {
			for i, out := range outs {
				if out.Value != committed {
					t.Fatalf("trial %d: proposer %d output %v against committed %v",
						trial, i, out.Value, committed)
				}
			}
		}
	}
}

func TestAdoptCommitValidity(t *testing.T) {
	ac := NewAdoptCommit()
	inputs := values.NewSet(values.Num(1), values.Num(2), values.Num(3))
	var wg sync.WaitGroup
	outs := make([]Outcome, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := ac.Propose(values.Num(int64(i + 1)))
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = out
		}()
	}
	wg.Wait()
	for i, out := range outs {
		if !inputs.Contains(out.Value) {
			t.Errorf("proposer %d output non-input %v", i, out.Value)
		}
	}
}

func TestAdoptCommitRejectsInvalid(t *testing.T) {
	ac := NewAdoptCommit()
	if _, err := ac.Propose(values.Bot); err == nil {
		t.Error("⊥ proposal accepted")
	}
}

func TestConsensusSolo(t *testing.T) {
	c := NewConsensus()
	v, ok, err := c.Propose(values.Num(9), 10)
	if err != nil || !ok || v != values.Num(9) {
		t.Fatalf("solo propose = %v,%v,%v", v, ok, err)
	}
	if got, decided := c.Decided(); !decided || got != values.Num(9) {
		t.Errorf("Decided = %v,%v", got, decided)
	}
}

func TestConsensusSequentialAgree(t *testing.T) {
	c := NewConsensus()
	first, ok, err := c.Propose(values.Num(5), 10)
	if err != nil || !ok {
		t.Fatal(err)
	}
	second, ok, err := c.Propose(values.Num(6), 10)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("sequential proposers disagree: %v vs %v", first, second)
	}
}

func TestConsensusConcurrentSafety(t *testing.T) {
	// Concurrent anonymous proposers with random jitter: termination is
	// only obstruction-free (a proposer may exhaust its rounds under
	// contention) but every decision must agree and be valid.
	for trial := 0; trial < 50; trial++ {
		c := NewConsensus()
		const p = 4
		rng := rand.New(rand.NewSource(int64(trial)))
		jitter := make([]time.Duration, p)
		for i := range jitter {
			jitter[i] = time.Duration(rng.Intn(200)) * time.Microsecond
		}
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			decisions = values.NewSet()
		)
		for i := 0; i < p; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(jitter[i])
				v, ok, err := c.Propose(values.Num(int64(10+i)), 50)
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					mu.Lock()
					decisions.Add(v)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if decisions.Len() > 1 {
			t.Fatalf("trial %d: agreement violated: %v", trial, decisions)
		}
		if v, ok := decisions.Max(); ok {
			if n, err := values.NumOf(v); err != nil || n < 10 || n >= 10+p {
				t.Fatalf("trial %d: invalid decision %v", trial, v)
			}
		}
	}
}

func TestConsensusEventualTerminationWithBackoff(t *testing.T) {
	// With proposers retrying under randomized backoff, some solo window
	// appears and everyone converges (the practical obstruction-freedom
	// story). Retry Propose until decided.
	c := NewConsensus()
	const p = 3
	var wg sync.WaitGroup
	decided := make([]values.Value, p)
	for i := 0; i < p; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for attempt := 0; ; attempt++ {
				if v, ok := c.Decided(); ok {
					decided[i] = v
					return
				}
				v, ok, err := c.Propose(values.Num(int64(100+i)), 5)
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					decided[i] = v
					return
				}
				time.Sleep(time.Duration(rng.Intn(1<<uint(minInt(attempt, 8)))) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	for i := 1; i < p; i++ {
		if decided[i] != decided[0] {
			t.Fatalf("disagreement: %v", decided)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestConsensusValidation(t *testing.T) {
	c := NewConsensus()
	if _, _, err := c.Propose(values.Bot, 5); err == nil {
		t.Error("⊥ accepted")
	}
	if _, _, err := c.Propose(values.Num(1), 0); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestNewAdoptCommitOverNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil weak-set must panic")
		}
	}()
	NewAdoptCommitOver(nil, nil)
}

func ExampleConsensus() {
	c := NewConsensus()
	v, ok, _ := c.Propose(values.Num(42), 10)
	fmt.Println(v, ok)
	// Output: 000000000042 true
}
