package obstruction

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"anonconsensus/internal/env"
	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

// faultyWeakSet wraps a linearizable weak-set with env.Scenario-driven
// faults, mirroring what a flaky network does to the shared-memory
// substrate: a duplication draw re-executes the operation (a retry after a
// lost ack — idempotent for set semantics, so safety must absorb it), and a
// loss draw fails the operation with a transient error *before* it takes
// effect (the proposer aborts mid-protocol, which the crash-fault model
// must tolerate). Draws are deterministic in (scenario seed, op counter,
// proc), so every quick iteration is reproducible.
type faultyWeakSet struct {
	inner weakset.WeakSet
	sc    *env.Scenario
	proc  int

	mu  sync.Mutex
	ops int
}

func (f *faultyWeakSet) nextOp() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	return f.ops
}

func (f *faultyWeakSet) Add(v values.Value) error {
	op := f.nextOp()
	if f.sc.Drops(op, f.proc, 0) {
		return fmt.Errorf("faulty weak-set: add lost (op %d, proc %d)", op, f.proc)
	}
	if err := f.inner.Add(v); err != nil {
		return err
	}
	if f.sc.Duplicates(op, f.proc, 0) {
		return f.inner.Add(v) // duplicated add: same value again
	}
	return nil
}

func (f *faultyWeakSet) Get() (values.Set, error) {
	op := f.nextOp()
	if f.sc.Drops(op, f.proc, 1) {
		return values.Set{}, fmt.Errorf("faulty weak-set: get lost (op %d, proc %d)", op, f.proc)
	}
	if f.sc.Duplicates(op, f.proc, 1) {
		if _, err := f.inner.Get(); err != nil {
			return values.Set{}, err
		}
	}
	return f.inner.Get()
}

// newFaultedConsensus builds a Consensus whose first maxRounds adopt-commit
// rounds run over scenario-faulted front-ends to shared linearizable
// weak-sets.
func newFaultedConsensus(sc *env.Scenario, maxRounds int) *Consensus {
	cons := &Consensus{rounds: make(map[int]*AdoptCommit, maxRounds)}
	for r := 1; r <= maxRounds; r++ {
		cons.rounds[r] = NewAdoptCommitOver(
			&faultyWeakSet{inner: &weakset.Memory{}, sc: sc, proc: r},
			&faultyWeakSet{inner: &weakset.Memory{}, sc: sc, proc: maxRounds + r},
		)
	}
	return cons
}

// TestQuickObstructionSafeUnderDuplication: duplicated weak-set operations
// must never shake Agreement or Validity — set semantics make the retry
// invisible — and, unlike loss, must never surface as an error.
func TestQuickObstructionSafeUnderDuplication(t *testing.T) {
	f := func(seed int64, dupRaw uint8, nRaw uint8) bool {
		n := 2 + int(nRaw%4)
		const maxRounds = 60
		cons := newFaultedConsensus(&env.Scenario{Seed: seed, DupPct: 20 + int(dupRaw%81)}, maxRounds)
		var wg sync.WaitGroup
		decisions := make([]values.Value, n)
		decided := make([]bool, n)
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, ok, err := cons.Propose(values.Num(int64(i)), maxRounds)
				decisions[i], decided[i], errs[i] = v, ok, err
			}()
		}
		wg.Wait()
		proposals := values.NewSet()
		for i := 0; i < n; i++ {
			proposals.Add(values.Num(int64(i)))
		}
		var agreedOn values.Value
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return false // duplication must never error
			}
			if !decided[i] {
				continue // perpetual contention is the OF non-guarantee
			}
			if !proposals.Contains(decisions[i]) {
				return false
			}
			if agreedOn != "" && decisions[i] != agreedOn {
				return false
			}
			agreedOn = decisions[i]
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickAdoptCommitSafeUnderScenarioFaults drives adopt-commit objects
// built over faulty weak-sets: whatever the loss/duplication draws do, the
// outcomes that *are* produced must satisfy coherence and validity, and
// loss must surface as an error, never as a silently wrong outcome.
func TestQuickAdoptCommitSafeUnderScenarioFaults(t *testing.T) {
	f := func(seed int64, lossRaw, dupRaw uint8, valsRaw []uint8) bool {
		n := 2 + len(valsRaw)%3
		sc := &env.Scenario{
			Seed:    seed,
			LossPct: int(lossRaw % 31), // 0–30%
			DupPct:  int(dupRaw % 51),  // 0–50%
		}
		proposals := &weakset.Memory{}
		flagged := &weakset.Memory{}
		type result struct {
			out Outcome
			err error
			in  values.Value
		}
		results := make([]result, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			v := values.Num(int64(i % 2)) // contended: two distinct values
			if len(valsRaw) > 0 {
				v = values.Num(int64(valsRaw[i%len(valsRaw)] % 3))
			}
			ac := NewAdoptCommitOver(
				&faultyWeakSet{inner: proposals, sc: sc, proc: i},
				&faultyWeakSet{inner: flagged, sc: sc, proc: i},
			)
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, err := ac.Propose(v)
				results[i] = result{out: out, err: err, in: v}
			}()
		}
		wg.Wait()
		// Coherence over the successful outcomes: all commits carry one
		// value, and every outcome's value was somebody's input.
		inputs := values.NewSet()
		for _, r := range results {
			inputs.Add(r.in)
		}
		var committed values.Value
		for _, r := range results {
			if r.err != nil {
				continue // an aborted proposer is a crash, not a verdict
			}
			if !inputs.Contains(r.out.Value) {
				return false // validity
			}
			if r.out.Commit {
				if committed != "" && r.out.Value != committed {
					return false // two commits with distinct values
				}
				committed = r.out.Value
			}
		}
		// Coherence: every successful outcome produced after a commit must
		// carry the committed value. (We cannot order concurrent outcomes
		// here, so we only check the unconditional part above; the
		// sequential form is pinned by the main suite.)
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(62))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickConsensusSafeUnderScenarioFaults is the end-to-end form: whole
// consensus instances whose every weak-set operation may be lost or
// duplicated. Successful decisions must agree and be valid; proposers hit
// by a loss abort with an error and harm nobody.
func TestQuickConsensusSafeUnderScenarioFaults(t *testing.T) {
	f := func(seed int64, lossRaw, dupRaw uint8) bool {
		n := 3
		sc := &env.Scenario{
			Seed:    seed,
			LossPct: int(lossRaw % 26), // 0–25%
			DupPct:  int(dupRaw % 51),  // 0–50%
		}
		const maxRounds = 40
		cons := newFaultedConsensus(sc, maxRounds)
		type outcome struct {
			v   values.Value
			ok  bool
			err error
		}
		outs := make([]outcome, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, ok, err := cons.Propose(values.Num(int64(i)), maxRounds)
				outs[i] = outcome{v, ok, err}
			}()
		}
		wg.Wait()
		proposals := values.NewSet(values.Num(0), values.Num(1), values.Num(2))
		var agreedOn values.Value
		for _, o := range outs {
			if o.err != nil || !o.ok {
				continue // aborted or contended — allowed under faults
			}
			if !proposals.Contains(o.v) {
				return false
			}
			if agreedOn != "" && o.v != agreedOn {
				return false
			}
			agreedOn = o.v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(63))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
