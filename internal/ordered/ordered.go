// Package ordered provides deterministic views of Go maps for the
// packages bound by the determinism contract (see tools/detlint).
//
// Go randomizes map iteration order on purpose; everywhere a
// deterministic package needs per-entry data out of a map it iterates
// one of these sorted views instead of ranging the map directly. The one
// raw map range lives here, behind the package's own detlint annotation,
// so the escape hatch has a single audited home instead of one per call
// site.
package ordered

import (
	"cmp"
	"slices"
)

// Keys returns m's keys in ascending order — the canonical iteration
// order for deterministic code. A nil or empty map yields an empty,
// non-nil slice of capacity zero.
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	out := make([]K, 0, len(m))
	//detlint:ordered keys are sorted before return, so callers observe one canonical order
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
