package ordered

import (
	"reflect"
	"testing"
)

func TestKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	for i := 0; i < 50; i++ { // map order is randomized per iteration
		if got := Keys(m); !reflect.DeepEqual(got, []int{1, 2, 3}) {
			t.Fatalf("Keys = %v, want [1 2 3]", got)
		}
	}
	if got := Keys(map[string]int(nil)); got == nil || len(got) != 0 {
		t.Fatalf("Keys(nil) = %#v, want empty non-nil slice", got)
	}
	if got := Keys(map[string]bool{"x": true}); !reflect.DeepEqual(got, []string{"x"}) {
		t.Fatalf("Keys = %v", got)
	}
}
