package register

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anonconsensus/internal/values"
)

// tag orders ABD writes: lexicographic on (seq, writer).
type tag struct {
	seq    int64
	writer int
}

func (t tag) less(u tag) bool {
	if t.seq != u.seq {
		return t.seq < u.seq
	}
	return t.writer < u.writer
}

// abdOp distinguishes replica requests.
type abdOp int

const (
	abdQuery abdOp = iota + 1 // phase 1: report current (tag, value)
	abdStore                  // phase 2: adopt (tag, value) if newer
)

type abdRequest struct {
	op    abdOp
	tag   tag
	val   values.Value
	reply chan abdReply
}

type abdReply struct {
	tag tag
	val values.Value
}

// ABD is the Attiya–Bar-Noy–Dolev atomic register emulation: n replica
// goroutines with known IDs connected by asynchronous channels; every
// operation completes after hearing from a majority, so it tolerates
// ⌈n/2⌉−1 replica crashes. This is the paper's reference [2] — the
// known-network substrate that (via weak-sets, Props. 2–3, and Algorithm 5)
// emulates the whole MS environment and thereby imports the FLP
// impossibility into MS.
//
// ABD is safe for concurrent use by any number of client goroutines.
type ABD struct {
	n        int
	replicas []chan abdRequest
	crashed  []atomic.Bool
	delay    func(replica int) time.Duration

	stop chan struct{}
	wg   sync.WaitGroup
}

var _ Register = (*ABD)(nil)

// ABDOption configures the cluster.
type ABDOption func(*ABD)

// WithDelay installs a per-replica artificial network delay, applied to
// every request to that replica (both phases).
func WithDelay(f func(replica int) time.Duration) ABDOption {
	return func(a *ABD) { a.delay = f }
}

// NewABD starts a cluster of n replicas. Call Close to stop them.
func NewABD(n int, opts ...ABDOption) *ABD {
	if n < 1 {
		panic(fmt.Sprintf("register.NewABD: n = %d", n))
	}
	a := &ABD{
		n:        n,
		replicas: make([]chan abdRequest, n),
		crashed:  make([]atomic.Bool, n),
		stop:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(a)
	}
	for i := 0; i < n; i++ {
		a.replicas[i] = make(chan abdRequest)
		a.wg.Add(1)
		go a.replica(i)
	}
	return a
}

// replica is the server loop: a trivial state machine holding the highest
// (tag, value) seen.
func (a *ABD) replica(id int) {
	defer a.wg.Done()
	var (
		cur tag
		val values.Value
	)
	for {
		select {
		case <-a.stop:
			return
		case req := <-a.replicas[id]:
			if a.crashed[id].Load() {
				continue // a crashed replica goes silent
			}
			if a.delay != nil {
				if d := a.delay(id); d > 0 {
					time.Sleep(d)
				}
			}
			switch req.op {
			case abdQuery:
			case abdStore:
				if cur.less(req.tag) {
					cur, val = req.tag, req.val
				}
			}
			req.reply <- abdReply{tag: cur, val: val}
		}
	}
}

// Crash silences replica id (it keeps draining requests without replying).
func (a *ABD) Crash(id int) {
	if id < 0 || id >= a.n {
		panic(fmt.Sprintf("register: crash of unknown replica %d", id))
	}
	a.crashed[id].Store(true)
}

// Close stops all replica goroutines. Operations in flight may fail to
// gather a majority and hang; close only after client goroutines are done.
func (a *ABD) Close() {
	close(a.stop)
	a.wg.Wait()
}

// majority returns the quorum size ⌊n/2⌋+1.
func (a *ABD) majority() int { return a.n/2 + 1 }

// broadcast sends req to every replica and returns the first quorum of
// replies.
func (a *ABD) broadcast(op abdOp, t tag, v values.Value) []abdReply {
	replyCh := make(chan abdReply, a.n)
	for i := 0; i < a.n; i++ {
		i := i
		go func() {
			req := abdRequest{op: op, tag: t, val: v, reply: replyCh}
			select {
			case a.replicas[i] <- req:
			case <-a.stop:
			}
		}()
	}
	replies := make([]abdReply, 0, a.majority())
	for len(replies) < a.majority() {
		select {
		case r := <-replyCh:
			replies = append(replies, r)
		case <-a.stop:
			return replies
		}
	}
	return replies
}

// maxReply returns the highest-tagged reply.
func maxReply(replies []abdReply) abdReply {
	best := replies[0]
	for _, r := range replies[1:] {
		if best.tag.less(r.tag) {
			best = r
		}
	}
	return best
}

// Writer returns a client handle with the given writer ID. Tags are
// (sequence, writer) pairs, so distinct writers always produce distinct
// tags — the classical MWMR construction. A single handle must not be used
// by two goroutines writing concurrently (one logical writer per ID).
func (a *ABD) Writer(id int) *ABDClient { return &ABDClient{a: a, id: id} }

// ABDClient is a per-writer front-end to the cluster.
type ABDClient struct {
	a  *ABD
	id int
}

var _ Register = (*ABDClient)(nil)

// Write implements Register: query a majority for the highest tag, then
// store (highest+1, writer) at a majority.
func (c *ABDClient) Write(v values.Value) error {
	a := c.a
	replies := a.broadcast(abdQuery, tag{}, "")
	if len(replies) < a.majority() {
		return fmt.Errorf("register: ABD write lost quorum (cluster closing)")
	}
	highest := maxReply(replies).tag
	st := a.broadcast(abdStore, tag{seq: highest.seq + 1, writer: c.id}, v)
	if len(st) < a.majority() {
		return fmt.Errorf("register: ABD write lost quorum (cluster closing)")
	}
	return nil
}

// Read implements Register via the cluster's Read.
func (c *ABDClient) Read() (values.Value, error) { return c.a.Read() }

// Write implements Register using writer ID 0; use Writer for distinct
// concurrent writers.
func (a *ABD) Write(v values.Value) error {
	return a.Writer(0).Write(v)
}

// Read implements Register: query a majority, then write back the highest
// (tag, value) to a majority before returning it (the read-repair phase
// that makes ABD atomic rather than merely regular).
func (a *ABD) Read() (values.Value, error) {
	replies := a.broadcast(abdQuery, tag{}, "")
	if len(replies) < a.majority() {
		return "", fmt.Errorf("register: ABD read lost quorum (cluster closing)")
	}
	best := maxReply(replies)
	wb := a.broadcast(abdStore, best.tag, best.val)
	if len(wb) < a.majority() {
		return "", fmt.Errorf("register: ABD read lost quorum (cluster closing)")
	}
	return best.val, nil
}
