package register

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"anonconsensus/internal/values"
)

func TestABDSingleClient(t *testing.T) {
	a := NewABD(3)
	defer a.Close()

	v, err := a.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "" {
		t.Errorf("unwritten register read %v", v)
	}
	if err := a.Write(values.Num(7)); err != nil {
		t.Fatal(err)
	}
	v, err = a.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != values.Num(7) {
		t.Errorf("read %v, want 7", v)
	}
}

func TestABDSurvivesMinorityCrash(t *testing.T) {
	a := NewABD(5)
	defer a.Close()
	if err := a.Write(values.Num(1)); err != nil {
		t.Fatal(err)
	}
	a.Crash(0)
	a.Crash(1)
	if err := a.Write(values.Num(2)); err != nil {
		t.Fatalf("write with minority crashed: %v", err)
	}
	v, err := a.Read()
	if err != nil {
		t.Fatalf("read with minority crashed: %v", err)
	}
	if v != values.Num(2) {
		t.Errorf("read %v, want 2", v)
	}
}

func TestABDMonotoneReads(t *testing.T) {
	// Atomicity implies no new/old inversion for sequential reads: once a
	// read returns a newer value, later reads never return an older one.
	a := NewABD(3)
	defer a.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := a.Writer(1)
		for i := int64(1); i <= 20; i++ {
			if err := w.Write(values.Num(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	last := int64(-1)
	for j := 0; j < 50; j++ {
		v, err := a.Read()
		if err != nil {
			t.Fatal(err)
		}
		if v == "" {
			continue
		}
		n, err := values.NumOf(v)
		if err != nil {
			t.Fatal(err)
		}
		if n < last {
			t.Fatalf("read regression: %d after %d", n, last)
		}
		last = n
	}
	wg.Wait()
}

func TestABDConcurrentWritersLinearizable(t *testing.T) {
	a := NewABD(5, WithDelay(func(r int) time.Duration {
		return time.Duration(rand.Intn(200)) * time.Microsecond
	}))
	defer a.Close()
	h := NewHistory()

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg := h.Instrument(a.Writer(w + 1))
			for i := 0; i < 4; i++ {
				if err := reg.Write(values.Num(int64(10*w + i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg := h.Instrument(a)
			for i := 0; i < 6; i++ {
				if _, err := reg.Read(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := CheckLinearizable(h.Ops()); err != nil {
		t.Fatalf("%v\nhistory: %+v", err, h.Ops())
	}
}

func TestMemoryRegisterLinearizable(t *testing.T) {
	var m Memory
	h := NewHistory()
	reg := h.Instrument(&m)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if i%2 == 0 {
					_ = reg.Write(values.Num(int64(i*10 + j)))
				} else {
					_, _ = reg.Read()
				}
			}
		}()
	}
	wg.Wait()
	if err := CheckLinearizable(h.Ops()); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLinearizableDetectsViolations(t *testing.T) {
	tests := []struct {
		name string
		ops  []HistOp
		want bool // linearizable?
	}{
		{
			name: "read of unwritten value",
			ops: []HistOp{
				{IsWrite: true, Value: values.Num(1), Start: 0, End: 1},
				{IsWrite: false, Value: values.Num(9), Start: 2, End: 3},
			},
			want: false,
		},
		{
			name: "stale read after newer write",
			ops: []HistOp{
				{IsWrite: true, Value: values.Num(1), Start: 0, End: 1},
				{IsWrite: true, Value: values.Num(2), Start: 2, End: 3},
				{IsWrite: false, Value: values.Num(1), Start: 4, End: 5},
			},
			want: false,
		},
		{
			name: "concurrent write may be seen either way",
			ops: []HistOp{
				{IsWrite: true, Value: values.Num(1), Start: 0, End: 10},
				{IsWrite: false, Value: values.Num(1), Start: 2, End: 3},
			},
			want: true,
		},
		{
			name: "empty read before any write",
			ops: []HistOp{
				{IsWrite: false, Value: "", Start: 0, End: 1},
				{IsWrite: true, Value: values.Num(1), Start: 2, End: 3},
			},
			want: true,
		},
		{
			name: "new old inversion",
			ops: []HistOp{
				{IsWrite: true, Value: values.Num(1), Start: 0, End: 1},
				{IsWrite: true, Value: values.Num(2), Start: 2, End: 3},
				{IsWrite: false, Value: values.Num(2), Start: 4, End: 5},
				{IsWrite: false, Value: values.Num(1), Start: 6, End: 7},
			},
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckLinearizable(tt.ops)
			if got := err == nil; got != tt.want {
				t.Errorf("linearizable = %v (%v), want %v", got, err, tt.want)
			}
		})
	}
}

func TestCheckRegular(t *testing.T) {
	good := []HistOp{
		{IsWrite: true, Value: values.Num(1), Start: 0, End: 2},
		{IsWrite: false, Value: values.Num(1), Start: 3, End: 4},
	}
	if err := CheckRegular(good); err != nil {
		t.Error(err)
	}
	phantom := []HistOp{
		{IsWrite: false, Value: values.Num(5), Start: 3, End: 4},
	}
	if err := CheckRegular(phantom); err == nil {
		t.Error("phantom read must fail regularity")
	}
	emptyAfterWrite := []HistOp{
		{IsWrite: true, Value: values.Num(1), Start: 0, End: 1},
		{IsWrite: false, Value: "", Start: 5, End: 6},
	}
	if err := CheckRegular(emptyAfterWrite); err == nil {
		t.Error("empty read after completed write must fail regularity")
	}
}

func ExampleABD() {
	a := NewABD(3)
	defer a.Close()
	_ = a.Write(values.Num(42))
	v, _ := a.Read()
	fmt.Println(v)
	// Output: 000000000042
}
