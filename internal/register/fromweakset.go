package register

import (
	"fmt"

	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

// FromWeakSet is Proposition 1: a regular multi-writer multi-reader
// register built from a weak-set.
//
// Write(v) reads the weak-set content H and adds the pair (v, |H|); Read
// returns the highest value among the pairs with maximal |H| ("maximal
// history length" in the paper). The register is regular, not atomic: two
// reads concurrent with the same set of writes may disagree, but once all
// writes complete every read returns the same value.
//
// Each process should use its own FromWeakSet front-end over the shared
// weak-set; the type itself is stateless and safe for concurrent use if the
// underlying weak-set is.
type FromWeakSet struct {
	s weakset.WeakSet
}

var _ Register = (*FromWeakSet)(nil)

// NewFromWeakSet wraps the shared weak-set s as a register.
func NewFromWeakSet(s weakset.WeakSet) *FromWeakSet {
	if s == nil {
		panic("register.NewFromWeakSet: nil weak-set")
	}
	return &FromWeakSet{s: s}
}

// Write implements Register: add (v, |current content|) to the weak-set.
func (r *FromWeakSet) Write(v values.Value) error {
	h, err := r.s.Get()
	if err != nil {
		return fmt.Errorf("register: reading weak-set before write: %w", err)
	}
	if err := r.s.Add(values.EncodePair(h.Len(), v)); err != nil {
		return fmt.Errorf("register: adding to weak-set: %w", err)
	}
	return nil
}

// Read implements Register: return the maximal value among pairs with
// maximal rank. Returns the empty Value if nothing was written yet.
func (r *FromWeakSet) Read() (values.Value, error) {
	h, err := r.s.Get()
	if err != nil {
		return "", fmt.Errorf("register: reading weak-set: %w", err)
	}
	// EncodePair's string order is (rank, value) lexicographic, so the
	// set's maximum is exactly the paper's resolution rule.
	best, ok := h.Max()
	if !ok {
		return "", nil
	}
	_, v, err := values.DecodePair(best)
	if err != nil {
		return "", fmt.Errorf("register: weak-set contains a non-pair element: %w", err)
	}
	return v, nil
}
