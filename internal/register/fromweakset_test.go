package register

import (
	"sync"
	"testing"

	"anonconsensus/internal/values"
	"anonconsensus/internal/weakset"
)

func TestFromWeakSetSequential(t *testing.T) {
	var ws weakset.Memory
	r := NewFromWeakSet(&ws)

	v, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "" {
		t.Errorf("unwritten register read %v", v)
	}
	for i := int64(1); i <= 5; i++ {
		if err := r.Write(values.Num(i)); err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != values.Num(i) {
			t.Fatalf("after write %d read %v", i, got)
		}
	}
}

func TestFromWeakSetOverwriteSemantics(t *testing.T) {
	// Later writes supersede earlier ones even with a smaller value: rank
	// (history length) dominates.
	var ws weakset.Memory
	r := NewFromWeakSet(&ws)
	if err := r.Write(values.Num(9)); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(values.Num(1)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != values.Num(1) {
		t.Errorf("read %v, want the later write 1", got)
	}
}

func TestFromWeakSetConcurrentWritesConvergeToRegular(t *testing.T) {
	// Proposition 1's validity: reads concurrent with writes may disagree,
	// but after all writes complete every reader sees the same value, and
	// the whole history is regular.
	var ws weakset.Memory
	h := NewHistory()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg := h.Instrument(NewFromWeakSet(&ws))
			for i := 0; i < 3; i++ {
				if err := reg.Write(values.Num(int64(10*w + i))); err != nil {
					t.Error(err)
					return
				}
				if _, err := reg.Read(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := CheckRegular(h.Ops()); err != nil {
		t.Fatal(err)
	}
	// Post-quiescence agreement.
	a, err := NewFromWeakSet(&ws).Read()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFromWeakSet(&ws).Read()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("quiescent readers disagree: %v vs %v", a, b)
	}
}

func TestFromWeakSetOverABD(t *testing.T) {
	// Full stack: ABD registers → Prop. 3 weak-set → Prop. 1 register.
	domain := []values.Value{values.Num(100), values.Num(101)}
	// The weak-set stores (value, rank) pairs, so its domain is pairs; use
	// Prop. 2 instead, whose domain is unconstrained.
	_ = domain
	cluster := NewABD(3)
	defer cluster.Close()
	slots := []weakset.Slot{cluster.Writer(0), &Memory{}}
	ws := weakset.NewFromSWMR(slots)
	r := NewFromWeakSet(ws.Handle(0))
	if err := r.Write(values.Num(5)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != values.Num(5) {
		t.Errorf("read %v, want 5", got)
	}
}

func TestNewFromWeakSetNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil weak-set must panic")
		}
	}()
	NewFromWeakSet(nil)
}
