package register

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"anonconsensus/internal/values"
)

// HistOp is one recorded register operation with its real-time interval.
type HistOp struct {
	// IsWrite distinguishes writes from reads.
	IsWrite bool
	// Value is the written value, or the value a read returned.
	Value values.Value
	// Start and End are the invocation and response instants (End ≥ Start).
	Start, End int64
}

// History records concurrent register operations for offline checking. It
// is safe for concurrent use.
type History struct {
	mu  sync.Mutex
	ops []HistOp
	clk func() int64
}

// NewHistory returns a recorder using a monotonic nanosecond clock.
func NewHistory() *History {
	start := time.Now()
	return &History{clk: func() int64 { return int64(time.Since(start)) }}
}

// Instrument wraps r so every operation is recorded.
func (h *History) Instrument(r Register) Register {
	return &recorded{r: r, h: h}
}

type recorded struct {
	r Register
	h *History
}

var _ Register = (*recorded)(nil)

func (rec *recorded) Write(v values.Value) error {
	start := rec.h.clk()
	err := rec.h.instrumentErr(rec.r.Write(v))
	rec.h.append(HistOp{IsWrite: true, Value: v, Start: start, End: rec.h.clk()})
	return err
}

func (rec *recorded) Read() (values.Value, error) {
	start := rec.h.clk()
	v, err := rec.r.Read()
	rec.h.append(HistOp{IsWrite: false, Value: v, Start: start, End: rec.h.clk()})
	return v, rec.h.instrumentErr(err)
}

func (h *History) instrumentErr(err error) error { return err }

func (h *History) append(op HistOp) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ops = append(h.ops, op)
}

// Ops returns a copy of the recorded operations.
func (h *History) Ops() []HistOp {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistOp, len(h.ops))
	copy(out, h.ops)
	return out
}

// CheckLinearizable decides whether the operations form a linearizable
// register history (Herlihy & Wing): some total order consistent with the
// real-time partial order in which every read returns the latest preceding
// write (or the empty value if none). It is a Wing–Gong style backtracking
// search with memoization — exponential in the worst case, fine for the
// test-sized histories this library records.
func CheckLinearizable(ops []HistOp) error {
	n := len(ops)
	if n == 0 {
		return nil
	}
	if n > 63 {
		return fmt.Errorf("register: linearizability check limited to 63 ops, got %d", n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by start for deterministic exploration order.
	sort.Slice(idx, func(a, b int) bool { return ops[idx[a]].Start < ops[idx[b]].Start })

	type state struct {
		done uint64
		val  values.Value
	}
	seen := make(map[state]bool)

	// precedes[i][j]: op i responds before op j is invoked.
	precedes := func(i, j int) bool { return ops[i].End < ops[j].Start }

	var search func(done uint64, val values.Value) bool
	search = func(done uint64, val values.Value) bool {
		if done == (uint64(1)<<n)-1 {
			return true
		}
		st := state{done: done, val: val}
		if seen[st] {
			return false
		}
		seen[st] = true
		for _, i := range idx {
			if done&(1<<i) != 0 {
				continue
			}
			// i is linearizable next only if every op that must precede it
			// is already done.
			ok := true
			for j := 0; j < n; j++ {
				if done&(1<<j) == 0 && j != i && precedes(j, i) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			op := ops[i]
			if op.IsWrite {
				if search(done|(1<<i), op.Value) {
					return true
				}
			} else if op.Value == val {
				if search(done|(1<<i), val) {
					return true
				}
			}
		}
		return false
	}
	if !search(0, "") {
		return fmt.Errorf("register: history of %d ops is not linearizable", n)
	}
	return nil
}

// CheckRegular validates the weaker regularity condition the paper's
// Proposition 1 promises, adapted to the (rank, value) resolution rule:
// every read returns either the empty value (nothing written yet and no
// write concurrent) or a value written by some operation that started
// before the read ended; and a read with no concurrent write returns a
// value from a write that was not superseded by a later completed write
// in the real-time order induced by write completion.
func CheckRegular(ops []HistOp) error {
	var writes, reads []HistOp
	for _, op := range ops {
		if op.IsWrite {
			writes = append(writes, op)
		} else {
			reads = append(reads, op)
		}
	}
	for _, r := range reads {
		if r.Value == "" {
			// Legal only if no write completed before the read started.
			for _, w := range writes {
				if w.End < r.Start {
					return fmt.Errorf("register: read [%d,%d] returned empty after write of %v completed at %d",
						r.Start, r.End, w.Value, w.End)
				}
			}
			continue
		}
		found := false
		for _, w := range writes {
			if w.Value == r.Value && w.Start <= r.End {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("register: read [%d,%d] returned %v which no overlapping-or-earlier write wrote",
				r.Start, r.End, r.Value)
		}
	}
	return nil
}
