package register

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anonconsensus/internal/values"
)

// TestQuickSequentialHistoriesLinearizable: any non-overlapping history
// where reads return the latest write is linearizable by construction; the
// checker must accept all of them.
func TestQuickSequentialHistoriesLinearizable(t *testing.T) {
	f := func(opsRaw []uint8) bool {
		if len(opsRaw) > 14 {
			opsRaw = opsRaw[:14]
		}
		var (
			ops  []HistOp
			last values.Value
			now  int64
		)
		for _, raw := range opsRaw {
			op := HistOp{Start: now, End: now + 1}
			if raw%2 == 0 {
				op.IsWrite = true
				op.Value = values.Num(int64(raw % 9))
				last = op.Value
			} else {
				op.Value = last
			}
			ops = append(ops, op)
			now += 2
		}
		return CheckLinearizable(ops) == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickStaleSequentialReadsRejected: corrupting one sequential read to
// a stale (previously overwritten, distinct) value must break
// linearizability.
func TestQuickStaleSequentialReadsRejected(t *testing.T) {
	f := func(a, b uint8) bool {
		v1 := values.Num(int64(a % 50))
		v2 := values.Num(int64(a%50) + 50) // guaranteed distinct
		_ = b
		ops := []HistOp{
			{IsWrite: true, Value: v1, Start: 0, End: 1},
			{IsWrite: true, Value: v2, Start: 2, End: 3},
			{IsWrite: false, Value: v1, Start: 4, End: 5}, // stale
		}
		return CheckLinearizable(ops) != nil
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(62))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRegularFromWeakSetSequential: the Prop-1 register behaves like a
// plain register for sequential use, for arbitrary write sequences.
func TestQuickRegularFromWeakSetSequential(t *testing.T) {
	f := func(writes []uint8) bool {
		var ws wsMemory
		r := NewFromWeakSet(&ws)
		var last values.Value
		for _, raw := range writes {
			v := values.Num(int64(raw))
			if err := r.Write(v); err != nil {
				return false
			}
			last = v
			got, err := r.Read()
			if err != nil || got != last {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(63))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// wsMemory is a tiny local linearizable weak-set to avoid importing
// weakset in a file dedicated to register properties (the real integration
// is covered in fromweakset_test.go).
type wsMemory struct {
	set values.Set
}

func (m *wsMemory) Add(v values.Value) error { m.set.Add(v); return nil }
func (m *wsMemory) Get() (values.Set, error) { return m.set.Clone(), nil }
