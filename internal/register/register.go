// Package register provides the register abstractions the paper relates to
// weak-sets, plus the classical substrate for "known" networks:
//
//   - Register: the shared-register ADT;
//   - Memory: an atomic in-memory register;
//   - FromWeakSet: Proposition 1 — a regular multi-writer multi-reader
//     register built from a weak-set;
//   - ABD: the Attiya–Bar-Noy–Dolev majority-quorum atomic register
//     emulation over an asynchronous message-passing cluster with known IDs
//     (the paper's reference [2], which grounds the FLP corollary: the MS
//     environment is emulatable from registers, hence cannot solve
//     consensus);
//   - checkers for regularity and linearizability of recorded histories.
package register

import (
	"sync"

	"anonconsensus/internal/values"
)

// Register is a multi-writer multi-reader shared register holding one
// Value. Implementations state whether they are atomic or merely regular.
type Register interface {
	// Write stores v, returning once the write has taken effect.
	Write(v values.Value) error
	// Read returns the register's value. An empty Value means "never
	// written".
	Read() (values.Value, error)
}

// Memory is an atomic in-memory register. The zero value is an unwritten
// register ready for use.
type Memory struct {
	mu  sync.Mutex
	val values.Value
}

var _ Register = (*Memory)(nil)

// Write implements Register.
func (m *Memory) Write(v values.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.val = v
	return nil
}

// Read implements Register.
func (m *Memory) Read() (values.Value, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.val, nil
}
