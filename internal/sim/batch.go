package sim

import (
	"context"
	"runtime"
	"sync"
)

// BatchOpts configures RunBatch.
type BatchOpts struct {
	// Parallelism bounds the number of worker goroutines; 0 (or negative)
	// means GOMAXPROCS. Parallelism 1 runs the batch sequentially on the
	// calling goroutine's worker.
	Parallelism int
}

func (o BatchOpts) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RunBatch executes a set of independent simulation runs across a bounded
// worker pool and returns their results in submission order: results[i]
// is exactly what RunContext(ctx, cfgs[i]) would have produced, so output
// is byte-identical to the sequential path regardless of parallelism.
//
// The determinism argument: runs share nothing. Each config carries its
// own Policy (policies are stateful and MUST NOT be shared between the
// configs of one batch), its own Automaton factory, and — when set — its
// own OnRound hook, which is invoked on the worker goroutine executing
// that run and must therefore only touch state owned by that config.
// Workers own a reusable Engine each (Reset between runs), so a batch of
// k runs allocates engine state for min(k, parallelism) engines, not k.
//
// Error handling is deterministic too: every run is attempted (an error
// in one run never cancels its siblings — only ctx does), and the first
// error in submission order is returned alongside the partial results
// (failed slots are nil).
func RunBatch(ctx context.Context, cfgs []Config, opts BatchOpts) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	workers := opts.parallelism()
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		runBatchWorker(ctx, cfgs, results, errs, seqIndices(len(cfgs)))
		return results, firstErr(errs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//detlint:goroutine this IS the RunBatch pool: workers share nothing and write submission-order slots, so output is parallelism-invariant
		go func() {
			defer wg.Done()
			runBatchWorker(ctx, cfgs, results, errs, idx)
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, firstErr(errs)
}

// runBatchWorker drains indices, running each config on one reused engine.
func runBatchWorker(ctx context.Context, cfgs []Config, results []*Result, errs []error, idx <-chan int) {
	var eng *Engine
	for i := range idx {
		var err error
		if eng == nil {
			eng, err = New(cfgs[i])
		} else {
			err = eng.Reset(cfgs[i])
		}
		if err != nil {
			errs[i] = err
			eng = nil // a failed Reset leaves the engine unusable
			continue
		}
		results[i], errs[i] = eng.RunContext(ctx)
	}
}

// seqIndices returns a pre-filled, closed index channel for the
// sequential path.
func seqIndices(n int) <-chan int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	return ch
}

// firstErr returns the first error in submission order.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
