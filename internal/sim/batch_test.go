package sim

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// batchAutomaton is a tiny consensus-ish automaton: broadcast the max
// value seen, decide once the same max survives three rounds.
type batchAutomaton struct {
	v      values.Value
	best   values.Value
	stable int
}

type valPayload struct{ v values.Value }

func (p valPayload) PayloadKey() string { return "v:" + string(p.v) }

func (a *batchAutomaton) Initialize() giraf.Payload {
	a.best = a.v
	return valPayload{a.v}
}

func (a *batchAutomaton) Compute(k int, in giraf.Inbox) (giraf.Payload, giraf.Decision) {
	prev := a.best
	for _, p := range in.Round(k) {
		if v := p.(valPayload).v; v > a.best {
			a.best = v
		}
	}
	if a.best == prev {
		a.stable++
	} else {
		a.stable = 0
	}
	if a.stable >= 3 {
		return nil, giraf.Decision{Decided: true, Value: a.best}
	}
	return valPayload{a.best}, giraf.Decision{}
}

// trialConfigs builds a fresh, policy-independent config grid. Policies
// are stateful, so every call returns brand-new policy values — sharing
// them between runs (or batches) would break determinism.
func trialConfigs() []Config {
	var cfgs []Config
	aut := func(n int) func(int) giraf.Automaton {
		return func(i int) giraf.Automaton { return &batchAutomaton{v: values.Num(int64(i % n))} }
	}
	for seed := int64(0); seed < 6; seed++ {
		n := 3 + int(seed)
		cfgs = append(cfgs, Config{
			N: n, Automaton: aut(n), MaxRounds: 200,
			Policy: &ES{GST: 8, Pre: MS{Seed: seed, MaxDelay: 3}},
		})
		cfgs = append(cfgs, Config{
			N: n, Automaton: aut(n), MaxRounds: 400,
			Policy:  &ESS{GST: 6, StableSource: n - 1, Pre: MS{Seed: seed, Alternate: true}},
			Crashes: map[int]int{0: 5},
		})
		cfgs = append(cfgs, Config{
			N: n, Automaton: aut(n), MaxRounds: 300,
			Policy: &Async{Seed: seed, MaxDelay: 5},
		})
	}
	return cfgs
}

func sameResults(t *testing.T, label string, got, want []*Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Statuses, want[i].Statuses) {
			t.Errorf("%s: run %d statuses diverged:\n got %+v\nwant %+v", label, i, got[i].Statuses, want[i].Statuses)
		}
		if got[i].Rounds != want[i].Rounds || got[i].Metrics != want[i].Metrics {
			t.Errorf("%s: run %d rounds/metrics diverged: got %d/%+v want %d/%+v",
				label, i, got[i].Rounds, got[i].Metrics, want[i].Rounds, want[i].Metrics)
		}
	}
}

func TestRunBatchDeterministicAcrossParallelism(t *testing.T) {
	// Sequential oracle: one engine per run, no reuse.
	var want []*Result
	for _, cfg := range trialConfigs() {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		got, err := RunBatch(context.Background(), trialConfigs(), BatchOpts{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		sameResults(t, fmt.Sprintf("parallelism %d", par), got, want)
	}
}

func TestRunBatchDeterministicError(t *testing.T) {
	for _, par := range []int{1, 4} {
		results, err := RunBatch(context.Background(), nil, BatchOpts{Parallelism: par})
		if err != nil || len(results) != 0 {
			t.Fatalf("empty batch: results=%d err=%v", len(results), err)
		}
		// Two invalid configs; the error at the lower index must win.
		bad := trialConfigs()
		bad[3].N = -1
		bad[7].MaxRounds = 0
		results, err = RunBatch(context.Background(), bad, BatchOpts{Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism %d: invalid configs accepted", par)
		}
		if want := "need at least 1 process"; !strings.Contains(err.Error(), want) {
			t.Errorf("parallelism %d: err = %v, want the index-3 validation error (%q)", par, err, want)
		}
		if results[3] != nil || results[7] != nil {
			t.Error("failed slots must stay nil")
		}
		if results[0] == nil || results[len(results)-1] == nil {
			t.Error("healthy runs must still complete despite sibling errors")
		}
	}
}

func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunBatch(ctx, trialConfigs(), BatchOpts{Parallelism: 2})
	if err == nil {
		t.Fatal("cancelled batch must report an error")
	}
	if ctx.Err() == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("err = %v, want a cancellation error", err)
	}
}

func TestEngineResetMatchesFreshRuns(t *testing.T) {
	cfgs := trialConfigs()
	eng, err := New(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	reused := []*Result{eng.Run()}
	for _, cfg := range cfgs[1:] {
		if err := eng.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		reused = append(reused, eng.Run())
	}
	var fresh []*Result
	for _, cfg := range trialConfigs() {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, res)
	}
	sameResults(t, "engine reuse", reused, fresh)
}

func TestResultStatusesNotAliased(t *testing.T) {
	// Satellite regression: a Result captured before Reset must not change
	// when the engine runs a different configuration afterwards.
	cfgs := trialConfigs()
	eng, err := New(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	first := eng.Run()
	snapshot := make([]ProcStatus, len(first.Statuses))
	copy(snapshot, first.Statuses)
	if err := eng.Reset(cfgs[1]); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !reflect.DeepEqual(first.Statuses, snapshot) {
		t.Error("earlier Result.Statuses mutated by engine reuse")
	}
}

func TestRingGrowsUnderLongDelays(t *testing.T) {
	// Delays far beyond the initial window force ring growth mid-run; the
	// run must still deliver every envelope exactly once.
	mk := func() Config {
		return Config{
			N:         4,
			Automaton: func(i int) giraf.Automaton { return &batchAutomaton{v: values.Num(int64(i))} },
			Policy: &Scripted{Default: 0, Delays: map[int]map[int]map[int]int{
				1: {0: {1: 40, 2: 41, 3: 97}},
				2: {1: {0: 25}},
			}},
			MaxRounds: 200,
		}
	}
	res, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCorrectDecided() {
		t.Fatal("undecided despite reliable (slow) links")
	}
	// Every broadcast reaches the n-1 peers of a live receiver set; with
	// nobody crashed, deliveries = broadcasts × (n-1) minus those scheduled
	// after the run ended. The far-future (round+97) envelope lands beyond
	// the decision round, so deliveries must be strictly fewer.
	if res.Metrics.Deliveries >= res.Metrics.Broadcasts*3 {
		t.Errorf("deliveries = %d, want < broadcasts×3 = %d (round+97 envelope must still be pending)",
			res.Metrics.Deliveries, res.Metrics.Broadcasts*3)
	}
	// And the same schedule on a reused engine stays identical.
	eng, err := New(Config{
		N: 2, Automaton: func(i int) giraf.Automaton { return &batchAutomaton{v: values.Num(int64(i))} },
		Policy: Synchronous{}, MaxRounds: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := eng.Reset(mk()); err != nil {
		t.Fatal(err)
	}
	again := eng.Run()
	sameResults(t, "ring growth after reuse", []*Result{again}, []*Result{res})
}
