// Package sim is the deterministic round simulator for GIRAF automata.
//
// The engine advances all processes in lockstep: at global step k every
// alive, non-halted process executes its end-of-round, which computes round
// k and broadcasts its round-(k+1) envelope. An environment Policy assigns
// every (sender, receiver) pair of every round a delivery delay measured in
// rounds: delay 0 means the envelope is delivered within the receiver's
// matching round (a *timely* link, the paper's §2.3), delay d > 0 means it
// arrives d rounds late — still reliably, just not on time.
//
// The three environments of the paper (MS, ES, ESS) plus fully synchronous,
// fully asynchronous and adversarial policies live in internal/env and are
// re-exported here as aliases (policy.go). Composable fault scenarios —
// loss, duplication, round-ranged partitions, crash schedules — come from
// the same package via Config.Scenario. A recorded Trace can be validated
// against the formal environment definitions by the checkers in checker.go,
// so tests never have to trust a policy's self-description.
package sim

import (
	"context"
	"fmt"

	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/ordered"
	"anonconsensus/internal/values"
)

// Config describes one simulation run.
type Config struct {
	// N is the number of processes.
	N int
	// Automaton builds the automaton for process i. Processes are anonymous:
	// the index is a simulator-level handle only and must not leak into
	// payloads.
	Automaton func(i int) giraf.Automaton
	// Policy is the environment: it schedules delivery delays.
	Policy Policy
	// Crashes maps process index to the global step at which it crashes:
	// the process does not execute its end-of-round at that step or later.
	// Crash step 0 means the process never even initializes.
	Crashes map[int]int
	// Scenario, when non-nil, overlays composable faults on the run: its
	// crash schedule is honored in addition to Crashes, and its loss,
	// duplication and partition dimensions are applied at delivery time
	// (lost envelopes never reach the receiver; duplicated ones are
	// delivered again one step later, exercising inbox deduplication). A
	// nil or empty Scenario leaves the run byte-identical to the
	// pre-scenario engine.
	Scenario *env.Scenario
	// MaxRounds bounds the run; the engine stops after this many global
	// steps even if processes are still undecided.
	MaxRounds int
	// RecordTrace enables delivery recording for the environment checkers.
	RecordTrace bool
	// OnRound, if non-nil, runs after every global step with the step
	// number; use it to sample custom per-round metrics.
	OnRound func(round int, e *Engine)
	// CompactInboxes drops inbox rounds older than the previous round after
	// every step, keeping memory flat on long runs. Only valid for automata
	// that read just the current round (Algorithms 2 and 3 — not
	// Algorithm 4, whose Fresh-based union relies on per-round dedup).
	CompactInboxes bool
}

func (c *Config) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("sim: N = %d, need at least 1 process", c.N)
	}
	if c.Automaton == nil {
		return fmt.Errorf("sim: Automaton factory is nil")
	}
	if c.Policy == nil {
		return fmt.Errorf("sim: Policy is nil")
	}
	if c.MaxRounds <= 0 {
		return fmt.Errorf("sim: MaxRounds = %d, must be positive", c.MaxRounds)
	}
	// Sorted view so the reported entry is deterministic when several are
	// invalid.
	for _, pid := range ordered.Keys(c.Crashes) {
		if pid < 0 || pid >= c.N {
			return fmt.Errorf("sim: crash schedule names process %d outside [0,%d)", pid, c.N)
		}
		if step := c.Crashes[pid]; step < 0 {
			return fmt.Errorf("sim: crash step %d for process %d is negative", step, pid)
		}
	}
	if err := c.Scenario.Validate(c.N); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// ProcStatus is the final state of one process.
type ProcStatus struct {
	// Decided is true if the process decided.
	Decided bool
	// Decision is the decided value (zero if !Decided).
	Decision values.Value
	// DecidedAt is the global step (= round computed) at which it decided.
	DecidedAt int
	// Crashed is true if the crash schedule stopped the process.
	Crashed bool
	// CrashedAt is the step at which it crashed (meaningful if Crashed).
	CrashedAt int
	// LastRound is the last round whose end-of-round the process executed.
	LastRound int
}

// Metrics aggregates run-wide counters.
type Metrics struct {
	// Broadcasts is the number of envelopes broadcast.
	Broadcasts int
	// Deliveries is the number of envelope deliveries performed.
	Deliveries int
	// PayloadBytes is the total canonical-encoding size of all broadcast
	// envelopes (each envelope counted once, not per receiver).
	PayloadBytes int
	// MaxEnvelopeBytes is the largest single envelope.
	MaxEnvelopeBytes int
	// Dropped is the number of deliveries lost to the scenario's loss rate
	// or an active partition (0 without a scenario).
	Dropped int
	// Duplicated is the number of extra deliveries injected by the
	// scenario's duplication rate (0 without a scenario).
	Duplicated int
}

// Result is the outcome of Run.
type Result struct {
	Statuses []ProcStatus
	// Rounds is the number of global steps executed.
	Rounds  int
	Metrics Metrics
	// Trace is non-nil when Config.RecordTrace was set.
	Trace *Trace
}

// AllCorrectDecided reports whether every non-crashed process decided.
func (r *Result) AllCorrectDecided() bool {
	for _, st := range r.Statuses {
		if !st.Crashed && !st.Decided {
			return false
		}
	}
	return true
}

// Decisions returns the set of decided values.
func (r *Result) Decisions() values.Set {
	out := values.NewSet()
	for _, st := range r.Statuses {
		if st.Decided {
			out.Add(st.Decision)
		}
	}
	return out
}

// FirstDecisionRound returns the earliest deciding step, or 0 if nobody
// decided.
func (r *Result) FirstDecisionRound() int {
	first := 0
	for _, st := range r.Statuses {
		if st.Decided && (first == 0 || st.DecidedAt < first) {
			first = st.DecidedAt
		}
	}
	return first
}

// LastDecisionRound returns the latest deciding step among deciders, or 0.
func (r *Result) LastDecisionRound() int {
	last := 0
	for _, st := range r.Statuses {
		if st.Decided && st.DecidedAt > last {
			last = st.DecidedAt
		}
	}
	return last
}

// CheckAgreement returns an error if two processes decided differently.
func (r *Result) CheckAgreement() error {
	if d := r.Decisions(); d.Len() > 1 {
		return fmt.Errorf("agreement violated: decisions %v", d)
	}
	return nil
}

// CheckValidity returns an error if some decision is not among proposals.
func (r *Result) CheckValidity(proposals values.Set) error {
	for i, st := range r.Statuses {
		if st.Decided && !proposals.Contains(st.Decision) {
			return fmt.Errorf("validity violated: process %d decided %v, proposals %v", i, st.Decision, proposals)
		}
	}
	return nil
}

// pendingDelivery is an envelope scheduled for a future step.
type pendingDelivery struct {
	receiver int
	sender   int
	env      giraf.Envelope
}

// dueRingHint is the initial delivery-ring window. Policy delays are
// small in practice (the MS/Async default bound is 3), so eight slots
// absorb the common case; longer delays grow the ring on demand.
const dueRingHint = 8

// Engine executes one configured run. Create with New, drive with Run.
// Engines are reusable: Reset rearms one for a new configuration while
// keeping its process, status and delivery-ring storage warm, which is
// what makes repeated-trial loops (and the RunBatch workers) cheap.
type Engine struct {
	cfg    Config
	procs  []*giraf.Proc
	auts   []giraf.Automaton
	status []ProcStatus
	// due is a ring of delivery queues indexed by absolute step modulo
	// len(due): slot at%len(due) holds exactly the deliveries scheduled
	// for step `at`. The invariant — every scheduled step lies in
	// (cur, cur+len(due)] where cur is the step currently executing — holds
	// because a policy's maximum delay bounds how far ahead an envelope can
	// be scheduled; schedule grows the ring when a delay exceeds the
	// window. Slot slices are truncated, not freed, on consumption, so
	// steady-state scheduling allocates nothing.
	due [][]pendingDelivery
	// stepNum is the global step currently executing (cur above).
	stepNum int
	metrics Metrics
	trace   *Trace
}

// New builds an engine; it returns an error on invalid configuration.
func New(cfg Config) (*Engine, error) {
	e := &Engine{}
	if err := e.Reset(cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset rearms the engine for a new configuration, reusing process,
// status and delivery-ring storage from the previous run. A Reset engine
// behaves identically to a fresh New(cfg) one; only allocation behavior
// differs. It returns an error on invalid configuration, leaving the
// engine unusable until a successful Reset.
func (e *Engine) Reset(cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	e.cfg = cfg
	if cap(e.procs) >= cfg.N {
		e.procs = e.procs[:cfg.N]
		e.auts = e.auts[:cfg.N]
		e.status = e.status[:cfg.N]
	} else {
		procs := make([]*giraf.Proc, cfg.N)
		copy(procs, e.procs)
		e.procs = procs
		e.auts = make([]giraf.Automaton, cfg.N)
		e.status = make([]ProcStatus, cfg.N)
	}
	for i := 0; i < cfg.N; i++ {
		e.auts[i] = cfg.Automaton(i)
		if e.procs[i] != nil {
			e.procs[i].Reset(e.auts[i])
		} else {
			e.procs[i] = giraf.NewProc(e.auts[i])
		}
	}
	clear(e.status)
	if e.due == nil {
		e.due = make([][]pendingDelivery, dueRingHint)
	} else {
		for i := range e.due {
			e.due[i] = truncatePending(e.due[i])
		}
	}
	e.stepNum = 0
	e.metrics = Metrics{}
	e.trace = nil
	if cfg.RecordTrace {
		e.trace = newTrace(cfg.N)
	}
	return nil
}

// truncatePending empties a delivery slice for reuse, dropping envelope
// references so recycled slots don't pin payloads from finished runs.
func truncatePending(s []pendingDelivery) []pendingDelivery {
	clear(s[:cap(s)])
	return s[:0]
}

// schedule queues a delivery for absolute step at, growing the ring when
// the delay reaches beyond the current window.
func (e *Engine) schedule(at int, d pendingDelivery) {
	if at-e.stepNum > len(e.due) {
		e.growRing(at)
	}
	slot := at % len(e.due)
	e.due[slot] = append(e.due[slot], d)
}

// growRing widens the delivery window to cover step at, re-placing queued
// slots at their new indices. Slot i currently holds the unique step in
// (e.step, e.step+len(due)] congruent to i modulo the old length.
func (e *Engine) growRing(at int) {
	oldLen := len(e.due)
	newLen := oldLen * 2
	for at-e.stepNum > newLen {
		newLen *= 2
	}
	next := make([][]pendingDelivery, newLen)
	for i, q := range e.due {
		step := e.stepNum + 1 + ((i-(e.stepNum+1))%oldLen+oldLen)%oldLen
		next[step%newLen] = q
	}
	e.due = next
}

// Proc returns the framework state of process i (for hooks and tests).
func (e *Engine) Proc(i int) *giraf.Proc { return e.procs[i] }

// Automaton returns the automaton of process i (for hooks and tests).
func (e *Engine) Automaton(i int) giraf.Automaton { return e.auts[i] }

// N returns the number of processes.
func (e *Engine) N() int { return e.cfg.N }

// crashStep returns the earliest scheduled crash step for pid across
// Config.Crashes and the scenario's crash schedule, or ok=false.
func (e *Engine) crashStep(pid int) (int, bool) {
	cs, ok := e.cfg.Crashes[pid]
	if ss, sok := e.cfg.Scenario.CrashRound(pid); sok && (!ok || ss < cs) {
		cs, ok = ss, true
	}
	return cs, ok
}

// crashedAt reports whether pid is crashed at step.
func (e *Engine) crashedAt(pid, step int) bool {
	cs, ok := e.crashStep(pid)
	return ok && step >= cs
}

// Run executes the simulation and returns the result. Run must be called
// once per New or Reset.
func (e *Engine) Run() *Result {
	res, _ := e.RunContext(context.Background())
	return res
}

// RunContext is Run with cancellation: the engine checks ctx between
// global steps and, when it fires, abandons the run and returns an error
// wrapping ctx.Err(). A cancelled run returns a nil Result. The simulation
// itself stays deterministic — cancellation only decides whether it
// finishes.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	// Step 0: initialization end-of-round for every non-crashed process.
	e.step(0)
	allDone := false
	step := 1
	for ; step <= e.cfg.MaxRounds && !allDone; step++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run cancelled at step %d: %w", step, err)
		}
		e.stepNum = step
		e.deliverDue(step)
		e.step(step)
		if e.cfg.OnRound != nil {
			e.cfg.OnRound(step, e)
		}
		if e.cfg.CompactInboxes {
			for _, p := range e.procs {
				p.CompactBefore(step - 1)
			}
		}
		allDone = true
		for i := range e.procs {
			if !e.crashedAt(i, step) && !e.procs[i].Halted() {
				allDone = false
				break
			}
		}
	}
	rounds := step - 1
	for i, p := range e.procs {
		st := &e.status[i]
		st.LastRound = p.CurrentRound()
		if d := p.Decision(); d.Decided {
			st.Decided = true
			st.Decision = d.Value
		}
		if cs, ok := e.crashStep(i); ok && cs <= rounds {
			st.Crashed = true
			st.CrashedAt = cs
		}
	}
	if e.trace != nil {
		e.trace.Rounds = rounds
	}
	// Statuses is a copy: the engine's own status storage is reused by
	// Reset, and a caller's Result must never mutate retroactively.
	statuses := make([]ProcStatus, len(e.status))
	copy(statuses, e.status)
	return &Result{
		Statuses: statuses,
		Rounds:   rounds,
		Metrics:  e.metrics,
		Trace:    e.trace,
	}, nil
}

// deliverDue merges all envelopes scheduled for this step into receivers
// and recycles the ring slot for step+len(due).
func (e *Engine) deliverDue(step int) {
	slot := step % len(e.due)
	for _, d := range e.due[slot] {
		if e.crashedAt(d.receiver, step) {
			continue
		}
		// Scenario loss and partitions act at delivery time: the envelope
		// was broadcast and scheduled, it just never arrives.
		if sc := e.cfg.Scenario; sc != nil && sc.Drops(d.env.Round, d.sender, d.receiver) {
			e.metrics.Dropped++
			continue
		}
		e.procs[d.receiver].Receive(d.env)
		e.metrics.Deliveries++
		if e.trace != nil {
			e.trace.recordDelivery(d.env.Round, d.sender, d.receiver, step)
		}
	}
	e.due[slot] = truncatePending(e.due[slot])
}

// step runs the end-of-round for every live process and schedules the
// resulting broadcasts with policy-chosen delays.
func (e *Engine) step(step int) {
	type outMsg struct {
		sender int
		env    giraf.Envelope
	}
	var outs []outMsg
	for i, p := range e.procs {
		if e.crashedAt(i, step) || p.Halted() {
			continue
		}
		env, ok := p.EndOfRound()
		if step >= 1 && e.trace != nil {
			// The process consumed M[step] in this end-of-round (whether it
			// decided or not), so it counts as a round-step receiver for the
			// environment checkers.
			e.trace.recordComputed(i, step)
		}
		if p.Halted() {
			if d := p.Decision(); d.Decided {
				e.status[i].Decided = true
				e.status[i].Decision = d.Value
				e.status[i].DecidedAt = step
				if e.trace != nil {
					e.trace.recordDecision(i, step, d.Value)
				}
			}
			continue
		}
		if !ok {
			continue
		}
		outs = append(outs, outMsg{sender: i, env: env})
	}
	if len(outs) == 0 {
		return
	}
	round := outs[0].env.Round // == step+1 for all senders (lockstep)
	senders := make([]int, len(outs))
	for i, o := range outs {
		senders[i] = o.sender
	}
	delay := e.cfg.Policy.Schedule(round, senders, e.cfg.N)
	for _, o := range outs {
		if e.trace != nil {
			e.trace.recordBroadcast(round, o.sender)
		}
		size := envelopeBytes(o.env)
		e.metrics.Broadcasts++
		e.metrics.PayloadBytes += size
		if size > e.metrics.MaxEnvelopeBytes {
			e.metrics.MaxEnvelopeBytes = size
		}
		for r := 0; r < e.cfg.N; r++ {
			if r == o.sender {
				continue // own payload is already in own inbox (Alg. 1 line 10)
			}
			d := delay(o.sender, r)
			if d < 0 {
				panic(fmt.Sprintf("sim: policy returned negative delay %d", d))
			}
			at := round + d
			e.schedule(at, pendingDelivery{receiver: r, sender: o.sender, env: o.env})
			// Scenario duplication: the same envelope is delivered a second
			// time one step later, so the receiver's inbox dedup is
			// exercised by a genuinely late duplicate. A delivery the
			// scenario also drops stays dropped (no point queueing copies
			// deliverDue would discard again).
			if sc := e.cfg.Scenario; sc != nil &&
				sc.Duplicates(round, o.sender, r) && !sc.Drops(round, o.sender, r) {
				e.metrics.Duplicated++
				e.schedule(at+1, pendingDelivery{receiver: r, sender: o.sender, env: o.env})
			}
		}
	}
	if e.trace != nil {
		if sp, ok := e.cfg.Policy.(SourceReporter); ok {
			if s, ok := sp.Source(round); ok {
				e.trace.recordClaimedSource(round, s)
			}
		}
	}
}

func envelopeBytes(env giraf.Envelope) int {
	total := 8 // round number
	for _, p := range env.Payloads {
		total += len(p.PayloadKey())
	}
	return total
}

// Run is a convenience wrapper: build an engine and run it.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation between global steps.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}
