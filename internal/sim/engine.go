// Package sim is the deterministic round simulator for GIRAF automata.
//
// The engine advances all processes in lockstep: at global step k every
// alive, non-halted process executes its end-of-round, which computes round
// k and broadcasts its round-(k+1) envelope. An environment Policy assigns
// every (sender, receiver) pair of every round a delivery delay measured in
// rounds: delay 0 means the envelope is delivered within the receiver's
// matching round (a *timely* link, the paper's §2.3), delay d > 0 means it
// arrives d rounds late — still reliably, just not on time.
//
// The three environments of the paper (MS, ES, ESS) plus fully synchronous,
// fully asynchronous and adversarial policies live in internal/env and are
// re-exported here as aliases (policy.go). Composable fault scenarios —
// loss, duplication, round-ranged partitions, crash schedules — come from
// the same package via Config.Scenario. A recorded Trace can be validated
// against the formal environment definitions by the checkers in checker.go,
// so tests never have to trust a policy's self-description.
package sim

import (
	"context"
	"fmt"
	"sync"

	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/ordered"
	"anonconsensus/internal/values"
)

// Config describes one simulation run.
type Config struct {
	// N is the number of processes.
	N int
	// Automaton builds the automaton for process i. Processes are anonymous:
	// the index is a simulator-level handle only and must not leak into
	// payloads.
	Automaton func(i int) giraf.Automaton
	// Policy is the environment: it schedules delivery delays.
	Policy Policy
	// Crashes maps process index to the global step at which it crashes:
	// the process does not execute its end-of-round at that step or later.
	// Crash step 0 means the process never even initializes.
	Crashes map[int]int
	// Scenario, when non-nil, overlays composable faults on the run: its
	// crash schedule is honored in addition to Crashes, and its loss,
	// duplication and partition dimensions are applied at delivery time
	// (lost envelopes never reach the receiver; duplicated ones are
	// delivered again one step later, exercising inbox deduplication). A
	// nil or empty Scenario leaves the run byte-identical to the
	// pre-scenario engine.
	Scenario *env.Scenario
	// MaxRounds bounds the run; the engine stops after this many global
	// steps even if processes are still undecided.
	MaxRounds int
	// RecordTrace enables delivery recording for the environment checkers.
	RecordTrace bool
	// OnRound, if non-nil, runs after every global step with the step
	// number; use it to sample custom per-round metrics.
	OnRound func(round int, e *Engine)
	// DeliverWorkers shards each step's due-delivery fan-out across this
	// many goroutines, partitioned by receiver index with a barrier per
	// step — the intra-run parallelism a single big-n run needs where
	// RunBatch (which parallelizes across runs) cannot help. 0 and 1 mean
	// sequential. Output is byte-identical at any setting: receivers are
	// partitioned disjointly (workers never share a Proc), every worker
	// scans the step's queue in order so per-receiver delivery order is
	// unchanged, and counters are summed over the fixed worker index
	// order. Runs that record a trace deliver sequentially regardless
	// (trace recording appends to one shared log).
	DeliverWorkers int
	// CompactInboxes drops inbox rounds older than the previous round after
	// every step, keeping memory flat on long runs. Only valid for automata
	// that read just the current round (Algorithms 2 and 3 — not
	// Algorithm 4, whose Fresh-based union relies on per-round dedup).
	CompactInboxes bool
}

func (c *Config) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("sim: N = %d, need at least 1 process", c.N)
	}
	if c.Automaton == nil {
		return fmt.Errorf("sim: Automaton factory is nil")
	}
	if c.Policy == nil {
		return fmt.Errorf("sim: Policy is nil")
	}
	if c.MaxRounds <= 0 {
		return fmt.Errorf("sim: MaxRounds = %d, must be positive", c.MaxRounds)
	}
	// Sorted view so the reported entry is deterministic when several are
	// invalid.
	for _, pid := range ordered.Keys(c.Crashes) {
		if pid < 0 || pid >= c.N {
			return fmt.Errorf("sim: crash schedule names process %d outside [0,%d)", pid, c.N)
		}
		if step := c.Crashes[pid]; step < 0 {
			return fmt.Errorf("sim: crash step %d for process %d is negative", step, pid)
		}
	}
	if c.DeliverWorkers < 0 {
		return fmt.Errorf("sim: DeliverWorkers = %d, must be non-negative", c.DeliverWorkers)
	}
	if err := c.Scenario.Validate(c.N); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// ProcStatus is the final state of one process.
type ProcStatus struct {
	// Decided is true if the process decided.
	Decided bool
	// Decision is the decided value (zero if !Decided).
	Decision values.Value
	// DecidedAt is the global step (= round computed) at which it decided.
	DecidedAt int
	// Crashed is true if the crash schedule stopped the process.
	Crashed bool
	// CrashedAt is the step at which it crashed (meaningful if Crashed).
	CrashedAt int
	// LastRound is the last round whose end-of-round the process executed.
	LastRound int
}

// Metrics aggregates run-wide counters.
type Metrics struct {
	// Broadcasts is the number of envelopes broadcast.
	Broadcasts int
	// Deliveries is the number of envelope deliveries performed.
	Deliveries int
	// PayloadBytes is the total canonical-encoding size of all broadcast
	// envelopes (each envelope counted once, not per receiver).
	PayloadBytes int
	// MaxEnvelopeBytes is the largest single envelope.
	MaxEnvelopeBytes int
	// Dropped is the number of deliveries lost to the scenario's loss rate
	// or an active partition (0 without a scenario).
	Dropped int
	// Duplicated is the number of extra deliveries injected by the
	// scenario's duplication rate (0 without a scenario).
	Duplicated int
	// MergesSkipped is the number of delivered envelopes whose element-wise
	// inbox merge the dominance check skipped because the receiver's round
	// view already dominated the envelope's set fingerprint (see
	// PERFORMANCE.md). A skipped delivery still counts in Deliveries.
	MergesSkipped int
}

// Result is the outcome of Run.
type Result struct {
	Statuses []ProcStatus
	// Rounds is the number of global steps executed.
	Rounds  int
	Metrics Metrics
	// Trace is non-nil when Config.RecordTrace was set.
	Trace *Trace
}

// AllCorrectDecided reports whether every non-crashed process decided.
func (r *Result) AllCorrectDecided() bool {
	for _, st := range r.Statuses {
		if !st.Crashed && !st.Decided {
			return false
		}
	}
	return true
}

// Decisions returns the set of decided values.
func (r *Result) Decisions() values.Set {
	out := values.NewSet()
	for _, st := range r.Statuses {
		if st.Decided {
			out.Add(st.Decision)
		}
	}
	return out
}

// FirstDecisionRound returns the earliest deciding step, or 0 if nobody
// decided.
func (r *Result) FirstDecisionRound() int {
	first := 0
	for _, st := range r.Statuses {
		if st.Decided && (first == 0 || st.DecidedAt < first) {
			first = st.DecidedAt
		}
	}
	return first
}

// LastDecisionRound returns the latest deciding step among deciders, or 0.
func (r *Result) LastDecisionRound() int {
	last := 0
	for _, st := range r.Statuses {
		if st.Decided && st.DecidedAt > last {
			last = st.DecidedAt
		}
	}
	return last
}

// CheckAgreement returns an error if two processes decided differently.
func (r *Result) CheckAgreement() error {
	if d := r.Decisions(); d.Len() > 1 {
		return fmt.Errorf("agreement violated: decisions %v", d)
	}
	return nil
}

// CheckValidity returns an error if some decision is not among proposals.
func (r *Result) CheckValidity(proposals values.Set) error {
	for i, st := range r.Statuses {
		if st.Decided && !proposals.Contains(st.Decision) {
			return fmt.Errorf("validity violated: process %d decided %v, proposals %v", i, st.Decision, proposals)
		}
	}
	return nil
}

// pendingDelivery is an envelope scheduled for a future step. A receiver
// of fanOutAll means "every process except the sender": uniform-delay
// broadcasts in scenario-free runs collapse to one ring entry instead of
// n-1, and deliverDue expands them in ascending receiver order — exactly
// the order the per-receiver entries would have been queued in, so the
// collapse is invisible to delivery order and byte-identity pins.
type pendingDelivery struct {
	receiver int
	sender   int
	env      giraf.Envelope
}

// fanOutAll is the pendingDelivery.receiver sentinel for a collapsed
// uniform-delay broadcast entry.
const fanOutAll = -1

// dueRingHint is the initial delivery-ring window. Policy delays are
// small in practice (the MS/Async default bound is 3), so eight slots
// absorb the common case; longer delays grow the ring on demand.
const dueRingHint = 8

// Engine executes one configured run. Create with New, drive with Run.
// Engines are reusable: Reset rearms one for a new configuration while
// keeping its process, status and delivery-ring storage warm, which is
// what makes repeated-trial loops (and the RunBatch workers) cheap.
type Engine struct {
	cfg    Config
	procs  []*giraf.Proc
	auts   []giraf.Automaton
	status []ProcStatus
	// due is a ring of delivery queues indexed by absolute step modulo
	// len(due): slot at%len(due) holds exactly the deliveries scheduled
	// for step `at`. The invariant — every scheduled step lies in
	// (cur, cur+len(due)] where cur is the step currently executing — holds
	// because a policy's maximum delay bounds how far ahead an envelope can
	// be scheduled; schedule grows the ring when a delay exceeds the
	// window. Slot slices are truncated, not freed, on consumption, so
	// steady-state scheduling allocates nothing.
	due [][]pendingDelivery
	// stepNum is the global step currently executing (cur above).
	stepNum int
	metrics Metrics
	trace   *Trace
	// crash is the flattened crash schedule: crash[i] is the earliest step
	// at which process i crashes, crashNever if it never does. Built once
	// per Reset so the hot loops test a slice element instead of probing
	// the Crashes map and the scenario per call.
	crash []int
	// outs and senders are step's scratch buffers, reused across steps.
	outs    []outMsg
	senders []int
	// workerCnt holds per-worker delivery/drop counters for the sharded
	// delivery path, reused across steps.
	workerCnt []workerCounters
}

// outMsg is one process's broadcast for the step being executed.
type outMsg struct {
	sender int
	env    giraf.Envelope
}

// workerCounters is one delivery worker's share of the step metrics.
type workerCounters struct {
	delivered int
	dropped   int
	// pad keeps adjacent workers' counters off the same cache line.
	_ [6]uint64
}

// crashNever marks a process with no scheduled crash.
const crashNever = int(^uint(0) >> 1)

// New builds an engine; it returns an error on invalid configuration.
func New(cfg Config) (*Engine, error) {
	e := &Engine{}
	if err := e.Reset(cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset rearms the engine for a new configuration, reusing process,
// status and delivery-ring storage from the previous run. A Reset engine
// behaves identically to a fresh New(cfg) one; only allocation behavior
// differs. It returns an error on invalid configuration, leaving the
// engine unusable until a successful Reset.
func (e *Engine) Reset(cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	e.cfg = cfg
	if cap(e.procs) >= cfg.N {
		e.procs = e.procs[:cfg.N]
		e.auts = e.auts[:cfg.N]
		e.status = e.status[:cfg.N]
	} else {
		procs := make([]*giraf.Proc, cfg.N)
		copy(procs, e.procs)
		e.procs = procs
		e.auts = make([]giraf.Automaton, cfg.N)
		e.status = make([]ProcStatus, cfg.N)
	}
	for i := 0; i < cfg.N; i++ {
		e.auts[i] = cfg.Automaton(i)
		if e.procs[i] != nil {
			e.procs[i].Reset(e.auts[i])
		} else {
			e.procs[i] = giraf.NewProc(e.auts[i])
		}
	}
	clear(e.status)
	if e.due == nil {
		e.due = make([][]pendingDelivery, dueRingHint)
	} else {
		for i := range e.due {
			e.due[i] = truncatePending(e.due[i])
		}
	}
	if cap(e.crash) >= cfg.N {
		e.crash = e.crash[:cfg.N]
	} else {
		e.crash = make([]int, cfg.N)
	}
	for i := range e.crash {
		cs, ok := cfg.Crashes[i]
		if ss, sok := cfg.Scenario.CrashRound(i); sok && (!ok || ss < cs) {
			cs, ok = ss, true
		}
		if !ok {
			cs = crashNever
		}
		e.crash[i] = cs
	}
	e.stepNum = 0
	e.metrics = Metrics{}
	e.trace = nil
	if cfg.RecordTrace {
		e.trace = newTrace(cfg.N)
	}
	return nil
}

// truncatePending empties a delivery slice for reuse, dropping envelope
// references so recycled slots don't pin payloads from finished runs.
// Clearing only [0:len) suffices: the region beyond len is either
// never-written or was zeroed by an earlier truncation, so a full-capacity
// clear would just rewrite zeros (which profiling showed dominating
// memclr time at n=256).
func truncatePending(s []pendingDelivery) []pendingDelivery {
	clear(s)
	return s[:0]
}

// schedule queues a delivery for absolute step at, growing the ring when
// the delay reaches beyond the current window.
func (e *Engine) schedule(at int, d pendingDelivery) {
	if at-e.stepNum > len(e.due) {
		e.growRing(at)
	}
	slot := at % len(e.due)
	e.due[slot] = append(e.due[slot], d)
}

// growRing widens the delivery window to cover step at, re-placing queued
// slots at their new indices. Slot i currently holds the unique step in
// (e.step, e.step+len(due)] congruent to i modulo the old length.
func (e *Engine) growRing(at int) {
	oldLen := len(e.due)
	newLen := oldLen * 2
	for at-e.stepNum > newLen {
		newLen *= 2
	}
	next := make([][]pendingDelivery, newLen)
	for i, q := range e.due {
		step := e.stepNum + 1 + ((i-(e.stepNum+1))%oldLen+oldLen)%oldLen
		next[step%newLen] = q
	}
	e.due = next
}

// Proc returns the framework state of process i (for hooks and tests).
func (e *Engine) Proc(i int) *giraf.Proc { return e.procs[i] }

// Automaton returns the automaton of process i (for hooks and tests).
func (e *Engine) Automaton(i int) giraf.Automaton { return e.auts[i] }

// N returns the number of processes.
func (e *Engine) N() int { return e.cfg.N }

// crashStep returns the earliest scheduled crash step for pid across
// Config.Crashes and the scenario's crash schedule, or ok=false. The
// schedule is flattened into e.crash by Reset.
func (e *Engine) crashStep(pid int) (int, bool) {
	cs := e.crash[pid]
	return cs, cs != crashNever
}

// Run executes the simulation and returns the result. Run must be called
// once per New or Reset.
func (e *Engine) Run() *Result {
	res, _ := e.RunContext(context.Background())
	return res
}

// RunContext is Run with cancellation: the engine checks ctx between
// global steps and, when it fires, abandons the run and returns an error
// wrapping ctx.Err(). A cancelled run returns a nil Result. The simulation
// itself stays deterministic — cancellation only decides whether it
// finishes.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	// Step 0: initialization end-of-round for every non-crashed process.
	e.step(0)
	allDone := false
	step := 1
	for ; step <= e.cfg.MaxRounds && !allDone; step++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run cancelled at step %d: %w", step, err)
		}
		e.stepNum = step
		e.deliverDue(step)
		e.step(step)
		if e.cfg.OnRound != nil {
			e.cfg.OnRound(step, e)
		}
		if e.cfg.CompactInboxes {
			for _, p := range e.procs {
				p.CompactBefore(step - 1)
			}
		}
		allDone = true
		for i := range e.procs {
			if step < e.crash[i] && !e.procs[i].Halted() {
				allDone = false
				break
			}
		}
	}
	rounds := step - 1
	for i, p := range e.procs {
		st := &e.status[i]
		st.LastRound = p.CurrentRound()
		e.metrics.MergesSkipped += p.MergeSkips()
		if d := p.Decision(); d.Decided {
			st.Decided = true
			st.Decision = d.Value
		}
		if cs, ok := e.crashStep(i); ok && cs <= rounds {
			st.Crashed = true
			st.CrashedAt = cs
		}
	}
	if e.trace != nil {
		e.trace.Rounds = rounds
	}
	// Statuses is a copy: the engine's own status storage is reused by
	// Reset, and a caller's Result must never mutate retroactively.
	statuses := make([]ProcStatus, len(e.status))
	copy(statuses, e.status)
	return &Result{
		Statuses: statuses,
		Rounds:   rounds,
		Metrics:  e.metrics,
		Trace:    e.trace,
	}, nil
}

// deliverDue merges all envelopes scheduled for this step into receivers
// and recycles the ring slot for step+len(due). When Config.DeliverWorkers
// asks for intra-run parallelism (and no trace is being recorded), the
// queue is sharded by receiver index across workers with a barrier before
// returning; sharding is output-identical to the sequential path, so it is
// gated only by a cost heuristic.
func (e *Engine) deliverDue(step int) {
	slot := step % len(e.due)
	q := e.due[slot]
	if len(q) == 0 {
		return
	}
	if w := e.deliverWorkers(q); w > 1 {
		e.deliverSharded(step, q, w)
	} else {
		delivered, dropped := e.deliverShard(step, q, 0, 1)
		e.metrics.Deliveries += delivered
		e.metrics.Dropped += dropped
	}
	e.due[slot] = truncatePending(e.due[slot])
}

// shardMinWork is the expanded-delivery count below which sharding isn't
// worth a barrier. Output is identical either way; this is purely a cost
// threshold.
const shardMinWork = 256

// deliverWorkers resolves the worker count for one step's queue.
func (e *Engine) deliverWorkers(q []pendingDelivery) int {
	w := e.cfg.DeliverWorkers
	if w <= 1 || e.trace != nil {
		// Trace recording appends to one shared log in delivery order;
		// keep it on the sequential path.
		return 1
	}
	work := 0
	for _, d := range q {
		if d.receiver == fanOutAll {
			work += e.cfg.N - 1
		} else {
			work++
		}
	}
	if work < shardMinWork {
		return 1
	}
	if w > e.cfg.N {
		w = e.cfg.N
	}
	return w
}

// deliverSharded fans one step's queue across workers partitioned by
// receiver index (receiver r belongs to worker r % workers). Workers never
// share a Proc, every worker scans the queue in order so per-receiver
// delivery order matches the sequential path, and the per-worker counters
// are folded into the metrics in worker-index order — three properties
// that together make the sharded path byte-identical to the sequential
// one.
func (e *Engine) deliverSharded(step int, q []pendingDelivery, workers int) {
	if cap(e.workerCnt) >= workers {
		e.workerCnt = e.workerCnt[:workers]
	} else {
		e.workerCnt = make([]workerCounters, workers)
	}
	var wg sync.WaitGroup
	for wid := 1; wid < workers; wid++ {
		wg.Add(1)
		//detlint:goroutine bounded per-step delivery shard; receiver-partitioned disjoint state, barrier via wg.Wait before deliverDue returns
		go func(wid int) {
			defer wg.Done()
			delivered, dropped := e.deliverShard(step, q, wid, workers)
			e.workerCnt[wid] = workerCounters{delivered: delivered, dropped: dropped}
		}(wid)
	}
	delivered, dropped := e.deliverShard(step, q, 0, workers)
	e.workerCnt[0] = workerCounters{delivered: delivered, dropped: dropped}
	wg.Wait()
	for i := range e.workerCnt {
		e.metrics.Deliveries += e.workerCnt[i].delivered
		e.metrics.Dropped += e.workerCnt[i].dropped
	}
}

// deliverShard performs worker wid's share of one step's deliveries:
// receivers congruent to wid modulo workers. It is the single delivery
// loop both the sequential path (wid=0, workers=1) and every shard run.
func (e *Engine) deliverShard(step int, q []pendingDelivery, wid, workers int) (delivered, dropped int) {
	sc := e.cfg.Scenario
	for _, d := range q {
		if d.receiver != fanOutAll {
			r := d.receiver
			if workers > 1 && r%workers != wid {
				continue
			}
			if step >= e.crash[r] {
				continue
			}
			// Scenario loss and partitions act at delivery time: the
			// envelope was broadcast and scheduled, it just never arrives.
			if sc != nil && sc.Drops(d.env.Round, d.sender, r) {
				dropped++
				continue
			}
			e.procs[r].Receive(d.env)
			delivered++
			if e.trace != nil {
				e.trace.recordDelivery(d.env.Round, d.sender, r, step)
			}
			continue
		}
		// Collapsed uniform-delay broadcast: expand to every receiver in
		// ascending order (r starts at wid, which is 0 on the sequential
		// path). Fan-out entries are only scheduled when Scenario == nil,
		// so no drop check is needed.
		for r := wid; r < e.cfg.N; r += workers {
			if r == d.sender || step >= e.crash[r] {
				continue
			}
			e.procs[r].Receive(d.env)
			delivered++
			if e.trace != nil {
				e.trace.recordDelivery(d.env.Round, d.sender, r, step)
			}
		}
	}
	return delivered, dropped
}

// step runs the end-of-round for every live process and schedules the
// resulting broadcasts with policy-chosen delays.
func (e *Engine) step(step int) {
	outs := e.outs[:0]
	for i, p := range e.procs {
		if step >= e.crash[i] || p.Halted() {
			continue
		}
		env, ok := p.EndOfRound()
		if step >= 1 && e.trace != nil {
			// The process consumed M[step] in this end-of-round (whether it
			// decided or not), so it counts as a round-step receiver for the
			// environment checkers.
			e.trace.recordComputed(i, step)
		}
		if p.Halted() {
			if d := p.Decision(); d.Decided {
				e.status[i].Decided = true
				e.status[i].Decision = d.Value
				e.status[i].DecidedAt = step
				if e.trace != nil {
					e.trace.recordDecision(i, step, d.Value)
				}
			}
			continue
		}
		if !ok {
			continue
		}
		outs = append(outs, outMsg{sender: i, env: env})
	}
	e.outs = outs // keep grown capacity for the next step
	if len(outs) == 0 {
		return
	}
	round := outs[0].env.Round // == step+1 for all senders (lockstep)
	senders := e.senders[:0]
	for _, o := range outs {
		senders = append(senders, o.sender)
	}
	e.senders = senders
	delay := e.cfg.Policy.Schedule(round, senders, e.cfg.N)
	for _, o := range outs {
		if e.trace != nil {
			e.trace.recordBroadcast(round, o.sender)
		}
		size := envelopeBytes(o.env)
		e.metrics.Broadcasts++
		e.metrics.PayloadBytes += size
		if size > e.metrics.MaxEnvelopeBytes {
			e.metrics.MaxEnvelopeBytes = size
		}
		// Fan-out collapse: in scenario-free runs, if the policy assigned
		// every receiver of this sender the same delay (the overwhelmingly
		// common case — Synchronous and post-GST ES are uniformly 0),
		// schedule one fanOutAll entry instead of n-1 per-receiver ones.
		// DelayFn is pure per round (policies pre-draw their delay
		// matrices), so probing it twice is safe.
		if e.cfg.Scenario == nil && e.cfg.N > 1 {
			if d0, uniform := uniformDelay(delay, o.sender, e.cfg.N); uniform {
				if d0 < 0 {
					panic(fmt.Sprintf("sim: policy returned negative delay %d", d0))
				}
				e.schedule(round+d0, pendingDelivery{receiver: fanOutAll, sender: o.sender, env: o.env})
				continue
			}
		}
		for r := 0; r < e.cfg.N; r++ {
			if r == o.sender {
				continue // own payload is already in own inbox (Alg. 1 line 10)
			}
			d := delay(o.sender, r)
			if d < 0 {
				panic(fmt.Sprintf("sim: policy returned negative delay %d", d))
			}
			at := round + d
			e.schedule(at, pendingDelivery{receiver: r, sender: o.sender, env: o.env})
			// Scenario duplication: the same envelope is delivered a second
			// time one step later, so the receiver's inbox dedup is
			// exercised by a genuinely late duplicate. A delivery the
			// scenario also drops stays dropped (no point queueing copies
			// deliverDue would discard again).
			if sc := e.cfg.Scenario; sc != nil &&
				sc.Duplicates(round, o.sender, r) && !sc.Drops(round, o.sender, r) {
				e.metrics.Duplicated++
				e.schedule(at+1, pendingDelivery{receiver: r, sender: o.sender, env: o.env})
			}
		}
	}
	if e.trace != nil {
		if sp, ok := e.cfg.Policy.(SourceReporter); ok {
			if s, ok := sp.Source(round); ok {
				e.trace.recordClaimedSource(round, s)
			}
		}
	}
}

// uniformDelay reports whether delay assigns every receiver of sender the
// same delay, returning that delay. With fewer than two receivers there is
// nothing to deliver and the caller's guard keeps this unreached for n<=1.
func uniformDelay(delay env.DelayFn, sender, n int) (int, bool) {
	d0 := -1
	for r := 0; r < n; r++ {
		if r == sender {
			continue
		}
		d := delay(sender, r)
		if d0 < 0 {
			d0 = d
			continue
		}
		if d != d0 {
			return 0, false
		}
	}
	return d0, true
}

// envelopeBytes is the canonical-encoding size of one envelope: 8 bytes of
// round number plus each payload's canonical key length. Payloads that
// implement giraf.PayloadSizer (all the core algorithms') report the
// cached size directly instead of materializing the key string.
func envelopeBytes(env giraf.Envelope) int {
	total := 8 // round number
	for _, p := range env.Payloads {
		if s, ok := p.(giraf.PayloadSizer); ok {
			total += s.PayloadEncodedSize()
		} else {
			total += len(p.PayloadKey())
		}
	}
	return total
}

// Run is a convenience wrapper: build an engine and run it.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation between global steps.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}
