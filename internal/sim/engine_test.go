package sim

import (
	"context"
	"errors"
	"testing"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// floodPayload is a value set payload for engine tests.
type floodPayload struct{ s values.Set }

func (p floodPayload) PayloadKey() string { return p.s.Key() }

// floodAutomaton gossips the union of everything it has seen and decides
// once it has seen `quorum` distinct values (or never, when quorum is 0).
type floodAutomaton struct {
	v      values.Value
	quorum int
	seen   values.Set
}

func newFlood(v values.Value, quorum int) *floodAutomaton {
	return &floodAutomaton{v: v, quorum: quorum, seen: values.NewSet(v)}
}

func (a *floodAutomaton) Initialize() giraf.Payload {
	return floodPayload{values.NewSet(a.v)}
}

func (a *floodAutomaton) Compute(k int, in giraf.Inbox) (giraf.Payload, giraf.Decision) {
	for _, p := range in.Round(k) {
		a.seen.AddAll(p.(floodPayload).s)
	}
	if a.quorum > 0 && a.seen.Len() >= a.quorum {
		max, _ := a.seen.Max()
		return nil, giraf.Decision{Decided: true, Value: max}
	}
	return floodPayload{a.seen.Clone()}, giraf.Decision{}
}

func floodFactory(quorum int) func(i int) giraf.Automaton {
	return func(i int) giraf.Automaton { return newFlood(values.Num(int64(i)), quorum) }
}

func TestConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{N: 3, Automaton: floodFactory(3), Policy: Synchronous{}, MaxRounds: 10}
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero N", func(c *Config) { c.N = 0 }},
		{"nil automaton", func(c *Config) { c.Automaton = nil }},
		{"nil policy", func(c *Config) { c.Policy = nil }},
		{"zero MaxRounds", func(c *Config) { c.MaxRounds = 0 }},
		{"crash pid out of range", func(c *Config) { c.Crashes = map[int]int{7: 1} }},
		{"negative crash step", func(c *Config) { c.Crashes = map[int]int{0: -1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("New must reject invalid config")
			}
		})
	}
	if _, err := New(base()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSynchronousFloodDecides(t *testing.T) {
	res, err := Run(Config{
		N:         4,
		Automaton: floodFactory(4),
		Policy:    Synchronous{},
		MaxRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCorrectDecided() {
		t.Fatal("all processes must decide under full synchrony")
	}
	// With delay 0 everywhere, everybody has everything by round 2:
	// round 1 sees own + all initial payloads, but sets differ per process
	// only in ordering — all 4 values are present already in round 1.
	if got := res.FirstDecisionRound(); got != 1 {
		t.Errorf("first decision at round %d, want 1", got)
	}
	if err := res.CheckAgreement(); err != nil {
		t.Error(err)
	}
}

func TestCrashedProcessStopsParticipating(t *testing.T) {
	res, err := Run(Config{
		N:         4,
		Automaton: floodFactory(0), // never decides; we inspect rounds only
		Policy:    Synchronous{},
		Crashes:   map[int]int{2: 3},
		MaxRounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Statuses[2]
	if !st.Crashed || st.CrashedAt != 3 {
		t.Fatalf("status[2] = %+v, want crash at 3", st)
	}
	// It executed end-of-round at steps 0,1,2 → reached round 3.
	if st.LastRound != 3 {
		t.Errorf("LastRound = %d, want 3", st.LastRound)
	}
	for i, s := range res.Statuses {
		if i != 2 && s.Crashed {
			t.Errorf("process %d wrongly marked crashed", i)
		}
	}
}

func TestCrashAtStepZeroNeverInitializes(t *testing.T) {
	res, err := Run(Config{
		N:         3,
		Automaton: floodFactory(3), // quorum 3 unreachable: only 2 values circulate
		Policy:    Synchronous{},
		Crashes:   map[int]int{0: 0},
		MaxRounds: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Statuses[0].LastRound != 0 {
		t.Errorf("crashed-at-0 process reached round %d", res.Statuses[0].LastRound)
	}
	for i := 1; i < 3; i++ {
		if res.Statuses[i].Decided {
			t.Errorf("process %d decided despite missing value", i)
		}
	}
}

func TestDelayedDeliveryArrivesLate(t *testing.T) {
	// Isolate process 0 in both directions for rounds 1–3 (all its links
	// 2 rounds late), then let everything be timely: its value is invisible
	// early but spreads once links recover. The reverse delays keep process
	// 0 undecided (it would otherwise decide in round 1 and halt before its
	// value was ever delivered timely).
	pol := &Scripted{Delays: map[int]map[int]map[int]int{}, Default: 0}
	for r := 1; r <= 3; r++ {
		pol.Delays[r] = map[int]map[int]int{
			0: {1: 2, 2: 2},
			1: {0: 2},
			2: {0: 2},
		}
	}
	res, err := Run(Config{
		N:         3,
		Automaton: floodFactory(3),
		Policy:    pol,
		MaxRounds: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllCorrectDecided() {
		t.Fatal("once links recover everybody must decide")
	}
	// Processes 1 and 2 cannot have seen value 0 before round 4.
	for i := 1; i <= 2; i++ {
		if st := res.Statuses[i]; st.DecidedAt < 4 {
			t.Errorf("process %d decided at %d, impossible before round 4", i, st.DecidedAt)
		}
	}
}

func TestPermanentlyLatePayloadsAreInvisibleToRoundReads(t *testing.T) {
	// A sender whose envelopes are always one round late never contributes
	// to anyone's round-k inbox at compute time: a round-reading automaton
	// never learns its value (GIRAF semantics; Algorithm 4 instead reads
	// Fresh() across rounds precisely to catch such stragglers).
	pol := &Scripted{Delays: map[int]map[int]map[int]int{}, Default: 0}
	for r := 1; r <= 12; r++ {
		pol.Delays[r] = map[int]map[int]int{0: {1: 1, 2: 1}}
	}
	res, err := Run(Config{
		N:         3,
		Automaton: floodFactory(3),
		Policy:    pol,
		MaxRounds: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if res.Statuses[i].Decided {
			t.Errorf("process %d saw a permanently-late value", i)
		}
	}
}

func TestMetricsCounting(t *testing.T) {
	res, err := Run(Config{
		N:         3,
		Automaton: floodFactory(0),
		Policy:    Synchronous{},
		MaxRounds: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Steps 0..4 each have 3 broadcasts → 15, but the engine stops after
	// MaxRounds steps; step 4's envelopes may exceed; just sanity-check.
	if res.Metrics.Broadcasts == 0 || res.Metrics.Deliveries == 0 {
		t.Error("metrics must count broadcasts and deliveries")
	}
	if res.Metrics.PayloadBytes <= 0 || res.Metrics.MaxEnvelopeBytes <= 0 {
		t.Error("metrics must account payload bytes")
	}
}

func TestOnRoundHook(t *testing.T) {
	var rounds []int
	_, err := Run(Config{
		N:         2,
		Automaton: floodFactory(0),
		Policy:    Synchronous{},
		MaxRounds: 3,
		OnRound:   func(r int, e *Engine) { rounds = append(rounds, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 || rounds[0] != 1 || rounds[2] != 3 {
		t.Errorf("hook rounds = %v, want [1 2 3]", rounds)
	}
}

func TestDeterminismSameSeedSameResult(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{
			N:         5,
			Automaton: floodFactory(5),
			Policy:    &MS{Seed: 42, MaxDelay: 2},
			MaxRounds: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.FirstDecisionRound() != b.FirstDecisionRound() {
		t.Error("same seed must reproduce the same run")
	}
	if a.Metrics != b.Metrics {
		t.Errorf("metrics differ: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestResultAccessorsAndChecks(t *testing.T) {
	res, err := Run(Config{
		N:           3,
		Automaton:   floodFactory(3),
		Policy:      Synchronous{},
		MaxRounds:   10,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDecisionRound() == 0 || res.LastDecisionRound() < res.FirstDecisionRound() {
		t.Errorf("decision rounds: first=%d last=%d", res.FirstDecisionRound(), res.LastDecisionRound())
	}
	if err := res.CheckAgreement(); err != nil {
		t.Error(err)
	}
	props := values.NewSet(values.Num(0), values.Num(1), values.Num(2))
	if err := res.CheckValidity(props); err != nil {
		t.Error(err)
	}
	if err := res.CheckValidity(values.NewSet(values.Num(99))); err == nil {
		t.Error("CheckValidity must flag foreign decisions")
	}
}

func TestEngineAccessors(t *testing.T) {
	e, err := New(Config{N: 2, Automaton: floodFactory(0), Policy: Synchronous{}, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 2 || e.Proc(0) == nil || e.Automaton(1) == nil {
		t.Error("engine accessors broken")
	}
	e.Run()
}

func TestCompactInboxesKeepsMemoryFlat(t *testing.T) {
	runWith := func(compact bool) (maxRounds int, res *Result) {
		res, err := Run(Config{
			N:              3,
			Automaton:      floodFactory(0),
			Policy:         Synchronous{},
			MaxRounds:      40,
			CompactInboxes: compact,
			OnRound: func(r int, e *Engine) {
				for i := 0; i < e.N(); i++ {
					if got := e.Proc(i).InboxRounds(); got > maxRounds {
						maxRounds = got
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return maxRounds, res
	}
	uncompacted, _ := runWith(false)
	compacted, _ := runWith(true)
	if compacted >= uncompacted {
		t.Errorf("compaction ineffective: %d vs %d retained rounds", compacted, uncompacted)
	}
	// The OnRound sample runs before the step's compaction, so a process
	// briefly holds rounds s−1, s and s+1 (own next payload), plus one
	// early-delivered future round at most.
	if compacted > 4 {
		t.Errorf("compacted runs should retain ≤4 rounds, got %d", compacted)
	}
}

func TestCompactInboxesPreservesConsensusBehaviour(t *testing.T) {
	// The engines must produce identical decisions with and without
	// compaction for round-reading automata.
	run := func(compact bool) *Result {
		res, err := Run(Config{
			N:              4,
			Automaton:      floodFactory(4),
			Policy:         &MS{Seed: 5, MaxDelay: 2},
			MaxRounds:      60,
			CompactInboxes: compact,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	for i := range a.Statuses {
		if a.Statuses[i].Decided != b.Statuses[i].Decided ||
			a.Statuses[i].Decision != b.Statuses[i].Decision ||
			a.Statuses[i].DecidedAt != b.Statuses[i].DecidedAt {
			t.Fatalf("compaction changed behaviour: %+v vs %+v", a.Statuses[i], b.Statuses[i])
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{
		N:         3,
		Automaton: floodFactory(0), // never decides
		Policy:    Synchronous{},
		MaxRounds: 1_000_000,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}
