package sim

import "anonconsensus/internal/env"

// The environment model lives in internal/env (shared with the real-time
// backends); the names below are kept as aliases so existing construction
// sites — and the fixed-seed schedules they pin — keep working unchanged.
//
// Deprecated: new code should construct policies from internal/env
// directly; these aliases exist for compatibility and will not grow new
// environments.
type (
	// DelayFn maps a (sender, receiver) pair to a delivery delay in rounds.
	DelayFn = env.DelayFn
	// Policy is an environment: it decides, per round, how late each
	// envelope arrives.
	Policy = env.Policy
	// SourceReporter is implemented by policies that designate a per-round
	// source.
	SourceReporter = env.SourceReporter

	// Synchronous delivers everything timely.
	Synchronous = env.Synchronous
	// MS is the moving-source environment (§2.3).
	MS = env.MS
	// ES is the eventually-synchronous environment (§2.3).
	ES = env.ES
	// ESS is the eventual-stable-source environment (§2.3).
	ESS = env.ESS
	// Async provides no timeliness guarantee at all.
	Async = env.Async
	// AlternatingMS is the adversarial moving-source schedule (F3).
	AlternatingMS = env.AlternatingMS
	// Scripted replays an explicit delay schedule.
	Scripted = env.Scripted
)

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
