package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests over machine-generated schedules: every MS-family policy
// must produce runs that its own checker accepts, and the checkers must be
// consistent with each other (ES ⊆ ESS ⊆ MS as guarantees).

func tracedRun(t *testing.T, n, rounds int, pol Policy, crashes map[int]int) *Trace {
	t.Helper()
	res, err := Run(Config{
		N:           n,
		Automaton:   floodFactory(0),
		Policy:      pol,
		Crashes:     crashes,
		MaxRounds:   rounds,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestQuickMSPolicyAlwaysSatisfiesMS(t *testing.T) {
	f := func(seed uint32, nRaw, delayRaw, rotRaw, timelyRaw, crashRaw uint8) bool {
		n := 1 + int(nRaw%7)
		crashes := map[int]int{}
		if n > 1 {
			crashes[int(crashRaw)%n] = 1 + int(crashRaw%9)
		}
		tr := tracedRun(t, n, 25, &MS{
			Seed:           int64(seed),
			MaxDelay:       1 + int(delayRaw%5),
			RotationPeriod: int(rotRaw % 4),
			Shuffle:        seed%2 == 0,
			Alternate:      seed%7 == 0,
			ExtraTimelyPct: int(timelyRaw % 80),
		}, crashes)
		return tr.CheckMS() == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickESPolicyAlwaysSatisfiesES(t *testing.T) {
	f := func(seed uint32, nRaw, gstRaw uint8) bool {
		n := 1 + int(nRaw%6)
		gst := int(gstRaw % 16)
		tr := tracedRun(t, n, 30, &ES{GST: gst, Pre: MS{Seed: int64(seed)}}, nil)
		return tr.CheckES(gst) == nil
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickESSPolicyAlwaysSatisfiesESS(t *testing.T) {
	f := func(seed uint32, nRaw, gstRaw, postRaw uint8) bool {
		n := 1 + int(nRaw%6)
		gst := int(gstRaw % 16)
		src := int(seed) % n
		tr := tracedRun(t, n, 30, &ESS{
			GST:           gst,
			StableSource:  src,
			Pre:           MS{Seed: int64(seed)},
			PostTimelyPct: int(postRaw % 70),
		}, nil)
		return tr.CheckESS(gst, src) == nil
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCheckerHierarchy(t *testing.T) {
	// ES from round g implies ESS(g, s) for every sender s, implies MS.
	f := func(seed uint32, nRaw, gstRaw uint8) bool {
		n := 2 + int(nRaw%4)
		gst := int(gstRaw % 10)
		tr := tracedRun(t, n, 25, &ES{GST: gst, Pre: MS{Seed: int64(seed)}}, nil)
		if tr.CheckES(gst) != nil {
			return false
		}
		if tr.CheckMS() != nil {
			return false
		}
		for s := 0; s < n; s++ {
			if tr.CheckESS(gst, s) != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(24))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSynchronousAlwaysEverything(t *testing.T) {
	f := func(nRaw, crashRaw uint8) bool {
		n := 1 + int(nRaw%8)
		crashes := map[int]int{}
		if n > 2 {
			crashes[int(crashRaw)%n] = 1 + int(crashRaw%5)
		}
		tr := tracedRun(t, n, 15, Synchronous{}, crashes)
		if tr.CheckMS() != nil || tr.CheckES(1) != nil {
			return false
		}
		// Every non-crashed process is a stable source under synchrony.
		for s := 0; s < n; s++ {
			if _, crashed := crashes[s]; crashed {
				continue
			}
			if tr.CheckESS(1, s) != nil {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(25))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
