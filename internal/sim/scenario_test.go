package sim

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"anonconsensus/internal/env"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// esAutomaton builds Algorithm-2-shaped test automata without importing
// internal/core (which would cycle): a tiny echo automaton is not enough
// for these tests, so they use the real behavior indirectly through the
// core-level tests; here we exercise the engine mechanics with a counting
// automaton and reserve algorithm-level properties for scenario tests in
// the root package. The counting automaton broadcasts its id-value set and
// never decides, making delivery accounting exact.
type countingAut struct {
	val   values.Value
	got   map[int]int // round → payload count seen at compute time
	limit int
}

type countPayload struct{ v values.Value }

func (p countPayload) PayloadKey() string { return "c:" + string(p.v) }

func (a *countingAut) Initialize() giraf.Payload { return countPayload{a.val} }

func (a *countingAut) Compute(k int, inbox giraf.Inbox) (giraf.Payload, giraf.Decision) {
	if a.got == nil {
		a.got = make(map[int]int)
	}
	a.got[k] = len(inbox.Round(k))
	if k >= a.limit {
		return nil, giraf.Decision{Decided: true, Value: a.val}
	}
	return countPayload{a.val}, giraf.Decision{}
}

func countingConfig(n, rounds int, sc *env.Scenario) Config {
	return Config{
		N: n,
		Automaton: func(i int) giraf.Automaton {
			return &countingAut{val: values.Num(int64(i)), limit: rounds}
		},
		Policy:    Synchronous{},
		Scenario:  sc,
		MaxRounds: rounds + 5,
	}
}

func TestScenarioLossDropsDeliveries(t *testing.T) {
	// 100% loss: nobody ever sees a foreign payload; every inbox holds
	// exactly the process's own entry and every scheduled delivery is
	// counted as dropped.
	res, err := Run(countingConfig(3, 6, &env.Scenario{Seed: 1, LossPct: 100}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Deliveries != 0 {
		t.Errorf("Deliveries = %d, want 0 under total loss", res.Metrics.Deliveries)
	}
	if res.Metrics.Dropped == 0 {
		t.Error("Dropped = 0, want every delivery dropped")
	}
	if res.Metrics.Duplicated != 0 {
		t.Errorf("Duplicated = %d without a dup rate", res.Metrics.Duplicated)
	}
}

func TestScenarioDuplicationIsDedupedAndBehaviorPreserving(t *testing.T) {
	// Duplicates are real extra deliveries, but inbox set semantics make
	// them invisible to the automaton: payload counts per round match the
	// fault-free run exactly.
	plain, err := Run(countingConfig(4, 8, nil))
	if err != nil {
		t.Fatal(err)
	}
	duped, err := Run(countingConfig(4, 8, &env.Scenario{Seed: 5, DupPct: 100}))
	if err != nil {
		t.Fatal(err)
	}
	if duped.Metrics.Duplicated == 0 {
		t.Fatal("Duplicated = 0 at DupPct 100")
	}
	if duped.Metrics.Deliveries <= plain.Metrics.Deliveries {
		t.Errorf("duplication did not add deliveries: %d vs %d",
			duped.Metrics.Deliveries, plain.Metrics.Deliveries)
	}
	if len(plain.Statuses) != len(duped.Statuses) {
		t.Fatal("status length mismatch")
	}
	for i := range plain.Statuses {
		if plain.Statuses[i] != duped.Statuses[i] {
			t.Errorf("proc %d diverged under duplication: %+v vs %+v",
				i, plain.Statuses[i], duped.Statuses[i])
		}
	}
}

func TestScenarioPartitionCutsExactlyTheCrossLinks(t *testing.T) {
	// Partition [2,4) with cut 2 over n=4: rounds 2 and 3 deliver only
	// within blocks {0,1} and {2,3}; other rounds deliver everything.
	sc := &env.Scenario{Partitions: []env.Partition{{From: 2, Until: 4, Cut: 2}}}
	auts := make([]*countingAut, 4)
	cfg := countingConfig(4, 8, sc)
	cfg.Automaton = func(i int) giraf.Automaton {
		auts[i] = &countingAut{val: values.Num(int64(i)), limit: 8}
		return auts[i]
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for i, a := range auts {
		for k := 1; k <= 6; k++ {
			want := 4 // everyone, all values distinct
			if k == 2 || k == 3 {
				want = 2 // own block only
			}
			if got := a.got[k]; got != want {
				t.Errorf("proc %d round %d saw %d payloads, want %d", i, k, got, want)
			}
		}
	}
}

func TestScenarioCrashScheduleMergedWithConfigCrashes(t *testing.T) {
	// A crash listed only in the scenario behaves exactly like one in
	// Config.Crashes, and the earlier of the two wins.
	cfg := countingConfig(3, 10, &env.Scenario{Crashes: map[int]int{1: 2, 2: 9}})
	cfg.Crashes = map[int]int{2: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Statuses[1].Crashed || res.Statuses[1].CrashedAt != 2 {
		t.Errorf("proc 1: %+v, want crashed at 2 (scenario schedule)", res.Statuses[1])
	}
	if !res.Statuses[2].Crashed || res.Statuses[2].CrashedAt != 4 {
		t.Errorf("proc 2: %+v, want crashed at 4 (earlier of 4 and 9)", res.Statuses[2])
	}
	if res.Statuses[0].Crashed {
		t.Error("proc 0 must not crash")
	}
}

func TestScenarioConfigValidation(t *testing.T) {
	bad := []*env.Scenario{
		{LossPct: 101},
		{Partitions: []env.Partition{{From: 0, Until: 3, Cut: 1}}},
		{Partitions: []env.Partition{{From: 1, Until: 0, Cut: 3}}}, // cut ≥ n
		{Crashes: map[int]int{5: 2}},                               // pid ≥ n
		{Crashes: map[int]int{0: 1, 1: 1, 2: 1}},                   // everyone
	}
	for i, sc := range bad {
		if _, err := New(countingConfig(3, 4, sc)); err == nil {
			t.Errorf("scenario %d accepted: %+v", i, sc)
		}
	}
}

// scenarioBatch builds a grid of scenario'd runs whose result dump must be
// byte-identical at any parallelism.
func scenarioBatch(n int) []Config {
	var cfgs []Config
	for seed := int64(0); seed < 12; seed++ {
		sc := &env.Scenario{Seed: seed, LossPct: int(seed%4) * 10, DupPct: int(seed%3) * 15}
		if seed%2 == 0 {
			sc.Partitions = []env.Partition{{From: 2, Until: 5 + int(seed), Cut: 1 + int(seed)%(n-1)}}
		}
		cfgs = append(cfgs, countingConfig(n, 10, sc))
	}
	return cfgs
}

func dumpResults(results []*Result) string {
	var b strings.Builder
	for i, r := range results {
		fmt.Fprintf(&b, "run %d: rounds=%d bcast=%d deliv=%d dropped=%d dup=%d\n",
			i, r.Rounds, r.Metrics.Broadcasts, r.Metrics.Deliveries,
			r.Metrics.Dropped, r.Metrics.Duplicated)
		for p, st := range r.Statuses {
			fmt.Fprintf(&b, "  p%d decided=%v val=%q at=%d\n", p, st.Decided, string(st.Decision), st.DecidedAt)
		}
	}
	return b.String()
}

func TestScenarioBatchByteIdenticalAcrossParallelism(t *testing.T) {
	render := func(par int) string {
		results, err := RunBatch(context.Background(), scenarioBatch(5), BatchOpts{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return dumpResults(results)
	}
	want := render(1)
	if !strings.Contains(want, "dropped=") {
		t.Fatal("dump looks empty")
	}
	for _, par := range []int{4, runtime.NumCPU()} {
		if got := render(par); got != want {
			t.Errorf("scenario batch diverged between parallelism 1 and %d", par)
		}
	}
}
