package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"anonconsensus/internal/env"
)

// TestDeliverShardingByteIdentical pins the intra-run parallelism
// guarantee the same way the batch plane's tables are pinned: one config
// run with DeliverWorkers 1, 4 and NumCPU must produce deeply identical
// Results — statuses, rounds and every metric counter. n is chosen large
// enough that a step's expanded delivery work clears shardMinWork, so the
// parallel settings genuinely take the sharded path.
func TestDeliverShardingByteIdentical(t *testing.T) {
	const n = 48
	configs := map[string]func(workers int) Config{
		"sync flood": func(w int) Config {
			return Config{
				N: n, Automaton: floodFactory(n), Policy: Synchronous{},
				MaxRounds: 4 * n, DeliverWorkers: w,
			}
		},
		"MS flood with crashes": func(w int) Config {
			return Config{
				N: n, Automaton: floodFactory(n - 2), Policy: &MS{Seed: 11, MaxDelay: 3},
				Crashes:   map[int]int{3: 2, 17: 5},
				MaxRounds: 4 * n, DeliverWorkers: w,
			}
		},
		"async lossy duplicating": func(w int) Config {
			return Config{
				N: n, Automaton: floodFactory(0), Policy: &Async{Seed: 7, MaxDelay: 2},
				Scenario:  &env.Scenario{Seed: 3, LossPct: 15, DupPct: 20},
				MaxRounds: 30, DeliverWorkers: w,
			}
		},
	}
	for name, mk := range configs {
		t.Run(name, func(t *testing.T) {
			base, err := Run(mk(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{4, runtime.NumCPU()} {
				got, err := Run(mk(workers))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("workers=%d: result differs from sequential run\n seq: %+v\n got: %+v",
						workers, base, got)
				}
			}
		})
	}
}

// TestDeliverWorkersValidation pins rejection of negative worker counts.
func TestDeliverWorkersValidation(t *testing.T) {
	_, err := New(Config{
		N: 2, Automaton: floodFactory(2), Policy: Synchronous{},
		MaxRounds: 5, DeliverWorkers: -1,
	})
	if err == nil {
		t.Fatal("New must reject negative DeliverWorkers")
	}
}

// TestFanOutCollapsePreservesMetrics pins that the uniform-delay fan-out
// collapse (one ring entry per broadcast in scenario-free runs) is
// invisible in the metrics: per-receiver accounting must match a run in
// which collapsing is impossible because delays are non-uniform.
func TestFanOutCollapsePreservesMetrics(t *testing.T) {
	// Same flood workload under Synchronous (collapsible: all delays 0)
	// twice; the second run records a trace, which pins per-delivery
	// recording through the expansion path too.
	cfg := Config{N: 9, Automaton: floodFactory(9), Policy: Synchronous{}, MaxRounds: 40}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RecordTrace = true
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != traced.Metrics {
		t.Errorf("traced run metrics differ: %+v vs %+v", plain.Metrics, traced.Metrics)
	}
	// Every broadcast reaches all n-1 receivers under Synchronous with no
	// crashes, so the delivery count is exactly (n-1)·Broadcasts minus the
	// final round's envelopes (delivered at a step past the last executed
	// one, if the run ends by decision). At minimum the expansion must
	// deliver something every round.
	if plain.Metrics.Deliveries == 0 || plain.Metrics.Broadcasts == 0 {
		t.Fatalf("degenerate run: %+v", plain.Metrics)
	}
	// Synchronous is ES with GST 0: every delivery timely from round 1 on.
	if err := traced.Trace.CheckES(0); err != nil {
		t.Errorf("fan-out expansion broke the synchronous delivery pattern: %v", err)
	}
}

// TestShardWorkHeuristic exercises deliverWorkers' gating directly so the
// threshold arithmetic (fan-out entries count as n-1 units) stays honest.
func TestShardWorkHeuristic(t *testing.T) {
	e, err := New(Config{
		N: 64, Automaton: floodFactory(0), Policy: Synchronous{},
		MaxRounds: 5, DeliverWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tiny := make([]pendingDelivery, 3)
	for i := range tiny {
		tiny[i].receiver = i
	}
	if w := e.deliverWorkers(tiny); w != 1 {
		t.Errorf("3 per-receiver entries resolved to %d workers, want 1 (below shardMinWork)", w)
	}
	fan := []pendingDelivery{{receiver: fanOutAll, sender: 0}, {receiver: fanOutAll, sender: 1},
		{receiver: fanOutAll, sender: 2}, {receiver: fanOutAll, sender: 3}, {receiver: fanOutAll, sender: 4}}
	if w := e.deliverWorkers(fan); w != 4 {
		t.Errorf("5 fan-out entries at n=64 (%d units) resolved to %d workers, want 4", 5*63, w)
	}
}

func init() {
	// Guard against the heuristic silently changing under this test file:
	// the fan-out case above assumes 5·63 ≥ shardMinWork.
	if 5*63 < shardMinWork {
		panic(fmt.Sprintf("shard_test: fixture no longer clears shardMinWork=%d", shardMinWork))
	}
}
