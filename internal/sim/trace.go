package sim

import (
	"fmt"

	"anonconsensus/internal/ordered"
	"anonconsensus/internal/values"
)

// Trace records who computed which round and which deliveries were timely,
// in exactly the vocabulary of the paper's environment definitions (§2.3),
// so that a finished run can be checked against MS/ES/ESS independently of
// whatever the policy claimed to do.
type Trace struct {
	// N is the number of processes.
	N int
	// Rounds is the number of global steps executed.
	Rounds int

	// computed[r] is the set of processes that executed compute(r).
	computed map[int]map[int]bool
	// timely[r][sender] is the set of receivers that got sender's round-r
	// envelope within round r (delay 0). The sender itself is implicit: its
	// own payload is always in its own inbox.
	timely map[int]map[int]map[int]bool
	// senders[r] is the set of processes that broadcast a round-r envelope.
	senders map[int]map[int]bool
	// decisions[pid] is the step and value at which pid decided.
	decisions map[int]DecisionRecord
	// claimedSources[r] is the policy's self-reported source, if any.
	claimedSources map[int]int
}

// DecisionRecord is one traced decision event.
type DecisionRecord struct {
	// Step is the global step at which the process decided.
	Step int
	// Value is the decided value.
	Value values.Value
}

func newTrace(n int) *Trace {
	return &Trace{
		N:              n,
		computed:       make(map[int]map[int]bool),
		timely:         make(map[int]map[int]map[int]bool),
		senders:        make(map[int]map[int]bool),
		decisions:      make(map[int]DecisionRecord),
		claimedSources: make(map[int]int),
	}
}

func (t *Trace) recordComputed(pid, round int) {
	set := t.computed[round]
	if set == nil {
		set = make(map[int]bool)
		t.computed[round] = set
	}
	set[pid] = true
}

func (t *Trace) recordBroadcast(round, sender int) {
	snd := t.senders[round]
	if snd == nil {
		snd = make(map[int]bool)
		t.senders[round] = snd
	}
	snd[sender] = true
}

func (t *Trace) recordDelivery(round, sender, receiver, step int) {
	if step > round {
		return // late delivery: reliable but not timely
	}
	perRound := t.timely[round]
	if perRound == nil {
		perRound = make(map[int]map[int]bool)
		t.timely[round] = perRound
	}
	set := perRound[sender]
	if set == nil {
		set = make(map[int]bool)
		perRound[sender] = set
	}
	set[receiver] = true
}

func (t *Trace) recordDecision(pid, step int, v values.Value) {
	t.decisions[pid] = DecisionRecord{Step: step, Value: v}
}

// Decision returns the traced decision event of pid, if it decided.
func (t *Trace) Decision(pid int) (DecisionRecord, bool) {
	rec, ok := t.decisions[pid]
	return rec, ok
}

func (t *Trace) recordClaimedSource(round, pid int) { t.claimedSources[round] = pid }

// Computed returns the processes that executed compute(round), sorted.
func (t *Trace) Computed(round int) []int {
	return ordered.Keys(t.computed[round])
}

// ClaimedSource returns the policy-claimed source for a round.
func (t *Trace) ClaimedSource(round int) (int, bool) {
	pid, ok := t.claimedSources[round]
	return pid, ok
}

// TimelySources returns every sender whose round-`round` envelope reached
// all of the given receivers timely (the sender itself always counts as
// reached). This is the set of processes with a timely link in that round.
func (t *Trace) TimelySources(round int, receivers []int) []int {
	var out []int
	for _, sender := range ordered.Keys(t.senders[round]) {
		got := t.timely[round][sender]
		ok := true
		for _, r := range receivers {
			if r == sender {
				continue
			}
			if !got[r] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, sender)
		}
	}
	return out
}

// lastCheckableRound returns the last round r such that some process
// computed r: the final partially-executed round (payloads sent, nobody
// computed) carries no environment obligations.
func (t *Trace) lastCheckableRound() int {
	last := 0
	//detlint:ordered max over keys — the result is independent of visit order
	for r := range t.computed {
		if r > last {
			last = r
		}
	}
	return last
}

// CheckMS verifies the moving-source property on the recorded run: every
// round that anyone computed has at least one sender with a timely link to
// every process that computed the round.
func (t *Trace) CheckMS() error {
	return t.CheckMSThrough(t.lastCheckableRound())
}

// CheckMSThrough is CheckMS restricted to rounds 1..last: it verifies the
// moving-source property held for a prefix of the run. The exploration
// plane uses it to decide whether a run's decisions were cast inside the
// model — Agreement is only promised while MS holds, and rounds after the
// final decision cannot influence it, so a run whose source crashes or
// halts later stays checkable.
func (t *Trace) CheckMSThrough(last int) error {
	if max := t.lastCheckableRound(); last > max {
		last = max
	}
	for r := 1; r <= last; r++ {
		receivers := t.Computed(r)
		if len(receivers) == 0 {
			continue
		}
		if len(t.TimelySources(r, receivers)) == 0 {
			return fmt.Errorf("MS violated in round %d: no sender reached all of %v timely", r, receivers)
		}
	}
	return nil
}

// CheckES verifies the eventual-synchrony property: MS everywhere, plus
// from round gst on, every sender that is still broadcasting has a timely
// link to every process that computed the round.
func (t *Trace) CheckES(gst int) error {
	if err := t.CheckMS(); err != nil {
		return err
	}
	last := t.lastCheckableRound()
	for r := maxInt(gst, 1); r <= last; r++ {
		receivers := t.Computed(r)
		if len(receivers) == 0 {
			continue
		}
		timely := t.TimelySources(r, receivers)
		// Sorted view so a violation report names the smallest offending
		// sender, not a map-order-dependent one.
		for _, sender := range ordered.Keys(t.senders[r]) {
			if !contains(timely, sender) {
				return fmt.Errorf("ES violated in round %d (≥ GST %d): sender %d not timely to all of %v", r, gst, sender, receivers)
			}
		}
	}
	return nil
}

// CheckESS verifies the eventual-stable-source property: MS everywhere,
// plus from round gst on the same process source has a timely link in every
// round in which it still broadcasts. Rounds after the source stopped
// broadcasting (it decided or the run ended) carry no obligation for it but
// must still satisfy plain MS, which CheckMS covers.
func (t *Trace) CheckESS(gst, source int) error {
	if err := t.CheckMS(); err != nil {
		return err
	}
	last := t.lastCheckableRound()
	for r := maxInt(gst, 1); r <= last; r++ {
		if !t.senders[r][source] {
			continue
		}
		receivers := t.Computed(r)
		if len(receivers) == 0 {
			continue
		}
		if !contains(t.TimelySources(r, receivers), source) {
			return fmt.Errorf("ESS violated in round %d (≥ GST %d): stable source %d not timely to all of %v", r, gst, source, receivers)
		}
	}
	return nil
}

// CheckIrrevocability verifies that decisions are final, against the final
// statuses of the same run: every traced decision must match the process's
// final status (same value, same step, still decided), every finally-decided
// process must have a traced decision event, and no process may broadcast a
// later-round envelope after deciding (Algorithm 1: "decide v; halt" stops
// all further output). The framework enforces this structurally — a Proc
// halts on its first decision — so a failure here means the engine or an
// automaton wrapper broke the halt contract, which is exactly what the
// exploration plane wants to detect rather than assume.
func (t *Trace) CheckIrrevocability(statuses []ProcStatus) error {
	for pid, st := range statuses {
		rec, traced := t.decisions[pid]
		if !traced {
			if st.Decided {
				return fmt.Errorf("irrevocability violated: process %d finished decided on %v with no traced decision event", pid, st.Decision)
			}
			continue
		}
		switch {
		case !st.Decided:
			return fmt.Errorf("irrevocability violated: process %d decided %v at step %d but finished undecided", pid, rec.Value, rec.Step)
		case st.Decision != rec.Value:
			return fmt.Errorf("irrevocability violated: process %d decided %v at step %d but finished on %v", pid, rec.Value, rec.Step, st.Decision)
		case st.DecidedAt != rec.Step:
			return fmt.Errorf("irrevocability violated: process %d has decision steps %d (trace) vs %d (status)", pid, rec.Step, st.DecidedAt)
		}
		// Deciding at step s means the round-(s+1) envelope is never sent.
		// Report the earliest offending round so the message is a pure
		// function of the run (map order must not leak into reports).
		offending := 0
		//detlint:ordered min over keys — the earliest offending round is order-independent
		for r, snd := range t.senders {
			if r > rec.Step && snd[pid] && (offending == 0 || r < offending) {
				offending = r
			}
		}
		if offending > 0 {
			return fmt.Errorf("irrevocability violated: process %d broadcast a round-%d envelope after deciding at step %d", pid, offending, rec.Step)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
