package sim

import (
	"strings"
	"testing"
)

// runTraced runs the flood automaton (never deciding) under pol and returns
// the trace.
func runTraced(t *testing.T, n, rounds int, pol Policy, crashes map[int]int) *Trace {
	t.Helper()
	res, err := Run(Config{
		N:           n,
		Automaton:   floodFactory(0),
		Policy:      pol,
		Crashes:     crashes,
		MaxRounds:   rounds,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("trace missing")
	}
	return res.Trace
}

func TestSynchronousSatisfiesAllEnvironments(t *testing.T) {
	tr := runTraced(t, 4, 12, Synchronous{}, nil)
	if err := tr.CheckMS(); err != nil {
		t.Errorf("CheckMS: %v", err)
	}
	if err := tr.CheckES(1); err != nil {
		t.Errorf("CheckES: %v", err)
	}
	if err := tr.CheckESS(1, 0); err != nil {
		t.Errorf("CheckESS: %v", err)
	}
}

func TestMSPolicySatisfiesMS(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 99} {
		tr := runTraced(t, 5, 30, &MS{Seed: seed, MaxDelay: 4}, nil)
		if err := tr.CheckMS(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestMSPolicyWithShuffleSatisfiesMS(t *testing.T) {
	tr := runTraced(t, 6, 30, &MS{Seed: 7, Shuffle: true}, nil)
	if err := tr.CheckMS(); err != nil {
		t.Error(err)
	}
}

func TestMSPolicySurvivesCrashes(t *testing.T) {
	tr := runTraced(t, 5, 30, &MS{Seed: 5}, map[int]int{0: 4, 1: 9})
	if err := tr.CheckMS(); err != nil {
		t.Error(err)
	}
}

func TestMSPolicyIsNotES(t *testing.T) {
	// With non-source delays always ≥ 1 and several processes, pre-GST MS
	// chaos must violate the all-timely requirement of ES.
	tr := runTraced(t, 4, 30, &MS{Seed: 3}, nil)
	if err := tr.CheckES(1); err == nil {
		t.Error("MS run unexpectedly satisfies ES from round 1")
	}
}

func TestESPolicySatisfiesES(t *testing.T) {
	gst := 10
	tr := runTraced(t, 5, 30, &ES{GST: gst, Pre: MS{Seed: 11}}, nil)
	if err := tr.CheckES(gst); err != nil {
		t.Errorf("CheckES: %v", err)
	}
	if err := tr.CheckMS(); err != nil {
		t.Errorf("CheckMS: %v", err)
	}
}

func TestESSPolicySatisfiesESS(t *testing.T) {
	gst, src := 8, 2
	tr := runTraced(t, 5, 40, &ESS{GST: gst, StableSource: src, Pre: MS{Seed: 13}}, nil)
	if err := tr.CheckESS(gst, src); err != nil {
		t.Errorf("CheckESS: %v", err)
	}
}

func TestESSIsNotESWhenLinksStaySlow(t *testing.T) {
	tr := runTraced(t, 4, 40, &ESS{GST: 5, StableSource: 1, Pre: MS{Seed: 17}}, nil)
	if err := tr.CheckES(5); err == nil {
		t.Error("ESS run with slow non-source links unexpectedly satisfies ES")
	}
}

func TestAsyncWithMinDelayViolatesMS(t *testing.T) {
	tr := runTraced(t, 4, 20, &Async{Seed: 23, MinDelay: 1, MaxDelay: 3}, nil)
	err := tr.CheckMS()
	if err == nil {
		t.Fatal("async run with all-late deliveries must violate MS")
	}
	if !strings.Contains(err.Error(), "MS violated") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestAlternatingMSSatisfiesMS(t *testing.T) {
	tr := runTraced(t, 4, 40, &AlternatingMS{}, nil)
	if err := tr.CheckMS(); err != nil {
		t.Error(err)
	}
	// ...but not ES: the non-source half is always late.
	if err := tr.CheckES(1); err == nil {
		t.Error("alternating schedule unexpectedly satisfies ES")
	}
	// ...and not ESS for either alternating source.
	if tr.CheckESS(1, 0) == nil && tr.CheckESS(1, 3) == nil {
		t.Error("alternating schedule unexpectedly satisfies ESS")
	}
}

func TestScriptedViolationDetected(t *testing.T) {
	// Round 2: everybody's envelope late to somebody → no source → MS broken.
	pol := &Scripted{Default: 0, Delays: map[int]map[int]map[int]int{
		2: {
			0: {1: 1},
			1: {2: 1},
			2: {0: 1},
		},
	}}
	tr := runTraced(t, 3, 6, pol, nil)
	err := tr.CheckMS()
	if err == nil {
		t.Fatal("hand-built violation not detected")
	}
	if !strings.Contains(err.Error(), "round 2") {
		t.Errorf("violation should name round 2: %v", err)
	}
}

func TestClaimedSourceIsTimely(t *testing.T) {
	tr := runTraced(t, 5, 25, &MS{Seed: 31}, nil)
	for r := 1; r <= 20; r++ {
		src, ok := tr.ClaimedSource(r)
		if !ok {
			continue
		}
		receivers := tr.Computed(r)
		if len(receivers) == 0 {
			continue
		}
		if !contains(tr.TimelySources(r, receivers), src) {
			t.Errorf("round %d: claimed source %d not actually timely", r, src)
		}
	}
}

func TestTimelySourcesSenderCountsItself(t *testing.T) {
	// n=1: the only process is trivially a source every round.
	tr := runTraced(t, 1, 5, &MS{Seed: 1}, nil)
	if err := tr.CheckMS(); err != nil {
		t.Errorf("single-process run must satisfy MS: %v", err)
	}
}

func TestCheckIrrevocabilityCleanRun(t *testing.T) {
	// A real consensus run: traced decisions must reconcile with the final
	// statuses and no process may broadcast after halting.
	res, err := Run(Config{
		N:           3,
		Automaton:   floodFactory(3),
		Policy:      Synchronous{},
		MaxRounds:   10,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckIrrevocability(res.Statuses); err != nil {
		t.Errorf("clean run flagged: %v", err)
	}
	if rec, ok := res.Trace.Decision(0); !ok || rec.Step != res.Statuses[0].DecidedAt || rec.Value != res.Statuses[0].Decision {
		t.Errorf("traced decision %+v disagrees with status %+v", rec, res.Statuses[0])
	}
}

func TestCheckIrrevocabilityUndecidedRun(t *testing.T) {
	tr := runTraced(t, 3, 8, Synchronous{}, nil)
	statuses := make([]ProcStatus, 3)
	if err := tr.CheckIrrevocability(statuses); err != nil {
		t.Errorf("undecided run flagged: %v", err)
	}
}

func TestCheckIrrevocabilityDetectsBreaches(t *testing.T) {
	// Fabricate traces that break the halt contract in each detectable way.
	decided := []ProcStatus{{Decided: true, Decision: "v", DecidedAt: 2}}
	undecided := []ProcStatus{{}}

	fresh := func() *Trace { return newTrace(1) }

	t.Run("missing trace event", func(t *testing.T) {
		if err := fresh().CheckIrrevocability(decided); err == nil {
			t.Error("decided status without traced decision passed")
		}
	})
	t.Run("finished undecided", func(t *testing.T) {
		tr := fresh()
		tr.recordDecision(0, 2, "v")
		if err := tr.CheckIrrevocability(undecided); err == nil {
			t.Error("traced decision with undecided status passed")
		}
	})
	t.Run("value changed", func(t *testing.T) {
		tr := fresh()
		tr.recordDecision(0, 2, "other")
		if err := tr.CheckIrrevocability(decided); err == nil {
			t.Error("decision value change passed")
		}
	})
	t.Run("step changed", func(t *testing.T) {
		tr := fresh()
		tr.recordDecision(0, 3, "v")
		if err := tr.CheckIrrevocability(decided); err == nil {
			t.Error("decision step change passed")
		}
	})
	t.Run("broadcast after halt", func(t *testing.T) {
		tr := fresh()
		tr.recordDecision(0, 2, "v")
		tr.recordBroadcast(4, 0)
		if err := tr.CheckIrrevocability(decided); err == nil {
			t.Error("post-halt broadcast passed")
		}
	})
	t.Run("all consistent", func(t *testing.T) {
		tr := fresh()
		tr.recordDecision(0, 2, "v")
		tr.recordBroadcast(2, 0)
		if err := tr.CheckIrrevocability(decided); err != nil {
			t.Errorf("consistent history flagged: %v", err)
		}
	})
}
