package tcpnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/wire"
)

// MuxNode is a persistent hub attachment that multiplexes many consensus
// instances over ONE TCP connection and ONE resumable hub session. Each
// in-flight instance is a registered epoch: outbound frames are
// epoch-tagged (0xD6; see internal/wire), a single reader goroutine
// demultiplexes inbound frames into per-epoch inboxes, and the delta
// plane is a per-epoch family — one DeltaTracker per epoch on the
// uplink, one ResolveTable per epoch on the downlink — so streams of
// different instances never resolve against each other.
//
// Connection losses are survived with the same resumable-session
// machinery as RunNode: the node redials with the configured backoff,
// resumes its session by token, and the hub replays the frames it
// missed (epoch tags included, so replay demultiplexes like live
// traffic). Every delta tracker resets on reconnect — frames in flight
// at the loss may never have reached the hub, and a delta reference must
// only point at the previous frame of its own stream.
//
// A MuxNode whose reconnect budget is exhausted is dead: RunInstance
// calls return an error wrapping ErrHubLost, which callers treat as a
// crash of this node (for every epoch it carried), not of the hub.
type MuxNode struct {
	cfg MuxConfig

	mu     sync.Mutex
	epochs map[uint64]*muxEpoch
	stats  MuxStats
	closed bool

	// writeMu serializes uplink writers (RunInstance goroutines) and
	// guards the connection/tracker swap on reconnect.
	writeMu  sync.Mutex
	conn     net.Conn
	trackers map[uint64]*giraf.DeltaTracker

	token  uint64 // hub session token (reader-owned after DialMux)
	cursor uint64 // data frames received on the session (reader-owned)

	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	stop       chan struct{}
	dead       chan struct{} // closed once the session is permanently lost
	deadErr    error         // set before dead closes
	readerDone chan struct{}
}

// muxEpoch is one registered instance stream: its demux inbox and the
// resolve side of its delta family. The table is touched only by the
// reader goroutine.
type muxEpoch struct {
	inbox chan giraf.Envelope
	table *giraf.ResolveTable
}

// MuxConfig configures a MuxNode.
type MuxConfig struct {
	// HubAddr is the hub's TCP address.
	HubAddr string
	// DialTimeout bounds each dial + handshake; defaults to 5s.
	DialTimeout time.Duration
	// Reconnect governs recovery from a lost hub connection; the zero
	// policy fails fast (the first loss kills every epoch).
	Reconnect ReconnectPolicy
	// InboxDepth is each epoch's demux buffer; defaults to 1024. A full
	// inbox drops the frame (counted in MuxStats.InboxDrops) — safe, as
	// the model already allows asynchronous rounds, and the next
	// broadcast carries the sender's cumulative state anyway.
	InboxDepth int
}

// MuxStats counts a MuxNode's robustness events, cumulative since
// DialMux.
type MuxStats struct {
	// Reconnects / ReplayedFrames / FailedDials / HeartbeatsAcked mirror
	// NodeResult's session-resumption counters for the shared connection.
	Reconnects      int
	ReplayedFrames  int
	FailedDials     int
	HeartbeatsAcked int
	// UnknownEpochFrames counts inbound frames tagged with an epoch this
	// node has no registration for (a peer's straggler after local
	// Unregister, or traffic for an instance this node never joined).
	UnknownEpochFrames int
	// InboxDrops counts frames discarded because their epoch's inbox was
	// full.
	InboxDrops int
}

// DialMux attaches to the hub and starts the demultiplexing reader. The
// returned node is ready for Register/RunInstance; Close detaches.
func DialMux(ctx context.Context, cfg MuxConfig) (*MuxNode, error) {
	if cfg.HubAddr == "" {
		return nil, errors.New("tcpnet: mux: empty hub address")
	}
	conn, welcome, err := dialHub(ctx, cfg.HubAddr, cfg.DialTimeout, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: mux: dialing hub: %w", err)
	}
	m := &MuxNode{
		cfg:        cfg,
		epochs:     make(map[uint64]*muxEpoch),
		trackers:   make(map[uint64]*giraf.DeltaTracker),
		conn:       conn,
		token:      welcome.Token,
		cursor:     welcome.ResumeFrom,
		stop:       make(chan struct{}),
		dead:       make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	m.lifeCtx, m.lifeCancel = context.WithCancel(context.Background())
	//detlint:goroutine the reader lives exactly as long as the MuxNode: Close joins it via readerDone
	go m.readerLoop(conn)
	return m, nil
}

// Register opens an instance epoch (≥ 1) on this node: inbound frames
// tagged with it will demultiplex into the epoch's inbox. Register every
// participating node's epoch before starting any of the instance's
// automata — frames for unregistered epochs are dropped, which is legal
// (asynchrony) but wasteful.
func (m *MuxNode) Register(epoch uint64) error {
	if epoch == 0 {
		return errors.New("tcpnet: mux: epoch 0 is the unmultiplexed plane; epochs start at 1")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("tcpnet: mux: node is closed")
	}
	if _, dup := m.epochs[epoch]; dup {
		return fmt.Errorf("tcpnet: mux: epoch %d already registered", epoch)
	}
	depth := m.cfg.InboxDepth
	if depth <= 0 {
		depth = 1024
	}
	m.epochs[epoch] = &muxEpoch{
		inbox: make(chan giraf.Envelope, depth),
		table: giraf.NewResolveTable(),
	}
	return nil
}

// Unregister closes an instance epoch: its inbox and resolve table are
// released, and further frames for it count as unknown. Idempotent.
func (m *MuxNode) Unregister(epoch uint64) {
	m.mu.Lock()
	delete(m.epochs, epoch)
	m.mu.Unlock()
	m.writeMu.Lock()
	delete(m.trackers, epoch)
	m.writeMu.Unlock()
}

// InstanceRun drives one instance over a registered epoch.
type InstanceRun struct {
	// Automaton is the GIRAF automaton to run.
	Automaton giraf.Automaton
	// Interval is the local round-timer period; defaults to 10ms.
	Interval time.Duration
	// Timeout bounds the run; defaults to 30s.
	Timeout time.Duration
	// JoinGrace delays the first end-of-round so replayed/early traffic
	// is consumed first; defaults to 3×Interval (see NodeConfig).
	JoinGrace time.Duration
	// CrashAfterRounds stops the node after that many end-of-rounds
	// (simulated crash). Zero means never.
	CrashAfterRounds int
	// Peers is the instance's process count n. When set (> 1), rounds
	// after the first are paced to peer traffic: a timer beat only
	// executes a round once ~n−1 envelopes arrived since the previous
	// round (each peer broadcasts once per round), with a maxQuietBeats
	// escape so crashed or halted peers cannot stall a survivor forever.
	// Zero or one keeps the minimal gate (any one envelope).
	Peers int
}

// maxQuietBeats bounds the round-pacing gate in RunInstance: after this
// many consecutive timer beats below the inbound-envelope threshold, a
// round runs anyway. It trades sole-survivor latency (each round then
// takes this many beats) for a much wider starvation window before a
// loaded box could let ES decide against a stale or solo view — see the
// pacing comment in RunInstance.
const maxQuietBeats = 8

// RunInstance drives cfg.Automaton on the given registered epoch until
// it decides, the timeout expires, or the shared session is lost
// (ErrHubLost). Many RunInstance calls proceed concurrently on one
// MuxNode, one per epoch; all of them share the node's single hub
// connection.
func (m *MuxNode) RunInstance(ctx context.Context, epoch uint64, cfg InstanceRun) (*NodeResult, error) {
	if cfg.Automaton == nil {
		return nil, errors.New("tcpnet: nil automaton")
	}
	m.mu.Lock()
	ep := m.epochs[epoch]
	m.mu.Unlock()
	if ep == nil {
		return nil, fmt.Errorf("tcpnet: mux: epoch %d not registered", epoch)
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	proc := giraf.NewProc(cfg.Automaton)
	res := &NodeResult{}
	grace := cfg.JoinGrace
	if grace <= 0 {
		grace = 3 * interval
	}
	graceOver := time.After(grace)
	started := false
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	// Round pacing: on a multi-tenant box dozens of instances share the
	// scheduler, and wall-clock rounds outpacing delivery violates the ES
	// premise the automatons' safety rests on — a process that runs two
	// beats while a peer's frames are in flight can satisfy the decide
	// guard prematurely, or let a decided subset leave a straggler locked
	// on a stale value. The hub never echoes a sender's own frames, so
	// inbound envelopes are a true peer-traffic signal: a beat only
	// executes a round once roughly one envelope per peer arrived since
	// the previous round (each peer broadcasts once per round), with a
	// bounded silent-beat escape (maxQuietBeats) so crashed or halted
	// peers cannot stall a survivor forever. Round 1 is exempt (inbound
	// starts satisfied): nobody has broadcast yet, and the decide guards
	// cannot fire against an empty WRITTENOLD.
	need := cfg.Peers - 1
	if need < 1 {
		need = 1
	}
	inbound := need // satisfied: round 1 fires on the first beat
	quiet := 0
	for {
		select {
		case <-ctx.Done():
			res.Rounds = proc.CurrentRound()
			return res, nil
		case <-m.dead:
			res.Rounds = proc.CurrentRound()
			return res, m.deadErr
		case env := <-ep.inbox:
			proc.Receive(env)
			inbound++
		case <-graceOver:
			started = true
		case <-ticker.C:
			if !started {
				continue // still consuming replayed / early traffic
			}
			if !m.attached() {
				// The shared connection is down and the reader is
				// redialing. Do not execute rounds solo: a node that
				// hears only itself cannot distinguish "alone" from
				// "cut off", and deciding on that view would break
				// agreement. RunNode gets this for free by blocking in
				// lose(); the mux equivalent is skipping beats.
				continue
			}
			if inbound < need {
				if quiet++; quiet < maxQuietBeats {
					continue // pace rounds to peer traffic (see above)
				}
			}
			inbound = 0
			quiet = 0
			if cfg.CrashAfterRounds > 0 && proc.CurrentRound() >= cfg.CrashAfterRounds {
				res.Crashed = true
				res.Rounds = proc.CurrentRound()
				return res, nil
			}
			computing := proc.CurrentRound()
			env, ok := proc.EndOfRound()
			if proc.Halted() {
				d := proc.Decision()
				res.Decided = true
				res.Decision = d.Value
				res.Round = computing
				res.Rounds = proc.CurrentRound()
				return res, nil
			}
			if !ok {
				continue
			}
			// A failed send means the connection is churning; the reader
			// reconnects (or declares the node dead, which the m.dead arm
			// notices). The lost broadcast costs an asynchronous round —
			// the next one re-carries the cumulative state in full,
			// because send dropped this epoch's tracker.
			_ = m.send(epoch, env)
		}
	}
}

// send delta-compresses env against its epoch's uplink stream and writes
// one epoch-tagged frame to the shared connection.
func (m *MuxNode) send(epoch uint64, env giraf.Envelope) error {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if m.conn == nil {
		return ErrHubLost
	}
	tr := m.trackers[epoch]
	if tr == nil {
		tr = giraf.NewDeltaTracker()
		m.trackers[epoch] = tr
	}
	delta := tr.Shrink(env)
	data, err := wire.EncodeDeltaEnvelopeEpoch(delta, epoch)
	if err != nil {
		return err
	}
	if err := wire.WriteFrame(m.conn, data); err != nil {
		// The frame may never have reached the hub: drop the tracker so
		// the next broadcast resends full payloads on whatever stream
		// follows.
		delete(m.trackers, epoch)
		return err
	}
	return nil
}

// readerLoop is the node's single demultiplexer: it pumps the shared
// connection, answers heartbeats, advances the session cursor, and
// routes data frames to their epoch's inbox. On a connection loss it
// owns recovery — redial, session resume, tracker reset — so writers
// never race it for the dial.
func (m *MuxNode) readerLoop(conn net.Conn) {
	defer close(m.readerDone)
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			// Detach before redialing: a nil conn makes writers fail fast
			// and pauses every RunInstance's round execution (see the
			// attached() gate) — a disconnected node must not run rounds
			// solo, for the same reason RunNode blocks inside lose().
			m.writeMu.Lock()
			if m.conn != nil {
				_ = m.conn.Close()
				m.conn = nil
			}
			m.writeMu.Unlock()
			select {
			case <-m.stop:
				// Close: mark the session dead so in-flight RunInstance
				// calls return promptly instead of running out their
				// timeouts against a connection that no longer exists.
				m.die(ErrHubLost)
				return
			default:
			}
			next, rerr := m.redial()
			if rerr != nil {
				m.die(rerr)
				return
			}
			conn = next
			continue
		}
		if kind, ok := wire.ControlKind(frame); ok {
			if kind == wire.ControlHeartbeat {
				if hb, herr := wire.DecodeHeartbeat(frame); herr == nil {
					m.writeMu.Lock()
					ok := m.conn != nil && wire.WriteFrame(m.conn, wire.EncodeHeartbeatAck(wire.Heartbeat{Seq: hb.Seq})) == nil
					m.writeMu.Unlock()
					if ok {
						m.mu.Lock()
						m.stats.HeartbeatsAcked++
						m.mu.Unlock()
					}
				}
			}
			continue
		}
		// Every data frame occupies one slot of the session stream, so the
		// cursor advances even for frames that fail to decode (else a
		// resumption would replay the garbage forever).
		m.cursor++
		delta, epoch, err := wire.DecodeDeltaEnvelopeEpoch(frame)
		if err != nil {
			continue // corrupt frame: skip (crash-fault model)
		}
		m.mu.Lock()
		ep := m.epochs[epoch]
		if ep == nil {
			m.stats.UnknownEpochFrames++
			m.mu.Unlock()
			continue
		}
		m.mu.Unlock()
		// The table is reader-owned: resolve outside m.mu.
		env, err := ep.table.Resolve(delta)
		if err != nil {
			continue // dangling reference (sender's frame was lost): skip
		}
		select {
		case ep.inbox <- env:
		default:
			m.mu.Lock()
			m.stats.InboxDrops++
			m.mu.Unlock()
		}
	}
}

// redial re-establishes the shared connection with the policy's backoff
// schedule, resuming the hub session by token, and swaps it in under
// writeMu (resetting every uplink delta tracker).
func (m *MuxNode) redial() (net.Conn, error) {
	if !m.cfg.Reconnect.enabled() {
		return nil, ErrHubLost
	}
	var lastErr error
	for attempt := 0; attempt < m.cfg.Reconnect.MaxAttempts; attempt++ {
		wait := time.NewTimer(m.cfg.Reconnect.backoff(attempt))
		select {
		case <-m.stop:
			wait.Stop()
			return nil, ErrHubLost
		case <-wait.C:
		}
		conn, welcome, err := dialHub(m.lifeCtx, m.cfg.HubAddr, m.cfg.DialTimeout, m.token, m.cursor)
		if err != nil {
			lastErr = err
			m.mu.Lock()
			m.stats.FailedDials++
			m.mu.Unlock()
			continue
		}
		m.token = welcome.Token
		m.cursor = welcome.ResumeFrom
		m.writeMu.Lock()
		m.conn = conn
		// References may only point at the previous frame of the same
		// stream, and the frames in flight at the loss may be gone:
		// every epoch restarts its delta stream from full payloads.
		clear(m.trackers)
		m.writeMu.Unlock()
		m.mu.Lock()
		m.stats.Reconnects++
		m.stats.ReplayedFrames += int(welcome.Pending)
		m.mu.Unlock()
		return conn, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w (last dial error: %v)", ErrHubLost, lastErr)
	}
	return nil, ErrHubLost
}

// die marks the session permanently lost: every current and future
// RunInstance on this node returns err.
func (m *MuxNode) die(err error) {
	m.writeMu.Lock()
	if m.conn != nil {
		_ = m.conn.Close()
		m.conn = nil
	}
	m.writeMu.Unlock()
	m.deadErr = err
	close(m.dead)
}

// attached reports whether the shared connection is currently up.
func (m *MuxNode) attached() bool {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	return m.conn != nil
}

// Stats returns a snapshot of the node's robustness counters.
func (m *MuxNode) Stats() MuxStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close detaches from the hub and stops the reader. In-flight
// RunInstance calls end promptly (via the dead/reader machinery or their
// own contexts). Idempotent.
func (m *MuxNode) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	m.lifeCancel()
	m.writeMu.Lock()
	if m.conn != nil {
		_ = m.conn.Close()
		m.conn = nil
	}
	m.writeMu.Unlock()
	<-m.readerDone
	return nil
}
