package tcpnet

import (
	"context"
	"sync"
	"testing"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
	"anonconsensus/internal/wire"
)

// dialMuxCluster attaches n MuxNodes to the hub.
func dialMuxCluster(t *testing.T, hub *Hub, n int) []*MuxNode {
	t.Helper()
	nodes := make([]*MuxNode, n)
	for i := range nodes {
		m, err := DialMux(context.Background(), MuxConfig{HubAddr: hub.Addr()})
		if err != nil {
			t.Fatalf("mux node %d: %v", i, err)
		}
		nodes[i] = m
		t.Cleanup(func() { _ = m.Close() })
	}
	return nodes
}

// runMuxInstance registers epoch on every node, runs one consensus
// instance over it, and asserts agreement + validity.
func runMuxInstance(t *testing.T, nodes []*MuxNode, epoch uint64, interval time.Duration) {
	t.Helper()
	props := core.DistinctProposals(len(nodes))
	for i, m := range nodes {
		if err := m.Register(epoch); err != nil {
			t.Fatalf("epoch %d node %d: %v", epoch, i, err)
		}
	}
	defer func() {
		for _, m := range nodes {
			m.Unregister(epoch)
		}
	}()
	results := make([]*NodeResult, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, m := range nodes {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = m.RunInstance(context.Background(), epoch, InstanceRun{
				Automaton: core.NewES(props[i]),
				Interval:  interval,
				Timeout:   30 * time.Second,
				Peers:     len(nodes),
			})
		}()
	}
	wg.Wait()
	decided := values.NewSet()
	for i := range nodes {
		if errs[i] != nil {
			t.Fatalf("epoch %d node %d: %v", epoch, i, errs[i])
		}
		if !results[i].Decided {
			t.Fatalf("epoch %d node %d undecided after %d rounds", epoch, i, results[i].Rounds)
		}
		decided.Add(results[i].Decision)
	}
	if decided.Len() != 1 {
		t.Fatalf("epoch %d: agreement violated: %v", epoch, decided)
	}
	if v, _ := decided.Max(); !core.ProposalSet(props).Contains(v) {
		t.Fatalf("epoch %d: validity violated: %v", epoch, v)
	}
}

// TestMuxManyEpochsOneConnection is the multiplexing pin: several
// consensus instances run concurrently over ONE hub and ONE resumable
// session (one TCP connection) per node, each instance on its own
// epoch, and every instance still satisfies agreement and validity. The
// session count proves the sharing: it stays at n no matter how many
// instances ran.
func TestMuxManyEpochsOneConnection(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	const n, instances = 3, 4
	nodes := dialMuxCluster(t, hub, n)

	var wg sync.WaitGroup
	for e := uint64(1); e <= instances; e++ {
		e := e
		wg.Add(1)
		go func() {
			defer wg.Done()
			runMuxInstance(t, nodes, e, 4*time.Millisecond)
		}()
	}
	wg.Wait()

	if got := hub.Stats().Sessions; got != n {
		t.Fatalf("hub saw %d sessions for %d instances on %d nodes, want %d (one per node)", got, instances, n, n)
	}
	for i, m := range nodes {
		if s := m.Stats(); s.Reconnects != 0 {
			t.Fatalf("node %d reconnected %d times on a healthy link", i, s.Reconnects)
		}
	}
}

// TestMuxSequentialEpochsReuseSession pins that a node runs instance
// after instance on the same attachment, with retirement keeping the
// hub log from accumulating dead traffic.
func TestMuxSequentialEpochsReuseSession(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	nodes := dialMuxCluster(t, hub, 3)
	for e := uint64(1); e <= 3; e++ {
		runMuxInstance(t, nodes, e, 4*time.Millisecond)
		hub.RetireEpoch(e)
	}
	hs := hub.Stats()
	if hs.Sessions != 3 {
		t.Fatalf("hub saw %d sessions, want 3", hs.Sessions)
	}
	if hs.EpochsRetired != 3 {
		t.Fatalf("EpochsRetired = %d, want 3", hs.EpochsRetired)
	}
	if hs.RetiredFrames == 0 {
		t.Fatal("retiring three finished epochs compacted no frames")
	}
}

// epochFrame builds one self-contained epoch-tagged data frame.
func epochFrame(t *testing.T, epoch uint64, round int) []byte {
	t.Helper()
	p := core.SetPayload{Proposed: values.NewSet(values.Num(int64(round)))}
	var h values.Hasher
	h.WriteFingerprint(p.PayloadFingerprint())
	data, err := wire.EncodeDeltaEnvelopeEpoch(giraf.Envelope{
		Round:          round,
		Payloads:       []giraf.Payload{p},
		SetFingerprint: h.Sum(),
	}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRetireEpochScopesReplay pins the replay contract: a session
// established after RetireEpoch(k) replays every live epoch's frames
// but none of epoch k's, and a straggler broadcast tagged k is
// suppressed rather than logged.
func TestRetireEpochScopesReplay(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	// A writer node feeds the hub two interleaved epoch streams.
	writer, err := DialMux(context.Background(), MuxConfig{HubAddr: hub.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	for round := 1; round <= 3; round++ {
		for _, epoch := range []uint64{1, 2} {
			writer.writeMu.Lock()
			werr := wire.WriteFrame(writer.conn, epochFrame(t, epoch, round))
			writer.writeMu.Unlock()
			if werr != nil {
				t.Fatal(werr)
			}
		}
	}
	// Wait for the hub to log all six frames before retiring.
	deadline := time.Now().Add(5 * time.Second)
	for hub.Stats().EpochsRetired == 0 {
		hub.mu.Lock()
		logged := len(hub.log)
		hub.mu.Unlock()
		if logged >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hub logged %d frames, want 6", logged)
		}
		time.Sleep(time.Millisecond)
	}

	hub.RetireEpoch(1)
	hs := hub.Stats()
	if hs.EpochsRetired != 1 || hs.RetiredFrames != 3 {
		t.Fatalf("after retiring epoch 1: EpochsRetired=%d RetiredFrames=%d, want 1 and 3", hs.EpochsRetired, hs.RetiredFrames)
	}

	// A straggler broadcast for the retired epoch must be suppressed.
	writer.writeMu.Lock()
	werr := wire.WriteFrame(writer.conn, epochFrame(t, 1, 4))
	writer.writeMu.Unlock()
	if werr != nil {
		t.Fatal(werr)
	}

	// A late joiner registered only for epoch 2 must see exactly epoch
	// 2's three frames — retired traffic is gone from the replay.
	late, err := DialMux(context.Background(), MuxConfig{HubAddr: hub.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if err := late.Register(2); err != nil {
		t.Fatal(err)
	}
	late.mu.Lock()
	inbox := late.epochs[2].inbox
	late.mu.Unlock()
	for round := 1; round <= 3; round++ {
		select {
		case env := <-inbox:
			if env.Round != round {
				t.Fatalf("late joiner got round %d, want %d", env.Round, round)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("late joiner missing epoch-2 round %d from replay", round)
		}
	}
	select {
	case env := <-inbox:
		t.Fatalf("late joiner received unexpected extra frame (round %d)", env.Round)
	case <-time.After(50 * time.Millisecond):
	}
	if s := late.Stats(); s.UnknownEpochFrames != 0 {
		// Epoch-1 frames were retired before the late joiner's session
		// was seeded, so none should have reached it at all.
		t.Fatalf("late joiner demuxed %d unknown-epoch frames, want 0", s.UnknownEpochFrames)
	}
	if got := hub.Stats().RetiredFrames; got != 4 {
		t.Fatalf("RetiredFrames = %d after straggler, want 4 (3 compacted + 1 suppressed)", got)
	}
}

// TestMuxReconnectResumesAllEpochs pins recovery of the shared session:
// severing the one TCP connection mid-flight forces a reconnect, and
// both in-flight instances still decide (their delta streams restart
// from full payloads, their inboxes resume from the session replay).
func TestMuxReconnectResumesAllEpochs(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	const n = 3
	nodes := make([]*MuxNode, n)
	for i := range nodes {
		m, err := DialMux(context.Background(), MuxConfig{
			HubAddr:   hub.Addr(),
			Reconnect: ReconnectPolicy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, Seed: int64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = m
		t.Cleanup(func() { _ = m.Close() })
	}

	// Sever node 0's connection shortly into the run (inside the join
	// grace, so the instances cannot have decided yet).
	go func() {
		time.Sleep(8 * time.Millisecond)
		nodes[0].writeMu.Lock()
		if c := nodes[0].conn; c != nil {
			_ = c.Close()
		}
		nodes[0].writeMu.Unlock()
	}()

	var wg sync.WaitGroup
	for e := uint64(1); e <= 2; e++ {
		e := e
		wg.Add(1)
		go func() {
			defer wg.Done()
			runMuxInstance(t, nodes, e, 4*time.Millisecond)
		}()
	}
	wg.Wait()

	if s := nodes[0].Stats(); s.Reconnects == 0 {
		t.Fatal("severed node never reconnected")
	}
	if hs := hub.Stats(); hs.Reconnects == 0 {
		t.Fatal("hub recorded no session resumption")
	}
}
