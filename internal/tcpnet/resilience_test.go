package tcpnet

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/values"
	"anonconsensus/internal/wire"
)

// flakyProxy is a minimal TCP relay whose link can be severed on demand —
// enough to cut one node's hub connection without touching the others.
// (The full chaos harness lives in internal/netchaos; this one keeps the
// tcpnet tests dependency-free.)
type flakyProxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	conns []net.Conn
	down  bool
}

func newFlakyProxy(t *testing.T, target string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, target: target}
	go p.accept()
	t.Cleanup(func() { _ = ln.Close(); p.sever() })
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) accept() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.down {
			p.mu.Unlock()
			_ = client.Close()
			continue
		}
		p.mu.Unlock()
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = client.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, client, upstream)
		p.mu.Unlock()
		go func() { _, _ = io.Copy(upstream, client); _ = upstream.Close() }()
		go func() { _, _ = io.Copy(client, upstream); _ = client.Close() }()
	}
}

// sever closes every live relayed connection (new dials still succeed).
func (p *flakyProxy) sever() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// blackout severs and additionally refuses all future dials.
func (p *flakyProxy) blackout() {
	p.mu.Lock()
	p.down = true
	p.mu.Unlock()
	p.sever()
}

// downFor blacks the link out for d, then heals it — long enough for
// traffic to accumulate hub-side so the resumption has something to
// replay.
func (p *flakyProxy) downFor(d time.Duration) {
	p.blackout()
	go func() {
		time.Sleep(d)
		p.mu.Lock()
		p.down = false
		p.mu.Unlock()
	}()
}

func TestNodeReconnectResumesSession(t *testing.T) {
	// Node 1 dials through a proxy that severs its connection mid-run. With
	// a reconnect policy it must resume the hub session via the replay
	// cursor and the whole cluster still reaches agreement — with the
	// outage visible in the counters.
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	proxy := newFlakyProxy(t, hub.Addr())

	props := core.DistinctProposals(3)
	results := make([]*NodeResult, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		cfg := NodeConfig{
			HubAddr:   hub.Addr(),
			Automaton: core.NewES(props[i]),
			Interval:  10 * time.Millisecond,
			Timeout:   30 * time.Second,
			Reconnect: ReconnectPolicy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond, Seed: int64(i)},
		}
		if i == 1 {
			cfg.HubAddr = proxy.addr()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = RunNode(context.Background(), cfg)
		}()
	}
	// Cut node 1's link just as rounds begin (JoinGrace is 3×10ms) and
	// keep it down for several round-lengths so its peers' broadcasts pile
	// up in the session log — the resumption must replay them.
	time.Sleep(30 * time.Millisecond)
	proxy.downFor(60 * time.Millisecond)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	decided := values.NewSet()
	for i, r := range results {
		if !r.Decided {
			t.Fatalf("node %d undecided after %d rounds (reconnects=%d)", i, r.Rounds, r.Reconnects)
		}
		decided.Add(r.Decision)
	}
	if decided.Len() != 1 {
		t.Fatalf("agreement violated across a reconnect: %v", decided)
	}
	if v, _ := decided.Max(); !core.ProposalSet(props).Contains(v) {
		t.Fatalf("validity violated: %v", v)
	}
	if results[1].Reconnects < 1 {
		t.Errorf("severed node reports %d reconnects, want ≥ 1", results[1].Reconnects)
	}
	if results[1].ReplayedFrames == 0 {
		t.Error("severed node reports no replayed frames; resumption should have replayed the gap")
	}
	stats := hub.Stats()
	if stats.Reconnects < 1 {
		t.Errorf("hub reports %d reconnects, want ≥ 1", stats.Reconnects)
	}
}

func TestNodeSurvivesHubRestart(t *testing.T) {
	// The hub process dies mid-run and a new hub comes up on the same
	// address. Session tokens are unknown to the new hub, so nodes get
	// fresh sessions (ResumeFrom 0) with an empty log — algorithmically a
	// fresh anonymous network with the survivors' state intact locally —
	// and the run still decides.
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := hub.Addr()

	props := core.DistinctProposals(3)
	results := make([]*NodeResult, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = RunNode(context.Background(), NodeConfig{
				HubAddr:   addr,
				Automaton: core.NewES(props[i]),
				Interval:  15 * time.Millisecond,
				Timeout:   30 * time.Second,
				// Generous backoff budget: all three nodes must outlive the
				// restart gap.
				Reconnect: ReconnectPolicy{MaxAttempts: 20, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Seed: int64(i)},
			})
		}()
	}

	// Kill the hub just as rounds begin (JoinGrace is 3×15ms), before
	// anyone can have decided.
	time.Sleep(60 * time.Millisecond)
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	// Same concrete address: the nodes' redials land on the new hub.
	hub2, err := NewHub(addr)
	if err != nil {
		t.Fatalf("restarting hub on %s: %v", addr, err)
	}
	defer hub2.Close()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d did not survive the restart: %v", i, err)
		}
	}
	decided := values.NewSet()
	reconnects := 0
	for i, r := range results {
		if !r.Decided {
			t.Fatalf("node %d undecided after hub restart (%d rounds)", i, r.Rounds)
		}
		decided.Add(r.Decision)
		reconnects += r.Reconnects
	}
	if decided.Len() != 1 {
		t.Fatalf("agreement violated across hub restart: %v", decided)
	}
	if reconnects < 3 {
		t.Errorf("total reconnects %d, want ≥ 3 (every node crossed the restart)", reconnects)
	}
}

func TestNodeNeverHealsReportsHubLost(t *testing.T) {
	// The link never comes back: the node must exhaust its budget and
	// report ErrHubLost with a populated partial result — not hang, not
	// panic, not pretend to decide.
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	proxy := newFlakyProxy(t, hub.Addr())

	done := make(chan struct{})
	var res *NodeResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = RunNode(context.Background(), NodeConfig{
			HubAddr:   proxy.addr(),
			Automaton: core.NewES(values.Num(7)),
			Interval:  10 * time.Millisecond,
			// The long grace parks the node consuming (nothing): the
			// blackout, not a solo decision, is what it experiences.
			JoinGrace: 5 * time.Second,
			Timeout:   20 * time.Second,
			Reconnect: ReconnectPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, Seed: 42},
		})
	}()
	time.Sleep(80 * time.Millisecond)
	proxy.blackout()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("node hung after a permanent link failure")
	}

	if runErr == nil {
		t.Fatal("permanent outage reported no error")
	}
	if !errors.Is(runErr, ErrHubLost) {
		t.Fatalf("error does not wrap ErrHubLost: %v", runErr)
	}
	if res == nil {
		t.Fatal("no partial result alongside ErrHubLost")
	}
	if res.Decided {
		t.Error("cut-off node claims a decision")
	}
	if res.FailedDials < 3 {
		t.Errorf("FailedDials = %d, want ≥ 3 (every attempt hit the blackout)", res.FailedDials)
	}
}

func TestNoReconnectPolicyFailsFast(t *testing.T) {
	// The zero policy preserves the historical behavior: connection loss is
	// immediately fatal, with ErrHubLost naming the cause.
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	proxy := newFlakyProxy(t, hub.Addr())

	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = RunNode(context.Background(), NodeConfig{
			HubAddr:   proxy.addr(),
			Automaton: core.NewES(values.Num(3)),
			Interval:  10 * time.Millisecond,
			JoinGrace: 5 * time.Second, // park: the loss must hit a live conn
			Timeout:   20 * time.Second,
		})
	}()
	time.Sleep(60 * time.Millisecond)
	proxy.blackout()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("node without reconnect policy hung on connection loss")
	}
	if !errors.Is(runErr, ErrHubLost) {
		t.Fatalf("want ErrHubLost, got: %v", runErr)
	}
}

func TestHubDropsHeartbeatDeadSession(t *testing.T) {
	// A handshaken client that never acks heartbeats must be declared dead
	// after the miss limit and dropped — with the misses and the drop
	// visible in the stats. A raw legacy client on the same hub must be
	// left alone (it cannot ack).
	hub, err := NewHub("127.0.0.1:0", WithHeartbeat(20*time.Millisecond, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	// Handshaken, then silent.
	dead, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	if err := wire.WriteFrame(dead, wire.EncodeHello(wire.Hello{})); err != nil {
		t.Fatal(err)
	}

	// The hub should sever the connection: reads on our side hit EOF.
	_ = dead.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := wire.ReadFrame(dead); err != nil {
			if errors.Is(err, io.EOF) || !errors.Is(err, wire.ErrBadFrame) {
				break // severed (EOF / reset), as demanded
			}
		}
	}
	stats := hub.Stats()
	if stats.HeartbeatMisses < 3 {
		t.Errorf("HeartbeatMisses = %d, want ≥ 3", stats.HeartbeatMisses)
	}
	if stats.DroppedConns < 1 {
		t.Errorf("DroppedConns = %d, want ≥ 1", stats.DroppedConns)
	}
}

func TestHeartbeatAckKeepsSessionAlive(t *testing.T) {
	// A live node (RunNode acks heartbeats) must never be declared dead,
	// even with an aggressive probe schedule.
	hub, err := NewHub("127.0.0.1:0", WithHeartbeat(15*time.Millisecond, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	props := core.DistinctProposals(2)
	results := runClusterAt(t, hub, 2, func(i int) NodeConfig {
		return NodeConfig{
			Automaton: core.NewES(props[i]),
			Interval:  10 * time.Millisecond,
			Timeout:   30 * time.Second,
			Reconnect: ReconnectPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond},
		}
	})
	for i, r := range results {
		if !r.Decided {
			t.Fatalf("node %d undecided", i)
		}
		if r.HeartbeatsAcked == 0 {
			t.Errorf("node %d acked no heartbeats under a 15ms probe schedule", i)
		}
	}
	if stats := hub.Stats(); stats.DroppedConns != 0 {
		t.Errorf("hub dropped %d conns; live acking nodes should never be declared dead", stats.DroppedConns)
	}
}

// runClusterAt is runCluster against an existing hub.
func runClusterAt(t *testing.T, hub *Hub, n int, mkCfg func(i int) NodeConfig) []*NodeResult {
	t.Helper()
	results := make([]*NodeResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		cfg := mkCfg(i)
		cfg.HubAddr = hub.Addr()
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = RunNode(context.Background(), cfg)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return results
}

func TestHubOverwhelmGraceThenDrop(t *testing.T) {
	// A consumer that stops reading gets the high-water grace window, then
	// is dropped with OverwhelmedDrops accounting — not silently, not
	// instantly.
	hub, err := NewHub("127.0.0.1:0",
		WithQueuePolicy(8, 50*time.Millisecond),
		WithHandshakeWindow(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	sender, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	// The victim never reads: its queue lag only grows.
	victim, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	waitForConns(t, hub, 2)

	frame := make([]byte, 32<<10) // big frames defeat kernel socket buffering
	deadline := time.Now().Add(10 * time.Second)
	for hub.Stats().OverwhelmedDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("overwhelmed consumer never dropped")
		}
		if err := wire.WriteFrame(sender, frame); err != nil {
			t.Fatalf("sender write: %v", err)
		}
	}
	stats := hub.Stats()
	if stats.DroppedConns < 1 {
		t.Errorf("DroppedConns = %d, want ≥ 1", stats.DroppedConns)
	}
}

func TestReconnectBackoffDeterministic(t *testing.T) {
	// Same seed ⇒ same jittered schedule; different seeds ⇒ (generically)
	// different schedules; and every delay lives in [d/2, 3d/2) of the
	// capped exponential envelope.
	p1 := ReconnectPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Seed: 1}
	p1b := p1
	p2 := p1
	p2.Seed = 2
	differs := false
	for i := 0; i < 8; i++ {
		d1, d1b, d2 := p1.backoff(i), p1b.backoff(i), p2.backoff(i)
		if d1 != d1b {
			t.Fatalf("attempt %d: same seed gave %v then %v", i, d1, d1b)
		}
		if d1 != d2 {
			differs = true
		}
		env := 10 * time.Millisecond << uint(i)
		if env > 200*time.Millisecond {
			env = 200 * time.Millisecond
		}
		if d1 < env/2 || d1 >= env+env/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", i, d1, env/2, env+env/2)
		}
	}
	if !differs {
		t.Error("seeds 1 and 2 produced identical jitter on all 8 attempts")
	}
}
