// Package tcpnet runs anonymous consensus across real network connections:
// a broadcast Hub relays frames between TCP connections and Nodes drive
// GIRAF automata against it.
//
// Anonymity is preserved end to end: frames (package wire) carry no sender
// identifier, the hub relays bytes verbatim without annotating origin, and
// nodes never learn how many peers exist — the hub accepts connections at
// any time. The hub itself is a dumb reliable-broadcast device standing in
// for the paper's broadcast primitive; all algorithmic work happens in the
// nodes.
//
// Timing realizes the environments physically: a node's round timer and
// the hub's (optional) per-connection artificial delays determine which
// links are timely, exactly as in the in-process runtime (anonnet).
package tcpnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
	"anonconsensus/internal/wire"
)

// Hub is the reliable anonymous broadcast relay: every frame received on
// one connection is forwarded to every *other* connection, in arrival
// order, with no origin information. The hub retains a log of all frames
// and replays it to every new connection: the paper's broadcast primitive
// is reliable to *all* correct processes, so a process that attaches late
// must still receive everything broadcast before it arrived (late counts
// as asynchronous, lost would break the model — see the late-joiner test).
type Hub struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]chan []byte
	log    [][]byte
	closed bool

	wg sync.WaitGroup
	// Delay, if set, is applied before forwarding a frame to a connection
	// (indexed by accept order), letting tests shape per-link timeliness.
	delay func(connIndex int) time.Duration
	// fault, if set, decides per (sender, receiver, frame serial) whether a
	// forward is dropped or duplicated — the hub-level realization of a
	// fault scenario's loss and duplication dimensions.
	fault  func(from, to, serial int) (drop, dup bool)
	serial int
	order  map[net.Conn]int
	next   int
}

// HubOption configures the hub.
type HubOption func(*Hub)

// WithForwardDelay delays every forward to the i-th accepted connection.
func WithForwardDelay(f func(connIndex int) time.Duration) HubOption {
	return func(h *Hub) { h.delay = f }
}

// WithForwardFault injects loss and duplication at the relay: before
// forwarding a frame from the from-th to the to-th accepted connection
// (serial numbers frames in arrival order), f decides whether the forward
// is suppressed or doubled. Dropped frames stay in the hub log — a late
// joiner still receives them in the replay, mirroring the scenario
// semantics that loss hits deliveries, not the broadcast itself. Crash and
// partition dimensions are the caller's concern (crashes stop nodes, and
// the caller can realize a partition by dropping all cross-block forwards).
func WithForwardFault(f func(from, to, serial int) (drop, dup bool)) HubOption {
	return func(h *Hub) { h.fault = f }
}

// NewHub starts a hub listening on addr (e.g. "127.0.0.1:0"). Close stops
// it.
func NewHub(addr string, opts ...HubOption) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: hub listen: %w", err)
	}
	h := &Hub{
		ln:    ln,
		conns: make(map[net.Conn]chan []byte),
		order: make(map[net.Conn]int),
	}
	for _, opt := range opts {
		opt(h)
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Close stops the hub and all its connections.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := make([]net.Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()

	err := h.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	h.wg.Wait()
	return err
}

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		// Size the queue to hold the whole replay plus headroom so a new
		// connection is never treated as overwhelmed before it caught up.
		out := make(chan []byte, len(h.log)+4096)
		for _, frame := range h.log {
			out <- frame
		}
		h.conns[conn] = out
		h.order[conn] = h.next
		h.next++
		h.mu.Unlock()

		h.wg.Add(2)
		go h.readLoop(conn)
		go h.writeLoop(conn, out)
	}
}

// readLoop pulls frames off one connection and fans them out.
func (h *Hub) readLoop(conn net.Conn) {
	defer h.wg.Done()
	defer h.drop(conn)
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return // EOF or broken pipe: the node left
		}
		var overwhelmed []net.Conn
		h.mu.Lock()
		h.log = append(h.log, frame)
		h.serial++
		serial := h.serial
		from := h.order[conn]
		for peer, out := range h.conns {
			if peer == conn {
				continue // the sender's own payload is already in its inbox
			}
			dup := false
			if h.fault != nil {
				var drop bool
				drop, dup = h.fault(from, h.order[peer], serial)
				if drop {
					continue
				}
			}
			select {
			case out <- frame:
			default:
				// Broadcast must stay reliable to correct processes:
				// silently dropping frames would void the model's safety
				// assumptions. A consumer that cannot keep up is instead
				// disconnected — in the crash-fault model it is now a
				// crashed process, which the algorithms tolerate.
				overwhelmed = append(overwhelmed, peer)
				continue
			}
			if dup {
				// The duplicate is fault injection, not protocol traffic:
				// best-effort only, and never grounds for disconnecting a
				// peer that already holds the real frame.
				select {
				case out <- frame:
				default:
				}
			}
		}
		h.mu.Unlock()
		for _, peer := range overwhelmed {
			h.drop(peer)
		}
	}
}

// writeLoop forwards queued frames to one connection.
func (h *Hub) writeLoop(conn net.Conn, out chan []byte) {
	defer h.wg.Done()
	idx := func() int {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.order[conn]
	}()
	for frame := range out {
		if h.delay != nil {
			if d := h.delay(idx); d > 0 {
				time.Sleep(d)
			}
		}
		if err := wire.WriteFrame(conn, frame); err != nil {
			return
		}
	}
}

// drop unregisters a connection.
func (h *Hub) drop(conn net.Conn) {
	h.mu.Lock()
	out, ok := h.conns[conn]
	delete(h.conns, conn)
	h.mu.Unlock()
	if ok {
		close(out)
	}
	_ = conn.Close()
}

// NodeConfig drives one consensus node against a hub.
type NodeConfig struct {
	// HubAddr is the hub's TCP address.
	HubAddr string
	// Automaton is the GIRAF automaton to run.
	Automaton giraf.Automaton
	// Interval is the local round-timer period; defaults to 10ms.
	Interval time.Duration
	// Timeout bounds the run; defaults to 30s.
	Timeout time.Duration
	// JoinGrace delays the node's first end-of-round so the hub's replay
	// of earlier broadcasts is consumed first; defaults to 3×Interval.
	// With unknown participation a node cannot distinguish "I am alone"
	// from "my peers' messages are still in flight" — the grace period is
	// the pragmatic stand-in for the model's premise that all of Π is
	// present from round 1.
	JoinGrace time.Duration
	// CrashAfterRounds stops the node after it executed that many
	// end-of-rounds (simulated crash, mirroring anonnet's crash schedule).
	// Zero means never.
	CrashAfterRounds int
}

// NodeResult is a node's outcome.
type NodeResult struct {
	Decided  bool
	Decision values.Value
	Round    int
	// Rounds is the number of end-of-rounds executed.
	Rounds int
	// Crashed reports whether the crash schedule stopped the node.
	Crashed bool
}

// RunNode connects to the hub and drives the automaton until it decides or
// the timeout expires.
func RunNode(ctx context.Context, cfg NodeConfig) (*NodeResult, error) {
	if cfg.Automaton == nil {
		return nil, errors.New("tcpnet: nil automaton")
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	conn, err := net.Dial("tcp", cfg.HubAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dialing hub: %w", err)
	}
	defer conn.Close()

	proc := giraf.NewProc(cfg.Automaton)
	inbox := make(chan giraf.Envelope, 1024)

	// Reader goroutine: delta frames → resolved envelopes → inbox. The
	// reader's resolve table spans the whole connection, so fingerprint
	// references to payloads from earlier frames (any sender — the hub
	// serializes all streams into one) always resolve. Corrupt frames from
	// a byzantine-ish peer are dropped, not fatal: crash-fault model.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		reader := wire.NewEnvelopeReader(conn)
		for {
			env, err := reader.ReadEnvelope()
			if err != nil {
				if errors.Is(err, wire.ErrBadFrame) {
					continue
				}
				return
			}
			select {
			case inbox <- env:
			case <-ctx.Done():
				return
			}
		}
	}()

	grace := cfg.JoinGrace
	if grace <= 0 {
		grace = 3 * interval
	}
	graceOver := time.After(grace)
	started := false

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	// Writer with per-connection delta state: each payload crosses this
	// node's uplink in full exactly once; rebroadcasts of it are 16-byte
	// fingerprint references.
	writer := wire.NewEnvelopeWriter(conn)
	res := &NodeResult{}
	for {
		select {
		case <-ctx.Done():
			res.Rounds = proc.CurrentRound()
			return res, nil
		case <-readerDone:
			res.Rounds = proc.CurrentRound()
			return res, fmt.Errorf("tcpnet: hub connection lost")
		case <-graceOver:
			started = true
		case env := <-inbox:
			proc.Receive(env)
		case <-ticker.C:
			if !started {
				continue // still consuming the hub replay
			}
			if cfg.CrashAfterRounds > 0 && proc.CurrentRound() >= cfg.CrashAfterRounds {
				res.Crashed = true
				res.Rounds = proc.CurrentRound()
				return res, nil
			}
			computing := proc.CurrentRound()
			env, ok := proc.EndOfRound()
			if proc.Halted() {
				d := proc.Decision()
				res.Decided = true
				res.Decision = d.Value
				res.Round = computing
				res.Rounds = proc.CurrentRound()
				return res, nil
			}
			if !ok {
				continue
			}
			if err := writer.WriteEnvelope(env); err != nil {
				res.Rounds = proc.CurrentRound()
				return res, fmt.Errorf("tcpnet: broadcasting round %d: %w", env.Round, err)
			}
		}
	}
}
