// Package tcpnet runs anonymous consensus across real network connections:
// a broadcast Hub relays frames between TCP connections and Nodes drive
// GIRAF automata against it.
//
// Anonymity is preserved end to end: frames (package wire) carry no sender
// identifier, the hub relays bytes verbatim without annotating origin, and
// nodes never learn how many peers exist — the hub accepts connections at
// any time. The hub itself is a dumb reliable-broadcast device standing in
// for the paper's broadcast primitive; all algorithmic work happens in the
// nodes.
//
// Timing realizes the environments physically: a node's round timer and
// the hub's (optional) per-connection artificial delays determine which
// links are timely, exactly as in the in-process runtime (anonnet).
//
// # Resilience
//
// The live plane survives real network weather. Connections are sessions:
// a node's first frame is a wire.Hello handshake, the hub answers with a
// session token (wire.Welcome), and a node that loses its connection
// redials with seeded exponential backoff and resumes the session from a
// replay cursor — it receives exactly the frames it has not seen, not the
// whole log, and keeps its delta-decoding state. The hub heartbeats every
// handshaken connection and only declares a peer dead after a run of
// missed acks; an overwhelmed consumer gets a high-water-mark grace
// window to drain before it is disconnected (and, having a session, can
// reconnect and resume with nothing lost). Raw legacy clients that never
// send a Hello still work: after a short handshake window they get the
// classic whole-log replay and channel semantics.
package tcpnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
	"anonconsensus/internal/wire"
)

// ErrHubLost reports that a node's hub connection died and could not be
// re-established within its reconnect budget. In the crash-fault model a
// node permanently cut off from the broadcast primitive is
// indistinguishable from a crashed process, so callers (transport_tcp)
// treat this error as a crash of that one node, not as an
// infrastructure failure of the whole run.
var ErrHubLost = errors.New("tcpnet: hub connection lost")

// HubStats counts the hub's robustness events. All counters are
// cumulative since the hub started.
type HubStats struct {
	// Sessions is the number of sessions ever established (legacy
	// connections included).
	Sessions int
	// Reconnects counts successful session resumptions.
	Reconnects int
	// ReplayedFrames counts frames re-sent from session logs on
	// resumption.
	ReplayedFrames int
	// HeartbeatMisses counts heartbeat intervals that elapsed with the
	// previous probe unacknowledged (a slow consumer accumulates a few and
	// recovers; a dead one accumulates the miss limit and is dropped).
	HeartbeatMisses int
	// DroppedConns counts connections the hub itself severed (overwhelmed
	// beyond the grace window, or heartbeat-dead).
	DroppedConns int
	// OverwhelmedDrops is the subset of DroppedConns due to a full
	// outbound queue past the high-water mark for longer than the grace
	// window.
	OverwhelmedDrops int
	// EpochsRetired counts RetireEpoch calls; RetiredFrames counts frames
	// removed from the hub replay log by retirement plus late broadcasts
	// suppressed because their epoch was already retired.
	EpochsRetired int
	RetiredFrames int
}

// Hub is the reliable anonymous broadcast relay: every frame received on
// one connection is forwarded to every *other* connection, in arrival
// order, with no origin information. The hub retains a log of all frames
// and replays it to every new session: the paper's broadcast primitive is
// reliable to *all* correct processes, so a process that attaches late
// must still receive everything broadcast before it arrived (late counts
// as asynchronous, lost would break the model — see the late-joiner test).
//
// Each session's outbound queue is a cursor into its private sent-log (a
// subsequence of the hub log: own frames excluded, fault-dropped forwards
// excluded, injected duplicates included). Replay on resumption is just a
// cursor rewind, so a reconnecting node never loses a frame and never
// re-receives one it has processed.
type Hub struct {
	ln net.Listener

	mu       sync.Mutex
	sessions map[*session]struct{}
	byToken  map[uint64]*session
	pending  map[net.Conn]struct{} // accepted, still in the handshake window
	log      [][]byte
	// logEpochs runs parallel to log: each entry is the frame's instance
	// epoch (0 for legacy unmultiplexed frames), so RetireEpoch can
	// compact the replay log per epoch without decoding frames.
	logEpochs []uint64
	retired   map[uint64]bool
	closed    bool
	serial    int
	next      int // accept-order counter (delay/fault indexing)

	tokenSeq  uint64
	bootNonce uint64

	stats HubStats

	stop chan struct{}
	wg   sync.WaitGroup

	// Delay, if set, is applied before forwarding a frame to a connection
	// (indexed by accept order), letting tests shape per-link timeliness.
	delay func(connIndex int) time.Duration
	// fault, if set, decides per (sender, receiver, frame serial) whether a
	// forward is dropped or duplicated — the hub-level realization of a
	// fault scenario's loss and duplication dimensions.
	fault func(from, to, serial int) (drop, dup bool)

	handshakeWindow time.Duration
	highWater       int
	graceWindow     time.Duration
	hbInterval      time.Duration
	hbMissLimit     int
}

// session is one logical consumer of the broadcast: a handshaken node
// (resumable by token across connections) or a legacy raw connection
// (token 0, dies with its connection).
type session struct {
	token uint64
	sent  [][]byte // frames queued for this session, in order
	cur   int      // next sent index the write loop will deliver
	cond  *sync.Cond

	conn  net.Conn // current attachment; nil while detached
	order int      // accept-order index of the current connection
	wmu   sync.Mutex

	hwmSince time.Time // when the queue lag first crossed the high-water mark

	hbSeq   uint64
	hbAcked uint64
	misses  int
}

// HubOption configures the hub.
type HubOption func(*Hub)

// WithForwardDelay delays every forward to the i-th accepted connection.
func WithForwardDelay(f func(connIndex int) time.Duration) HubOption {
	return func(h *Hub) { h.delay = f }
}

// WithForwardFault injects loss and duplication at the relay: before
// forwarding a frame from the from-th to the to-th accepted connection
// (serial numbers frames in arrival order), f decides whether the forward
// is suppressed or doubled. Dropped frames stay in the hub log — a late
// joiner still receives them in the replay, mirroring the scenario
// semantics that loss hits deliveries, not the broadcast itself. Crash and
// partition dimensions are the caller's concern (crashes stop nodes, and
// the caller can realize a partition by dropping all cross-block forwards).
func WithForwardFault(f func(from, to, serial int) (drop, dup bool)) HubOption {
	return func(h *Hub) { h.fault = f }
}

// WithHeartbeat sets the hub's liveness probing of handshaken
// connections: a probe every interval, and a connection is declared dead
// (and dropped) after missLimit consecutive intervals with the previous
// probe unacknowledged — the threshold is what distinguishes a slow
// consumer (misses a beat, acks late, recovers) from a dead one. Legacy
// connections are never probed (they cannot ack).
func WithHeartbeat(interval time.Duration, missLimit int) HubOption {
	return func(h *Hub) {
		h.hbInterval = interval
		if missLimit > 0 {
			h.hbMissLimit = missLimit
		}
	}
}

// WithQueuePolicy bounds a session's outbound lag: once more than
// highWater frames are queued undelivered, the consumer has the grace
// window to drain below the mark before the hub disconnects it
// (overwhelmed ⇒ crashed in the model; a handshaken node can reconnect
// and resume, so for sessions the drop is flow control, not data loss).
func WithQueuePolicy(highWater int, grace time.Duration) HubOption {
	return func(h *Hub) {
		if highWater > 0 {
			h.highWater = highWater
		}
		if grace > 0 {
			h.graceWindow = grace
		}
	}
}

// WithHandshakeWindow sets how long the hub waits for a new connection's
// first frame before treating it as a legacy (non-handshaking) client.
func WithHandshakeWindow(d time.Duration) HubOption {
	return func(h *Hub) {
		if d > 0 {
			h.handshakeWindow = d
		}
	}
}

// NewHub starts a hub listening on addr (e.g. "127.0.0.1:0"). Close stops
// it.
func NewHub(addr string, opts ...HubOption) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: hub listen: %w", err)
	}
	h := &Hub{
		ln:       ln,
		sessions: make(map[*session]struct{}),
		byToken:  make(map[uint64]*session),
		pending:  make(map[net.Conn]struct{}),
		retired:  make(map[uint64]bool),
		stop:     make(chan struct{}),
		// The boot nonce keeps tokens from colliding across hub restarts
		// on the same address: a node resuming into a restarted hub must
		// never alias another node's fresh session.
		bootNonce:       uint64(time.Now().UnixNano()) << 16,
		handshakeWindow: 150 * time.Millisecond,
		highWater:       4096,
		graceWindow:     500 * time.Millisecond,
		hbInterval:      2 * time.Second,
		hbMissLimit:     3,
	}
	for _, opt := range opts {
		opt(h)
	}
	h.wg.Add(1)
	go h.acceptLoop()
	if h.hbInterval > 0 {
		h.wg.Add(1)
		go h.heartbeatLoop()
	}
	return h, nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Stats returns a snapshot of the hub's robustness counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// RetireEpoch declares a multiplexed instance epoch finished: its frames
// are compacted out of the hub replay log — so fresh sessions and late
// joiners replay only live epochs — and any straggler broadcast tagged
// with it is suppressed instead of logged. Retirement is what keeps a
// long-lived multiplexing hub's log proportional to the *in-flight*
// instances rather than to everything it ever carried.
//
// Epoch 0 (the legacy unmultiplexed plane) cannot be retired; calls for
// it are no-ops. Already-established sessions keep their private sent
// logs untouched: those are cursor-indexed (the node's replay cursor
// counts delivered frames), so compacting them would desynchronize
// resumption. Their retired entries have already been delivered or will
// drain cheaply; only the hub-level log, which seeds every future
// session, is compacted.
func (h *Hub) RetireEpoch(epoch uint64) {
	if epoch == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.retired[epoch] {
		return
	}
	h.retired[epoch] = true
	h.stats.EpochsRetired++
	kept := h.log[:0]
	keptEpochs := h.logEpochs[:0]
	for i, frame := range h.log {
		if h.logEpochs[i] == epoch {
			h.stats.RetiredFrames++
			continue
		}
		kept = append(kept, frame)
		keptEpochs = append(keptEpochs, h.logEpochs[i])
	}
	// Zero the tail so retired frames are collectable.
	for i := len(kept); i < len(h.log); i++ {
		h.log[i] = nil
	}
	h.log = kept
	h.logEpochs = keptEpochs
}

// attached reports how many sessions currently have a live connection.
func (h *Hub) attached() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for s := range h.sessions {
		if s.conn != nil {
			n++
		}
	}
	return n
}

// Close stops the hub and all its connections.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conns := make([]net.Conn, 0, len(h.sessions)+len(h.pending))
	for s := range h.sessions {
		if s.conn != nil {
			conns = append(conns, s.conn)
		}
		s.cond.Broadcast()
	}
	for c := range h.pending {
		conns = append(conns, c)
	}
	h.mu.Unlock()

	close(h.stop)
	err := h.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	h.wg.Wait()
	return err
}

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		h.pending[conn] = struct{}{}
		h.wg.Add(1)
		h.mu.Unlock()
		go h.handshake(conn)
	}
}

// countingReader counts bytes consumed, so the handshake can tell a
// clean deadline expiry (nothing read, the stream is intact) from a
// partial frame cut off at the deadline (the stream is desynced and the
// connection must be abandoned).
type countingReader struct {
	r io.Reader
	n int
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += n
	return n, err
}

// handshake classifies a new connection: a wire.Hello as the first frame
// makes it a session (fresh or resumed); anything else — a data frame, or
// silence for the handshake window — makes it a legacy connection with
// the classic whole-log replay.
func (h *Hub) handshake(conn net.Conn) {
	defer h.wg.Done()
	_ = conn.SetReadDeadline(time.Now().Add(h.handshakeWindow))
	cr := &countingReader{r: conn}
	first, err := wire.ReadFrame(cr)
	_ = conn.SetReadDeadline(time.Time{})

	var hello *wire.Hello
	var firstData []byte
	switch {
	case err == nil:
		if hm, herr := wire.DecodeHello(first); herr == nil {
			hello = &hm
		} else if !wire.IsControlFrame(first) {
			firstData = first
		}
		// A non-Hello control frame before any handshake is a protocol
		// slip; ignore it and treat the connection as legacy.
	default:
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() || cr.n > 0 {
			// EOF or transport failure before any frame — or a partial
			// frame truncated at the deadline, which leaves the stream
			// desynced: nothing to serve either way.
			h.mu.Lock()
			delete(h.pending, conn)
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		// Clean timeout: a legacy client that has nothing to say yet.
	}

	h.mu.Lock()
	delete(h.pending, conn)
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return
	}
	var s *session
	var welcome wire.Welcome
	if hello != nil && hello.Token != 0 {
		s = h.byToken[hello.Token]
	}
	if s != nil {
		// Resumption: kick any half-dead previous attachment, rewind the
		// cursor to the node's receive count, and replay the difference.
		if old := s.conn; old != nil {
			s.conn = nil
			s.cond.Broadcast()
			_ = old.Close()
		}
		cur := int(hello.Cursor)
		if cur > len(s.sent) {
			cur = len(s.sent) // defensive: never replay past the log
		}
		s.cur = cur
		h.stats.Reconnects++
		h.stats.ReplayedFrames += len(s.sent) - cur
		welcome = wire.Welcome{
			Token:      s.token,
			ResumeFrom: uint64(cur),
			Pending:    uint64(len(s.sent) - cur),
		}
	} else {
		// Fresh session (or a resume for a token this hub does not know —
		// e.g. issued before a restart): the whole current log is the
		// replay, exactly as for a late joiner.
		s = &session{cond: sync.NewCond(&h.mu)}
		s.sent = append([][]byte(nil), h.log...)
		if hello != nil {
			h.tokenSeq++
			s.token = h.bootNonce + h.tokenSeq
			h.byToken[s.token] = s
			welcome = wire.Welcome{Token: s.token, Pending: uint64(len(s.sent))}
		}
		h.sessions[s] = struct{}{}
		h.stats.Sessions++
	}
	s.conn = conn
	s.order = h.next
	h.next++
	s.hwmSince = time.Time{}
	s.hbSeq, s.hbAcked, s.misses = 0, 0, 0
	h.mu.Unlock()

	if hello != nil {
		// The Welcome must precede every replayed frame; this connection's
		// write loop starts only below, so a direct write is ordered.
		s.wmu.Lock()
		werr := wire.WriteFrame(conn, wire.EncodeWelcome(welcome))
		s.wmu.Unlock()
		if werr != nil {
			h.detach(s, conn, false)
			return
		}
	}

	h.wg.Add(2)
	go h.readLoop(s, conn)
	go h.writeLoop(s, conn)
	if firstData != nil {
		h.broadcast(s, firstData)
	}
}

// readLoop pulls frames off one connection: control frames are consumed,
// data frames fan out.
func (h *Hub) readLoop(s *session, conn net.Conn) {
	defer h.wg.Done()
	defer h.detach(s, conn, false)
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			return // EOF or broken pipe: the node left
		}
		if kind, ok := wire.ControlKind(frame); ok {
			if kind == wire.ControlHeartbeatAck {
				if ack, err := wire.DecodeHeartbeatAck(frame); err == nil {
					h.mu.Lock()
					// Ignore acks from before a resumption (their seq
					// outruns this attachment's probe counter).
					if ack.Seq <= s.hbSeq && ack.Seq > s.hbAcked {
						s.hbAcked = ack.Seq
					}
					s.misses = 0
					h.mu.Unlock()
				}
			}
			continue // control frames are never relayed
		}
		h.broadcast(s, frame)
	}
}

// broadcast logs one data frame and queues it for every other session.
func (h *Hub) broadcast(from *session, frame []byte) {
	type victim struct {
		s    *session
		conn net.Conn
	}
	var overwhelmed []victim
	epoch, _ := wire.DataFrameEpoch(frame) // non-delta frames count as epoch 0
	h.mu.Lock()
	if h.retired[epoch] {
		// A straggler from a finished instance: suppress it entirely —
		// logging it would replay dead traffic to every future session.
		h.stats.RetiredFrames++
		h.mu.Unlock()
		return
	}
	h.log = append(h.log, frame)
	h.logEpochs = append(h.logEpochs, epoch)
	h.serial++
	serial := h.serial
	for s := range h.sessions {
		if s == from {
			continue // the sender's own payload is already in its inbox
		}
		if h.fault != nil {
			drop, dup := h.fault(from.order, s.order, serial)
			if drop {
				continue
			}
			if dup {
				// The duplicate is fault injection, not protocol traffic:
				// it rides the same queue and replay as the original.
				s.sent = append(s.sent, frame)
			}
		}
		s.sent = append(s.sent, frame)
		// Broadcast must stay reliable to correct processes: frames are
		// never silently dropped. A consumer lagging past the high-water
		// mark gets the grace window to drain; if it is still overwhelmed
		// after that it is disconnected — in the crash-fault model a
		// crashed process (which the algorithms tolerate), and for a
		// handshaken session merely a forced reconnect with replay.
		if s.conn != nil && len(s.sent)-s.cur > h.highWater {
			if s.hwmSince.IsZero() {
				s.hwmSince = time.Now()
			} else if time.Since(s.hwmSince) > h.graceWindow {
				h.stats.OverwhelmedDrops++
				h.stats.DroppedConns++
				overwhelmed = append(overwhelmed, victim{s, s.conn})
			}
		}
		s.cond.Signal()
	}
	h.mu.Unlock()
	for _, v := range overwhelmed {
		h.detach(v.s, v.conn, true)
	}
}

// writeLoop delivers a session's sent-log to its current connection,
// advancing the shared cursor. It exits when the connection is replaced,
// fails, or the hub closes.
func (h *Hub) writeLoop(s *session, conn net.Conn) {
	defer h.wg.Done()
	for {
		h.mu.Lock()
		for s.conn == conn && !h.closed && s.cur >= len(s.sent) {
			s.cond.Wait()
		}
		if s.conn != conn || h.closed {
			h.mu.Unlock()
			return
		}
		frame := s.sent[s.cur]
		s.cur++
		idx := s.order
		if len(s.sent)-s.cur <= h.highWater {
			s.hwmSince = time.Time{} // drained below the mark: lag forgiven
		}
		h.mu.Unlock()
		if h.delay != nil {
			if d := h.delay(idx); d > 0 {
				time.Sleep(d)
			}
		}
		s.wmu.Lock()
		err := wire.WriteFrame(conn, frame)
		s.wmu.Unlock()
		if err != nil {
			h.detach(s, conn, false)
			return
		}
	}
}

// heartbeatLoop probes every handshaken attached connection and drops the
// ones that miss hbMissLimit probes in a row.
func (h *Hub) heartbeatLoop() {
	defer h.wg.Done()
	ticker := time.NewTicker(h.hbInterval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-ticker.C:
		}
		type probe struct {
			s    *session
			conn net.Conn
			seq  uint64
		}
		var probes []probe
		var dead []probe
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			return
		}
		for s := range h.sessions {
			if s.conn == nil || s.token == 0 {
				continue // detached, or legacy (cannot ack)
			}
			if s.hbSeq > s.hbAcked {
				s.misses++
				h.stats.HeartbeatMisses++
				if s.misses >= h.hbMissLimit {
					h.stats.DroppedConns++
					dead = append(dead, probe{s: s, conn: s.conn})
					continue
				}
			}
			s.hbSeq++
			probes = append(probes, probe{s, s.conn, s.hbSeq})
		}
		h.mu.Unlock()
		for _, d := range dead {
			h.detach(d.s, d.conn, true)
		}
		for _, p := range probes {
			p.s.wmu.Lock()
			err := wire.WriteFrame(p.conn, wire.EncodeHeartbeat(wire.Heartbeat{Seq: p.seq}))
			p.s.wmu.Unlock()
			if err != nil {
				h.detach(p.s, p.conn, false)
			}
		}
	}
}

// detach severs one attachment. A tokened session stays resumable (its
// sent-log keeps accumulating); a legacy session dies with its
// connection. hubInitiated marks drops the hub decided on (already
// counted by the caller under mu).
func (h *Hub) detach(s *session, conn net.Conn, hubInitiated bool) {
	_ = hubInitiated // counted at the decision site; parameter documents intent
	h.mu.Lock()
	if s.conn == conn {
		s.conn = nil
		if s.token == 0 {
			delete(h.sessions, s)
		}
		s.cond.Broadcast()
	}
	h.mu.Unlock()
	_ = conn.Close()
}

// ReconnectPolicy governs a node's response to losing its hub
// connection: redial with exponential backoff and jitter, resuming the
// session. The zero policy disables reconnection (a lost connection is
// then immediately ErrHubLost).
type ReconnectPolicy struct {
	// MaxAttempts bounds redials per outage; 0 disables reconnection.
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 20ms when attempts
	// are enabled).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 2s).
	MaxDelay time.Duration
	// Seed drives the jitter: for a fixed seed the backoff schedule is
	// deterministic, so chaos runs replay.
	Seed int64
}

// enabled reports whether the policy allows any reconnection.
func (p ReconnectPolicy) enabled() bool { return p.MaxAttempts > 0 }

// backoff returns the deterministic delay before the attempt-th redial
// (0-based): exponential growth capped at MaxDelay, jittered into
// [d/2, 3d/2) by a seeded hash so herds of nodes desynchronize while a
// fixed seed still replays the exact schedule.
func (p ReconnectPolicy) backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	// FNV-1a over (seed, attempt), the same mixer idiom as the transport's
	// forward jitter.
	j := uint64(1469598103934665603) ^ uint64(p.Seed)
	j ^= uint64(uint32(attempt))
	j *= 1099511628211
	j ^= j >> 33
	return d/2 + time.Duration(j%uint64(d))
}

// NodeConfig drives one consensus node against a hub.
type NodeConfig struct {
	// HubAddr is the hub's TCP address.
	HubAddr string
	// Automaton is the GIRAF automaton to run.
	Automaton giraf.Automaton
	// Interval is the local round-timer period; defaults to 10ms.
	Interval time.Duration
	// Timeout bounds the run; defaults to 30s.
	Timeout time.Duration
	// DialTimeout bounds each dial + handshake (context cancellation
	// aborts a hung dial earlier); defaults to 5s.
	DialTimeout time.Duration
	// JoinGrace delays the node's first end-of-round so the hub's replay
	// of earlier broadcasts is consumed first; defaults to 3×Interval.
	// With unknown participation a node cannot distinguish "I am alone"
	// from "my peers' messages are still in flight" — the grace period is
	// the pragmatic stand-in for the model's premise that all of Π is
	// present from round 1.
	JoinGrace time.Duration
	// CrashAfterRounds stops the node after it executed that many
	// end-of-rounds (simulated crash, mirroring anonnet's crash schedule).
	// Zero means never.
	CrashAfterRounds int
	// Reconnect governs recovery from a lost hub connection; the zero
	// policy keeps the historical fail-fast behavior.
	Reconnect ReconnectPolicy
}

// NodeResult is a node's outcome.
type NodeResult struct {
	Decided  bool
	Decision values.Value
	Round    int
	// Rounds is the number of end-of-rounds executed.
	Rounds int
	// Crashed reports whether the crash schedule stopped the node.
	Crashed bool

	// Reconnects counts hub connections re-established after a loss.
	Reconnects int
	// ReplayedFrames counts frames the hub re-sent from the session log
	// on resumption (as announced in each Welcome).
	ReplayedFrames int
	// FailedDials counts redial attempts that did not produce a session.
	FailedDials int
	// HeartbeatsAcked counts hub liveness probes this node answered.
	HeartbeatsAcked int
}

// nodeConn is one live hub attachment plus the goroutine pumping it.
type nodeConn struct {
	conn net.Conn
	done chan struct{} // closed when the read pump exits
}

// nodeSession is the cross-connection state of one RunNode call: the
// session identity, the receive cursor, and the decode table that delta
// references resolve against (the resumed stream is a seamless
// continuation, so the table must survive reconnects).
type nodeSession struct {
	cfg    NodeConfig
	token  uint64
	cursor atomic.Uint64 // data frames received on the session
	table  *giraf.ResolveTable
	inbox  chan giraf.Envelope
	acks   chan uint64
}

// dialHub establishes one hub connection: DialContext with a deadline,
// then the Hello/Welcome handshake with the given session token and
// replay cursor (0, 0 for a fresh session). Shared by RunNode's
// per-instance sessions and MuxNode's persistent ones.
func dialHub(ctx context.Context, addr string, dialTimeout time.Duration, token, cursor uint64) (net.Conn, wire.Welcome, error) {
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	dctx, cancel := context.WithTimeout(ctx, dialTimeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, wire.Welcome{}, err
	}
	if err := wire.WriteFrame(conn, wire.EncodeHello(wire.Hello{
		Token:  token,
		Cursor: cursor,
	})); err != nil {
		_ = conn.Close()
		return nil, wire.Welcome{}, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(dialTimeout))
	var welcome wire.Welcome
	for {
		frame, err := wire.ReadFrame(conn)
		if err != nil {
			_ = conn.Close()
			return nil, wire.Welcome{}, fmt.Errorf("awaiting welcome: %w", err)
		}
		kind, ok := wire.ControlKind(frame)
		if !ok {
			_ = conn.Close()
			return nil, wire.Welcome{}, fmt.Errorf("awaiting welcome: got a data frame")
		}
		if kind != wire.ControlWelcome {
			continue // e.g. a heartbeat that raced the handshake
		}
		welcome, err = wire.DecodeWelcome(frame)
		if err != nil {
			_ = conn.Close()
			return nil, wire.Welcome{}, fmt.Errorf("awaiting welcome: %w", err)
		}
		break
	}
	_ = conn.SetReadDeadline(time.Time{})
	return conn, welcome, nil
}

// dial establishes one connection via dialHub. On success the session
// token and cursor are synchronized with the hub.
func (s *nodeSession) dial(ctx context.Context) (net.Conn, *wire.Welcome, error) {
	conn, welcome, err := dialHub(ctx, s.cfg.HubAddr, s.cfg.DialTimeout, s.token, s.cursor.Load())
	if err != nil {
		return nil, nil, err
	}
	s.token = welcome.Token
	// The hub's resume position is authoritative: it is the node's cursor
	// for a clean resumption and 0 when the session is fresh (including
	// "resumed" into a restarted hub that no longer knows the token).
	s.cursor.Store(welcome.ResumeFrom)
	return conn, &welcome, nil
}

// startReader pumps one connection: data frames advance the cursor and
// resolve into the inbox; heartbeats queue acks. The returned done
// channel closes when the connection dies.
func (s *nodeSession) startReader(ctx context.Context, conn net.Conn) *nodeConn {
	nc := &nodeConn{conn: conn, done: make(chan struct{})}
	go func() {
		defer close(nc.done)
		for {
			frame, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			if kind, ok := wire.ControlKind(frame); ok {
				if kind == wire.ControlHeartbeat {
					if hb, err := wire.DecodeHeartbeat(frame); err == nil {
						select {
						case s.acks <- hb.Seq:
						default: // ack queue full: the next probe re-triggers
						}
					}
				}
				continue
			}
			// Every data frame occupies one slot of the session stream, so
			// the cursor advances even for frames that fail to decode —
			// otherwise a resumption would replay the garbage forever.
			s.cursor.Add(1)
			delta, err := wire.DecodeDeltaEnvelope(frame)
			if err != nil {
				continue // corrupt frame from a byzantine-ish peer: skip
			}
			env, err := s.table.Resolve(delta)
			if err != nil {
				continue // dangling reference (sender's frame was lost): skip
			}
			select {
			case s.inbox <- env:
			case <-ctx.Done():
				return
			}
		}
	}()
	return nc
}

// reconnect redials with the policy's backoff schedule until a session is
// re-established, attempts run out (ErrHubLost), or ctx dies.
func (s *nodeSession) reconnect(ctx context.Context, res *NodeResult) (net.Conn, error) {
	if !s.cfg.Reconnect.enabled() {
		return nil, ErrHubLost
	}
	var lastErr error
	for attempt := 0; attempt < s.cfg.Reconnect.MaxAttempts; attempt++ {
		wait := time.NewTimer(s.cfg.Reconnect.backoff(attempt))
		select {
		case <-ctx.Done():
			wait.Stop()
			return nil, ctx.Err()
		case <-wait.C:
		}
		conn, welcome, err := s.dial(ctx)
		if err != nil {
			res.FailedDials++
			lastErr = err
			continue
		}
		res.Reconnects++
		res.ReplayedFrames += int(welcome.Pending)
		return conn, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w: %d attempts exhausted, last: %v", ErrHubLost, s.cfg.Reconnect.MaxAttempts, lastErr)
	}
	return nil, ErrHubLost
}

// RunNode connects to the hub and drives the automaton until it decides or
// the timeout expires. Connection losses are survived per the config's
// ReconnectPolicy; a node that exhausts its reconnect budget returns its
// partial result alongside an error wrapping ErrHubLost.
func RunNode(ctx context.Context, cfg NodeConfig) (*NodeResult, error) {
	if cfg.Automaton == nil {
		return nil, errors.New("tcpnet: nil automaton")
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	sess := &nodeSession{
		cfg:   cfg,
		table: giraf.NewResolveTable(),
		inbox: make(chan giraf.Envelope, 1024),
		acks:  make(chan uint64, 16),
	}
	conn, _, err := sess.dial(ctx)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dialing hub: %w", err)
	}
	defer func() { _ = conn.Close() }()

	proc := giraf.NewProc(cfg.Automaton)
	res := &NodeResult{}
	reader := sess.startReader(ctx, conn)

	// lose tears the current connection down and either resumes the
	// session or reports the run dead (ErrHubLost / ctx expiry).
	lose := func() error {
		_ = conn.Close()
		<-reader.done
		// Stale probe acks belong to the dead connection.
		for {
			select {
			case <-sess.acks:
				continue
			default:
			}
			break
		}
		next, rerr := sess.reconnect(ctx, res)
		if rerr != nil {
			return rerr
		}
		conn = next
		reader = sess.startReader(ctx, conn)
		return nil
	}

	grace := cfg.JoinGrace
	if grace <= 0 {
		grace = 3 * interval
	}
	graceOver := time.After(grace)
	started := false

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	// Writer with per-connection delta state: each payload crosses this
	// node's uplink in full exactly once per connection; rebroadcasts of
	// it are 16-byte fingerprint references. The tracker must reset with
	// every reconnect — a reference may only point at the previous frame
	// of the same stream, and frames in flight when the link died may
	// never have reached the hub.
	writer := wire.NewEnvelopeWriter(conn)
	for {
		select {
		case <-ctx.Done():
			res.Rounds = proc.CurrentRound()
			return res, nil
		case <-reader.done:
			if err := lose(); err != nil {
				res.Rounds = proc.CurrentRound()
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return res, nil // the run's own timeout: a normal undecided exit
				}
				return res, err
			}
			writer = wire.NewEnvelopeWriter(conn)
		case seq := <-sess.acks:
			if err := wire.WriteFrame(conn, wire.EncodeHeartbeatAck(wire.Heartbeat{Seq: seq})); err == nil {
				res.HeartbeatsAcked++
			}
			// A failed ack write means the connection is dying; the read
			// pump notices and the reader.done arm recovers.
		case env := <-sess.inbox:
			proc.Receive(env)
		case <-graceOver:
			started = true
		case <-ticker.C:
			if !started {
				continue // still consuming the hub replay
			}
			if cfg.CrashAfterRounds > 0 && proc.CurrentRound() >= cfg.CrashAfterRounds {
				res.Crashed = true
				res.Rounds = proc.CurrentRound()
				return res, nil
			}
			computing := proc.CurrentRound()
			env, ok := proc.EndOfRound()
			if proc.Halted() {
				d := proc.Decision()
				res.Decided = true
				res.Decision = d.Value
				res.Round = computing
				res.Rounds = proc.CurrentRound()
				return res, nil
			}
			if !ok {
				continue
			}
			if werr := writer.WriteEnvelope(env); werr != nil {
				// The broadcast did not leave this machine; the next round
				// rebroadcasts the full state, so recovery loses nothing
				// the model is not already allowed to lose (an
				// asynchronous round).
				if err := lose(); err != nil {
					res.Rounds = proc.CurrentRound()
					if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						return res, nil
					}
					return res, err
				}
				writer = wire.NewEnvelopeWriter(conn)
			}
		}
	}
}
