package tcpnet

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"anonconsensus/internal/core"
	"anonconsensus/internal/values"
	"anonconsensus/internal/wire"
)

// runCluster starts a hub and n concurrent nodes, returning their results.
func runCluster(t *testing.T, n int, interval time.Duration, mkAut func(i int) NodeConfig, opts ...HubOption) []*NodeResult {
	t.Helper()
	hub, err := NewHub("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	results := make([]*NodeResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		cfg := mkAut(i)
		cfg.HubAddr = hub.Addr()
		if cfg.Interval == 0 {
			cfg.Interval = interval
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = RunNode(context.Background(), cfg)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return results
}

func TestTCPConsensusES(t *testing.T) {
	props := core.DistinctProposals(4)
	results := runCluster(t, 4, 8*time.Millisecond, func(i int) NodeConfig {
		return NodeConfig{
			Automaton: core.NewES(props[i]),
			Timeout:   30 * time.Second,
		}
	})
	decided := values.NewSet()
	for i, r := range results {
		if !r.Decided {
			t.Fatalf("node %d undecided after %d rounds", i, r.Rounds)
		}
		decided.Add(r.Decision)
	}
	if decided.Len() != 1 {
		t.Fatalf("agreement violated over TCP: %v", decided)
	}
	if v, _ := decided.Max(); !core.ProposalSet(props).Contains(v) {
		t.Fatalf("validity violated: %v", v)
	}
}

func TestTCPConsensusESS(t *testing.T) {
	props := core.DistinctProposals(3)
	results := runCluster(t, 3, 8*time.Millisecond, func(i int) NodeConfig {
		return NodeConfig{
			Automaton: core.NewESS(props[i]),
			Timeout:   40 * time.Second,
		}
	})
	decided := values.NewSet()
	for i, r := range results {
		if !r.Decided {
			t.Fatalf("node %d undecided", i)
		}
		decided.Add(r.Decision)
	}
	if decided.Len() != 1 {
		t.Fatalf("agreement violated over TCP: %v", decided)
	}
}

func TestTCPConsensusWithForwardDelays(t *testing.T) {
	// Shape the hub so one connection gets its frames late — the TCP
	// analogue of a slow link. Eventual synchrony still holds (delays are
	// bounded below the decision horizon), so everyone decides.
	props := core.DistinctProposals(3)
	slow := func(connIndex int) time.Duration {
		if connIndex == 1 {
			return 3 * time.Millisecond
		}
		return 0
	}
	results := runCluster(t, 3, 10*time.Millisecond, func(i int) NodeConfig {
		return NodeConfig{
			Automaton: core.NewES(props[i]),
			Timeout:   40 * time.Second,
		}
	}, WithForwardDelay(slow))
	decided := values.NewSet()
	for i, r := range results {
		if !r.Decided {
			t.Fatalf("node %d undecided", i)
		}
		decided.Add(r.Decision)
	}
	if decided.Len() != 1 {
		t.Fatalf("agreement violated: %v", decided)
	}
}

func TestTCPNodeValidation(t *testing.T) {
	if _, err := RunNode(context.Background(), NodeConfig{}); err == nil {
		t.Error("nil automaton accepted")
	}
	if _, err := RunNode(context.Background(), NodeConfig{
		HubAddr:   "127.0.0.1:1", // nothing listens here
		Automaton: core.NewES(values.Num(1)),
		Timeout:   time.Second,
	}); err == nil {
		t.Error("dial failure not reported")
	}
}

func TestHubCloseIdempotent(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestTCPLateJoinerStillAgrees(t *testing.T) {
	// Unknown participation: a node joins a while after the others
	// started. Agreement must hold among all deciders (the laggard may
	// adopt the already-decided value or decide in a later round).
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	props := core.DistinctProposals(3)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		decided = values.NewSet()
	)
	start := func(i int, delay time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(delay)
			res, err := RunNode(context.Background(), NodeConfig{
				HubAddr:   hub.Addr(),
				Automaton: core.NewES(props[i]),
				Interval:  8 * time.Millisecond,
				Timeout:   30 * time.Second,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if res.Decided {
				mu.Lock()
				decided.Add(res.Decision)
				mu.Unlock()
			}
		}()
	}
	start(0, 0)
	start(1, 0)
	start(2, 30*time.Millisecond) // joins a few rounds late
	wg.Wait()
	if decided.Len() > 1 {
		t.Fatalf("agreement violated with late joiner: %v", decided)
	}
	if decided.Len() == 0 {
		t.Fatal("nobody decided")
	}
}

func TestTCPNodeCrashSchedule(t *testing.T) {
	// One node crashes after two rounds; the survivors still agree and the
	// crashed node reports Crashed rather than an error (crash-fault model).
	props := core.DistinctProposals(3)
	results := runCluster(t, 3, 8*time.Millisecond, func(i int) NodeConfig {
		cfg := NodeConfig{
			Automaton: core.NewES(props[i]),
			Timeout:   30 * time.Second,
		}
		if i == 0 {
			cfg.CrashAfterRounds = 2
		}
		return cfg
	})
	if !results[0].Crashed {
		t.Error("node 0 should report Crashed")
	}
	decided := values.NewSet()
	for i, r := range results[1:] {
		if !r.Decided {
			t.Fatalf("survivor %d undecided after %d rounds", i+1, r.Rounds)
		}
		decided.Add(r.Decision)
	}
	if decided.Len() != 1 {
		t.Fatalf("agreement violated among survivors: %v", decided)
	}
}

// waitForConns blocks until the hub has n attached sessions: Dial returns
// at the kernel handshake, before the hub's accept loop (and, for raw
// clients, the handshake-window classification) runs, and frames forwarded
// before registration reach late registrants only via the fault-free
// replay path — exactly what these tests must not measure.
func waitForConns(t *testing.T, h *Hub, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := h.attached()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("hub registered %d connections, want %d", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHubForwardFaultDuplication(t *testing.T) {
	// A fault that duplicates every forward: a frame sent once arrives
	// twice at every peer — the hub-level realization of a scenario's
	// duplication dimension (receivers dedup by set semantics, so this is
	// safe for the algorithms; here we assert the raw relay behavior).
	hub, err := NewHub("127.0.0.1:0", WithForwardFault(func(from, to, serial int) (bool, bool) {
		return false, true
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	sender, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	receiver, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer receiver.Close()

	waitForConns(t, hub, 2)
	frame := []byte("scenario-dup-frame")
	if err := wire.WriteFrame(sender, frame); err != nil {
		t.Fatal(err)
	}
	receiver.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 2; i++ {
		got, err := wire.ReadFrame(receiver)
		if err != nil {
			t.Fatalf("copy %d: %v", i+1, err)
		}
		if string(got) != string(frame) {
			t.Fatalf("copy %d: got %q", i+1, got)
		}
	}
}

func TestHubForwardFaultLoss(t *testing.T) {
	// A fault that drops every forward: peers receive nothing live. The
	// frame still lands in the hub log, so a later joiner replays it —
	// loss hits deliveries, not the broadcast itself.
	hub, err := NewHub("127.0.0.1:0", WithForwardFault(func(from, to, serial int) (bool, bool) {
		return true, false
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	sender, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	receiver, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer receiver.Close()

	waitForConns(t, hub, 2)
	if err := wire.WriteFrame(sender, []byte("lost-frame")); err != nil {
		t.Fatal(err)
	}
	receiver.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if frame, err := wire.ReadFrame(receiver); err == nil {
		t.Fatalf("dropped frame delivered anyway: %q", frame)
	}

	// The replay path is fault-free: a late joiner still catches up.
	late, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	late.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := wire.ReadFrame(late)
	if err != nil {
		t.Fatalf("late joiner replay: %v", err)
	}
	if string(got) != "lost-frame" {
		t.Fatalf("late joiner got %q", got)
	}
}
