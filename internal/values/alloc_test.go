package values

import "testing"

// Allocation pins for the canonical-form hot paths: once a set has
// settled, identity operations must be allocation-free. Future PRs that
// regress the cache fail here, not in a benchmark nobody reruns.

func TestSetKeyAllocsWarm(t *testing.T) {
	s := NewSet(Num(1), Num(2), Num(3), Bot)
	_ = s.Key() // settle
	if n := testing.AllocsPerRun(100, func() { _ = s.Key() }); n != 0 {
		t.Errorf("Set.Key on settled set: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = s.Fingerprint() }); n != 0 {
		t.Errorf("Set.Fingerprint on settled set: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = s.EncodedSize() }); n != 0 {
		t.Errorf("Set.EncodedSize on settled set: %v allocs/op, want 0", n)
	}
	t2 := s.Clone()
	if n := testing.AllocsPerRun(100, func() { _ = s.Equal(t2) }); n != 0 {
		t.Errorf("Set.Equal on settled sets: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _, _ = s.Max() }); n != 0 {
		t.Errorf("Set.Max on settled set: %v allocs/op, want 0", n)
	}
}

func TestEncodedSizeNeedsNoKey(t *testing.T) {
	// EncodedSize on a fresh (never keyed) set must not materialize the key
	// string: exactly one canonical-form allocation set, no string build.
	mk := func() Set { return NewSet(Num(1), Num(22), Num(333)) }
	withKey := testing.AllocsPerRun(100, func() { _ = mk().Key() })
	withoutKey := testing.AllocsPerRun(100, func() { _ = mk().EncodedSize() })
	if withoutKey >= withKey {
		t.Errorf("EncodedSize allocates as much as Key (%v >= %v): key string is being built", withoutKey, withKey)
	}
}
