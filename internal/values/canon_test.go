package values

import (
	"testing"
	"testing/quick"
)

// TestFingerprintMatchesKeyHash pins the canonical-form invariant the rest
// of the repository relies on: Set.Fingerprint() (computed incrementally,
// without building the key) equals FingerprintString(Set.Key()).
func TestFingerprintMatchesKeyHash(t *testing.T) {
	cases := []Set{
		NewSet(),
		NewSet(Num(1)),
		NewSet(Num(1), Num(2), Bot),
		NewSet("a", "bb", "ccc", "Σ⊥"),
	}
	for _, s := range cases {
		if got, want := s.Fingerprint(), FingerprintString(s.Key()); got != want {
			t.Errorf("set %v: incremental fingerprint %v != key hash %v", s, got, want)
		}
		if got, want := s.EncodedSize(), len(s.Key()); got != want {
			t.Errorf("set %v: EncodedSize %d != len(Key) %d", s, got, want)
		}
	}
	// Property form over random sets.
	err := quick.Check(func(raw []string) bool {
		s := NewSet()
		for _, v := range raw {
			s.Add(Value(v))
		}
		return s.Fingerprint() == FingerprintString(s.Key()) &&
			s.EncodedSize() == len(s.Key())
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// TestFingerprintEquality: fingerprint equality ⇔ set equality on random
// pairs (the practical reading of the 128-bit invariant).
func TestFingerprintEquality(t *testing.T) {
	err := quick.Check(func(xs, ys []uint8) bool {
		a, b := NewSet(), NewSet()
		for _, x := range xs {
			a.Add(Num(int64(x)))
		}
		for _, y := range ys {
			b.Add(Num(int64(y)))
		}
		return (a.Fingerprint() == b.Fingerprint()) == a.Equal(b)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// TestCanonInvalidation: mutation through any alias invalidates the cached
// canonical form; clones are independent.
func TestCanonInvalidation(t *testing.T) {
	s := NewSet(Num(1))
	k1 := s.Key()
	alias := s // plain copy shares storage and cache
	alias.Add(Num(2))
	if s.Key() == k1 {
		t.Error("mutation through alias did not invalidate the original's cached key")
	}
	if !s.Contains(Num(2)) {
		t.Error("alias mutation not visible (map aliasing broken)")
	}

	c := s.Clone()
	key := s.Key()
	c.Add(Num(3))
	if s.Key() != key {
		t.Error("clone mutation leaked into original's cache")
	}
	if c.Key() == key {
		t.Error("clone's cache not invalidated by its own mutation")
	}

	w := s.Without(Num(1))
	if w.Key() == s.Key() {
		t.Error("Without did not invalidate the derived set's cache")
	}
}

// TestCanonZeroSet: the zero Set supports reads and lazy allocation.
func TestCanonZeroSet(t *testing.T) {
	var s Set
	if s.Key() != "S" || s.EncodedSize() != 1 || !s.IsEmpty() {
		t.Errorf("zero set canonical form wrong: key %q size %d", s.Key(), s.EncodedSize())
	}
	s.Add(Num(7))
	if s.Key() == "S" || s.Len() != 1 {
		t.Error("Add on zero set did not take effect")
	}
}

// TestMaxUsesCanon: Max agrees before and after the canonical form exists.
func TestMaxUsesCanon(t *testing.T) {
	s := NewSet(Num(3), Num(9), Num(4))
	before, ok1 := s.Max()
	s.Key() // settle the canonical form
	after, ok2 := s.Max()
	if !ok1 || !ok2 || before != after || after != Num(9) {
		t.Errorf("Max diverged: %v/%v vs %v/%v", before, ok1, after, ok2)
	}
}

// TestIntern: interned values are structurally equal and stable.
func TestIntern(t *testing.T) {
	a := Intern(Value("hello"))
	b := Intern(Value("hel" + "lo"))
	if a != b {
		t.Error("interned copies differ")
	}
	if Intern("") != "" {
		t.Error("empty value must intern to itself")
	}
	if got := Intern(Num(123456)); got != Num(123456) {
		t.Errorf("intern changed value: %q", got)
	}
}

// TestHasherLengthPrefix pins the equivalence writeLengthPrefixed relies
// on: hashing "<len>:<s>" byte by byte equals hashing the built string.
func TestHasherLengthPrefix(t *testing.T) {
	for _, s := range []string{"", "x", "0123456789", string(Bot)} {
		var a, b Hasher
		a.writeLengthPrefixed(s)
		var sb []byte
		sb = append(sb, []byte(itoa(len(s)))...)
		sb = append(sb, ':')
		sb = append(sb, s...)
		b.WriteString(string(sb))
		if a.Sum() != b.Sum() {
			t.Errorf("length-prefix hash mismatch for %q", s)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}
