package values

import (
	"fmt"
	"strconv"
	"strings"
)

// EncodeSet packs a value set into a single Value so that sets can be
// stored in registers (Proposition 2 stores a process's accumulated set in
// its single-writer register). The encoding is canonical: equal sets encode
// to equal Values.
func EncodeSet(s Set) Value {
	var b strings.Builder
	b.WriteString("set!")
	for _, v := range s.Sorted() {
		encodeString(&b, string(v))
	}
	return Value(b.String())
}

// DecodeSet unpacks a Value produced by EncodeSet.
func DecodeSet(v Value) (Set, error) {
	s := string(v)
	if !strings.HasPrefix(s, "set!") {
		return Set{}, fmt.Errorf("values: %q is not an encoded set", s)
	}
	rest := s[len("set!"):]
	out := NewSet()
	for len(rest) > 0 {
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return Set{}, fmt.Errorf("values: truncated set encoding %q", s)
		}
		n, err := strconv.Atoi(rest[:colon])
		if err != nil || n < 0 || colon+1+n > len(rest) {
			return Set{}, fmt.Errorf("values: corrupt set encoding %q", s)
		}
		out.Add(Value(rest[colon+1 : colon+1+n]))
		rest = rest[colon+1+n:]
	}
	return out, nil
}

// EncodePair packs (rank, v) into a single Value whose string order is
// (rank, v) lexicographic — Proposition 1 stores (value, |history|) pairs
// in the weak-set and resolves reads by maximal history length, then
// maximal value. Rank must be non-negative.
func EncodePair(rank int, v Value) Value {
	if rank < 0 {
		panic(fmt.Sprintf("values.EncodePair: negative rank %d", rank))
	}
	return Value(fmt.Sprintf("pair!%016d:%s", rank, string(v)))
}

// DecodePair unpacks a Value produced by EncodePair.
func DecodePair(p Value) (rank int, v Value, err error) {
	s := string(p)
	if !strings.HasPrefix(s, "pair!") || len(s) < len("pair!")+17 || s[len("pair!")+16] != ':' {
		return 0, "", fmt.Errorf("values: %q is not an encoded pair", s)
	}
	rank, err = strconv.Atoi(s[len("pair!") : len("pair!")+16])
	if err != nil {
		return 0, "", fmt.Errorf("values: corrupt pair rank in %q: %w", s, err)
	}
	return rank, Value(s[len("pair!")+17:]), nil
}
