package values

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeSetRoundTrip(t *testing.T) {
	f := func(bs []byte) bool {
		s := randSet(bs)
		got, err := DecodeSet(EncodeSet(s))
		return err == nil && got.Equal(s)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEncodeSetCanonical(t *testing.T) {
	a := NewSet(Num(2), Num(1))
	b := NewSet(Num(1), Num(2))
	if EncodeSet(a) != EncodeSet(b) {
		t.Error("equal sets must encode identically")
	}
}

func TestDecodeSetRejectsJunk(t *testing.T) {
	for _, raw := range []Value{"", "nope", "set!5:ab", "set!-1:", "set!x:"} {
		if _, err := DecodeSet(raw); err == nil {
			t.Errorf("DecodeSet(%q) succeeded", string(raw))
		}
	}
}

func TestDecodeSetEmpty(t *testing.T) {
	got, err := DecodeSet(EncodeSet(NewSet()))
	if err != nil || !got.IsEmpty() {
		t.Errorf("empty set round trip: %v, %v", got, err)
	}
}

func TestEncodePairOrder(t *testing.T) {
	// (rank, value) lexicographic: higher rank dominates, then value.
	lo := EncodePair(1, Num(999))
	hi := EncodePair(2, Num(0))
	if !lo.Less(hi) {
		t.Error("higher rank must dominate regardless of value")
	}
	a := EncodePair(3, Num(1))
	b := EncodePair(3, Num(2))
	if !a.Less(b) {
		t.Error("same rank must fall back to value order")
	}
}

func TestEncodeDecodePairRoundTrip(t *testing.T) {
	f := func(rank uint16, raw byte) bool {
		v := Num(int64(raw))
		r, got, err := DecodePair(EncodePair(int(rank), v))
		return err == nil && r == int(rank) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodePairRejectsJunk(t *testing.T) {
	for _, raw := range []Value{"", "pair!", "pair!123", "set!1:a"} {
		if _, _, err := DecodePair(raw); err == nil {
			t.Errorf("DecodePair(%q) succeeded", string(raw))
		}
	}
}

func TestEncodePairNegativeRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative rank must panic")
		}
	}()
	EncodePair(-1, Num(1))
}

func TestQuickDecodeSetNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		_, _ = DecodeSet(Value(junk))
		_, _ = DecodeSet(Value("set!" + string(junk)))
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodePairNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		_, _, _ = DecodePair(Value(junk))
		_, _, _ = DecodePair(Value("pair!" + string(junk)))
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
