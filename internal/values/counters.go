package values

import (
	"fmt"
	"strings"

	"anonconsensus/internal/ordered"
)

// Counters is the per-process table C of Algorithm 3: a counter for every
// proposal history heard of so far. It is the paper's pseudo leader
// election state — the anonymous replacement for per-ID heartbeat counters
// in classical Ω implementations.
//
// Missing histories implicitly have counter 0 (the paper's "∀H, C[H] := 0"
// without allocating memory for unheard histories). Entries whose counter
// is 0 are not stored, so two Counters with equal keys represent the same
// abstract function H ↦ C[H].
type Counters struct {
	entries map[string]counterEntry
}

type counterEntry struct {
	hist History
	n    int
}

// NewCounters returns an empty counter table (all counters 0).
func NewCounters() Counters {
	return Counters{entries: make(map[string]counterEntry)}
}

// Get returns C[h], which is 0 for histories never heard of.
func (c Counters) Get(h History) int {
	e, ok := c.entries[h.Key()]
	if !ok {
		return 0
	}
	return e.n
}

// Len returns the number of histories with a non-zero counter.
func (c Counters) Len() int { return len(c.entries) }

// set stores C[h] = n, dropping the entry when n <= 0 to keep the
// representation canonical.
func (c *Counters) set(h History, n int) {
	if c.entries == nil {
		c.entries = make(map[string]counterEntry)
	}
	k := h.Key()
	if n <= 0 {
		delete(c.entries, k)
		return
	}
	c.entries[k] = counterEntry{hist: h, n: n}
}

// Set stores C[h] = n directly. It exists for wire codecs and tests;
// Algorithm 3 itself only ever mutates counters through MinMerge and Bump.
func (c *Counters) Set(h History, n int) { c.set(h, n) }

// Clone returns an independent copy of c.
func (c Counters) Clone() Counters {
	out := Counters{entries: make(map[string]counterEntry, len(c.entries))}
	//detlint:ordered map copy; the resulting table is visit-order-independent
	for k, e := range c.entries {
		out.entries[k] = e
	}
	return out
}

// MinMerge implements Algorithm 3 line 8: ∀H, C[H] := min_{m∈M} m.C[H].
// Since absent histories count as 0, only histories present in *every*
// message survive with a positive counter.
func MinMerge(msgs []Counters) Counters {
	out := NewCounters()
	if len(msgs) == 0 {
		return out
	}
	//detlint:ordered per-key min across msgs; entries are independent, so the merged table is visit-order-independent
	for k, e := range msgs[0].entries {
		minN := e.n
		for _, m := range msgs[1:] {
			other, ok := m.entries[k]
			if !ok {
				minN = 0
				break
			}
			if other.n < minN {
				minN = other.n
			}
		}
		if minN > 0 {
			out.entries[k] = counterEntry{hist: e.hist, n: minN}
		}
	}
	return out
}

// Bump implements Algorithm 3 line 9 for one received history h:
// C[h] := 1 + max{ C[H] | H is a (non-strict) prefix of h }.
func (c *Counters) Bump(h History) {
	best := 0
	//detlint:ordered max over the prefix set is visit-order-independent
	for _, e := range c.entries {
		if e.hist.IsPrefixOf(h) && e.n > best {
			best = e.n
		}
	}
	c.set(h, 1+best)
}

// IsMaximal reports whether C[h] ≥ C[H] for all H — the leader predicate of
// Algorithm 3 line 15 and Definition "leader(k)". With an empty table every
// history is trivially maximal.
func (c Counters) IsMaximal(h History) bool {
	own := c.Get(h)
	//detlint:ordered existential check (any counter above own); visit order cannot change the verdict
	for _, e := range c.entries {
		if e.n > own {
			return false
		}
	}
	return true
}

// MaxEntries returns the histories whose counter is maximal, in canonical
// (key) order, together with the maximal counter value. For an empty table
// it returns (nil, 0).
func (c Counters) MaxEntries() ([]History, int) {
	best := 0
	//detlint:ordered max over counters is visit-order-independent
	for _, e := range c.entries {
		if e.n > best {
			best = e.n
		}
	}
	if best == 0 {
		return nil, 0
	}
	var keys []string
	for _, k := range ordered.Keys(c.entries) {
		if c.entries[k].n == best {
			keys = append(keys, k)
		}
	}
	out := make([]History, len(keys))
	for i, k := range keys {
		out[i] = c.entries[k].hist
	}
	return out, best
}

// Histories returns all stored histories in canonical order.
func (c Counters) Histories() []History {
	keys := ordered.Keys(c.entries)
	out := make([]History, len(keys))
	for i, k := range keys {
		out[i] = c.entries[k].hist
	}
	return out
}

// Key returns the canonical encoding of the table. Two tables have equal
// keys iff they represent the same abstract counter function.
func (c Counters) Key() string {
	keys := ordered.Keys(c.entries)
	var b strings.Builder
	b.WriteString("C")
	for _, k := range keys {
		encodeString(&b, k)
		fmt.Fprintf(&b, "=%d;", c.entries[k].n)
	}
	return b.String()
}

// String implements fmt.Stringer.
func (c Counters) String() string {
	keys := ordered.Keys(c.entries)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		e := c.entries[k]
		parts = append(parts, fmt.Sprintf("%s→%d", e.hist, e.n))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// EncodedSize returns the canonical encoding length in bytes; used for
// message-size accounting (experiment T6).
func (c Counters) EncodedSize() int { return len(c.Key()) }
