package values

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountersGetDefaultZero(t *testing.T) {
	c := NewCounters()
	if got := c.Get(NewHistory(Num(1))); got != 0 {
		t.Errorf("Get on empty table = %d, want 0", got)
	}
	var zero Counters // zero value readable
	if zero.Get(NewHistory(Num(1))) != 0 || zero.Len() != 0 {
		t.Error("zero Counters must read as all-zero")
	}
}

func TestCountersBumpFromZero(t *testing.T) {
	c := NewCounters()
	h := NewHistory(Num(1))
	c.Bump(h)
	if got := c.Get(h); got != 1 {
		t.Errorf("after first Bump, C[h] = %d, want 1", got)
	}
}

func TestCountersBumpUsesNonStrictPrefix(t *testing.T) {
	// Lemma 4 relies on a history being a prefix of itself: bumping the same
	// history repeatedly must increase the counter every time.
	c := NewCounters()
	h := NewHistory(Num(1))
	for i := 1; i <= 5; i++ {
		c.Bump(h)
		if got := c.Get(h); got != i {
			t.Fatalf("after %d bumps, C[h] = %d", i, got)
		}
	}
}

func TestCountersBumpExtension(t *testing.T) {
	// An extension inherits max over prefixes + 1.
	c := NewCounters()
	h := NewHistory(Num(1))
	c.Bump(h) // C[h]=1
	c.Bump(h) // C[h]=2
	g := h.Append(Num(2))
	c.Bump(g)
	if got := c.Get(g); got != 3 {
		t.Errorf("C[extension] = %d, want 3 (= C[prefix]+1)", got)
	}
	// Diverged history does not inherit.
	d := NewHistory(Num(9))
	c.Bump(d)
	if got := c.Get(d); got != 1 {
		t.Errorf("C[diverged] = %d, want 1", got)
	}
}

func TestMinMerge(t *testing.T) {
	h1 := NewHistory(Num(1))
	h2 := NewHistory(Num(2))

	a := NewCounters()
	a.set(h1, 5)
	a.set(h2, 3)
	b := NewCounters()
	b.set(h1, 2) // h2 absent in b → min is 0 → dropped

	m := MinMerge([]Counters{a, b})
	if got := m.Get(h1); got != 2 {
		t.Errorf("MinMerge C[h1] = %d, want 2", got)
	}
	if got := m.Get(h2); got != 0 {
		t.Errorf("MinMerge C[h2] = %d, want 0 (absent in one message)", got)
	}
	// Inputs untouched.
	if a.Get(h1) != 5 || b.Get(h1) != 2 {
		t.Error("MinMerge must not mutate inputs")
	}
}

func TestMinMergeEmptyInput(t *testing.T) {
	m := MinMerge(nil)
	if m.Len() != 0 {
		t.Error("MinMerge(nil) must be empty")
	}
}

func TestIsMaximal(t *testing.T) {
	h1 := NewHistory(Num(1))
	h2 := NewHistory(Num(2))
	c := NewCounters()
	c.set(h1, 4)
	c.set(h2, 2)

	if !c.IsMaximal(h1) {
		t.Error("h1 (counter 4) must be maximal")
	}
	if c.IsMaximal(h2) {
		t.Error("h2 (counter 2) must not be maximal")
	}
	if c.IsMaximal(NewHistory(Num(3))) {
		t.Error("unknown history (counter 0) must not be maximal over counter 4")
	}
	if !NewCounters().IsMaximal(h1) {
		t.Error("every history is maximal in an empty table")
	}
}

func TestMaxEntries(t *testing.T) {
	h1 := NewHistory(Num(1))
	h2 := NewHistory(Num(2))
	c := NewCounters()
	c.set(h1, 4)
	c.set(h2, 4)
	hs, n := c.MaxEntries()
	if n != 4 || len(hs) != 2 {
		t.Fatalf("MaxEntries = %v,%d", hs, n)
	}
	if hs, n := NewCounters().MaxEntries(); hs != nil || n != 0 {
		t.Errorf("MaxEntries on empty = %v,%d", hs, n)
	}
}

func TestCountersKeyCanonical(t *testing.T) {
	h1 := NewHistory(Num(1))
	h2 := NewHistory(Num(2))
	a := NewCounters()
	a.set(h1, 1)
	a.set(h2, 2)
	b := NewCounters()
	b.set(h2, 2)
	b.set(h1, 1)
	if a.Key() != b.Key() {
		t.Error("insertion order must not affect the key")
	}
	b.set(h1, 3)
	if a.Key() == b.Key() {
		t.Error("different counters must differ in key")
	}
}

func TestCountersZeroEntriesDropped(t *testing.T) {
	h := NewHistory(Num(1))
	a := NewCounters()
	a.set(h, 1)
	a.set(h, 0)
	if a.Len() != 0 || a.Key() != NewCounters().Key() {
		t.Error("counter set to 0 must leave table canonical-empty")
	}
}

func TestCountersCloneIndependent(t *testing.T) {
	h := NewHistory(Num(1))
	a := NewCounters()
	a.set(h, 2)
	b := a.Clone()
	b.Bump(h)
	if a.Get(h) != 2 {
		t.Error("Clone must be independent of original")
	}
}

// Property: MinMerge result is pointwise ≤ each input, over random tables.
func TestMinMergePointwiseLEQ(t *testing.T) {
	build := func(bs []byte) Counters {
		c := NewCounters()
		for i := 0; i+1 < len(bs); i += 2 {
			h := randHistory(bs[i : i+1])
			c.set(h, int(bs[i+1]%5)+1)
		}
		return c
	}
	f := func(x, y []byte) bool {
		a, b := build(x), build(y)
		m := MinMerge([]Counters{a, b})
		for _, h := range m.Histories() {
			if m.Get(h) > a.Get(h) || m.Get(h) > b.Get(h) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: after Bump(h), h is maximal among all stored prefixes of h.
func TestBumpMakesBumpedAtLeastPrefixMax(t *testing.T) {
	f := func(x []byte, y []byte) bool {
		c := NewCounters()
		base := randHistory(x)
		c.Bump(base)
		c.Bump(base)
		h := base
		for _, e := range y {
			h = h.Append(Num(int64(e % 3)))
		}
		before := c.Get(base) // h extends base, so Bump(h) must exceed this
		c.Bump(h)
		return c.Get(h) >= before+1
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
