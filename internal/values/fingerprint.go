package values

import (
	"fmt"
	"math/bits"
)

// Fingerprint is a 128-bit structural fingerprint of a canonical encoding.
// Throughout the repository fingerprint equality is treated as equivalent
// to structural equality (the canonical-form invariant, see PERFORMANCE.md):
// every fingerprint is the FNV-1a 128 hash of a canonical key, keys are
// injective by construction, and 128 bits make accidental collisions
// vanishingly unlikely, so fingerprints are used as O(1) identity for set
// membership, inbox deduplication and delta broadcast references.
//
// The zero Fingerprint never arises from hashing (the FNV offset basis is
// non-zero), so it can serve as an "absent" sentinel.
type Fingerprint struct {
	Hi, Lo uint64
}

// IsZero reports whether f is the absent sentinel.
func (f Fingerprint) IsZero() bool { return f.Hi == 0 && f.Lo == 0 }

// Less orders fingerprints lexicographically (Hi, then Lo); used only to
// keep fingerprint-keyed listings deterministic, never for protocol logic.
func (f Fingerprint) Less(g Fingerprint) bool {
	if f.Hi != g.Hi {
		return f.Hi < g.Hi
	}
	return f.Lo < g.Lo
}

// String implements fmt.Stringer: fixed-width hex.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x%016x", f.Hi, f.Lo)
}

// FNV-1a 128 parameters (en.wikipedia.org/wiki/Fowler–Noll–Vo_hash_function).
const (
	fnvOffsetHi = 0x6c62272e07bb0142
	fnvOffsetLo = 0x62b821756295c58d
	fnvPrimeHi  = 0x0000000001000000 // prime = 2^88 + 2^8 + 0x3b
	fnvPrimeLo  = 0x000000000000013b
)

// Hasher is a streaming FNV-1a 128 hasher over canonical key bytes. The
// zero value is ready to use. It exists so canonical fingerprints can be
// computed incrementally from set elements without materializing the key
// string first.
type Hasher struct {
	hi, lo uint64
	init   bool
}

func (h *Hasher) ensure() {
	if !h.init {
		h.hi, h.lo, h.init = fnvOffsetHi, fnvOffsetLo, true
	}
}

// WriteString folds s into the hash.
func (h *Hasher) WriteString(s string) {
	h.ensure()
	hi, lo := h.hi, h.lo
	for i := 0; i < len(s); i++ {
		lo ^= uint64(s[i])
		// (hi,lo) *= prime, mod 2^128.
		carry, newLo := bits.Mul64(lo, fnvPrimeLo)
		newHi := carry + hi*fnvPrimeLo + lo*fnvPrimeHi
		hi, lo = newHi, newLo
	}
	h.hi, h.lo = hi, lo
}

// WriteByte folds one byte into the hash. The error is always nil; the
// signature matches io.ByteWriter.
func (h *Hasher) WriteByte(b byte) error {
	h.ensure()
	lo := h.lo ^ uint64(b)
	carry, newLo := bits.Mul64(lo, fnvPrimeLo)
	h.hi = carry + h.hi*fnvPrimeLo + lo*fnvPrimeHi
	h.lo = newLo
	return nil
}

// WriteFingerprint folds another fingerprint into the hash (16 big-endian
// bytes), used to fingerprint ordered collections of fingerprints such as
// a whole envelope payload set.
func (h *Hasher) WriteFingerprint(f Fingerprint) {
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(f.Hi >> (56 - 8*i))
		buf[8+i] = byte(f.Lo >> (56 - 8*i))
	}
	h.ensure()
	for _, b := range buf {
		_ = h.WriteByte(b)
	}
}

// writeLengthPrefixed folds the canonical length-prefixed encoding of s
// ("<len>:<s>", exactly what encodeString appends to key strings) into the
// hash, so hashing elements directly matches hashing the built key string.
func (h *Hasher) writeLengthPrefixed(s string) {
	var buf [20]byte
	n := len(buf)
	buf[n-1] = ':'
	i := n - 1
	v := len(s)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	for ; i < n; i++ {
		_ = h.WriteByte(buf[i])
	}
	h.WriteString(s)
}

// Sum returns the current fingerprint.
func (h *Hasher) Sum() Fingerprint {
	h.ensure()
	return Fingerprint{Hi: h.hi, Lo: h.lo}
}

// FingerprintString returns the fingerprint of a canonical key string.
// For every canonical type in this package, hashing the elements
// incrementally and hashing the materialized key agree:
// s.Fingerprint() == FingerprintString(s.Key()).
func FingerprintString(key string) Fingerprint {
	var h Hasher
	h.WriteString(key)
	return h.Sum()
}

// decDigits returns the number of decimal digits of n ≥ 0, the arithmetic
// core of computing canonical encoded sizes without building key strings.
func decDigits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}
