package values

import (
	"strings"
	"testing"
)

// FuzzSetCodec fuzzes the register codec round-trip plus canonical-key
// stability: decode(encode(s)) must equal s with an identical key and
// fingerprint, and DecodeSet must never panic on arbitrary input.
func FuzzSetCodec(f *testing.F) {
	f.Add("a,b,c")
	f.Add("")
	f.Add("x")
	f.Add("aa,aa,aa")
	f.Add("⊥,Σ,ε")
	f.Fuzz(func(t *testing.T, raw string) {
		s := NewSet()
		for _, part := range strings.Split(raw, ",") {
			if part != "" {
				s.Add(Value(part))
			}
		}
		enc := EncodeSet(s)
		dec, err := DecodeSet(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !dec.Equal(s) {
			t.Fatalf("round-trip changed the set: %v -> %v", s, dec)
		}
		if dec.Key() != s.Key() {
			t.Fatalf("round-trip changed the canonical key: %q -> %q", s.Key(), dec.Key())
		}
		if dec.Fingerprint() != s.Fingerprint() {
			t.Fatalf("round-trip changed the fingerprint")
		}
		// Arbitrary input must be rejected or decoded, never panic; on
		// success the canonical re-encoding must be a fixpoint.
		if g, err := DecodeSet(Value(raw)); err == nil {
			re, err := DecodeSet(EncodeSet(g))
			if err != nil || !re.Equal(g) {
				t.Fatalf("re-encoding of decoded garbage is not a fixpoint: %v", err)
			}
		}
	})
}

// FuzzPairCodec fuzzes the (rank, value) pair codec the register
// constructions use.
func FuzzPairCodec(f *testing.F) {
	f.Add(0, "v")
	f.Add(41, "")
	f.Add(1<<30, "x:y!z")
	f.Fuzz(func(t *testing.T, rank int, val string) {
		if rank < 0 {
			rank = -rank
		}
		p := EncodePair(rank, Value(val))
		r, v, err := DecodePair(p)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if r != rank || v != Value(val) {
			t.Fatalf("round-trip changed pair: (%d,%q) -> (%d,%q)", rank, val, r, v)
		}
		// Arbitrary input: no panic.
		_, _, _ = DecodePair(Value(val))
	})
}
