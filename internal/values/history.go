package values

import (
	"strings"
)

// History is the sequence of values a process has appended to its proposal
// history, one per round (Algorithm 3 line 21). Histories are compared by
// the prefix relation: two processes that ever append different values in
// the same round have diverged forever, which is exactly what makes the
// history a usable pseudo-identity in an anonymous system (§4.1).
//
// A History value is treated as immutable; Append copies.
type History []Value

// NewHistory returns a history containing the single initial value
// (Algorithm 3 line 2: HISTORY := VAL).
func NewHistory(v Value) History { return History{v} }

// Append returns a new history with v appended; h is not modified.
func (h History) Append(v Value) History {
	out := make(History, len(h)+1)
	copy(out, h)
	out[len(h)] = v
	return out
}

// Len returns the number of entries.
func (h History) Len() int { return len(h) }

// Equal reports whether h and g are identical sequences.
func (h History) Equal(g History) bool {
	if len(h) != len(g) {
		return false
	}
	for i := range h {
		if h[i] != g[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether h is a (non-strict) prefix of g. The relation
// is non-strict — every history is a prefix of itself — which is required
// for Lemma 4: the counter of a stable source's (unchanged-this-round)
// history must still be bumpable by one each round.
func (h History) IsPrefixOf(g History) bool {
	if len(h) > len(g) {
		return false
	}
	for i := range h {
		if h[i] != g[i] {
			return false
		}
	}
	return true
}

// Key returns the canonical encoding of the history. Two histories have
// equal keys iff they are Equal.
func (h History) Key() string {
	var b strings.Builder
	b.WriteString("H")
	for _, v := range h {
		encodeString(&b, string(v))
	}
	return b.String()
}

// String implements fmt.Stringer: "[a b ⊥]".
func (h History) String() string {
	parts := make([]string, len(h))
	for i, v := range h {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// EncodedSize returns the canonical encoding length in bytes; used for
// message-size accounting (experiment T6, history growth).
func (h History) EncodedSize() int { return len(h.Key()) }
