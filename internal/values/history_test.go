package values

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randHistory(bs []byte) History {
	if len(bs) == 0 {
		return NewHistory(Num(0))
	}
	h := NewHistory(Num(int64(bs[0] % 4)))
	for _, b := range bs[1:] {
		h = h.Append(Num(int64(b % 4)))
	}
	return h
}

func TestHistoryAppendImmutable(t *testing.T) {
	h := NewHistory(Num(1))
	g := h.Append(Num(2))
	if h.Len() != 1 {
		t.Error("Append must not modify the receiver")
	}
	if g.Len() != 2 || g[1] != Num(2) {
		t.Errorf("Append result wrong: %v", g)
	}
	// Appending to the same base twice must not alias.
	a := h.Append(Num(3))
	b := h.Append(Num(4))
	if a[1] == b[1] {
		t.Error("two appends to same base aliased underlying storage")
	}
}

func TestHistoryPrefix(t *testing.T) {
	h1 := NewHistory(Num(1))
	h12 := h1.Append(Num(2))
	h13 := h1.Append(Num(3))

	tests := []struct {
		name string
		a, b History
		want bool
	}{
		{"self prefix (non-strict)", h12, h12, true},
		{"proper prefix", h1, h12, true},
		{"not prefix (diverged)", h12, h13, false},
		{"longer not prefix of shorter", h12, h1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.IsPrefixOf(tt.b); got != tt.want {
				t.Errorf("IsPrefixOf = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestHistoryDivergenceIsPermanent(t *testing.T) {
	// Once two histories differ at some position, no extensions of them are
	// ever prefix-related (§4.1: diverged histories never become identical).
	f := func(x []byte, extA, extB []byte) bool {
		base := randHistory(x)
		a := base.Append(Num(100)) // diverge here
		b := base.Append(Num(200))
		for _, e := range extA {
			a = a.Append(Num(int64(e)))
		}
		for _, e := range extB {
			b = b.Append(Num(int64(e)))
		}
		return !a.IsPrefixOf(b) && !b.IsPrefixOf(a) && !a.Equal(b)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHistoryKeyCanonical(t *testing.T) {
	f := func(x, y []byte) bool {
		a, b := randHistory(x), randHistory(y)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHistoryKeyUnambiguous(t *testing.T) {
	// ["ab"] vs ["a","b"]
	a := History{Value("ab")}
	b := History{Value("a"), Value("b")}
	if a.Key() == b.Key() {
		t.Errorf("history key collision: %q", a.Key())
	}
}

func TestHistoryString(t *testing.T) {
	h := NewHistory(Value("a")).Append(Bot)
	if got := h.String(); got != "[a ⊥]" {
		t.Errorf("String = %q", got)
	}
}
