package values

import "sync"

// internShards keeps lock contention low when many decoder goroutines
// intern concurrently (tcpnet runs one decoder per connection).
const internShards = 16

// internLimit bounds the total number of interned values and
// internMaxLen the size of any single one, bounding the table to a few
// MiB even when hostile traffic floods it with distinct values. Beyond
// either limit, Intern degrades to the identity function: correctness
// never depends on interning, it only deduplicates backing storage.
const (
	internLimit  = 1 << 16
	internMaxLen = 256
)

type internShard struct {
	mu sync.RWMutex
	m  map[string]Value
}

var internTable [internShards]internShard

func internShardFor(v Value) *internShard {
	var h Hasher
	h.WriteString(string(v))
	return &internTable[h.Sum().Lo%internShards]
}

// Intern returns a Value structurally equal to v that shares backing
// storage with every other interned copy of the same value. Decode paths
// (wire frames, register codecs) intern so that the same proposal value
// arriving in thousands of envelopes is stored once, and map lookups on
// Value keys compare pointers-then-bytes on a shared allocation.
//
// Interning is always semantically a no-op: v itself is returned when the
// value is new and the table is full.
func Intern(v Value) Value {
	if len(v) == 0 || len(v) > internMaxLen {
		return v
	}
	s := internShardFor(v)
	s.mu.RLock()
	got, ok := s.m[string(v)]
	s.mu.RUnlock()
	if ok {
		return got
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if got, ok := s.m[string(v)]; ok {
		return got
	}
	if s.m == nil {
		s.m = make(map[string]Value)
	}
	if len(s.m) >= internLimit/internShards {
		return v
	}
	s.m[string(v)] = v
	return v
}
