package values

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Set is a finite set of Values. The zero value is an empty set ready to
// use for reads; use NewSet or Add (which allocates lazily) to build sets.
//
// Sets are the building block of every payload in the paper: PROPOSED,
// WRITTEN and WRITTENOLD (Algorithms 2–4) are all value sets.
//
// A Set carries a lazily computed canonical form — the ascending element
// slice, a 128-bit fingerprint, the canonical key string and its encoded
// size — which is invalidated on mutation and shared by clones, so Key,
// Fingerprint, Equal, Max, Sorted and EncodedSize are O(1) once a set has
// stopped changing (the steady state of every payload: payloads are
// immutable after an automaton returns them). Aliased copies (plain
// assignment) share both the element map and the cache, exactly mirroring
// the aliasing of the underlying map.
type Set struct {
	m map[Value]struct{}
	c *setCtl
}

// setCtl is the cache cell shared by all aliases of one set (allocated 1:1
// with the element map). The canonical form is published via an atomic
// pointer so concurrent readers of an immutable set can fill the cache
// without a data race; mutation stores nil.
type setCtl struct {
	canon atomic.Pointer[canonSet]
}

// canonSet is an immutable canonical-form snapshot. key is materialized on
// demand (a keyed snapshot replaces the unkeyed one); fingerprint and
// encoded size are always present so identity checks and message-size
// accounting never build strings.
type canonSet struct {
	sorted  []Value
	fp      Fingerprint
	encSize int
	key     string // "" until materialized (real keys always start with "S")
}

// NewSet returns a set containing the given values.
func NewSet(vs ...Value) Set {
	s := Set{m: make(map[Value]struct{}, len(vs)), c: &setCtl{}}
	for _, v := range vs {
		s.m[v] = struct{}{}
	}
	return s
}

// Len returns the number of values in the set.
func (s Set) Len() int { return len(s.m) }

// IsEmpty reports whether the set has no values.
func (s Set) IsEmpty() bool { return len(s.m) == 0 }

// Contains reports whether v is in the set.
func (s Set) Contains(v Value) bool {
	_, ok := s.m[v]
	return ok
}

// loadCanon returns the cached canonical form, or nil when the set is
// dirty or has never been summarized.
func (s Set) loadCanon() *canonSet {
	if s.c == nil {
		return nil
	}
	return s.c.canon.Load()
}

// invalidate drops the cached canonical form after a mutation.
func (s Set) invalidate() {
	if s.c != nil {
		s.c.canon.Store(nil)
	}
}

// ensureCanon returns the canonical form, computing sorted order,
// fingerprint and encoded size (but not the key string) on a miss.
func (s Set) ensureCanon() *canonSet {
	if cs := s.loadCanon(); cs != nil {
		return cs
	}
	sorted := make([]Value, 0, len(s.m))
	//detlint:ordered collected values are canonically sorted by Value.Less on the next line
	for v := range s.m {
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	var h Hasher
	h.WriteString("S")
	size := 1
	for _, v := range sorted {
		h.writeLengthPrefixed(string(v))
		size += decDigits(len(v)) + 1 + len(v)
	}
	cs := &canonSet{sorted: sorted, fp: h.Sum(), encSize: size}
	if s.c != nil {
		s.c.canon.Store(cs)
	}
	return cs
}

// ensureKey returns the canonical form with the key string materialized.
func (s Set) ensureKey() *canonSet {
	cs := s.ensureCanon()
	if cs.key != "" {
		return cs
	}
	var b strings.Builder
	b.Grow(cs.encSize)
	b.WriteString("S")
	for _, v := range cs.sorted {
		encodeString(&b, string(v))
	}
	keyed := &canonSet{sorted: cs.sorted, fp: cs.fp, encSize: cs.encSize, key: b.String()}
	if s.c != nil {
		s.c.canon.Store(keyed)
	}
	return keyed
}

// Add inserts v, allocating the underlying map if needed.
func (s *Set) Add(v Value) {
	if s.m == nil {
		s.m = make(map[Value]struct{})
		s.c = &setCtl{}
	}
	if _, ok := s.m[v]; ok {
		return
	}
	s.m[v] = struct{}{}
	s.invalidate()
}

// AddAll inserts every value of t into s.
func (s *Set) AddAll(t Set) {
	//detlint:ordered set insertion is commutative; the union is visit-order-independent
	for v := range t.m {
		s.Add(v)
	}
}

// remove deletes v (no-op when absent), invalidating the cache.
func (s *Set) remove(v Value) {
	if _, ok := s.m[v]; !ok {
		return
	}
	delete(s.m, v)
	s.invalidate()
}

// Clone returns an independent copy of s. The canonical-form cache is
// carried over (it is an immutable snapshot), so cloning a settled set
// keeps Key/Fingerprint O(1).
func (s Set) Clone() Set {
	c := Set{m: make(map[Value]struct{}, len(s.m)), c: &setCtl{}}
	//detlint:ordered map copy; the resulting set is visit-order-independent
	for v := range s.m {
		c.m[v] = struct{}{}
	}
	if cs := s.loadCanon(); cs != nil {
		c.c.canon.Store(cs)
	}
	return c
}

// Union returns a new set with every value of s and t.
func (s Set) Union(t Set) Set {
	u := s.Clone()
	u.AddAll(t)
	return u
}

// Intersect returns a new set with the values present in both s and t.
func (s Set) Intersect(t Set) Set {
	small, large := s, t
	if large.Len() < small.Len() {
		small, large = large, small
	}
	out := NewSet()
	//detlint:ordered membership filter into a set is commutative
	for v := range small.m {
		if large.Contains(v) {
			out.Add(v)
		}
	}
	return out
}

// IntersectAll intersects all given sets. Following the convention used by
// the algorithms (WRITTEN := ∩_{m∈M_i[k]} m over a non-empty inbox), the
// intersection of zero sets is defined as the empty set: with no evidence,
// nothing counts as written.
func IntersectAll(sets []Set) Set {
	if len(sets) == 0 {
		return NewSet()
	}
	out := sets[0].Clone()
	for _, t := range sets[1:] {
		out = out.Intersect(t)
		if out.IsEmpty() {
			return out
		}
	}
	return out
}

// UnionAll unions all given sets. The result is sized for the worst case
// (all sets disjoint) up front, so building a large union never rehashes.
func UnionAll(sets []Set) Set {
	total := 0
	for _, t := range sets {
		total += t.Len()
	}
	out := Set{m: make(map[Value]struct{}, total), c: &setCtl{}}
	for _, t := range sets {
		//detlint:ordered map copy; the resulting set is visit-order-independent
		for v := range t.m {
			out.m[v] = struct{}{}
		}
	}
	return out
}

// Without returns a new set equal to s minus the given values.
func (s Set) Without(vs ...Value) Set {
	out := s.Clone()
	for _, v := range vs {
		out.remove(v)
	}
	return out
}

// Equal reports whether s and t contain exactly the same values. When both
// sets have settled canonical forms this is a fingerprint comparison.
func (s Set) Equal(t Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	if sc, tc := s.loadCanon(), t.loadCanon(); sc != nil && tc != nil {
		return sc.fp == tc.fp
	}
	//detlint:ordered universally quantified membership check; visit order cannot change the verdict
	for v := range s.m {
		if !t.Contains(v) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every value of s is in t. When both sets have
// settled canonical forms and the same fingerprint they are equal (hence
// trivially subsets) without touching either map.
func (s Set) SubsetOf(t Set) bool {
	if s.Len() > t.Len() {
		return false
	}
	if sc, tc := s.loadCanon(), t.loadCanon(); sc != nil && tc != nil && sc.fp == tc.fp {
		return true
	}
	//detlint:ordered universally quantified membership check; visit order cannot change the verdict
	for v := range s.m {
		if !t.Contains(v) {
			return false
		}
	}
	return true
}

// IsExactly reports whether the set is exactly {v}, the shape tested by the
// decide conditions (Algorithm 2 line 9, Algorithm 3 line 11).
func (s Set) IsExactly(v Value) bool {
	return s.Len() == 1 && s.Contains(v)
}

// Max returns the maximum value of the set and true, or ("", false) for an
// empty set.
func (s Set) Max() (Value, bool) {
	if len(s.m) == 0 {
		return "", false
	}
	if cs := s.loadCanon(); cs != nil {
		return cs.sorted[len(cs.sorted)-1], true
	}
	var (
		best  Value
		found bool
	)
	//detlint:ordered argmax under the strict total order Value.Less is visit-order-independent
	for v := range s.m {
		if !found || best.Less(v) {
			best, found = v, true
		}
	}
	return best, found
}

// Sorted returns the values in ascending order. The returned slice is the
// caller's to keep; the sort itself is cached across calls.
func (s Set) Sorted() []Value {
	cs := s.ensureCanon()
	out := make([]Value, len(cs.sorted))
	copy(out, cs.sorted)
	return out
}

// Key returns the canonical encoding of the set. Two sets have equal keys
// iff they are equal. The string is cached until the next mutation.
func (s Set) Key() string { return s.ensureKey().key }

// Fingerprint returns the 128-bit fingerprint of the canonical encoding:
// Fingerprint() == FingerprintString(Key()), without materializing the
// key. Fingerprint equality is structural equality (canonical-form
// invariant).
func (s Set) Fingerprint() Fingerprint { return s.ensureCanon().fp }

// String implements fmt.Stringer: "{a, b, ⊥}".
func (s Set) String() string {
	parts := make([]string, 0, s.Len())
	for _, v := range s.Sorted() {
		parts = append(parts, v.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// EncodedSize returns the length in bytes of the canonical encoding; the
// simulator uses it to account message sizes (experiment T6). It is
// computed arithmetically alongside the fingerprint — the key string is
// never built just to be measured.
func (s Set) EncodedSize() int { return s.ensureCanon().encSize }
