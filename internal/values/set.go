package values

import (
	"sort"
	"strings"
)

// Set is a finite set of Values. The zero value is an empty set ready to
// use for reads; use NewSet or Add (which allocates lazily) to build sets.
//
// Sets are the building block of every payload in the paper: PROPOSED,
// WRITTEN and WRITTENOLD (Algorithms 2–4) are all value sets.
type Set struct {
	m map[Value]struct{}
}

// NewSet returns a set containing the given values.
func NewSet(vs ...Value) Set {
	s := Set{m: make(map[Value]struct{}, len(vs))}
	for _, v := range vs {
		s.m[v] = struct{}{}
	}
	return s
}

// Len returns the number of values in the set.
func (s Set) Len() int { return len(s.m) }

// IsEmpty reports whether the set has no values.
func (s Set) IsEmpty() bool { return len(s.m) == 0 }

// Contains reports whether v is in the set.
func (s Set) Contains(v Value) bool {
	_, ok := s.m[v]
	return ok
}

// Add inserts v, allocating the underlying map if needed.
func (s *Set) Add(v Value) {
	if s.m == nil {
		s.m = make(map[Value]struct{})
	}
	s.m[v] = struct{}{}
}

// AddAll inserts every value of t into s.
func (s *Set) AddAll(t Set) {
	for v := range t.m {
		s.Add(v)
	}
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := Set{m: make(map[Value]struct{}, len(s.m))}
	for v := range s.m {
		c.m[v] = struct{}{}
	}
	return c
}

// Union returns a new set with every value of s and t.
func (s Set) Union(t Set) Set {
	u := s.Clone()
	u.AddAll(t)
	return u
}

// Intersect returns a new set with the values present in both s and t.
func (s Set) Intersect(t Set) Set {
	small, large := s, t
	if large.Len() < small.Len() {
		small, large = large, small
	}
	out := NewSet()
	for v := range small.m {
		if large.Contains(v) {
			out.Add(v)
		}
	}
	return out
}

// IntersectAll intersects all given sets. Following the convention used by
// the algorithms (WRITTEN := ∩_{m∈M_i[k]} m over a non-empty inbox), the
// intersection of zero sets is defined as the empty set: with no evidence,
// nothing counts as written.
func IntersectAll(sets []Set) Set {
	if len(sets) == 0 {
		return NewSet()
	}
	out := sets[0].Clone()
	for _, t := range sets[1:] {
		out = out.Intersect(t)
		if out.IsEmpty() {
			return out
		}
	}
	return out
}

// UnionAll unions all given sets.
func UnionAll(sets []Set) Set {
	out := NewSet()
	for _, t := range sets {
		out.AddAll(t)
	}
	return out
}

// Without returns a new set equal to s minus the given values.
func (s Set) Without(vs ...Value) Set {
	out := s.Clone()
	for _, v := range vs {
		delete(out.m, v)
	}
	return out
}

// Equal reports whether s and t contain exactly the same values.
func (s Set) Equal(t Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	for v := range s.m {
		if !t.Contains(v) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every value of s is in t.
func (s Set) SubsetOf(t Set) bool {
	if s.Len() > t.Len() {
		return false
	}
	for v := range s.m {
		if !t.Contains(v) {
			return false
		}
	}
	return true
}

// IsExactly reports whether the set is exactly {v}, the shape tested by the
// decide conditions (Algorithm 2 line 9, Algorithm 3 line 11).
func (s Set) IsExactly(v Value) bool {
	return s.Len() == 1 && s.Contains(v)
}

// Max returns the maximum value of the set and true, or ("", false) for an
// empty set.
func (s Set) Max() (Value, bool) {
	var (
		best  Value
		found bool
	)
	for v := range s.m {
		if !found || best.Less(v) {
			best, found = v, true
		}
	}
	return best, found
}

// Sorted returns the values in ascending order.
func (s Set) Sorted() []Value {
	out := make([]Value, 0, len(s.m))
	for v := range s.m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Key returns the canonical encoding of the set. Two sets have equal keys
// iff they are equal.
func (s Set) Key() string {
	var b strings.Builder
	b.WriteString("S")
	for _, v := range s.Sorted() {
		encodeString(&b, string(v))
	}
	return b.String()
}

// String implements fmt.Stringer: "{a, b, ⊥}".
func (s Set) String() string {
	parts := make([]string, 0, s.Len())
	for _, v := range s.Sorted() {
		parts = append(parts, v.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// EncodedSize returns the length in bytes of the canonical encoding; the
// simulator uses it to account message sizes (experiment T6).
func (s Set) EncodedSize() int { return len(s.Key()) }
