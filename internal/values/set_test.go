package values

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randSet builds a small random set from a fuzzed byte slice.
func randSet(bs []byte) Set {
	s := NewSet()
	for _, b := range bs {
		s.Add(Num(int64(b % 16)))
	}
	return s
}

func TestSetBasics(t *testing.T) {
	var zero Set // zero value must be usable for reads
	if !zero.IsEmpty() || zero.Len() != 0 || zero.Contains(Num(1)) {
		t.Error("zero Set must behave as empty")
	}

	s := NewSet(Num(1), Num(2), Num(2))
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 (duplicates collapse)", s.Len())
	}
	if !s.Contains(Num(1)) || s.Contains(Num(3)) {
		t.Error("Contains gives wrong answers")
	}
	s.Add(Num(3))
	if !s.Contains(Num(3)) {
		t.Error("Add(3) did not insert")
	}
}

func TestSetIsExactly(t *testing.T) {
	tests := []struct {
		name string
		s    Set
		v    Value
		want bool
	}{
		{"singleton match", NewSet(Num(5)), Num(5), true},
		{"singleton mismatch", NewSet(Num(5)), Num(6), false},
		{"empty", NewSet(), Num(5), false},
		{"two elements", NewSet(Num(5), Num(6)), Num(5), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.IsExactly(tt.v); got != tt.want {
				t.Errorf("IsExactly = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSetUnionIntersect(t *testing.T) {
	a := NewSet(Num(1), Num(2), Num(3))
	b := NewSet(Num(2), Num(3), Num(4))

	u := a.Union(b)
	if u.Len() != 4 {
		t.Errorf("union size = %d, want 4", u.Len())
	}
	i := a.Intersect(b)
	if !i.Equal(NewSet(Num(2), Num(3))) {
		t.Errorf("intersect = %v", i)
	}
	// Inputs untouched.
	if a.Len() != 3 || b.Len() != 3 {
		t.Error("Union/Intersect must not mutate inputs")
	}
}

func TestIntersectAllEmptyInput(t *testing.T) {
	if got := IntersectAll(nil); !got.IsEmpty() {
		t.Errorf("IntersectAll(nil) = %v, want empty (WRITTEN over empty inbox is ∅)", got)
	}
}

func TestIntersectAllSingle(t *testing.T) {
	a := NewSet(Num(1), Num(2))
	got := IntersectAll([]Set{a})
	if !got.Equal(a) {
		t.Errorf("IntersectAll([a]) = %v, want %v", got, a)
	}
	got.Add(Num(99))
	if a.Contains(Num(99)) {
		t.Error("IntersectAll must return an independent copy")
	}
}

func TestSetWithout(t *testing.T) {
	s := NewSet(Bot, Num(1))
	w := s.Without(Bot)
	if !w.Equal(NewSet(Num(1))) {
		t.Errorf("Without(Bot) = %v", w)
	}
	if !s.Contains(Bot) {
		t.Error("Without must not mutate the receiver")
	}
}

func TestSetMax(t *testing.T) {
	if _, ok := NewSet().Max(); ok {
		t.Error("Max of empty set must report !ok")
	}
	s := NewSet(Num(3), Num(10), Num(7), Bot)
	v, ok := s.Max()
	if !ok || v != Num(10) {
		t.Errorf("Max = %v,%v, want %v", v, ok, Num(10))
	}
}

func TestSetKeyCanonical(t *testing.T) {
	a := NewSet(Num(1), Num(2), Num(3))
	b := NewSet(Num(3), Num(1), Num(2))
	if a.Key() != b.Key() {
		t.Error("equal sets must have equal keys regardless of insertion order")
	}
	c := NewSet(Num(1), Num(2))
	if a.Key() == c.Key() {
		t.Error("different sets must have different keys")
	}
}

func TestSetKeyUnambiguous(t *testing.T) {
	// {"ab"} and {"a","b"} must not collide thanks to length prefixes.
	a := NewSet(Value("ab"))
	b := NewSet(Value("a"), Value("b"))
	if a.Key() == b.Key() {
		t.Errorf("key collision: %q", a.Key())
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}

	t.Run("union commutes", func(t *testing.T) {
		f := func(x, y []byte) bool {
			a, b := randSet(x), randSet(y)
			return a.Union(b).Equal(b.Union(a))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("intersection subset of both", func(t *testing.T) {
		f := func(x, y []byte) bool {
			a, b := randSet(x), randSet(y)
			i := a.Intersect(b)
			return i.SubsetOf(a) && i.SubsetOf(b)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("key determines equality", func(t *testing.T) {
		f := func(x, y []byte) bool {
			a, b := randSet(x), randSet(y)
			return (a.Key() == b.Key()) == a.Equal(b)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("union idempotent", func(t *testing.T) {
		f := func(x []byte) bool {
			a := randSet(x)
			return a.Union(a).Equal(a)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestSetSortedAscending(t *testing.T) {
	s := NewSet(Num(9), Num(1), Num(5))
	got := s.Sorted()
	want := []Value{Num(1), Num(5), Num(9)}
	if len(got) != len(want) {
		t.Fatalf("Sorted len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sorted[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(Bot, Value("a"))
	if got := s.String(); got != "{⊥, a}" {
		t.Errorf("String = %q", got)
	}
}
