// Package values provides the value domain shared by all algorithms in this
// repository: totally ordered proposal values, the special value ⊥ (Bot),
// canonical value sets, proposal histories ordered by the prefix relation,
// and history counters (the data structure behind the paper's pseudo leader
// election, Algorithm 3).
//
// All types in this package have a canonical string encoding (the *key*)
// used for set membership and payload deduplication. Anonymity makes this
// essential: two processes that broadcast identical payloads are
// indistinguishable, so payload equality must be purely structural.
package values

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a proposal value. Values are totally ordered by ordinary string
// comparison; max over a set of values (Algorithm 2 line 12, Algorithm 3
// line 14) uses this order.
//
// The special value Bot (⊥) is reserved and must not be used as an initial
// proposal.
type Value string

// Bot is the special value ⊥ proposed by processes that do not consider
// themselves leaders (Algorithm 3 line 18). It is reserved: user code must
// not propose it. Bot sorts below every valid proposal value.
const Bot Value = "\x00⊥"

// IsBot reports whether v is the special value ⊥.
func (v Value) IsBot() bool { return v == Bot }

// Valid reports whether v may be used as an initial proposal: non-empty and
// distinct from Bot (and not starting with the reserved NUL byte).
func (v Value) Valid() bool {
	return len(v) > 0 && !strings.HasPrefix(string(v), "\x00")
}

// Less reports whether v orders strictly before w.
func (v Value) Less(w Value) bool { return v < w }

// String implements fmt.Stringer. Bot renders as "⊥".
func (v Value) String() string {
	if v.IsBot() {
		return "⊥"
	}
	return string(v)
}

// Num returns a Value whose string order coincides with the numeric order
// of i for i in [0, 10^12). It is the canonical way for examples, tests and
// benchmarks to build numeric proposal values.
func Num(i int64) Value {
	if i < 0 {
		panic(fmt.Sprintf("values.Num: negative value %d", i))
	}
	return Value(fmt.Sprintf("%012d", i))
}

// NumOf parses a Value previously produced by Num. It returns an error for
// non-numeric values.
func NumOf(v Value) (int64, error) {
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("values.NumOf: %q is not a numeric value: %w", string(v), err)
	}
	return n, nil
}

// encodeString appends a length-prefixed copy of s to b. Length prefixing
// makes concatenated encodings unambiguous, which keeps all keys canonical.
func encodeString(b *strings.Builder, s string) {
	var buf [20]byte // enough for any int length
	b.Write(strconv.AppendInt(buf[:0], int64(len(s)), 10))
	b.WriteByte(':')
	b.WriteString(s)
}
