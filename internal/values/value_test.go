package values

import (
	"testing"
	"testing/quick"
)

func TestBotProperties(t *testing.T) {
	if !Bot.IsBot() {
		t.Fatal("Bot.IsBot() = false")
	}
	if Bot.Valid() {
		t.Error("Bot must not be a valid proposal value")
	}
	if Bot.String() != "⊥" {
		t.Errorf("Bot.String() = %q, want ⊥", Bot.String())
	}
	if !Bot.Less(Num(0)) {
		t.Error("Bot must sort below every numeric value")
	}
}

func TestValueValid(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		want bool
	}{
		{"plain", Value("a"), true},
		{"numeric", Num(7), true},
		{"empty", Value(""), false},
		{"bot", Bot, false},
		{"reserved NUL prefix", Value("\x00x"), false},
		{"unicode", Value("héllo"), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Valid(); got != tt.want {
				t.Errorf("Valid(%q) = %v, want %v", string(tt.v), got, tt.want)
			}
		})
	}
}

func TestNumOrderMatchesIntOrder(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		return Num(x).Less(Num(y)) == (x < y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumRoundTrip(t *testing.T) {
	for _, i := range []int64{0, 1, 42, 999999999999} {
		n, err := NumOf(Num(i))
		if err != nil {
			t.Fatalf("NumOf(Num(%d)): %v", i, err)
		}
		if n != i {
			t.Errorf("NumOf(Num(%d)) = %d", i, n)
		}
	}
	if _, err := NumOf(Value("zebra")); err == nil {
		t.Error("NumOf of non-numeric value must fail")
	}
}

func TestNumPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Num(-1) must panic")
		}
	}()
	Num(-1)
}
