package weakset

import (
	"fmt"
	"math"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

// ScheduledOp is one operation the driver injects into a simulated run.
type ScheduledOp struct {
	// Proc is the process executing the operation.
	Proc int
	// Round is the global round after which the operation is injected
	// (adds start at the next compute; gets snapshot immediately).
	Round int
	// Kind selects add or get.
	Kind OpKind
	// Value is the added value (OpAdd only).
	Value values.Value
}

// GetResult is the outcome of one scheduled get.
type GetResult struct {
	Proc  int
	Round int
	Got   values.Set
}

// SimResult bundles a finished weak-set simulation.
type SimResult struct {
	Sim *sim.Result
	// Gets holds every scheduled get's snapshot.
	Gets []GetResult
	// Checker contains the full operation history, ready to Check.
	Checker *Checker
	// Records concatenates all processes' add records.
	Records []AddRecord
}

// RunMS simulates Algorithm 4 with n processes under the given policy,
// injecting the scheduled operations, and returns the recorded history.
func RunMS(n int, ops []ScheduledOp, pol sim.Policy, maxRounds int, crashes map[int]int) (*SimResult, error) {
	for _, op := range ops {
		if op.Proc < 0 || op.Proc >= n {
			return nil, fmt.Errorf("weakset: op names process %d outside [0,%d)", op.Proc, n)
		}
		if op.Kind == OpAdd && !op.Value.Valid() {
			return nil, fmt.Errorf("weakset: invalid value %q in add", string(op.Value))
		}
	}
	procs := make([]*MSProc, n)
	out := &SimResult{Checker: &Checker{}}
	res, err := sim.Run(sim.Config{
		N: n,
		Automaton: func(i int) giraf.Automaton {
			procs[i] = NewMSProc()
			return procs[i]
		},
		Policy:    pol,
		Crashes:   crashes,
		MaxRounds: maxRounds,
		OnRound: func(r int, e *sim.Engine) {
			for _, op := range ops {
				if op.Round != r {
					continue
				}
				switch op.Kind {
				case OpAdd:
					procs[op.Proc].EnqueueAdd(op.Value)
				case OpGet:
					got := procs[op.Proc].Snapshot()
					out.Gets = append(out.Gets, GetResult{Proc: op.Proc, Round: r, Got: got})
					out.Checker.Record(Op{Kind: OpGet, Got: got, Start: int64(r), End: int64(r)})
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	out.Sim = res
	for _, p := range procs {
		for _, rec := range p.Records() {
			out.Records = append(out.Records, rec)
			end := int64(math.MaxInt64) // incomplete adds never satisfy "completed before"
			if rec.Completed > 0 {
				end = int64(rec.Completed)
			}
			out.Checker.Record(Op{Kind: OpAdd, Value: rec.Value, Start: int64(rec.Enqueued), End: end})
		}
	}
	return out, nil
}

// CompletedAdds returns the add records that completed.
func (r *SimResult) CompletedAdds() []AddRecord {
	var out []AddRecord
	for _, rec := range r.Records {
		if rec.Completed > 0 {
			out = append(out, rec)
		}
	}
	return out
}

// MaxAddLatency returns the largest Completed−Started over completed adds.
func (r *SimResult) MaxAddLatency() int {
	max := 0
	for _, rec := range r.CompletedAdds() {
		if d := rec.Completed - rec.Started; d > max {
			max = d
		}
	}
	return max
}
