package weakset

import (
	"fmt"
	"sync"

	"anonconsensus/internal/values"
)

// Slot is the register interface the register-based weak-set constructions
// consume (satisfied by register.Memory, register.ABD, ...). Declared here,
// consumer-side, to keep the dependency one-directional.
type Slot interface {
	Write(v values.Value) error
	Read() (values.Value, error)
}

// FromSWMR is Proposition 2: a weak-set for a *known* set of processes
// built from single-writer multiple-reader registers, one per process.
// Process i keeps its accumulated value set in its own register; a get
// reads all registers and unions them.
//
// Handle returns the per-process front-end; only process i may add through
// handle i (the single-writer discipline).
type FromSWMR struct {
	slots []Slot
}

// NewFromSWMR builds the construction over the given per-process registers.
func NewFromSWMR(slots []Slot) *FromSWMR {
	if len(slots) == 0 {
		panic("weakset.NewFromSWMR: no registers")
	}
	return &FromSWMR{slots: slots}
}

// Handle returns process i's front-end.
func (f *FromSWMR) Handle(i int) *SWMRHandle {
	if i < 0 || i >= len(f.slots) {
		panic(fmt.Sprintf("weakset: handle %d outside [0,%d)", i, len(f.slots)))
	}
	return &SWMRHandle{f: f, id: i}
}

// SWMRHandle is one process's view of the FromSWMR weak-set.
type SWMRHandle struct {
	f  *FromSWMR
	id int

	mu  sync.Mutex
	own values.Set // the values this process has added
}

var _ WeakSet = (*SWMRHandle)(nil)

// Add implements WeakSet: extend the local set and write it to the
// process's own register. When Write returns, the value is visible to every
// subsequent Get (register termination + validity).
func (h *SWMRHandle) Add(v values.Value) error {
	h.mu.Lock()
	h.own.Add(v)
	snapshot := h.own.Clone()
	h.mu.Unlock()
	if err := h.f.slots[h.id].Write(values.EncodeSet(snapshot)); err != nil {
		return fmt.Errorf("weakset: writing own register: %w", err)
	}
	return nil
}

// Get implements WeakSet: union all processes' registers.
func (h *SWMRHandle) Get() (values.Set, error) {
	out := values.NewSet()
	for i, slot := range h.f.slots {
		raw, err := slot.Read()
		if err != nil {
			return values.Set{}, fmt.Errorf("weakset: reading register %d: %w", i, err)
		}
		if raw == "" {
			continue // never written
		}
		set, err := values.DecodeSet(raw)
		if err != nil {
			return values.Set{}, fmt.Errorf("weakset: register %d holds junk: %w", i, err)
		}
		out.AddAll(set)
	}
	return out, nil
}

// FromFinite is Proposition 3: a weak-set over a *finite value domain*
// built from one multi-writer multi-reader register per possible value,
// holding a presence flag. It needs no process identities at all, which is
// why the paper can use it in anonymous systems.
type FromFinite struct {
	domain []values.Value
	slots  map[values.Value]Slot
}

var _ WeakSet = (*FromFinite)(nil)

// present is the flag stored in a value's register once the value is added.
const present = values.Value("1")

// NewFromFinite builds the construction: newSlot is called once per domain
// value to allocate its register.
func NewFromFinite(domain []values.Value, newSlot func(v values.Value) Slot) *FromFinite {
	if len(domain) == 0 {
		panic("weakset.NewFromFinite: empty domain")
	}
	f := &FromFinite{domain: append([]values.Value(nil), domain...), slots: make(map[values.Value]Slot, len(domain))}
	for _, v := range f.domain {
		if !v.Valid() {
			panic(fmt.Sprintf("weakset.NewFromFinite: invalid domain value %q", string(v)))
		}
		if _, dup := f.slots[v]; dup {
			panic(fmt.Sprintf("weakset.NewFromFinite: duplicate domain value %q", string(v)))
		}
		f.slots[v] = newSlot(v)
	}
	return f
}

// Add implements WeakSet: raise the value's presence flag.
func (f *FromFinite) Add(v values.Value) error {
	slot, ok := f.slots[v]
	if !ok {
		return fmt.Errorf("weakset: value %v outside the finite domain", v)
	}
	if err := slot.Write(present); err != nil {
		return fmt.Errorf("weakset: raising flag for %v: %w", v, err)
	}
	return nil
}

// Get implements WeakSet: collect every value whose flag is raised.
func (f *FromFinite) Get() (values.Set, error) {
	out := values.NewSet()
	for _, v := range f.domain {
		raw, err := f.slots[v].Read()
		if err != nil {
			return values.Set{}, fmt.Errorf("weakset: reading flag for %v: %w", v, err)
		}
		if raw == present {
			out.Add(v)
		}
	}
	return out, nil
}
