package weakset

import (
	"sync"
	"testing"

	"anonconsensus/internal/values"
)

// memSlot is a minimal atomic register for tests (mirrors register.Memory
// without the import cycle).
type memSlot struct {
	mu  sync.Mutex
	val values.Value
}

func (m *memSlot) Write(v values.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.val = v
	return nil
}

func (m *memSlot) Read() (values.Value, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.val, nil
}

func newSWMR(n int) *FromSWMR {
	slots := make([]Slot, n)
	for i := range slots {
		slots[i] = &memSlot{}
	}
	return NewFromSWMR(slots)
}

func TestFromSWMRBasic(t *testing.T) {
	f := newSWMR(3)
	h0, h1 := f.Handle(0), f.Handle(1)

	if err := h0.Add(values.Num(1)); err != nil {
		t.Fatal(err)
	}
	if err := h1.Add(values.Num(2)); err != nil {
		t.Fatal(err)
	}
	got, err := f.Handle(2).Get()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(values.NewSet(values.Num(1), values.Num(2))) {
		t.Errorf("get = %v", got)
	}
}

func TestFromSWMRCompletedAddVisible(t *testing.T) {
	// The weak-set property: once Add returns, every Get sees the value.
	f := newSWMR(4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := f.Handle(i)
			for j := 0; j < 8; j++ {
				v := values.Num(int64(10*i + j))
				if err := h.Add(v); err != nil {
					t.Error(err)
					return
				}
				got, err := h.Get()
				if err != nil {
					t.Error(err)
					return
				}
				if !got.Contains(v) {
					t.Errorf("own completed add %v invisible", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := f.Handle(0).Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 32 {
		t.Errorf("final size %d, want 32", got.Len())
	}
}

func TestFromSWMRSpecChecker(t *testing.T) {
	f := newSWMR(2)
	c := &Checker{}
	clock := int64(0)
	tick := func() int64 { clock++; return clock }

	h := f.Handle(0)
	s := tick()
	if err := h.Add(values.Num(1)); err != nil {
		t.Fatal(err)
	}
	c.Record(Op{Kind: OpAdd, Value: values.Num(1), Start: s, End: tick()})
	s = tick()
	got, err := f.Handle(1).Get()
	if err != nil {
		t.Fatal(err)
	}
	c.Record(Op{Kind: OpGet, Got: got, Start: s, End: tick()})
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFromFiniteBasic(t *testing.T) {
	domain := []values.Value{values.Num(1), values.Num(2), values.Num(3)}
	f := NewFromFinite(domain, func(values.Value) Slot { return &memSlot{} })

	if err := f.Add(values.Num(2)); err != nil {
		t.Fatal(err)
	}
	got, err := f.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(values.NewSet(values.Num(2))) {
		t.Errorf("get = %v", got)
	}
}

func TestFromFiniteRejectsOutOfDomain(t *testing.T) {
	f := NewFromFinite([]values.Value{values.Num(1)}, func(values.Value) Slot { return &memSlot{} })
	if err := f.Add(values.Num(9)); err == nil {
		t.Error("out-of-domain add must fail")
	}
}

func TestFromFiniteAnonymousConcurrentAdds(t *testing.T) {
	// No identities involved: many goroutines add the same values; flags
	// are idempotent.
	domain := make([]values.Value, 8)
	for i := range domain {
		domain[i] = values.Num(int64(i))
	}
	f := NewFromFinite(domain, func(values.Value) Slot { return &memSlot{} })
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f.Add(values.Num(int64(g % 8))); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, err := f.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 8 {
		t.Errorf("got %d values, want 8", got.Len())
	}
}

func TestFromFiniteValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty domain": func() { NewFromFinite(nil, func(values.Value) Slot { return &memSlot{} }) },
		"invalid value": func() {
			NewFromFinite([]values.Value{values.Bot}, func(values.Value) Slot { return &memSlot{} })
		},
		"duplicate value": func() {
			NewFromFinite([]values.Value{values.Num(1), values.Num(1)}, func(values.Value) Slot { return &memSlot{} })
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("must panic")
				}
			}()
			fn()
		})
	}
}

func TestFromSWMRHandleValidation(t *testing.T) {
	f := newSWMR(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range handle must panic")
		}
	}()
	f.Handle(5)
}
