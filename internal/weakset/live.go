package weakset

import (
	"context"
	"fmt"
	"sync"
	"time"

	"anonconsensus/internal/anonnet"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// LiveConfig runs Algorithm 4 over the real-time goroutine network: an
// anonymous shared-set *service*. Operations are scheduled by round, as in
// the simulator driver, but execute against drifting real-time rounds with
// latency-profile links.
type LiveConfig struct {
	// N is the number of processes.
	N int
	// Ops are the operations to inject (rounds are per-process local
	// rounds).
	Ops []ScheduledOp
	// Interval is the round-timer period; defaults to 5ms.
	Interval time.Duration
	// Latency is the link profile; defaults to an MS profile (the weakest
	// environment Algorithm 4 is proved for).
	Latency anonnet.LatencyModel
	// Duration is how long to run; defaults to 2s.
	Duration time.Duration
}

// LiveResult is the outcome of a live weak-set run.
type LiveResult struct {
	// Gets holds every scheduled get's snapshot.
	Gets []GetResult
	// Records concatenates all processes' add records.
	Records []AddRecord
	// Checker contains the full history in local-round timestamps.
	// Rounds at different processes drift in the live runtime, so the
	// checker's verdict is meaningful per-process; cross-process ordering
	// is only approximate. Tests assert the stronger per-value conditions
	// directly.
	Checker *Checker
}

// CompletedAdds returns the add records that completed.
func (r *LiveResult) CompletedAdds() []AddRecord {
	var out []AddRecord
	for _, rec := range r.Records {
		if rec.Completed > 0 {
			out = append(out, rec)
		}
	}
	return out
}

// RunLive executes Algorithm 4 on the live network.
func RunLive(cfg LiveConfig) (*LiveResult, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("weakset: live N = %d", cfg.N)
	}
	for _, op := range cfg.Ops {
		if op.Proc < 0 || op.Proc >= cfg.N {
			return nil, fmt.Errorf("weakset: live op names process %d outside [0,%d)", op.Proc, cfg.N)
		}
		if op.Kind == OpAdd && !op.Value.Valid() {
			return nil, fmt.Errorf("weakset: invalid value %q in live add", string(op.Value))
		}
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = 2 * time.Second
	}
	latency := cfg.Latency
	if latency == nil {
		latency = anonnet.MSProfile{N: cfg.N, Interval: interval, Seed: 1}
	}

	var (
		mu    sync.Mutex
		procs = make([]*MSProc, cfg.N)
		out   = &LiveResult{Checker: &Checker{}}
	)
	_, err := anonnet.Run(context.Background(), anonnet.Config{
		N: cfg.N,
		Automaton: func(i int) giraf.Automaton {
			procs[i] = NewMSProc()
			return procs[i]
		},
		Interval: interval,
		Latency:  latency,
		Timeout:  duration,
		OnRound: func(proc, round int, aut giraf.Automaton) {
			p := aut.(*MSProc)
			for _, op := range cfg.Ops {
				if op.Proc != proc || op.Round != round {
					continue
				}
				switch op.Kind {
				case OpAdd:
					p.EnqueueAdd(op.Value)
				case OpGet:
					got := p.Snapshot()
					mu.Lock()
					out.Gets = append(out.Gets, GetResult{Proc: proc, Round: round, Got: got})
					out.Checker.Record(Op{Kind: OpGet, Got: got, Start: int64(round), End: int64(round)})
					mu.Unlock()
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	for _, p := range procs {
		for _, rec := range p.Records() {
			out.Records = append(out.Records, rec)
		}
	}
	return out, nil
}

// ContainsValue reports whether any get snapshot contains v.
func (r *LiveResult) ContainsValue(v values.Value) bool {
	for _, g := range r.Gets {
		if g.Got.Contains(v) {
			return true
		}
	}
	return false
}
