package weakset

import (
	"testing"
	"time"

	"anonconsensus/internal/anonnet"
	"anonconsensus/internal/values"
)

func TestLiveWeakSetSynchronousProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("slow suite in -short mode")
	}
	interval := 4 * time.Millisecond
	res, err := RunLive(LiveConfig{
		N: 4,
		Ops: []ScheduledOp{
			{Proc: 0, Round: 2, Kind: OpAdd, Value: values.Num(1)},
			{Proc: 1, Round: 3, Kind: OpAdd, Value: values.Num(2)},
			{Proc: 2, Round: 30, Kind: OpGet},
			{Proc: 3, Round: 30, Kind: OpGet},
		},
		Interval: interval,
		Latency:  anonnet.Sync{Interval: interval},
		Duration: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.CompletedAdds()); got != 2 {
		t.Fatalf("%d/2 adds completed: %+v", got, res.Records)
	}
	if len(res.Gets) != 2 {
		t.Fatalf("gets = %d, want 2", len(res.Gets))
	}
	for _, g := range res.Gets {
		if !g.Got.Contains(values.Num(1)) || !g.Got.Contains(values.Num(2)) {
			t.Errorf("late get at p%d missed completed adds: %v", g.Proc, g.Got)
		}
	}
}

func TestLiveWeakSetUnderMSProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("slow suite in -short mode")
	}
	// The moving-source profile: most links are slow, yet Algorithm 4's
	// all-rounds union (Fresh) still completes every add.
	interval := 3 * time.Millisecond
	res, err := RunLive(LiveConfig{
		N: 3,
		Ops: []ScheduledOp{
			{Proc: 0, Round: 2, Kind: OpAdd, Value: values.Num(7)},
			{Proc: 2, Round: 60, Kind: OpGet},
		},
		Interval: interval,
		Latency:  anonnet.MSProfile{N: 3, Interval: interval, Seed: 5},
		Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CompletedAdds()) != 1 {
		t.Fatalf("add incomplete: %+v", res.Records)
	}
	if !res.ContainsValue(values.Num(7)) {
		t.Error("late get missed the completed add")
	}
}

func TestRunLiveValidation(t *testing.T) {
	if _, err := RunLive(LiveConfig{N: 0}); err == nil {
		t.Error("zero N accepted")
	}
	if _, err := RunLive(LiveConfig{N: 2, Ops: []ScheduledOp{{Proc: 9, Round: 1, Kind: OpGet}}}); err == nil {
		t.Error("out-of-range op accepted")
	}
	if _, err := RunLive(LiveConfig{N: 2, Ops: []ScheduledOp{{Proc: 0, Round: 1, Kind: OpAdd, Value: values.Bot}}}); err == nil {
		t.Error("⊥ add accepted")
	}
}
