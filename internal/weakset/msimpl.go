package weakset

import (
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// setPayload is Algorithm 4's wire payload: the PROPOSED set. Key and
// fingerprint are cached in the set's canonical form.
type setPayload struct{ proposed values.Set }

var (
	_ giraf.Payload       = setPayload{}
	_ giraf.Fingerprinted = setPayload{}
	_ giraf.PayloadSizer  = setPayload{}
)

func (p setPayload) PayloadKey() string { return p.proposed.Key() }

func (p setPayload) PayloadFingerprint() values.Fingerprint { return p.proposed.Fingerprint() }

func (p setPayload) PayloadEncodedSize() int { return p.proposed.EncodedSize() }

// AddRecord is the completed lifetime of one add operation, in rounds.
type AddRecord struct {
	Value values.Value
	// Enqueued is the round at which the driver handed the value to the
	// process.
	Enqueued int
	// Started is the compute round at which the process executed the add
	// (PROPOSED ∪= {v}; VAL := v; BLOCK := true).
	Started int
	// Completed is the compute round at which BLOCK cleared (VAL ∈
	// WRITTEN, Algorithm 4 line 16); 0 while still pending.
	Completed int
}

// MSProc is Algorithm 4: one process of the weak-set implementation for the
// MS environment. Operations are injected by a driver (EnqueueAdd /
// Snapshot) because GIRAF computes must not block; the blocking add of the
// paper corresponds to waiting for the matching AddRecord.Completed.
//
// Not safe for concurrent use; the simulator serializes calls.
type MSProc struct {
	val      values.Value
	proposed values.Set
	written  values.Set
	block    bool

	queue   []values.Value // adds waiting to start (one runs at a time)
	pending int            // index into records of the running add, -1 if none
	records []AddRecord
	round   int
}

var _ giraf.Automaton = (*MSProc)(nil)

// NewMSProc returns an idle weak-set process.
func NewMSProc() *MSProc {
	return &MSProc{
		val:      values.Bot,
		proposed: values.NewSet(),
		written:  values.NewSet(),
		pending:  -1,
	}
}

// EnqueueAdd hands v to the process; the add starts at its next compute
// (Algorithm 4 lines 7–12 run between rounds) and completes when the value
// has provably reached everybody.
func (p *MSProc) EnqueueAdd(v values.Value) {
	p.queue = append(p.queue, v)
	p.records = append(p.records, AddRecord{Value: v, Enqueued: p.round})
}

// Snapshot is the get operation (Algorithm 4 lines 5–6): it returns the
// current PROPOSED set.
func (p *MSProc) Snapshot() values.Set { return p.proposed.Clone() }

// Records returns the add records (shared slice; read-only).
//
//detlint:aliased read-only by contract; the T7 table reads records after the run, when the slice is quiescent
func (p *MSProc) Records() []AddRecord { return p.records }

// Blocked reports whether an add is in progress.
func (p *MSProc) Blocked() bool { return p.block }

// Initialize implements giraf.Automaton (Algorithm 4 lines 1–4).
func (p *MSProc) Initialize() giraf.Payload {
	return setPayload{proposed: p.proposed.Clone()}
}

// Compute implements giraf.Automaton (Algorithm 4 lines 13–17).
func (p *MSProc) Compute(k int, inbox giraf.Inbox) (giraf.Payload, giraf.Decision) {
	p.round = k
	// Line 14: WRITTEN := ∩_{m ∈ M_i[k]} m.
	msgs := inbox.Round(k)
	sets := make([]values.Set, 0, len(msgs))
	for _, m := range msgs {
		if sp, ok := m.(setPayload); ok { // foreign payloads ignored
			sets = append(sets, sp.proposed)
		}
	}
	p.written = values.IntersectAll(sets)
	// Line 15: PROPOSED := (∪_{m ∈ M_i[k'], 1 ≤ k' ≤ k} m) ∪ PROPOSED.
	// Fresh() covers exactly the payloads delivered since the last compute
	// — including late arrivals for earlier rounds, which is what lets
	// permanently-slow links still contribute (contrast Algorithms 2/3,
	// which read only the current round).
	for _, m := range inbox.Fresh() {
		if sp, ok := m.(setPayload); ok {
			p.proposed.AddAll(sp.proposed)
		}
	}
	// Line 16: if VAL ∈ WRITTEN then BLOCK := false (the running add
	// completes).
	if p.block && p.written.Contains(p.val) {
		p.block = false
		p.records[p.pending].Completed = k
		p.pending = -1
	}
	// Start the next queued add (lines 8–10 of the add operation).
	if !p.block && len(p.queue) > 0 {
		v := p.queue[0]
		p.queue = p.queue[1:]
		for i := range p.records {
			if p.records[i].Value == v && p.records[i].Started == 0 && p.records[i].Completed == 0 {
				p.pending = i
				break
			}
		}
		p.records[p.pending].Started = k
		p.proposed.Add(v)
		p.val = v
		p.block = true
	}
	// Line 17: return PROPOSED.
	return setPayload{proposed: p.proposed.Clone()}, giraf.Decision{}
}
