package weakset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

// TestQuickMSWeakSetSpecUnderRandomSchedules fuzzes both the operation
// schedule and the environment: whatever MS schedule and op placement the
// generator picks, the recorded history must satisfy the §5 specification.
func TestQuickMSWeakSetSpecUnderRandomSchedules(t *testing.T) {
	f := func(seed uint32, nRaw uint8, opSeeds []uint8) bool {
		n := 2 + int(nRaw%5)
		if len(opSeeds) > 10 {
			opSeeds = opSeeds[:10]
		}
		var ops []ScheduledOp
		for i, raw := range opSeeds {
			op := ScheduledOp{
				Proc:  int(raw) % n,
				Round: 1 + int(raw%23),
			}
			if i%3 == 0 {
				op.Kind = OpGet
			} else {
				op.Kind = OpAdd
				op.Value = values.Num(int64(raw % 7))
			}
			ops = append(ops, op)
		}
		res, err := RunMS(n, ops, &sim.MS{
			Seed:           int64(seed),
			MaxDelay:       1 + int(seed%4),
			Shuffle:        seed%2 == 0,
			ExtraTimelyPct: int(seed % 50),
		}, 80, nil)
		if err != nil {
			return false
		}
		return res.Checker.Check() == nil
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(51))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMSWeakSetAddsCompleteWithCrashes: adds by surviving processes
// must always complete even under random crash schedules.
func TestQuickMSWeakSetAddsComplete(t *testing.T) {
	f := func(seed uint32, crashRaw uint8) bool {
		const n = 4
		victim := int(crashRaw) % n
		adder := (victim + 1) % n // always a survivor
		ops := []ScheduledOp{
			{Proc: adder, Round: 1, Kind: OpAdd, Value: values.Num(9)},
		}
		crashes := map[int]int{victim: 1 + int(crashRaw%8)}
		res, err := RunMS(n, ops, &sim.MS{Seed: int64(seed), MaxDelay: 3}, 80, crashes)
		if err != nil {
			return false
		}
		return len(res.CompletedAdds()) == 1 && res.Checker.Check() == nil
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(52))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
