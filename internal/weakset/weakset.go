// Package weakset implements the weak-set shared data structure (paper §5,
// originally from Delporte-Gallet & Fauconnier [4]).
//
// A weak-set S holds a set of values and offers two operations: add(v) and
// get. Its specification (§5):
//
//   - every get returns all values whose add completed before the get
//     started;
//   - no value is returned whose add had not started before the get ended;
//   - adds concurrent with a get may or may not be visible.
//
// Unlike a register, a weak-set lets anonymous processes share information
// without overwriting each other, which is why the paper uses it as the
// register generalization for unknown and anonymous networks.
//
// The package provides:
//
//   - MSProc: Algorithm 4, a weak-set in the MS environment (GIRAF-driven);
//   - Memory: a linearizable in-memory reference implementation;
//   - FromSWMR (Prop. 2) and FromFinite (Prop. 3): weak-sets from registers;
//   - Checker: an operation-interval checker for the weak-set spec.
package weakset

import (
	"fmt"
	"sort"
	"sync"

	"anonconsensus/internal/values"
)

// WeakSet is the abstract data type.
type WeakSet interface {
	// Add inserts v and returns when the insertion has completed (i.e. the
	// value is guaranteed visible to all subsequent gets).
	Add(v values.Value) error
	// Get returns a snapshot containing at least every value whose Add
	// completed before Get was invoked.
	Get() (values.Set, error)
}

// Memory is a linearizable in-memory weak-set: the reference implementation
// used as the substrate for the MS emulation (Algorithm 5) and in tests.
// In a known network it would be realized from atomic registers (Props. 2
// and 3); package register provides those constructions.
//
// The zero value is ready to use.
type Memory struct {
	mu  sync.Mutex
	set values.Set
}

var _ WeakSet = (*Memory)(nil)

// Add implements WeakSet.
func (m *Memory) Add(v values.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.set.Add(v)
	return nil
}

// Get implements WeakSet.
func (m *Memory) Get() (values.Set, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.set.Clone(), nil
}

// ---------------------------------------------------------------------------
// Specification checking

// OpKind distinguishes recorded operations.
type OpKind int

// Operation kinds.
const (
	OpAdd OpKind = iota + 1
	OpGet
)

// Op is one recorded weak-set operation with its real-time (or round-time)
// interval.
type Op struct {
	Kind  OpKind
	Value values.Value // the added value (OpAdd)
	Got   values.Set   // the returned snapshot (OpGet)
	Start int64        // inclusive
	End   int64        // inclusive; End ≥ Start
}

// Checker validates a history of weak-set operations against the §5
// specification. It is driven by tests of every implementation.
type Checker struct {
	ops []Op
}

// Record appends an operation to the history.
func (c *Checker) Record(op Op) {
	c.ops = append(c.ops, op)
}

// Len returns the number of recorded operations.
func (c *Checker) Len() int { return len(c.ops) }

// Check returns an error describing the first specification violation, or
// nil if the history is legal.
func (c *Checker) Check() error {
	adds := make([]Op, 0, len(c.ops))
	gets := make([]Op, 0, len(c.ops))
	for _, op := range c.ops {
		switch op.Kind {
		case OpAdd:
			adds = append(adds, op)
		case OpGet:
			gets = append(gets, op)
		default:
			return fmt.Errorf("weakset: unknown op kind %d", op.Kind)
		}
	}
	sort.Slice(adds, func(i, j int) bool { return adds[i].Start < adds[j].Start })
	for _, g := range gets {
		// (1) Every value whose add completed before the get started must
		// be present.
		for _, a := range adds {
			if a.End < g.Start && !g.Got.Contains(a.Value) {
				return fmt.Errorf("weakset: get [%d,%d] missing %v whose add completed at %d",
					g.Start, g.End, a.Value, a.End)
			}
		}
		// (2) No value whose add started after the get ended may appear.
		for _, v := range g.Got.Sorted() {
			earliest, ok := earliestAddStart(adds, v)
			if !ok {
				return fmt.Errorf("weakset: get [%d,%d] returned %v that was never added",
					g.Start, g.End, v)
			}
			if earliest > g.End {
				return fmt.Errorf("weakset: get [%d,%d] returned %v whose first add started at %d",
					g.Start, g.End, v, earliest)
			}
		}
	}
	return nil
}

func earliestAddStart(adds []Op, v values.Value) (int64, bool) {
	for _, a := range adds {
		if a.Value == v {
			return a.Start, true // adds sorted by start
		}
	}
	return 0, false
}
