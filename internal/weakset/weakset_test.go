package weakset

import (
	"fmt"
	"sync"
	"testing"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/sim"
	"anonconsensus/internal/values"
)

func TestCheckerAcceptsLegalHistory(t *testing.T) {
	c := &Checker{}
	c.Record(Op{Kind: OpAdd, Value: values.Num(1), Start: 0, End: 2})
	c.Record(Op{Kind: OpGet, Got: values.NewSet(values.Num(1)), Start: 3, End: 3})
	if err := c.Check(); err != nil {
		t.Error(err)
	}
}

func TestCheckerMissingCompletedAdd(t *testing.T) {
	c := &Checker{}
	c.Record(Op{Kind: OpAdd, Value: values.Num(1), Start: 0, End: 2})
	c.Record(Op{Kind: OpGet, Got: values.NewSet(), Start: 5, End: 5})
	if err := c.Check(); err == nil {
		t.Error("get missing a completed add must fail")
	}
}

func TestCheckerPhantomValue(t *testing.T) {
	c := &Checker{}
	c.Record(Op{Kind: OpGet, Got: values.NewSet(values.Num(9)), Start: 1, End: 1})
	if err := c.Check(); err == nil {
		t.Error("get returning a never-added value must fail")
	}
}

func TestCheckerFutureAdd(t *testing.T) {
	c := &Checker{}
	c.Record(Op{Kind: OpAdd, Value: values.Num(1), Start: 10, End: 12})
	c.Record(Op{Kind: OpGet, Got: values.NewSet(values.Num(1)), Start: 1, End: 2})
	if err := c.Check(); err == nil {
		t.Error("get returning a value added only later must fail")
	}
}

func TestCheckerConcurrentAddMayOrMayNotAppear(t *testing.T) {
	// Add overlaps the get: both visible and invisible outcomes are legal.
	for _, got := range []values.Set{values.NewSet(), values.NewSet(values.Num(1))} {
		c := &Checker{}
		c.Record(Op{Kind: OpAdd, Value: values.Num(1), Start: 5, End: 9})
		c.Record(Op{Kind: OpGet, Got: got, Start: 6, End: 7})
		if err := c.Check(); err != nil {
			t.Errorf("concurrent outcome %v rejected: %v", got, err)
		}
	}
}

func TestMemoryWeakSetConcurrent(t *testing.T) {
	// Hammer the in-memory reference with concurrent adders and getters;
	// afterwards a get must return everything.
	var (
		m  Memory
		wg sync.WaitGroup
	)
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := m.Add(values.Num(int64(i))); err != nil {
				t.Error(err)
			}
			if _, err := m.Get(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	got, err := m.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != n {
		t.Errorf("final get has %d values, want %d", got.Len(), n)
	}
}

func TestMSWeakSetSynchronous(t *testing.T) {
	ops := []ScheduledOp{
		{Proc: 0, Round: 1, Kind: OpAdd, Value: values.Num(7)},
		{Proc: 1, Round: 10, Kind: OpGet},
		{Proc: 2, Round: 10, Kind: OpGet},
	}
	res, err := RunMS(3, ops, sim.Synchronous{}, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Checker.Check(); err != nil {
		t.Fatal(err)
	}
	if len(res.CompletedAdds()) != 1 {
		t.Fatalf("add did not complete: %+v", res.Records)
	}
	for _, g := range res.Gets {
		if !g.Got.Contains(values.Num(7)) {
			t.Errorf("get at p%d missed the completed add", g.Proc)
		}
	}
}

func TestMSWeakSetUnderMS(t *testing.T) {
	// Theorem 3: the weak-set works in the plain MS environment — no
	// eventual synchrony, the source keeps moving forever.
	for seed := int64(0); seed < 50; seed++ {
		ops := []ScheduledOp{
			{Proc: 0, Round: 1, Kind: OpAdd, Value: values.Num(1)},
			{Proc: 1, Round: 3, Kind: OpAdd, Value: values.Num(2)},
			{Proc: 2, Round: 5, Kind: OpAdd, Value: values.Num(3)},
			{Proc: 3, Round: 30, Kind: OpGet},
			{Proc: 0, Round: 35, Kind: OpGet},
		}
		res, err := RunMS(4, ops, &sim.MS{Seed: seed, MaxDelay: 3}, 60, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Checker.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := len(res.CompletedAdds()); got != 3 {
			t.Fatalf("seed %d: %d/3 adds completed", seed, got)
		}
	}
}

func TestMSWeakSetQueuedAddsSameProcess(t *testing.T) {
	// Sequential adds from one process run one at a time (the paper's add
	// blocks) but all complete.
	ops := []ScheduledOp{
		{Proc: 0, Round: 1, Kind: OpAdd, Value: values.Num(1)},
		{Proc: 0, Round: 1, Kind: OpAdd, Value: values.Num(2)},
		{Proc: 0, Round: 2, Kind: OpAdd, Value: values.Num(3)},
		{Proc: 1, Round: 40, Kind: OpGet},
	}
	res, err := RunMS(3, ops, &sim.MS{Seed: 9, MaxDelay: 2}, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Checker.Check(); err != nil {
		t.Fatal(err)
	}
	recs := res.CompletedAdds()
	if len(recs) != 3 {
		t.Fatalf("%d/3 adds completed", len(recs))
	}
	// One at a time: intervals of p0's adds must not overlap.
	for i := 1; i < len(recs); i++ {
		if recs[i].Started < recs[i-1].Completed {
			t.Errorf("adds overlap: %+v then %+v", recs[i-1], recs[i])
		}
	}
	if !res.Gets[0].Got.Contains(values.Num(3)) {
		t.Error("late get misses queued add")
	}
}

func TestMSWeakSetCrashedAdderMayNotComplete(t *testing.T) {
	// The adder crashes right after enqueueing; its add may never complete
	// but the history must stay legal and other processes' ops unaffected.
	ops := []ScheduledOp{
		{Proc: 0, Round: 1, Kind: OpAdd, Value: values.Num(1)},
		{Proc: 1, Round: 2, Kind: OpAdd, Value: values.Num(2)},
		{Proc: 2, Round: 30, Kind: OpGet},
	}
	res, err := RunMS(3, ops, &sim.MS{Seed: 3, MaxDelay: 2}, 50, map[int]int{0: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Checker.Check(); err != nil {
		t.Fatal(err)
	}
	// p1's add must still complete.
	found := false
	for _, rec := range res.CompletedAdds() {
		if rec.Value == values.Num(2) {
			found = true
		}
	}
	if !found {
		t.Error("surviving process's add did not complete")
	}
}

func TestMSWeakSetAddLatencyBounded(t *testing.T) {
	// Under synchrony an add completes two rounds after it starts.
	ops := []ScheduledOp{{Proc: 0, Round: 1, Kind: OpAdd, Value: values.Num(5)}}
	res, err := RunMS(4, ops, sim.Synchronous{}, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := res.CompletedAdds()
	if len(recs) != 1 {
		t.Fatal("add incomplete")
	}
	if lat := recs[0].Completed - recs[0].Started; lat != 2 {
		t.Errorf("synchronous add latency = %d rounds, want 2", lat)
	}
}

func TestMSWeakSetManyProcessesManyOps(t *testing.T) {
	n := 8
	var ops []ScheduledOp
	for i := 0; i < n; i++ {
		ops = append(ops, ScheduledOp{Proc: i, Round: 1 + i, Kind: OpAdd, Value: values.Num(int64(100 + i))})
		ops = append(ops, ScheduledOp{Proc: i, Round: 60, Kind: OpGet})
	}
	res, err := RunMS(n, ops, &sim.MS{Seed: 17, MaxDelay: 4, Shuffle: true}, 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Checker.Check(); err != nil {
		t.Fatal(err)
	}
	if got := len(res.CompletedAdds()); got != n {
		t.Fatalf("%d/%d adds completed", got, n)
	}
	for _, g := range res.Gets {
		if g.Got.Len() != n {
			t.Errorf("get at p%d returned %d values, want %d", g.Proc, g.Got.Len(), n)
		}
	}
}

func TestRunMSValidation(t *testing.T) {
	if _, err := RunMS(2, []ScheduledOp{{Proc: 5, Round: 1, Kind: OpGet}}, sim.Synchronous{}, 10, nil); err == nil {
		t.Error("out-of-range proc must be rejected")
	}
	if _, err := RunMS(2, []ScheduledOp{{Proc: 0, Round: 1, Kind: OpAdd, Value: values.Bot}}, sim.Synchronous{}, 10, nil); err == nil {
		t.Error("adding ⊥ must be rejected")
	}
}

func TestMSWeakSetLatencyGrowsWithDelay(t *testing.T) {
	// T7 shape: add latency grows with the non-source delay bound.
	latAt := func(maxDelay int) int {
		total := 0
		for seed := int64(0); seed < 10; seed++ {
			ops := []ScheduledOp{{Proc: 0, Round: 1, Kind: OpAdd, Value: values.Num(1)}}
			res, err := RunMS(5, ops, &sim.MS{Seed: seed, MaxDelay: maxDelay}, 40+10*maxDelay, nil)
			if err != nil {
				t.Fatal(err)
			}
			recs := res.CompletedAdds()
			if len(recs) != 1 {
				t.Fatalf("maxDelay=%d seed=%d: add incomplete", maxDelay, seed)
			}
			total += recs[0].Completed - recs[0].Started
		}
		return total
	}
	small, large := latAt(1), latAt(6)
	if small > large {
		t.Errorf("latency should not shrink with delay: sum@1=%d sum@6=%d", small, large)
	}
}

func ExampleMemory() {
	var m Memory
	_ = m.Add(values.Num(1))
	_ = m.Add(values.Num(2))
	got, _ := m.Get()
	fmt.Println(got)
	// Output: {000000000001, 000000000002}
}

func TestMSProcBlockedFlag(t *testing.T) {
	ops := []ScheduledOp{{Proc: 0, Round: 1, Kind: OpAdd, Value: values.Num(5)}}
	blockedSeen := false
	procs := make([]*MSProc, 1)
	// Drive manually through the sim driver; inspect via records instead:
	res, err := RunMS(1, ops, sim.Synchronous{}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = procs
	recs := res.CompletedAdds()
	if len(recs) != 1 {
		t.Fatal("add incomplete")
	}
	// Blocked is true strictly between Started and Completed; validate via
	// a fresh proc stepped by hand.
	p := NewMSProc()
	p.EnqueueAdd(values.Num(1))
	if p.Blocked() {
		t.Error("not blocked before first compute")
	}
	gp := giraf.NewProc(p)
	gp.EndOfRound() // init
	gp.EndOfRound() // compute 1: add starts
	if p.Blocked() {
		blockedSeen = true
	}
	if !blockedSeen {
		t.Error("add never showed as blocked")
	}
}
