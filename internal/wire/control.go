package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Control frames are the wire-level session plane: a reconnecting node
// resumes a hub session (Hello/Welcome carry a session token and a replay
// cursor) and hub-side heartbeats distinguish a slow consumer from a dead
// one (Heartbeat/HeartbeatAck). Control frames ride the same
// length-prefixed framing as envelopes but are consumed by the endpoints
// themselves — they are never relayed, never enter the hub log, and never
// advance a session's replay cursor, so the anonymity argument is
// untouched: a control frame describes one connection's bookkeeping, not
// any process's identity or state.
//
// Layout: [controlMagic][controlVersion][kind][uvarint fields…]. Like
// deltaMagic, controlMagic is chosen so a well-formed envelope frame from
// our own encoders cannot start with it (a v1 frame leads with the round
// uvarint, a delta frame with 0xD5); both decoders reject the other's
// frames loudly rather than misparse.
const (
	controlMagic   byte = 0xC7
	controlVersion byte = 1
)

// Control-frame kinds.
const (
	// ControlHello is sent by a node right after dialing: Token 0 asks for
	// a fresh session, a non-zero Token asks to resume that session from
	// Cursor (the count of data frames the node has already received).
	ControlHello byte = 1
	// ControlWelcome is the hub's reply: the session token to use from now
	// on and the authoritative resume position.
	ControlWelcome byte = 2
	// ControlHeartbeat is sent by the hub; a live node answers each one
	// with a ControlHeartbeatAck echoing the sequence number.
	ControlHeartbeat byte = 3
	// ControlHeartbeatAck is the node's answer to a ControlHeartbeat.
	ControlHeartbeatAck byte = 4
)

// Hello asks the hub for a session: fresh (Token 0) or resumed.
type Hello struct {
	// Token is the session to resume; 0 requests a fresh session.
	Token uint64
	// Cursor is the number of data frames the node has received on the
	// session so far — the hub replays everything from there.
	Cursor uint64
}

// Welcome is the hub's handshake reply.
type Welcome struct {
	// Token names the session; a node that asked to resume an unknown
	// token (for example after a hub restart) receives a fresh one here
	// and must adopt it.
	Token uint64
	// ResumeFrom is the authoritative replay position: the node's receive
	// counter must be reset to it (it is 0 for a fresh session).
	ResumeFrom uint64
	// Pending is the number of logged frames about to be replayed —
	// surfaced so nodes can count ReplayedFrames without guessing.
	Pending uint64
}

// Heartbeat is one hub liveness probe (or its ack, echoing Seq).
type Heartbeat struct {
	// Seq orders probes within one connection; acks echo it.
	Seq uint64
}

// IsControlFrame reports whether frame is a control frame (of any kind).
func IsControlFrame(frame []byte) bool {
	return len(frame) >= 3 && frame[0] == controlMagic && frame[1] == controlVersion
}

// ControlKind returns the control-frame kind; ok is false when frame is
// not a control frame at all.
func ControlKind(frame []byte) (kind byte, ok bool) {
	if !IsControlFrame(frame) {
		return 0, false
	}
	return frame[2], true
}

// encodeControl builds [magic][version][kind][uvarint fields…].
func encodeControl(kind byte, fields ...uint64) []byte {
	var w bytes.Buffer
	w.WriteByte(controlMagic)
	w.WriteByte(controlVersion)
	w.WriteByte(kind)
	for _, f := range fields {
		writeUvarint(&w, f)
	}
	return w.Bytes()
}

// decodeControl parses the frame header and the expected field count.
// Fields are plain uvarints: they are counters and tokens, not lengths,
// so MaxElement does not apply (a uvarint is self-limiting at 10 bytes).
func decodeControl(frame []byte, kind byte, nFields int) ([]uint64, error) {
	got, ok := ControlKind(frame)
	if !ok {
		return nil, fmt.Errorf("%w: not a control frame", ErrBadFrame)
	}
	if got != kind {
		return nil, fmt.Errorf("%w: control kind %d, want %d", ErrBadFrame, got, kind)
	}
	r := bytes.NewReader(frame[3:])
	fields := make([]uint64, nFields)
	for i := range fields {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated control field %d: %v", ErrBadFrame, i, err)
		}
		fields[i] = n
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after control frame", ErrBadFrame, r.Len())
	}
	return fields, nil
}

// EncodeHello serializes a Hello frame.
func EncodeHello(h Hello) []byte { return encodeControl(ControlHello, h.Token, h.Cursor) }

// DecodeHello parses a Hello frame.
func DecodeHello(frame []byte) (Hello, error) {
	f, err := decodeControl(frame, ControlHello, 2)
	if err != nil {
		return Hello{}, err
	}
	return Hello{Token: f[0], Cursor: f[1]}, nil
}

// EncodeWelcome serializes a Welcome frame.
func EncodeWelcome(w Welcome) []byte {
	return encodeControl(ControlWelcome, w.Token, w.ResumeFrom, w.Pending)
}

// DecodeWelcome parses a Welcome frame.
func DecodeWelcome(frame []byte) (Welcome, error) {
	f, err := decodeControl(frame, ControlWelcome, 3)
	if err != nil {
		return Welcome{}, err
	}
	return Welcome{Token: f[0], ResumeFrom: f[1], Pending: f[2]}, nil
}

// EncodeHeartbeat serializes a Heartbeat probe.
func EncodeHeartbeat(h Heartbeat) []byte { return encodeControl(ControlHeartbeat, h.Seq) }

// DecodeHeartbeat parses a Heartbeat probe.
func DecodeHeartbeat(frame []byte) (Heartbeat, error) {
	f, err := decodeControl(frame, ControlHeartbeat, 1)
	if err != nil {
		return Heartbeat{}, err
	}
	return Heartbeat{Seq: f[0]}, nil
}

// EncodeHeartbeatAck serializes a heartbeat ack.
func EncodeHeartbeatAck(h Heartbeat) []byte { return encodeControl(ControlHeartbeatAck, h.Seq) }

// DecodeHeartbeatAck parses a heartbeat ack.
func DecodeHeartbeatAck(frame []byte) (Heartbeat, error) {
	f, err := decodeControl(frame, ControlHeartbeatAck, 1)
	if err != nil {
		return Heartbeat{}, err
	}
	return Heartbeat{Seq: f[0]}, nil
}
