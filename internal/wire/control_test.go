package wire

import (
	"errors"
	"testing"
)

func TestControlRoundTrip(t *testing.T) {
	hello := Hello{Token: 0xDEADBEEF01, Cursor: 12345}
	gotH, err := DecodeHello(EncodeHello(hello))
	if err != nil {
		t.Fatal(err)
	}
	if gotH != hello {
		t.Fatalf("hello round trip: got %+v want %+v", gotH, hello)
	}

	welcome := Welcome{Token: 7, ResumeFrom: 99, Pending: 3}
	gotW, err := DecodeWelcome(EncodeWelcome(welcome))
	if err != nil {
		t.Fatal(err)
	}
	if gotW != welcome {
		t.Fatalf("welcome round trip: got %+v want %+v", gotW, welcome)
	}

	hb := Heartbeat{Seq: 42}
	gotB, err := DecodeHeartbeat(EncodeHeartbeat(hb))
	if err != nil {
		t.Fatal(err)
	}
	if gotB != hb {
		t.Fatalf("heartbeat round trip: got %+v want %+v", gotB, hb)
	}
	gotA, err := DecodeHeartbeatAck(EncodeHeartbeatAck(hb))
	if err != nil {
		t.Fatal(err)
	}
	if gotA != hb {
		t.Fatalf("heartbeat ack round trip: got %+v want %+v", gotA, hb)
	}
}

func TestControlKindDetection(t *testing.T) {
	frame := EncodeHello(Hello{Token: 1, Cursor: 2})
	if !IsControlFrame(frame) {
		t.Error("hello not recognized as control frame")
	}
	if kind, ok := ControlKind(frame); !ok || kind != ControlHello {
		t.Errorf("ControlKind = %d, %v", kind, ok)
	}
	// Envelope frames must never look like control frames.
	for _, data := range [][]byte{
		{0x01, 0x00},       // v1 envelope: round 1, zero payloads
		{deltaMagic, 0x01}, // delta envelope prefix
		{},                 // empty
		{controlMagic},     // magic alone, too short
	} {
		if IsControlFrame(data) {
			t.Errorf("frame %v misdetected as control", data)
		}
	}
}

func TestControlDecodeRejects(t *testing.T) {
	// Wrong kind.
	if _, err := DecodeWelcome(EncodeHello(Hello{})); !errors.Is(err, ErrBadFrame) {
		t.Errorf("wrong kind: %v", err)
	}
	// Truncated field.
	frame := EncodeWelcome(Welcome{Token: 300, ResumeFrom: 300, Pending: 300})
	if _, err := DecodeWelcome(frame[:len(frame)-2]); !errors.Is(err, ErrBadFrame) {
		t.Errorf("truncated: %v", err)
	}
	// Trailing garbage.
	if _, err := DecodeHello(append(EncodeHello(Hello{}), 0x00)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("trailing bytes: %v", err)
	}
	// Not a control frame at all.
	if _, err := DecodeHeartbeat([]byte{0x01, 0x02, 0x03}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("non-control: %v", err)
	}
}

// TestControlDistinctFromDelta pins the magic separation: a control frame
// must be rejected by the delta decoder and vice versa, loudly rather
// than misparsed.
func TestControlDistinctFromDelta(t *testing.T) {
	if _, err := DecodeDeltaEnvelope(EncodeHeartbeat(Heartbeat{Seq: 9})); !errors.Is(err, ErrBadFrame) {
		t.Errorf("delta decoder accepted a control frame: %v", err)
	}
	if IsControlFrame([]byte{deltaMagic, controlVersion, ControlHello}) {
		t.Error("delta-magic frame misdetected as control")
	}
}
