package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// deltaMagic tags a delta-framed envelope body. The stateless v1 body
// (EncodeEnvelope) starts with a uvarint round whose first byte is the
// round's low bits; rounds are far below 2^28 in practice, so 0xD5 as a
// leading byte cannot be confused with a well-formed v1 frame from our own
// encoders — and both decoders reject the other's frames loudly rather
// than misparse.
const deltaMagic byte = 0xD5

// epochMagic tags an epoch-tagged delta envelope body: the frame form of
// the multiplexed planes, where many in-flight instances share one hub
// connection and each frame names its instance epoch. Layout: 0xD6, a
// uvarint epoch (≥ 1), then exactly the 0xD5 body fields.
// Epoch 0 is never encoded in this form — it IS the legacy 0xD5 frame —
// so the two encodings biject and every decoder distinguishes them by
// the leading byte. The control plane keeps its own magic (0xC7) and is
// untouched.
const epochMagic byte = 0xD6

// MaxEpoch bounds instance epochs on the wire, for the same reason
// MaxRound bounds rounds: a corrupt varint must not smuggle absurd
// values past the decoder.
const MaxEpoch uint64 = 1 << 40

// ErrBadFrame wraps all content-level decode failures (corrupt body,
// unknown tag, unresolvable delta reference), as opposed to transport I/O
// errors. Readers skip bad frames — crash-fault model: a peer producing
// garbage is treated as crashed, not as fatal to the local node.
var ErrBadFrame = errors.New("wire: bad frame")

func writeFingerprint(w *bytes.Buffer, fp values.Fingerprint) {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], fp.Hi)
	binary.BigEndian.PutUint64(buf[8:], fp.Lo)
	w.Write(buf[:])
}

func readFingerprint(r *bytes.Reader) (values.Fingerprint, error) {
	var buf [16]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return values.Fingerprint{}, fmt.Errorf("%w: truncated fingerprint: %v", ErrBadFrame, err)
	}
	return values.Fingerprint{
		Hi: binary.BigEndian.Uint64(buf[:8]),
		Lo: binary.BigEndian.Uint64(buf[8:]),
	}, nil
}

// EncodeDeltaEnvelope serializes an envelope already in delta form
// (giraf.DeltaTracker.Shrink output): new payloads travel tagged and in
// full, previously-sent payloads travel as 16-byte fingerprint references,
// and the whole-set fingerprint rides along so receivers can skip
// re-merging identical sets.
func EncodeDeltaEnvelope(env giraf.Envelope) ([]byte, error) {
	var w bytes.Buffer
	w.WriteByte(deltaMagic)
	if err := encodeDeltaBody(&w, env); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// EncodeDeltaEnvelopeEpoch serializes a delta-form envelope tagged with
// an instance epoch. Epoch 0 produces the legacy 0xD5 frame (the two
// forms biject; see epochMagic); epoch ≥ 1 produces a 0xD6 frame.
func EncodeDeltaEnvelopeEpoch(env giraf.Envelope, epoch uint64) ([]byte, error) {
	if epoch == 0 {
		return EncodeDeltaEnvelope(env)
	}
	if epoch > MaxEpoch {
		return nil, fmt.Errorf("wire: epoch %d exceeds limit %d", epoch, MaxEpoch)
	}
	var w bytes.Buffer
	w.WriteByte(epochMagic)
	writeUvarint(&w, epoch)
	if err := encodeDeltaBody(&w, env); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// encodeDeltaBody writes the fields shared by the 0xD5 and 0xD6 frames:
// round, set fingerprint, references, new payloads.
func encodeDeltaBody(w *bytes.Buffer, env giraf.Envelope) error {
	writeUvarint(w, uint64(env.Round))
	writeFingerprint(w, env.SetFingerprint)
	writeUvarint(w, uint64(len(env.Refs)))
	for _, fp := range env.Refs {
		writeFingerprint(w, fp)
	}
	writeUvarint(w, uint64(len(env.Payloads)))
	for _, p := range env.Payloads {
		if err := encodePayload(w, p); err != nil {
			return err
		}
	}
	return nil
}

// DecodeDeltaEnvelope parses a frame produced by EncodeDeltaEnvelope. The
// result is still in delta form; resolve it with a giraf.ResolveTable.
func DecodeDeltaEnvelope(data []byte) (giraf.Envelope, error) {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != deltaMagic {
		return giraf.Envelope{}, fmt.Errorf("%w: not a delta envelope (leading byte %#x)", ErrBadFrame, magic)
	}
	return decodeDeltaBody(r)
}

// DecodeDeltaEnvelopeEpoch parses either delta frame form and returns
// the envelope alongside its instance epoch: 0 for a legacy 0xD5 frame,
// the tagged epoch (≥ 1) for a 0xD6 frame.
func DecodeDeltaEnvelopeEpoch(data []byte) (giraf.Envelope, uint64, error) {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil {
		return giraf.Envelope{}, 0, fmt.Errorf("%w: empty frame", ErrBadFrame)
	}
	switch magic {
	case deltaMagic:
		env, err := decodeDeltaBody(r)
		return env, 0, err
	case epochMagic:
		epoch, err := readEpoch(r)
		if err != nil {
			return giraf.Envelope{}, 0, err
		}
		env, err := decodeDeltaBody(r)
		return env, epoch, err
	default:
		return giraf.Envelope{}, 0, fmt.Errorf("%w: not a delta envelope (leading byte %#x)", ErrBadFrame, magic)
	}
}

// DataFrameEpoch peeks a frame's instance epoch without decoding its
// body: 0 for a legacy 0xD5 frame, the tag for a 0xD6 frame. ok is false
// when the frame is neither delta form (control frames, v1 stateless
// envelopes) or the epoch tag itself is malformed. Hubs use this to
// epoch-scope their replay log without paying for a full decode.
func DataFrameEpoch(frame []byte) (epoch uint64, ok bool) {
	if len(frame) == 0 {
		return 0, false
	}
	switch frame[0] {
	case deltaMagic:
		return 0, true
	case epochMagic:
		ep, err := readEpoch(bytes.NewReader(frame[1:]))
		if err != nil {
			return 0, false
		}
		return ep, true
	default:
		return 0, false
	}
}

// readEpoch reads and bounds a 0xD6 frame's epoch tag. Epoch 0 is
// rejected: the canonical encoding for epoch 0 is the 0xD5 frame.
func readEpoch(r *bytes.Reader) (uint64, error) {
	epoch, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: truncated epoch: %v", ErrBadFrame, err)
	}
	if epoch == 0 {
		return 0, fmt.Errorf("%w: epoch 0 must use the legacy frame form", ErrBadFrame)
	}
	if epoch > MaxEpoch {
		return 0, fmt.Errorf("%w: epoch %d exceeds limit %d", ErrBadFrame, epoch, MaxEpoch)
	}
	return epoch, nil
}

// decodeDeltaBody parses the fields shared by the 0xD5 and 0xD6 frames,
// with the reader positioned just past the magic (and epoch, if any).
func decodeDeltaBody(r *bytes.Reader) (giraf.Envelope, error) {
	round, err := readRound(r)
	if err != nil {
		return giraf.Envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	env := giraf.Envelope{Round: int(round)}
	if env.SetFingerprint, err = readFingerprint(r); err != nil {
		return giraf.Envelope{}, err
	}
	nRefs, err := readUvarint(r)
	if err != nil {
		return giraf.Envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	for i := uint64(0); i < nRefs; i++ {
		fp, err := readFingerprint(r)
		if err != nil {
			return giraf.Envelope{}, err
		}
		env.Refs = append(env.Refs, fp)
	}
	nNew, err := readUvarint(r)
	if err != nil {
		return giraf.Envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	for i := uint64(0); i < nNew; i++ {
		p, err := decodePayload(r)
		if err != nil {
			return giraf.Envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		env.Payloads = append(env.Payloads, p)
	}
	if r.Len() != 0 {
		return giraf.Envelope{}, fmt.Errorf("%w: %d trailing bytes after delta envelope", ErrBadFrame, r.Len())
	}
	return env, nil
}

// EnvelopeWriter writes delta-compressed envelope frames to one reliable
// FIFO stream. A payload goes out in full whenever it was not part of the
// previous frame — the full-set fallback that keeps late joiners and the
// reliable-link assumption intact, because a hub replays the whole frame
// log to every new connection in order and references never reach past
// the sender's previous frame. Not safe for concurrent use.
type EnvelopeWriter struct {
	w       io.Writer
	tracker *giraf.DeltaTracker
	epoch   uint64

	// FramesOut / BytesOut / PayloadsElided expose cheap counters so
	// transports can report how much the delta plane saves.
	FramesOut      int
	BytesOut       int
	PayloadsElided int
}

// NewEnvelopeWriter returns a writer with empty delta state, emitting
// legacy (epoch-0) 0xD5 frames.
func NewEnvelopeWriter(w io.Writer) *EnvelopeWriter {
	return &EnvelopeWriter{w: w, tracker: giraf.NewDeltaTracker()}
}

// NewEnvelopeWriterEpoch returns a writer whose frames carry the given
// instance epoch (0 behaves exactly like NewEnvelopeWriter). Each epoch
// is its own delta stream: the writer's tracker spans only this epoch's
// frames, matching the per-epoch ResolveTable on the receiving side.
func NewEnvelopeWriterEpoch(w io.Writer, epoch uint64) *EnvelopeWriter {
	return &EnvelopeWriter{w: w, tracker: giraf.NewDeltaTracker(), epoch: epoch}
}

// WriteEnvelope shrinks env against the stream history and writes one
// frame.
func (ew *EnvelopeWriter) WriteEnvelope(env giraf.Envelope) error {
	delta := ew.tracker.Shrink(env)
	data, err := EncodeDeltaEnvelopeEpoch(delta, ew.epoch)
	if err != nil {
		return err
	}
	ew.FramesOut++
	ew.BytesOut += len(data)
	ew.PayloadsElided += len(delta.Refs)
	return WriteFrame(ew.w, data)
}

// EnvelopeReader reads delta-compressed envelope frames from one reliable
// FIFO stream and resolves them to full envelopes. Not safe for
// concurrent use.
type EnvelopeReader struct {
	r     io.Reader
	table *giraf.ResolveTable
}

// NewEnvelopeReader returns a reader with empty resolve state.
func NewEnvelopeReader(r io.Reader) *EnvelopeReader {
	return &EnvelopeReader{r: r, table: giraf.NewResolveTable()}
}

// ReadEnvelope reads one frame and returns the resolved full envelope.
// Content-level failures are reported wrapped in ErrBadFrame (the caller
// should skip the frame and keep reading); transport errors (including
// io.EOF) pass through unchanged.
func (er *EnvelopeReader) ReadEnvelope() (giraf.Envelope, error) {
	frame, err := ReadFrame(er.r)
	if err != nil {
		return giraf.Envelope{}, err
	}
	delta, err := DecodeDeltaEnvelope(frame)
	if err != nil {
		return giraf.Envelope{}, err
	}
	full, err := er.table.Resolve(delta)
	if err != nil {
		return giraf.Envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return full, nil
}
