package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// deltaMagic tags a delta-framed envelope body. The stateless v1 body
// (EncodeEnvelope) starts with a uvarint round whose first byte is the
// round's low bits; rounds are far below 2^28 in practice, so 0xD5 as a
// leading byte cannot be confused with a well-formed v1 frame from our own
// encoders — and both decoders reject the other's frames loudly rather
// than misparse.
const deltaMagic byte = 0xD5

// ErrBadFrame wraps all content-level decode failures (corrupt body,
// unknown tag, unresolvable delta reference), as opposed to transport I/O
// errors. Readers skip bad frames — crash-fault model: a peer producing
// garbage is treated as crashed, not as fatal to the local node.
var ErrBadFrame = errors.New("wire: bad frame")

func writeFingerprint(w *bytes.Buffer, fp values.Fingerprint) {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], fp.Hi)
	binary.BigEndian.PutUint64(buf[8:], fp.Lo)
	w.Write(buf[:])
}

func readFingerprint(r *bytes.Reader) (values.Fingerprint, error) {
	var buf [16]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return values.Fingerprint{}, fmt.Errorf("%w: truncated fingerprint: %v", ErrBadFrame, err)
	}
	return values.Fingerprint{
		Hi: binary.BigEndian.Uint64(buf[:8]),
		Lo: binary.BigEndian.Uint64(buf[8:]),
	}, nil
}

// EncodeDeltaEnvelope serializes an envelope already in delta form
// (giraf.DeltaTracker.Shrink output): new payloads travel tagged and in
// full, previously-sent payloads travel as 16-byte fingerprint references,
// and the whole-set fingerprint rides along so receivers can skip
// re-merging identical sets.
func EncodeDeltaEnvelope(env giraf.Envelope) ([]byte, error) {
	var w bytes.Buffer
	w.WriteByte(deltaMagic)
	writeUvarint(&w, uint64(env.Round))
	writeFingerprint(&w, env.SetFingerprint)
	writeUvarint(&w, uint64(len(env.Refs)))
	for _, fp := range env.Refs {
		writeFingerprint(&w, fp)
	}
	writeUvarint(&w, uint64(len(env.Payloads)))
	for _, p := range env.Payloads {
		if err := encodePayload(&w, p); err != nil {
			return nil, err
		}
	}
	return w.Bytes(), nil
}

// DecodeDeltaEnvelope parses a frame produced by EncodeDeltaEnvelope. The
// result is still in delta form; resolve it with a giraf.ResolveTable.
func DecodeDeltaEnvelope(data []byte) (giraf.Envelope, error) {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != deltaMagic {
		return giraf.Envelope{}, fmt.Errorf("%w: not a delta envelope (leading byte %#x)", ErrBadFrame, magic)
	}
	round, err := readRound(r)
	if err != nil {
		return giraf.Envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	env := giraf.Envelope{Round: int(round)}
	if env.SetFingerprint, err = readFingerprint(r); err != nil {
		return giraf.Envelope{}, err
	}
	nRefs, err := readUvarint(r)
	if err != nil {
		return giraf.Envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	for i := uint64(0); i < nRefs; i++ {
		fp, err := readFingerprint(r)
		if err != nil {
			return giraf.Envelope{}, err
		}
		env.Refs = append(env.Refs, fp)
	}
	nNew, err := readUvarint(r)
	if err != nil {
		return giraf.Envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	for i := uint64(0); i < nNew; i++ {
		p, err := decodePayload(r)
		if err != nil {
			return giraf.Envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		env.Payloads = append(env.Payloads, p)
	}
	if r.Len() != 0 {
		return giraf.Envelope{}, fmt.Errorf("%w: %d trailing bytes after delta envelope", ErrBadFrame, r.Len())
	}
	return env, nil
}

// EnvelopeWriter writes delta-compressed envelope frames to one reliable
// FIFO stream. A payload goes out in full whenever it was not part of the
// previous frame — the full-set fallback that keeps late joiners and the
// reliable-link assumption intact, because a hub replays the whole frame
// log to every new connection in order and references never reach past
// the sender's previous frame. Not safe for concurrent use.
type EnvelopeWriter struct {
	w       io.Writer
	tracker *giraf.DeltaTracker

	// FramesOut / BytesOut / PayloadsElided expose cheap counters so
	// transports can report how much the delta plane saves.
	FramesOut      int
	BytesOut       int
	PayloadsElided int
}

// NewEnvelopeWriter returns a writer with empty delta state.
func NewEnvelopeWriter(w io.Writer) *EnvelopeWriter {
	return &EnvelopeWriter{w: w, tracker: giraf.NewDeltaTracker()}
}

// WriteEnvelope shrinks env against the stream history and writes one
// frame.
func (ew *EnvelopeWriter) WriteEnvelope(env giraf.Envelope) error {
	delta := ew.tracker.Shrink(env)
	data, err := EncodeDeltaEnvelope(delta)
	if err != nil {
		return err
	}
	ew.FramesOut++
	ew.BytesOut += len(data)
	ew.PayloadsElided += len(delta.Refs)
	return WriteFrame(ew.w, data)
}

// EnvelopeReader reads delta-compressed envelope frames from one reliable
// FIFO stream and resolves them to full envelopes. Not safe for
// concurrent use.
type EnvelopeReader struct {
	r     io.Reader
	table *giraf.ResolveTable
}

// NewEnvelopeReader returns a reader with empty resolve state.
func NewEnvelopeReader(r io.Reader) *EnvelopeReader {
	return &EnvelopeReader{r: r, table: giraf.NewResolveTable()}
}

// ReadEnvelope reads one frame and returns the resolved full envelope.
// Content-level failures are reported wrapped in ErrBadFrame (the caller
// should skip the frame and keep reading); transport errors (including
// io.EOF) pass through unchanged.
func (er *EnvelopeReader) ReadEnvelope() (giraf.Envelope, error) {
	frame, err := ReadFrame(er.r)
	if err != nil {
		return giraf.Envelope{}, err
	}
	delta, err := DecodeDeltaEnvelope(frame)
	if err != nil {
		return giraf.Envelope{}, err
	}
	full, err := er.table.Resolve(delta)
	if err != nil {
		return giraf.Envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return full, nil
}
