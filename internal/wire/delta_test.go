package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

func fullEnvelope(round int, sets ...values.Set) giraf.Envelope {
	env := giraf.Envelope{Round: round}
	var h values.Hasher
	for _, s := range sets {
		p := core.SetPayload{Proposed: s}
		env.Payloads = append(env.Payloads, p)
		h.WriteFingerprint(p.PayloadFingerprint())
	}
	env.SetFingerprint = h.Sum()
	return env
}

// TestEnvelopeStreamRoundTrip drives a writer/reader pair over an
// in-memory stream: every envelope must come back structurally identical
// (same round, same payload keys in the same canonical order) even when
// later frames are pure references.
func TestEnvelopeStreamRoundTrip(t *testing.T) {
	s1 := values.NewSet(values.Num(1))
	s2 := values.NewSet(values.Num(1), values.Num(2))
	envs := []giraf.Envelope{
		fullEnvelope(1, s1),
		fullEnvelope(2, s1, s2),
		fullEnvelope(3, s1, s2), // identical set: everything travels as refs
	}

	var stream bytes.Buffer
	w := NewEnvelopeWriter(&stream)
	for _, env := range envs {
		if err := w.WriteEnvelope(env); err != nil {
			t.Fatal(err)
		}
	}
	if w.PayloadsElided != 3 { // round2 elides s1; round3 elides s1 and s2
		t.Errorf("PayloadsElided = %d, want 3", w.PayloadsElided)
	}

	r := NewEnvelopeReader(&stream)
	for _, want := range envs {
		got, err := r.ReadEnvelope()
		if err != nil {
			t.Fatal(err)
		}
		if got.Round != want.Round || len(got.Payloads) != len(want.Payloads) {
			t.Fatalf("round %d: shape mismatch (%d payloads, want %d)", want.Round, len(got.Payloads), len(want.Payloads))
		}
		if got.SetFingerprint != want.SetFingerprint {
			t.Fatalf("round %d: set fingerprint changed in transit", want.Round)
		}
		for i := range want.Payloads {
			if got.Payloads[i].PayloadKey() != want.Payloads[i].PayloadKey() {
				t.Fatalf("round %d payload %d: key mismatch", want.Round, i)
			}
		}
	}
	if _, err := r.ReadEnvelope(); err != io.EOF {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
}

// TestDeltaShrinksWire pins the point of the exercise: rebroadcasting a
// stable payload set must cost a fraction of the full encoding.
func TestDeltaShrinksWire(t *testing.T) {
	big := values.NewSet()
	for i := int64(0); i < 64; i++ {
		big.Add(values.Num(i))
	}
	env := fullEnvelope(1, big)
	full, err := EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}

	tracker := giraf.NewDeltaTracker()
	_ = tracker.Shrink(env) // first send: payload now known
	repeat := tracker.Shrink(fullEnvelope(2, big))
	delta, err := EncodeDeltaEnvelope(repeat)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(full)/4 {
		t.Errorf("repeat frame is %d bytes, full form %d: delta not shrinking the wire", len(delta), len(full))
	}
}

// TestLateJoinerReplay mimics the hub contract: a reader that starts from
// the beginning of the logged stream resolves everything, which is why
// replay-from-log keeps delta broadcast compatible with late joiners.
func TestLateJoinerReplay(t *testing.T) {
	s := values.NewSet(values.Num(5))
	var stream bytes.Buffer
	w := NewEnvelopeWriter(&stream)
	for round := 1; round <= 5; round++ {
		if err := w.WriteEnvelope(fullEnvelope(round, s)); err != nil {
			t.Fatal(err)
		}
	}
	log := stream.Bytes()

	// A late joiner replays the whole log in order: every ref resolves.
	r := NewEnvelopeReader(bytes.NewReader(log))
	for round := 1; round <= 5; round++ {
		env, err := r.ReadEnvelope()
		if err != nil {
			t.Fatalf("late joiner failed at round %d: %v", round, err)
		}
		if len(env.Payloads) != 1 {
			t.Fatalf("round %d resolved to %d payloads", round, len(env.Payloads))
		}
	}

	// A reader that skips the prefix hits an unresolvable reference and
	// reports it as a bad frame (not a crash, not silent corruption).
	var tail bytes.Buffer
	tailReader := NewEnvelopeReader(&tail)
	// Find the second frame boundary by re-reading with framing only.
	first, err := ReadFrame(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	tail.Write(log[4+len(first):])
	if _, err := tailReader.ReadEnvelope(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame for unresolvable tail, got %v", err)
	}
}

// TestDeltaRejectsStatelessFrames: the two framings must not misparse each
// other.
func TestDeltaRejectsStatelessFrames(t *testing.T) {
	env := fullEnvelope(1, values.NewSet(values.Num(1)))
	v1, err := EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDeltaEnvelope(v1); err == nil {
		t.Error("delta decoder accepted a stateless v1 body")
	}
	v2, err := EncodeDeltaEnvelope(giraf.NewDeltaTracker().Shrink(env))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(v2); err == nil {
		t.Error("stateless decoder accepted a delta body")
	}
}

// TestEpochEnvelopeRoundTrip pins the 0xD6 frame form: epoch-tagged
// frames round-trip envelope and epoch, and epoch 0 collapses to the
// legacy 0xD5 encoding byte-for-byte (the two forms biject).
func TestEpochEnvelopeRoundTrip(t *testing.T) {
	env := fullEnvelope(3, values.NewSet(values.Num(1), values.Num(2)))
	for _, epoch := range []uint64{1, 2, 7, 1 << 20, MaxEpoch} {
		data, err := EncodeDeltaEnvelopeEpoch(env, epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		got, gotEpoch, err := DecodeDeltaEnvelopeEpoch(data)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if gotEpoch != epoch {
			t.Fatalf("epoch %d came back as %d", epoch, gotEpoch)
		}
		if got.Round != env.Round || got.SetFingerprint != env.SetFingerprint {
			t.Fatalf("epoch %d: envelope mangled in transit", epoch)
		}
		if peeked, ok := DataFrameEpoch(data); !ok || peeked != epoch {
			t.Fatalf("DataFrameEpoch = (%d, %v), want (%d, true)", peeked, ok, epoch)
		}
		// The tagged form must be rejected by the legacy decoder: an
		// unmultiplexed reader never silently misparses mux traffic.
		if _, err := DecodeDeltaEnvelope(data); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("legacy decoder accepted a 0xD6 frame: %v", err)
		}
	}

	legacy, err := EncodeDeltaEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	viaEpoch0, err := EncodeDeltaEnvelopeEpoch(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy, viaEpoch0) {
		t.Fatal("epoch 0 must encode as the legacy 0xD5 frame")
	}
	if _, gotEpoch, err := DecodeDeltaEnvelopeEpoch(legacy); err != nil || gotEpoch != 0 {
		t.Fatalf("legacy frame via epoch decoder = (epoch %d, %v), want (0, nil)", gotEpoch, err)
	}
	if peeked, ok := DataFrameEpoch(legacy); !ok || peeked != 0 {
		t.Fatalf("DataFrameEpoch(legacy) = (%d, %v), want (0, true)", peeked, ok)
	}
}

// TestEpochEnvelopeRejects pins the malformed-epoch failure modes.
func TestEpochEnvelopeRejects(t *testing.T) {
	env := fullEnvelope(1, values.NewSet(values.Num(1)))
	if _, err := EncodeDeltaEnvelopeEpoch(env, MaxEpoch+1); err == nil {
		t.Fatal("encoder accepted an epoch beyond MaxEpoch")
	}
	// A hand-built 0xD6 frame carrying epoch 0: the canonical form for
	// epoch 0 is 0xD5, so this must be rejected, not aliased.
	legacy, err := EncodeDeltaEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	bogus := append([]byte{epochMagic, 0}, legacy[1:]...)
	if _, _, err := DecodeDeltaEnvelopeEpoch(bogus); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("decoder accepted a 0xD6 frame with epoch 0: %v", err)
	}
	if _, ok := DataFrameEpoch(bogus); ok {
		t.Fatal("DataFrameEpoch accepted a 0xD6 frame with epoch 0")
	}
	if _, ok := DataFrameEpoch(nil); ok {
		t.Fatal("DataFrameEpoch accepted an empty frame")
	}
	if _, ok := DataFrameEpoch([]byte{epochMagic}); ok {
		t.Fatal("DataFrameEpoch accepted a truncated epoch tag")
	}
	// Control frames are not data frames.
	if _, ok := DataFrameEpoch(EncodeHeartbeat(Heartbeat{Seq: 1})); ok {
		t.Fatal("DataFrameEpoch accepted a control frame")
	}
}

// TestEpochWriterStreams pins the per-epoch delta family: two writers on
// different epochs each maintain their own tracker, and a reader
// demultiplexing by epoch resolves each stream against its own table.
func TestEpochWriterStreams(t *testing.T) {
	s := values.NewSet(values.Num(1), values.Num(2))
	var stream bytes.Buffer
	w1 := NewEnvelopeWriterEpoch(&stream, 1)
	w2 := NewEnvelopeWriterEpoch(&stream, 2)
	for round := 1; round <= 3; round++ {
		if err := w1.WriteEnvelope(fullEnvelope(round, s)); err != nil {
			t.Fatal(err)
		}
		if err := w2.WriteEnvelope(fullEnvelope(round, s)); err != nil {
			t.Fatal(err)
		}
	}
	// Each stream elides its payload from round 2 on, independently.
	if w1.PayloadsElided != 2 || w2.PayloadsElided != 2 {
		t.Fatalf("PayloadsElided = (%d, %d), want (2, 2)", w1.PayloadsElided, w2.PayloadsElided)
	}
	tables := map[uint64]*giraf.ResolveTable{1: giraf.NewResolveTable(), 2: giraf.NewResolveTable()}
	counts := map[uint64]int{}
	for {
		frame, err := ReadFrame(&stream)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		delta, epoch, err := DecodeDeltaEnvelopeEpoch(frame)
		if err != nil {
			t.Fatal(err)
		}
		full, err := tables[epoch].Resolve(delta)
		if err != nil {
			t.Fatalf("epoch %d round %d: %v", epoch, delta.Round, err)
		}
		if len(full.Payloads) != 1 {
			t.Fatalf("epoch %d round %d: %d payloads, want 1", epoch, full.Round, len(full.Payloads))
		}
		counts[epoch]++
	}
	if counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("frame counts per epoch = %v, want 3 each", counts)
	}
}
