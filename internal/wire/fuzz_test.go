package wire

import (
	"bytes"
	"testing"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// FuzzDecodeEnvelope: arbitrary bytes must never panic the stateless
// decoder, and anything it accepts must re-encode/decode to identical
// canonical keys (round-trip stability).
func FuzzDecodeEnvelope(f *testing.F) {
	seed, _ := EncodeEnvelope(giraf.Envelope{
		Round: 3,
		Payloads: []giraf.Payload{
			core.SetPayload{Proposed: values.NewSet(values.Num(1), values.Num(2))},
			core.MakeESSPayload(values.NewSet(values.Num(1)), values.NewHistory(values.Num(1)), values.NewCounters()),
		},
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		re, err := EncodeEnvelope(env)
		if err != nil {
			t.Fatalf("re-encoding accepted envelope failed: %v", err)
		}
		env2, err := DecodeEnvelope(re)
		if err != nil {
			t.Fatalf("decoding re-encoded envelope failed: %v", err)
		}
		if env2.Round != env.Round || len(env2.Payloads) != len(env.Payloads) {
			t.Fatal("round-trip changed envelope shape")
		}
		for i := range env.Payloads {
			if env.Payloads[i].PayloadKey() != env2.Payloads[i].PayloadKey() {
				t.Fatal("round-trip changed a canonical payload key")
			}
		}
	})
}

// FuzzDecodeDeltaEnvelope: the delta decoder must never panic, and
// accepted frames must round-trip with stable refs and fingerprints.
func FuzzDecodeDeltaEnvelope(f *testing.F) {
	full := giraf.Envelope{
		Round: 2,
		Payloads: []giraf.Payload{
			core.SetPayload{Proposed: values.NewSet(values.Num(7))},
		},
		SetFingerprint: values.FingerprintString("E"),
	}
	tracker := giraf.NewDeltaTracker()
	first, _ := EncodeDeltaEnvelope(tracker.Shrink(full))
	second, _ := EncodeDeltaEnvelope(tracker.Shrink(full)) // all refs now
	epochTagged, _ := EncodeDeltaEnvelopeEpoch(giraf.Envelope{
		Round:          3,
		Payloads:       []giraf.Payload{core.SetPayload{Proposed: values.NewSet(values.Num(9))}},
		SetFingerprint: values.FingerprintString("F"),
	}, 42)
	f.Add(first)
	f.Add(second)
	f.Add([]byte{deltaMagic})
	f.Add(epochTagged)
	f.Add([]byte{epochMagic, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		// The epoch decoder and the cheap epoch peek must never panic, and
		// must agree on whatever they accept.
		if env, epoch, err := DecodeDeltaEnvelopeEpoch(data); err == nil {
			peeked, ok := DataFrameEpoch(data)
			if !ok || peeked != epoch {
				t.Fatalf("DataFrameEpoch = (%d, %v), decoder said epoch %d", peeked, ok, epoch)
			}
			re, err := EncodeDeltaEnvelopeEpoch(env, epoch)
			if err != nil {
				t.Fatalf("re-encoding accepted epoch envelope failed: %v", err)
			}
			if _, epoch2, err := DecodeDeltaEnvelopeEpoch(re); err != nil || epoch2 != epoch {
				t.Fatalf("epoch round-trip failed: epoch %d → %d, err %v", epoch, epoch2, err)
			}
		}
		env, err := DecodeDeltaEnvelope(data)
		if err != nil {
			return
		}
		re, err := EncodeDeltaEnvelope(env)
		if err != nil {
			t.Fatalf("re-encoding accepted delta envelope failed: %v", err)
		}
		env2, err := DecodeDeltaEnvelope(re)
		if err != nil {
			t.Fatalf("decoding re-encoded delta envelope failed: %v", err)
		}
		if env2.Round != env.Round || len(env2.Refs) != len(env.Refs) ||
			len(env2.Payloads) != len(env.Payloads) || env2.SetFingerprint != env.SetFingerprint {
			t.Fatal("delta round-trip changed envelope shape")
		}
		for i := range env.Refs {
			if env.Refs[i] != env2.Refs[i] {
				t.Fatal("delta round-trip changed a reference fingerprint")
			}
		}
	})
}

// FuzzReadFrame: framing must reject garbage without panicking, and
// whatever it accepts must re-frame byte-identically.
func FuzzReadFrame(f *testing.F) {
	var framed bytes.Buffer
	_ = WriteFrame(&framed, []byte("hello"))
	f.Add(framed.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, body); err != nil {
			t.Fatalf("re-framing accepted body failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("re-framing is not byte-identical to the accepted prefix")
		}
	})
}
