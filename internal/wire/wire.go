// Package wire is the binary wire format for GIRAF envelopes and the
// payload types of Algorithms 2–4, used by the TCP transport (package
// tcpnet). Values, sets, histories and counter tables are length-prefixed
// (uvarint) so the encoding is unambiguous and self-delimiting; envelopes
// carry a payload-type tag so one connection can transport either
// algorithm family.
//
// The format is deliberately identity-free: frames carry no sender field
// of any kind — anonymity holds on the wire, not just in the algorithm.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

// Payload type tags.
const (
	tagSetPayload byte = 1 // core.SetPayload (Algorithms 2 and 4)
	tagESSPayload byte = 2 // core.ESSPayload (Algorithm 3)
)

// MaxElement bounds any single length field to keep a corrupt or hostile
// frame from demanding gigabytes.
const MaxElement = 1 << 20

// MaxRound bounds round numbers on the wire. Rounds are not lengths, so
// MaxElement would be wrong for them: a node ticking every few
// milliseconds passes 2^20 rounds within hours, and rejecting its frames
// would silently deafen every receiver. 2^40 rounds is ~70 years at 2ms.
const MaxRound = 1 << 40

// readRound decodes a round number (uvarint bounded by MaxRound).
func readRound(r *bytes.Reader) (uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("wire: truncated round: %w", err)
	}
	if n > MaxRound {
		return 0, fmt.Errorf("wire: round %d exceeds limit %d", n, uint64(MaxRound))
	}
	return n, nil
}

func writeUvarint(w *bytes.Buffer, n uint64) {
	var buf [binary.MaxVarintLen64]byte
	w.Write(buf[:binary.PutUvarint(buf[:], n)])
}

func readUvarint(r *bytes.Reader) (uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("wire: truncated varint: %w", err)
	}
	if n > MaxElement {
		return 0, fmt.Errorf("wire: length %d exceeds limit %d", n, MaxElement)
	}
	return n, nil
}

func writeValue(w *bytes.Buffer, v values.Value) {
	writeUvarint(w, uint64(len(v)))
	w.WriteString(string(v))
}

func readValue(r *bytes.Reader) (values.Value, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("wire: truncated value: %w", err)
	}
	// Interning collapses the thousands of copies of each proposal value
	// that arrive across frames onto one shared backing allocation.
	return values.Intern(values.Value(buf)), nil
}

func writeSet(w *bytes.Buffer, s values.Set) {
	sorted := s.Sorted()
	writeUvarint(w, uint64(len(sorted)))
	for _, v := range sorted {
		writeValue(w, v)
	}
}

func readSet(r *bytes.Reader) (values.Set, error) {
	n, err := readUvarint(r)
	if err != nil {
		return values.Set{}, err
	}
	out := values.NewSet()
	for i := uint64(0); i < n; i++ {
		v, err := readValue(r)
		if err != nil {
			return values.Set{}, err
		}
		out.Add(v)
	}
	return out, nil
}

func writeHistory(w *bytes.Buffer, h values.History) {
	writeUvarint(w, uint64(len(h)))
	for _, v := range h {
		writeValue(w, v)
	}
}

func readHistory(r *bytes.Reader) (values.History, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	out := make(values.History, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := readValue(r)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func writeCounters(w *bytes.Buffer, c values.Counters) {
	hs := c.Histories()
	writeUvarint(w, uint64(len(hs)))
	for _, h := range hs {
		writeHistory(w, h)
		writeUvarint(w, uint64(c.Get(h)))
	}
}

func readCounters(r *bytes.Reader) (values.Counters, error) {
	n, err := readUvarint(r)
	if err != nil {
		return values.Counters{}, err
	}
	out := values.NewCounters()
	for i := uint64(0); i < n; i++ {
		h, err := readHistory(r)
		if err != nil {
			return values.Counters{}, err
		}
		cnt, err := readUvarint(r)
		if err != nil {
			return values.Counters{}, err
		}
		out.Set(h, int(cnt))
	}
	return out, nil
}

// encodePayload appends one tagged payload.
func encodePayload(w *bytes.Buffer, p giraf.Payload) error {
	switch pay := p.(type) {
	case core.SetPayload:
		w.WriteByte(tagSetPayload)
		writeSet(w, pay.Proposed)
	case core.ESSPayload:
		w.WriteByte(tagESSPayload)
		writeSet(w, pay.Proposed)
		writeHistory(w, pay.History)
		writeCounters(w, pay.Counters)
	default:
		return fmt.Errorf("wire: unsupported payload type %T", p)
	}
	return nil
}

func decodePayload(r *bytes.Reader) (giraf.Payload, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("wire: truncated payload tag: %w", err)
	}
	switch tag {
	case tagSetPayload:
		s, err := readSet(r)
		if err != nil {
			return nil, err
		}
		return core.SetPayload{Proposed: s}, nil
	case tagESSPayload:
		s, err := readSet(r)
		if err != nil {
			return nil, err
		}
		h, err := readHistory(r)
		if err != nil {
			return nil, err
		}
		c, err := readCounters(r)
		if err != nil {
			return nil, err
		}
		return core.MakeESSPayload(s, h, c), nil
	default:
		return nil, fmt.Errorf("wire: unknown payload tag %d", tag)
	}
}

// EncodeEnvelope serializes ⟨M, k⟩.
func EncodeEnvelope(env giraf.Envelope) ([]byte, error) {
	var w bytes.Buffer
	writeUvarint(&w, uint64(env.Round))
	writeUvarint(&w, uint64(len(env.Payloads)))
	for _, p := range env.Payloads {
		if err := encodePayload(&w, p); err != nil {
			return nil, err
		}
	}
	return w.Bytes(), nil
}

// DecodeEnvelope parses a frame produced by EncodeEnvelope.
func DecodeEnvelope(data []byte) (giraf.Envelope, error) {
	r := bytes.NewReader(data)
	round, err := readRound(r)
	if err != nil {
		return giraf.Envelope{}, err
	}
	count, err := readUvarint(r)
	if err != nil {
		return giraf.Envelope{}, err
	}
	env := giraf.Envelope{Round: int(round)}
	for i := uint64(0); i < count; i++ {
		p, err := decodePayload(r)
		if err != nil {
			return giraf.Envelope{}, err
		}
		env.Payloads = append(env.Payloads, p)
	}
	if r.Len() != 0 {
		return giraf.Envelope{}, fmt.Errorf("wire: %d trailing bytes after envelope", r.Len())
	}
	return env, nil
}

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, data []byte) error {
	if len(data) > MaxElement {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(data), MaxElement)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("wire: writing frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxElement {
		return nil, fmt.Errorf("wire: frame length %d exceeds limit %d", n, MaxElement)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return buf, nil
}
