package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"anonconsensus/internal/core"
	"anonconsensus/internal/giraf"
	"anonconsensus/internal/values"
)

func randSet(bs []byte) values.Set {
	s := values.NewSet()
	for _, b := range bs {
		s.Add(values.Num(int64(b % 32)))
	}
	return s
}

func randHistory(bs []byte) values.History {
	h := values.NewHistory(values.Num(0))
	for _, b := range bs {
		h = h.Append(values.Num(int64(b % 4)))
	}
	return h
}

func TestEnvelopeRoundTripSetPayloads(t *testing.T) {
	env := giraf.Envelope{
		Round: 12,
		Payloads: []giraf.Payload{
			core.SetPayload{Proposed: values.NewSet(values.Num(1), values.Bot)},
			core.SetPayload{Proposed: values.NewSet()},
		},
	}
	data, err := EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 12 || len(got.Payloads) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	for i := range env.Payloads {
		if got.Payloads[i].PayloadKey() != env.Payloads[i].PayloadKey() {
			t.Errorf("payload %d key mismatch", i)
		}
	}
}

func TestEnvelopeRoundTripESSPayloads(t *testing.T) {
	h := values.NewHistory(values.Num(1)).Append(values.Num(2))
	c := values.NewCounters()
	c.Set(values.NewHistory(values.Num(1)), 3)
	c.Set(h, 7)
	env := giraf.Envelope{
		Round: 5,
		Payloads: []giraf.Payload{
			core.ESSPayload{
				Proposed: values.NewSet(values.Num(2), values.Bot),
				History:  h,
				Counters: c,
			},
		},
	}
	data, err := EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	gp := got.Payloads[0].(core.ESSPayload)
	if gp.PayloadKey() != env.Payloads[0].PayloadKey() {
		t.Error("ESS payload key mismatch after round trip")
	}
	if gp.Counters.Get(h) != 7 {
		t.Errorf("counter = %d, want 7", gp.Counters.Get(h))
	}
}

func TestQuickEnvelopeRoundTrip(t *testing.T) {
	f := func(round uint16, setSeeds [][]byte, histSeed []byte, cnt uint8) bool {
		env := giraf.Envelope{Round: int(round)}
		if len(setSeeds) > 5 {
			setSeeds = setSeeds[:5]
		}
		for i, seed := range setSeeds {
			if i%2 == 0 {
				env.Payloads = append(env.Payloads, core.SetPayload{Proposed: randSet(seed)})
				continue
			}
			c := values.NewCounters()
			h := randHistory(histSeed)
			c.Set(h, int(cnt%50)+1)
			env.Payloads = append(env.Payloads, core.ESSPayload{
				Proposed: randSet(seed),
				History:  h,
				Counters: c,
			})
		}
		data, err := EncodeEnvelope(env)
		if err != nil {
			return false
		}
		got, err := DecodeEnvelope(data)
		if err != nil || got.Round != env.Round || len(got.Payloads) != len(env.Payloads) {
			return false
		}
		for i := range env.Payloads {
			if got.Payloads[i].PayloadKey() != env.Payloads[i].PayloadKey() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		_, _ = DecodeEnvelope(junk)
		return true
	}
	cfg := &quick.Config{MaxCount: 800, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data, err := EncodeEnvelope(giraf.Envelope{Round: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(append(data, 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEncodeRejectsUnknownPayload(t *testing.T) {
	if _, err := EncodeEnvelope(giraf.Envelope{Round: 1, Payloads: []giraf.Payload{bogusPayload{}}}); err == nil {
		t.Error("unknown payload type accepted")
	}
}

type bogusPayload struct{}

func (bogusPayload) PayloadKey() string { return "bogus" }

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{[]byte("hello"), {}, []byte("world")}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("read past last frame must fail")
	}
}

func TestFrameLengthLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxElement+1)); err == nil {
		t.Error("oversized frame accepted on write")
	}
	// Hand-craft an oversized header.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted on read")
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame accepted")
	}
}
