package workload

import (
	"context"
	"testing"
)

// FuzzWorkloadTrace pins the canonical-form contract: any text ParseTrace
// accepts must re-encode byte-identically and survive a second parse.
func FuzzWorkloadTrace(f *testing.F) {
	res, err := Run(context.Background(), Spec{
		Seed: 3, Ops: 12, Rate: 300, Arrival: Gamma, Shape: 0.7,
		Classes: []Class{
			{Name: "a", Weight: 2, Alg: ES, N: 3, GST: 1},
			{Name: "b", Weight: 1, Alg: ESS, N: 3, GST: 1, StableSource: 2},
		},
		Servers: 2, QueueDepth: 2, AdmitRate: 250, AdmitBurst: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(res.EncodeTrace())
	live := LiveResult(res.Spec, []Record{
		{Arrival: Arrival{TimeUS: 10, Class: 0, Seed: 5}, Outcome: OK, WaitUS: 1, SvcUS: 9, LatUS: 10, Rounds: 2, DecidedProcs: 3, Agreed: true},
		{Arrival: Arrival{TimeUS: 20, Class: 1, Seed: 6}, Outcome: Errored},
	})
	live.Spec.Ops = 2
	f.Add(live.EncodeTrace())
	f.Add("workload v1 mode=virtual seed=0 ops=0\n")
	f.Add("class name=a weight=1 alg=es n=3\nop t=0\n")

	f.Fuzz(func(t *testing.T, text string) {
		res, err := ParseTrace(text)
		if err != nil {
			return
		}
		enc := res.EncodeTrace()
		if enc != text {
			t.Fatalf("accepted trace is not canonical:\n%q\nre-encodes to\n%q", text, enc)
		}
		again, err := ParseTrace(enc)
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if again.EncodeTrace() != enc {
			t.Fatal("Encode/Parse is not a fixed point")
		}
	})
}
