package workload

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// ClassStats aggregates one class's (or the whole run's) records.
type ClassStats struct {
	// Name is the class name ("all" for the run-level row); Weight its
	// configured share (0 for the run-level row).
	Name   string
	Weight int
	// Ops counts the class's arrivals; Done the proposals served to
	// completion; ShedAdmission/ShedQueue/Errored the other outcomes.
	Ops, Done, ShedAdmission, ShedQueue, Errored int
	// P50US/P95US/P99US are nearest-rank decision-latency percentiles over
	// the served proposals, in microseconds (0 when nothing was served).
	P50US, P95US, P99US int64
	// MeanWaitUS is the mean queue wait of served proposals.
	MeanWaitUS int64
	// Throughput is served proposals per second over the run's makespan.
	Throughput float64
	// AgreedPct is the percentage of served instances whose deciders all
	// agreed (100 for fault-free classes).
	AgreedPct int
}

// shedPct renders the class's total shed percentage.
func (c *ClassStats) shedPct() float64 {
	if c.Ops == 0 {
		return 0
	}
	return 100 * float64(c.ShedAdmission+c.ShedQueue) / float64(c.Ops)
}

// Report is the SLO summary of one workload Result: run-level totals, one
// row per class, and the weight-normalized fairness index.
type Report struct {
	Mode  Mode
	Total ClassStats
	// PerClass has one entry per Spec.Classes, in spec order.
	PerClass []ClassStats
	// MakespanUS is the virtual (or measured) instant the last served
	// proposal completed.
	MakespanUS int64
	// Fairness is Jain's fairness index over the classes'
	// weight-normalized completion counts: 1 means every class got
	// exactly its configured share of the served traffic, 1/m means one
	// of m classes got everything. 0 when nothing was served.
	Fairness float64
}

// Report aggregates the result's records into the SLO summary.
func (r *Result) Report() *Report {
	rep := &Report{Mode: r.Mode}
	rep.PerClass = make([]ClassStats, len(r.Spec.Classes))
	for i := range r.Spec.Classes {
		rep.PerClass[i].Name = r.Spec.Classes[i].Name
		rep.PerClass[i].Weight = r.Spec.Classes[i].Weight
	}
	rep.Total.Name = "all"
	for i := range r.Records {
		rec := &r.Records[i]
		if rec.Outcome == OK {
			if end := rec.TimeUS + rec.LatUS; end > rep.MakespanUS {
				rep.MakespanUS = end
			}
		}
	}
	lats := make([]int64, 0, len(r.Records))
	fill := func(cs *ClassStats, match func(*Record) bool) {
		lats = lats[:0]
		var waitSum int64
		agreed := 0
		for i := range r.Records {
			rec := &r.Records[i]
			if !match(rec) {
				continue
			}
			cs.Ops++
			switch rec.Outcome {
			case OK:
				cs.Done++
				lats = append(lats, rec.LatUS)
				waitSum += rec.WaitUS
				if rec.Agreed {
					agreed++
				}
			case ShedAdmission:
				cs.ShedAdmission++
			case ShedQueue:
				cs.ShedQueue++
			case Errored:
				cs.Errored++
			}
		}
		if cs.Done > 0 {
			cs.P50US = percentileUS(lats, 50)
			cs.P95US = percentileUS(lats, 95)
			cs.P99US = percentileUS(lats, 99)
			cs.MeanWaitUS = waitSum / int64(cs.Done)
			cs.AgreedPct = 100 * agreed / cs.Done
			if rep.MakespanUS > 0 {
				cs.Throughput = float64(cs.Done) / (float64(rep.MakespanUS) / 1e6)
			}
		}
	}
	fill(&rep.Total, func(*Record) bool { return true })
	for ci := range rep.PerClass {
		ci := ci
		fill(&rep.PerClass[ci], func(rec *Record) bool { return rec.Class == ci })
	}
	rep.Fairness = jain(rep.PerClass)
	return rep
}

// jain computes Jain's fairness index over the classes' weight-normalized
// completion counts.
func jain(classes []ClassStats) float64 {
	var sum, sumSq float64
	m := 0
	for i := range classes {
		if classes[i].Weight < 1 {
			continue
		}
		x := float64(classes[i].Done) / float64(classes[i].Weight)
		sum += x
		sumSq += x * x
		m++
	}
	if m == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(m) * sumSq)
}

// percentileUS returns the p-th nearest-rank percentile of xs (sorted
// in-place).
func percentileUS(xs []int64, p int) int64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	rank := (p*len(xs) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(xs) {
		rank = len(xs)
	}
	return xs[rank-1]
}

// ms renders a microsecond quantity as fixed-precision milliseconds.
func ms(us int64) string { return fmt.Sprintf("%.2f", float64(us)/1000) }

// Render writes the report as a fixed-width table: a pure function of the
// report, byte-identical at any parallelism for a fixed spec (virtual
// mode).
func (rep *Report) Render(w io.Writer) error {
	header := []string{"class", "weight", "ops", "ok", "shed%", "thr/s", "p50ms", "p95ms", "p99ms", "wait-ms", "agree%"}
	row := func(cs *ClassStats) []string {
		weight := "-"
		if cs.Weight > 0 {
			weight = fmt.Sprint(cs.Weight)
		}
		return []string{
			cs.Name, weight, fmt.Sprint(cs.Ops), fmt.Sprint(cs.Done),
			fmt.Sprintf("%.1f", cs.shedPct()), fmt.Sprintf("%.1f", cs.Throughput),
			ms(cs.P50US), ms(cs.P95US), ms(cs.P99US), ms(cs.MeanWaitUS),
			fmt.Sprintf("%d", cs.AgreedPct),
		}
	}
	rows := [][]string{row(&rep.Total)}
	for i := range rep.PerClass {
		rows = append(rows, row(&rep.PerClass[i]))
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	rule := make([]string, len(header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "(mode=%s, makespan %.2fs, fairness %.3f — Jain's index over weight-normalized completions)\n",
		rep.Mode, float64(rep.MakespanUS)/1e6, rep.Fairness)
	return err
}
