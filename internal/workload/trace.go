package workload

import (
	"fmt"
	"strconv"
	"strings"

	"anonconsensus/internal/env"
)

// The canonical trace form, like env.Scenario's and explore.Trace's text
// forms, is a fixed point of Encode/Parse: Encode(Parse(Encode(r))) ==
// Encode(r), pinned by tests and fuzzed by FuzzWorkloadTrace. It records
// the normalized spec (minus Parallelism, which never reaches output), one
// line per class, and one line per proposal in arrival order:
//
//	workload v1 mode=virtual seed=1 ops=2 rate=200 arrival=poisson shape=2 servers=1 queue=64 admit=0:0 round_us=5000
//	class name=bulk weight=3 alg=es n=4 gst=2 source=0 maxrounds=0 scenario=-
//	op t=4093 class=0 seed=-4962768 outcome=ok wait=0 svc=25000 lat=25000 rounds=5 decided=4 agreed=1
//
// Floats use strconv's shortest round-tripping form; a class scenario is
// env.Scenario's canonical encoding ("-" when absent).

// EncodeTrace renders the result in the canonical trace form.
func (r *Result) EncodeTrace() string {
	var b strings.Builder
	s := &r.Spec
	fmt.Fprintf(&b, "workload v1 mode=%s seed=%d ops=%d rate=%s arrival=%s shape=%s servers=%d queue=%d admit=%s:%d round_us=%d\n",
		r.Mode, s.Seed, s.Ops, ftoa(s.Rate), s.Arrival, ftoa(s.Shape),
		s.Servers, s.QueueDepth, ftoa(s.AdmitRate), s.AdmitBurst, s.RoundUS)
	for i := range s.Classes {
		c := &s.Classes[i]
		sc := "-"
		if !c.Scenario.Empty() {
			sc = c.Scenario.Encode()
		}
		fmt.Fprintf(&b, "class name=%s weight=%d alg=%s n=%d gst=%d source=%d maxrounds=%d scenario=%s\n",
			c.Name, c.Weight, c.Alg, c.N, c.GST, c.StableSource, c.MaxRounds, sc)
	}
	for i := range r.Records {
		rec := &r.Records[i]
		agreed := 0
		if rec.Agreed {
			agreed = 1
		}
		fmt.Fprintf(&b, "op t=%d class=%d seed=%d outcome=%s wait=%d svc=%d lat=%d rounds=%d decided=%d agreed=%d\n",
			rec.TimeUS, rec.Class, rec.Seed, rec.Outcome, rec.WaitUS, rec.SvcUS, rec.LatUS,
			rec.Rounds, rec.DecidedProcs, agreed)
	}
	return b.String()
}

// ftoa renders a float in its shortest exactly-round-tripping form.
func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// fields splits one trace line into key=value tokens after the given
// prefix words, erroring on anything malformed.
type fieldMap map[string]string

func parseFields(line string, want ...string) (fieldMap, error) {
	toks := strings.Fields(line)
	if len(toks) < len(want) {
		return nil, fmt.Errorf("workload: short trace line %q", line)
	}
	for i, w := range want {
		if toks[i] != w {
			return nil, fmt.Errorf("workload: trace line %q does not start with %q", line, strings.Join(want, " "))
		}
	}
	out := make(fieldMap, len(toks))
	for _, tok := range toks[len(want):] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("workload: trace token %q is not key=value", tok)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("workload: duplicate trace key %q in %q", k, line)
		}
		out[k] = v
	}
	return out, nil
}

func (f fieldMap) str(key string) (string, error) {
	v, ok := f[key]
	if !ok {
		return "", fmt.Errorf("workload: trace field %q missing", key)
	}
	return v, nil
}

func (f fieldMap) int(key string) (int, error) {
	v, err := f.str(key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("workload: trace field %s=%q: %w", key, v, err)
	}
	return n, nil
}

func (f fieldMap) int64(key string) (int64, error) {
	v, err := f.str(key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("workload: trace field %s=%q: %w", key, v, err)
	}
	return n, nil
}

func (f fieldMap) float(key string) (float64, error) {
	v, err := f.str(key)
	if err != nil {
		return 0, err
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("workload: trace field %s=%q: %w", key, v, err)
	}
	return x, nil
}

// ParseTrace parses the canonical trace form back into a Result. The
// embedded spec is validated; op lines must be in non-decreasing time
// order and match the header's op count. Outcome consistency (do the
// recorded outcomes follow from the arrivals and service times?) is
// Replay's job, not the parser's.
func ParseTrace(text string) (*Result, error) {
	lines := strings.Split(text, "\n")
	// Tolerate exactly one trailing newline (the canonical form ends with
	// one); anything else must be a parseable line.
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	hdr, err := parseFields(lines[0], "workload", "v1")
	if err != nil {
		return nil, err
	}
	res := &Result{}
	var perr error
	get := func(dst *int64, key string) {
		if perr == nil {
			*dst, perr = hdr.int64(key)
		}
	}
	modeStr, err := hdr.str("mode")
	if err != nil {
		return nil, err
	}
	if res.Mode, err = ParseMode(modeStr); err != nil {
		return nil, err
	}
	s := &res.Spec
	get(&s.Seed, "seed")
	get(&s.RoundUS, "round_us")
	if perr != nil {
		return nil, perr
	}
	if s.Ops, err = hdr.int("ops"); err != nil {
		return nil, err
	}
	if s.Rate, err = hdr.float("rate"); err != nil {
		return nil, err
	}
	if s.Shape, err = hdr.float("shape"); err != nil {
		return nil, err
	}
	if s.Servers, err = hdr.int("servers"); err != nil {
		return nil, err
	}
	if s.QueueDepth, err = hdr.int("queue"); err != nil {
		return nil, err
	}
	arrivalStr, err := hdr.str("arrival")
	if err != nil {
		return nil, err
	}
	if s.Arrival, err = ParseArrivalKind(arrivalStr); err != nil {
		return nil, err
	}
	admitStr, err := hdr.str("admit")
	if err != nil {
		return nil, err
	}
	rateStr, burstStr, ok := strings.Cut(admitStr, ":")
	if !ok {
		return nil, fmt.Errorf("workload: trace admit %q (want rate:burst)", admitStr)
	}
	if s.AdmitRate, err = strconv.ParseFloat(rateStr, 64); err != nil {
		return nil, fmt.Errorf("workload: trace admit rate %q: %w", rateStr, err)
	}
	if s.AdmitBurst, err = strconv.Atoi(burstStr); err != nil {
		return nil, fmt.Errorf("workload: trace admit burst %q: %w", burstStr, err)
	}

	i := 1
	for ; i < len(lines) && strings.HasPrefix(lines[i], "class "); i++ {
		c, err := parseClassLine(lines[i])
		if err != nil {
			return nil, err
		}
		s.Classes = append(s.Classes, c)
	}
	for ; i < len(lines); i++ {
		rec, err := parseOpLine(lines[i], len(s.Classes))
		if err != nil {
			return nil, err
		}
		if n := len(res.Records); n > 0 && rec.TimeUS < res.Records[n-1].TimeUS {
			return nil, fmt.Errorf("workload: trace op %d arrives at %d, before its predecessor", n, rec.TimeUS)
		}
		res.Records = append(res.Records, rec)
	}
	if len(res.Records) != s.Ops {
		return nil, fmt.Errorf("workload: trace has %d op lines, header says ops=%d", len(res.Records), s.Ops)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// The canonical form holds the normalized spec; a spec that normalizes
	// differently than written would break the Encode/Parse fixed point.
	if norm := s.normalize(); norm.Shape != s.Shape || norm.Servers != s.Servers ||
		norm.QueueDepth != s.QueueDepth || norm.RoundUS != s.RoundUS || norm.Arrival != s.Arrival {
		return nil, fmt.Errorf("workload: trace header is not in normalized form")
	}
	return res, nil
}

// parseClassLine parses one `class ...` trace line.
func parseClassLine(line string) (Class, error) {
	f, err := parseFields(line, "class")
	if err != nil {
		return Class{}, err
	}
	var c Class
	if c.Name, err = f.str("name"); err != nil {
		return Class{}, err
	}
	if c.Weight, err = f.int("weight"); err != nil {
		return Class{}, err
	}
	algStr, err := f.str("alg")
	if err != nil {
		return Class{}, err
	}
	if c.Alg, err = ParseAlg(algStr); err != nil {
		return Class{}, err
	}
	if c.N, err = f.int("n"); err != nil {
		return Class{}, err
	}
	if c.GST, err = f.int("gst"); err != nil {
		return Class{}, err
	}
	if c.StableSource, err = f.int("source"); err != nil {
		return Class{}, err
	}
	if c.MaxRounds, err = f.int("maxrounds"); err != nil {
		return Class{}, err
	}
	scStr, err := f.str("scenario")
	if err != nil {
		return Class{}, err
	}
	if scStr != "-" {
		sc, err := env.ParseScenario(scStr)
		if err != nil {
			return Class{}, fmt.Errorf("workload: class %q scenario: %w", c.Name, err)
		}
		if sc.Empty() {
			return Class{}, fmt.Errorf("workload: class %q scenario %q encodes the empty scenario (want -)", c.Name, scStr)
		}
		c.Scenario = sc
	}
	return c, nil
}

// parseOpLine parses one `op ...` trace line.
func parseOpLine(line string, classes int) (Record, error) {
	f, err := parseFields(line, "op")
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if rec.TimeUS, err = f.int64("t"); err != nil {
		return Record{}, err
	}
	if rec.TimeUS < 0 {
		return Record{}, fmt.Errorf("workload: negative op time %d", rec.TimeUS)
	}
	if rec.Class, err = f.int("class"); err != nil {
		return Record{}, err
	}
	if rec.Class < 0 || rec.Class >= classes {
		return Record{}, fmt.Errorf("workload: op class %d outside [0,%d)", rec.Class, classes)
	}
	if rec.Seed, err = f.int64("seed"); err != nil {
		return Record{}, err
	}
	outStr, err := f.str("outcome")
	if err != nil {
		return Record{}, err
	}
	if rec.Outcome, err = ParseOutcome(outStr); err != nil {
		return Record{}, err
	}
	if rec.WaitUS, err = f.int64("wait"); err != nil {
		return Record{}, err
	}
	if rec.SvcUS, err = f.int64("svc"); err != nil {
		return Record{}, err
	}
	if rec.LatUS, err = f.int64("lat"); err != nil {
		return Record{}, err
	}
	if rec.WaitUS < 0 || rec.SvcUS < 0 || rec.LatUS < 0 {
		return Record{}, fmt.Errorf("workload: negative latency fields in %q", line)
	}
	if rec.Rounds, err = f.int("rounds"); err != nil {
		return Record{}, err
	}
	if rec.Rounds < 0 {
		return Record{}, fmt.Errorf("workload: negative rounds in %q", line)
	}
	if rec.DecidedProcs, err = f.int("decided"); err != nil {
		return Record{}, err
	}
	if rec.DecidedProcs < 0 {
		return Record{}, fmt.Errorf("workload: negative decided count in %q", line)
	}
	agreed, err := f.int("agreed")
	if err != nil {
		return Record{}, err
	}
	switch agreed {
	case 0:
	case 1:
		rec.Agreed = true
	default:
		return Record{}, fmt.Errorf("workload: agreed=%d (want 0 or 1) in %q", agreed, line)
	}
	return rec, nil
}

// Replay re-executes a trace deterministically. For a virtual-mode trace
// it re-runs the admission and queueing model over the recorded arrivals
// and service times and verifies that every recorded outcome, wait and
// latency reproduces — a trace whose records contradict its own schedule
// is rejected. A live-mode trace holds wall-clock measurements, so replay
// is the identity on its records; recomputing the report from them is
// still deterministic. Replay(t).EncodeTrace() == t for every trace this
// package produced.
func Replay(text string) (*Result, error) {
	res, err := ParseTrace(text)
	if err != nil {
		return nil, err
	}
	if res.Mode != Virtual {
		return res, nil
	}
	replayed := &Result{Mode: Virtual, Spec: res.Spec, Records: append([]Record(nil), res.Records...)}
	for i := range replayed.Records {
		rec := &replayed.Records[i]
		rec.Outcome = 0
		rec.WaitUS, rec.LatUS = 0, 0
	}
	applyAdmission(replayed.Spec, replayed.Records)
	applyQueueing(replayed.Spec, replayed.Records)
	for i := range replayed.Records {
		got, want := &replayed.Records[i], &res.Records[i]
		// A shed proposal records no service plane state; the replayed
		// model zeroes the same fields, so full struct equality is the
		// check.
		if *got != *want {
			return nil, fmt.Errorf("workload: trace does not replay: op %d recorded %+v, model produces %+v", i, *want, *got)
		}
	}
	return replayed, nil
}
