package workload

import (
	"context"
	"fmt"

	"anonconsensus/internal/core"
	"anonconsensus/internal/sim"
)

// Outcome classifies what the service plane did with one proposal.
type Outcome int

// Proposal outcomes.
const (
	// OK: the proposal was admitted, queued, served, and its instance ran
	// to completion.
	OK Outcome = iota + 1
	// ShedAdmission: the admission token bucket was empty — the proposal
	// was fast-rejected before touching the backlog.
	ShedAdmission
	// ShedQueue: the proposal spent a token (when admission is on) but
	// found the backlog full. The open-loop client never blocks, so a full
	// queue is always a shed, mirroring the Node's fast-reject contract.
	ShedQueue
	// Errored: the instance was accepted but its run failed (live drives
	// only — the virtual plane's simulator runs cannot fail).
	Errored
)

// String implements fmt.Stringer (canonical trace token).
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case ShedAdmission:
		return "shed-admit"
	case ShedQueue:
		return "shed-queue"
	case Errored:
		return "err"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// ParseOutcome is String's inverse.
func ParseOutcome(s string) (Outcome, error) {
	switch s {
	case "ok":
		return OK, nil
	case "shed-admit":
		return ShedAdmission, nil
	case "shed-queue":
		return ShedQueue, nil
	case "err":
		return Errored, nil
	default:
		return 0, fmt.Errorf("workload: unknown outcome %q", s)
	}
}

// Record is one proposal's fate: its arrival, the service plane's
// admission outcome, and — for served proposals — its latency breakdown
// and consensus result.
type Record struct {
	Arrival
	// Outcome is the admission outcome.
	Outcome Outcome
	// WaitUS is the time spent queued before a server picked the proposal
	// up; SvcUS the service time (rounds × RoundUS on the virtual plane);
	// LatUS the decision latency, WaitUS + SvcUS. All zero for shed
	// proposals.
	WaitUS, SvcUS, LatUS int64
	// Rounds is the instance's simulated round count (0 for bucket-shed
	// proposals, whose instance never ran).
	Rounds int
	// DecidedProcs counts the instance's processes that decided; Agreed
	// reports whether all deciders agreed.
	DecidedProcs int
	Agreed       bool
}

// Mode says how a Result's records were obtained.
type Mode int

// Result modes.
const (
	// Virtual: the deterministic virtual-time service model over the
	// simulator — replayable end to end.
	Virtual Mode = iota + 1
	// Live: wall-clock measurements of a real Node (recorded by the root
	// package's RunWorkload). Replay recomputes the report from the
	// recorded measurements; it does not re-execute the queueing model.
	Live
)

// String implements fmt.Stringer (canonical trace token).
func (m Mode) String() string {
	switch m {
	case Virtual:
		return "virtual"
	case Live:
		return "live"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode is String's inverse.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "virtual":
		return Virtual, nil
	case "live":
		return Live, nil
	default:
		return 0, fmt.Errorf("workload: unknown mode %q", s)
	}
}

// Result is one executed (or replayed) workload: the normalized spec and
// every proposal's record, in arrival order.
type Result struct {
	Mode    Mode
	Spec    Spec
	Records []Record
}

// LiveResult packages records measured against a real Node (the root
// package's RunWorkload) into a Result, so the live and virtual planes
// share one report and trace form.
func LiveResult(spec Spec, records []Record) *Result {
	return &Result{Mode: Live, Spec: spec.normalize(), Records: records}
}

// Run executes the workload on the deterministic virtual plane: it
// generates the arrival schedule, runs every admitted proposal's
// consensus instance on the simulator (fanned over sim.RunBatch —
// Spec.Parallelism trades wall-clock for cores, never output), and pushes
// the arrivals through the virtual service model. The Result is a pure
// function of the spec.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	arrivals, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	spec = spec.normalize()

	records := make([]Record, len(arrivals))
	for i, a := range arrivals {
		records[i] = Record{Arrival: a}
	}
	// Admission is decided first: the token bucket is a pure function of
	// the arrival times (every arrival that reaches it spends a token,
	// even one the full queue then sheds — mirroring the Node, where the
	// token is spent before the enqueue attempt).
	admitted := applyAdmission(spec, records)

	// Simulate every bucket-admitted proposal's instance. Queue sheds are
	// not known yet — they depend on earlier service times — so a
	// queue-shed proposal's run is computed and then discarded, which
	// keeps the sim fan-out a pure function of the arrival schedule.
	cfgs := make([]sim.Config, len(admitted))
	for j, i := range admitted {
		cfgs[j] = instanceConfig(&spec.Classes[records[i].Class], records[i].Seed)
	}
	simResults, err := sim.RunBatch(ctx, cfgs, sim.BatchOpts{Parallelism: spec.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	for j, i := range admitted {
		res := simResults[j]
		rec := &records[i]
		rec.Rounds = res.Rounds
		rec.SvcUS = int64(res.Rounds) * spec.RoundUS
		for _, st := range res.Statuses {
			if st.Decided {
				rec.DecidedProcs++
			}
		}
		rec.Agreed = res.CheckAgreement() == nil
	}

	applyQueueing(spec, records)
	return &Result{Mode: Virtual, Spec: spec, Records: records}, nil
}

// instanceConfig builds one proposal's simulator configuration.
func instanceConfig(c *Class, seed int64) sim.Config {
	var policy sim.Policy
	if c.Alg == ESS {
		policy = &sim.ESS{GST: c.GST, StableSource: c.StableSource, Pre: sim.MS{Seed: seed}}
	} else {
		policy = &sim.ES{GST: c.GST, Pre: sim.MS{Seed: seed}}
	}
	opts := core.RunOpts{Policy: policy, MaxRounds: c.MaxRounds}
	if c.Scenario != nil {
		sc := c.Scenario.Clone()
		sc.Seed = seed
		opts.Scenario = sc
	}
	if c.Alg == ESS {
		return core.ConfigESS(core.DistinctProposals(c.N), opts)
	}
	return core.ConfigES(core.DistinctProposals(c.N), opts)
}

// applyAdmission runs the virtual token bucket over the arrivals, marking
// bucket sheds, and returns the indexes that passed (in arrival order).
func applyAdmission(spec Spec, records []Record) []int {
	admitted := make([]int, 0, len(records))
	if spec.AdmitRate <= 0 {
		for i := range records {
			admitted = append(admitted, i)
		}
		return admitted
	}
	tokens := float64(spec.AdmitBurst)
	lastUS := int64(0)
	for i := range records {
		t := records[i].TimeUS
		tokens += float64(t-lastUS) / 1e6 * spec.AdmitRate
		if tokens > float64(spec.AdmitBurst) {
			tokens = float64(spec.AdmitBurst)
		}
		lastUS = t
		if tokens >= 1 {
			tokens--
			admitted = append(admitted, i)
		} else {
			records[i].Outcome = ShedAdmission
		}
	}
	return admitted
}

// applyQueueing pushes the bucket-admitted proposals through the virtual
// service plane — Servers concurrent servers draining a FIFO backlog of
// capacity QueueDepth — filling in each record's outcome and latency
// breakdown. An arrival that finds QueueDepth proposals already waiting
// is shed (the open-loop client never blocks on a full queue).
func applyQueueing(spec Spec, records []Record) {
	free := newServerHeap(spec.Servers)
	// starts holds the computed start times of admitted-but-not-yet-
	// started proposals; its live window is the virtual backlog.
	type pending struct{ startUS int64 }
	var backlog []pending
	head := 0
	for i := range records {
		rec := &records[i]
		if rec.Outcome == ShedAdmission {
			continue
		}
		t := rec.TimeUS
		// Drain proposals whose service has begun by now.
		for head < len(backlog) && backlog[head].startUS <= t {
			head++
		}
		if len(backlog)-head >= spec.QueueDepth {
			// A shed proposal's instance never ran on the service plane:
			// every run-derived field is zeroed, including the simulated
			// rounds computed speculatively before the queue decision.
			rec.Outcome = ShedQueue
			rec.WaitUS, rec.SvcUS, rec.LatUS = 0, 0, 0
			rec.Rounds, rec.DecidedProcs, rec.Agreed = 0, 0, false
			continue
		}
		start := free.min()
		if start < t {
			start = t
		}
		free.replaceMin(start + rec.SvcUS)
		backlog = append(backlog, pending{startUS: start})
		rec.Outcome = OK
		rec.WaitUS = start - t
		rec.LatUS = rec.WaitUS + rec.SvcUS
	}
}

// serverHeap is a tiny min-heap over the servers' next-free instants.
type serverHeap struct{ at []int64 }

func newServerHeap(k int) *serverHeap {
	if k < 1 {
		k = 1
	}
	return &serverHeap{at: make([]int64, k)}
}

func (h *serverHeap) min() int64 { return h.at[0] }

// replaceMin replaces the root and sifts down.
func (h *serverHeap) replaceMin(v int64) {
	h.at[0] = v
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.at) && h.at[l] < h.at[smallest] {
			smallest = l
		}
		if r < len(h.at) && h.at[r] < h.at[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.at[i], h.at[smallest] = h.at[smallest], h.at[i]
		i = smallest
	}
}
