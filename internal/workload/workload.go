// Package workload is the open-loop workload plane: it generates seeded
// traffic against the consensus service and reports what sustained load
// feels like — tail latency percentiles, throughput, shed rate and
// per-class fairness — the axis the closed T1–T10/S1/X2 grids never
// touch.
//
// The package itself is fully deterministic (it is on detlint's
// determinism list): arrivals are drawn from a seeded inter-arrival
// process (Poisson, Gamma or Weibull), every proposal's consensus run
// executes on the deterministic simulator via sim.RunBatch, and the
// service plane — k servers, a bounded FIFO backlog, an optional
// token-bucket admission controller — is modelled in virtual time, so a
// whole workload run is a pure function of its Spec and byte-identical
// at any parallelism. Wall-clock driving of a live Node lives in the
// root package (RunWorkload), which reuses this package's generator and
// report so the virtual and live planes measure the same way.
//
// Every run records a canonical Trace (Encode/Parse are a fixed point,
// like env.Scenario and explore.Trace) that Replay re-executes
// deterministically.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"anonconsensus/internal/env"
)

// ArrivalKind selects the inter-arrival distribution of the open-loop
// generator. All three are normalized to Spec.Rate arrivals per second on
// average; they differ in burstiness (Gamma/Weibull shape < 1 is burstier
// than Poisson, > 1 smoother).
type ArrivalKind int

// Supported arrival processes.
const (
	// Poisson arrivals: exponential inter-arrival times, the classic
	// memoryless open-loop load.
	Poisson ArrivalKind = iota + 1
	// Gamma inter-arrival times with Spec.Shape; shape 1 degenerates to
	// Poisson.
	Gamma
	// Weibull inter-arrival times with Spec.Shape; shape 1 degenerates to
	// Poisson.
	Weibull
)

// String implements fmt.Stringer (canonical lower-case form, the inverse
// of ParseArrivalKind).
func (k ArrivalKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Gamma:
		return "gamma"
	case Weibull:
		return "weibull"
	default:
		return fmt.Sprintf("arrival(%d)", int(k))
	}
}

// ParseArrivalKind is String's inverse.
func ParseArrivalKind(name string) (ArrivalKind, error) {
	switch name {
	case "poisson":
		return Poisson, nil
	case "gamma":
		return Gamma, nil
	case "weibull":
		return Weibull, nil
	default:
		return 0, fmt.Errorf("workload: unknown arrival process %q (want poisson, gamma or weibull)", name)
	}
}

// Alg selects the consensus algorithm a class runs.
type Alg int

// Supported algorithms.
const (
	// ES is Algorithm 2 (eventually synchronous environment).
	ES Alg = iota + 1
	// ESS is Algorithm 3 (eventually stable source).
	ESS
)

// String implements fmt.Stringer (canonical lower-case form).
func (a Alg) String() string {
	switch a {
	case ES:
		return "es"
	case ESS:
		return "ess"
	default:
		return fmt.Sprintf("alg(%d)", int(a))
	}
}

// ParseAlg is String's inverse.
func ParseAlg(name string) (Alg, error) {
	switch name {
	case "es":
		return ES, nil
	case "ess":
		return ESS, nil
	default:
		return 0, fmt.Errorf("workload: unknown algorithm %q (want es or ess)", name)
	}
}

// Class is one client population of the mix: every generated proposal
// belongs to exactly one class, drawn with probability proportional to
// Weight, and runs that class's consensus configuration.
type Class struct {
	// Name labels the class in traces and reports. It must be non-empty
	// and contain no whitespace (it is a token of the canonical trace
	// form).
	Name string
	// Weight is the class's relative share of the traffic (≥ 1).
	Weight int
	// Alg is the consensus algorithm (ES or ESS).
	Alg Alg
	// N is the ensemble size (number of anonymous processes per instance).
	N int
	// GST is the stabilization round.
	GST int
	// StableSource is the eventual source (ESS only).
	StableSource int
	// Scenario optionally overlays a fault scenario template on every
	// instance of the class; its Seed field is overridden per proposal so
	// each instance draws its own fault pattern. Nil means fault-free.
	Scenario *env.Scenario
	// MaxRounds bounds each instance (0 = the simulator default, 10·n+200).
	MaxRounds int
}

// validate checks one class.
func (c *Class) validate(i int) error {
	if c.Name == "" {
		return fmt.Errorf("workload: class %d has no name", i)
	}
	for _, r := range c.Name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("workload: class name %q contains %q (want [A-Za-z0-9_-])", c.Name, r)
		}
	}
	if c.Weight < 1 {
		return fmt.Errorf("workload: class %q weight %d (must be ≥ 1)", c.Name, c.Weight)
	}
	switch c.Alg {
	case ES, ESS:
	default:
		return fmt.Errorf("workload: class %q has unknown algorithm %d", c.Name, int(c.Alg))
	}
	if c.N < 1 {
		return fmt.Errorf("workload: class %q ensemble size %d (must be ≥ 1)", c.Name, c.N)
	}
	if c.GST < 0 {
		return fmt.Errorf("workload: class %q negative GST %d", c.Name, c.GST)
	}
	if c.Alg == ESS && (c.StableSource < 0 || c.StableSource >= c.N) {
		return fmt.Errorf("workload: class %q stable source %d outside [0,%d)", c.Name, c.StableSource, c.N)
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("workload: class %q negative max rounds %d", c.Name, c.MaxRounds)
	}
	if c.Scenario != nil {
		if err := c.Scenario.Validate(c.N); err != nil {
			return fmt.Errorf("workload: class %q scenario: %w", c.Name, err)
		}
	}
	return nil
}

// Spec describes one open-loop workload: the arrival process, the client
// mix, and the virtual service plane the arrivals queue into. The zero
// value of optional knobs selects a default; Seed, Ops, Rate and Classes
// are required.
type Spec struct {
	// Seed fixes everything: the arrival draws, the class mix draws, and
	// every instance's adversary seed derive from it.
	Seed int64
	// Ops is the number of proposals to generate.
	Ops int
	// Rate is the mean arrival rate in proposals per second.
	Rate float64
	// Arrival is the inter-arrival process; defaults to Poisson.
	Arrival ArrivalKind
	// Shape is the Gamma/Weibull shape parameter; defaults to 2 (ignored
	// by Poisson).
	Shape float64
	// Classes is the client mix (at least one).
	Classes []Class

	// Servers is the number of concurrent servers of the virtual service
	// plane (the analogue of WithMaxInFlight); defaults to 1.
	Servers int
	// QueueDepth bounds the virtual backlog (the analogue of
	// WithQueueDepth); defaults to 64. The open-loop client never blocks:
	// an arrival that finds the backlog full is shed.
	QueueDepth int
	// AdmitRate/AdmitBurst put a virtual-time token bucket in front of the
	// backlog (the analogue of WithAdmission fast-reject); AdmitRate 0
	// disables admission control.
	AdmitRate  float64
	AdmitBurst int
	// RoundUS is the virtual cost of one simulated consensus round in
	// microseconds — the service-time model is rounds × RoundUS. Defaults
	// to 5000 (the live plane's 5ms default round interval).
	RoundUS int64

	// Parallelism bounds the sim.RunBatch worker pool the per-proposal
	// consensus runs fan across; 0 = GOMAXPROCS. The report and trace are
	// byte-identical at any setting.
	Parallelism int
}

// Defaults applied by normalize.
const (
	defaultShape      = 2.0
	defaultQueueDepth = 64
	defaultRoundUS    = 5000
)

// normalize returns a copy of s with defaults resolved.
func (s Spec) normalize() Spec {
	if s.Arrival == 0 {
		s.Arrival = Poisson
	}
	if s.Shape == 0 {
		s.Shape = defaultShape
	}
	if s.Servers == 0 {
		s.Servers = 1
	}
	if s.QueueDepth == 0 {
		s.QueueDepth = defaultQueueDepth
	}
	if s.RoundUS == 0 {
		s.RoundUS = defaultRoundUS
	}
	return s
}

// Validate rejects malformed specs.
func (s *Spec) Validate() error {
	if s.Ops < 1 {
		return fmt.Errorf("workload: ops %d (must be ≥ 1)", s.Ops)
	}
	if !(s.Rate > 0) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("workload: rate %v (must be a positive finite ops/sec)", s.Rate)
	}
	switch s.Arrival {
	case Poisson, Gamma, Weibull, 0:
	default:
		return fmt.Errorf("workload: unknown arrival process %d", int(s.Arrival))
	}
	if s.Shape < 0 || math.IsInf(s.Shape, 0) || math.IsNaN(s.Shape) {
		return fmt.Errorf("workload: shape %v (must be a positive finite number)", s.Shape)
	}
	if s.Arrival == Gamma || s.Arrival == Weibull {
		if s.Shape != 0 && s.Shape < 0.05 {
			return fmt.Errorf("workload: shape %v too extreme (must be ≥ 0.05)", s.Shape)
		}
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("workload: no classes")
	}
	names := make(map[string]bool, len(s.Classes))
	for i := range s.Classes {
		if err := s.Classes[i].validate(i); err != nil {
			return err
		}
		if names[s.Classes[i].Name] {
			return fmt.Errorf("workload: duplicate class name %q", s.Classes[i].Name)
		}
		names[s.Classes[i].Name] = true
	}
	if s.Servers < 0 {
		return fmt.Errorf("workload: negative servers %d", s.Servers)
	}
	if s.QueueDepth < 0 {
		return fmt.Errorf("workload: negative queue depth %d", s.QueueDepth)
	}
	if s.AdmitRate < 0 || math.IsInf(s.AdmitRate, 0) || math.IsNaN(s.AdmitRate) {
		return fmt.Errorf("workload: admission rate %v (must be ≥ 0 and finite)", s.AdmitRate)
	}
	if s.AdmitRate > 0 && s.AdmitBurst < 1 {
		return fmt.Errorf("workload: admission burst %d (must be ≥ 1 when a rate is set)", s.AdmitBurst)
	}
	if s.RoundUS < 0 {
		return fmt.Errorf("workload: negative round cost %d", s.RoundUS)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("workload: negative parallelism %d", s.Parallelism)
	}
	return nil
}

// Arrival is one generated proposal: when it arrives, which class it
// belongs to, and the seed its instance's adversary draws from.
type Arrival struct {
	// TimeUS is the arrival instant in virtual microseconds from the start
	// of the run. Arrivals are generated in non-decreasing time order.
	TimeUS int64
	// Class indexes Spec.Classes.
	Class int
	// Seed is the instance's adversary seed, mixed from (Spec.Seed, index)
	// so streams never collide across proposals.
	Seed int64
}

// opSeed derives the per-proposal adversary seed with a splitmix64-style
// mix (the explore plane's trial-seed discipline), so nearby (seed, op)
// pairs never share adversary streams.
func opSeed(seed int64, op int) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(op+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0x94D049BB133111EB
	z ^= z >> 27
	return int64(z)
}

// Generate draws the spec's full arrival schedule. It is deterministic:
// one seeded *rand.Rand, consumed in a fixed order (inter-arrival draw,
// then class draw, per proposal).
func Generate(spec Spec) ([]Arrival, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.normalize()
	rng := rand.New(rand.NewSource(spec.Seed))
	totalWeight := 0
	for _, c := range spec.Classes {
		totalWeight += c.Weight
	}
	out := make([]Arrival, spec.Ops)
	t := 0.0 // seconds
	for i := range out {
		t += interArrival(rng, spec)
		// pickClass consumes exactly one draw whether or not the mix is
		// trivial, keeping the stream layout independent of the mix.
		pick := rng.Intn(totalWeight)
		cls := 0
		for j, c := range spec.Classes {
			if pick < c.Weight {
				cls = j
				break
			}
			pick -= c.Weight
		}
		out[i] = Arrival{
			TimeUS: int64(math.Round(t * 1e6)),
			Class:  cls,
			Seed:   opSeed(spec.Seed, i),
		}
	}
	return out, nil
}

// interArrival draws one inter-arrival gap in seconds, mean 1/Rate.
func interArrival(rng *rand.Rand, spec Spec) float64 {
	mean := 1 / spec.Rate
	switch spec.Arrival {
	case Gamma:
		// Gamma(shape k) has mean k·scale; scale = mean/k keeps the rate.
		return gammaDraw(rng, spec.Shape) * mean / spec.Shape
	case Weibull:
		// Weibull(shape k, scale λ) has mean λ·Γ(1+1/k).
		u := rng.Float64()
		scale := mean / math.Gamma(1+1/spec.Shape)
		return scale * math.Pow(-math.Log1p(-u), 1/spec.Shape)
	default: // Poisson
		return rng.ExpFloat64() * mean
	}
}

// gammaDraw samples Gamma(shape, 1) by Marsaglia–Tsang; shapes below 1 use
// the standard boosting identity Gamma(k) = Gamma(k+1)·U^(1/k).
func gammaDraw(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaDraw(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
